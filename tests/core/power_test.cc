// Set agreement power sequences: values, provenances, and the paper's key
// identity — O_n and O'_n have the SAME power sequence (the premise of
// Corollary 6.6).
#include "core/power.h"

#include <gtest/gtest.h>

namespace lbsa::core {
namespace {

TEST(Power, RegisterSequence) {
  const SetAgreementPower p = power_of_register(5);
  EXPECT_EQ(p.consensus_number(), 1);
  for (int k = 2; k <= 5; ++k) {
    EXPECT_EQ(p.entry(k).value, k);
    EXPECT_EQ(p.entry(k).provenance, PowerEntry::Provenance::kExact);
  }
}

TEST(Power, NConsensusSequence) {
  const SetAgreementPower p = power_of_n_consensus(3, 4);
  EXPECT_EQ(p.consensus_number(), 3);
  EXPECT_EQ(p.entry(2).value, 6);
  EXPECT_EQ(p.entry(3).value, 9);
  EXPECT_EQ(p.entry(4).value, 12);
}

TEST(Power, TwoSaSequence) {
  const SetAgreementPower p = power_of_two_sa(4);
  EXPECT_EQ(p.consensus_number(), 1);
  for (int k = 2; k <= 4; ++k) {
    EXPECT_TRUE(p.entry(k).infinite());
  }
}

TEST(Power, OnSequenceShape) {
  for (int n = 2; n <= 5; ++n) {
    const SetAgreementPower p = power_of_o_n(n, 4);
    EXPECT_EQ(p.consensus_number(), n);
    EXPECT_EQ(p.entry(1).provenance, PowerEntry::Provenance::kExact);
    for (int k = 2; k <= 4; ++k) {
      EXPECT_EQ(p.entry(k).value, static_cast<std::int64_t>(k) * n);
      // Honesty: beyond k=1 the paper does not compute the sequence.
      EXPECT_EQ(p.entry(k).provenance, PowerEntry::Provenance::kLowerBound);
    }
  }
}

TEST(Power, OnAndOPrimeHaveSamePower) {
  // The premise of Corollary 6.6: same set agreement power.
  for (int n = 2; n <= 6; ++n) {
    const SetAgreementPower on = power_of_o_n(n, 6);
    const SetAgreementPower oprime = power_of_o_prime_n(n, 6);
    EXPECT_TRUE(on.values_equal(oprime)) << "n=" << n;
    EXPECT_TRUE(oprime.values_equal(on)) << "n=" << n;
    EXPECT_EQ(on.consensus_number(), oprime.consensus_number());
  }
}

TEST(Power, DifferentLevelsDiffer) {
  EXPECT_FALSE(power_of_o_n(2, 4).values_equal(power_of_o_n(3, 4)));
  EXPECT_FALSE(
      power_of_n_consensus(2, 4).values_equal(power_of_two_sa(4)));
}

TEST(Power, ValuesEqualComparesSharedPrefix) {
  EXPECT_TRUE(power_of_o_n(2, 3).values_equal(power_of_o_n(2, 6)));
}

TEST(Power, PortBoundsMatchSpecEncoding) {
  const auto bounds = power_of_two_sa(3).port_bounds();
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds[0], 1);
  EXPECT_EQ(bounds[1], -1);  // spec::kUnboundedPorts
  EXPECT_EQ(bounds[2], -1);
}

TEST(Power, ClassicFamilies) {
  const SetAgreementPower tas = power_of_test_and_set(4);
  EXPECT_EQ(tas.consensus_number(), 2);
  EXPECT_EQ(tas.entry(3).value, 6);
  EXPECT_EQ(tas.entry(3).provenance, PowerEntry::Provenance::kExact);

  const SetAgreementPower queue = power_of_queue(4);
  EXPECT_EQ(queue.consensus_number(), 2);
  EXPECT_EQ(queue.entry(2).value, 4);
  EXPECT_EQ(queue.entry(2).provenance, PowerEntry::Provenance::kLowerBound);

  const SetAgreementPower cas = power_of_compare_and_swap(4);
  EXPECT_TRUE(cas.entry(1).infinite());
  EXPECT_TRUE(cas.entry(4).infinite());
}

TEST(Power, TasEqualsTwoConsensusValues) {
  // test&set and 2-consensus are interimplementable, so the sequences must
  // coincide.
  EXPECT_TRUE(
      power_of_test_and_set(5).values_equal(power_of_n_consensus(2, 5)));
}

TEST(Power, OTwoDiffersFromTasBeyondConsensusNumber) {
  // O_2 also has consensus number 2 — but the library only claims lower
  // bounds beyond k=1, and the interesting fact (Corollary 6.6) is that
  // equal power values would STILL not imply equivalence.
  const SetAgreementPower o2 = power_of_o_n(2, 4);
  const SetAgreementPower tas = power_of_test_and_set(4);
  EXPECT_EQ(o2.consensus_number(), tas.consensus_number());
  EXPECT_TRUE(o2.values_equal(tas));  // same known values...
  // ...with different provenance: O_2's tail is only a lower bound.
  EXPECT_EQ(tas.entry(2).provenance, PowerEntry::Provenance::kExact);
  EXPECT_EQ(o2.entry(2).provenance, PowerEntry::Provenance::kLowerBound);
}

TEST(Power, ToStringMarksLowerBounds) {
  const std::string s = power_of_o_n(2, 3).to_string();
  EXPECT_NE(s.find("O_2"), std::string::npos);
  EXPECT_NE(s.find("4+"), std::string::npos);  // lower-bound marker
  EXPECT_NE(s.find("(2, "), std::string::npos);
}

}  // namespace
}  // namespace lbsa::core
