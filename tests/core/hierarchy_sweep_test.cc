// The machine-checked (n,m)-PAC hierarchy sweep (core/hierarchy_sweep.h):
// row verdicts against the catalog, artifact schema round-trips, and the
// byte-identity of the rows document across engines and thread counts.
#include "core/hierarchy_sweep.h"

#include <gtest/gtest.h>

#include "obs/report.h"

namespace lbsa::core {
namespace {

TEST(HierarchySweep, SmallestCellVerifies) {
  auto row_or = run_hierarchy_row(2, 1);
  ASSERT_TRUE(row_or.is_ok()) << row_or.status().to_string();
  const SweepRow& row = row_or.value();
  EXPECT_TRUE(row.ok());
  EXPECT_EQ(row.object, "(2,1)-PAC");
  EXPECT_EQ(row.declared_level, 1);
  EXPECT_TRUE(row.consensus_ok_all_p);
  EXPECT_EQ(row.consensus.processes, 1);
  EXPECT_EQ(row.dac.processes, 2);
  EXPECT_TRUE(row.matches_catalog);
  EXPECT_GE(row.consensus.nodes, 1u);
  EXPECT_GE(row.dac.nodes, 1u);
  EXPECT_GE(row.dac.nodes_full, row.dac.nodes);
}

TEST(HierarchySweep, FullCapacityCellVerifies) {
  // m = n: the consensus port carries the whole object's process budget.
  auto row_or = run_hierarchy_row(3, 3);
  ASSERT_TRUE(row_or.is_ok()) << row_or.status().to_string();
  EXPECT_TRUE(row_or.value().ok());
  EXPECT_EQ(row_or.value().consensus.processes, 3);
}

TEST(HierarchySweep, CrossCheckReductionsAgree) {
  // Verdicts must survive re-checking under the other reduction modes; a
  // disagreement is an error, not a row.
  for (auto reduction :
       {modelcheck::Reduction::kNone, modelcheck::Reduction::kBoth}) {
    SweepOptions options;
    options.cross_check = reduction;
    auto row_or = run_hierarchy_row(3, 2, options);
    ASSERT_TRUE(row_or.is_ok()) << row_or.status().to_string();
    EXPECT_TRUE(row_or.value().ok());
  }
}

TEST(HierarchySweep, SweepCoversTheGridInOrder) {
  SweepOptions options;
  options.n_max = 3;
  auto result_or = run_hierarchy_sweep(options);
  ASSERT_TRUE(result_or.is_ok()) << result_or.status().to_string();
  const SweepResult& result = result_or.value();
  ASSERT_EQ(result.rows.size(), 5u);  // (2,1) (2,2) (3,1) (3,2) (3,3)
  EXPECT_TRUE(result.all_ok());
  int index = 0;
  for (int n = 2; n <= 3; ++n) {
    for (int m = 1; m <= n; ++m, ++index) {
      EXPECT_EQ(result.rows[static_cast<size_t>(index)].n, n);
      EXPECT_EQ(result.rows[static_cast<size_t>(index)].m, m);
    }
  }
}

TEST(HierarchySweep, RowsJsonByteIdenticalAcrossEnginesAndThreads) {
  SweepOptions serial;
  serial.n_max = 3;
  serial.engine = modelcheck::ExploreEngine::kSerial;
  serial.threads = 1;
  auto base = run_hierarchy_sweep(serial);
  ASSERT_TRUE(base.is_ok());
  const std::string base_json = hierarchy_rows_json(base.value());

  SweepOptions parallel = serial;
  parallel.engine = modelcheck::ExploreEngine::kParallel;
  parallel.threads = 2;
  auto par = run_hierarchy_sweep(parallel);
  ASSERT_TRUE(par.is_ok());
  EXPECT_EQ(hierarchy_rows_json(par.value()), base_json);

  SweepOptions stealing = serial;
  stealing.engine = modelcheck::ExploreEngine::kWorkStealing;
  stealing.threads = 8;
  auto ws = run_hierarchy_sweep(stealing);
  ASSERT_TRUE(ws.is_ok());
  EXPECT_EQ(hierarchy_rows_json(ws.value()), base_json);

  // A cross-check pass must not perturb the recorded rows either.
  SweepOptions checked = serial;
  checked.cross_check = modelcheck::Reduction::kNone;
  auto xc = run_hierarchy_sweep(checked);
  ASSERT_TRUE(xc.is_ok());
  EXPECT_EQ(hierarchy_rows_json(xc.value()), base_json);
}

TEST(HierarchySweep, ArtifactValidatesAndTamperingIsRejected) {
  SweepOptions options;
  options.n_max = 3;
  auto result_or = run_hierarchy_sweep(options);
  ASSERT_TRUE(result_or.is_ok());
  SweepResult result = std::move(result_or).value();

  SweepProvenance provenance;
  provenance.engine = "serial";
  provenance.threads = 1;
  provenance.threads_available = 1;
  const std::string artifact = hierarchy_artifact_json(result, provenance);
  EXPECT_TRUE(obs::validate_hierarchy_artifact_json(artifact).is_ok())
      << obs::validate_hierarchy_artifact_json(artifact).to_string();

  // A refuted row must not validate: the artifact asserts the theorem.
  SweepResult tampered = result;
  tampered.rows[1].matches_catalog = false;
  EXPECT_FALSE(
      obs::validate_hierarchy_artifact_json(
          hierarchy_artifact_json(tampered, provenance))
          .is_ok());

  // An incomplete grid must not validate.
  SweepResult truncated = result;
  truncated.rows.pop_back();
  EXPECT_FALSE(
      obs::validate_hierarchy_artifact_json(
          hierarchy_artifact_json(truncated, provenance))
          .is_ok());

  // Provenance is required — the bare rows document is not an artifact.
  EXPECT_FALSE(
      obs::validate_hierarchy_artifact_json(hierarchy_rows_json(result))
          .is_ok());
}

TEST(HierarchySweep, MarkdownTableShowsVerifiedLevels) {
  SweepOptions options;
  options.n_max = 3;
  auto result_or = run_hierarchy_sweep(options);
  ASSERT_TRUE(result_or.is_ok());
  const std::string table = hierarchy_table_markdown(result_or.value());
  EXPECT_NE(table.find("| n \\ m |"), std::string::npos);
  EXPECT_NE(table.find("| **2** | 1 ✓ | 2 ✓ |"), std::string::npos);
  EXPECT_NE(table.find("| **3** | 1 ✓ | 2 ✓ | 3 ✓ |"), std::string::npos);
  // No cell above the diagonal (m > n).
  EXPECT_EQ(table.find("✗"), std::string::npos);
}

}  // namespace
}  // namespace lbsa::core
