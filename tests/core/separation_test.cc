// The separation pair O_n / O'_n and the Lemma 6.4 construction, validated
// in both realms (experiments E6 and E7):
//   * the from-base O' bundle produces only spec-legal histories
//     (exhaustive interleavings via the model checker + lincheck on real
//     threads);
//   * O_n does something the O' interface cannot even express: its PAC part
//     solves (n+1)-DAC.
#include "core/separation.h"

#include <gtest/gtest.h>

#include <thread>

#include "concurrent/recording.h"
#include "lincheck/checker.h"
#include "modelcheck/task_check.h"
#include "protocols/dac_from_pac.h"
#include "spec/pac_type.h"

namespace lbsa::core {
namespace {

TEST(Separation, OnIsTheRightCombination) {
  for (int n = 2; n <= 5; ++n) {
    auto o_n = make_o_n(n);
    EXPECT_EQ(o_n->n(), n + 1);  // (n+1)-PAC part
    EXPECT_EQ(o_n->m(), n);      // n-consensus part
  }
}

TEST(Separation, OPrimeSpecMatchesPowerSequence) {
  auto o_prime = make_o_prime_n(2, 3);
  EXPECT_EQ(o_prime->k_max(), 3);
  EXPECT_EQ(o_prime->member(1).port_bound(), 2);   // n_1 = 2
  EXPECT_EQ(o_prime->member(1).k(), 1);
  EXPECT_EQ(o_prime->member(2).port_bound(), 4);   // n_2 >= 4
  EXPECT_EQ(o_prime->member(2).k(), 2);
  EXPECT_EQ(o_prime->member(3).port_bound(), 6);
  EXPECT_EQ(o_prime->member(3).k(), 3);
}

TEST(Separation, FromBaseBundleUsesOnlyLemmaObjects) {
  auto impl = make_o_prime_from_base(2, 4);
  EXPECT_EQ(impl->member(1).k(), 1);  // n-consensus in SA clothing
  for (int k = 2; k <= 4; ++k) {
    EXPECT_EQ(impl->member(k).k(), 2) << "level " << k << " must be a 2-SA";
  }
}

TEST(Separation, FromBaseHistoriesLinearizeToOPrimeSpec) {
  // Exhaustive check: every sequential history of the from-base object (up
  // to depth 4 over a mixed op alphabet) is a legal history of the O' spec.
  // Because both are expressed as ObjectTypes, we walk the from-base
  // machine and validate responses against a parallel walk of the spec's
  // nondeterministic outcome sets.
  auto impl = make_o_prime_from_base(2, 3);
  auto spec_type = make_o_prime_n(2, 3);

  const std::vector<spec::Operation> alphabet = {
      spec::make_propose_k(10, 1), spec::make_propose_k(20, 1),
      spec::make_propose_k(10, 2), spec::make_propose_k(20, 2),
      spec::make_propose_k(30, 3), spec::make_propose_k(40, 3),
  };

  struct Walk {
    std::vector<std::int64_t> impl_state;
    std::vector<std::vector<std::int64_t>> spec_states;  // viable spec states
  };

  // DFS to depth 4: at each step, apply op to impl (all impl outcomes) and
  // filter the viable spec states to those that can produce the same
  // response.
  std::function<void(const Walk&, int)> dfs = [&](const Walk& walk,
                                                  int depth) {
    if (depth == 0) return;
    for (const spec::Operation& op : alphabet) {
      std::vector<spec::Outcome> impl_outcomes;
      impl->apply(walk.impl_state, op, &impl_outcomes);
      for (const spec::Outcome& impl_outcome : impl_outcomes) {
        Walk next;
        next.impl_state = impl_outcome.next_state;
        for (const auto& spec_state : walk.spec_states) {
          std::vector<spec::Outcome> spec_outcomes;
          spec_type->apply(spec_state, op, &spec_outcomes);
          for (const spec::Outcome& so : spec_outcomes) {
            if (so.response == impl_outcome.response) {
              next.spec_states.push_back(so.next_state);
            }
          }
        }
        ASSERT_FALSE(next.spec_states.empty())
            << "from-base response " << impl_outcome.response << " to "
            << impl->operation_to_string(op)
            << " is not producible by the O' spec";
        dfs(next, depth - 1);
      }
    }
  };

  Walk root;
  root.impl_state = impl->initial_state();
  root.spec_states.push_back(spec_type->initial_state());
  dfs(root, 4);
}

TEST(Separation, ConcurrentFromBaseLinearizesToOPrimeSpec) {
  for (int round = 0; round < 20; ++round) {
    OPrimeFromBaseObject impl(2, 3);
    lincheck::HistoryLog log;
    concurrent::RecordingObject recorder(&impl, &log);
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&recorder, t, round] {
        // Each thread hits levels 2 and 3 (within port bounds: n_2 = 4
        // proposes at level 2, 4 <= n_3 = 6 at level 3), and threads 0..1
        // use level 1 (n_1 = 2).
        if (t < 2) recorder.apply_as(t, spec::make_propose_k(100 + t, 1));
        recorder.apply_as(t, spec::make_propose_k(200 + t + round, 2));
        recorder.apply_as(t, spec::make_propose_k(300 + t, 3));
      });
    }
    for (auto& w : workers) w.join();
    auto result = lincheck::check_linearizable(impl.type(), log.snapshot());
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    ASSERT_TRUE(result.value().linearizable)
        << "round " << round << ": " << result.value().detail;
  }
}

TEST(Separation, OnSolvesDacThroughItsPacPart) {
  // The behavioural separation in action: O_n contains an (n+1)-PAC, so it
  // solves the (n+1)-DAC problem (here exercised via the underlying PAC
  // protocol, n = 2: 3-DAC, checked over all schedules).
  const std::vector<Value> inputs{10, 20, 30};
  auto protocol = std::make_shared<protocols::DacFromPacProtocol>(inputs);
  auto report = modelcheck::check_dac_task(protocol, 0, inputs);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().ok()) << report.value().to_string();
}

}  // namespace
}  // namespace lbsa::core
