// Consistency tests over the paper-results knowledge base.
#include "core/knowledge.h"

#include <gtest/gtest.h>

#include <set>

namespace lbsa::core {
namespace {

TEST(Knowledge, FactsExistForEveryLevel) {
  for (int n = 2; n <= 8; ++n) {
    EXPECT_GE(paper_facts(n).size(), 8u) << "n=" << n;
  }
}

TEST(Knowledge, NoContradictoryVerdicts) {
  for (int n = 2; n <= 6; ++n) {
    std::set<std::pair<std::string, std::string>> implementable, not_impl;
    for (const auto& fact : paper_facts(n)) {
      auto key = std::make_pair(fact.target, fact.base);
      if (fact.verdict == Verdict::kImplementable) {
        implementable.insert(key);
      } else {
        not_impl.insert(key);
      }
    }
    for (const auto& key : implementable) {
      EXPECT_FALSE(not_impl.contains(key))
          << key.first << " from " << key.second;
    }
  }
}

TEST(Knowledge, ConstructiveFactsNameTheirRealization) {
  for (const auto& fact : paper_facts(3)) {
    if (fact.verdict == Verdict::kImplementable) {
      EXPECT_FALSE(fact.realization.empty()) << fact.target;
    } else {
      EXPECT_TRUE(fact.realization.empty()) << fact.target;
    }
    EXPECT_FALSE(fact.source.empty());
  }
}

TEST(Knowledge, SeparationCorollaryPremisesPresent) {
  // Corollary 6.6 rests on: Lemma 6.4 (O' implementable from the base) and
  // Observation 6.3 (O_n not implementable from the same base), combining
  // into Theorem 6.5 (O_n not from O'). All three must be in the table.
  for (int n = 2; n <= 4; ++n) {
    const std::string base = name_n_consensus(n) + " + " + name_two_sa();
    auto lemma = lookup_fact(n, name_o_prime_n(n), base);
    ASSERT_TRUE(lemma.has_value());
    EXPECT_EQ(lemma->verdict, Verdict::kImplementable);

    auto obs = lookup_fact(n, name_o_n(n), base);
    ASSERT_TRUE(obs.has_value());
    EXPECT_EQ(obs->verdict, Verdict::kNotImplementable);

    auto separation = lookup_fact(n, name_o_n(n), name_o_prime_n(n));
    ASSERT_TRUE(separation.has_value());
    EXPECT_EQ(separation->verdict, Verdict::kNotImplementable);
    EXPECT_NE(separation->source.find("6.5"), std::string::npos);
  }
}

TEST(Knowledge, LookupMissReturnsNullopt) {
  EXPECT_FALSE(lookup_fact(2, "no-such-object", "nothing").has_value());
}

TEST(Knowledge, NamesRenderConventionally) {
  EXPECT_EQ(name_o_n(3), "O_3");
  EXPECT_EQ(name_o_prime_n(3), "O'_3");
  EXPECT_EQ(name_n_consensus(4), "4-consensus");
  EXPECT_EQ(name_n_pac(5), "5-PAC");
  EXPECT_EQ(name_nm_pac(4, 3), "(4,3)-PAC");
}

}  // namespace
}  // namespace lbsa::core
