// Mechanized lower-bound witnesses for the set-agreement-power entries
// (experiments E4, E5, E7, E8): for every family and small (k, n), the
// canonical protocol is model-checked over all schedules and adversarial
// object responses.
#include "core/solvability.h"

#include <gtest/gtest.h>

#include "protocols/partition_propose.h"
#include "spec/consensus_type.h"

namespace lbsa::core {
namespace {

void expect_witnessed(ObjectFamily family, int param, int k, int num_procs) {
  auto report = witness_k_agreement(family, param, k, num_procs);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().ok())
      << object_family_name(family) << " param=" << param << " k=" << k
      << " n=" << num_procs << "\n"
      << report.value().to_string();
}

TEST(Solvability, NConsensusWitnessesKTimesM) {
  expect_witnessed(ObjectFamily::kNConsensus, 2, 1, 2);
  expect_witnessed(ObjectFamily::kNConsensus, 2, 2, 4);
  expect_witnessed(ObjectFamily::kNConsensus, 3, 1, 3);
  expect_witnessed(ObjectFamily::kNConsensus, 1, 3, 3);
}

TEST(Solvability, TwoSaWitnessesAnyN) {
  expect_witnessed(ObjectFamily::kTwoSa, 0, 2, 2);
  expect_witnessed(ObjectFamily::kTwoSa, 0, 2, 4);
  expect_witnessed(ObjectFamily::kTwoSa, 0, 3, 5);
}

TEST(Solvability, OnWitnessesConsensusAndBeyond) {
  // O_2: consensus among 2 (the level-n claim of Theorem 5.3)...
  expect_witnessed(ObjectFamily::kOn, 2, 1, 2);
  // ...and 2-set agreement among 4 via two O_2 instances.
  expect_witnessed(ObjectFamily::kOn, 2, 2, 4);
  // O_3: consensus among 3.
  expect_witnessed(ObjectFamily::kOn, 3, 1, 3);
}

TEST(Solvability, OPrimeMatchesOnWitnesses) {
  // The same tasks through O'_n — "same set agreement power" witnessed on
  // both sides of the separation pair.
  expect_witnessed(ObjectFamily::kOPrime, 2, 1, 2);
  expect_witnessed(ObjectFamily::kOPrime, 2, 2, 4);
  expect_witnessed(ObjectFamily::kOPrime, 3, 1, 3);
}

TEST(Solvability, FromBaseConstructionMatchesToo) {
  // Lemma 6.4's construction drives the same witnesses.
  expect_witnessed(ObjectFamily::kOPrimeFromBase, 2, 1, 2);
  expect_witnessed(ObjectFamily::kOPrimeFromBase, 2, 2, 4);
}

TEST(Solvability, RejectsOverfilledPartitions) {
  auto r = witness_k_agreement(ObjectFamily::kNConsensus, 2, 2, 5);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Solvability, RejectsTwoSaConsensusAttempt) {
  auto r = witness_k_agreement(ObjectFamily::kTwoSa, 0, 1, 2);
  EXPECT_FALSE(r.is_ok());
}

TEST(Solvability, PartitionBoundIsBehaviourallyTight) {
  // The k*m bound is not an artifact of the harness: hand-build the
  // 3-processes-on-3-groups-of-1-consensus protocol and check it against
  // k=2 — each singleton group decides its own value, so agreement(2)
  // breaks with 3 distinct decisions.
  std::vector<std::shared_ptr<const spec::ObjectType>> objects;
  for (int g = 0; g < 3; ++g) {
    objects.push_back(std::make_shared<spec::NConsensusType>(1));
  }
  const std::vector<Value> inputs{1000, 1001, 1002};
  std::vector<spec::Operation> ops;
  for (Value v : inputs) ops.push_back(spec::make_propose(v));
  auto protocol = std::make_shared<protocols::PartitionProposeProtocol>(
      "overfull-partition", std::move(objects), std::vector<int>{0, 1, 2},
      std::move(ops));
  auto report = modelcheck::check_k_agreement_task(protocol, 2, inputs);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().violates("agreement"));
}

}  // namespace
}  // namespace lbsa::core
