#include "core/hierarchy.h"

#include <gtest/gtest.h>

namespace lbsa::core {
namespace {

TEST(Hierarchy, CatalogHasAllFamilies) {
  const auto catalog = hierarchy_catalog(2, 4);
  EXPECT_EQ(catalog.size(), 8u);
  for (const auto& entry : catalog) {
    EXPECT_FALSE(entry.family.empty());
    EXPECT_FALSE(entry.level_source.empty());
    EXPECT_TRUE(entry.level == kLevelInfinity || entry.level >= 1);
  }
}

TEST(Hierarchy, LevelsMatchPowerSequences) {
  // The catalog's level must equal the power sequence's consensus number
  // (finite levels) — internal consistency between the two views.
  for (int n = 2; n <= 4; ++n) {
    for (const auto& entry : hierarchy_catalog(n, 3)) {
      if (entry.level == kLevelInfinity) {
        EXPECT_TRUE(entry.power.entry(1).infinite()) << entry.family;
      } else {
        EXPECT_EQ(entry.power.consensus_number(), entry.level)
            << entry.family;
      }
    }
  }
}

TEST(Hierarchy, LevelTwoContainsTheClassicPair) {
  const auto level2 = entries_at_level(2, 3, 2);
  // At n = 2: test&set, queue, 2-consensus, O_2, O'_2 all sit at level 2.
  EXPECT_EQ(level2.size(), 5u);
}

TEST(Hierarchy, SeparationPairSharesLevelAndPower) {
  for (int n = 2; n <= 4; ++n) {
    auto o_n = find_family(n, 4, "O_n");
    auto o_prime = find_family(n, 4, "O'_n");
    ASSERT_TRUE(o_n.has_value());
    ASSERT_TRUE(o_prime.has_value());
    EXPECT_EQ(o_n->level, o_prime->level);
    EXPECT_TRUE(o_n->power.values_equal(o_prime->power));
  }
}

TEST(Hierarchy, FindFamilyMiss) {
  EXPECT_FALSE(find_family(2, 3, "semaphore").has_value());
}

TEST(Hierarchy, InfinityOnlyForCas) {
  for (const auto& entry : hierarchy_catalog(3, 3)) {
    if (entry.level == kLevelInfinity) {
      EXPECT_EQ(entry.family, "compare&swap");
    }
  }
}

}  // namespace
}  // namespace lbsa::core
