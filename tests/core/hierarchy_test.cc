#include "core/hierarchy.h"

#include <gtest/gtest.h>

namespace lbsa::core {
namespace {

TEST(Hierarchy, CatalogHasAllFamilies) {
  const auto catalog = hierarchy_catalog(2, 4);
  EXPECT_EQ(catalog.size(), 9u);
  for (const auto& entry : catalog) {
    EXPECT_FALSE(entry.family.empty());
    EXPECT_FALSE(entry.level_source.empty());
    EXPECT_TRUE(entry.level == kLevelInfinity || entry.level >= 1);
  }
}

TEST(Hierarchy, LevelsMatchPowerSequences) {
  // The catalog's level must equal the power sequence's consensus number
  // (finite levels) — internal consistency between the two views.
  for (int n = 2; n <= 4; ++n) {
    for (const auto& entry : hierarchy_catalog(n, 3)) {
      if (entry.level == kLevelInfinity) {
        EXPECT_TRUE(entry.power.entry(1).infinite()) << entry.family;
      } else {
        EXPECT_EQ(entry.power.consensus_number(), entry.level)
            << entry.family;
      }
    }
  }
}

TEST(Hierarchy, LevelTwoContainsTheClassicPair) {
  const auto level2 = entries_at_level(2, 3, 2);
  // At n = 2: test&set, queue, 2-consensus, (3,2)-PAC, O_2, O'_2 all sit at
  // level 2.
  EXPECT_EQ(level2.size(), 6u);
}

TEST(Hierarchy, NmPacEntryMatchesTheoremFiveThree) {
  for (int n = 2; n <= 6; ++n) {
    for (int m = 1; m <= n; ++m) {
      const HierarchyEntry entry = nm_pac_entry(n, m, 3);
      EXPECT_EQ(entry.family, "(n,m)-PAC");
      EXPECT_EQ(entry.level, m) << "n=" << n << " m=" << m;
      EXPECT_EQ(entry.power.consensus_number(), m);
    }
  }
}

TEST(Hierarchy, OnIsTheNmPacSpecialCase) {
  // O_n = (n+1, n)-PAC by Definition 6.1: the catalog's family row at
  // (n+1, n) must carry the same level and power values as the O_n row.
  for (int n = 2; n <= 4; ++n) {
    auto nm = find_family(n, 4, "(n,m)-PAC");
    auto o_n = find_family(n, 4, "O_n");
    ASSERT_TRUE(nm.has_value());
    ASSERT_TRUE(o_n.has_value());
    EXPECT_EQ(nm->level, o_n->level);
    EXPECT_TRUE(nm->power.values_equal(o_n->power));
  }
}

TEST(Hierarchy, SeparationPairSharesLevelAndPower) {
  for (int n = 2; n <= 4; ++n) {
    auto o_n = find_family(n, 4, "O_n");
    auto o_prime = find_family(n, 4, "O'_n");
    ASSERT_TRUE(o_n.has_value());
    ASSERT_TRUE(o_prime.has_value());
    EXPECT_EQ(o_n->level, o_prime->level);
    EXPECT_TRUE(o_n->power.values_equal(o_prime->power));
  }
}

TEST(Hierarchy, FindFamilyMiss) {
  EXPECT_FALSE(find_family(2, 3, "semaphore").has_value());
}

TEST(Hierarchy, InfinityOnlyForCas) {
  for (const auto& entry : hierarchy_catalog(3, 3)) {
    if (entry.level == kLevelInfinity) {
      EXPECT_EQ(entry.family, "compare&swap");
    }
  }
}

}  // namespace
}  // namespace lbsa::core
