// Tests for Algorithm 3 (the strong 2-SA object) and its (n,k)-SA
// generalization, including the nondeterministic outcome enumeration.
#include "spec/ksa_type.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace lbsa::spec {
namespace {

std::vector<Value> responses(const std::vector<Outcome>& outcomes) {
  std::vector<Value> out;
  for (const Outcome& o : outcomes) out.push_back(o.response);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(KsaType, Names) {
  EXPECT_EQ(KsaType(kUnboundedPorts, 2).name(), "2-SA");
  EXPECT_EQ(KsaType(kUnboundedPorts, 3).name(), "(∞,3)-SA");
  EXPECT_EQ(KsaType(4, 2).name(), "(4,2)-SA");
}

TEST(KsaType, ValidateRejectsForeignOps) {
  KsaType type(kUnboundedPorts, 2);
  EXPECT_TRUE(type.validate(make_propose(1)).is_ok());
  EXPECT_FALSE(type.validate(make_write(1)).is_ok());
  EXPECT_FALSE(type.validate(make_propose(kNil)).is_ok());
}

TEST(KsaType, FirstProposeReturnsItself) {
  KsaType type = make_two_sa_type();
  auto state = type.initial_state();
  std::vector<Outcome> outcomes;
  type.apply(state, make_propose(10), &outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].response, 10);
}

TEST(KsaType, SecondDistinctProposeMayGetEither) {
  // Algorithm 3: STATE = {10, 20}; the response is an arbitrary member.
  KsaType type = make_two_sa_type();
  auto state = type.apply_unique(type.initial_state(), make_propose(10))
                   .next_state;
  std::vector<Outcome> outcomes;
  type.apply(state, make_propose(20), &outcomes);
  EXPECT_EQ(responses(outcomes), (std::vector<Value>{10, 20}));
}

TEST(KsaType, ThirdValueIsNeverAdmitted) {
  // "corresponding to the *first* two distinct values proposed".
  KsaType type = make_two_sa_type();
  auto state = type.initial_state();
  state = type.apply_unique(state, make_propose(10)).next_state;
  std::vector<Outcome> outcomes;
  type.apply(state, make_propose(20), &outcomes);
  state = outcomes[0].next_state;  // either branch keeps STATE = {10, 20}
  outcomes.clear();
  type.apply(state, make_propose(30), &outcomes);
  EXPECT_EQ(responses(outcomes), (std::vector<Value>{10, 20}));
  // 30 is not in any successor state.
  for (const Outcome& o : outcomes) {
    EXPECT_EQ(KsaType::set_size(o.next_state), 2);
    EXPECT_NE(KsaType::slot(o.next_state, 0), 30);
    EXPECT_NE(KsaType::slot(o.next_state, 1), 30);
  }
}

TEST(KsaType, DuplicateProposalDoesNotGrowSet) {
  KsaType type = make_two_sa_type();
  auto state = type.initial_state();
  state = type.apply_unique(state, make_propose(10)).next_state;
  std::vector<Outcome> outcomes;
  type.apply(state, make_propose(10), &outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].response, 10);
  EXPECT_EQ(KsaType::set_size(outcomes[0].next_state), 1);
}

TEST(KsaType, PortBoundShutsObjectOff) {
  KsaType type(2, 2);
  auto state = type.initial_state();
  state = type.apply_unique(state, make_propose(10)).next_state;
  std::vector<Outcome> outcomes;
  type.apply(state, make_propose(20), &outcomes);
  state = outcomes[0].next_state;
  outcomes.clear();
  type.apply(state, make_propose(30), &outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].response, kBottom);
  // And the shut-off state is frozen.
  EXPECT_EQ(outcomes[0].next_state, state);
}

TEST(KsaType, KOneIsDeterministicConsensusLike) {
  // (n,1)-SA behaves exactly like the n-consensus object — the identity
  // Lemma 6.4 uses for the k = 1 member of O'.
  KsaType type(3, 1);
  EXPECT_TRUE(type.deterministic());
  auto state = type.initial_state();
  EXPECT_EQ(type.apply_unique(state, make_propose(10)).response, 10);
  state = type.apply_unique(state, make_propose(10)).next_state;
  EXPECT_EQ(type.apply_unique(state, make_propose(20)).response, 10);
  state = type.apply_unique(state, make_propose(20)).next_state;
  EXPECT_EQ(type.apply_unique(state, make_propose(30)).response, 10);
  state = type.apply_unique(state, make_propose(30)).next_state;
  EXPECT_EQ(type.apply_unique(state, make_propose(40)).response, kBottom);
}

TEST(KsaType, NondeterminismFlag) {
  EXPECT_TRUE(KsaType(3, 1).deterministic());
  EXPECT_FALSE(KsaType(3, 2).deterministic());
  EXPECT_FALSE(make_two_sa_type().deterministic());
}

// Property sweep: for every k and a stream of distinct proposals, the set of
// possible responses after any prefix is exactly the first min(prefix, k)
// distinct proposals (at most k distinct responses ever — the k-set
// agreement guarantee).
class KsaResponseUniverse : public ::testing::TestWithParam<int> {};

TEST_P(KsaResponseUniverse, ResponsesAreFirstKProposals) {
  const int k = GetParam();
  KsaType type(kUnboundedPorts, k);
  auto state = type.initial_state();
  std::set<Value> expected;
  for (int i = 0; i < k + 3; ++i) {
    const Value v = 100 + i;
    if (static_cast<int>(expected.size()) < k) expected.insert(v);
    std::vector<Outcome> outcomes;
    type.apply(state, make_propose(v), &outcomes);
    std::set<Value> got;
    for (const Outcome& o : outcomes) got.insert(o.response);
    EXPECT_EQ(got, expected) << "after proposal " << i;
    state = outcomes[0].next_state;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KsaResponseUniverse,
                         ::testing::Values(1, 2, 3, 4, 6));

}  // namespace
}  // namespace lbsa::spec
