// Tests for the (n,m)-PAC combination object (Section 5) and for O_n, the
// (n+1,n)-PAC of Definition 6.1: operations must route to the right
// component and the components must not interfere (Observation 5.1).
#include "spec/nm_pac_type.h"

#include <gtest/gtest.h>

namespace lbsa::spec {
namespace {

Value apply(const NmPacType& type, std::vector<std::int64_t>* state,
            const Operation& op) {
  Outcome outcome = type.apply_unique(*state, op);
  *state = std::move(outcome.next_state);
  return outcome.response;
}

TEST(NmPacType, Name) {
  EXPECT_EQ(NmPacType(3, 2).name(), "(3,2)-PAC");
  EXPECT_EQ(make_o_n_type(2).name(), "(3,2)-PAC");
}

TEST(NmPacType, ValidateRoutesPerOpcode) {
  NmPacType type(3, 2);
  EXPECT_TRUE(type.validate(make_propose_c(5)).is_ok());
  EXPECT_TRUE(type.validate(make_propose_p(5, 3)).is_ok());
  EXPECT_TRUE(type.validate(make_decide_p(3)).is_ok());
  EXPECT_FALSE(type.validate(make_propose_p(5, 4)).is_ok());  // label > n
  EXPECT_FALSE(type.validate(make_decide_p(0)).is_ok());
  EXPECT_FALSE(type.validate(make_propose(5)).is_ok());  // raw opcode
  EXPECT_FALSE(type.validate(make_propose_labeled(5, 1)).is_ok());
}

TEST(NmPacType, ConsensusPartBehavesLikeMConsensus) {
  NmPacType type(3, 2);  // m = 2
  auto state = type.initial_state();
  EXPECT_EQ(apply(type, &state, make_propose_c(10)), 10);
  EXPECT_EQ(apply(type, &state, make_propose_c(20)), 10);
  EXPECT_EQ(apply(type, &state, make_propose_c(30)), kBottom);
}

TEST(NmPacType, PacPartBehavesLikeNPac) {
  NmPacType type(3, 2);  // n = 3
  auto state = type.initial_state();
  EXPECT_EQ(apply(type, &state, make_propose_p(10, 1)), kDone);
  EXPECT_EQ(apply(type, &state, make_decide_p(1)), 10);
  EXPECT_EQ(apply(type, &state, make_propose_p(20, 2)), kDone);
  EXPECT_EQ(apply(type, &state, make_decide_p(2)), 10);  // agreement
}

TEST(NmPacType, ComponentsDoNotInterfere) {
  // A PROPOSEC between PROPOSEP and DECIDEP must not trip the PAC's
  // concurrency detection: "operations" on the PAC component are only the
  // P-routed ones.
  NmPacType type(2, 2);
  auto state = type.initial_state();
  apply(type, &state, make_propose_p(10, 1));
  apply(type, &state, make_propose_c(99));
  EXPECT_EQ(apply(type, &state, make_decide_p(1)), 10);

  // Conversely, upsetting the PAC leaves the consensus part intact.
  apply(type, &state, make_decide_p(1));  // decide without propose: upset
  EXPECT_EQ(apply(type, &state, make_decide_p(1)), kBottom);
  EXPECT_EQ(apply(type, &state, make_propose_c(55)), 99);
}

TEST(NmPacType, IsDeterministic) {
  EXPECT_TRUE(NmPacType(3, 2).deterministic());
}

TEST(NmPacType, OnFactoryDimensions) {
  for (int n = 2; n <= 5; ++n) {
    NmPacType on = make_o_n_type(n);
    EXPECT_EQ(on.n(), n + 1);
    EXPECT_EQ(on.m(), n);
  }
}

class NmPacSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(NmPacSweep, PacUpsetNeverLeaksIntoConsensus) {
  const auto [n, m] = GetParam();
  NmPacType type(n, m);
  auto state = type.initial_state();
  // Upset the PAC part.
  apply(type, &state, make_decide_p(1));
  // The consensus part still serves exactly m proposes.
  EXPECT_EQ(apply(type, &state, make_propose_c(10)), 10);
  for (int i = 1; i < m; ++i) {
    EXPECT_EQ(apply(type, &state, make_propose_c(10 + i)), 10);
  }
  EXPECT_EQ(apply(type, &state, make_propose_c(999)), kBottom);
}

INSTANTIATE_TEST_SUITE_P(Dims, NmPacSweep,
                         ::testing::Values(std::pair{2, 2}, std::pair{3, 2},
                                           std::pair{4, 3}, std::pair{5, 4}));

}  // namespace
}  // namespace lbsa::spec
