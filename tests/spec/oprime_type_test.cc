// Tests for the O'_n bundle object (Section 6): PROPOSE(v, k) must route to
// the (n_k, k)-SA member and members must be independent.
#include "spec/oprime_type.h"

#include <gtest/gtest.h>

#include <set>

namespace lbsa::spec {
namespace {

TEST(OPrimeType, NameListsMembers) {
  OPrimeType o(std::vector<int>{2, kUnboundedPorts});
  EXPECT_EQ(o.name(), "O'{(2,1)-SA, 2-SA}");
}

TEST(OPrimeType, ValidateLevelRange) {
  OPrimeType o(std::vector<int>{2, 4, 6});
  EXPECT_TRUE(o.validate(make_propose_k(1, 1)).is_ok());
  EXPECT_TRUE(o.validate(make_propose_k(1, 3)).is_ok());
  EXPECT_FALSE(o.validate(make_propose_k(1, 0)).is_ok());
  EXPECT_FALSE(o.validate(make_propose_k(1, 4)).is_ok());
  EXPECT_FALSE(o.validate(make_propose(1)).is_ok());
}

TEST(OPrimeType, LevelOneIsConsensusLike) {
  OPrimeType o(std::vector<int>{2, kUnboundedPorts});
  auto state = o.initial_state();
  Outcome a = o.apply_unique(state, make_propose_k(10, 1));
  EXPECT_EQ(a.response, 10);
  Outcome b = o.apply_unique(a.next_state, make_propose_k(20, 1));
  EXPECT_EQ(b.response, 10);
  // Third propose at level 1 exceeds the n_1 = 2 port bound.
  Outcome c = o.apply_unique(b.next_state, make_propose_k(30, 1));
  EXPECT_EQ(c.response, kBottom);
}

TEST(OPrimeType, LevelsAreIndependent) {
  OPrimeType o(std::vector<int>{1, kUnboundedPorts});
  auto state = o.initial_state();
  // Exhaust level 1.
  state = o.apply_unique(state, make_propose_k(10, 1)).next_state;
  state = o.apply_unique(state, make_propose_k(20, 1)).next_state;
  // Level 2 is unaffected and returns its own first value.
  std::vector<Outcome> outcomes;
  o.apply(state, make_propose_k(77, 2), &outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].response, 77);
}

TEST(OPrimeType, LevelTwoNondeterminism) {
  OPrimeType o(std::vector<int>{2, kUnboundedPorts});
  auto state = o.initial_state();
  state = o.apply_unique(state, make_propose_k(10, 2)).next_state;
  std::vector<Outcome> outcomes;
  o.apply(state, make_propose_k(20, 2), &outcomes);
  std::set<Value> got;
  for (const Outcome& out : outcomes) got.insert(out.response);
  EXPECT_EQ(got, (std::set<Value>{10, 20}));
}

TEST(OPrimeType, DeterministicOnlyWithoutKsaMembers) {
  EXPECT_TRUE(OPrimeType(std::vector<int>{3}).deterministic());  // only k=1
  EXPECT_FALSE(OPrimeType(std::vector<int>{3, 5}).deterministic());
}

TEST(OPrimeType, GeneralMemberBundle) {
  // Lemma 6.4 shape: level 1 = (2,1)-SA, level 2 and 3 = port-bounded 2-SA.
  OPrimeType impl(std::vector<KsaType>{
      KsaType(2, 1), KsaType(4, 2), KsaType(6, 2)});
  EXPECT_EQ(impl.k_max(), 3);
  EXPECT_EQ(impl.member(2).k(), 2);
  EXPECT_EQ(impl.member(3).k(), 2);  // not 3: backed by a 2-SA
  EXPECT_EQ(impl.member(3).port_bound(), 6);
  // Level 3 behaves as 2-SA: at most 2 distinct responses.
  auto state = impl.initial_state();
  state = impl.apply_unique(state, make_propose_k(10, 3)).next_state;
  std::vector<Outcome> outcomes;
  impl.apply(state, make_propose_k(20, 3), &outcomes);
  state = outcomes[0].next_state;
  outcomes.clear();
  impl.apply(state, make_propose_k(30, 3), &outcomes);
  for (const Outcome& o : outcomes) {
    EXPECT_TRUE(o.response == 10 || o.response == 20);
  }
}

TEST(OPrimeType, MemberAccessors) {
  OPrimeType o(std::vector<int>{3, 5, kUnboundedPorts});
  EXPECT_EQ(o.k_max(), 3);
  EXPECT_EQ(o.member(1).port_bound(), 3);
  EXPECT_EQ(o.member(1).k(), 1);
  EXPECT_EQ(o.member(2).port_bound(), 5);
  EXPECT_TRUE(o.member(3).unbounded());
}

TEST(OPrimeType, StateSlicesAreDisjointAndComplete) {
  OPrimeType o(std::vector<int>{2, 3, 4});
  const auto state = o.initial_state();
  size_t total = 0;
  for (int k = 1; k <= 3; ++k) {
    total += o.member_state(state, k).size();
  }
  EXPECT_EQ(total, state.size());
}

}  // namespace
}  // namespace lbsa::spec
