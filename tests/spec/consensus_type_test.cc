// Tests for the n-consensus object of footnote 6: first n proposes return
// the first proposed value; every later propose returns ⊥.
#include "spec/consensus_type.h"

#include <gtest/gtest.h>

namespace lbsa::spec {
namespace {

Value apply(const NConsensusType& type, std::vector<std::int64_t>* state,
            Value proposal) {
  Outcome outcome = type.apply_unique(*state, make_propose(proposal));
  *state = std::move(outcome.next_state);
  return outcome.response;
}

TEST(NConsensusType, Name) {
  EXPECT_EQ(NConsensusType(3).name(), "3-consensus");
}

TEST(NConsensusType, ValidateRejectsForeignOps) {
  NConsensusType type(2);
  EXPECT_TRUE(type.validate(make_propose(7)).is_ok());
  EXPECT_FALSE(type.validate(make_read()).is_ok());
  EXPECT_FALSE(type.validate(make_decide_labeled(1)).is_ok());
  EXPECT_FALSE(type.validate(make_propose(kBottom)).is_ok());
  EXPECT_FALSE(type.validate(make_propose(kNil)).is_ok());
}

TEST(NConsensusType, FirstProposeWins) {
  NConsensusType type(3);
  auto state = type.initial_state();
  EXPECT_EQ(apply(type, &state, 10), 10);
  EXPECT_EQ(apply(type, &state, 20), 10);
  EXPECT_EQ(apply(type, &state, 30), 10);
}

TEST(NConsensusType, ReturnsBottomAfterNProposes) {
  NConsensusType type(2);
  auto state = type.initial_state();
  EXPECT_EQ(apply(type, &state, 10), 10);
  EXPECT_EQ(apply(type, &state, 20), 10);
  EXPECT_EQ(apply(type, &state, 30), kBottom);
  EXPECT_EQ(apply(type, &state, 40), kBottom);
}

TEST(NConsensusType, ExhaustedObjectStateIsFrozen) {
  // Claim 4.2.9 relies on the exhausted object carrying no information:
  // proposes after the n-th must not change the state at all.
  NConsensusType type(1);
  auto state = type.initial_state();
  apply(type, &state, 10);
  const auto frozen = state;
  apply(type, &state, 99);
  EXPECT_EQ(state, frozen);
  apply(type, &state, 10);
  EXPECT_EQ(state, frozen);
}

class NConsensusSweep : public ::testing::TestWithParam<int> {};

TEST_P(NConsensusSweep, ExactlyNWinnersThenBottom) {
  const int n = GetParam();
  NConsensusType type(n);
  auto state = type.initial_state();
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(apply(type, &state, 100 + i), 100) << "propose " << i;
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(apply(type, &state, 200 + i), kBottom);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, NConsensusSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

}  // namespace
}  // namespace lbsa::spec
