// Tests for Algorithm 1 (the n-PAC object): line-by-line unit tests, plus
// exhaustive verification of Lemmas 3.2-3.4 and Theorem 3.5 over *every*
// operation history up to a depth bound (experiment E1 of DESIGN.md).
#include "spec/pac_type.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "base/values.h"

namespace lbsa::spec {
namespace {

constexpr Value kV1 = 101;
constexpr Value kV2 = 202;

// Applies op to state (deterministic object) and returns the response,
// updating state in place.
Value apply(const PacType& pac, std::vector<std::int64_t>* state,
            const Operation& op) {
  Outcome outcome = pac.apply_unique(*state, op);
  *state = std::move(outcome.next_state);
  return outcome.response;
}

TEST(PacType, NameAndInitialState) {
  PacType pac(3);
  EXPECT_EQ(pac.name(), "3-PAC");
  const auto state = pac.initial_state();
  ASSERT_EQ(state.size(), PacType::state_size(3));
  EXPECT_FALSE(PacType::upset(state));
  EXPECT_EQ(PacType::label_var(state), kNil);
  EXPECT_EQ(PacType::val_var(state), kNil);
  for (int i = 1; i <= 3; ++i) EXPECT_EQ(PacType::v_slot(state, i), kNil);
}

TEST(PacType, ValidateAcceptsOnlyPacOps) {
  PacType pac(2);
  EXPECT_TRUE(pac.validate(make_propose_labeled(kV1, 1)).is_ok());
  EXPECT_TRUE(pac.validate(make_propose_labeled(kV1, 2)).is_ok());
  EXPECT_TRUE(pac.validate(make_decide_labeled(1)).is_ok());
  EXPECT_FALSE(pac.validate(make_propose_labeled(kV1, 0)).is_ok());
  EXPECT_FALSE(pac.validate(make_propose_labeled(kV1, 3)).is_ok());
  EXPECT_FALSE(pac.validate(make_decide_labeled(0)).is_ok());
  EXPECT_FALSE(pac.validate(make_decide_labeled(3)).is_ok());
  EXPECT_FALSE(pac.validate(make_propose(kV1)).is_ok());
  EXPECT_FALSE(pac.validate(make_read()).is_ok());
  EXPECT_FALSE(pac.validate(make_propose_labeled(kBottom, 1)).is_ok());
}

TEST(PacType, ProposeReturnsDoneAndRecordsValue) {
  PacType pac(2);
  auto state = pac.initial_state();
  EXPECT_EQ(apply(pac, &state, make_propose_labeled(kV1, 1)), kDone);
  EXPECT_FALSE(PacType::upset(state));
  EXPECT_EQ(PacType::label_var(state), 1);
  EXPECT_EQ(PacType::v_slot(state, 1), kV1);
}

TEST(PacType, MatchedProposeDecideDecidesProposal) {
  PacType pac(2);
  auto state = pac.initial_state();
  apply(pac, &state, make_propose_labeled(kV1, 1));
  EXPECT_EQ(apply(pac, &state, make_decide_labeled(1)), kV1);
  EXPECT_FALSE(PacType::upset(state));
  // The consensus value sticks.
  EXPECT_EQ(PacType::val_var(state), kV1);
  // The slot is consumed.
  EXPECT_EQ(PacType::v_slot(state, 1), kNil);
  EXPECT_EQ(PacType::label_var(state), kNil);
}

TEST(PacType, SecondLabelAdoptsFirstDecidedValue) {
  // Agreement across labels: once val is set, later decides return it.
  PacType pac(2);
  auto state = pac.initial_state();
  apply(pac, &state, make_propose_labeled(kV1, 1));
  apply(pac, &state, make_decide_labeled(1));
  apply(pac, &state, make_propose_labeled(kV2, 2));
  EXPECT_EQ(apply(pac, &state, make_decide_labeled(2)), kV1);
}

TEST(PacType, InterveningOperationMakesDecideReturnBottom) {
  // The "detected concurrency" path: PROPOSE(v,1), PROPOSE(w,2), DECIDE(1):
  // L == 2 != 1, so DECIDE(1) returns ⊥ without upsetting the object.
  PacType pac(2);
  auto state = pac.initial_state();
  apply(pac, &state, make_propose_labeled(kV1, 1));
  apply(pac, &state, make_propose_labeled(kV2, 2));
  EXPECT_EQ(apply(pac, &state, make_decide_labeled(1)), kBottom);
  EXPECT_FALSE(PacType::upset(state));
  // The aborted pair consumed its slot; L is cleared.
  EXPECT_EQ(PacType::v_slot(state, 1), kNil);
  EXPECT_EQ(PacType::label_var(state), kNil);
  // Label 2's pending proposal survives...
  EXPECT_EQ(PacType::v_slot(state, 2), kV2);
  // ...but its decide now also sees L != 2 and returns ⊥.
  EXPECT_EQ(apply(pac, &state, make_decide_labeled(2)), kBottom);
  EXPECT_FALSE(PacType::upset(state));
}

TEST(PacType, DecideWithoutProposeUpsets) {
  PacType pac(2);
  auto state = pac.initial_state();
  EXPECT_EQ(apply(pac, &state, make_decide_labeled(1)), kBottom);
  EXPECT_TRUE(PacType::upset(state));
}

TEST(PacType, DoubleProposeSameLabelUpsets) {
  PacType pac(2);
  auto state = pac.initial_state();
  apply(pac, &state, make_propose_labeled(kV1, 1));
  EXPECT_EQ(apply(pac, &state, make_propose_labeled(kV2, 1)), kDone);
  EXPECT_TRUE(PacType::upset(state));
}

TEST(PacType, DoubleDecideSameLabelUpsets) {
  PacType pac(2);
  auto state = pac.initial_state();
  apply(pac, &state, make_propose_labeled(kV1, 1));
  apply(pac, &state, make_decide_labeled(1));
  EXPECT_EQ(apply(pac, &state, make_decide_labeled(1)), kBottom);
  EXPECT_TRUE(PacType::upset(state));
}

TEST(PacType, UpsetIsPermanentAndAsymmetric) {
  // Observation 3.1 plus the propose/decide asymmetry: an upset object
  // answers ⊥ to every decide but still "done" to every propose.
  PacType pac(2);
  auto state = pac.initial_state();
  apply(pac, &state, make_decide_labeled(1));  // upsets
  ASSERT_TRUE(PacType::upset(state));
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(apply(pac, &state, make_propose_labeled(kV1, 1)), kDone);
    EXPECT_TRUE(PacType::upset(state));
    EXPECT_EQ(apply(pac, &state, make_decide_labeled(1)), kBottom);
    EXPECT_TRUE(PacType::upset(state));
  }
}

TEST(PacType, UpsetProposeDoesNotWriteState) {
  // Algorithm 1 line 3: when upset, PROPOSE must not touch L or V.
  PacType pac(2);
  auto state = pac.initial_state();
  apply(pac, &state, make_decide_labeled(2));  // upsets
  apply(pac, &state, make_propose_labeled(kV1, 1));
  EXPECT_EQ(PacType::v_slot(state, 1), kNil);
  EXPECT_EQ(PacType::label_var(state), kNil);
}

TEST(PacType, UpsetStateMasksAllOtherComponents) {
  // The enabler of Claim 5.2.6: once a PAC is upset, its responses are
  // INDEPENDENT of L, val, and V — a process cannot distinguish two upset
  // PACs regardless of their internal residue. Exhaustively perturb every
  // maskable component of an upset state and compare all responses.
  PacType pac(2);
  auto upset_state = pac.initial_state();
  upset_state = pac.apply_unique(upset_state, make_decide_labeled(1))
                    .next_state;  // now upset
  ASSERT_TRUE(PacType::upset(upset_state));

  const std::vector<Operation> probes = {
      make_propose_labeled(kV1, 1), make_propose_labeled(kV2, 2),
      make_decide_labeled(1), make_decide_labeled(2)};
  const std::vector<Value> residues = {kNil, kV1, kV2};

  for (Value l : std::vector<Value>{kNil, 1, 2}) {
    for (Value val : residues) {
      for (Value v1 : residues) {
        for (Value v2 : residues) {
          auto perturbed = upset_state;
          perturbed[1] = l;    // L
          perturbed[2] = val;  // val
          perturbed[3] = v1;   // V[1]
          perturbed[4] = v2;   // V[2]
          for (const Operation& probe : probes) {
            const Outcome expected = pac.apply_unique(upset_state, probe);
            const Outcome got = pac.apply_unique(perturbed, probe);
            ASSERT_EQ(got.response, expected.response)
                << pac.operation_to_string(probe);
            ASSERT_TRUE(PacType::upset(got.next_state));
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Exhaustive property sweep: Lemmas 3.2, 3.3, 3.4 and Theorem 3.5 over every
// history of bounded length.
// ---------------------------------------------------------------------------

struct SweepParams {
  int n;           // PAC width
  int num_values;  // distinct proposal values
  int max_len;     // history length bound
};

class PacExhaustiveSweep : public ::testing::TestWithParam<SweepParams> {
 protected:
  // Reference legality oracle (paper, Section 3): for every label i, the
  // subhistory of label-i operations is empty or starts with a propose and
  // alternates propose/decide.
  static bool legal_after(const std::vector<Operation>& history, int n) {
    for (int i = 1; i <= n; ++i) {
      bool expect_propose = true;
      for (const Operation& op : history) {
        const bool is_propose = op.code == OpCode::kProposeLabeled;
        const std::int64_t label = is_propose ? op.arg1 : op.arg0;
        if (label != i) continue;
        if (is_propose != expect_propose) return false;
        expect_propose = !expect_propose;
      }
    }
    return true;
  }

  struct SweepContext {
    PacType pac;
    std::vector<Operation> alphabet;
    std::vector<Operation> history;
    // Matched (proposed value, decide response) pairs so far.
    std::vector<std::pair<Value, Value>> matched;
    // Pending proposal value per label (index 0 unused).
    std::vector<Value> pending;
    long histories_checked = 0;

    explicit SweepContext(const SweepParams& p) : pac(p.n) {
      for (int i = 1; i <= p.n; ++i) {
        for (int v = 0; v < p.num_values; ++v) {
          alphabet.push_back(make_propose_labeled(1000 + v, i));
        }
        alphabet.push_back(make_decide_labeled(i));
      }
      pending.assign(static_cast<size_t>(p.n) + 1, kNil);
    }
  };

  void sweep(SweepContext* ctx, const std::vector<std::int64_t>& state,
             int remaining) {
    if (remaining == 0) return;
    for (const Operation& op : ctx->alphabet) {
      const bool was_upset = PacType::upset(state);
      Outcome outcome = ctx->pac.apply_unique(state, op);
      ctx->history.push_back(op);
      ++ctx->histories_checked;

      const bool is_propose = op.code == OpCode::kProposeLabeled;
      const std::int64_t label = is_propose ? op.arg1 : op.arg0;

      // Bookkeeping for validity: matched propose/decide pairs.
      const Value saved_pending = ctx->pending[static_cast<size_t>(label)];
      bool pushed_pair = false;
      if (is_propose) {
        ctx->pending[static_cast<size_t>(label)] = op.arg0;
      } else if (saved_pending != kNil) {
        ctx->matched.emplace_back(saved_pending, outcome.response);
        ctx->pending[static_cast<size_t>(label)] = kNil;
        pushed_pair = true;
      }

      check_invariants(*ctx, state, op, was_upset, outcome);
      sweep(ctx, outcome.next_state, remaining - 1);

      // Undo.
      if (is_propose) {
        ctx->pending[static_cast<size_t>(label)] = saved_pending;
      } else {
        if (pushed_pair) ctx->matched.pop_back();
        ctx->pending[static_cast<size_t>(label)] = saved_pending;
      }
      ctx->history.pop_back();
    }
  }

  void check_invariants(const SweepContext& ctx,
                        const std::vector<std::int64_t>& prev_state,
                        const Operation& op, bool was_upset,
                        const Outcome& outcome) {
    const auto& state = outcome.next_state;
    const int n = ctx.pac.n();

    // Lemma 3.2: upset <=> history not legal.
    ASSERT_EQ(PacType::upset(state), !legal_after(ctx.history, n))
        << "history length " << ctx.history.size();

    if (!PacType::upset(state)) {
      // Lemma 3.3: V[i] tracks the last label-i operation.
      for (int i = 1; i <= n; ++i) {
        std::optional<Value> expected;  // nullopt => NIL
        for (const Operation& h : ctx.history) {
          const bool hp = h.code == OpCode::kProposeLabeled;
          const std::int64_t hl = hp ? h.arg1 : h.arg0;
          if (hl != i) continue;
          expected = hp ? std::optional<Value>(h.arg0) : std::nullopt;
        }
        ASSERT_EQ(PacType::v_slot(state, i), expected.value_or(kNil));
      }
      // Lemma 3.4: L tracks the last operation.
      const Operation& last = ctx.history.back();
      const Value expected_l =
          last.code == OpCode::kProposeLabeled ? last.arg1 : kNil;
      ASSERT_EQ(PacType::label_var(state), expected_l);
    }

    if (op.code == OpCode::kDecideLabeled) {
      const Value response = outcome.response;
      // Theorem 3.5(c) Nontriviality: response == ⊥ iff the object was
      // upset before op, or the previous operation is not a propose with
      // the same label (including "no previous operation").
      bool prev_is_matching_propose = false;
      if (ctx.history.size() >= 2) {
        const Operation& prev = ctx.history[ctx.history.size() - 2];
        prev_is_matching_propose =
            prev.code == OpCode::kProposeLabeled && prev.arg1 == op.arg0;
      }
      ASSERT_EQ(response == kBottom, was_upset || !prev_is_matching_propose)
          << "nontriviality at history length " << ctx.history.size();
      // Unused here but documents that prev_state feeds the upset check.
      (void)prev_state;

      if (response != kBottom) {
        // Theorem 3.5(a) Agreement: all non-⊥ responses in this history
        // equal the PAC's val (checked pairwise through matched log).
        for (const auto& [proposed, decided] : ctx.matched) {
          if (decided != kBottom) {
            ASSERT_EQ(decided, response);
          }
        }
        // Theorem 3.5(b) Validity: some propose proposed `response` and its
        // matching decide returned `response`.
        bool witnessed = false;
        for (const auto& [proposed, decided] : ctx.matched) {
          if (proposed == response && decided == response) {
            witnessed = true;
            break;
          }
        }
        ASSERT_TRUE(witnessed) << "validity: " << response
                               << " decided but never proposed-and-decided";
      }
    }
  }
};

TEST_P(PacExhaustiveSweep, LemmasAndTheoremHoldOnAllHistories) {
  const SweepParams params = GetParam();
  SweepContext ctx(params);
  sweep(&ctx, ctx.pac.initial_state(), params.max_len);
  // Sanity: the sweep actually covered a nontrivial space.
  EXPECT_GT(ctx.histories_checked, 1000);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, PacExhaustiveSweep,
    ::testing::Values(SweepParams{1, 2, 7}, SweepParams{2, 2, 6},
                      SweepParams{3, 1, 6}, SweepParams{3, 2, 4},
                      SweepParams{4, 1, 5}),
    [](const ::testing::TestParamInfo<SweepParams>& info) {
      return "n" + std::to_string(info.param.n) + "_v" +
             std::to_string(info.param.num_values) + "_len" +
             std::to_string(info.param.max_len);
    });

}  // namespace
}  // namespace lbsa::spec
