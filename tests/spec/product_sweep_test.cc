// Product-composition sweeps: the combined objects ((n,m)-PAC, O' bundles)
// must behave EXACTLY like their standalone components running side by
// side — over every operation sequence up to a depth bound (for the
// deterministic (n,m)-PAC) and over randomized branch-synchronized walks
// (for the nondeterministic bundles). This is the composition lemma behind
// Observation 5.1(a) at spec level.
#include <gtest/gtest.h>

#include <functional>

#include "base/rng.h"
#include "spec/consensus_type.h"
#include "spec/ksa_type.h"
#include "spec/nm_pac_type.h"
#include "spec/oprime_type.h"
#include "spec/pac_type.h"

namespace lbsa::spec {
namespace {

TEST(ProductSweep, NmPacEqualsComponentsOnAllSequences) {
  const NmPacType combined(2, 2);
  const PacType pac(2);
  const NConsensusType cons(2);

  const std::vector<Operation> alphabet = {
      make_propose_c(10),          make_propose_c(20),
      make_propose_p(10, 1),       make_propose_p(20, 2),
      make_decide_p(1),            make_decide_p(2),
  };

  struct Walk {
    std::vector<std::int64_t> combined_state;
    std::vector<std::int64_t> pac_state;
    std::vector<std::int64_t> cons_state;
  };

  long steps_checked = 0;
  std::function<void(const Walk&, int)> dfs = [&](const Walk& walk,
                                                  int depth) {
    if (depth == 0) return;
    for (const Operation& op : alphabet) {
      const Outcome got = combined.apply_unique(walk.combined_state, op);
      Walk next = walk;
      next.combined_state = got.next_state;
      Value expected;
      if (op.code == OpCode::kProposeC) {
        const Outcome sub =
            cons.apply_unique(walk.cons_state, make_propose(op.arg0));
        expected = sub.response;
        next.cons_state = sub.next_state;
      } else if (op.code == OpCode::kProposeP) {
        const Outcome sub = pac.apply_unique(
            walk.pac_state, make_propose_labeled(op.arg0, op.arg1));
        expected = sub.response;
        next.pac_state = sub.next_state;
      } else {
        const Outcome sub =
            pac.apply_unique(walk.pac_state, make_decide_labeled(op.arg0));
        expected = sub.response;
        next.pac_state = sub.next_state;
      }
      ++steps_checked;
      ASSERT_EQ(got.response, expected)
          << combined.operation_to_string(op) << " at depth " << depth;
      // The combined state must literally be the concatenation.
      std::vector<std::int64_t> concat = next.pac_state;
      concat.insert(concat.end(), next.cons_state.begin(),
                    next.cons_state.end());
      ASSERT_EQ(next.combined_state, concat);
      dfs(next, depth - 1);
    }
  };

  Walk root{combined.initial_state(), pac.initial_state(),
            cons.initial_state()};
  dfs(root, 4);
  EXPECT_GT(steps_checked, 1000);
}

class OPrimeProductWalk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OPrimeProductWalk, BundleMatchesStandaloneMembers) {
  // Randomized branch-synchronized walk: at every step, the bundle's
  // outcome list must mirror the standalone member's (same responses, same
  // order — the bundle delegates), and picking the same branch keeps the
  // states in lockstep.
  Xoshiro256 rng(GetParam() * 31337 + 7);
  const OPrimeType bundle(std::vector<int>{2, 4, spec::kUnboundedPorts});
  std::vector<KsaType> members = {KsaType(2, 1), KsaType(4, 2),
                                  KsaType(kUnboundedPorts, 3)};

  auto bundle_state = bundle.initial_state();
  std::vector<std::vector<std::int64_t>> member_states;
  for (const KsaType& m : members) member_states.push_back(m.initial_state());

  for (int step = 0; step < 60; ++step) {
    const int level = static_cast<int>(rng.next_in_range(1, 3));
    const Value v = 100 + rng.next_in_range(0, 4);

    std::vector<Outcome> bundle_outcomes;
    bundle.apply(bundle_state, make_propose_k(v, level), &bundle_outcomes);
    std::vector<Outcome> member_outcomes;
    members[static_cast<size_t>(level - 1)].apply(
        member_states[static_cast<size_t>(level - 1)], make_propose(v),
        &member_outcomes);

    ASSERT_EQ(bundle_outcomes.size(), member_outcomes.size());
    for (size_t i = 0; i < bundle_outcomes.size(); ++i) {
      ASSERT_EQ(bundle_outcomes[i].response, member_outcomes[i].response);
    }
    const size_t pick =
        static_cast<size_t>(rng.next_below(bundle_outcomes.size()));
    bundle_state = bundle_outcomes[pick].next_state;
    member_states[static_cast<size_t>(level - 1)] =
        member_outcomes[pick].next_state;
    // Other members' slices must be untouched.
    for (int k = 1; k <= 3; ++k) {
      const auto slice = bundle.member_state(bundle_state, k);
      ASSERT_TRUE(std::equal(slice.begin(), slice.end(),
                             member_states[static_cast<size_t>(k - 1)]
                                 .begin()))
          << "level " << k << " step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OPrimeProductWalk,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace lbsa::spec
