// Differential tests of the classic specs against independent reference
// models (std::deque for the queue; direct variables for TAS/CAS/counter),
// over long randomized operation streams. Any divergence between the
// flattened state-machine encoding and the obvious model is a spec bug.
#include <gtest/gtest.h>

#include <deque>
#include <optional>

#include "base/rng.h"
#include "spec/classic_types.h"
#include "spec/counter_type.h"
#include "spec/register_type.h"

namespace lbsa::spec {
namespace {

class ReferenceDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReferenceDifferential, QueueMatchesDeque) {
  Xoshiro256 rng(GetParam() * 7 + 1);
  constexpr int kCapacity = 4;
  QueueType queue(kCapacity);
  auto state = queue.initial_state();
  std::deque<Value> model;

  for (int step = 0; step < 500; ++step) {
    if (rng.next_bool(0.55)) {
      const Value v = 100 + rng.next_in_range(0, 9);
      const Outcome got = queue.apply_unique(state, make_enqueue(v));
      if (static_cast<int>(model.size()) < kCapacity) {
        ASSERT_EQ(got.response, kDone) << "step " << step;
        model.push_back(v);
      } else {
        ASSERT_EQ(got.response, kBottom) << "step " << step;
      }
      state = got.next_state;
    } else {
      const Outcome got = queue.apply_unique(state, make_dequeue());
      if (model.empty()) {
        ASSERT_EQ(got.response, kNil) << "step " << step;
      } else {
        ASSERT_EQ(got.response, model.front()) << "step " << step;
        model.pop_front();
      }
      state = got.next_state;
    }
    ASSERT_EQ(QueueType::size(state),
              static_cast<std::int64_t>(model.size()));
  }
}

TEST_P(ReferenceDifferential, CasMatchesVariable) {
  Xoshiro256 rng(GetParam() * 13 + 2);
  CompareAndSwapType cas;
  auto state = cas.initial_state();
  Value model = kNil;

  for (int step = 0; step < 500; ++step) {
    if (rng.next_bool(0.3)) {
      ASSERT_EQ(cas.apply_unique(state, make_read()).response, model);
    } else {
      const Value expected =
          rng.next_bool(0.4) ? model : 100 + rng.next_in_range(0, 4);
      const Value desired = 100 + rng.next_in_range(0, 4);
      const Outcome got =
          cas.apply_unique(state, make_compare_and_swap(expected, desired));
      ASSERT_EQ(got.response, model) << "step " << step;
      if (model == expected) model = desired;
      state = got.next_state;
    }
  }
}

TEST_P(ReferenceDifferential, CounterMatchesVariable) {
  Xoshiro256 rng(GetParam() * 17 + 3);
  CounterType counter;
  auto state = counter.initial_state();
  Value model = 0;

  for (int step = 0; step < 500; ++step) {
    if (rng.next_bool(0.3)) {
      ASSERT_EQ(counter.apply_unique(state, make_read()).response, model);
    } else {
      const Value delta = rng.next_in_range(-5, 5);
      const Outcome got = counter.apply_unique(state, make_propose(delta));
      ASSERT_EQ(got.response, model);
      model += delta;
      state = got.next_state;
    }
  }
}

TEST_P(ReferenceDifferential, RegisterMatchesVariable) {
  Xoshiro256 rng(GetParam() * 23 + 4);
  RegisterType reg;
  auto state = reg.initial_state();
  Value model = kNil;

  for (int step = 0; step < 500; ++step) {
    if (rng.next_bool(0.5)) {
      ASSERT_EQ(reg.apply_unique(state, make_read()).response, model);
    } else {
      const Value v = 100 + rng.next_in_range(0, 9);
      state = reg.apply_unique(state, make_write(v)).next_state;
      model = v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceDifferential,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace lbsa::spec
