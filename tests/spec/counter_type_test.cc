#include "spec/counter_type.h"

#include <gtest/gtest.h>

namespace lbsa::spec {
namespace {

TEST(CounterType, InitialValue) {
  CounterType zero;
  EXPECT_EQ(zero.apply_unique(zero.initial_state(), make_read()).response, 0);
  CounterType ten(10);
  EXPECT_EQ(ten.apply_unique(ten.initial_state(), make_read()).response, 10);
}

TEST(CounterType, FetchAddReturnsOldValue) {
  CounterType counter;
  auto s = counter.initial_state();
  Outcome a = counter.apply_unique(s, make_propose(5));
  EXPECT_EQ(a.response, 0);
  Outcome b = counter.apply_unique(a.next_state, make_propose(3));
  EXPECT_EQ(b.response, 5);
  EXPECT_EQ(counter.apply_unique(b.next_state, make_read()).response, 8);
}

TEST(CounterType, NegativeDeltas) {
  CounterType counter;
  auto s = counter.initial_state();
  s = counter.apply_unique(s, make_propose(-4)).next_state;
  EXPECT_EQ(counter.apply_unique(s, make_read()).response, -4);
}

TEST(CounterType, ValidateRejectsForeignOps) {
  CounterType counter;
  EXPECT_TRUE(counter.validate(make_read()).is_ok());
  EXPECT_TRUE(counter.validate(make_propose(1)).is_ok());
  EXPECT_FALSE(counter.validate(make_write(1)).is_ok());
  EXPECT_FALSE(counter.validate(make_propose(kNil)).is_ok());
}

TEST(CounterType, ReadDoesNotPerturb) {
  CounterType counter;
  auto s = counter.apply_unique(counter.initial_state(), make_propose(7))
               .next_state;
  EXPECT_EQ(counter.apply_unique(s, make_read()).next_state, s);
}

}  // namespace
}  // namespace lbsa::spec
