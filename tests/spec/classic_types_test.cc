#include "spec/classic_types.h"

#include <gtest/gtest.h>

namespace lbsa::spec {
namespace {

// ------------------------------- test&set ---------------------------------

TEST(TestAndSetType, FirstCallerWins) {
  TestAndSetType tas;
  auto s = tas.initial_state();
  Outcome first = tas.apply_unique(s, make_test_and_set());
  EXPECT_EQ(first.response, 0);
  Outcome second = tas.apply_unique(first.next_state, make_test_and_set());
  EXPECT_EQ(second.response, 1);
  Outcome third = tas.apply_unique(second.next_state, make_test_and_set());
  EXPECT_EQ(third.response, 1);
}

TEST(TestAndSetType, ValidateRejectsArgs) {
  TestAndSetType tas;
  EXPECT_TRUE(tas.validate(make_test_and_set()).is_ok());
  EXPECT_FALSE(tas.validate(make_read()).is_ok());
  EXPECT_FALSE(
      tas.validate(Operation{OpCode::kTestAndSet, 1, kNil}).is_ok());
}

// ----------------------------- compare&swap -------------------------------

TEST(CompareAndSwapType, SuccessfulCasInstallsValue) {
  CompareAndSwapType cas;
  auto s = cas.initial_state();
  Outcome o = cas.apply_unique(s, make_compare_and_swap(kNil, 7));
  EXPECT_EQ(o.response, kNil);  // pre-operation value: we won
  EXPECT_EQ(cas.apply_unique(o.next_state, make_read()).response, 7);
}

TEST(CompareAndSwapType, FailedCasLeavesValue) {
  CompareAndSwapType cas(5);
  auto s = cas.initial_state();
  Outcome o = cas.apply_unique(s, make_compare_and_swap(kNil, 7));
  EXPECT_EQ(o.response, 5);  // lost: the response names the current value
  EXPECT_EQ(cas.apply_unique(o.next_state, make_read()).response, 5);
}

TEST(CompareAndSwapType, ChainedCas) {
  CompareAndSwapType cas;
  auto s = cas.initial_state();
  s = cas.apply_unique(s, make_compare_and_swap(kNil, 1)).next_state;
  s = cas.apply_unique(s, make_compare_and_swap(1, 2)).next_state;
  EXPECT_EQ(cas.apply_unique(s, make_read()).response, 2);
  // Wrong expected value: no change.
  s = cas.apply_unique(s, make_compare_and_swap(1, 9)).next_state;
  EXPECT_EQ(cas.apply_unique(s, make_read()).response, 2);
}

TEST(CompareAndSwapType, Validate) {
  CompareAndSwapType cas;
  EXPECT_TRUE(cas.validate(make_compare_and_swap(kNil, 1)).is_ok());
  EXPECT_TRUE(cas.validate(make_compare_and_swap(3, 1)).is_ok());
  EXPECT_TRUE(cas.validate(make_read()).is_ok());
  EXPECT_FALSE(cas.validate(make_compare_and_swap(1, kNil)).is_ok());
  EXPECT_FALSE(cas.validate(make_write(1)).is_ok());
}

// --------------------------------- queue ----------------------------------

TEST(QueueType, FifoOrder) {
  QueueType queue(4);
  auto s = queue.initial_state();
  s = queue.apply_unique(s, make_enqueue(1)).next_state;
  s = queue.apply_unique(s, make_enqueue(2)).next_state;
  s = queue.apply_unique(s, make_enqueue(3)).next_state;
  Outcome a = queue.apply_unique(s, make_dequeue());
  EXPECT_EQ(a.response, 1);
  Outcome b = queue.apply_unique(a.next_state, make_dequeue());
  EXPECT_EQ(b.response, 2);
  Outcome c = queue.apply_unique(b.next_state, make_dequeue());
  EXPECT_EQ(c.response, 3);
  EXPECT_EQ(QueueType::size(c.next_state), 0);
}

TEST(QueueType, EmptyDequeueReturnsNil) {
  QueueType queue(2);
  const auto s = queue.initial_state();
  EXPECT_EQ(queue.apply_unique(s, make_dequeue()).response, kNil);
}

TEST(QueueType, FullEnqueueReturnsBottom) {
  QueueType queue(1);
  auto s = queue.apply_unique(queue.initial_state(), make_enqueue(1))
               .next_state;
  Outcome o = queue.apply_unique(s, make_enqueue(2));
  EXPECT_EQ(o.response, kBottom);
  EXPECT_EQ(o.next_state, s);  // rejected enqueue leaves the queue intact
}

TEST(QueueType, InitialItemsServeFirst) {
  QueueType queue(3, {10, 20});
  auto s = queue.initial_state();
  EXPECT_EQ(QueueType::size(s), 2);
  Outcome a = queue.apply_unique(s, make_dequeue());
  EXPECT_EQ(a.response, 10);
  Outcome b = queue.apply_unique(a.next_state, make_dequeue());
  EXPECT_EQ(b.response, 20);
}

TEST(QueueType, InterleavedEnqueueDequeue) {
  QueueType queue(2);
  auto s = queue.initial_state();
  s = queue.apply_unique(s, make_enqueue(1)).next_state;
  Outcome d = queue.apply_unique(s, make_dequeue());
  EXPECT_EQ(d.response, 1);
  s = queue.apply_unique(d.next_state, make_enqueue(2)).next_state;
  s = queue.apply_unique(s, make_enqueue(3)).next_state;
  EXPECT_EQ(queue.apply_unique(s, make_dequeue()).response, 2);
}

}  // namespace
}  // namespace lbsa::spec
