#include "spec/register_type.h"

#include <gtest/gtest.h>

namespace lbsa::spec {
namespace {

TEST(RegisterType, InitiallyNil) {
  RegisterType reg;
  const auto state = reg.initial_state();
  EXPECT_EQ(reg.apply_unique(state, make_read()).response, kNil);
}

TEST(RegisterType, InitialValueRespected) {
  RegisterType reg(42);
  EXPECT_EQ(reg.apply_unique(reg.initial_state(), make_read()).response, 42);
}

TEST(RegisterType, WriteThenReadRoundTrips) {
  RegisterType reg;
  auto state = reg.initial_state();
  Outcome w = reg.apply_unique(state, make_write(7));
  EXPECT_EQ(w.response, kDone);
  EXPECT_EQ(reg.apply_unique(w.next_state, make_read()).response, 7);
}

TEST(RegisterType, LastWriteWins) {
  RegisterType reg;
  auto state = reg.initial_state();
  state = reg.apply_unique(state, make_write(1)).next_state;
  state = reg.apply_unique(state, make_write(2)).next_state;
  state = reg.apply_unique(state, make_write(3)).next_state;
  EXPECT_EQ(reg.apply_unique(state, make_read()).response, 3);
}

TEST(RegisterType, ReadDoesNotPerturbState) {
  RegisterType reg;
  auto state = reg.apply_unique(reg.initial_state(), make_write(5)).next_state;
  const Outcome r = reg.apply_unique(state, make_read());
  EXPECT_EQ(r.next_state, state);
}

TEST(RegisterType, ValidateRejectsForeignOps) {
  RegisterType reg;
  EXPECT_TRUE(reg.validate(make_read()).is_ok());
  EXPECT_TRUE(reg.validate(make_write(1)).is_ok());
  EXPECT_FALSE(reg.validate(make_propose(1)).is_ok());
  EXPECT_FALSE(reg.validate(make_write(kNil)).is_ok());
  EXPECT_FALSE(reg.validate(make_write(kBottom)).is_ok());
}

TEST(RegisterType, IsDeterministic) {
  EXPECT_TRUE(RegisterType().deterministic());
}

}  // namespace
}  // namespace lbsa::spec
