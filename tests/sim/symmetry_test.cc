// Properties of the symmetry layer (sim/symmetry.h): group enumeration,
// equivariant renaming, and the canonicalization contract the reduced
// explorer relies on —
//   * canonicalize is idempotent,
//   * canon(g(C)) == canon(C) for every group element g (permutation
//     invariance), on RNG-hammered reachable configurations,
//   * the canonical encoding is the exact minimum over the enumerated
//     group, and encode() round-trips through it,
//   * orbit sizes divide the group order (orbit-stabilizer).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "base/hashing.h"
#include "base/rng.h"
#include "protocols/consensus_from_nm_pac.h"
#include "protocols/dac_from_nm_pac.h"
#include "protocols/dac_from_pac.h"
#include "protocols/one_shot.h"
#include "protocols/straw_dac.h"
#include "sim/config.h"
#include "sim/symmetry.h"
#include "spec/nm_pac_type.h"

namespace lbsa::sim {
namespace {

using protocols::ConsensusFromNmPacProtocol;
using protocols::DacFromNmPacProtocol;
using protocols::DacFromPacProtocol;
using protocols::StrawDacFallbackProtocol;
using protocols::make_consensus_via_n_consensus;

// Random walk of `steps` steps from the initial configuration (uniform
// enabled pid, uniform outcome). Stops early if the run halts.
Config random_reachable_config(const Protocol& protocol, int steps,
                               Xoshiro256* rng) {
  Config config = initial_config(protocol);
  std::vector<Successor> successors;
  for (int i = 0; i < steps && !config.halted(); ++i) {
    std::vector<int> enabled;
    for (int pid = 0; pid < protocol.process_count(); ++pid) {
      if (config.enabled(pid)) enabled.push_back(pid);
    }
    const int pid =
        enabled[static_cast<size_t>(rng->next_below(enabled.size()))];
    const int choices = outcome_count(protocol, config, pid);
    apply_step(protocol, &config, pid,
               static_cast<int>(rng->next_below(
                   static_cast<std::uint64_t>(choices))));
  }
  return config;
}

TEST(SymmetrySpec, NoneIsTrivial) {
  const SymmetrySpec spec = SymmetrySpec::none(4);
  EXPECT_TRUE(spec.trivial());
  EXPECT_EQ(symmetry_group(spec).size(), 1u);
  for (int pid = 0; pid < 4; ++pid) EXPECT_TRUE(spec.is_singleton(pid));
}

TEST(SymmetrySpec, FullGroupIsSymmetricGroup) {
  const SymmetrySpec spec = SymmetrySpec::full(3);
  EXPECT_FALSE(spec.trivial());
  const auto group = symmetry_group(spec);
  EXPECT_EQ(group.size(), 6u);  // |S_3|
  // Identity first — the canonicalizer's fast path depends on it.
  EXPECT_EQ(group[0], (std::vector<int>{0, 1, 2}));
  // All elements distinct permutations.
  auto sorted = group;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(SymmetrySpec, ByValueGroupsEqualInputsAndRespectsFixed) {
  // Inputs {7, 9, 9, 7} with pid 0 pinned: orbits {0}, {1,2}, {3}.
  const SymmetrySpec spec = SymmetrySpec::by_value({7, 9, 9, 7}, {0});
  EXPECT_TRUE(spec.is_singleton(0));
  EXPECT_FALSE(spec.is_singleton(1));
  EXPECT_TRUE(spec.is_singleton(3));  // 3 matches 0's value, but 0 is fixed
  EXPECT_EQ(symmetry_group(spec).size(), 2u);
}

TEST(SymmetrySpec, GroupElementsPreserveOrbits) {
  const SymmetrySpec spec = SymmetrySpec::by_value({1, 2, 2, 2, 1});
  const auto group = symmetry_group(spec);
  EXPECT_EQ(group.size(), 12u);  // 2! * 3!
  for (const auto& perm : group) {
    for (int p = 0; p < 5; ++p) {
      EXPECT_EQ(spec.orbit_of[static_cast<size_t>(perm[static_cast<size_t>(p)])],
                spec.orbit_of[static_cast<size_t>(p)]);
    }
  }
}

TEST(Symmetry, ApplyPermutationInverseRoundTrips) {
  auto protocol = std::make_shared<DacFromPacProtocol>(
      std::vector<Value>{100, 100, 100});
  Xoshiro256 rng(7);
  const std::vector<int> perm{0, 2, 1};  // its own inverse
  for (int trial = 0; trial < 50; ++trial) {
    const Config config = random_reachable_config(*protocol, 12, &rng);
    Config renamed = config;
    apply_pid_permutation(*protocol, perm, &renamed);
    apply_pid_permutation(*protocol, perm, &renamed);
    EXPECT_EQ(renamed, config);
  }
}

struct CanonCase {
  const char* name;
  std::shared_ptr<const Protocol> protocol;
};

std::vector<CanonCase> canon_cases() {
  return {
      {"dac3-equal", std::make_shared<DacFromPacProtocol>(
                         std::vector<Value>{100, 100, 100})},
      {"dac4-equal", std::make_shared<DacFromPacProtocol>(
                         std::vector<Value>{100, 100, 100, 100})},
      {"consensus3-equal", make_consensus_via_n_consensus({100, 100, 100})},
      {"strawdac3-equal", std::make_shared<StrawDacFallbackProtocol>(
                              std::vector<Value>{100, 100, 100})},
      // Composite (n,m)-PAC states: the P-part stores pid-derived labels
      // and V-slots, the C-part only values — NmPacType::rename_pids must
      // keep every canonicalizer property on both ports.
      {"dac-nmpac32-equal", std::make_shared<DacFromNmPacProtocol>(
                                std::vector<Value>{100, 100, 100}, 2)},
      {"consensus-nmpac32-equal",
       std::make_shared<ConsensusFromNmPacProtocol>(
           3, 2, std::vector<Value>{100, 100})},
  };
}

TEST(Canonicalizer, IdempotentAndPermutationInvariant) {
  for (const CanonCase& c : canon_cases()) {
    SCOPED_TRACE(c.name);
    const Canonicalizer canon(c.protocol, c.protocol->symmetry());
    ASSERT_GE(canon.group_size(), 2u);
    const auto group = symmetry_group(canon.spec());
    Xoshiro256 rng(42);
    for (int trial = 0; trial < 40; ++trial) {
      Config config = random_reachable_config(*c.protocol, 15, &rng);
      Config canonical = config;
      canon.canonicalize(&canonical);
      // Idempotent: canonicalizing the representative is the identity.
      Config twice = canonical;
      std::vector<std::uint8_t> perm;
      canon.canonicalize(&twice, &perm);
      EXPECT_EQ(twice, canonical);
      EXPECT_TRUE(perm.empty()) << "representative got renamed again";
      // Invariant: every group image canonicalizes to the same
      // representative.
      for (const auto& g : group) {
        Config image = config;
        apply_pid_permutation(*c.protocol, g, &image);
        canon.canonicalize(&image);
        EXPECT_EQ(image, canonical);
      }
    }
  }
}

TEST(Canonicalizer, CanonicalEncodingIsGroupMinimumAndRoundTrips) {
  for (const CanonCase& c : canon_cases()) {
    SCOPED_TRACE(c.name);
    const Canonicalizer canon(c.protocol, c.protocol->symmetry());
    const auto group = symmetry_group(canon.spec());
    Xoshiro256 rng(3);
    std::vector<std::int64_t> key;
    for (int trial = 0; trial < 40; ++trial) {
      const Config config = random_reachable_config(*c.protocol, 15, &rng);
      canon.canonical_encode_into(config, &key);
      // Exact minimum over the enumerated group.
      std::vector<std::int64_t> best;
      for (const auto& g : group) {
        Config image = config;
        apply_pid_permutation(*c.protocol, g, &image);
        const auto enc = image.encode();
        if (best.empty() || enc < best) best = enc;
      }
      EXPECT_EQ(key, best);
      // encode() of the canonicalized configuration IS the canonical key
      // (round-trip identity the interner relies on).
      Config canonical = config;
      canon.canonicalize(&canonical);
      EXPECT_EQ(canonical.encode(), key);
    }
  }
}

TEST(Canonicalizer, OrbitSizeDividesGroupOrder) {
  for (const CanonCase& c : canon_cases()) {
    SCOPED_TRACE(c.name);
    const Canonicalizer canon(c.protocol, c.protocol->symmetry());
    Xoshiro256 rng(11);
    for (int trial = 0; trial < 20; ++trial) {
      const Config config = random_reachable_config(*c.protocol, 15, &rng);
      const std::uint64_t orbit = canon.orbit_size(config);
      ASSERT_GE(orbit, 1u);
      EXPECT_EQ(canon.group_size() % orbit, 0u)
          << orbit << " does not divide " << canon.group_size();
    }
  }
}

TEST(Canonicalizer, InitialConfigIsItsOwnOrbitRepresentative) {
  for (const CanonCase& c : canon_cases()) {
    SCOPED_TRACE(c.name);
    const Canonicalizer canon(c.protocol, c.protocol->symmetry());
    Config init = initial_config(*c.protocol);
    // The declared group fixes the initial configuration (checked at
    // construction), so its orbit is a singleton.
    EXPECT_EQ(canon.orbit_size(init), 1u);
    const Config before = init;
    canon.canonicalize(&init);
    EXPECT_EQ(init, before);
  }
}

TEST(Symmetry, NmPacRenameEquivariance) {
  // rename(apply(s, op)) == apply(rename(s), rename(op)) on the composite
  // (n,m)-PAC state: P-port labels are pid-derived (label = pid + 1), C-port
  // operations carry only values and must pass through untouched.
  spec::NmPacType type(3, 2);
  const std::vector<int> perm{1, 0, 2};  // swap pids 0 and 1
  const std::vector<std::pair<spec::Operation, spec::Operation>> steps{
      {spec::make_propose_p(700, 2), spec::make_propose_p(700, 1)},
      {spec::make_decide_p(1), spec::make_decide_p(2)},
      {spec::make_propose_c(500), spec::make_propose_c(500)},
  };
  std::vector<std::int64_t> state = type.initial_state();
  std::vector<std::int64_t> renamed_run = type.initial_state();
  for (const auto& [op, renamed_op] : steps) {
    const auto outcome = type.apply_unique(state, op);
    const auto renamed_outcome = type.apply_unique(renamed_run, renamed_op);
    EXPECT_EQ(outcome.response, renamed_outcome.response);
    state = outcome.next_state;
    renamed_run = renamed_outcome.next_state;

    std::vector<std::int64_t> renamed_state = state;
    type.rename_pids(perm, &renamed_state);
    EXPECT_EQ(renamed_state, renamed_run);
  }
}

TEST(Symmetry, NmPacRenamePadsShortPermutations) {
  // A consensus-port protocol runs p <= m < n processes, so the model
  // checker hands rename_pids a p-sized permutation: pids beyond it are
  // fixed points of the padded renaming.
  spec::NmPacType type(4, 2);
  const std::vector<int> short_perm{1, 0};
  std::vector<std::int64_t> state = type.initial_state();
  for (const auto& op :
       {spec::make_propose_p(700, 1), spec::make_propose_p(800, 2),
        spec::make_propose_p(900, 3)}) {
    state = type.apply_unique(state, op).next_state;
  }
  std::vector<std::int64_t> renamed = state;
  type.rename_pids(short_perm, &renamed);

  std::vector<std::int64_t> expected = type.initial_state();
  for (const auto& op :
       {spec::make_propose_p(700, 2), spec::make_propose_p(800, 1),
        spec::make_propose_p(900, 3)}) {  // labels 1 <-> 2, label 3 fixed
    expected = type.apply_unique(expected, op).next_state;
  }
  EXPECT_EQ(renamed, expected);
}

// --- Pruned / cached canonical search vs the brute-force oracle ----------

// The production path (branch-and-bound, fast path, orbit cache) must match
// the retained brute-force reference bit for bit — key AND discovery perm.
// This is also the pairing-contract net for locals_store_pids /
// renames_pids: a type that rewrites pids while claiming it doesn't would
// make the pruned comparator diverge from the oracle here.
TEST(Canonicalizer, PrunedAndCachedSearchMatchesBruteForceOracle) {
  for (const CanonCase& c : canon_cases()) {
    SCOPED_TRACE(c.name);
    const Canonicalizer canon(c.protocol, c.protocol->symmetry());
    CanonScratch scratch;
    scratch.attach_cache(std::make_shared<CanonCache>(std::size_t{1} << 16));
    Xoshiro256 rng(2026);
    std::vector<std::int64_t> pruned, oracle;
    std::vector<std::uint8_t> pruned_perm, oracle_perm;
    for (int trial = 0; trial < 150; ++trial) {
      const Config config = random_reachable_config(*c.protocol, 20, &rng);
      canon.brute_force_canonical_encode_into(config, &oracle, &oracle_perm);
      canon.canonical_encode_into(config, &pruned, &pruned_perm, &scratch);
      ASSERT_EQ(pruned, oracle);
      ASSERT_EQ(pruned_perm, oracle_perm);
      // Ask again: the second query answers from the cache and must agree.
      canon.canonical_encode_into(config, &pruned, &pruned_perm, &scratch);
      ASSERT_EQ(pruned, oracle);
      ASSERT_EQ(pruned_perm, oracle_perm);
    }
    EXPECT_GT(scratch.cache_hits, 0u);
    EXPECT_GT(scratch.cache_misses, 0u);
  }
}

TEST(Canonicalizer, IdempotentWithCacheEnabled) {
  for (const CanonCase& c : canon_cases()) {
    SCOPED_TRACE(c.name);
    const Canonicalizer canon(c.protocol, c.protocol->symmetry());
    CanonScratch scratch;
    scratch.attach_cache(std::make_shared<CanonCache>(std::size_t{1} << 16));
    Xoshiro256 rng(9);
    std::vector<std::int64_t> once, twice;
    std::vector<std::uint8_t> perm;
    for (int trial = 0; trial < 80; ++trial) {
      const Config config = random_reachable_config(*c.protocol, 20, &rng);
      canon.canonical_encode_into(config, &once, &perm, &scratch);
      Config rep = config;
      canon.canonicalize(&rep, &perm, &scratch);
      // canon(canon(x)) == canon(x), with the cache live on both queries.
      canon.canonical_encode_into(rep, &twice, &perm, &scratch);
      EXPECT_EQ(twice, once);
      EXPECT_TRUE(perm.empty()) << "representative got renamed again";
    }
  }
}

// A cache far too small for the working set epoch-resets instead of
// evicting; correctness must be untouched (it is lossy, never wrong).
TEST(Canonicalizer, TinyCacheEpochResetsStayCorrect) {
  const CanonCase c = canon_cases().front();
  const Canonicalizer canon(c.protocol, c.protocol->symmetry());
  CanonScratch scratch;
  // Below the clamp floor: the smallest cache the class will build.
  auto cache = std::make_shared<CanonCache>(1);
  scratch.attach_cache(cache);
  Xoshiro256 rng(17);
  std::vector<std::int64_t> got, oracle;
  std::vector<std::uint8_t> got_perm, oracle_perm;
  for (int trial = 0; trial < 400; ++trial) {
    const Config config = random_reachable_config(*c.protocol, 25, &rng);
    canon.canonical_encode_into(config, &got, &got_perm, &scratch);
    canon.brute_force_canonical_encode_into(config, &oracle, &oracle_perm);
    ASSERT_EQ(got, oracle);
    ASSERT_EQ(got_perm, oracle_perm);
  }
}

TEST(CanonCache, ExactKeyVerifyAndUniverseInvalidation) {
  CanonCache cache(std::size_t{1} << 14);
  cache.ensure_universe(1);
  const std::vector<std::int64_t> raw{4, 1, 2, 3};
  const std::vector<std::int64_t> canonical{4, 1, 1, 9};
  const std::vector<std::uint8_t> perm{0, 2, 1};
  const Hash128 fp = hash_words_128(raw);
  std::vector<std::int64_t> out;
  std::vector<std::uint8_t> perm_out;
  EXPECT_FALSE(cache.lookup(fp, raw, &out, &perm_out));
  cache.insert(fp, raw, canonical, perm);
  ASSERT_TRUE(cache.lookup(fp, raw, &out, &perm_out));
  EXPECT_EQ(out, canonical);
  EXPECT_EQ(perm_out, perm);
  // Hits verify the full raw key, not just the fingerprint: a different
  // raw with a forged matching fingerprint must miss.
  const std::vector<std::int64_t> other{4, 1, 2, 7};
  EXPECT_FALSE(cache.lookup(fp, other, &out, &perm_out));
  // A universe change drops the entries for good.
  cache.ensure_universe(2);
  EXPECT_FALSE(cache.lookup(fp, raw, &out, &perm_out));
  cache.ensure_universe(2);  // same salt again: still empty, no flapping
  EXPECT_FALSE(cache.lookup(fp, raw, &out, &perm_out));
}

TEST(CanonCachePool, OneCachePerWorkerKeptAcrossCalls) {
  CanonCachePool pool(std::size_t{1} << 14);
  const auto w0 = pool.worker_cache(0, /*salt=*/5);
  const auto w1 = pool.worker_cache(1, /*salt=*/5);
  EXPECT_NE(w0, nullptr);
  EXPECT_NE(w0, w1);
  // Same worker, same salt: the same warm cache comes back.
  EXPECT_EQ(pool.worker_cache(0, /*salt=*/5), w0);
}

using SymmetryGroupDeathTest = ::testing::Test;

TEST(SymmetryGroupDeathTest, TooLargeGroupNamesOrbitSizesAndByValueFix) {
  // Two orbits of six (720 * 720 arrangements) blow the enumeration cap;
  // the abort message must name the orbit sizes and point at by_value.
  std::vector<Value> inputs(12, 100);
  for (int i = 6; i < 12; ++i) inputs[static_cast<std::size_t>(i)] = 200;
  const SymmetrySpec spec = SymmetrySpec::by_value(inputs, {});
  EXPECT_DEATH(symmetry_group(spec),
               "orbit sizes \\{6, 6\\}.*SymmetrySpec::by_value");
}

TEST(Symmetry, DistinctInputsDeclareTrivialGroups) {
  // by_value produces singleton orbits when inputs differ, so protocols
  // with distinguishable processes opt out of reduction automatically.
  auto protocol = std::make_shared<DacFromPacProtocol>(
      std::vector<Value>{100, 101, 102});
  EXPECT_TRUE(protocol->symmetry().trivial());
}

}  // namespace
}  // namespace lbsa::sim
