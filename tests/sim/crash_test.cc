// Crash-fault injection: the model is crash-stop (a crashed process simply
// never steps again), and the safety properties of every task must be
// crash-insensitive. These tests sweep crash times and victims across
// seeded adversarial runs.
#include <gtest/gtest.h>

#include "protocols/dac_from_pac.h"
#include "protocols/group_ksa.h"
#include "protocols/one_shot.h"
#include "sim/simulation.h"

namespace lbsa::sim {
namespace {

using protocols::DacFromPacProtocol;
using protocols::GroupKsaProtocol;
using protocols::make_consensus_via_n_consensus;

std::vector<Value> iota_inputs(int n) {
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
  return inputs;
}

TEST(CrashInjection, DacSafetySurvivesAnySingleCrash) {
  const int n = 3;
  const auto inputs = iota_inputs(n);
  for (int victim = 0; victim < n; ++victim) {
    for (std::uint64_t crash_step = 0; crash_step < 12; ++crash_step) {
      for (std::uint64_t seed = 0; seed < 10; ++seed) {
        auto protocol = std::make_shared<DacFromPacProtocol>(inputs);
        Simulation simulation(protocol);
        RandomAdversary inner(seed);
        CrashingAdversary adversary(&inner, {{crash_step, victim}});
        simulation.run(&adversary, {.max_steps = 50'000});
        const auto decisions = simulation.distinct_decisions();
        ASSERT_LE(decisions.size(), 1u)
            << "victim " << victim << " step " << crash_step << " seed "
            << seed;
        if (!decisions.empty()) {
          bool valid = false;
          for (int pid = 0; pid < n; ++pid) {
            if (inputs[static_cast<size_t>(pid)] == decisions[0] &&
                !simulation.config().procs[static_cast<size_t>(pid)]
                     .aborted()) {
              valid = true;
            }
          }
          ASSERT_TRUE(valid);
        }
      }
    }
  }
}

TEST(CrashInjection, SurvivorsOfDacStillTerminateSolo) {
  // Crash everyone but one q != p mid-run; q running on must decide
  // (Termination (b) is exactly about runs where the others stop).
  const auto inputs = iota_inputs(3);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    auto protocol = std::make_shared<DacFromPacProtocol>(inputs);
    Simulation simulation(protocol);
    RandomAdversary warmup(seed);
    simulation.run(&warmup, {.max_steps = seed % 7});
    simulation.crash(0);
    simulation.crash(1);
    if (!simulation.config().enabled(2)) continue;  // already terminated
    SoloAdversary solo(2);
    const auto result = simulation.run(&solo, {.max_steps = 1'000});
    ASSERT_TRUE(result.all_terminated) << "seed " << seed;
    ASSERT_TRUE(simulation.config().procs[2].decided()) << "seed " << seed;
  }
}

TEST(CrashInjection, ConsensusSafetyUnderCascadingCrashes) {
  const auto inputs = iota_inputs(4);
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    auto protocol = make_consensus_via_n_consensus(inputs);
    Simulation simulation(protocol);
    RandomAdversary inner(seed);
    CrashingAdversary adversary(
        &inner, {{2, static_cast<int>(seed % 4)},
                 {4, static_cast<int>((seed + 1) % 4)}});
    simulation.run(&adversary, {.max_steps = 10'000});
    ASSERT_LE(simulation.distinct_decisions().size(), 1u) << "seed " << seed;
  }
}

TEST(CrashInjection, GroupKsaBoundHoldsUnderCrashes) {
  const auto inputs = iota_inputs(4);
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    auto protocol = std::make_shared<GroupKsaProtocol>(2, 2, inputs);
    Simulation simulation(protocol);
    RandomAdversary inner(seed);
    CrashingAdversary adversary(&inner,
                                {{1, static_cast<int>(seed % 4)}});
    simulation.run(&adversary, {.max_steps = 10'000});
    ASSERT_LE(simulation.distinct_decisions().size(), 2u) << "seed " << seed;
  }
}

TEST(CrashInjection, CrashedDistinguishedProcessNeverAborts) {
  // A crash is not an abort: p crashing must leave status kCrashed, and the
  // validity accounting treats it as a non-aborting proposer.
  const auto inputs = iota_inputs(3);
  auto protocol = std::make_shared<DacFromPacProtocol>(inputs);
  Simulation simulation(protocol);
  simulation.step(0);  // p proposes
  simulation.crash(0);
  RoundRobinAdversary adversary;
  simulation.run(&adversary, {.max_steps = 10'000});
  EXPECT_TRUE(simulation.config().procs[0].crashed());
  EXPECT_FALSE(simulation.config().procs[0].aborted());
}

}  // namespace
}  // namespace lbsa::sim
