#include "sim/process_state.h"

#include <gtest/gtest.h>

#include "sim/action.h"

namespace lbsa::sim {
namespace {

TEST(ProcessState, DefaultsToRunningAtPcZero) {
  ProcessState ps;
  EXPECT_TRUE(ps.running());
  EXPECT_FALSE(ps.decided());
  EXPECT_EQ(ps.pc, 0);
  EXPECT_TRUE(ps.locals.empty());
}

TEST(ProcessState, StatusPredicatesAreExclusive) {
  ProcessState ps;
  ps.status = ProcStatus::kDecided;
  ps.decision = 7;
  EXPECT_TRUE(ps.decided());
  EXPECT_FALSE(ps.running());
  EXPECT_FALSE(ps.aborted());
  EXPECT_FALSE(ps.crashed());
}

TEST(ProcessState, EncodeIsInjectiveOnDifferences) {
  ProcessState a;
  a.locals = {1, 2};
  ProcessState b = a;

  auto encode = [](const ProcessState& ps) {
    std::vector<std::int64_t> out;
    ps.encode(&out);
    return out;
  };

  EXPECT_EQ(encode(a), encode(b));
  b.pc = 1;
  EXPECT_NE(encode(a), encode(b));
  b = a;
  b.locals[1] = 3;
  EXPECT_NE(encode(a), encode(b));
  b = a;
  b.status = ProcStatus::kAborted;
  EXPECT_NE(encode(a), encode(b));
  b = a;
  b.locals.push_back(0);
  EXPECT_NE(encode(a), encode(b));
}

TEST(ProcessState, ToStringShowsDecision) {
  ProcessState ps;
  ps.status = ProcStatus::kDecided;
  ps.decision = 42;
  ps.locals = {1};
  const std::string text = ps.to_string();
  EXPECT_NE(text.find("decided"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(ProcStatusNames, AllCovered) {
  EXPECT_STREQ(proc_status_name(ProcStatus::kRunning), "running");
  EXPECT_STREQ(proc_status_name(ProcStatus::kDecided), "decided");
  EXPECT_STREQ(proc_status_name(ProcStatus::kAborted), "aborted");
  EXPECT_STREQ(proc_status_name(ProcStatus::kCrashed), "crashed");
}

TEST(Action, FactoriesSetKindAndPayload) {
  const Action invoke = Action::invoke(2, spec::make_propose(9));
  EXPECT_EQ(invoke.kind, Action::Kind::kInvoke);
  EXPECT_EQ(invoke.object_index, 2);
  EXPECT_EQ(invoke.op.arg0, 9);

  const Action decide = Action::decide(5);
  EXPECT_EQ(decide.kind, Action::Kind::kDecide);
  EXPECT_EQ(decide.decision, 5);

  const Action abort = Action::abort();
  EXPECT_EQ(abort.kind, Action::Kind::kAbort);
}

TEST(Action, EqualityComparesAllFields) {
  EXPECT_EQ(Action::decide(5), Action::decide(5));
  EXPECT_NE(Action::decide(5), Action::decide(6));
  EXPECT_NE(Action::invoke(0, spec::make_read()),
            Action::invoke(1, spec::make_read()));
}

}  // namespace
}  // namespace lbsa::sim
