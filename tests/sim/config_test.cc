// Tests for the configuration semantics: initial configs, step application,
// successor enumeration, encoding/hashing.
#include "sim/config.h"

#include <gtest/gtest.h>

#include "protocols/dac_from_pac.h"
#include "protocols/one_shot.h"

namespace lbsa::sim {
namespace {

using protocols::DacFromPacProtocol;
using protocols::make_consensus_via_n_consensus;
using protocols::make_ksa_via_two_sa;

TEST(Config, InitialConfigShape) {
  auto protocol = std::make_shared<DacFromPacProtocol>(
      std::vector<Value>{10, 20, 30});
  const Config config = initial_config(*protocol);
  ASSERT_EQ(config.procs.size(), 3u);
  ASSERT_EQ(config.objects.size(), 1u);
  for (const ProcessState& ps : config.procs) {
    EXPECT_TRUE(ps.running());
    EXPECT_EQ(ps.pc, 0);
  }
  EXPECT_EQ(config.procs[0].locals[0], 10);
  EXPECT_EQ(config.procs[2].locals[0], 30);
  EXPECT_EQ(config.enabled_count(), 3);
  EXPECT_FALSE(config.halted());
}

TEST(Config, EncodeDistinguishesConfigs) {
  auto protocol = make_consensus_via_n_consensus({10, 20});
  Config a = initial_config(*protocol);
  Config b = a;
  EXPECT_EQ(a.encode(), b.encode());
  EXPECT_EQ(a.hash(), b.hash());
  apply_step(*protocol, &b, 0, 0);
  EXPECT_NE(a.encode(), b.encode());
  EXPECT_NE(a, b);
}

TEST(Config, EncodeIntoMatchesEncodeAndReservesExactly) {
  auto protocol = std::make_shared<DacFromPacProtocol>(
      std::vector<Value>{10, 20, 30});
  Config config = initial_config(*protocol);
  std::vector<std::int64_t> scratch{1, 2, 3};  // stale content is discarded
  for (int step = 0; step < 6; ++step) {
    config.encode_into(&scratch);
    EXPECT_EQ(scratch, config.encode());
    EXPECT_EQ(scratch.size(), config.encoded_size());
    // A fresh buffer gets one exact-size allocation, no growth.
    std::vector<std::int64_t> fresh;
    config.encode_into(&fresh);
    EXPECT_EQ(fresh.capacity(), config.encoded_size());
    apply_step(*protocol, &config, step % 3, 0);
  }
}

TEST(Config, ApplyStepAdvancesOneProcessOnly) {
  auto protocol = make_consensus_via_n_consensus({10, 20});
  Config config = initial_config(*protocol);
  const Step step = apply_step(*protocol, &config, 1, 0);
  EXPECT_EQ(step.pid, 1);
  EXPECT_EQ(step.response, 20);  // first propose wins with its own value
  EXPECT_EQ(config.procs[0].pc, 0);
  EXPECT_EQ(config.procs[1].pc, 1);
}

TEST(Config, DecideStepTerminatesProcess) {
  auto protocol = make_consensus_via_n_consensus({10, 20});
  Config config = initial_config(*protocol);
  apply_step(*protocol, &config, 0, 0);  // propose
  const Step step = apply_step(*protocol, &config, 0, 0);  // local decide
  EXPECT_EQ(step.action.kind, Action::Kind::kDecide);
  EXPECT_TRUE(config.procs[0].decided());
  EXPECT_EQ(config.procs[0].decision, 10);
  EXPECT_FALSE(config.enabled(0));
}

TEST(Config, SuccessorsOfDeterministicStepIsSingleton) {
  auto protocol = make_consensus_via_n_consensus({10, 20});
  const Config config = initial_config(*protocol);
  std::vector<Successor> succs;
  enumerate_successors(*protocol, config, 0, &succs);
  EXPECT_EQ(succs.size(), 1u);
  EXPECT_EQ(outcome_count(*protocol, config, 0), 1);
}

TEST(Config, SuccessorsEnumerateKsaNondeterminism) {
  auto protocol = make_ksa_via_two_sa({10, 20, 30});
  Config config = initial_config(*protocol);
  apply_step(*protocol, &config, 0, 0);  // STATE = {10}
  // Second proposer: STATE = {10, 20}, response may be either member.
  std::vector<Successor> succs;
  enumerate_successors(*protocol, config, 1, &succs);
  ASSERT_EQ(succs.size(), 2u);
  EXPECT_EQ(outcome_count(*protocol, config, 1), 2);
  EXPECT_NE(succs[0].step.response, succs[1].step.response);
  // Both leave the same object state (the response choice is independent).
  EXPECT_EQ(succs[0].config.objects[0], succs[1].config.objects[0]);
}

TEST(Config, StepToStringIsReadable) {
  auto protocol = make_consensus_via_n_consensus({10, 20});
  Config config = initial_config(*protocol);
  const Step s = apply_step(*protocol, &config, 0, 0);
  const std::string text = s.to_string(*protocol);
  EXPECT_NE(text.find("p0"), std::string::npos);
  EXPECT_NE(text.find("PROPOSE"), std::string::npos);
  EXPECT_NE(text.find("10"), std::string::npos);
}

}  // namespace
}  // namespace lbsa::sim
