#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include "protocols/dac_from_pac.h"
#include "sim/simulation.h"

namespace lbsa::sim {
namespace {

using protocols::DacFromPacProtocol;

std::shared_ptr<DacFromPacProtocol> make_protocol() {
  return std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30});
}

TEST(RoundRobinAdversary, CyclesThroughEnabledProcesses) {
  auto protocol = make_protocol();
  const Config config = initial_config(*protocol);
  RoundRobinAdversary adv;
  EXPECT_EQ(adv.pick_process(config, 0), 0);
  EXPECT_EQ(adv.pick_process(config, 1), 1);
  EXPECT_EQ(adv.pick_process(config, 2), 2);
  EXPECT_EQ(adv.pick_process(config, 3), 0);
}

TEST(RoundRobinAdversary, SkipsTerminatedProcesses) {
  auto protocol = make_protocol();
  Config config = initial_config(*protocol);
  config.procs[1].status = ProcStatus::kCrashed;
  RoundRobinAdversary adv;
  EXPECT_EQ(adv.pick_process(config, 0), 0);
  EXPECT_EQ(adv.pick_process(config, 1), 2);
  EXPECT_EQ(adv.pick_process(config, 2), 0);
}

TEST(RoundRobinAdversary, StopsWhenAllHalted) {
  auto protocol = make_protocol();
  Config config = initial_config(*protocol);
  for (ProcessState& ps : config.procs) ps.status = ProcStatus::kCrashed;
  RoundRobinAdversary adv;
  EXPECT_EQ(adv.pick_process(config, 0), Adversary::kStop);
}

TEST(RandomAdversary, DeterministicForSeed) {
  auto protocol = make_protocol();
  const Config config = initial_config(*protocol);
  RandomAdversary a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.pick_process(config, i), b.pick_process(config, i));
  }
}

TEST(RandomAdversary, OnlyPicksEnabled) {
  auto protocol = make_protocol();
  Config config = initial_config(*protocol);
  config.procs[0].status = ProcStatus::kCrashed;
  config.procs[2].status = ProcStatus::kDecided;
  RandomAdversary adv(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(adv.pick_process(config, i), 1);
}

TEST(SoloAdversary, PicksOnlyItsProcess) {
  auto protocol = make_protocol();
  Config config = initial_config(*protocol);
  SoloAdversary adv(2);
  EXPECT_EQ(adv.pick_process(config, 0), 2);
  config.procs[2].status = ProcStatus::kDecided;
  EXPECT_EQ(adv.pick_process(config, 1), Adversary::kStop);
}

TEST(ScriptedAdversary, ReplaysScriptThenStops) {
  auto protocol = make_protocol();
  const Config config = initial_config(*protocol);
  ScriptedAdversary adv({{1, 0}, {0, 0}, {2, 0}});
  EXPECT_EQ(adv.pick_process(config, 0), 1);
  adv.pick_outcome(1, 0);
  EXPECT_EQ(adv.pick_process(config, 1), 0);
  adv.pick_outcome(1, 1);
  EXPECT_EQ(adv.pick_process(config, 2), 2);
  adv.pick_outcome(1, 2);
  EXPECT_EQ(adv.pick_process(config, 3), Adversary::kStop);
}

TEST(CrashingAdversary, InjectsCrashesAtStep) {
  auto protocol = make_protocol();
  Simulation simulation(protocol);
  RoundRobinAdversary inner;
  CrashingAdversary adv(&inner, {{2, 1}});  // crash p1 before step 2
  RunResult result = simulation.run(&adv, {.max_steps = 100});
  EXPECT_TRUE(result.all_terminated);
  EXPECT_TRUE(simulation.config().procs[1].crashed());
}

}  // namespace
}  // namespace lbsa::sim
