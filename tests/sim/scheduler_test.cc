#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include "protocols/dac_from_pac.h"
#include "sim/simulation.h"

namespace lbsa::sim {
namespace {

using protocols::DacFromPacProtocol;

std::shared_ptr<DacFromPacProtocol> make_protocol() {
  return std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30});
}

TEST(RoundRobinAdversary, CyclesThroughEnabledProcesses) {
  auto protocol = make_protocol();
  const Config config = initial_config(*protocol);
  RoundRobinAdversary adv;
  EXPECT_EQ(adv.pick_process(config, 0), 0);
  EXPECT_EQ(adv.pick_process(config, 1), 1);
  EXPECT_EQ(adv.pick_process(config, 2), 2);
  EXPECT_EQ(adv.pick_process(config, 3), 0);
}

TEST(RoundRobinAdversary, SkipsTerminatedProcesses) {
  auto protocol = make_protocol();
  Config config = initial_config(*protocol);
  config.procs[1].status = ProcStatus::kCrashed;
  RoundRobinAdversary adv;
  EXPECT_EQ(adv.pick_process(config, 0), 0);
  EXPECT_EQ(adv.pick_process(config, 1), 2);
  EXPECT_EQ(adv.pick_process(config, 2), 0);
}

TEST(RoundRobinAdversary, StopsWhenAllHalted) {
  auto protocol = make_protocol();
  Config config = initial_config(*protocol);
  for (ProcessState& ps : config.procs) ps.status = ProcStatus::kCrashed;
  RoundRobinAdversary adv;
  EXPECT_EQ(adv.pick_process(config, 0), Adversary::kStop);
}

TEST(RandomAdversary, DeterministicForSeed) {
  auto protocol = make_protocol();
  const Config config = initial_config(*protocol);
  RandomAdversary a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.pick_process(config, i), b.pick_process(config, i));
  }
}

TEST(RandomAdversary, OnlyPicksEnabled) {
  auto protocol = make_protocol();
  Config config = initial_config(*protocol);
  config.procs[0].status = ProcStatus::kCrashed;
  config.procs[2].status = ProcStatus::kDecided;
  RandomAdversary adv(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(adv.pick_process(config, i), 1);
}

TEST(SoloAdversary, PicksOnlyItsProcess) {
  auto protocol = make_protocol();
  Config config = initial_config(*protocol);
  SoloAdversary adv(2);
  EXPECT_EQ(adv.pick_process(config, 0), 2);
  config.procs[2].status = ProcStatus::kDecided;
  EXPECT_EQ(adv.pick_process(config, 1), Adversary::kStop);
}

TEST(ScriptedAdversary, ReplaysScriptThenStops) {
  auto protocol = make_protocol();
  const Config config = initial_config(*protocol);
  ScriptedAdversary adv({{1, 0}, {0, 0}, {2, 0}});
  EXPECT_EQ(adv.pick_process(config, 0), 1);
  adv.pick_outcome(1, 0);
  EXPECT_EQ(adv.pick_process(config, 1), 0);
  adv.pick_outcome(1, 1);
  EXPECT_EQ(adv.pick_process(config, 2), 2);
  adv.pick_outcome(1, 2);
  EXPECT_EQ(adv.pick_process(config, 3), Adversary::kStop);
}

TEST(ScriptedAdversary, OutOfRangePidStopsWithDiagnostic) {
  // A malformed script must not index the configuration blindly: the run
  // ends (kStop) and the repair is recorded.
  auto protocol = make_protocol();
  const Config config = initial_config(*protocol);
  ScriptedAdversary adv({{1, 0}, {7, 0}, {0, 0}});
  EXPECT_EQ(adv.pick_process(config, 0), 1);
  adv.pick_outcome(1, 0);
  EXPECT_EQ(adv.pick_process(config, 1), Adversary::kStop);
  EXPECT_NE(adv.diagnostic().find("pid 7"), std::string::npos)
      << adv.diagnostic();
  // The script is abandoned — later entries are not served.
  EXPECT_EQ(adv.pick_process(config, 2), Adversary::kStop);
}

TEST(ScriptedAdversary, NegativePidStopsWithDiagnostic) {
  auto protocol = make_protocol();
  const Config config = initial_config(*protocol);
  ScriptedAdversary adv({{-3, 0}});
  EXPECT_EQ(adv.pick_process(config, 0), Adversary::kStop);
  EXPECT_FALSE(adv.diagnostic().empty());
}

TEST(ScriptedAdversary, SkipsTerminatedProcessesWithDiagnostic) {
  auto protocol = make_protocol();
  Config config = initial_config(*protocol);
  config.procs[1].status = ProcStatus::kCrashed;
  ScriptedAdversary adv({{1, 0}, {2, 0}});
  EXPECT_EQ(adv.pick_process(config, 0), 2);
  EXPECT_NE(adv.diagnostic().find("skip"), std::string::npos)
      << adv.diagnostic();
}

TEST(ScriptedAdversary, OutOfRangeOutcomeFallsBackToZero) {
  auto protocol = make_protocol();
  const Config config = initial_config(*protocol);
  ScriptedAdversary adv({{0, 5}});
  EXPECT_EQ(adv.pick_process(config, 0), 0);
  // The step offers 2 outcomes; the scripted 5 is invalid.
  EXPECT_EQ(adv.pick_outcome(2, 0), 0);
  EXPECT_NE(adv.diagnostic().find("outcome"), std::string::npos)
      << adv.diagnostic();
}

TEST(ScriptedAdversary, ValidScriptLeavesNoDiagnostic) {
  auto protocol = make_protocol();
  const Config config = initial_config(*protocol);
  ScriptedAdversary adv({{1, 0}, {0, 0}});
  EXPECT_EQ(adv.pick_process(config, 0), 1);
  adv.pick_outcome(1, 0);
  EXPECT_EQ(adv.pick_process(config, 1), 0);
  adv.pick_outcome(1, 1);
  EXPECT_TRUE(adv.diagnostic().empty()) << adv.diagnostic();
}

TEST(ScriptedAdversary, ServesCrashEntries) {
  auto protocol = make_protocol();
  Simulation simulation(protocol);
  // Crash p2 up front, then run p0 and p1 one step each.
  ScriptedAdversary adv({{2, 0, true}, {0, 0}, {1, 0}});
  RunResult result = simulation.run(&adv, {.max_steps = 100});
  EXPECT_FALSE(result.all_terminated);
  EXPECT_TRUE(simulation.config().procs[2].crashed());
  EXPECT_EQ(simulation.history().size(), 2u);
  EXPECT_TRUE(adv.diagnostic().empty()) << adv.diagnostic();
}

TEST(ScriptedAdversary, DropsInvalidCrashEntries) {
  auto protocol = make_protocol();
  Simulation simulation(protocol);
  ScriptedAdversary adv({{9, 0, true}, {0, 0}});
  simulation.run(&adv, {.max_steps = 100});
  for (const auto& ps : simulation.config().procs) {
    EXPECT_FALSE(ps.crashed());
  }
  EXPECT_EQ(simulation.history().size(), 1u);
  EXPECT_NE(adv.diagnostic().find("crash"), std::string::npos)
      << adv.diagnostic();
}

TEST(CrashingAdversary, InjectsCrashesAtStep) {
  auto protocol = make_protocol();
  Simulation simulation(protocol);
  RoundRobinAdversary inner;
  CrashingAdversary adv(&inner, {{2, 1}});  // crash p1 before step 2
  RunResult result = simulation.run(&adv, {.max_steps = 100});
  EXPECT_TRUE(result.all_terminated);
  EXPECT_TRUE(simulation.config().procs[1].crashed());
}

}  // namespace
}  // namespace lbsa::sim
