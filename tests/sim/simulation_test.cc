// End-to-end simulation tests: Algorithm 2 (n-DAC from one n-PAC) under
// round-robin, random, solo, and crashy adversaries — the schedule-sampled
// half of experiment E2.
#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <set>

#include "protocols/dac_from_pac.h"
#include "protocols/one_shot.h"

namespace lbsa::sim {
namespace {

using protocols::DacFromPacProtocol;
using protocols::make_consensus_via_n_consensus;

TEST(Simulation, LockstepRoundRobinLivelocksButStaysSafe) {
  // Under perfect lockstep scheduling, Algorithm 2's non-distinguished
  // processes keep detecting each other's concurrency and retry forever —
  // n-DAC's Termination(b) only promises progress in solo runs, and this
  // run shows why that weakening is necessary. Safety still holds.
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30});
  Simulation simulation(protocol);
  RoundRobinAdversary adv;
  const RunResult result = simulation.run(&adv, {.max_steps = 10'000});
  EXPECT_TRUE(result.hit_step_limit);
  EXPECT_TRUE(simulation.config().procs[0].aborted());  // p saw interference
  EXPECT_LE(simulation.distinct_decisions().size(), 1u);
}

TEST(Simulation, RandomScheduleDacTerminates) {
  // A random (hence eventually asymmetric) schedule lets some q win its
  // propose/decide pair; every process then terminates.
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30});
  Simulation simulation(protocol);
  RandomAdversary adv(1);
  const RunResult result = simulation.run(&adv, {.max_steps = 100'000});
  EXPECT_TRUE(result.all_terminated);
  EXPECT_LE(simulation.distinct_decisions().size(), 1u);
}

TEST(Simulation, SoloDistinguishedDecidesOwnInput) {
  // Claim 4.2.4's first half: p running solo decides its own input (and
  // does not abort, by Nontriviality).
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{11, 22, 33},
                                           /*distinguished_pid=*/0);
  Simulation simulation(protocol);
  SoloAdversary adv(0);
  simulation.run(&adv, {.max_steps = 100});
  EXPECT_TRUE(simulation.config().procs[0].decided());
  EXPECT_EQ(simulation.decision_of(0), 11);
}

TEST(Simulation, SoloNonDistinguishedDecidesOwnInput) {
  // Claim 4.2.4's second half: q != p running solo decides its own input.
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{11, 22, 33});
  Simulation simulation(protocol);
  SoloAdversary adv(2);
  simulation.run(&adv, {.max_steps = 100});
  EXPECT_EQ(simulation.decision_of(2), 33);
}

TEST(Simulation, RandomAdversarySweepPreservesDacSafety) {
  // 300 seeded random schedules; in every run: at most one distinct decided
  // value, decided values come from non-aborting proposers, only p aborts.
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    auto protocol = std::make_shared<DacFromPacProtocol>(
        std::vector<Value>{10, 20, 30, 40});
    Simulation simulation(protocol);
    RandomAdversary adv(seed);
    const RunResult result = simulation.run(&adv, {.max_steps = 50'000});
    ASSERT_TRUE(result.all_terminated) << "seed " << seed;
    const auto decisions = simulation.distinct_decisions();
    ASSERT_LE(decisions.size(), 1u) << "seed " << seed;
    for (int pid = 1; pid < 4; ++pid) {
      ASSERT_FALSE(simulation.config().procs[static_cast<size_t>(pid)]
                       .aborted())
          << "non-distinguished process aborted, seed " << seed;
    }
    if (!decisions.empty()) {
      const Value v = decisions[0];
      bool valid = false;
      for (int pid = 0; pid < 4; ++pid) {
        if (protocol->inputs()[static_cast<size_t>(pid)] == v &&
            !simulation.config().procs[static_cast<size_t>(pid)].aborted()) {
          valid = true;
        }
      }
      ASSERT_TRUE(valid) << "validity, seed " << seed;
    }
  }
}

TEST(Simulation, CrashedProcessNeverSteps) {
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30});
  Simulation simulation(protocol);
  simulation.crash(1);
  RoundRobinAdversary adv;
  simulation.run(&adv, {.max_steps = 1'000});
  for (const Step& step : simulation.history()) EXPECT_NE(step.pid, 1);
  EXPECT_TRUE(simulation.config().procs[1].crashed());
}

TEST(Simulation, HistoryRecordsEveryStep) {
  auto protocol = make_consensus_via_n_consensus({10, 20});
  Simulation simulation(protocol);
  RoundRobinAdversary adv;
  const RunResult result = simulation.run(&adv, {.max_steps = 100});
  EXPECT_TRUE(result.all_terminated);
  // Each process: one propose + one local decide.
  EXPECT_EQ(simulation.history().size(), 4u);
  EXPECT_EQ(result.steps, 4u);
}

TEST(Simulation, ResetRestoresInitialConfig) {
  auto protocol = make_consensus_via_n_consensus({10, 20});
  Simulation simulation(protocol);
  const Config before = simulation.config();
  RoundRobinAdversary adv;
  simulation.run(&adv, {.max_steps = 100});
  EXPECT_NE(simulation.config(), before);
  simulation.reset();
  EXPECT_EQ(simulation.config(), before);
  EXPECT_TRUE(simulation.history().empty());
}

TEST(Simulation, DumpMentionsProcessesAndObjects) {
  auto protocol = make_consensus_via_n_consensus({10, 20});
  Simulation simulation(protocol);
  const std::string text = simulation.dump();
  EXPECT_NE(text.find("p0"), std::string::npos);
  EXPECT_NE(text.find("2-consensus"), std::string::npos);
}

TEST(Simulation, DistinguishedAbortsOnlyWithInterference) {
  // Drive p halfway, let q slip in a propose, then p's decide sees L != p's
  // label and returns ⊥ -> p aborts. This is the abort path Algorithm 2
  // inherits from the PAC's concurrency detection.
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20});
  Simulation simulation(protocol);
  simulation.step(0);  // p: PROPOSE(10, 1)
  simulation.step(1);  // q: PROPOSE(20, 2) — intervenes
  simulation.step(0);  // p: DECIDE(1) -> ⊥
  simulation.step(0);  // p: abort
  EXPECT_TRUE(simulation.config().procs[0].aborted());
  // q eventually decides its own value (q retries after ⊥).
  SoloAdversary solo(1);
  simulation.run(&solo, {.max_steps = 100});
  EXPECT_EQ(simulation.decision_of(1), 20);
}

}  // namespace
}  // namespace lbsa::sim
