#include "sim/trace.h"

#include <gtest/gtest.h>

#include "protocols/dac_from_pac.h"
#include "protocols/one_shot.h"

namespace lbsa::sim {
namespace {

using protocols::DacFromPacProtocol;
using protocols::make_ksa_via_two_sa;

TEST(Trace, RoundTripsARecordedRun) {
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30});
  Simulation original(protocol);
  RandomAdversary adversary(7);
  original.run(&adversary, {.max_steps = 100'000});

  const std::string text =
      schedule_to_string(*protocol, original.history());
  auto parsed = parse_schedule(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().size(), original.history().size());

  auto replayed = replay_schedule(protocol, parsed.value());
  ASSERT_TRUE(replayed.is_ok()) << replayed.status().to_string();
  EXPECT_EQ(replayed.value().config(), original.config());
}

TEST(Trace, RoundTripsNondeterministicOutcomes) {
  auto protocol = make_ksa_via_two_sa({10, 20, 30});
  Simulation original(protocol);
  RandomAdversary adversary(3);
  original.run(&adversary, {.max_steps = 1'000});

  auto parsed =
      parse_schedule(schedule_to_string(*protocol, original.history()));
  ASSERT_TRUE(parsed.is_ok());
  auto replayed = replay_schedule(protocol, parsed.value());
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(replayed.value().config(), original.config());
  EXPECT_EQ(replayed.value().distinct_decisions(),
            original.distinct_decisions());
}

TEST(Trace, ParsesCommentsAndBlanks) {
  auto parsed = parse_schedule(
      "# a comment\n\n0\n  1:2  # inline comment\n\n2:0\n");
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed.value().size(), 3u);
  EXPECT_EQ(parsed.value()[0].pid, 0);
  EXPECT_EQ(parsed.value()[1].pid, 1);
  EXPECT_EQ(parsed.value()[1].outcome, 2);
  EXPECT_EQ(parsed.value()[2].pid, 2);
  EXPECT_EQ(parsed.value()[2].outcome, 0);
}

TEST(Trace, RejectsMalformedLines) {
  EXPECT_FALSE(parse_schedule("zero").is_ok());
  EXPECT_FALSE(parse_schedule("1;2").is_ok());
  EXPECT_FALSE(parse_schedule("1:").is_ok());
  EXPECT_FALSE(parse_schedule("1:x").is_ok());
  EXPECT_FALSE(parse_schedule("-1").is_ok());
}

TEST(Trace, ReplayRejectsInvalidSchedules) {
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20});
  // pid out of range.
  EXPECT_FALSE(replay_schedule(protocol, {{5, 0}}).is_ok());
  // outcome out of range (the first step is deterministic).
  EXPECT_FALSE(replay_schedule(protocol, {{0, 3}}).is_ok());
  // stepping a decided process: run p1 to completion first (solo p1
  // decides after 4 steps: propose, decide, local decide), then step it.
  auto bad = replay_schedule(protocol, {{1, 0}, {1, 0}, {1, 0}, {1, 0}});
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Trace, SerializedFormIsCommented) {
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20});
  Simulation simulation(protocol);
  simulation.step(0);
  const std::string text =
      schedule_to_string(*protocol, simulation.history());
  EXPECT_NE(text.find("# schedule for"), std::string::npos);
  EXPECT_NE(text.find("PROPOSE"), std::string::npos);
}

}  // namespace
}  // namespace lbsa::sim
