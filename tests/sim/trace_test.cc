#include "sim/trace.h"

#include <gtest/gtest.h>

#include "protocols/dac_from_pac.h"
#include "protocols/one_shot.h"

namespace lbsa::sim {
namespace {

using protocols::DacFromPacProtocol;
using protocols::make_ksa_via_two_sa;

TEST(Trace, RoundTripsARecordedRun) {
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30});
  Simulation original(protocol);
  RandomAdversary adversary(7);
  original.run(&adversary, {.max_steps = 100'000});

  const std::string text =
      schedule_to_string(*protocol, original.history());
  auto parsed = parse_schedule(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().size(), original.history().size());

  auto replayed = replay_schedule(protocol, parsed.value());
  ASSERT_TRUE(replayed.is_ok()) << replayed.status().to_string();
  EXPECT_EQ(replayed.value().config(), original.config());
}

TEST(Trace, RoundTripsNondeterministicOutcomes) {
  auto protocol = make_ksa_via_two_sa({10, 20, 30});
  Simulation original(protocol);
  RandomAdversary adversary(3);
  original.run(&adversary, {.max_steps = 1'000});

  auto parsed =
      parse_schedule(schedule_to_string(*protocol, original.history()));
  ASSERT_TRUE(parsed.is_ok());
  auto replayed = replay_schedule(protocol, parsed.value());
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(replayed.value().config(), original.config());
  EXPECT_EQ(replayed.value().distinct_decisions(),
            original.distinct_decisions());
}

TEST(Trace, ParsesCommentsAndBlanks) {
  auto parsed = parse_schedule(
      "# a comment\n\n0\n  1:2  # inline comment\n\n2:0\n");
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed.value().size(), 3u);
  EXPECT_EQ(parsed.value()[0].pid, 0);
  EXPECT_EQ(parsed.value()[1].pid, 1);
  EXPECT_EQ(parsed.value()[1].outcome, 2);
  EXPECT_EQ(parsed.value()[2].pid, 2);
  EXPECT_EQ(parsed.value()[2].outcome, 0);
}

TEST(Trace, RejectsMalformedLines) {
  EXPECT_FALSE(parse_schedule("zero").is_ok());
  EXPECT_FALSE(parse_schedule("1;2").is_ok());
  EXPECT_FALSE(parse_schedule("1:").is_ok());
  EXPECT_FALSE(parse_schedule("1:x").is_ok());
  EXPECT_FALSE(parse_schedule("-1").is_ok());
}

TEST(Trace, ReplayRejectsInvalidSchedules) {
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20});
  // pid out of range.
  EXPECT_FALSE(replay_schedule(protocol, {{5, 0}}).is_ok());
  // outcome out of range (the first step is deterministic).
  EXPECT_FALSE(replay_schedule(protocol, {{0, 3}}).is_ok());
  // stepping a decided process: run p1 to completion first (solo p1
  // decides after 4 steps: propose, decide, local decide), then step it.
  auto bad = replay_schedule(protocol, {{1, 0}, {1, 0}, {1, 0}, {1, 0}});
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Trace, ParsesCrashEvents) {
  auto parsed = parse_schedule("!2\n0\n!1  # crash p1\n1:3\n");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().size(), 4u);
  EXPECT_EQ(parsed.value()[0],
            (ScriptedAdversary::Choice{2, 0, true}));
  EXPECT_EQ(parsed.value()[1],
            (ScriptedAdversary::Choice{0, 0, false}));
  EXPECT_EQ(parsed.value()[2],
            (ScriptedAdversary::Choice{1, 0, true}));
  EXPECT_EQ(parsed.value()[3],
            (ScriptedAdversary::Choice{1, 3, false}));
}

TEST(Trace, RejectsMalformedCrashEvents) {
  EXPECT_FALSE(parse_schedule("!").is_ok());
  EXPECT_FALSE(parse_schedule("!x").is_ok());
  EXPECT_FALSE(parse_schedule("!-1").is_ok());
  // A crash event carries no outcome.
  EXPECT_FALSE(parse_schedule("!2:1").is_ok());
}

TEST(Trace, CanonicalFormRoundTripsRandomizedSchedules) {
  // Property test: for randomized schedules (including crash events and
  // nondeterministic outcomes), format -> parse -> format is the identity
  // on text, and parse recovers the exact choice list.
  Xoshiro256 rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<ScriptedAdversary::Choice> schedule;
    const int length = 1 + static_cast<int>(rng.next_below(40));
    for (int i = 0; i < length; ++i) {
      ScriptedAdversary::Choice choice;
      choice.pid = static_cast<int>(rng.next_below(6));
      if (rng.next_below(8) == 0) {
        choice.crash = true;
      } else {
        choice.outcome = static_cast<int>(rng.next_below(3));
      }
      schedule.push_back(choice);
    }
    const std::string text = schedule_to_string(schedule);
    auto parsed = parse_schedule(text);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string() << "\n"
                                << text;
    EXPECT_EQ(parsed.value(), schedule);
    EXPECT_EQ(schedule_to_string(parsed.value()), text);
  }
}

TEST(Trace, ReplayAppliesCrashEvents) {
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30});
  // Reference run: crash p0 up front, then p1 solo until it decides.
  Simulation reference(protocol);
  reference.crash(0);
  std::vector<ScriptedAdversary::Choice> schedule = {{0, 0, true}};
  while (!reference.config().procs[1].decided()) {
    reference.step(1);
    schedule.push_back({1, 0, false});
  }
  auto replayed = replay_schedule(protocol, schedule);
  ASSERT_TRUE(replayed.is_ok()) << replayed.status().to_string();
  EXPECT_TRUE(replayed.value().config().procs[0].crashed());
  EXPECT_TRUE(replayed.value().config().procs[1].decided());
  EXPECT_EQ(replayed.value().config(), reference.config());
  // The crash is a schedule event, not a step: history excludes it.
  EXPECT_EQ(replayed.value().history().size(), schedule.size() - 1);
}

TEST(Trace, ReplayRejectsOutOfRangeCrashes) {
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20});
  EXPECT_FALSE(replay_schedule(protocol, {{7, 0, true}}).is_ok());
  EXPECT_FALSE(replay_schedule(protocol, {{-1, 0, true}}).is_ok());
}

TEST(Trace, SerializedFormIsCommented) {
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20});
  Simulation simulation(protocol);
  simulation.step(0);
  const std::string text =
      schedule_to_string(*protocol, simulation.history());
  EXPECT_NE(text.find("# schedule for"), std::string::npos);
  EXPECT_NE(text.find("PROPOSE"), std::string::npos);
}

}  // namespace
}  // namespace lbsa::sim
