// The hierarchy landscape, machine-checked: test&set and queue solve
// 2-consensus (level 2), compare&swap solves n-consensus for every tested n
// (level ∞) — and the 2-process constructions demonstrably break with a
// third process, the executable face of "consensus number exactly 2".
#include "protocols/classic_consensus.h"

#include <gtest/gtest.h>

#include "modelcheck/critical.h"
#include "modelcheck/task_check.h"

namespace lbsa::protocols {
namespace {

std::vector<Value> iota_inputs(int n) {
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
  return inputs;
}

TEST(ClassicConsensus, TasSolvesTwoConsensus) {
  const auto inputs = iota_inputs(2);
  auto protocol = std::make_shared<TasConsensusProtocol>(inputs);
  auto report = modelcheck::check_consensus_task(protocol, inputs);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().ok()) << report.value().to_string();
}

TEST(ClassicConsensus, TasBreaksWithThreeProcesses) {
  const auto inputs = iota_inputs(3);
  auto protocol = std::make_shared<TasConsensusProtocol>(inputs);
  auto report = modelcheck::check_consensus_task(protocol, inputs);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report.value().ok());
  EXPECT_TRUE(report.value().violates("agreement") ||
              report.value().violates("validity"))
      << report.value().to_string();
}

TEST(ClassicConsensus, QueueSolvesTwoConsensus) {
  const auto inputs = iota_inputs(2);
  auto protocol = std::make_shared<QueueConsensusProtocol>(inputs);
  auto report = modelcheck::check_consensus_task(protocol, inputs);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().ok()) << report.value().to_string();
}

TEST(ClassicConsensus, QueueBreaksWithThreeProcesses) {
  const auto inputs = iota_inputs(3);
  auto protocol = std::make_shared<QueueConsensusProtocol>(inputs);
  auto report = modelcheck::check_consensus_task(protocol, inputs);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report.value().ok());
}

class CasConsensusSweep : public ::testing::TestWithParam<int> {};

TEST_P(CasConsensusSweep, CasSolvesNConsensus) {
  const int n = GetParam();
  const auto inputs = iota_inputs(n);
  auto protocol = std::make_shared<CasConsensusProtocol>(inputs);
  auto report = modelcheck::check_consensus_task(protocol, inputs);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().ok()) << "n=" << n << "\n"
                                   << report.value().to_string();
}

INSTANTIATE_TEST_SUITE_P(Sizes, CasConsensusSweep,
                         ::testing::Values(2, 3, 4, 5));

TEST(ClassicConsensus, TasCriticalConfigIsOnTheTasBit) {
  // Claim 5.2.3's shape on the classic protocol: the pivotal object of the
  // 2-process test&set protocol is the test&set bit itself.
  const auto inputs = iota_inputs(2);
  auto protocol = std::make_shared<TasConsensusProtocol>(inputs);
  modelcheck::Explorer explorer(protocol);
  auto graph = std::move(explorer.explore()).value();
  modelcheck::ValenceAnalyzer analyzer(graph);
  const auto critical =
      modelcheck::analyze_critical_configurations(*protocol, graph, analyzer);
  ASSERT_FALSE(critical.empty());
  for (const auto& info : critical) {
    EXPECT_TRUE(info.all_on_same_object);
    EXPECT_EQ(info.common_object_type, "test&set");
  }
}

TEST(ClassicConsensus, CasCriticalConfigIsOnTheCasCell) {
  const auto inputs = iota_inputs(3);
  auto protocol = std::make_shared<CasConsensusProtocol>(inputs);
  modelcheck::Explorer explorer(protocol);
  auto graph = std::move(explorer.explore()).value();
  modelcheck::ValenceAnalyzer analyzer(graph);
  const auto critical =
      modelcheck::analyze_critical_configurations(*protocol, graph, analyzer);
  ASSERT_FALSE(critical.empty());
  for (const auto& info : critical) {
    EXPECT_TRUE(info.all_on_same_object);
    EXPECT_EQ(info.common_object_type, "compare&swap");
  }
}

}  // namespace
}  // namespace lbsa::protocols
