// Direct unit tests for the protocol automata (construction contracts,
// action shapes, deterministic transitions). Task-level behaviour is
// covered by tests/modelcheck/task_check_test.cc.
#include <gtest/gtest.h>

#include "protocols/dac_from_pac.h"
#include "protocols/flp_race.h"
#include "protocols/group_ksa.h"
#include "protocols/one_shot.h"
#include "protocols/straw_dac.h"
#include "sim/config.h"
#include "sim/simulation.h"

namespace lbsa::protocols {
namespace {

TEST(DacFromPacProtocol, MetadataAndObjects) {
  DacFromPacProtocol protocol({10, 20, 30}, 1);
  EXPECT_EQ(protocol.process_count(), 3);
  EXPECT_EQ(protocol.distinguished_pid(), 1);
  ASSERT_EQ(protocol.objects().size(), 1u);
  EXPECT_EQ(protocol.objects()[0]->name(), "3-PAC");
  EXPECT_EQ(protocol.name(), "DAC-from-3-PAC");
}

TEST(DacFromPacProtocol, FirstActionIsLabeledPropose) {
  DacFromPacProtocol protocol({10, 20});
  sim::ProcessState ps;
  ps.locals = protocol.initial_locals(1);
  const sim::Action action = protocol.next_action(1, ps);
  EXPECT_EQ(action.kind, sim::Action::Kind::kInvoke);
  EXPECT_EQ(action.object_index, 0);
  EXPECT_EQ(action.op.code, spec::OpCode::kProposeLabeled);
  EXPECT_EQ(action.op.arg0, 20);
  EXPECT_EQ(action.op.arg1, 2);  // label = pid + 1
}

TEST(DacFromPacProtocol, DistinguishedAbortsOnBottom) {
  DacFromPacProtocol protocol({10, 20});
  sim::ProcessState ps;
  ps.locals = protocol.initial_locals(0);
  ps.pc = 1;
  protocol.on_response(0, &ps, kBottom);
  EXPECT_EQ(ps.pc, 2);
  const sim::Action action = protocol.next_action(0, ps);
  EXPECT_EQ(action.kind, sim::Action::Kind::kAbort);
}

TEST(DacFromPacProtocol, NonDistinguishedRetriesOnBottom) {
  DacFromPacProtocol protocol({10, 20});
  sim::ProcessState ps;
  ps.locals = protocol.initial_locals(1);
  ps.pc = 1;
  protocol.on_response(1, &ps, kBottom);
  EXPECT_EQ(ps.pc, 0);  // back to the propose
}

TEST(OneShotProposeProtocol, DecidesTheResponse) {
  auto protocol = make_consensus_via_n_consensus({10, 20, 30});
  sim::Config config = initial_config(*protocol);
  sim::apply_step(*protocol, &config, 2, 0);  // p2 proposes first, wins
  sim::apply_step(*protocol, &config, 2, 0);  // p2 decides
  EXPECT_EQ(config.procs[2].decision, 30);
  sim::apply_step(*protocol, &config, 0, 0);
  sim::apply_step(*protocol, &config, 0, 0);
  EXPECT_EQ(config.procs[0].decision, 30);
}

TEST(GroupKsaProtocol, RoutesToGroupObjects) {
  GroupKsaProtocol protocol(2, 2, {10, 20, 30, 40});
  EXPECT_EQ(protocol.objects().size(), 2u);
  sim::ProcessState ps;
  ps.locals = protocol.initial_locals(3);
  const sim::Action action = protocol.next_action(3, ps);
  EXPECT_EQ(action.object_index, 1);  // pid 3 / m=2 -> group 1
}

TEST(GroupKsaProtocol, RaggedGroupsAllowed) {
  // 3 processes over k=2 groups of m=2: group 1 has a single member.
  sim::RoundRobinAdversary adv;
  sim::Simulation simulation(
      std::make_shared<GroupKsaProtocol>(2, 2,
                                         std::vector<Value>{10, 20, 30}));
  simulation.run(&adv, {.max_steps = 100});
  EXPECT_TRUE(simulation.config().halted());
  EXPECT_LE(simulation.distinct_decisions().size(), 2u);
}

TEST(StrawDacProtocols, UseOnlyTheoremFourTwoObjects) {
  // The point of the straw-men: they must be built from exactly the object
  // families Theorem 4.2 quantifies over.
  StrawDacFallbackProtocol fallback({10, 20, 30});
  ASSERT_EQ(fallback.objects().size(), 2u);
  EXPECT_EQ(fallback.objects()[0]->name(), "2-consensus");
  EXPECT_EQ(fallback.objects()[1]->name(), "2-SA");

  StrawDacAnnounceProtocol announce({10, 20, 30});
  ASSERT_EQ(announce.objects().size(), 2u);
  EXPECT_EQ(announce.objects()[0]->name(), "2-consensus");
  EXPECT_EQ(announce.objects()[1]->name(), "register");
}

TEST(FlpRaceProtocol, AdoptsSmallerPreference) {
  FlpRaceProtocol protocol(5, 3);
  sim::ProcessState ps;
  ps.locals = protocol.initial_locals(0);
  ps.pc = 1;                       // just read the other register
  protocol.on_response(0, &ps, 3);  // other preference is smaller
  EXPECT_EQ(ps.locals[0], 3);
  EXPECT_EQ(ps.pc, 0);  // retry
}

TEST(FlpRaceProtocol, DecidesWhenAlone) {
  FlpRaceProtocol protocol(5, 3);
  sim::ProcessState ps;
  ps.locals = protocol.initial_locals(0);
  ps.pc = 1;
  protocol.on_response(0, &ps, kNil);  // other register unwritten
  EXPECT_EQ(ps.pc, 2);
  EXPECT_EQ(protocol.next_action(0, ps).kind, sim::Action::Kind::kDecide);
  EXPECT_EQ(protocol.next_action(0, ps).decision, 5);
}

}  // namespace
}  // namespace lbsa::protocols
