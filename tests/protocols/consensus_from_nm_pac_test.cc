// Theorem 5.3's constructive half, machine-checked: the consensus port of
// the (n, m)-PAC object solves m-consensus — for every process count
// p <= m, under all schedules. The full (n, m) grid runs in the hierarchy
// sweep (core/hierarchy_sweep.h); this file checks the protocol itself.
#include "protocols/consensus_from_nm_pac.h"

#include <gtest/gtest.h>

#include "modelcheck/explorer.h"
#include "modelcheck/task_check.h"

namespace lbsa::protocols {
namespace {

std::vector<Value> iota_inputs(int p) {
  std::vector<Value> inputs;
  for (int i = 0; i < p; ++i) inputs.push_back(100 * (i + 1));
  return inputs;
}

class ConsensusFromNmPacSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ConsensusFromNmPacSweep, SolvesMConsensusExhaustively) {
  const auto [n, m] = GetParam();
  // Every admissible process count, not just the port's full capacity: a
  // port that only works when all m proposers show up would not solve
  // m-consensus.
  for (int p = 1; p <= m; ++p) {
    const auto inputs = iota_inputs(p);
    auto protocol = std::make_shared<ConsensusFromNmPacProtocol>(n, m, inputs);
    auto report = modelcheck::check_consensus_task(protocol, inputs);
    ASSERT_TRUE(report.is_ok());
    EXPECT_TRUE(report.value().ok())
        << "(n,m)=(" << n << "," << m << ") p=" << p << "\n"
        << report.value().to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dims, ConsensusFromNmPacSweep,
    ::testing::Values(std::pair{2, 1}, std::pair{2, 2}, std::pair{3, 2},
                      std::pair{4, 2}, std::pair{4, 4}),
    [](const ::testing::TestParamInfo<std::pair<int, int>>& info) {
      return "n" + std::to_string(info.param.first) + "_m" +
             std::to_string(info.param.second);
    });

TEST(ConsensusFromNmPac, NameAndAccessors) {
  ConsensusFromNmPacProtocol protocol(4, 2, {100, 200});
  EXPECT_EQ(protocol.name(), "consensus-from-(4,2)-PAC");
  EXPECT_EQ(protocol.n(), 4);
  EXPECT_EQ(protocol.m(), 2);
  EXPECT_EQ(protocol.process_count(), 2);
}

TEST(ConsensusFromNmPac, EqualInputsDeclareFullSymmetry) {
  // Equal inputs put both proposers in one orbit; the symmetry-reduced
  // graph must shrink while the verdict is preserved.
  const std::vector<Value> inputs{100, 100};
  auto protocol = std::make_shared<ConsensusFromNmPacProtocol>(3, 2, inputs);

  modelcheck::TaskCheckOptions plain;
  auto full = modelcheck::check_consensus_task(protocol, inputs, plain);
  ASSERT_TRUE(full.is_ok());
  EXPECT_TRUE(full.value().ok());

  modelcheck::TaskCheckOptions reduced;
  reduced.explore.reduction = modelcheck::Reduction::kSymmetry;
  auto quotient = modelcheck::check_consensus_task(protocol, inputs, reduced);
  ASSERT_TRUE(quotient.is_ok());
  EXPECT_TRUE(quotient.value().ok());
  EXPECT_LT(quotient.value().node_count, full.value().node_count);
  // Σ orbit sizes over a complete symmetry-reduced graph recovers the full
  // graph's node count exactly.
  EXPECT_EQ(quotient.value().full_node_estimate, full.value().node_count);
}

}  // namespace
}  // namespace lbsa::protocols
