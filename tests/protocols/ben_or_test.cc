// Randomized consensus (Ben-Or style) tests — the FLP boundary, mechanized:
//   * safety (Agreement, Validity) holds over ALL schedules and ALL coin
//     outcomes (exhaustive model check);
//   * deterministic termination FAILS — the checker exhibits the adversarial
//     coin/schedule run, exactly the FLP prediction;
//   * under a fair coin (random adversary), every seeded run terminates.
#include "protocols/ben_or.h"

#include <gtest/gtest.h>

#include "modelcheck/task_check.h"
#include "sim/simulation.h"
#include "spec/coin_type.h"

namespace lbsa::protocols {
namespace {

TEST(CoinType, FlipsBothWays) {
  spec::CoinType coin;
  std::vector<spec::Outcome> outcomes;
  coin.apply(coin.initial_state(), spec::make_flip(), &outcomes);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].response, 0);
  EXPECT_EQ(outcomes[1].response, 1);
  EXPECT_TRUE(outcomes[0].next_state.empty());
  EXPECT_FALSE(coin.deterministic());
}

TEST(BenOr, UnanimousInputsDecideWithoutCoin) {
  // All-zero inputs: conflict is impossible, every process commits in round
  // 0 — the protocol passes the FULL consensus check, termination included.
  const std::vector<Value> inputs{0, 0};
  auto protocol = std::make_shared<BenOrProtocol>(inputs, /*max_rounds=*/2);
  auto report = modelcheck::check_consensus_task(protocol, inputs);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().ok()) << report.value().to_string();
}

TEST(BenOr, SafetyHoldsUnderAllSchedulesAndCoins) {
  // Mixed inputs: agreement and validity must hold over every schedule and
  // every coin outcome; only termination may fail (and does, under the
  // adversarial coin — the FLP-consistent part).
  const std::vector<Value> inputs{0, 1};
  auto protocol = std::make_shared<BenOrProtocol>(inputs, /*max_rounds=*/2);
  modelcheck::TaskCheckOptions options;
  options.max_violations = 16;
  auto report = modelcheck::check_k_agreement_task(protocol, 1, inputs,
                                                   options);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_FALSE(report.value().violates("agreement"))
      << report.value().to_string();
  EXPECT_FALSE(report.value().violates("validity"))
      << report.value().to_string();
  EXPECT_FALSE(report.value().violates("no-abort"));
  // The adversary really can prevent termination forever.
  EXPECT_TRUE(report.value().violates("termination"))
      << report.value().to_string();
}

TEST(BenOr, FairCoinTerminatesEmpirically) {
  // With a uniformly random scheduler+coin, every seeded run decides well
  // within the round budget, and agreement/validity hold.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const std::vector<Value> inputs{0, 1, 1};
    auto protocol = std::make_shared<BenOrProtocol>(inputs,
                                                    /*max_rounds=*/30);
    sim::Simulation simulation(protocol);
    sim::RandomAdversary adversary(seed);
    const auto result = simulation.run(&adversary, {.max_steps = 100'000});
    ASSERT_TRUE(result.all_terminated) << "seed " << seed;
    const auto decisions = simulation.distinct_decisions();
    ASSERT_EQ(decisions.size(), 1u) << "seed " << seed;
    ASSERT_TRUE(decisions[0] == 0 || decisions[0] == 1) << "seed " << seed;
  }
}

TEST(BenOr, UnanimousFairRunsDecideTheInput) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const std::vector<Value> inputs{1, 1, 1};
    auto protocol = std::make_shared<BenOrProtocol>(inputs, 10);
    sim::Simulation simulation(protocol);
    sim::RandomAdversary adversary(seed);
    simulation.run(&adversary, {.max_steps = 100'000});
    const auto decisions = simulation.distinct_decisions();
    ASSERT_EQ(decisions.size(), 1u) << "seed " << seed;
    EXPECT_EQ(decisions[0], 1) << "seed " << seed;
  }
}

TEST(BenOr, SoloRunDecidesOwnInputInRoundZero) {
  const std::vector<Value> inputs{1, 0};
  auto protocol = std::make_shared<BenOrProtocol>(inputs, 3);
  sim::Simulation simulation(protocol);
  sim::SoloAdversary solo(0);
  simulation.run(&solo, {.max_steps = 100});
  EXPECT_EQ(simulation.decision_of(0), 1);
}

TEST(BenOr, CrashToleranceIsWaitFreeStyle) {
  // Crash all but one process mid-round: the survivor still decides under
  // a fair coin (wait-free progress, modulo randomness).
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const std::vector<Value> inputs{0, 1};
    auto protocol = std::make_shared<BenOrProtocol>(inputs, 30);
    sim::Simulation simulation(protocol);
    sim::RandomAdversary warmup(seed);
    simulation.run(&warmup, {.max_steps = 1 + seed % 9});
    simulation.crash(1);
    if (!simulation.config().enabled(0)) continue;
    sim::RandomAdversary rest(seed + 1000);
    const auto result = simulation.run(&rest, {.max_steps = 100'000});
    ASSERT_TRUE(result.all_terminated) << "seed " << seed;
    ASSERT_TRUE(simulation.config().procs[0].decided()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lbsa::protocols
