// Observation 5.1(b) and the constructive first step of Theorem 7.1,
// machine-checked: the (n, m)-PAC object solves the n-DAC problem through
// its PAC ports, regardless of m.
#include "protocols/dac_from_nm_pac.h"

#include <gtest/gtest.h>

#include "modelcheck/task_check.h"
#include "sim/simulation.h"
#include "spec/nm_pac_type.h"

namespace lbsa::protocols {
namespace {

std::vector<Value> iota_inputs(int n) {
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
  return inputs;
}

class DacFromNmPacSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DacFromNmPacSweep, SolvesNDacExhaustively) {
  const auto [n, m] = GetParam();
  const auto inputs = iota_inputs(n);
  auto protocol = std::make_shared<DacFromNmPacProtocol>(inputs, m);
  auto report = modelcheck::check_dac_task(protocol, 0, inputs);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().ok())
      << "(n,m)=(" << n << "," << m << ")\n"
      << report.value().to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Dims, DacFromNmPacSweep,
    ::testing::Values(std::pair{2, 2}, std::pair{3, 2}, std::pair{3, 3},
                      std::pair{4, 2}),
    [](const ::testing::TestParamInfo<std::pair<int, int>>& info) {
      return "n" + std::to_string(info.param.first) + "_m" +
             std::to_string(info.param.second);
    });

TEST(DacFromNmPac, Theorem71Shape) {
  // Theorem 7.1 (m = 2, n = 3): the (4, 2)-PAC object sits at level 2 of
  // the hierarchy yet solves 4-DAC — which Theorem 4.2 shows 3-consensus +
  // registers (+ 2-SA) cannot. The constructive half, verified:
  const auto inputs = iota_inputs(4);
  auto protocol = std::make_shared<DacFromNmPacProtocol>(inputs, /*m=*/2);
  auto report = modelcheck::check_dac_task(protocol, 0, inputs);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().ok()) << report.value().to_string();
}

TEST(DacFromNmPac, ConsensusPortUntouchedByDacRun) {
  // The DAC run must not consume the combined object's m-consensus budget:
  // drive a full adversarial run, then check the consensus port still
  // serves its m proposes.
  const auto inputs = iota_inputs(3);
  auto protocol = std::make_shared<DacFromNmPacProtocol>(inputs, /*m=*/2);
  sim::Simulation simulation(protocol);
  sim::RandomAdversary adversary(3);
  simulation.run(&adversary, {.max_steps = 100'000});
  const auto& state = simulation.config().objects[0];
  spec::NmPacType type(3, 2);
  auto o1 = type.apply_unique(state, spec::make_propose_c(500));
  EXPECT_EQ(o1.response, 500);
}

}  // namespace
}  // namespace lbsa::protocols
