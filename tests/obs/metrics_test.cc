#include "obs/metrics.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace lbsa::obs {
namespace {

// Flips the global metrics switch for one test and restores the default-off
// state afterwards, so tests can't leak an enabled flag into each other.
class MetricsEnabledScope {
 public:
  explicit MetricsEnabledScope(bool enabled) { set_metrics_enabled(enabled); }
  ~MetricsEnabledScope() { set_metrics_enabled(false); }
};

TEST(Counter, DisabledMutationsAreNoops) {
  ASSERT_FALSE(metrics_enabled()) << "metrics must default to off";
  Counter c("test.disabled", Stability::kStable);
  c.add(7);
  EXPECT_EQ(c.total(), 0u);
}

TEST(Counter, StripesSumAcrossThreads) {
  MetricsEnabledScope on(true);
  Counter c("test.striped", Stability::kStable);
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.total(), static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(Gauge, ObserveMaxFoldsRunningMaximum) {
  MetricsEnabledScope on(true);
  Gauge g("test.max", Stability::kStable);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&g, t] {
      for (int i = 0; i < 1000; ++i) g.observe_max(t * 1000 + i);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(g.value(), 7999);
}

TEST(Histogram, BucketOfIsLog2) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Histogram::bucket_of(1024), 11);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64);
}

TEST(Histogram, MergesStripesAndTrimsTrailingZeros) {
  MetricsEnabledScope on(true);
  Histogram h("test.hist", Stability::kStable);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&h] {
      h.observe(0);
      h.observe(1);
      h.observe(5);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), 12u);
  EXPECT_EQ(h.sum(), 4u * 6);
  // buckets: [0]=4 (value 0), [1]=4 (value 1), [3]=4 (value 5); trimmed.
  const std::vector<std::uint64_t> expected{4, 4, 0, 4};
  EXPECT_EQ(h.buckets(), expected);
}

TEST(Registry, ReRegistrationReturnsSameHandle) {
  Registry r;
  Counter* a = r.counter("x.count");
  Counter* b = r.counter("x.count");
  EXPECT_EQ(a, b);
  EXPECT_NE(r.gauge("x.count"), nullptr)
      << "same name, different kind lives in a separate namespace";
}

TEST(Registry, SnapshotSortsByNameAndSplitsStability) {
  MetricsEnabledScope on(true);
  Registry r;
  r.counter("b.stable")->add(2);
  r.counter("a.stable")->add(1);
  r.counter("z.volatile", Stability::kVolatile)->add(9);
  r.gauge("g.depth")->set(4);
  r.histogram("h.sizes")->observe(3);

  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a.stable");
  EXPECT_EQ(snap.counters[1].name, "b.stable");
  EXPECT_EQ(snap.counters[2].name, "z.volatile");
  EXPECT_EQ(snap.counters[2].stability, Stability::kVolatile);

  const std::string stable = snap.stable_json();
  EXPECT_NE(stable.find("a.stable"), std::string::npos);
  EXPECT_EQ(stable.find("z.volatile"), std::string::npos)
      << "volatile metrics must not appear in the stable comparison string";
  const std::string full = snap.to_json();
  EXPECT_NE(full.find("z.volatile"), std::string::npos);
  EXPECT_NE(full.find("\"volatile\""), std::string::npos);
}

TEST(Registry, SnapshotMergeIsDeterministicAcrossThreadCounts) {
  MetricsEnabledScope on(true);
  // The same logical workload executed by 1, 2, and 8 threads must produce
  // byte-identical stable snapshots: stripe merge is a plain sum.
  std::string baseline;
  for (int threads : {1, 2, 8}) {
    Registry r;
    Counter* work = r.counter("merge.work");
    Histogram* sizes = r.histogram("merge.sizes");
    constexpr int kTotalOps = 9600;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = t; i < kTotalOps; i += threads) {
          work->add(1);
          sizes->observe(static_cast<std::uint64_t>(i % 37));
        }
      });
    }
    for (auto& w : workers) w.join();
    const std::string json = r.snapshot().stable_json();
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "threads=" << threads;
    }
  }
}

TEST(Registry, ResetValuesZeroesButKeepsHandles) {
  MetricsEnabledScope on(true);
  Registry r;
  Counter* c = r.counter("reset.count");
  r.gauge("reset.gauge")->set(5);
  r.histogram("reset.hist")->observe(8);
  c->add(3);
  r.reset_values();
  EXPECT_EQ(c->total(), 0u);
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
  c->add(2);
  EXPECT_EQ(c->total(), 2u);
}

}  // namespace
}  // namespace lbsa::obs
