#include "obs/metrics.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace lbsa::obs {
namespace {

// Flips the global metrics switch for one test and restores the default-off
// state afterwards, so tests can't leak an enabled flag into each other.
class MetricsEnabledScope {
 public:
  explicit MetricsEnabledScope(bool enabled) { set_metrics_enabled(enabled); }
  ~MetricsEnabledScope() { set_metrics_enabled(false); }
};

TEST(Counter, DisabledMutationsAreNoops) {
  ASSERT_FALSE(metrics_enabled()) << "metrics must default to off";
  Counter c("test.disabled", Stability::kStable);
  c.add(7);
  EXPECT_EQ(c.total(), 0u);
}

TEST(Counter, StripesSumAcrossThreads) {
  MetricsEnabledScope on(true);
  Counter c("test.striped", Stability::kStable);
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.total(), static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(Gauge, ObserveMaxFoldsRunningMaximum) {
  MetricsEnabledScope on(true);
  Gauge g("test.max", Stability::kStable);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&g, t] {
      for (int i = 0; i < 1000; ++i) g.observe_max(t * 1000 + i);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(g.value(), 7999);
}

TEST(Histogram, BucketOfIsLog2) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Histogram::bucket_of(1024), 11);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64);
}

TEST(Histogram, MergesStripesAndTrimsTrailingZeros) {
  MetricsEnabledScope on(true);
  Histogram h("test.hist", Stability::kStable);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&h] {
      h.observe(0);
      h.observe(1);
      h.observe(5);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), 12u);
  EXPECT_EQ(h.sum(), 4u * 6);
  // buckets: [0]=4 (value 0), [1]=4 (value 1), [3]=4 (value 5); trimmed.
  const std::vector<std::uint64_t> expected{4, 4, 0, 4};
  EXPECT_EQ(h.buckets(), expected);
}

TEST(Registry, ReRegistrationReturnsSameHandle) {
  Registry r;
  Counter* a = r.counter("x.count");
  Counter* b = r.counter("x.count");
  EXPECT_EQ(a, b);
  EXPECT_NE(r.gauge("x.count"), nullptr)
      << "same name, different kind lives in a separate namespace";
}

TEST(Registry, SnapshotSortsByNameAndSplitsStability) {
  MetricsEnabledScope on(true);
  Registry r;
  r.counter("b.stable")->add(2);
  r.counter("a.stable")->add(1);
  r.counter("z.volatile", Stability::kVolatile)->add(9);
  r.gauge("g.depth")->set(4);
  r.histogram("h.sizes")->observe(3);

  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a.stable");
  EXPECT_EQ(snap.counters[1].name, "b.stable");
  EXPECT_EQ(snap.counters[2].name, "z.volatile");
  EXPECT_EQ(snap.counters[2].stability, Stability::kVolatile);

  const std::string stable = snap.stable_json();
  EXPECT_NE(stable.find("a.stable"), std::string::npos);
  EXPECT_EQ(stable.find("z.volatile"), std::string::npos)
      << "volatile metrics must not appear in the stable comparison string";
  const std::string full = snap.to_json();
  EXPECT_NE(full.find("z.volatile"), std::string::npos);
  EXPECT_NE(full.find("\"volatile\""), std::string::npos);
}

TEST(Registry, SnapshotMergeIsDeterministicAcrossThreadCounts) {
  MetricsEnabledScope on(true);
  // The same logical workload executed by 1, 2, and 8 threads must produce
  // byte-identical stable snapshots: stripe merge is a plain sum.
  std::string baseline;
  for (int threads : {1, 2, 8}) {
    Registry r;
    Counter* work = r.counter("merge.work");
    Histogram* sizes = r.histogram("merge.sizes");
    constexpr int kTotalOps = 9600;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = t; i < kTotalOps; i += threads) {
          work->add(1);
          sizes->observe(static_cast<std::uint64_t>(i % 37));
        }
      });
    }
    for (auto& w : workers) w.join();
    const std::string json = r.snapshot().stable_json();
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "threads=" << threads;
    }
  }
}

TEST(Quantiles, EmptyHistogramReportsAllZeros) {
  const HistogramQuantiles q = quantiles_from_buckets({}, 0);
  EXPECT_EQ(q.p50, 0u);
  EXPECT_EQ(q.p90, 0u);
  EXPECT_EQ(q.p99, 0u);
  EXPECT_EQ(q.max, 0u);
}

TEST(Quantiles, SingleSampleReportsItsBucketBoundEverywhere) {
  MetricsEnabledScope on(true);
  Histogram h("test.q.single", Stability::kStable);
  h.observe(100);  // bucket 7: [64, 127]
  const HistogramQuantiles q = quantiles_from_buckets(h.buckets(), h.count());
  EXPECT_EQ(q.p50, 127u);
  EXPECT_EQ(q.p90, 127u);
  EXPECT_EQ(q.p99, 127u);
  EXPECT_EQ(q.max, 127u);
  // Error-bound check for this sample: exact <= reported < 2 * exact.
  EXPECT_LE(100u, q.p50);
  EXPECT_LT(q.p50, 200u);
}

TEST(Quantiles, BucketUpperBoundsMatchLog2Scheme) {
  EXPECT_EQ(histogram_bucket_upper_bound(0), 0u);
  EXPECT_EQ(histogram_bucket_upper_bound(1), 1u);
  EXPECT_EQ(histogram_bucket_upper_bound(2), 3u);
  EXPECT_EQ(histogram_bucket_upper_bound(10), 1023u);
  EXPECT_EQ(histogram_bucket_upper_bound(63), (std::uint64_t{1} << 63) - 1);
  EXPECT_EQ(histogram_bucket_upper_bound(64), ~std::uint64_t{0});
}

TEST(Quantiles, OverflowTopBucketReportsDomainMax) {
  MetricsEnabledScope on(true);
  Histogram h("test.q.top", Stability::kStable);
  h.observe(1);
  h.observe(~std::uint64_t{0});  // lands in overflow bucket 64
  const HistogramQuantiles q = quantiles_from_buckets(h.buckets(), h.count());
  EXPECT_EQ(q.p50, 1u);
  EXPECT_EQ(q.max, ~std::uint64_t{0});
  EXPECT_EQ(q.p99, ~std::uint64_t{0});
}

TEST(Quantiles, RandomizedP99WithinDocumentedBound) {
  MetricsEnabledScope on(true);
  // Deterministic LCG (no seed sensitivity in CI): compare the bucketed p99
  // against the exact p99 of the same samples; the documented bound is
  // exact <= reported < 2 * exact for nonzero samples.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int round = 0; round < 10; ++round) {
    Histogram h("test.q.rand", Stability::kStable);
    std::vector<std::uint64_t> samples;
    const int n = 500 + round * 137;
    samples.reserve(n);
    for (int i = 0; i < n; ++i) {
      const std::uint64_t v = next() % 100'000;
      samples.push_back(v);
      h.observe(v);
    }
    std::sort(samples.begin(), samples.end());
    // rank ceil(0.99 * n), 1-based — mirror the implementation's rank rule.
    const std::uint64_t rank =
        std::max<std::uint64_t>(1, (static_cast<std::uint64_t>(n) * 99 + 99) /
                                       100);
    const std::uint64_t exact = samples[rank - 1];
    const HistogramQuantiles q =
        quantiles_from_buckets(h.buckets(), h.count());
    EXPECT_LE(exact, q.p99) << "round " << round;
    if (exact > 0) {
      EXPECT_LT(q.p99, 2 * exact) << "round " << round;
    } else {
      EXPECT_EQ(q.p99, 0u) << "round " << round;
    }
    EXPECT_EQ(q.max, samples.back() == 0
                         ? 0u
                         : histogram_bucket_upper_bound(
                               Histogram::bucket_of(samples.back())))
        << "round " << round;
    h.reset();
  }
}

TEST(Quantiles, SnapshotRowsCarryQuantiles) {
  MetricsEnabledScope on(true);
  Registry r;
  Histogram* h = r.histogram("q.row");
  h->observe(5);
  h->observe(9);
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].quantiles.p50, 7u);   // bucket 3: [4,7]
  EXPECT_EQ(snap.histograms[0].quantiles.max, 15u);  // bucket 4: [8,15]
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"quantiles\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Registry, ResetValuesZeroesButKeepsHandles) {
  MetricsEnabledScope on(true);
  Registry r;
  Counter* c = r.counter("reset.count");
  r.gauge("reset.gauge")->set(5);
  r.histogram("reset.hist")->observe(8);
  c->add(3);
  r.reset_values();
  EXPECT_EQ(c->total(), 0u);
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
  c->add(2);
  EXPECT_EQ(c->total(), 2u);
}

}  // namespace
}  // namespace lbsa::obs
