// Heartbeat telemetry (docs/observability.md, "Heartbeats"): deterministic
// sampler behavior under an injected fake clock, the stream/digest
// validators' accept and reject sets, checkpoint/resume splice continuity,
// and the engines × thread-counts field-set stability contract.
#include "obs/heartbeat.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "modelcheck/corpus.h"
#include "modelcheck/explorer.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace lbsa::obs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// Top-level key set of one heartbeat line — the "field set" the issue pins
// as stable across engines and thread counts.
std::set<std::string> keys_of(const std::string& line) {
  auto parsed = parse_json(line);
  EXPECT_TRUE(parsed.is_ok()) << line;
  std::set<std::string> keys;
  for (const auto& member : parsed.value().members) {
    keys.insert(member.first);
  }
  return keys;
}

// A fake monotonic clock the sampler reads through its injected hook.
struct FakeClock {
  std::uint64_t now_ms = 0;
  std::function<std::uint64_t()> fn() {
    return [this] { return now_ms; };
  }
};

HeartbeatOptions test_options(const std::string& path, FakeClock* clock,
                              const std::string& run_id = "deadbeef00000000") {
  HeartbeatOptions options;
  options.path = path;
  options.tool = "heartbeat_test";
  options.task = "dac3";
  options.run_id = run_id;
  options.interval_ms = 1000;
  options.clock_ms = clock->fn();
  return options;
}

TEST(DeriveRunId, StableAndInputSensitive) {
  const std::string a = derive_run_id("explorer_cli", "dac3", "both", 1000);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(a, derive_run_id("explorer_cli", "dac3", "both", 1000))
      << "same inputs must derive the same id (resume continuity)";
  EXPECT_NE(a, derive_run_id("explorer_cli", "dac4", "both", 1000));
  EXPECT_NE(a, derive_run_id("explorer_cli", "dac3", "none", 1000));
  EXPECT_NE(a, derive_run_id("explorer_cli", "dac3", "both", 2000));
  EXPECT_NE(a, derive_run_id("fuzz_shrink_cli", "dac3", "both", 1000));
}

// Regression (serving PR): two concurrent server requests for the same
// (tool, task, mode, budget) used to derive the SAME run_id, so their
// heartbeat lines interleaved into one stream namespace and
// validate_heartbeat_stream conflated them (constant-run_id check, seq
// collisions). The caller-supplied nonce — the server uses the request id —
// must separate them, while staying stable across checkpoint/resume of the
// same logical request.
TEST(DeriveRunId, NonceSeparatesConcurrentIdenticalRuns) {
  const std::string bare = derive_run_id("lbsa_serverd", "dac3", "both", 1000);
  const std::string r1 =
      derive_run_id("lbsa_serverd", "dac3", "both", 1000, "req-1");
  const std::string r2 =
      derive_run_id("lbsa_serverd", "dac3", "both", 1000, "req-2");

  EXPECT_NE(r1, r2) << "concurrent identical requests must not share an id";
  EXPECT_NE(r1, bare);
  // Resume continuity: the same logical request re-derives the same id.
  EXPECT_EQ(r1, derive_run_id("lbsa_serverd", "dac3", "both", 1000, "req-1"));
  // Shape invariants hold with a nonce too.
  EXPECT_EQ(r1.size(), 16u);
  EXPECT_EQ(r1.find_first_not_of("0123456789abcdef"), std::string::npos);
  // An empty nonce is not hashed: pre-nonce callers' ids are unchanged, so
  // historical streams still validate against freshly derived ids.
  EXPECT_EQ(bare, derive_run_id("lbsa_serverd", "dac3", "both", 1000, ""));
}

// Sink mode (serving PR): with HeartbeatOptions::sink set, every line goes
// to the callback — nothing touches the filesystem, `path` is ignored, and
// the concatenated lines form a stream validate_heartbeat_stream accepts
// byte-for-byte (the server frames these onto client sockets).
TEST(HeartbeatSampler, SinkModeStreamsLinesWithoutTouchingDisk) {
  const std::string path = temp_path("hb_sink_should_not_exist.jsonl");
  std::remove(path.c_str());
  FakeClock clock;
  Progress& progress = Progress::global();
  progress.reset();

  std::vector<std::string> lines;
  HeartbeatOptions options = test_options(path, &clock);
  options.sink = [&lines](std::string_view line) {
    lines.emplace_back(line);
  };
  HeartbeatSampler sampler(options);
  ASSERT_TRUE(sampler.open().is_ok());
  EXPECT_TRUE(sampler.opened());
  EXPECT_TRUE(heartbeat_enabled()) << "sink mode still arms the engines";

  progress.nodes_total.store(100);
  clock.now_ms = 1000;
  sampler.tick();
  progress.nodes_total.store(250);
  clock.now_ms = 2000;
  sampler.tick();
  clock.now_ms = 2500;
  ASSERT_TRUE(sampler.stop().is_ok());
  EXPECT_FALSE(heartbeat_enabled());

  ASSERT_EQ(lines.size(), 3u) << "two ticks plus the final line";
  std::ifstream probe(path);
  EXPECT_FALSE(probe.good()) << "sink mode must not create the path";

  std::string stream;
  for (const std::string& line : lines) {
    EXPECT_EQ(line.find('\n'), std::string::npos)
        << "sink lines carry no trailing newline; the transport frames them";
    stream += line;
    stream += '\n';
  }
  const Status s = validate_heartbeat_stream(stream);
  EXPECT_TRUE(s.is_ok()) << s.to_string();
  auto last = parse_json(lines.back());
  ASSERT_TRUE(last.is_ok());
  EXPECT_TRUE(last.value().find("final")->bool_value);
  auto first = parse_json(lines.front());
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().find("nodes_total")->int_value, 100);
}

TEST(Progress, RaiseNeverLowers) {
  std::atomic<std::uint64_t> cell{10};
  Progress::raise(cell, 5);
  EXPECT_EQ(cell.load(), 10u) << "stale smaller value must not un-publish";
  Progress::raise(cell, 25);
  EXPECT_EQ(cell.load(), 25u);
}

TEST(Progress, ConfigureWorkersClampsAndClearsBusyOnly) {
  Progress p;
  p.configure_workers(2);
  ASSERT_NE(p.worker(0), nullptr);
  p.worker(0)->busy.store(1);
  p.worker(0)->expanded.store(7);
  p.configure_workers(kProgressMaxWorkers + 50);
  EXPECT_EQ(p.worker_count(), kProgressMaxWorkers);
  EXPECT_EQ(p.worker(0)->busy.load(), 0u) << "busy flags clear on reconfig";
  EXPECT_EQ(p.worker(0)->expanded.load(), 7u)
      << "cumulative per-slot counters survive reconfiguration";
  p.configure_workers(-3);
  EXPECT_EQ(p.worker_count(), 0);
  EXPECT_EQ(p.worker(0), nullptr);
}

TEST(HeartbeatSampler, DeterministicTicksUnderFakeClock) {
  const std::string path = temp_path("hb_deterministic.jsonl");
  std::remove(path.c_str());
  FakeClock clock;
  Progress& progress = Progress::global();
  progress.reset();

  HeartbeatSampler sampler(test_options(path, &clock));
  ASSERT_TRUE(sampler.open().is_ok());
  EXPECT_TRUE(heartbeat_enabled()) << "open() arms the engines' publish path";

  progress.nodes_total.store(100);
  progress.transitions_total.store(250);
  progress.levels_completed.store(3);
  progress.frontier_size.store(40);
  clock.now_ms = 1000;
  sampler.tick();
  progress.nodes_total.store(300);
  progress.frontier_size.store(20);
  clock.now_ms = 2000;
  sampler.tick();
  clock.now_ms = 3000;
  ASSERT_TRUE(sampler.stop().is_ok());
  EXPECT_FALSE(heartbeat_enabled());

  const std::vector<std::string> lines = lines_of(read_file(path));
  ASSERT_EQ(lines.size(), 3u) << "two ticks plus the final line";
  const Status s = validate_heartbeat_stream(read_file(path));
  EXPECT_TRUE(s.is_ok()) << s.to_string();

  auto first = parse_json(lines[0]);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().find("seq")->int_value, 0);
  EXPECT_EQ(first.value().find("uptime_ms")->int_value, 1000);
  EXPECT_EQ(first.value().find("nodes_total")->int_value, 100);
  EXPECT_FALSE(first.value().find("final")->bool_value);
  auto second = parse_json(lines[1]);
  ASSERT_TRUE(second.is_ok());
  // 200 nodes in the 1000ms window between ticks.
  EXPECT_EQ(second.value().find("nodes_per_sec")->number_value, 200.0);
  // Frontier drained 40 -> 20 in 1s: 20/s drain, 20 left -> eta 1s.
  EXPECT_EQ(second.value().find("eta_s")->number_value, 1.0);
  auto final_line = parse_json(lines[2]);
  ASSERT_TRUE(final_line.is_ok());
  EXPECT_TRUE(final_line.value().find("final")->bool_value);
  EXPECT_EQ(final_line.value().find("seq")->int_value, 2);

  // Every line carries the same top-level field set.
  EXPECT_EQ(keys_of(lines[0]), keys_of(lines[1]));
  EXPECT_EQ(keys_of(lines[0]), keys_of(lines[2]));
  // The captured timeseries excludes the final line.
  EXPECT_EQ(sampler.ticks().size(), 2u);
  EXPECT_EQ(sampler.ticks()[1].nodes_total, 300u);

  progress.reset();
  std::remove(path.c_str());
}

TEST(HeartbeatSampler, ResumeAppendsAContinuation) {
  const std::string path = temp_path("hb_resume.jsonl");
  std::remove(path.c_str());
  Progress& progress = Progress::global();
  progress.reset();

  FakeClock clock;
  {
    HeartbeatSampler first(test_options(path, &clock));
    ASSERT_TRUE(first.open().is_ok());
    progress.nodes_total.store(50);
    clock.now_ms = 1000;
    first.tick();
    ASSERT_TRUE(first.stop().is_ok());
  }
  // Simulate the resumed process: counters re-seeded from the checkpoint.
  progress.reset();
  progress.nodes_total.store(50);
  {
    FakeClock clock2;
    HeartbeatSampler resumed(test_options(path, &clock2));
    ASSERT_TRUE(resumed.open().is_ok())
        << "same run_id must be allowed to append";
    progress.nodes_total.store(80);
    clock2.now_ms = 500;
    resumed.tick();
    ASSERT_TRUE(resumed.stop().is_ok());
  }

  const std::string text = read_file(path);
  const std::vector<std::string> lines = lines_of(text);
  ASSERT_EQ(lines.size(), 4u);
  const Status s = validate_heartbeat_stream(text);
  EXPECT_TRUE(s.is_ok()) << "splice must validate as one stream: "
                         << s.to_string();
  auto third = parse_json(lines[2]);
  ASSERT_TRUE(third.is_ok());
  EXPECT_EQ(third.value().find("seq")->int_value, 2)
      << "resumed sampler continues numbering after the final line";

  // A different run_id must be refused — appending would corrupt the stream.
  FakeClock clock3;
  HeartbeatSampler imposter(
      test_options(path, &clock3, "feedface00000000"));
  const Status refused = imposter.open();
  EXPECT_FALSE(refused.is_ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition)
      << refused.to_string();

  progress.reset();
  std::remove(path.c_str());
}

TEST(HeartbeatValidator, RejectsBrokenStreams) {
  FakeClock clock;
  const std::string path = temp_path("hb_validator.jsonl");
  std::remove(path.c_str());
  Progress& progress = Progress::global();
  progress.reset();
  {
    HeartbeatSampler sampler(test_options(path, &clock));
    ASSERT_TRUE(sampler.open().is_ok());
    progress.nodes_total.store(10);
    clock.now_ms = 1000;
    sampler.tick();
    progress.nodes_total.store(20);
    clock.now_ms = 2000;
    sampler.tick();
    ASSERT_TRUE(sampler.stop().is_ok());
  }
  const std::string good = read_file(path);
  ASSERT_TRUE(validate_heartbeat_stream(good).is_ok());

  EXPECT_FALSE(validate_heartbeat_stream("").is_ok()) << "empty stream";
  EXPECT_FALSE(validate_heartbeat_stream("not json\n").is_ok());

  // Out-of-order seq: swap the first two lines.
  std::vector<std::string> lines = lines_of(good);
  ASSERT_GE(lines.size(), 3u);
  {
    const std::string swapped =
        lines[1] + "\n" + lines[0] + "\n" + lines[2] + "\n";
    const Status s = validate_heartbeat_stream(swapped);
    EXPECT_FALSE(s.is_ok());
    EXPECT_NE(s.message().find("seq"), std::string::npos) << s.to_string();
  }
  // Non-monotone cumulative counter.
  {
    std::string broken = good;
    const std::string needle = "\"nodes_total\":20";
    ASSERT_NE(broken.find(needle), std::string::npos);
    broken.replace(broken.find(needle), needle.size(), "\"nodes_total\":5");
    const Status s = validate_heartbeat_stream(broken);
    EXPECT_FALSE(s.is_ok());
    EXPECT_NE(s.message().find("nodes_total"), std::string::npos)
        << s.to_string();
  }
  // run_id changes mid-stream.
  {
    std::string broken = good;
    const std::size_t second_line = broken.find('\n') + 1;
    const std::size_t pos = broken.find("deadbeef00000000", second_line);
    ASSERT_NE(pos, std::string::npos);
    broken.replace(pos, 16, "feedface00000000");
    EXPECT_FALSE(validate_heartbeat_stream(broken).is_ok());
  }
  // Wrong schema version.
  {
    std::string broken = good;
    const std::string needle = "\"heartbeat_version\":1";
    broken.replace(broken.find(needle), needle.size(),
                   "\"heartbeat_version\":9");
    EXPECT_FALSE(validate_heartbeat_stream(broken).is_ok());
  }
  progress.reset();
  std::remove(path.c_str());
}

TEST(HeartbeatValidator, SummaryDigestAcceptAndReject) {
  const std::string good =
      "{\"heartbeat_summary_version\":1,\"run_id\":\"deadbeef00000000\","
      "\"tool\":\"explorer_cli\",\"task\":\"dac3\",\"ticks\":3,"
      "\"first_seq\":0,\"last_seq\":2,\"nodes_total\":441,"
      "\"transitions_total\":1004,\"levels_completed\":10,"
      "\"max_nodes_per_sec\":120.5,\"final_seen\":true}";
  const Status s = validate_heartbeat_summary_json(good);
  EXPECT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_TRUE(validate_heartbeat_file(good).is_ok())
      << "dispatch must route digests to the summary validator";

  EXPECT_FALSE(validate_heartbeat_summary_json("{}").is_ok());
  // Zero ticks — a digest of nothing is meaningless.
  std::string broken = good;
  const std::string needle = "\"ticks\":3";
  broken.replace(broken.find(needle), needle.size(), "\"ticks\":0");
  EXPECT_FALSE(validate_heartbeat_summary_json(broken).is_ok());
  // last_seq < first_seq.
  broken = good;
  const std::string needle2 = "\"last_seq\":2";
  broken.replace(broken.find(needle2), needle2.size(), "\"last_seq\":-1");
  EXPECT_FALSE(validate_heartbeat_summary_json(broken).is_ok());
}

// The acceptance contract: for a fixed task, the heartbeat a run emits has
// the same tick count (driven deterministically here) and the same JSONL
// top-level field set regardless of engine and thread count, and every
// line parses as strict JSON.
TEST(HeartbeatEngines, FieldSetStableAcrossEnginesAndThreads) {
  auto task = modelcheck::make_named_task("dac3");
  ASSERT_TRUE(task.is_ok());
  modelcheck::Explorer explorer(task.value().protocol);

  std::set<std::string> baseline_keys;
  std::size_t baseline_lines = 0;
  for (const auto engine : {modelcheck::ExploreEngine::kSerial,
                            modelcheck::ExploreEngine::kParallel,
                            modelcheck::ExploreEngine::kWorkStealing}) {
    for (int threads : {1, 2, 8}) {
      const std::string path = temp_path("hb_engines.jsonl");
      std::remove(path.c_str());
      Progress::global().reset();
      FakeClock clock;
      HeartbeatOptions options = test_options(path, &clock);
      options.task = "dac3";
      HeartbeatSampler sampler(options);
      ASSERT_TRUE(sampler.open().is_ok());

      modelcheck::ExploreOptions explore_options;
      explore_options.engine = engine;
      explore_options.threads = threads;
      auto graph = explorer.explore(explore_options);
      ASSERT_TRUE(graph.is_ok()) << graph.status().to_string();

      clock.now_ms = 1000;
      sampler.tick();  // one deterministic mid-run sample
      clock.now_ms = 2000;
      ASSERT_TRUE(sampler.stop().is_ok());

      const std::string text = read_file(path);
      const Status valid = validate_heartbeat_stream(text);
      ASSERT_TRUE(valid.is_ok())
          << "engine=" << modelcheck::engine_name(engine)
          << " threads=" << threads << ": " << valid.to_string();
      const std::vector<std::string> lines = lines_of(text);
      ASSERT_EQ(lines.size(), 2u) << "tick + final, deterministically";
      for (const std::string& line : lines) {
        auto parsed = parse_json(line);
        ASSERT_TRUE(parsed.is_ok()) << line;
        ASSERT_TRUE(parsed.value().is_object());
      }
      // Engines publish real progress: the explored graph's node count.
      auto tick_line = parse_json(lines[0]);
      ASSERT_TRUE(tick_line.is_ok());
      EXPECT_EQ(
          static_cast<std::uint64_t>(
              tick_line.value().find("nodes_total")->int_value),
          graph.value().nodes().size())
          << "engine=" << modelcheck::engine_name(engine)
          << " threads=" << threads;

      const std::set<std::string> keys = keys_of(lines[0]);
      if (baseline_keys.empty()) {
        baseline_keys = keys;
        baseline_lines = lines.size();
        EXPECT_TRUE(keys.count("run_id"));
        EXPECT_TRUE(keys.count("workers"));
        EXPECT_TRUE(keys.count("eta_s"));
      } else {
        EXPECT_EQ(keys, baseline_keys)
            << "engine=" << modelcheck::engine_name(engine)
            << " threads=" << threads;
        EXPECT_EQ(lines.size(), baseline_lines);
      }
      std::remove(path.c_str());
    }
  }
  Progress::global().reset();
}

}  // namespace
}  // namespace lbsa::obs
