#include "obs/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace lbsa::obs {
namespace {

RunReport sample_report() {
  RunReport report;
  report.tool = "unit_test";
  report.task = "dac3";
  report.params = {{"threads", "8"}, {"engine", "\"parallel\""}};
  report.wall_seconds = 0.125;
  set_metrics_enabled(true);
  Registry registry;
  registry.counter("t.nodes")->add(42);
  registry.counter("t.probes", Stability::kVolatile)->add(7);
  registry.histogram("t.sizes")->observe(5);
  report.metrics = registry.snapshot();
  set_metrics_enabled(false);
  JsonWriter w;
  w.begin_object();
  w.key("nodes");
  w.value_uint(42);
  w.end_object();
  report.sections.emplace_back("explorer", std::move(w).str());
  return report;
}

TEST(RunReportSchema, SerializedReportValidates) {
  const std::string json = sample_report().to_json();
  const Status s = validate_run_report_json(json);
  EXPECT_TRUE(s.is_ok()) << s.to_string() << "\n" << json;
}

TEST(RunReportSchema, CarriesVersionToolAndMetrics) {
  auto parsed = parse_json(sample_report().to_json());
  ASSERT_TRUE(parsed.is_ok());
  const JsonValue& root = parsed.value();
  EXPECT_EQ(root.find("run_report_version")->int_value,
            RunReport::kSchemaVersion);
  EXPECT_EQ(root.find("tool")->string_value, "unit_test");
  const JsonValue* metrics = root.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("counters")->find("t.nodes")->int_value, 42);
  // Volatile metrics live under metrics.volatile, not among the stable rows.
  EXPECT_EQ(metrics->find("counters")->find("t.probes"), nullptr);
  EXPECT_EQ(
      metrics->find("volatile")->find("counters")->find("t.probes")->int_value,
      7);
  EXPECT_EQ(root.find("sections")->find("explorer")->find("nodes")->int_value,
            42);
}

TEST(RunReportSchema, RejectsMalformedDocuments) {
  EXPECT_FALSE(validate_run_report_json("not json").is_ok());
  EXPECT_FALSE(validate_run_report_json("[]").is_ok());
  EXPECT_FALSE(validate_run_report_json("{}").is_ok());
  // Wrong version.
  RunReport report = sample_report();
  std::string json = report.to_json();
  const std::string needle = "\"run_report_version\":" +
                             std::to_string(RunReport::kSchemaVersion);
  ASSERT_NE(json.find(needle), std::string::npos);
  json.replace(json.find(needle), needle.size(), "\"run_report_version\":99");
  EXPECT_FALSE(validate_run_report_json(json).is_ok());
  // Empty tool name.
  report.tool = "";
  EXPECT_FALSE(validate_run_report_json(report.to_json()).is_ok());
}

TEST(RunReportSchema, WriteRunReportRefusesInvalidAndWritesValid) {
  RunReport bad = sample_report();
  bad.tool = "";
  EXPECT_FALSE(
      write_run_report(bad, ::testing::TempDir() + "/lbsa_obs_invalid.json")
          .is_ok());

  const std::string path = ::testing::TempDir() + "/lbsa_obs_report.json";
  const Status s = write_run_report(sample_report(), path);
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(validate_run_report_json(buffer.str()).is_ok());
  EXPECT_EQ(buffer.str().back(), '\n');
  std::remove(path.c_str());
}

// Completeness guard: the explorer section's full-graph estimate (and the
// ratio derived from it) only counts visited orbits, so a report carrying
// either field next to truncated/interrupted = true is a producer bug.
TEST(RunReportSchema, RejectsReductionRatioOnIncompleteGraphs) {
  auto with_explorer_section = [](const std::string& section_json) {
    RunReport report = sample_report();
    report.sections.clear();
    report.sections.emplace_back("explorer", section_json);
    return report.to_json();
  };
  // Complete graph: ratio fine.
  EXPECT_TRUE(validate_run_report_json(
                  with_explorer_section("{\"truncated\":false,"
                                        "\"interrupted\":false,"
                                        "\"nodes_full_estimate\":256,"
                                        "\"reduction_ratio\":1.8}"))
                  .is_ok());
  // Truncated or interrupted: both completeness-only fields rejected.
  for (const char* flag : {"truncated", "interrupted"}) {
    for (const char* field :
         {"\"reduction_ratio\":1.8", "\"nodes_full_estimate\":256"}) {
      const std::string json = with_explorer_section(
          "{\"" + std::string(flag) + "\":true," + field + "}");
      const Status s = validate_run_report_json(json);
      EXPECT_FALSE(s.is_ok()) << json;
      EXPECT_NE(s.message().find("incomplete"), std::string::npos)
          << s.to_string();
    }
    // The flags alone (without the fields) stay valid.
    EXPECT_TRUE(validate_run_report_json(with_explorer_section(
                    "{\"" + std::string(flag) + "\":true,\"nodes\":79}"))
                    .is_ok());
  }
}

// v2 additions: every histogram row must carry a quantiles object, and the
// optional sections.timeseries (heartbeat samples folded into the report)
// must be internally consistent.
TEST(RunReportSchema, RequiresHistogramQuantiles) {
  std::string json = sample_report().to_json();
  ASSERT_NE(json.find("\"quantiles\""), std::string::npos);
  // Strip the quantiles object from the histogram row: must now reject.
  const std::size_t start = json.find(",\"quantiles\":{");
  ASSERT_NE(start, std::string::npos);
  const std::size_t end = json.find('}', start);
  ASSERT_NE(end, std::string::npos);
  json.erase(start, end - start + 1);
  const Status s = validate_run_report_json(json);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("quantiles"), std::string::npos)
      << s.to_string();
}

TEST(RunReportSchema, RejectsDisorderedQuantiles) {
  std::string json = sample_report().to_json();
  // sample_report observes a single 5 → p50=p90=p99=max=7. Force p90 < p50.
  const std::string needle = "\"p90\":7";
  ASSERT_NE(json.find(needle), std::string::npos);
  json.replace(json.find(needle), needle.size(), "\"p90\":3");
  EXPECT_FALSE(validate_run_report_json(json).is_ok());
}

TEST(RunReportSchema, AcceptsAndRejectsTimeseriesSection) {
  auto with_timeseries = [](const std::string& ts_json) {
    RunReport report = sample_report();
    report.sections.emplace_back("timeseries", ts_json);
    return report.to_json();
  };
  const Status good = validate_run_report_json(with_timeseries(
      "{\"run_id\":\"0123456789abcdef\",\"interval_ms\":1000,\"ticks\":2,"
      "\"uptime_ms\":[1000,2000],\"nodes_total\":[10,20],"
      "\"frontier_size\":[4,0],\"nodes_per_sec\":[10.0,10.0]}"));
  EXPECT_TRUE(good.is_ok()) << good.to_string();
  // Array length disagrees with ticks.
  EXPECT_FALSE(validate_run_report_json(with_timeseries(
                   "{\"run_id\":\"0123456789abcdef\",\"interval_ms\":1000,"
                   "\"ticks\":2,\"uptime_ms\":[1000],\"nodes_total\":[10,20],"
                   "\"frontier_size\":[4,0],\"nodes_per_sec\":[10.0,10.0]}"))
                   .is_ok());
  // Empty run_id.
  EXPECT_FALSE(validate_run_report_json(with_timeseries(
                   "{\"run_id\":\"\",\"interval_ms\":1000,\"ticks\":0,"
                   "\"uptime_ms\":[],\"nodes_total\":[],"
                   "\"frontier_size\":[],\"nodes_per_sec\":[]}"))
                   .is_ok());
  // interval below 1ms.
  EXPECT_FALSE(validate_run_report_json(with_timeseries(
                   "{\"run_id\":\"0123456789abcdef\",\"interval_ms\":0,"
                   "\"ticks\":0,\"uptime_ms\":[],\"nodes_total\":[],"
                   "\"frontier_size\":[],\"nodes_per_sec\":[]}"))
                   .is_ok());
}

TEST(BenchArtifactSchema, AcceptsMergedArtifactAndRejectsBadRows) {
  const std::string report_json = sample_report().to_json();
  const std::string good = "{\"lbsa_bench_schema\":1,"
                           "\"benchmarks\":[{\"task\":\"dac3\",\"nodes\":441}],"
                           "\"run_reports\":{\"explorer_cli:dac3:t1\":" +
                           report_json + "}}";
  const Status s = validate_bench_artifact_json(good);
  EXPECT_TRUE(s.is_ok()) << s.to_string();

  EXPECT_FALSE(validate_bench_artifact_json("{}").is_ok());
  EXPECT_FALSE(validate_bench_artifact_json(
                   "{\"lbsa_bench_schema\":2,\"benchmarks\":[],"
                   "\"run_reports\":{}}")
                   .is_ok());
  // Benchmark row without a task name.
  EXPECT_FALSE(validate_bench_artifact_json(
                   "{\"lbsa_bench_schema\":1,\"benchmarks\":[{}],"
                   "\"run_reports\":{}}")
                   .is_ok());
  // Embedded run report must itself validate.
  EXPECT_FALSE(validate_bench_artifact_json(
                   "{\"lbsa_bench_schema\":1,\"benchmarks\":[],"
                   "\"run_reports\":{\"x\":{}}}")
                   .is_ok());
}

TEST(BenchArtifactSchema, ChecksReductionSweepRows) {
  // The reduction sweep's row shape (tools/run_report.sh).
  const Status good = validate_bench_artifact_json(
      "{\"lbsa_bench_schema\":1,\"benchmarks\":["
      "{\"task\":\"dac4-sym\",\"threads\":1,\"reduction\":\"both\","
      "\"nodes\":394,\"nodes_per_sec\":228805,\"reduction_ratio\":4.27}],"
      "\"run_reports\":{}}");
  EXPECT_TRUE(good.is_ok()) << good.to_string();
  // Unknown reduction mode.
  EXPECT_FALSE(validate_bench_artifact_json(
                   "{\"lbsa_bench_schema\":1,\"benchmarks\":["
                   "{\"task\":\"dac4-sym\",\"reduction\":\"sym\"}],"
                   "\"run_reports\":{}}")
                   .is_ok());
  // Measurement fields, when present, must be numbers.
  EXPECT_FALSE(validate_bench_artifact_json(
                   "{\"lbsa_bench_schema\":1,\"benchmarks\":["
                   "{\"task\":\"dac4-sym\",\"reduction_ratio\":\"4.27\"}],"
                   "\"run_reports\":{}}")
                   .is_ok());
  EXPECT_FALSE(validate_bench_artifact_json(
                   "{\"lbsa_bench_schema\":1,\"benchmarks\":["
                   "{\"task\":\"dac4-sym\",\"nodes_per_sec\":true}],"
                   "\"run_reports\":{}}")
                   .is_ok());
}

TEST(BenchArtifactSchema, ChecksSymCostRows) {
  // The symmetry-cost pair's row shape (tools/run_report.sh): serial
  // wall-clock with reduction off vs on, tagged by which side the row is.
  const Status good = validate_bench_artifact_json(
      "{\"lbsa_bench_schema\":1,\"benchmarks\":["
      "{\"task\":\"dac5-sym\",\"sym_cost\":\"none\",\"threads\":1,"
      "\"nodes\":19221,\"nodes_per_sec\":250000},"
      "{\"task\":\"dac5-sym\",\"sym_cost\":\"symmetry\",\"threads\":1,"
      "\"nodes\":1513,\"nodes_per_sec\":190000}],"
      "\"run_reports\":{}}");
  EXPECT_TRUE(good.is_ok()) << good.to_string();
  // sym_cost only names the two sides of the pair.
  EXPECT_FALSE(validate_bench_artifact_json(
                   "{\"lbsa_bench_schema\":1,\"benchmarks\":["
                   "{\"task\":\"dac5\",\"sym_cost\":\"por\"}],"
                   "\"run_reports\":{}}")
                   .is_ok());
  EXPECT_FALSE(validate_bench_artifact_json(
                   "{\"lbsa_bench_schema\":1,\"benchmarks\":["
                   "{\"task\":\"dac5\",\"sym_cost\":1}],"
                   "\"run_reports\":{}}")
                   .is_ok());
}

}  // namespace
}  // namespace lbsa::obs
