// Compiled with LBSA_OBS_DISABLED (see tests/obs/CMakeLists.txt): every
// LBSA_OBS_* macro must erase to a no-op that still type-checks its
// arguments. This is the "literal zero cost" tier of the observability
// design — the test proves the erased call sites register nothing and
// record nothing even with both global sinks switched on.
#ifndef LBSA_OBS_DISABLED
#error "this test must be compiled with LBSA_OBS_DISABLED"
#endif

#include "obs/obs.h"

#include <cstdint>
#include <string>

#include "gtest/gtest.h"

namespace lbsa::obs {
namespace {

TEST(ObsDisabled, MacrosRegisterAndRecordNothing) {
  // Worst case for the erased build: both sinks are on.
  set_metrics_enabled(true);
  set_tracing_enabled(true);
  const std::string before_metrics = Registry::global().snapshot().to_json();
  const std::size_t before_events = Tracer::global().event_count();

  std::uint64_t n = 3;
  LBSA_OBS_COUNTER_ADD("erased.counter", 1);
  LBSA_OBS_COUNTER_ADD_V("erased.counter.volatile", n);
  LBSA_OBS_GAUGE_SET("erased.gauge", 7);
  LBSA_OBS_GAUGE_SET_V("erased.gauge.volatile", -2);
  LBSA_OBS_GAUGE_MAX("erased.gauge.max", n);
  LBSA_OBS_HISTOGRAM_OBSERVE("erased.hist", 9);
  LBSA_OBS_HISTOGRAM_OBSERVE_V("erased.hist.volatile", n);
  {
    LBSA_OBS_SPAN(span, "erased.span", kCatPhase, 0);
    span.arg("key", 1);
    EXPECT_FALSE(span.active());
  }

  EXPECT_EQ(Registry::global().snapshot().to_json(), before_metrics)
      << "erased macros must not register metrics";
  EXPECT_EQ(Tracer::global().event_count(), before_events)
      << "erased spans must not record events";
  set_metrics_enabled(false);
  set_tracing_enabled(false);
}

TEST(ObsDisabled, SpanMacroDeclaresUsableVariable) {
  // The macro's variable is a real local: nested scopes, shadowing, and
  // argument expressions with side effects all behave.
  int lane = 0;
  LBSA_OBS_SPAN(outer, "outer", kCatTask, lane + 1);
  (void)outer;
  {
    LBSA_OBS_SPAN(inner, "inner", kCatWorker, 2);
    inner.arg("i", 0);
    EXPECT_FALSE(NoopSpan::active());
  }
}

}  // namespace
}  // namespace lbsa::obs
