#include "obs/json.h"

#include <cmath>
#include <limits>
#include <string>

#include "gtest/gtest.h"

namespace lbsa::obs {
namespace {

TEST(JsonEscape, EscapesControlQuoteBackslash) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonWriter, ManagesCommasAndNesting) {
  JsonWriter w;
  w.begin_object();
  w.key("n");
  w.value_uint(3);
  w.key("name");
  w.value_string("x\"y");
  w.key("list");
  w.begin_array();
  w.value_int(-1);
  w.value_bool(true);
  w.value_raw("{\"inner\":0}");
  w.end_array();
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "{\"n\":3,\"name\":\"x\\\"y\",\"list\":[-1,true,{\"inner\":0}]}");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("b");
  w.value_uint(2);
  w.key("a");
  w.value_double(0.5);
  w.end_object();
  auto parsed = parse_json(std::move(w).str());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const JsonValue& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  // Member order is preserved, not sorted.
  ASSERT_EQ(root.members.size(), 2u);
  EXPECT_EQ(root.members[0].first, "b");
  const JsonValue* b = root.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->number_is_integer);
  EXPECT_EQ(b->int_value, 2);
  const JsonValue* a = root.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_FALSE(a->number_is_integer);
  EXPECT_DOUBLE_EQ(a->number_value, 0.5);
  EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_FALSE(parse_json("").is_ok());
  EXPECT_FALSE(parse_json("{").is_ok());
  EXPECT_FALSE(parse_json("{}extra").is_ok());
  EXPECT_FALSE(parse_json("{'single':1}").is_ok());
  EXPECT_FALSE(parse_json("[1,]").is_ok());
  EXPECT_FALSE(parse_json("{\"a\":nope}").is_ok());
}

TEST(JsonParse, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(parse_json(deep).is_ok());
  std::string shallow = "[[[[[[[[[[]]]]]]]]]]";
  EXPECT_TRUE(parse_json(shallow).is_ok());
}

TEST(JsonParse, ParsesStringsWithEscapes) {
  auto parsed = parse_json("\"a\\n\\u0041\\\"\"");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().string_value, "a\nA\"");
}

TEST(JsonParse, RejectsNonFiniteNumbers) {
  // strtod is laxer than JSON: it returns ±HUGE_VAL for overflowing
  // literals like 1e999. A strict parser must not materialize values JSON
  // itself cannot round-trip.
  for (const char* text :
       {"1e999", "-1e999", "[1.0,1e400]", "{\"x\":-2e308}"}) {
    const auto parsed = parse_json(text);
    ASSERT_FALSE(parsed.is_ok()) << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find("out of range"),
              std::string::npos)
        << parsed.status().to_string();
  }
  // Inf/nan spellings were never valid JSON; the tokenizer rejects them
  // before strtod (which would happily accept them) ever sees the text.
  for (const char* text : {"inf", "nan", "-inf", "Infinity", "NaN"}) {
    EXPECT_FALSE(parse_json(text).is_ok()) << text;
  }
  // Large-but-finite values still parse.
  auto ok = parse_json("1e308");
  ASSERT_TRUE(ok.is_ok()) << ok.status().to_string();
  EXPECT_DOUBLE_EQ(ok.value().number_value, 1e308);
}

TEST(JsonWriterDeathTest, RefusesNonFiniteDoubles) {
  // JSON has no inf/nan; silently clamping would launder a wrong number
  // into every downstream consumer, so the writer aborts instead.
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.begin_array();
        w.value_double(std::numeric_limits<double>::infinity());
      },
      "non-finite");
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.begin_array();
        w.value_double(std::nan(""));
      },
      "non-finite");
}

}  // namespace
}  // namespace lbsa::obs
