// The observability determinism contract (docs/observability.md): for a
// deterministic workload, every Stability::kStable metric total and every
// phase/task trace-event count is byte-identical across thread counts and
// engines. PR 1 made the parallel explorer's *graph* bit-identical to the
// serial one; this suite pins down that the instrumentation layered on top
// in this PR preserves that guarantee.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "modelcheck/corpus.h"
#include "modelcheck/explorer.h"
#include "modelcheck/fuzz.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lbsa::obs {
namespace {

struct RunObservation {
  std::string stable_metrics;   // MetricsSnapshot::stable_json()
  std::size_t phase_events = 0;  // one per BFS level / shrink round / ...
  std::size_t task_events = 0;   // one per explore()/fuzz run
};

// Runs `workload` with both sinks attached and global state freshly zeroed,
// then captures the comparison string and deterministic event counts.
template <typename Workload>
RunObservation observe(Workload workload) {
  Registry::global().reset_values();
  Tracer::global().reset();
  set_metrics_enabled(true);
  set_tracing_enabled(true);
  workload();
  set_metrics_enabled(false);
  set_tracing_enabled(false);
  RunObservation obs;
  obs.stable_metrics = Registry::global().snapshot().stable_json();
  obs.phase_events = Tracer::global().event_count(kCatPhase);
  obs.task_events = Tracer::global().event_count(kCatTask);
  return obs;
}

TEST(ObsDeterminism, ExplorerStableMetricsIdenticalAcrossThreadCounts) {
  auto task = modelcheck::make_named_task("dac3");
  ASSERT_TRUE(task.is_ok());
  modelcheck::Explorer explorer(task.value().protocol);

  RunObservation baseline;
  for (int threads : {1, 2, 8}) {
    const RunObservation obs = observe([&] {
      modelcheck::ExploreOptions options;
      options.threads = threads;
      auto graph = explorer.explore(options);
      ASSERT_TRUE(graph.is_ok()) << graph.status().to_string();
    });
    if (threads == 1) {
      baseline = obs;
      EXPECT_NE(obs.stable_metrics.find("explore.nodes"), std::string::npos);
      EXPECT_GT(obs.phase_events, 0u) << "one phase span per BFS level";
      EXPECT_EQ(obs.task_events, 1u) << "one task span per explore()";
    } else {
      EXPECT_EQ(obs.stable_metrics, baseline.stable_metrics)
          << "threads=" << threads;
      EXPECT_EQ(obs.phase_events, baseline.phase_events)
          << "threads=" << threads;
      EXPECT_EQ(obs.task_events, baseline.task_events)
          << "threads=" << threads;
    }
  }
}

TEST(ObsDeterminism, SerialAndParallelEnginesAgreeOnStableMetrics) {
  auto task = modelcheck::make_named_task("strawdac3");
  ASSERT_TRUE(task.is_ok());
  modelcheck::Explorer explorer(task.value().protocol);

  std::vector<RunObservation> runs;
  for (const auto engine : {modelcheck::ExploreEngine::kSerial,
                            modelcheck::ExploreEngine::kParallel}) {
    runs.push_back(observe([&] {
      modelcheck::ExploreOptions options;
      options.engine = engine;
      options.threads = engine == modelcheck::ExploreEngine::kParallel ? 4 : 1;
      auto graph = explorer.explore(options);
      ASSERT_TRUE(graph.is_ok()) << graph.status().to_string();
    }));
  }
  EXPECT_EQ(runs[0].stable_metrics, runs[1].stable_metrics);
  EXPECT_EQ(runs[0].phase_events, runs[1].phase_events);
  EXPECT_EQ(runs[0].task_events, runs[1].task_events);
}

TEST(ObsDeterminism, WorkStealingEngineAgreesOnStableMetrics) {
  // The work-stealing engine has no level barriers, so it emits no per-level
  // phase spans — phase-event counts are an engine property, not part of the
  // determinism contract. Stable metric totals and the one-task-span rule
  // still are: they derive from the canonical graph, which is bit-identical.
  auto task = modelcheck::make_named_task("strawdac3");
  ASSERT_TRUE(task.is_ok());
  modelcheck::Explorer explorer(task.value().protocol);

  const RunObservation serial = observe([&] {
    modelcheck::ExploreOptions options;
    options.engine = modelcheck::ExploreEngine::kSerial;
    auto graph = explorer.explore(options);
    ASSERT_TRUE(graph.is_ok()) << graph.status().to_string();
  });
  for (int threads : {1, 4}) {
    const RunObservation ws = observe([&] {
      modelcheck::ExploreOptions options;
      options.engine = modelcheck::ExploreEngine::kWorkStealing;
      options.threads = threads;
      auto graph = explorer.explore(options);
      ASSERT_TRUE(graph.is_ok()) << graph.status().to_string();
    });
    EXPECT_EQ(ws.stable_metrics, serial.stable_metrics)
        << "threads=" << threads;
    EXPECT_EQ(ws.task_events, serial.task_events) << "threads=" << threads;
  }
}

TEST(ObsDeterminism, BlindFuzzStableMetricsIdenticalAcrossThreadCounts) {
  auto task = modelcheck::make_named_task("strawdac3");
  ASSERT_TRUE(task.is_ok());

  RunObservation baseline;
  for (int threads : {1, 4}) {
    const RunObservation obs = observe([&] {
      modelcheck::FuzzOptions options;
      options.runs = 200;
      options.seed = 7;
      options.threads = threads;
      (void)modelcheck::fuzz_named_task(task.value(), options);
    });
    if (threads == 1) {
      baseline = obs;
      EXPECT_NE(obs.stable_metrics.find("fuzz.runs_executed"),
                std::string::npos);
    } else {
      // The report-derived counters (and the shrink instrumentation riding
      // on the deterministic findings) must match; live execution tallies
      // are volatile and deliberately excluded from this string.
      EXPECT_EQ(obs.stable_metrics, baseline.stable_metrics)
          << "threads=" << threads;
      EXPECT_EQ(obs.phase_events, baseline.phase_events)
          << "one shrink-round span per ddmin round, same findings";
      EXPECT_EQ(obs.task_events, baseline.task_events);
    }
  }
}

}  // namespace
}  // namespace lbsa::obs
