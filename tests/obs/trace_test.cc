#include "obs/trace.h"

#include <string>

#include "gtest/gtest.h"
#include "obs/json.h"

namespace lbsa::obs {
namespace {

// Tests mutate the global Tracer (Span always records there); each fixture
// run starts from a clean slate and restores the default-off switch.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().reset();
    set_tracing_enabled(false);
  }
  void TearDown() override {
    set_tracing_enabled(false);
    Tracer::global().reset();
  }
};

TEST_F(TraceTest, DisabledSpanRecordsNothing) {
  ASSERT_FALSE(tracing_enabled()) << "tracing must default to off";
  {
    Span span("quiet", kCatPhase, 0);
    span.arg("ignored", 1);
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST_F(TraceTest, SpanRecordsCompleteEventWithArgs) {
  set_tracing_enabled(true);
  {
    Span span("level", kCatPhase, 3);
    span.arg("depth", 7);
    EXPECT_TRUE(span.active());
  }
  const auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "level");
  EXPECT_EQ(events[0].cat, kCatPhase);
  EXPECT_EQ(events[0].lane, 3);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "depth");
  EXPECT_EQ(events[0].args[0].second, 7);
}

TEST_F(TraceTest, EventCountByCategory) {
  set_tracing_enabled(true);
  { Span a("a", kCatPhase, 0); }
  { Span b("b", kCatPhase, 0); }
  { Span c("c", kCatWorker, 1); }
  EXPECT_EQ(Tracer::global().event_count(), 3u);
  EXPECT_EQ(Tracer::global().event_count(kCatPhase), 2u);
  EXPECT_EQ(Tracer::global().event_count(kCatWorker), 1u);
  EXPECT_EQ(Tracer::global().event_count(kCatTask), 0u);
}

TEST_F(TraceTest, ChromeJsonParsesAndCarriesLaneNames) {
  set_tracing_enabled(true);
  Tracer::global().set_lane_name(0, "coordinator");
  { Span span("run", kCatTask, 0); }
  const std::string json = Tracer::global().to_chrome_json();

  auto parsed = parse_json(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const JsonValue& root = parsed.value();
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int complete = 0, metadata = 0;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string_value == "X") {
      ++complete;
      EXPECT_EQ(event.find("name")->string_value, "run");
      EXPECT_EQ(event.find("cat")->string_value, kCatTask);
    } else if (ph->string_value == "M") {
      ++metadata;
    }
  }
  EXPECT_EQ(complete, 1);
  EXPECT_EQ(metadata, 1) << "one thread_name metadata row per named lane";
}

TEST_F(TraceTest, ResetClearsEventsAndLaneNames) {
  set_tracing_enabled(true);
  Tracer::global().set_lane_name(1, "worker 1");
  { Span span("x", kCatPhase, 1); }
  Tracer::global().reset();
  EXPECT_EQ(Tracer::global().event_count(), 0u);
  EXPECT_EQ(Tracer::global().to_chrome_json().find("worker 1"),
            std::string::npos);
}

}  // namespace
}  // namespace lbsa::obs
