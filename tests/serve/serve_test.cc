// Agreement-as-a-service contract (src/serve, docs/serving.md): the wire
// protocol is strict in both directions, and CheckService multiplexes
// concurrent check/explore/fuzz requests onto a shared pool such that
//   * N concurrent clients asking for the same task get byte-identical
//     RunReports (the determinism contract end to end),
//   * a cache hit replays the fresh run's bytes exactly (cached=true is the
//     only difference),
//   * per-request cancel and deadline interrupt THEIR request (exit 4,
//     resumable) without disturbing a neighbor on the same pool,
//   * heartbeat streams per request validate and stay separated by the
//     request-id nonce,
//   * shutdown fails queued-not-started requests instead of dropping them.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "obs/heartbeat.h"
#include "obs/json.h"
#include "obs/report.h"
#include "serve/protocol.h"

namespace lbsa::serve {
namespace {

using obs::parse_json;

// Thread-safe response collector: one per test, shared by every request's
// sink. Final lines (report/error) complete a request; heartbeats stack.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ServeResponse> finals;
  std::vector<ServeResponse> heartbeats;

  CheckService::ResponseSink sink() {
    return [this](std::string_view line) {
      auto parsed = parse_response(line);
      ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string() << "\n"
                                  << line;
      std::lock_guard<std::mutex> lock(mu);
      if (parsed.value().type == "heartbeat") {
        heartbeats.push_back(std::move(parsed).value());
      } else {
        finals.push_back(std::move(parsed).value());
        cv.notify_all();
      }
    };
  }

  // Blocks until `n` requests have their final line. Generous bound; a hang
  // here means the service lost a request.
  std::vector<ServeResponse> wait_finals(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    EXPECT_TRUE(cv.wait_for(lock, std::chrono::minutes(5),
                            [&] { return finals.size() >= n; }))
        << "only " << finals.size() << "/" << n << " requests answered";
    return finals;
  }

  const ServeResponse* final_for(const std::vector<ServeResponse>& all,
                                 const std::string& id) {
    for (const ServeResponse& r : all) {
      if (r.request_id == id) return &r;
    }
    return nullptr;
  }
};

ServeRequest check_request(const std::string& id, const std::string& task) {
  ServeRequest r;
  r.op = "check";
  r.id = id;
  r.task = task;
  return r;
}

TEST(Protocol, ParsesFullRequestAndAppliesDefaults) {
  auto parsed = parse_request(
      R"({"serve_version":1,"op":"explore","id":"r1","task":"dac4-sym",)"
      R"("deadline_ms":5000,"heartbeat_ms":100,"threads":4,)"
      R"("engine":"parallel","reduction":"symmetry","max_nodes":100000,)"
      R"("max_levels":3,"allow_truncation":true})");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const ServeRequest& r = parsed.value();
  EXPECT_EQ(r.op, "explore");
  EXPECT_EQ(r.id, "r1");
  EXPECT_EQ(r.task, "dac4-sym");
  EXPECT_EQ(r.deadline_ms, 5000u);
  EXPECT_EQ(r.heartbeat_ms, 100u);
  EXPECT_EQ(r.threads, 4);
  EXPECT_EQ(r.engine, "parallel");
  EXPECT_EQ(r.reduction, "symmetry");
  EXPECT_EQ(r.max_nodes, 100000u);
  EXPECT_EQ(r.max_levels, 3u);
  EXPECT_TRUE(r.allow_truncation);

  auto minimal = parse_request(
      R"({"serve_version":1,"op":"check","id":"r2","task":"dac3"})");
  ASSERT_TRUE(minimal.is_ok()) << minimal.status().to_string();
  EXPECT_EQ(minimal.value().threads, 1) << "server default is single-thread";
  EXPECT_EQ(minimal.value().engine, "auto");
  EXPECT_EQ(minimal.value().max_nodes, 0u) << "0 = engine default budget";
  EXPECT_EQ(minimal.value().deadline_ms, 0u) << "0 = no deadline";
}

TEST(Protocol, RejectsMalformedAndMisdirectedRequests) {
  const char* bad[] = {
      // not JSON at all
      "hello",
      // missing serve_version
      R"({"op":"check","id":"x","task":"dac3"})",
      // wrong serve_version
      R"({"serve_version":2,"op":"check","id":"x","task":"dac3"})",
      // unknown op
      R"({"serve_version":1,"op":"verify","id":"x","task":"dac3"})",
      // missing id
      R"({"serve_version":1,"op":"check","task":"dac3"})",
      // missing task on a workload op
      R"({"serve_version":1,"op":"explore","id":"x"})",
      // cancel without target
      R"({"serve_version":1,"op":"cancel","id":"x"})",
      // unknown field: typos must not silently fall back to defaults
      R"({"serve_version":1,"op":"check","id":"x","task":"dac3","thread":2})",
      // op-inapplicable knob: max_levels is explore-only
      R"({"serve_version":1,"op":"check","id":"x","task":"dac3",)"
      R"("max_levels":2})",
      // op-inapplicable knob: fuzz knob on explore
      R"({"serve_version":1,"op":"explore","id":"x","task":"dac3",)"
      R"("runs":50})",
      // wrong type
      R"({"serve_version":1,"op":"check","id":"x","task":"dac3",)"
      R"("threads":"two"})",
  };
  for (const char* line : bad) {
    SCOPED_TRACE(line);
    auto parsed = parse_request(line);
    EXPECT_FALSE(parsed.is_ok());
    if (!parsed.is_ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(Protocol, ResponseBuildersRoundTripExactBytes) {
  // Payload bytes with JSON-hostile characters must survive the
  // escape/unescape round trip exactly — clients digest-compare them.
  const std::string payload =
      R"({"seq":0,"run_id":"abc","note":"quote \" backslash \\ tab \t"})";

  auto hb = parse_response(heartbeat_response("r1", payload));
  ASSERT_TRUE(hb.is_ok()) << hb.status().to_string();
  EXPECT_EQ(hb.value().type, "heartbeat");
  EXPECT_EQ(hb.value().request_id, "r1");
  EXPECT_EQ(hb.value().data, payload);

  auto rep = parse_response(report_response("r2", 4, true, "human text",
                                            payload));
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  EXPECT_EQ(rep.value().type, "report");
  EXPECT_EQ(rep.value().exit_code, 4);
  EXPECT_TRUE(rep.value().cached);
  EXPECT_EQ(rep.value().human, "human text");
  EXPECT_EQ(rep.value().data, payload);

  auto err = parse_response(
      error_response("r3", invalid_argument("bad knob: max_levels")));
  ASSERT_TRUE(err.is_ok()) << err.status().to_string();
  EXPECT_EQ(err.value().type, "error");
  EXPECT_EQ(err.value().status_code, "INVALID_ARGUMENT");
  EXPECT_NE(err.value().message.find("max_levels"), std::string::npos);

  auto ack = parse_response(cancel_ack_response("r4", "victim", true));
  ASSERT_TRUE(ack.is_ok()) << ack.status().to_string();
  EXPECT_EQ(ack.value().type, "cancel_ack");
  EXPECT_EQ(ack.value().target, "victim");
  EXPECT_TRUE(ack.value().found);

  auto st = parse_response(status_response("r5", R"({"requests_total":3})"));
  ASSERT_TRUE(st.is_ok()) << st.status().to_string();
  EXPECT_EQ(st.value().type, "status");
  EXPECT_EQ(st.value().data, R"({"requests_total":3})");
}

TEST(Service, ConcurrentIdenticalRequestsAnswerByteIdentical) {
  ServiceOptions options;
  options.workers = 4;
  options.cache_capacity = 0;  // every request computes — no cache assists
  CheckService service(options);
  Collector collector;

  constexpr int kClients = 8;
  for (int i = 0; i < kClients; ++i) {
    service.submit(check_request("client-" + std::to_string(i), "dac3-sym"),
                   collector.sink());
  }
  const auto finals = collector.wait_finals(kClients);
  ASSERT_EQ(finals.size(), static_cast<std::size_t>(kClients));

  const ServeResponse& golden = finals[0];
  EXPECT_EQ(golden.type, "report");
  EXPECT_EQ(golden.exit_code, 0);
  const Status valid = obs::validate_run_report_json(golden.data);
  EXPECT_TRUE(valid.is_ok()) << valid.to_string();
  for (const ServeResponse& r : finals) {
    SCOPED_TRACE(r.request_id);
    EXPECT_EQ(r.type, "report");
    EXPECT_EQ(r.exit_code, golden.exit_code);
    EXPECT_FALSE(r.cached);
    EXPECT_EQ(r.human, golden.human) << "human summaries must not diverge";
    EXPECT_EQ(r.data, golden.data) << "RunReport bytes must not diverge";
  }
}

TEST(Service, CacheHitReplaysFreshBytesExactly) {
  ServiceOptions options;
  options.workers = 1;
  CheckService service(options);
  Collector collector;

  service.submit(check_request("fresh", "dac3"), collector.sink());
  collector.wait_finals(1);
  service.submit(check_request("replay", "dac3"), collector.sink());
  const auto finals = collector.wait_finals(2);

  const ServeResponse* fresh = collector.final_for(finals, "fresh");
  const ServeResponse* replay = collector.final_for(finals, "replay");
  ASSERT_NE(fresh, nullptr);
  ASSERT_NE(replay, nullptr);
  EXPECT_EQ(fresh->type, "report");
  EXPECT_FALSE(fresh->cached);
  EXPECT_TRUE(replay->cached) << "identical request must hit the cache";
  EXPECT_EQ(replay->exit_code, fresh->exit_code);
  EXPECT_EQ(replay->human, fresh->human);
  EXPECT_EQ(replay->data, fresh->data) << "cache hit must be byte-identical";

  // A different shape (another reduction) is a different cache key.
  ServeRequest other = check_request("other", "dac3");
  other.reduction = "symmetry";
  service.submit(std::move(other), collector.sink());
  const auto all = collector.wait_finals(3);
  const ServeResponse* third = collector.final_for(all, "other");
  ASSERT_NE(third, nullptr);
  EXPECT_FALSE(third->cached);

  auto stats = parse_json(service.stats_json());
  ASSERT_TRUE(stats.is_ok()) << service.stats_json();
  const auto* cache = stats.value().find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("hits")->int_value, 1);
  EXPECT_EQ(cache->find("misses")->int_value, 2);
}

TEST(Service, CancelInterruptsTargetWithoutDisturbingNeighbor) {
  ServiceOptions options;
  options.workers = 2;
  CheckService service(options);
  Collector victim_side;
  Collector neighbor_side;

  // The victim: a long exhaustive exploration, streaming heartbeats so the
  // test knows when it is genuinely in flight.
  ServeRequest victim;
  victim.op = "explore";
  victim.id = "victim";
  victim.task = "dac5";
  victim.engine = "serial";
  victim.heartbeat_ms = 1;
  service.submit(std::move(victim), victim_side.sink());

  // Wait for the first heartbeat — proof the workload started.
  {
    std::unique_lock<std::mutex> lock(victim_side.mu);
    // Heartbeats don't signal the cv; poll under the lock.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(5);
    while (victim_side.heartbeats.empty() && victim_side.finals.empty()) {
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      lock.lock();
    }
    ASSERT_TRUE(victim_side.finals.empty())
        << "victim finished before the test could cancel it";
  }

  // The neighbor shares the pool and must be untouched by the cancel.
  service.submit(check_request("neighbor", "dac3-sym"),
                 neighbor_side.sink());

  ServeRequest cancel;
  cancel.op = "cancel";
  cancel.id = "canceller";
  cancel.target = "victim";
  Collector cancel_side;
  service.submit(std::move(cancel), cancel_side.sink());
  const auto acks = cancel_side.wait_finals(1);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].type, "cancel_ack");
  EXPECT_TRUE(acks[0].found) << "victim was active; cancel must find it";

  const auto victim_finals = victim_side.wait_finals(1);
  ASSERT_EQ(victim_finals.size(), 1u);
  EXPECT_EQ(victim_finals[0].type, "report");
  EXPECT_EQ(victim_finals[0].exit_code, 4)
      << "cancelled run reports interrupted-resumable, not success";
  const Status valid = obs::validate_run_report_json(victim_finals[0].data);
  EXPECT_TRUE(valid.is_ok()) << valid.to_string();

  // The victim's heartbeat stream validates on its own: per-request run_id
  // (the id nonce) kept it separate from every other stream.
  std::string stream;
  {
    std::lock_guard<std::mutex> lock(victim_side.mu);
    for (const ServeResponse& hb : victim_side.heartbeats) {
      ASSERT_EQ(hb.request_id, "victim");
      stream += hb.data;
      stream += '\n';
    }
  }
  const Status hb_valid = obs::validate_heartbeat_stream(stream);
  EXPECT_TRUE(hb_valid.is_ok()) << hb_valid.to_string();

  const auto neighbor_finals = neighbor_side.wait_finals(1);
  ASSERT_EQ(neighbor_finals.size(), 1u);
  EXPECT_EQ(neighbor_finals[0].type, "report");
  EXPECT_EQ(neighbor_finals[0].exit_code, 0)
      << "neighbor must complete unaffected by the cancel";
}

TEST(Service, DeadlineBoundsARequest) {
  ServiceOptions options;
  options.workers = 1;
  CheckService service(options);
  Collector collector;

  ServeRequest slow;
  slow.op = "explore";
  slow.id = "slow";
  slow.task = "dac5";
  slow.engine = "serial";
  slow.deadline_ms = 1;  // expires almost immediately after dequeue
  service.submit(std::move(slow), collector.sink());

  const auto finals = collector.wait_finals(1);
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_EQ(finals[0].type, "report");
  EXPECT_EQ(finals[0].exit_code, 4)
      << "deadline expiry is interrupted-resumable";
  const Status valid = obs::validate_run_report_json(finals[0].data);
  EXPECT_TRUE(valid.is_ok()) << valid.to_string();

  // The pool is healthy afterwards: a fresh request completes.
  service.submit(check_request("after", "dac3"), collector.sink());
  const auto all = collector.wait_finals(2);
  const ServeResponse* after = collector.final_for(all, "after");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->exit_code, 0);
}

TEST(Service, RejectsBadWorkloadsWithTypedErrors) {
  ServiceOptions options;
  options.workers = 1;
  CheckService service(options);
  Collector collector;

  // Unknown task.
  service.submit(check_request("no-such", "not-a-task"), collector.sink());
  // Blind fuzz with a checkpoint_path: the lifecycle-knob validation
  // (validate_fuzz_options) must surface INVALID_ARGUMENT naming the knob
  // instead of silently ignoring it.
  ServeRequest blind;
  blind.op = "fuzz";
  blind.id = "blind-ckpt";
  blind.task = "dac3";
  blind.coverage = false;
  blind.checkpoint_path = "/tmp/should-not-exist.ckpt";
  service.submit(std::move(blind), collector.sink());

  const auto finals = collector.wait_finals(2);
  const ServeResponse* unknown = collector.final_for(finals, "no-such");
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(unknown->type, "error");
  const ServeResponse* ckpt = collector.final_for(finals, "blind-ckpt");
  ASSERT_NE(ckpt, nullptr);
  EXPECT_EQ(ckpt->type, "error");
  EXPECT_EQ(ckpt->status_code, "INVALID_ARGUMENT");
  EXPECT_NE(ckpt->message.find("checkpoint_path"), std::string::npos)
      << ckpt->message;
}

TEST(Service, StatusOpAndStatsShape) {
  ServiceOptions options;
  options.workers = 1;
  CheckService service(options);
  Collector collector;

  service.submit(check_request("warm", "dac3"), collector.sink());
  collector.wait_finals(1);

  ServeRequest status;
  status.op = "status";
  status.id = "stat";
  service.submit(std::move(status), collector.sink());
  const auto finals = collector.wait_finals(2);
  const ServeResponse* stat = collector.final_for(finals, "stat");
  ASSERT_NE(stat, nullptr);
  ASSERT_EQ(stat->type, "status");

  auto parsed = parse_json(stat->data);
  ASSERT_TRUE(parsed.is_ok()) << stat->data;
  const auto& stats = parsed.value();
  EXPECT_EQ(stats.find("requests_total")->int_value, 2);
  ASSERT_NE(stats.find("by_op"), nullptr);
  EXPECT_EQ(stats.find("by_op")->find("check")->int_value, 1);
  ASSERT_NE(stats.find("cache"), nullptr);
  ASSERT_NE(stats.find("latency_us"), nullptr);
  EXPECT_EQ(stats.find("latency_us")->find("count")->int_value, 1);
  EXPECT_GE(stats.find("latency_us")->find("p99")->int_value,
            stats.find("latency_us")->find("p50")->int_value);
}

TEST(Service, ShutdownFailsQueuedRequestsAndAnswersInFlight) {
  ServiceOptions options;
  options.workers = 1;  // one in flight, the rest queued
  auto service = std::make_unique<CheckService>(options);
  Collector collector;

  ServeRequest slow;
  slow.op = "explore";
  slow.id = "in-flight";
  slow.task = "dac5";
  slow.engine = "serial";
  slow.heartbeat_ms = 1;
  service->submit(std::move(slow), collector.sink());
  // Wait until it is genuinely running so the queued ones stay queued.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(5);
    while (true) {
      {
        std::lock_guard<std::mutex> lock(collector.mu);
        if (!collector.heartbeats.empty()) break;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  service->submit(check_request("queued-1", "dac3"), collector.sink());
  service->submit(check_request("queued-2", "dac4-sym"), collector.sink());

  service->shutdown();
  const auto finals = collector.wait_finals(3);
  ASSERT_EQ(finals.size(), 3u);

  const ServeResponse* in_flight = collector.final_for(finals, "in-flight");
  ASSERT_NE(in_flight, nullptr);
  EXPECT_EQ(in_flight->type, "report")
      << "in-flight work is answered, not dropped";
  for (const char* id : {"queued-1", "queued-2"}) {
    const ServeResponse* r = collector.final_for(finals, id);
    ASSERT_NE(r, nullptr) << id;
    EXPECT_EQ(r->type, "error") << id;
    EXPECT_EQ(r->status_code, "FAILED_PRECONDITION") << id;
  }
  service.reset();  // double-shutdown via the destructor is fine
}

}  // namespace
}  // namespace lbsa::serve
