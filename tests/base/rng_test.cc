#include "base/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace lbsa {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowOneAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(2024);
  std::array<int, 8> buckets{};
  constexpr int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.next_below(8)];
  for (int count : buckets) {
    EXPECT_GT(count, kDraws / 8 - 800);
    EXPECT_LT(count, kDraws / 8 + 800);
  }
}

TEST(Xoshiro256, NextInRangeInclusive) {
  Xoshiro256 rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.next_in_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values show up
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, NextBoolExtremes) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Xoshiro256, WorksWithStdShuffleInterface) {
  Xoshiro256 rng(8);
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace lbsa
