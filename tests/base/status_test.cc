#include "base/status.h"

#include <gtest/gtest.h>

// GCC 12 emits a spurious -Wmaybe-uninitialized for std::variant's string
// alternative when StatusOr<int> is constructed from a value at -O2 (the
// destructor of the never-active Status alternative is analyzed as
// reachable). Known false positive; scoped to this test file.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace lbsa {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = invalid_argument("bad label");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad label");
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad label");
}

TEST(Status, AllFactoryCodes) {
  EXPECT_EQ(failed_precondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(out_of_range("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(resource_exhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(internal_error("x").code(), StatusCode::kInternal);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().is_ok());
}

TEST(StatusOr, HoldsStatus) {
  StatusOr<int> v = not_found("missing");
  EXPECT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.is_ok());
  const std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

}  // namespace
}  // namespace lbsa
