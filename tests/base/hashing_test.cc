#include "base/hashing.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace lbsa {
namespace {

TEST(Hashing, Mix64IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Hashing, HashWordsDistinguishesLengths) {
  const std::vector<std::int64_t> a{1, 2, 3};
  const std::vector<std::int64_t> b{1, 2, 3, 0};
  EXPECT_NE(hash_words(a), hash_words(b));
}

TEST(Hashing, HashWordsDistinguishesOrder) {
  const std::vector<std::int64_t> a{1, 2};
  const std::vector<std::int64_t> b{2, 1};
  EXPECT_NE(hash_words(a), hash_words(b));
}

TEST(Hashing, EmptySpanHashes) {
  const std::vector<std::int64_t> empty;
  EXPECT_EQ(hash_words(empty), hash_words(empty));
}

TEST(Hashing, LowCollisionOnDenseInputs) {
  // Neighbouring state vectors (the common case in model checking) must not
  // collide: sweep a small grid and count distinct hashes.
  std::set<std::uint64_t> hashes;
  int total = 0;
  for (std::int64_t a = -8; a <= 8; ++a) {
    for (std::int64_t b = -8; b <= 8; ++b) {
      for (std::int64_t c = -8; c <= 8; ++c) {
        const std::vector<std::int64_t> v{a, b, c};
        hashes.insert(hash_words(v));
        ++total;
      }
    }
  }
  EXPECT_EQ(static_cast<int>(hashes.size()), total);
}

}  // namespace
}  // namespace lbsa
