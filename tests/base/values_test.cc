#include "base/values.h"

#include <gtest/gtest.h>

namespace lbsa {
namespace {

TEST(Values, SentinelsAreNotOrdinary) {
  EXPECT_FALSE(is_ordinary(kNil));
  EXPECT_FALSE(is_ordinary(kBottom));
  EXPECT_FALSE(is_ordinary(kDone));
  EXPECT_FALSE(is_ordinary(kAbortSentinel));
  EXPECT_FALSE(is_ordinary(kCrashSentinel));
}

TEST(Values, OrdinaryRangeCoversUsefulValues) {
  EXPECT_TRUE(is_ordinary(0));
  EXPECT_TRUE(is_ordinary(1));
  EXPECT_TRUE(is_ordinary(-1));
  EXPECT_TRUE(is_ordinary(kMinOrdinary));
  EXPECT_FALSE(is_ordinary(kMinOrdinary - 1));
}

TEST(Values, SentinelsAreDistinct) {
  EXPECT_NE(kNil, kBottom);
  EXPECT_NE(kNil, kDone);
  EXPECT_NE(kBottom, kDone);
}

TEST(Values, ToStringRendersSentinels) {
  EXPECT_EQ(value_to_string(kNil), "NIL");
  EXPECT_EQ(value_to_string(kBottom), "⊥");
  EXPECT_EQ(value_to_string(kDone), "done");
  EXPECT_EQ(value_to_string(42), "42");
  EXPECT_EQ(value_to_string(-7), "-7");
}

}  // namespace
}  // namespace lbsa
