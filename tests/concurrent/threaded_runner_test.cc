// Real-thread protocol execution: Algorithm 2 and the one-shot protocols on
// OS scheduling (the large-n half of experiment E2).
#include "concurrent/threaded_runner.h"

#include <gtest/gtest.h>

#include <memory>

#include "concurrent/cas_consensus.h"
#include "concurrent/spec_backed.h"
#include "protocols/dac_from_pac.h"
#include "protocols/group_ksa.h"
#include "protocols/one_shot.h"
#include "spec/pac_type.h"

namespace lbsa::concurrent {
namespace {

using protocols::DacFromPacProtocol;
using protocols::GroupKsaProtocol;
using protocols::make_consensus_via_n_consensus;

std::vector<Value> iota_inputs(int n) {
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
  return inputs;
}

TEST(ThreadedRunner, OneShotConsensusAgrees) {
  for (int n : {2, 4, 8}) {
    auto protocol = make_consensus_via_n_consensus(iota_inputs(n));
    CasConsensus cons(n);
    const auto result = run_threaded(*protocol, {&cons});
    ASSERT_TRUE(result.all_terminated());
    const auto decisions = result.distinct_decisions();
    ASSERT_EQ(decisions.size(), 1u) << "n=" << n;
    EXPECT_GE(decisions[0], 100);
    EXPECT_LT(decisions[0], 100 + n);
  }
}

TEST(ThreadedRunner, DacFromPacSafetyAcrossRuns) {
  // Theorem 4.1 on hardware: 50 runs with up to 8 threads; every run must
  // satisfy the n-DAC safety properties. (Termination is not guaranteed
  // under arbitrary schedules — the step cap marks livelocked processes
  // crashed, and we assert safety only, as the task demands.)
  for (int run = 0; run < 50; ++run) {
    const int n = 2 + run % 7;
    const auto inputs = iota_inputs(n);
    auto protocol = std::make_shared<DacFromPacProtocol>(inputs);
    SpinlockSpecObject pac(std::make_shared<spec::PacType>(n));
    const auto result =
        run_threaded(*protocol, {&pac}, {.max_steps_per_process = 200'000});
    const auto decisions = result.distinct_decisions();
    ASSERT_LE(decisions.size(), 1u) << "agreement, run " << run;
    for (int pid = 1; pid < n; ++pid) {
      ASSERT_FALSE(result.final_states[static_cast<size_t>(pid)].aborted())
          << "only p may abort, run " << run;
    }
    if (!decisions.empty()) {
      bool valid = false;
      for (int pid = 0; pid < n; ++pid) {
        if (inputs[static_cast<size_t>(pid)] == decisions[0] &&
            !result.final_states[static_cast<size_t>(pid)].aborted()) {
          valid = true;
        }
      }
      ASSERT_TRUE(valid) << "validity, run " << run;
    }
  }
}

TEST(ThreadedRunner, GroupKsaBoundsDecisions) {
  for (int run = 0; run < 20; ++run) {
    const int k = 2, m = 4;
    const auto inputs = iota_inputs(k * m);
    auto protocol = std::make_shared<GroupKsaProtocol>(k, m, inputs);
    CasConsensus g0(m), g1(m);
    const auto result = run_threaded(*protocol, {&g0, &g1});
    ASSERT_TRUE(result.all_terminated());
    EXPECT_LE(result.distinct_decisions().size(), static_cast<size_t>(k));
  }
}

TEST(ThreadedRunner, StepCapMarksLivelockedProcesses) {
  // A 2-thread DAC under a tiny step cap may fail to terminate; the runner
  // must mark such processes crashed instead of hanging.
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20});
  SpinlockSpecObject pac(std::make_shared<spec::PacType>(2));
  const auto result =
      run_threaded(*protocol, {&pac}, {.max_steps_per_process = 4});
  for (const auto& ps : result.final_states) {
    EXPECT_FALSE(ps.running());
  }
}

}  // namespace
}  // namespace lbsa::concurrent
