// Lock-free classic objects: sequential semantics plus lincheck-validated
// concurrent rounds, plus the canonical use: consensus on real threads.
#include "concurrent/classic_objects.h"

#include <gtest/gtest.h>

#include <thread>

#include "concurrent/atomic_register.h"
#include "concurrent/recording.h"
#include "concurrent/threaded_runner.h"
#include "lincheck/checker.h"
#include "protocols/classic_consensus.h"

namespace lbsa::concurrent {
namespace {

TEST(AtomicTestAndSet, FirstWinsSequentially) {
  AtomicTestAndSet tas;
  EXPECT_EQ(tas.apply(spec::make_test_and_set()), 0);
  EXPECT_EQ(tas.apply(spec::make_test_and_set()), 1);
  EXPECT_EQ(tas.apply(spec::make_test_and_set()), 1);
}

TEST(AtomicTestAndSet, ExactlyOneWinnerUnderContention) {
  for (int round = 0; round < 50; ++round) {
    AtomicTestAndSet tas;
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&tas, &winners] {
        if (tas.test_and_set() == 0) winners.fetch_add(1);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(winners.load(), 1) << "round " << round;
  }
}

TEST(AtomicCompareAndSwap, MatchesSpecSequentially) {
  AtomicCompareAndSwap cas;
  EXPECT_EQ(cas.compare_and_swap(kNil, 7), kNil);  // won
  EXPECT_EQ(cas.read(), 7);
  EXPECT_EQ(cas.compare_and_swap(kNil, 9), 7);  // lost
  EXPECT_EQ(cas.read(), 7);
  EXPECT_EQ(cas.compare_and_swap(7, 9), 7);  // chained success
  EXPECT_EQ(cas.read(), 9);
}

TEST(AtomicCompareAndSwap, ExactlyOneInstallerUnderContention) {
  for (int round = 0; round < 50; ++round) {
    AtomicCompareAndSwap cas;
    std::atomic<int> installers{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&cas, &installers, t] {
        if (cas.compare_and_swap(kNil, 100 + t) == kNil) {
          installers.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(installers.load(), 1) << "round " << round;
  }
}

TEST(AtomicTestAndSet, HistoriesLinearize) {
  for (int round = 0; round < 30; ++round) {
    AtomicTestAndSet tas;
    lincheck::HistoryLog log;
    RecordingObject recorder(&tas, &log);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&recorder, t] {
        for (int i = 0; i < 3; ++i) {
          recorder.apply_as(t, spec::make_test_and_set());
        }
      });
    }
    for (auto& t : threads) t.join();
    auto result = lincheck::check_linearizable(tas.type(), log.snapshot());
    ASSERT_TRUE(result.is_ok());
    ASSERT_TRUE(result.value().linearizable) << result.value().detail;
  }
}

TEST(AtomicCompareAndSwap, HistoriesLinearize) {
  for (int round = 0; round < 30; ++round) {
    AtomicCompareAndSwap cas;
    lincheck::HistoryLog log;
    RecordingObject recorder(&cas, &log);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&recorder, t] {
        recorder.apply_as(t, spec::make_compare_and_swap(kNil, 100 + t));
        recorder.apply_as(t, spec::make_read());
        recorder.apply_as(t,
                          spec::make_compare_and_swap(100 + t, 200 + t));
      });
    }
    for (auto& t : threads) t.join();
    auto result = lincheck::check_linearizable(cas.type(), log.snapshot());
    ASSERT_TRUE(result.is_ok());
    ASSERT_TRUE(result.value().linearizable) << result.value().detail;
  }
}

TEST(ClassicThreaded, CasConsensusOnRealThreads) {
  for (int n : {2, 4, 8}) {
    std::vector<Value> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
    auto protocol =
        std::make_shared<protocols::CasConsensusProtocol>(inputs);
    AtomicCompareAndSwap cas;
    const auto result = run_threaded(*protocol, {&cas});
    ASSERT_TRUE(result.all_terminated());
    EXPECT_EQ(result.distinct_decisions().size(), 1u) << "n=" << n;
  }
}

TEST(ClassicThreaded, TasConsensusOnRealThreads) {
  for (int round = 0; round < 30; ++round) {
    const std::vector<Value> inputs{100, 101};
    auto protocol =
        std::make_shared<protocols::TasConsensusProtocol>(inputs);
    AtomicRegister r0, r1;
    AtomicTestAndSet tas;
    const auto result = run_threaded(*protocol, {&r0, &r1, &tas});
    ASSERT_TRUE(result.all_terminated());
    const auto decisions = result.distinct_decisions();
    ASSERT_EQ(decisions.size(), 1u) << "round " << round;
    EXPECT_TRUE(decisions[0] == 100 || decisions[0] == 101);
  }
}

}  // namespace
}  // namespace lbsa::concurrent
