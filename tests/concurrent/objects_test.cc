// Single-threaded semantics tests for the concurrent objects (they must
// match their sequential specs exactly), plus packed-representation edge
// cases.
#include <gtest/gtest.h>

#include "concurrent/atomic_register.h"
#include "concurrent/atomic_two_sa.h"
#include "concurrent/cas_consensus.h"
#include "concurrent/spec_backed.h"
#include "spec/nm_pac_type.h"
#include "spec/pac_type.h"

namespace lbsa::concurrent {
namespace {

TEST(AtomicRegister, ReadWriteSemantics) {
  AtomicRegister reg;
  EXPECT_EQ(reg.apply(spec::make_read()), kNil);
  EXPECT_EQ(reg.apply(spec::make_write(7)), kDone);
  EXPECT_EQ(reg.apply(spec::make_read()), 7);
  EXPECT_EQ(reg.type().name(), "register");
}

TEST(CasConsensus, MatchesSpecSequentially) {
  CasConsensus cons(2);
  EXPECT_EQ(cons.propose(10), 10);
  EXPECT_EQ(cons.propose(20), 10);
  EXPECT_EQ(cons.propose(30), kBottom);
  EXPECT_EQ(cons.type().name(), "2-consensus");
}

TEST(CasConsensus, NegativeValuesSurvivePacking) {
  CasConsensus cons(3);
  EXPECT_EQ(cons.propose(-12345), -12345);
  EXPECT_EQ(cons.propose(99), -12345);
}

TEST(CasConsensus, PackedRangeBoundaries) {
  CasConsensus a(2);
  EXPECT_EQ(a.propose(CasConsensus::kMaxValue), CasConsensus::kMaxValue);
  CasConsensus b(2);
  EXPECT_EQ(b.propose(CasConsensus::kMinValue), CasConsensus::kMinValue);
  EXPECT_EQ(b.propose(0), CasConsensus::kMinValue);
}

TEST(AtomicTwoSa, FirstProposeGetsItself) {
  AtomicTwoSa sa;
  EXPECT_EQ(sa.propose(10), 10);
}

TEST(AtomicTwoSa, ResponsesStayInFirstTwoValues) {
  AtomicTwoSa sa;
  sa.propose(10);
  sa.propose(20);
  for (int i = 0; i < 100; ++i) {
    const Value r = sa.propose(30 + i);
    EXPECT_TRUE(r == 10 || r == 20) << r;
  }
}

TEST(AtomicTwoSa, SelectionPoliciesArePinned) {
  AtomicTwoSa first(spec::kUnboundedPorts, TwoSaSelection::kFirst);
  first.propose(10);
  first.propose(20);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(first.propose(99), 10);

  AtomicTwoSa second(spec::kUnboundedPorts, TwoSaSelection::kSecond);
  second.propose(10);
  second.propose(20);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(second.propose(99), 20);
}

TEST(AtomicTwoSa, MixedSelectionReturnsBothEventually) {
  AtomicTwoSa sa(spec::kUnboundedPorts, TwoSaSelection::kMixed);
  sa.propose(10);
  sa.propose(20);
  bool saw10 = false, saw20 = false;
  for (int i = 0; i < 200 && !(saw10 && saw20); ++i) {
    const Value r = sa.propose(99);
    saw10 |= (r == 10);
    saw20 |= (r == 20);
  }
  EXPECT_TRUE(saw10);
  EXPECT_TRUE(saw20);
}

TEST(AtomicTwoSa, PortBoundEnforced) {
  AtomicTwoSa sa(2, TwoSaSelection::kFirst);
  EXPECT_EQ(sa.propose(10), 10);
  EXPECT_NE(sa.propose(20), kBottom);
  EXPECT_EQ(sa.propose(30), kBottom);
}

TEST(AtomicTwoSa, DuplicateProposalKeepsSetSmall) {
  AtomicTwoSa sa(spec::kUnboundedPorts, TwoSaSelection::kSecond);
  sa.propose(10);
  sa.propose(10);
  sa.propose(20);
  // STATE = {10, 20}: "second" slot is 20, not a duplicate of 10.
  EXPECT_EQ(sa.propose(10), 20);
}

TEST(SpinlockSpecObject, RealizesPacSpec) {
  SpinlockSpecObject pac(std::make_shared<spec::PacType>(2));
  EXPECT_EQ(pac.apply(spec::make_propose_labeled(10, 1)), kDone);
  EXPECT_EQ(pac.apply(spec::make_decide_labeled(1)), 10);
  EXPECT_EQ(pac.apply(spec::make_propose_labeled(20, 2)), kDone);
  EXPECT_EQ(pac.apply(spec::make_decide_labeled(2)), 10);
  const auto state = pac.state_snapshot();
  EXPECT_FALSE(spec::PacType::upset(state));
}

TEST(SpinlockSpecObject, RealizesNmPacSpec) {
  SpinlockSpecObject o_n(std::make_shared<spec::NmPacType>(3, 2));
  EXPECT_EQ(o_n.apply(spec::make_propose_c(5)), 5);
  EXPECT_EQ(o_n.apply(spec::make_propose_p(7, 3)), kDone);
  EXPECT_EQ(o_n.apply(spec::make_decide_p(3)), 7);
}

TEST(SpinlockSpecObject, SeededRandomPolicyIsDeterministic) {
  auto make = [] {
    auto sa = std::make_shared<spec::KsaType>(spec::make_two_sa_type());
    return std::make_unique<SpinlockSpecObject>(sa, OutcomePolicy::kSeededRandom,
                                                /*seed=*/77);
  };
  auto a = make();
  auto b = make();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a->apply(spec::make_propose(i % 3)),
              b->apply(spec::make_propose(i % 3)));
  }
}

}  // namespace
}  // namespace lbsa::concurrent
