// Cross-realm validation: hammer the lock-free objects from real threads,
// record histories, and check every round against the sequential
// specification with the Wing-Gong checker. This is the evidence that the
// concurrent realm implements exactly the objects the paper reasons about.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "concurrent/atomic_register.h"
#include "concurrent/atomic_two_sa.h"
#include "concurrent/cas_consensus.h"
#include "concurrent/recording.h"
#include "concurrent/spec_backed.h"
#include "lincheck/checker.h"
#include "protocols/mutants.h"
#include "spec/nm_pac_type.h"
#include "spec/pac_type.h"

namespace lbsa::concurrent {
namespace {

// Runs `ops_per_thread` operations from each of `threads` threads through a
// recording wrapper, then asserts the history linearizes against `type`.
// op_fn(thread, i) produces the operation for thread t's i-th call.
template <typename OpFn>
void stress_round(ConcurrentObject* object, int threads, int ops_per_thread,
                  OpFn op_fn, int round) {
  lincheck::HistoryLog log;
  RecordingObject recorder(object, &log);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&recorder, t, ops_per_thread, &op_fn] {
      for (int i = 0; i < ops_per_thread; ++i) {
        recorder.apply_as(t, op_fn(t, i));
      }
    });
  }
  for (auto& w : workers) w.join();

  auto result = lincheck::check_linearizable(object->type(), log.snapshot());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_TRUE(result.value().linearizable)
      << "round " << round << ": " << result.value().detail;
}

TEST(LincheckStress, AtomicRegisterLinearizes) {
  for (int round = 0; round < 30; ++round) {
    AtomicRegister reg;
    stress_round(
        &reg, 4, 4,
        [round](int t, int i) {
          return (t + i + round) % 2 == 0
                     ? spec::make_write(100 * t + i)
                     : spec::make_read();
        },
        round);
  }
}

TEST(LincheckStress, CasConsensusLinearizes) {
  for (int round = 0; round < 30; ++round) {
    CasConsensus cons(8);
    stress_round(
        &cons, 4, 3,
        [](int t, int i) { return spec::make_propose(10 * (t + 1) + i); },
        round);
  }
}

TEST(LincheckStress, CasConsensusExhaustionLinearizes) {
  // More proposes than ports: ⊥ responses must interleave consistently.
  for (int round = 0; round < 30; ++round) {
    CasConsensus cons(3);
    stress_round(
        &cons, 4, 3,
        [](int t, int i) { return spec::make_propose(10 * (t + 1) + i); },
        round);
  }
}

TEST(LincheckStress, AtomicTwoSaLinearizes) {
  for (int round = 0; round < 30; ++round) {
    AtomicTwoSa sa(spec::kUnboundedPorts, TwoSaSelection::kMixed);
    stress_round(
        &sa, 4, 3,
        [](int t, int i) { return spec::make_propose(10 * (t + 1) + i); },
        round);
  }
}

TEST(LincheckStress, BoundedTwoSaLinearizes) {
  for (int round = 0; round < 20; ++round) {
    AtomicTwoSa sa(5, TwoSaSelection::kMixed);
    stress_round(
        &sa, 4, 3,
        [](int t, int i) { return spec::make_propose(10 * (t + 1) + i); },
        round);
  }
}

TEST(LincheckStress, SpinlockPacLinearizes) {
  // Each thread owns one PAC label and performs propose/decide pairs —
  // the access discipline Algorithm 2 induces.
  for (int round = 0; round < 20; ++round) {
    SpinlockSpecObject pac(std::make_shared<spec::PacType>(4));
    stress_round(
        &pac, 4, 4,
        [](int t, int i) {
          const std::int64_t label = t + 1;
          return (i % 2 == 0) ? spec::make_propose_labeled(100 + t, label)
                              : spec::make_decide_labeled(label);
        },
        round);
  }
}

TEST(LincheckStress, SpinlockPacChaoticAccessStillLinearizes) {
  // No access discipline at all: labels collide across threads and the
  // object gets upset — histories must still linearize (upset is part of
  // the spec, not a failure).
  for (int round = 0; round < 20; ++round) {
    SpinlockSpecObject pac(std::make_shared<spec::PacType>(2));
    stress_round(
        &pac, 3, 4,
        [round](int t, int i) {
          const std::int64_t label = ((t + i + round) % 2) + 1;
          return (i % 2 == 0) ? spec::make_propose_labeled(100 + t, label)
                              : spec::make_decide_labeled(label);
        },
        round);
  }
}

TEST(LincheckStress, SpinlockNmPacBothPortsLinearize) {
  // The hierarchy sweep's object, hammered from real threads at every
  // width 2..8: each thread works its own PAC label (the DAC discipline)
  // and interleaves proposes on the consensus port. Histories must
  // linearize against the composite NmPacType spec.
  for (int threads = 2; threads <= 8; ++threads) {
    for (int round = 0; round < 6; ++round) {
      SpinlockSpecObject nm_pac(std::make_shared<spec::NmPacType>(8, 4));
      stress_round(
          &nm_pac, threads, 4,
          [round](int t, int i) {
            const std::int64_t label = t + 1;
            switch ((t + i + round) % 3) {
              case 0:
                return spec::make_propose_p(100 + t, label);
              case 1:
                return spec::make_decide_p(label);
              default:
                return spec::make_propose_c(200 + t);
            }
          },
          round);
    }
  }
}

TEST(LincheckStress, OverclaimedNmPacFailsAgainstTheFaithfulSpec) {
  // The planted bug, caught in the concurrent realm: drive the overclaimed
  // (2,2)-PAC (its C port secretly a 3-SA) and check the histories against
  // the FAITHFUL NmPacType. An m-consensus port hands every non-⊥ caller
  // the same winner, so some round with distinct C-port responses must
  // refuse to linearize.
  const spec::NmPacType faithful(2, 2);
  bool caught = false;
  for (int round = 0; round < 40 && !caught; ++round) {
    SpinlockSpecObject overclaimed(
        std::make_shared<protocols::OverclaimedNmPacType>(2, 2),
        OutcomePolicy::kSeededRandom, /*seed=*/1000 + round);
    lincheck::HistoryLog log;
    RecordingObject recorder(&overclaimed, &log);
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back(
          [&recorder, t] { recorder.apply_as(t, spec::make_propose_c(10 + t)); });
    }
    for (auto& w : workers) w.join();

    auto result = lincheck::check_linearizable(faithful, log.snapshot());
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    if (!result.value().linearizable) caught = true;
  }
  EXPECT_TRUE(caught)
      << "overclaimed C port linearized against faithful m-consensus in "
         "every round";
}

}  // namespace
}  // namespace lbsa::concurrent
