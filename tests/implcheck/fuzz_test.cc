// Workload fuzzing for the implementation checker: randomized (seeded)
// workloads against the paper's constructions must always verify, and
// against the racy counter must be refuted whenever two fetch-and-adds can
// overlap. Complements the fixed-workload tests with breadth.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/implementations.h"
#include "implcheck/checker.h"

namespace lbsa::implcheck {
namespace {

class ImplFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImplFuzz, Lemma64AlwaysVerifies) {
  Xoshiro256 rng(GetParam() * 9176 + 5);
  auto impl = lbsa::core::make_o_prime_from_base_impl(3, 2);
  for (int round = 0; round < 4; ++round) {
    // 2-3 threads, 1-2 ops each, random levels/values — within the port
    // bounds (n_1 = 3, n_2 = 6, and at most 6 ops total here).
    const int threads = 2 + static_cast<int>(rng.next_below(2));
    std::vector<std::vector<spec::Operation>> work(
        static_cast<size_t>(threads));
    for (auto& ops : work) {
      const int count = 1 + static_cast<int>(rng.next_below(2));
      for (int i = 0; i < count; ++i) {
        const int level = 1 + static_cast<int>(rng.next_below(2));
        ops.push_back(spec::make_propose_k(
            100 + rng.next_in_range(0, 3), level));
      }
    }
    auto result = check_implementation(*impl, work);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    ASSERT_TRUE(result.value().ok)
        << "seed " << GetParam() << " round " << round << ": "
        << result.value().detail;
  }
}

TEST_P(ImplFuzz, RoutingCompositionsAlwaysVerify) {
  Xoshiro256 rng(GetParam() * 5923 + 11);
  auto impl = lbsa::core::make_nm_pac_from_components(2, 2);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::vector<spec::Operation>> work(2);
    for (auto& ops : work) {
      const int count = 1 + static_cast<int>(rng.next_below(2));
      for (int i = 0; i < count; ++i) {
        switch (rng.next_below(3)) {
          case 0:
            ops.push_back(spec::make_propose_c(100 + rng.next_in_range(0, 2)));
            break;
          case 1:
            ops.push_back(spec::make_propose_p(
                100 + rng.next_in_range(0, 2),
                1 + static_cast<std::int64_t>(rng.next_below(2))));
            break;
          default:
            ops.push_back(spec::make_decide_p(
                1 + static_cast<std::int64_t>(rng.next_below(2))));
        }
      }
    }
    auto result = check_implementation(*impl, work);
    ASSERT_TRUE(result.is_ok());
    ASSERT_TRUE(result.value().ok)
        << "seed " << GetParam() << " round " << round << ": "
        << result.value().detail;
  }
}

TEST_P(ImplFuzz, RacyCounterRefutedWheneverWritesCanOverlap) {
  Xoshiro256 rng(GetParam() * 31 + 17);
  auto impl = lbsa::core::make_racy_counter_impl();
  // Two threads, 1-2 fetch-and-adds each: any workload with at least one
  // fetch-and-add per thread admits the lost-update schedule.
  const int a = 1 + static_cast<int>(rng.next_below(2));
  const int b = 1 + static_cast<int>(rng.next_below(2));
  std::vector<std::vector<spec::Operation>> work(2);
  for (int i = 0; i < a; ++i) work[0].push_back(spec::make_propose(1));
  for (int i = 0; i < b; ++i) work[1].push_back(spec::make_propose(1));
  auto result = check_implementation(*impl, work);
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().ok) << "a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace lbsa::implcheck
