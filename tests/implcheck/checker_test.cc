// Implementation-checker tests: the paper's constructive claims verified
// over every schedule, and the control cases refuted (experiments E5/E6
// deepened). All workloads stay small (<= 8 target ops) so exhaustive
// interleaving is exact.
#include "implcheck/checker.h"

#include <gtest/gtest.h>

#include "core/implementations.h"

namespace lbsa::implcheck {
namespace {

using spec::make_decide_labeled;
using spec::make_decide_p;
using spec::make_propose;
using spec::make_propose_c;
using spec::make_propose_k;
using spec::make_propose_labeled;
using spec::make_propose_p;
using spec::make_read;
using spec::make_write;

void expect_verified(const ObjectImplementation& impl,
                     const std::vector<std::vector<spec::Operation>>& work) {
  auto result = check_implementation(impl, work);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().ok)
      << impl.name() << " refuted after "
      << result.value().executions_checked << " executions: "
      << result.value().detail;
  EXPECT_GE(result.value().executions_checked, 1u);
}

void expect_refuted(const ObjectImplementation& impl,
                    const std::vector<std::vector<spec::Operation>>& work) {
  auto result = check_implementation(impl, work);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_FALSE(result.value().ok) << impl.name() << " wrongly verified";
  EXPECT_FALSE(result.value().failing_schedule.empty());
}

TEST(ImplCheck, Observation51a_NmPacFromComponents) {
  auto impl = lbsa::core::make_nm_pac_from_components(3, 2);
  // Two threads race the consensus port while a third drives PAC pairs.
  expect_verified(*impl, {
      {make_propose_c(10)},
      {make_propose_c(20)},
      {make_propose_p(30, 1), make_decide_p(1)},
  });
}

TEST(ImplCheck, Observation51b_PacFromNmPac) {
  auto impl = lbsa::core::make_pac_from_nm_pac(2, 2);
  expect_verified(*impl, {
      {make_propose_labeled(10, 1), make_decide_labeled(1)},
      {make_propose_labeled(20, 2), make_decide_labeled(2)},
  });
}

TEST(ImplCheck, Observation51c_ConsensusFromNmPac) {
  auto impl = lbsa::core::make_consensus_from_nm_pac(3, 2);
  expect_verified(*impl, {
      {make_propose(10)},
      {make_propose(20)},
      {make_propose(30)},  // third propose: must see ⊥ consistently
  });
}

TEST(ImplCheck, Lemma64_OPrimeFromBase) {
  auto impl = lbsa::core::make_o_prime_from_base_impl(2, 2);
  expect_verified(*impl, {
      {make_propose_k(10, 1), make_propose_k(11, 2)},
      {make_propose_k(20, 1), make_propose_k(21, 2)},
      {make_propose_k(30, 2)},
  });
}

TEST(ImplCheck, Lemma64_LevelThree) {
  auto impl = lbsa::core::make_o_prime_from_base_impl(2, 3);
  expect_verified(*impl, {
      {make_propose_k(10, 3), make_propose_k(11, 3)},
      {make_propose_k(20, 3)},
      {make_propose_k(30, 3)},
  });
}

TEST(ImplCheck, BrokenOPrimeIsRefuted) {
  auto impl = lbsa::core::make_broken_o_prime_impl(2, 2);
  // Level 1 behind a 2-SA: two proposers may each be told their own value,
  // which the (2,1)-SA member forbids.
  expect_refuted(*impl, {
      {make_propose_k(10, 1)},
      {make_propose_k(20, 1)},
  });
}

TEST(ImplCheck, RacyCounterIsRefuted) {
  auto impl = lbsa::core::make_racy_counter_impl();
  // Two concurrent fetch-and-add(1): the lost-update interleaving makes
  // both return 0, which no linearization of the counter allows.
  expect_refuted(*impl, {
      {make_propose(1)},
      {make_propose(1)},
  });
}

TEST(ImplCheck, RacyCounterIsFineSequentially) {
  // The same implementation with single-threaded workload passes — the bug
  // is a concurrency bug, and the checker only reports real ones.
  auto impl = lbsa::core::make_racy_counter_impl();
  expect_verified(*impl, {
      {make_propose(1), make_propose(2), make_read()},
  });
}

TEST(ImplCheck, DoubleReadRegisterIsLinearizable) {
  auto impl = lbsa::core::make_double_read_register_impl();
  expect_verified(*impl, {
      {make_write(5), make_read()},
      {make_read(), make_write(7)},
  });
}

TEST(ImplCheck, FailingScheduleIsConcrete) {
  auto impl = lbsa::core::make_racy_counter_impl();
  auto result = check_implementation(*impl, {
      {make_propose(1)},
      {make_propose(1)},
  });
  ASSERT_TRUE(result.is_ok());
  ASSERT_FALSE(result.value().ok);
  // The schedule must mention the interleaved reads/writes on the register.
  bool mentions_read = false, mentions_write = false;
  for (const std::string& line : result.value().failing_schedule) {
    if (line.find("READ") != std::string::npos) mentions_read = true;
    if (line.find("WRITE") != std::string::npos) mentions_write = true;
  }
  EXPECT_TRUE(mentions_read);
  EXPECT_TRUE(mentions_write);
}

TEST(ImplCheck, RejectsOversizedWorkloads) {
  auto impl = lbsa::core::make_racy_counter_impl();
  std::vector<std::vector<spec::Operation>> work(1);
  for (int i = 0; i < 65; ++i) work[0].push_back(make_propose(1));
  auto result = check_implementation(*impl, work);
  EXPECT_FALSE(result.is_ok());
}

TEST(ImplCheck, RejectsInvalidTargetOps) {
  auto impl = lbsa::core::make_racy_counter_impl();
  auto result = check_implementation(*impl, {{make_write(1)}});
  EXPECT_FALSE(result.is_ok());
}

TEST(ImplCheck, ExecutionBudgetEnforced) {
  auto impl = lbsa::core::make_o_prime_from_base_impl(2, 2);
  ImplCheckOptions options;
  options.max_executions = 1;
  auto result = check_implementation(*impl,
                                     {
                                         {make_propose_k(10, 2)},
                                         {make_propose_k(20, 2)},
                                     },
                                     options);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace lbsa::implcheck
