// Wait-free universal construction tests: correctness, linearizability, and
// the helping bound (<= 2n cells of own traversal per operation).
#include "universal/wait_free_universal.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "concurrent/recording.h"
#include "lincheck/checker.h"
#include "spec/counter_type.h"
#include "spec/pac_type.h"
#include "spec/register_type.h"

namespace lbsa::universal {
namespace {

TEST(WaitFreeUniversal, SequentialCounterSemantics) {
  WaitFreeUniversalObject counter(std::make_shared<spec::CounterType>(), 1,
                                  64);
  EXPECT_EQ(counter.apply_as(0, spec::make_read()), 0);
  EXPECT_EQ(counter.apply_as(0, spec::make_propose(5)), 0);
  EXPECT_EQ(counter.apply_as(0, spec::make_propose(3)), 5);
  EXPECT_EQ(counter.apply_as(0, spec::make_read()), 8);
  EXPECT_EQ(counter.max_cells_per_op(), 1u);  // solo: every cell is mine
}

TEST(WaitFreeUniversal, SequentialPacSemantics) {
  WaitFreeUniversalObject pac(std::make_shared<spec::PacType>(2), 2, 32);
  EXPECT_EQ(pac.apply_as(0, spec::make_propose_labeled(10, 1)), kDone);
  EXPECT_EQ(pac.apply_as(0, spec::make_decide_labeled(1)), 10);
  EXPECT_EQ(pac.apply_as(1, spec::make_propose_labeled(20, 2)), kDone);
  EXPECT_EQ(pac.apply_as(1, spec::make_decide_labeled(2)), 10);
}

TEST(WaitFreeUniversal, ConcurrentCounterTotalIsExact) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  WaitFreeUniversalObject counter(std::make_shared<spec::CounterType>(),
                                  kThreads, kOpsPerThread + 1);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.apply_as(t, spec::make_propose(1));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter.apply_as(0, spec::make_read()),
            kThreads * kOpsPerThread);
}

TEST(WaitFreeUniversal, FetchAddResponsesAreUnique) {
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 200;
  WaitFreeUniversalObject counter(std::make_shared<spec::CounterType>(),
                                  kThreads, kOpsPerThread + 1);
  std::vector<std::vector<Value>> responses(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &responses, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        responses[static_cast<size_t>(t)].push_back(
            counter.apply_as(t, spec::make_propose(1)));
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<bool> seen(kThreads * kOpsPerThread, false);
  for (const auto& per_thread : responses) {
    for (Value v : per_thread) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, kThreads * kOpsPerThread);
      ASSERT_FALSE(seen[static_cast<size_t>(v)]);
      seen[static_cast<size_t>(v)] = true;
    }
  }
}

TEST(WaitFreeUniversal, HelpingBoundHolds) {
  // The helping guarantee: an operation is DECIDED within ~2n cells of the
  // frontier at its announce time (the instrumented bound allows n extra
  // for frontier-publication lag: <= 3n). Per-op replica traversal, by
  // contrast, legitimately spikes when a thread catches up on a backlog —
  // it is only bounded by the total op count.
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 300;
  WaitFreeUniversalObject counter(std::make_shared<spec::CounterType>(),
                                  kThreads, kOpsPerThread);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.apply_as(t, spec::make_propose(1));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_LE(counter.max_decide_delay(), 3u * kThreads);
  EXPECT_GE(counter.max_cells_per_op(), 1u);
  EXPECT_LE(counter.max_cells_per_op(),
            static_cast<std::size_t>(kThreads) * kOpsPerThread);
}

TEST(WaitFreeUniversal, PacRepicaLinearizesAcrossThreads) {
  // The full stack in one test: a 4-PAC implemented from consensus cells
  // with helping, hammered by 4 threads (one PAC label each), validated by
  // the Wing-Gong checker against Algorithm 1's spec.
  for (int round = 0; round < 10; ++round) {
    WaitFreeUniversalObject pac(std::make_shared<spec::PacType>(4), 4, 8);
    lincheck::HistoryLog log;
    concurrent::RecordingObject recorder(&pac, &log);
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&recorder, t] {
        const std::int64_t label = t + 1;
        recorder.apply_as(t, spec::make_propose_labeled(100 + t, label));
        recorder.apply_as(t, spec::make_decide_labeled(label));
      });
    }
    for (auto& w : workers) w.join();
    auto result = lincheck::check_linearizable(pac.type(), log.snapshot());
    ASSERT_TRUE(result.is_ok());
    ASSERT_TRUE(result.value().linearizable)
        << "round " << round << ": " << result.value().detail;
  }
}

TEST(WaitFreeUniversal, RecordedHistoriesLinearize) {
  for (int round = 0; round < 15; ++round) {
    WaitFreeUniversalObject reg(std::make_shared<spec::RegisterType>(), 4,
                                8);
    lincheck::HistoryLog log;
    concurrent::RecordingObject recorder(&reg, &log);
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&recorder, t, round] {
        for (int i = 0; i < 4; ++i) {
          const auto op = ((t + i + round) % 2 == 0)
                              ? spec::make_write(10 * t + i)
                              : spec::make_read();
          recorder.apply_as(t, op);
        }
      });
    }
    for (auto& w : workers) w.join();
    auto result = lincheck::check_linearizable(reg.type(), log.snapshot());
    ASSERT_TRUE(result.is_ok());
    ASSERT_TRUE(result.value().linearizable)
        << "round " << round << ": " << result.value().detail;
  }
}

}  // namespace
}  // namespace lbsa::universal
