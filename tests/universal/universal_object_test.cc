// Universal-construction tests (experiment E9): any deterministic object
// from n-consensus cells + registers, validated sequentially, under real
// concurrency, and against the linearizability checker.
#include "universal/universal_object.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "concurrent/recording.h"
#include "lincheck/checker.h"
#include "spec/counter_type.h"
#include "spec/pac_type.h"
#include "spec/register_type.h"

namespace lbsa::universal {
namespace {

TEST(UniversalObject, SequentialCounterSemantics) {
  UniversalObject counter(std::make_shared<spec::CounterType>(), 1, 64);
  EXPECT_EQ(counter.apply_as(0, spec::make_read()), 0);
  EXPECT_EQ(counter.apply_as(0, spec::make_propose(5)), 0);   // fetch-add
  EXPECT_EQ(counter.apply_as(0, spec::make_propose(3)), 5);
  EXPECT_EQ(counter.apply_as(0, spec::make_read()), 8);
  EXPECT_EQ(counter.applied_count(), 4u);
}

TEST(UniversalObject, SequentialRegisterSemantics) {
  UniversalObject reg(std::make_shared<spec::RegisterType>(), 2, 16);
  EXPECT_EQ(reg.apply_as(0, spec::make_write(9)), kDone);
  EXPECT_EQ(reg.apply_as(1, spec::make_read()), 9);
}

TEST(UniversalObject, SequentialPacSemantics) {
  // The on-theme case: an n-PAC implemented from consensus objects and
  // registers for a fixed number of threads — exactly what Herlihy's
  // theorem promises for any object at or below the consensus number.
  UniversalObject pac(std::make_shared<spec::PacType>(2), 2, 32);
  EXPECT_EQ(pac.apply_as(0, spec::make_propose_labeled(10, 1)), kDone);
  EXPECT_EQ(pac.apply_as(0, spec::make_decide_labeled(1)), 10);
  EXPECT_EQ(pac.apply_as(1, spec::make_propose_labeled(20, 2)), kDone);
  EXPECT_EQ(pac.apply_as(1, spec::make_decide_labeled(2)), 10);
}

TEST(UniversalObject, ConcurrentCounterTotalIsExact) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  UniversalObject counter(std::make_shared<spec::CounterType>(), kThreads,
                          kThreads * kOpsPerThread + 8);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.apply_as(t, spec::make_propose(1));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter.apply_as(0, spec::make_read()),
            kThreads * kOpsPerThread);
}

TEST(UniversalObject, FetchAddResponsesAreUniqueUnderConcurrency) {
  // fetch-add(1) responses must be a permutation of 0..N-1: the strongest
  // quick linearizability signal for a counter.
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 300;
  UniversalObject counter(std::make_shared<spec::CounterType>(), kThreads,
                          kThreads * kOpsPerThread + 8);
  std::vector<std::vector<Value>> responses(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &responses, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        responses[static_cast<size_t>(t)].push_back(
            counter.apply_as(t, spec::make_propose(1)));
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<bool> seen(kThreads * kOpsPerThread, false);
  for (const auto& per_thread : responses) {
    for (Value v : per_thread) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, kThreads * kOpsPerThread);
      ASSERT_FALSE(seen[static_cast<size_t>(v)]) << "duplicate response " << v;
      seen[static_cast<size_t>(v)] = true;
    }
  }
}

TEST(UniversalObject, RecordedHistoriesLinearize) {
  for (int round = 0; round < 20; ++round) {
    UniversalObject reg(std::make_shared<spec::RegisterType>(), 4, 64);
    lincheck::HistoryLog log;
    concurrent::RecordingObject recorder(&reg, &log);
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&recorder, t, round] {
        for (int i = 0; i < 4; ++i) {
          const auto op = ((t + i + round) % 2 == 0)
                              ? spec::make_write(10 * t + i)
                              : spec::make_read();
          recorder.apply_as(t, op);
        }
      });
    }
    for (auto& w : workers) w.join();
    auto result =
        lincheck::check_linearizable(reg.type(), log.snapshot());
    ASSERT_TRUE(result.is_ok());
    ASSERT_TRUE(result.value().linearizable)
        << "round " << round << ": " << result.value().detail;
  }
}

}  // namespace
}  // namespace lbsa::universal
