// Linearizability checker tests over hand-built histories with known
// verdicts, covering sequential acceptance, real-time order enforcement,
// nondeterministic specs, and pending-operation completion rules.
#include "lincheck/checker.h"

#include <gtest/gtest.h>

#include "spec/consensus_type.h"
#include "spec/ksa_type.h"
#include "spec/pac_type.h"
#include "spec/register_type.h"

namespace lbsa::lincheck {
namespace {

// History construction helper: intervals given explicitly.
OpRecord op(int id, int thread, spec::Operation operation, Value response,
            std::uint64_t invoke_ts, std::uint64_t response_ts) {
  OpRecord r;
  r.op_id = id;
  r.thread = thread;
  r.op = operation;
  r.response = response;
  r.invoke_ts = invoke_ts;
  r.response_ts = response_ts;
  return r;
}

OpRecord pending(int id, int thread, spec::Operation operation,
                 std::uint64_t invoke_ts) {
  OpRecord r;
  r.op_id = id;
  r.thread = thread;
  r.op = operation;
  r.invoke_ts = invoke_ts;
  return r;
}

TEST(Checker, EmptyHistoryIsLinearizable) {
  spec::RegisterType reg;
  auto result = check_linearizable(reg, {});
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().linearizable);
}

TEST(Checker, SequentialRegisterHistoryAccepted) {
  spec::RegisterType reg;
  const std::vector<OpRecord> history{
      op(0, 0, spec::make_write(5), kDone, 1, 2),
      op(1, 1, spec::make_read(), 5, 3, 4),
  };
  auto result = check_linearizable(reg, history);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().linearizable);
  EXPECT_EQ(result.value().witness, (std::vector<int>{0, 1}));
}

TEST(Checker, StaleSequentialReadRejected) {
  // write(5) completed before read began, yet read returned the old value.
  spec::RegisterType reg;
  const std::vector<OpRecord> history{
      op(0, 0, spec::make_write(5), kDone, 1, 2),
      op(1, 1, spec::make_read(), kNil, 3, 4),
  };
  auto result = check_linearizable(reg, history);
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().linearizable);
}

TEST(Checker, ConcurrentReadMayMissOverlappingWrite) {
  // The read overlaps the write, so either response order linearizes.
  spec::RegisterType reg;
  const std::vector<OpRecord> history{
      op(0, 0, spec::make_write(5), kDone, 1, 4),
      op(1, 1, spec::make_read(), kNil, 2, 3),
  };
  auto result = check_linearizable(reg, history);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().linearizable);
  // read must linearize before the write.
  EXPECT_EQ(result.value().witness, (std::vector<int>{1, 0}));
}

TEST(Checker, ConsensusHistoryRespectsFirstWinner) {
  spec::NConsensusType cons(2);
  // Two concurrent proposes, both reporting 20 as winner: legal iff the
  // propose(20) linearizes first.
  const std::vector<OpRecord> history{
      op(0, 0, spec::make_propose(10), 20, 1, 10),
      op(1, 1, spec::make_propose(20), 20, 2, 9),
  };
  auto result = check_linearizable(cons, history);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().linearizable);
  EXPECT_EQ(result.value().witness, (std::vector<int>{1, 0}));
}

TEST(Checker, ConsensusConflictingWinnersRejected) {
  spec::NConsensusType cons(2);
  const std::vector<OpRecord> history{
      op(0, 0, spec::make_propose(10), 10, 1, 10),
      op(1, 1, spec::make_propose(20), 20, 2, 9),
  };
  auto result = check_linearizable(cons, history);
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().linearizable);
}

TEST(Checker, ConsensusSequentialBottomAfterExhaustion) {
  spec::NConsensusType cons(1);
  const std::vector<OpRecord> history{
      op(0, 0, spec::make_propose(10), 10, 1, 2),
      op(1, 1, spec::make_propose(20), kBottom, 3, 4),
  };
  auto result = check_linearizable(cons, history);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().linearizable);
}

TEST(Checker, TwoSaNondeterminismAccepted) {
  // Concurrent proposes 10 and 20 where both get told "20": fine — STATE
  // can be {10,20} (or the 20-propose linearizes first and... still needs
  // 10's propose to see 20 in STATE, i.e. 20 first).
  spec::KsaType two_sa = spec::make_two_sa_type();
  const std::vector<OpRecord> history{
      op(0, 0, spec::make_propose(10), 20, 1, 10),
      op(1, 1, spec::make_propose(20), 20, 2, 9),
  };
  auto result = check_linearizable(two_sa, history);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().linearizable);
}

TEST(Checker, TwoSaThirdValueResponseRejected) {
  // Three sequential proposes 10, 20, 30: the third may answer 10 or 20 but
  // never 30 (STATE keeps only the first two distinct values).
  spec::KsaType two_sa = spec::make_two_sa_type();
  const std::vector<OpRecord> history{
      op(0, 0, spec::make_propose(10), 10, 1, 2),
      op(1, 0, spec::make_propose(20), 10, 3, 4),
      op(2, 0, spec::make_propose(30), 30, 5, 6),
  };
  auto result = check_linearizable(two_sa, history);
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().linearizable);
}

TEST(Checker, PacSequentialHistoryAccepted) {
  spec::PacType pac(2);
  const std::vector<OpRecord> history{
      op(0, 0, spec::make_propose_labeled(10, 1), kDone, 1, 2),
      op(1, 0, spec::make_decide_labeled(1), 10, 3, 4),
      op(2, 1, spec::make_propose_labeled(20, 2), kDone, 5, 6),
      op(3, 1, spec::make_decide_labeled(2), 10, 7, 8),
  };
  auto result = check_linearizable(pac, history);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().linearizable);
}

TEST(Checker, PacOverlappingPairsMustObserveConcurrency) {
  // Both pairs fully overlap and both decides return real values — but at
  // most one pair can be uninterrupted; some interleaving would have to
  // return ⊥, so claiming 10 and then 20 as two successful decides of
  // different values is not linearizable.
  spec::PacType pac(2);
  const std::vector<OpRecord> history{
      op(0, 0, spec::make_propose_labeled(10, 1), kDone, 1, 10),
      op(1, 0, spec::make_decide_labeled(1), 10, 11, 20),
      op(2, 1, spec::make_propose_labeled(20, 2), kDone, 2, 9),
      op(3, 1, spec::make_decide_labeled(2), 20, 12, 19),
  };
  auto result = check_linearizable(pac, history);
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().linearizable);  // agreement inside the object
}

TEST(Checker, PendingOpMayBeDropped) {
  spec::RegisterType reg;
  const std::vector<OpRecord> history{
      pending(0, 0, spec::make_write(5), 1),
      op(1, 1, spec::make_read(), kNil, 2, 3),
  };
  auto result = check_linearizable(reg, history);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().linearizable);
}

TEST(Checker, PendingOpMayTakeEffect) {
  // The read sees 5 although write(5) never returned: legal, the write
  // linearized before the crash.
  spec::RegisterType reg;
  const std::vector<OpRecord> history{
      pending(0, 0, spec::make_write(5), 1),
      op(1, 1, spec::make_read(), 5, 2, 3),
  };
  auto result = check_linearizable(reg, history);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().linearizable);
}

TEST(Checker, PendingCannotRewriteRealTimeOrder) {
  // read completed before the pending write was invoked, yet saw its value.
  spec::RegisterType reg;
  const std::vector<OpRecord> history{
      op(0, 1, spec::make_read(), 5, 1, 2),
      pending(1, 0, spec::make_write(5), 3),
  };
  auto result = check_linearizable(reg, history);
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().linearizable);
}

TEST(Checker, RejectsOversizedHistories) {
  spec::RegisterType reg;
  std::vector<OpRecord> history;
  for (int i = 0; i < 65; ++i) {
    history.push_back(op(i, 0, spec::make_write(1), kDone, 2 * i + 1,
                         2 * i + 2));
  }
  auto result = check_linearizable(reg, history);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Checker, RejectsMalformedRecords) {
  spec::RegisterType reg;
  auto bad_ts = check_linearizable(
      reg, {op(0, 0, spec::make_write(1), kDone, 5, 5)});
  EXPECT_FALSE(bad_ts.is_ok());
  auto bad_op = check_linearizable(
      reg, {op(0, 0, spec::make_propose(1), 1, 1, 2)});
  EXPECT_FALSE(bad_op.is_ok());
}

}  // namespace
}  // namespace lbsa::lincheck
