#include "lincheck/history_log.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "spec/object_type.h"

namespace lbsa::lincheck {
namespace {

TEST(HistoryLog, RecordsInvokeAndResponse) {
  HistoryLog log;
  const int id = log.begin_op(3, spec::make_propose(7));
  log.end_op(id, 7);
  const auto records = log.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].thread, 3);
  EXPECT_EQ(records[0].op.arg0, 7);
  EXPECT_EQ(records[0].response, 7);
  EXPECT_TRUE(records[0].completed());
  EXPECT_LT(records[0].invoke_ts, records[0].response_ts);
}

TEST(HistoryLog, PendingOpHasNoResponse) {
  HistoryLog log;
  log.begin_op(0, spec::make_read());
  const auto records = log.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].completed());
}

TEST(HistoryLog, SequentialOpsHaveDisjointIntervals) {
  HistoryLog log;
  const int a = log.begin_op(0, spec::make_propose(1));
  log.end_op(a, 1);
  const int b = log.begin_op(0, spec::make_propose(2));
  log.end_op(b, 1);
  const auto records = log.snapshot();
  EXPECT_TRUE(records[0].precedes(records[1]));
  EXPECT_FALSE(records[1].precedes(records[0]));
}

TEST(HistoryLog, ResetClearsLog) {
  HistoryLog log;
  log.end_op(log.begin_op(0, spec::make_read()), kNil);
  log.reset();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(HistoryLog, ConcurrentRecordingIsLossless) {
  HistoryLog log(1 << 12);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int id = log.begin_op(t, spec::make_propose(t * 1000 + i));
        log.end_op(id, t * 1000 + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto records = log.snapshot();
  ASSERT_EQ(records.size(),
            static_cast<size_t>(kThreads * kOpsPerThread));
  // Every record is complete, well-formed, and tagged with its thread.
  std::vector<int> per_thread(kThreads, 0);
  for (const OpRecord& r : records) {
    EXPECT_TRUE(r.completed());
    EXPECT_LT(r.invoke_ts, r.response_ts);
    ASSERT_GE(r.thread, 0);
    ASSERT_LT(r.thread, kThreads);
    ++per_thread[static_cast<size_t>(r.thread)];
  }
  for (int count : per_thread) EXPECT_EQ(count, kOpsPerThread);
}

}  // namespace
}  // namespace lbsa::lincheck
