// Mechanized Claim 5.2.3 / 4.2.7 shape: at critical configurations of
// working consensus protocols, all processes are poised on the same object —
// and that object is never a register (Claims 4.2.8 / 5.2.4).
#include "modelcheck/critical.h"

#include <gtest/gtest.h>

#include "protocols/one_shot.h"

namespace lbsa::modelcheck {
namespace {

using protocols::make_consensus_via_n_consensus;
using protocols::make_consensus_via_nm_pac;

struct Analysis {
  ConfigGraph graph;
  std::vector<CriticalInfo> critical;
};

Analysis analyze(std::shared_ptr<const sim::Protocol> protocol) {
  Explorer explorer(protocol);
  auto graph_or = explorer.explore();
  EXPECT_TRUE(graph_or.is_ok());
  Analysis a{std::move(graph_or).value(), {}};
  ValenceAnalyzer valence(a.graph);
  a.critical = analyze_critical_configurations(*protocol, a.graph, valence);
  return a;
}

TEST(Critical, ConsensusCriticalConfigIsOnTheConsensusObject) {
  for (int n = 2; n <= 4; ++n) {
    std::vector<Value> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
    auto protocol = make_consensus_via_n_consensus(inputs);
    const Analysis a = analyze(protocol);
    ASSERT_FALSE(a.critical.empty()) << "n=" << n;
    for (const CriticalInfo& info : a.critical) {
      EXPECT_TRUE(info.all_on_same_object) << "n=" << n;
      EXPECT_EQ(info.common_object, 0);
      EXPECT_EQ(info.common_object_type, std::to_string(n) + "-consensus");
      // Every enabled process appears in the pending list.
      EXPECT_EQ(info.pending.size(),
                static_cast<size_t>(
                    a.graph.nodes()[info.node].config.enabled_count()));
    }
  }
}

TEST(Critical, NmPacCriticalConfigIsOnTheCombinedObject) {
  // Consensus through an (n,m)-PAC: the pivotal object is the (n,m)-PAC
  // itself — the situation Claim 5.2.3 sets up before ruling out each
  // component type.
  auto protocol = make_consensus_via_nm_pac(3, 2, {100, 101});
  const Analysis a = analyze(protocol);
  ASSERT_FALSE(a.critical.empty());
  for (const CriticalInfo& info : a.critical) {
    EXPECT_TRUE(info.all_on_same_object);
    EXPECT_EQ(info.common_object_type, "(3,2)-PAC");
  }
}

TEST(Critical, CriticalObjectIsNeverARegister) {
  // Claims 4.2.8 / 5.2.4 in mechanized form, over every protocol we can
  // throw at it: if a critical configuration exists and all pending steps
  // share an object, that object is not a register.
  const std::vector<std::shared_ptr<const sim::Protocol>> protocols = {
      make_consensus_via_n_consensus({100, 101}),
      make_consensus_via_n_consensus({100, 101, 102}),
      make_consensus_via_nm_pac(3, 2, {100, 101}),
  };
  for (const auto& protocol : protocols) {
    const Analysis a = analyze(protocol);
    for (const CriticalInfo& info : a.critical) {
      if (info.all_on_same_object) {
        EXPECT_NE(info.common_object_type, "register") << protocol->name();
      }
    }
  }
}

TEST(Critical, PendingStepDescriptionsAreReadable) {
  auto protocol = make_consensus_via_n_consensus({100, 101});
  const Analysis a = analyze(protocol);
  ASSERT_FALSE(a.critical.empty());
  const CriticalInfo& info = a.critical.front();
  ASSERT_EQ(info.pending.size(), 2u);
  EXPECT_NE(info.pending[0].description.find("PROPOSE"), std::string::npos);
  EXPECT_NE(info.pending[1].description.find("2-consensus"),
            std::string::npos);
}

TEST(Critical, AnalyzeArbitraryNodeIncludesLocalSteps) {
  // One step after the root, the stepping process is poised on a local
  // decide — object_index must be -1 and same-object must be false.
  auto protocol = make_consensus_via_n_consensus({100, 101});
  Explorer explorer(protocol);
  auto graph = std::move(explorer.explore()).value();
  const auto& edges = graph.edges()[graph.root()];
  ASSERT_FALSE(edges.empty());
  const CriticalInfo info =
      analyze_pending_steps(*protocol, graph, edges[0].to);
  bool saw_local = false;
  for (const auto& step : info.pending) {
    if (step.object_index == -1) {
      saw_local = true;
      EXPECT_NE(step.description.find("decide"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_local);
  EXPECT_FALSE(info.all_on_same_object);
}

}  // namespace
}  // namespace lbsa::modelcheck
