// Mutation tests for the checkers themselves: protocols with one deliberate
// injected bug each must be flagged by BOTH the randomized fuzzer and the
// exhaustive task checker, for the property the bug breaks. A checker that
// misses a planted bug is a broken checker — these tests are the regression
// suite for the checking machinery, not for the protocols.
#include <gtest/gtest.h>

#include "modelcheck/corpus.h"
#include "modelcheck/fuzz.h"
#include "modelcheck/task_check.h"
#include "protocols/mutants.h"

namespace lbsa::modelcheck {
namespace {

struct Mutant {
  const char* task;          // corpus-registry key
  const char* property;      // the property the planted bug breaks
};

// Each entry isolates one safety property of the paper's tasks.
const Mutant kMutants[] = {
    {"mutant-dac-no-adopt3", "agreement"},
    {"mutant-dac-wrong-abort3", "only-p-aborts"},
    {"mutant-2sa4", "agreement"},
    {"mutant-consensus-off-by-one3", "validity"},
    // The (n,m)-PAC ports (hierarchy sweep subjects): an overclaimed C port
    // that admits m + 1 distinct decisions, and the no-adopt bug replayed
    // over the PAC ports of the combined object.
    {"mutant-consensus-from-nmpac22", "agreement"},
    {"mutant-dac-from-nmpac21", "agreement"},
};

TEST(Mutation, FuzzerFlagsEveryMutant) {
  for (const Mutant& mutant : kMutants) {
    SCOPED_TRACE(mutant.task);
    auto task = make_named_task(mutant.task);
    ASSERT_TRUE(task.is_ok()) << task.status().to_string();
    FuzzOptions options;
    options.runs = 5000;
    options.max_violations = 1;
    const FuzzReport report = fuzz_named_task(task.value(), options);
    ASSERT_FALSE(report.ok()) << "fuzzer missed the planted bug";
    EXPECT_TRUE(report.violates(mutant.property))
        << "found '" << report.violations[0].property << "' instead";
  }
}

TEST(Mutation, ExhaustiveCheckerFlagsEveryMutant) {
  for (const Mutant& mutant : kMutants) {
    SCOPED_TRACE(mutant.task);
    auto task = make_named_task(mutant.task);
    ASSERT_TRUE(task.is_ok()) << task.status().to_string();
    StatusOr<TaskReport> report = invalid_argument("unset");
    if (task.value().distinguished_pid >= 0) {
      report = check_dac_task(task.value().protocol,
                              task.value().distinguished_pid,
                              task.value().inputs);
    } else {
      report = check_k_agreement_task(task.value().protocol, task.value().k,
                                      task.value().inputs);
    }
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    ASSERT_FALSE(report.value().ok())
        << "exhaustive checker missed the planted bug";
    EXPECT_TRUE(report.value().violates(mutant.property))
        << report.value().to_string();
  }
}

TEST(Mutation, CorrectCounterpartsStayClean) {
  // The mutants' unmutated counterparts pass the same fuzz budgets — the
  // mutation tests discriminate, they don't just flag everything.
  for (const char* name :
       {"dac3", "twosa4", "consensus-from-nmpac42", "dac-from-nmpac32"}) {
    SCOPED_TRACE(name);
    auto task = make_named_task(name);
    ASSERT_TRUE(task.is_ok());
    FuzzOptions options;
    options.runs = 1000;
    const FuzzReport report = fuzz_named_task(task.value(), options);
    EXPECT_TRUE(report.ok())
        << report.violations[0].property << ": "
        << report.violations[0].detail;
  }
}

TEST(MutationDeathTest, OffByOneMutantRejectsMaskableInputs) {
  // Guard on the mutant's construction: the bug must not be maskable by an
  // input collision (decided value == someone else's input), which the
  // protocol's constructor enforces — inputs 100,101,102 would let the
  // mutant decide 101 or 102 "validly".
  EXPECT_DEATH(protocols::make_off_by_one_consensus({100, 101, 102}),
               "LBSA_CHECK failed");
}

}  // namespace
}  // namespace lbsa::modelcheck
