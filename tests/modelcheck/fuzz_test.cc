// Schedule-fuzzer tests: correct protocols stay clean at sizes beyond the
// exhaustive checker's comfort; broken protocols are caught quickly, and
// every finding replays deterministically through sim/trace.h.
#include "modelcheck/fuzz.h"

#include <gtest/gtest.h>

#include "protocols/ben_or.h"
#include "protocols/dac_from_pac.h"
#include "protocols/group_ksa.h"
#include "protocols/straw_dac.h"
#include "sim/trace.h"

namespace lbsa::modelcheck {
namespace {

using protocols::BenOrProtocol;
using protocols::DacFromPacProtocol;
using protocols::GroupKsaProtocol;
using protocols::StrawDacFallbackProtocol;

std::vector<Value> iota_inputs(int n) {
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
  return inputs;
}

TEST(Fuzz, AlgorithmTwoCleanAtLargeSizes) {
  // 8-process DAC — far beyond exhaustive reach; 300 fuzzed schedules must
  // find no safety violation.
  const auto inputs = iota_inputs(8);
  auto protocol = std::make_shared<DacFromPacProtocol>(inputs);
  FuzzOptions options;
  options.runs = 300;
  options.max_steps_per_run = 50'000;
  const FuzzReport report = fuzz_dac(protocol, 0, inputs, options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.runs_executed, 300u);
  EXPECT_GT(report.runs_terminated, 0u);
}

TEST(Fuzz, GroupKsaCleanAtLargeSizes) {
  const auto inputs = iota_inputs(12);  // 3 groups of 4
  auto protocol = std::make_shared<GroupKsaProtocol>(3, 4, inputs);
  FuzzOptions options;
  options.runs = 300;
  const FuzzReport report = fuzz_k_agreement(protocol, 3, inputs, options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.runs_terminated, report.runs_executed);
}

TEST(Fuzz, BenOrSafetyCleanWithFairCoins) {
  const std::vector<Value> inputs{0, 1, 0, 1, 1};
  auto protocol = std::make_shared<BenOrProtocol>(inputs, 40);
  FuzzOptions options;
  options.runs = 200;
  const FuzzReport report = fuzz_k_agreement(protocol, 1, inputs, options);
  EXPECT_TRUE(report.ok());
}

TEST(Fuzz, StrawDacViolationFoundAndReplayable) {
  // 5-process straw-man: fuzzing must find the agreement violation, and the
  // reported schedule must replay to a violating configuration.
  const auto inputs = iota_inputs(5);
  auto protocol = std::make_shared<StrawDacFallbackProtocol>(inputs);
  FuzzOptions options;
  options.runs = 2000;
  const FuzzReport report = fuzz_dac(protocol, 0, inputs, options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.violates("agreement"));

  const FuzzViolation& finding = report.violations.front();
  auto schedule = sim::parse_schedule(finding.schedule);
  ASSERT_TRUE(schedule.is_ok());
  auto replayed = sim::replay_schedule(protocol, schedule.value());
  ASSERT_TRUE(replayed.is_ok()) << replayed.status().to_string();
  EXPECT_GE(replayed.value().distinct_decisions().size(), 2u);
}

TEST(Fuzz, ViolationBudgetStopsEarly) {
  const auto inputs = iota_inputs(3);
  auto protocol = std::make_shared<StrawDacFallbackProtocol>(inputs);
  FuzzOptions options;
  options.runs = 100'000;
  options.max_violations = 2;
  const FuzzReport report = fuzz_dac(protocol, 0, inputs, options);
  EXPECT_EQ(report.violations.size(), 2u);
  EXPECT_LT(report.runs_executed, 100'000u);
}

TEST(Fuzz, DeterministicForSeed) {
  const auto inputs = iota_inputs(3);
  auto protocol = std::make_shared<StrawDacFallbackProtocol>(inputs);
  FuzzOptions options;
  options.runs = 500;
  options.seed = 42;
  const FuzzReport a = fuzz_dac(protocol, 0, inputs, options);
  const FuzzReport b = fuzz_dac(protocol, 0, inputs, options);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].schedule, b.violations[i].schedule);
    EXPECT_EQ(a.violations[i].run_seed, b.violations[i].run_seed);
  }
}

}  // namespace
}  // namespace lbsa::modelcheck
