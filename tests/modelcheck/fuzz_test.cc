// Schedule-fuzzer tests: correct protocols stay clean at sizes beyond the
// exhaustive checker's comfort; broken protocols are caught quickly, and
// every finding replays deterministically through sim/trace.h.
#include "modelcheck/fuzz.h"

#include <gtest/gtest.h>

#include "modelcheck/checkpoint.h"
#include "protocols/ben_or.h"
#include "protocols/dac_from_pac.h"
#include "protocols/group_ksa.h"
#include "protocols/straw_dac.h"
#include "sim/trace.h"

namespace lbsa::modelcheck {
namespace {

using protocols::BenOrProtocol;
using protocols::DacFromPacProtocol;
using protocols::GroupKsaProtocol;
using protocols::StrawDacFallbackProtocol;

std::vector<Value> iota_inputs(int n) {
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
  return inputs;
}

TEST(Fuzz, AlgorithmTwoCleanAtLargeSizes) {
  // 8-process DAC — far beyond exhaustive reach; 300 fuzzed schedules must
  // find no safety violation.
  const auto inputs = iota_inputs(8);
  auto protocol = std::make_shared<DacFromPacProtocol>(inputs);
  FuzzOptions options;
  options.runs = 300;
  options.max_steps_per_run = 50'000;
  const FuzzReport report = fuzz_dac(protocol, 0, inputs, options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.runs_executed, 300u);
  EXPECT_GT(report.runs_terminated, 0u);
}

TEST(Fuzz, GroupKsaCleanAtLargeSizes) {
  const auto inputs = iota_inputs(12);  // 3 groups of 4
  auto protocol = std::make_shared<GroupKsaProtocol>(3, 4, inputs);
  FuzzOptions options;
  options.runs = 300;
  const FuzzReport report = fuzz_k_agreement(protocol, 3, inputs, options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.runs_terminated, report.runs_executed);
}

TEST(Fuzz, BenOrSafetyCleanWithFairCoins) {
  const std::vector<Value> inputs{0, 1, 0, 1, 1};
  auto protocol = std::make_shared<BenOrProtocol>(inputs, 40);
  FuzzOptions options;
  options.runs = 200;
  const FuzzReport report = fuzz_k_agreement(protocol, 1, inputs, options);
  EXPECT_TRUE(report.ok());
}

TEST(Fuzz, StrawDacViolationFoundAndReplayable) {
  // 5-process straw-man: fuzzing must find the agreement violation, and the
  // reported schedule must replay to a violating configuration.
  const auto inputs = iota_inputs(5);
  auto protocol = std::make_shared<StrawDacFallbackProtocol>(inputs);
  FuzzOptions options;
  options.runs = 2000;
  const FuzzReport report = fuzz_dac(protocol, 0, inputs, options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.violates("agreement"));

  const FuzzViolation& finding = report.violations.front();
  auto schedule = sim::parse_schedule(finding.schedule);
  ASSERT_TRUE(schedule.is_ok());
  auto replayed = sim::replay_schedule(protocol, schedule.value());
  ASSERT_TRUE(replayed.is_ok()) << replayed.status().to_string();
  EXPECT_GE(replayed.value().distinct_decisions().size(), 2u);
}

TEST(Fuzz, ViolationBudgetStopsEarly) {
  const auto inputs = iota_inputs(3);
  auto protocol = std::make_shared<StrawDacFallbackProtocol>(inputs);
  FuzzOptions options;
  options.runs = 100'000;
  options.max_violations = 2;
  const FuzzReport report = fuzz_dac(protocol, 0, inputs, options);
  EXPECT_EQ(report.violations.size(), 2u);
  EXPECT_LT(report.runs_executed, 100'000u);
}

TEST(Fuzz, DeterministicForSeed) {
  const auto inputs = iota_inputs(3);
  auto protocol = std::make_shared<StrawDacFallbackProtocol>(inputs);
  FuzzOptions options;
  options.runs = 500;
  options.seed = 42;
  const FuzzReport a = fuzz_dac(protocol, 0, inputs, options);
  const FuzzReport b = fuzz_dac(protocol, 0, inputs, options);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].schedule, b.violations[i].schedule);
    EXPECT_EQ(a.violations[i].run_seed, b.violations[i].run_seed);
  }
}

// Every observable field of two reports must agree — "byte-identical"
// in the sense that serializing either gives the same bytes.
void expect_identical_reports(const FuzzReport& a, const FuzzReport& b) {
  EXPECT_EQ(a.runs_executed, b.runs_executed);
  EXPECT_EQ(a.runs_terminated, b.runs_terminated);
  EXPECT_EQ(a.distinct_fingerprints, b.distinct_fingerprints);
  EXPECT_EQ(a.interesting_runs, b.interesting_runs);
  EXPECT_EQ(a.mutated_runs, b.mutated_runs);
  EXPECT_EQ(a.shrink_replays, b.shrink_replays);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].property, b.violations[i].property);
    EXPECT_EQ(a.violations[i].detail, b.violations[i].detail);
    EXPECT_EQ(a.violations[i].run_seed, b.violations[i].run_seed);
    EXPECT_EQ(a.violations[i].schedule, b.violations[i].schedule);
    EXPECT_EQ(a.violations[i].shrunk_schedule, b.violations[i].shrunk_schedule);
    EXPECT_EQ(a.violations[i].raw_steps, b.violations[i].raw_steps);
    EXPECT_EQ(a.violations[i].shrunk_steps, b.violations[i].shrunk_steps);
  }
}

TEST(Fuzz, ReportIdenticalAcrossThreadCounts) {
  // The blind fuzzer's report is a pure function of FuzzOptions::seed:
  // runs are pre-seeded, merged in run order, and the early-stop cutoff is
  // computed deterministically — so 1, 2, and 4 workers must agree exactly,
  // violations and all.
  const auto inputs = iota_inputs(4);
  auto protocol = std::make_shared<StrawDacFallbackProtocol>(inputs);
  FuzzOptions options;
  options.runs = 400;
  options.seed = 9;
  options.max_violations = 3;
  options.threads = 1;
  const FuzzReport serial = fuzz_dac(protocol, 0, inputs, options);
  ASSERT_FALSE(serial.ok());  // exercise the early-stop path too
  for (int threads : {2, 4}) {
    SCOPED_TRACE(threads);
    options.threads = threads;
    const FuzzReport parallel = fuzz_dac(protocol, 0, inputs, options);
    expect_identical_reports(serial, parallel);
  }
}

TEST(Fuzz, CoverageModeDeterministicForSeed) {
  const auto inputs = iota_inputs(4);
  auto protocol = std::make_shared<StrawDacFallbackProtocol>(inputs);
  FuzzOptions options;
  options.runs = 300;
  options.seed = 5;
  options.coverage_guided = true;
  const FuzzReport a = fuzz_dac(protocol, 0, inputs, options);
  const FuzzReport b = fuzz_dac(protocol, 0, inputs, options);
  expect_identical_reports(a, b);
  EXPECT_GT(a.mutated_runs, 0u);
}

TEST(Fuzz, CoverageGuidanceBeatsBlindOnFingerprints) {
  // The point of coverage feedback: with the same seed and run budget,
  // breeding from interesting schedules reaches strictly more distinct
  // configurations than blind generation. 3-process DAC is where blind
  // plateaus (fresh random runs mostly revisit known configurations)
  // while mutation keeps reaching rare corners; at seed 17 the margin is
  // wide (~428 vs ~338 at 250 runs), so this is not a coin flip.
  const auto inputs = iota_inputs(3);
  auto protocol = std::make_shared<DacFromPacProtocol>(inputs);
  FuzzOptions options;
  options.runs = 250;
  options.seed = 17;
  const FuzzReport blind = fuzz_dac(protocol, 0, inputs, options);
  options.coverage_guided = true;
  const FuzzReport coverage = fuzz_dac(protocol, 0, inputs, options);
  EXPECT_EQ(blind.runs_executed, coverage.runs_executed);
  EXPECT_GT(coverage.distinct_fingerprints, blind.distinct_fingerprints);
}

TEST(Fuzz, ViolationsCarryRawAndShrunkSchedules) {
  const auto inputs = iota_inputs(4);
  auto protocol = std::make_shared<StrawDacFallbackProtocol>(inputs);
  FuzzOptions options;
  options.runs = 3000;
  options.max_violations = 1;
  const FuzzReport report = fuzz_dac(protocol, 0, inputs, options);
  ASSERT_FALSE(report.ok());
  const FuzzViolation& v = report.violations.front();
  EXPECT_GT(v.raw_steps, 0u);
  EXPECT_GT(v.shrunk_steps, 0u);
  EXPECT_LE(v.shrunk_steps, v.raw_steps);
  // Both schedules replay to the same violated property.
  for (const std::string& text : {v.schedule, v.shrunk_schedule}) {
    auto schedule = sim::parse_schedule(text);
    ASSERT_TRUE(schedule.is_ok());
    auto replayed = sim::replay_schedule(protocol, schedule.value());
    ASSERT_TRUE(replayed.is_ok()) << replayed.status().to_string();
    EXPECT_GE(replayed.value().distinct_decisions().size(), 2u);
  }
}

// Regression (serving PR): the blind engine used to silently IGNORE the
// run-boundary lifecycle knobs (its claim order is thread-scheduling
// dependent, so it has no resumable boundary) — a blind campaign launched
// with a checkpoint_path ran to completion with no checkpoint and no
// error. External callers (the CLIs, the serve facade) now validate first
// and must get INVALID_ARGUMENT naming the offending knob.
TEST(Fuzz, ValidateOptionsRejectsBlindLifecycleKnobs) {
  FuzzOptions blind;
  blind.coverage_guided = false;

  {
    FuzzOptions o = blind;
    o.checkpoint_path = "/tmp/whatever.ckpt";
    const Status s = validate_fuzz_options(o);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.to_string();
    EXPECT_NE(s.message().find("checkpoint_path"), std::string::npos)
        << s.to_string();
  }
  {
    FuzzCheckpoint cp;
    FuzzOptions o = blind;
    o.resume = &cp;
    const Status s = validate_fuzz_options(o);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.to_string();
    EXPECT_NE(s.message().find("resume"), std::string::npos) << s.to_string();
  }
  {
    FuzzOptions o = blind;
    o.stop_after_runs = 10;
    const Status s = validate_fuzz_options(o);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.to_string();
    EXPECT_NE(s.message().find("stop_after_runs"), std::string::npos)
        << s.to_string();
  }

  // The same knobs are fine on the coverage engine, and a blind campaign
  // without them is fine too.
  FuzzOptions coverage;
  coverage.coverage_guided = true;
  coverage.checkpoint_path = "/tmp/whatever.ckpt";
  coverage.stop_after_runs = 10;
  EXPECT_TRUE(validate_fuzz_options(coverage).is_ok());
  EXPECT_TRUE(validate_fuzz_options(blind).is_ok());
}

TEST(Fuzz, ShrinkingCanBeDisabled) {
  const auto inputs = iota_inputs(3);
  auto protocol = std::make_shared<StrawDacFallbackProtocol>(inputs);
  FuzzOptions options;
  options.runs = 2000;
  options.max_violations = 1;
  options.shrink_violations = false;
  const FuzzReport report = fuzz_dac(protocol, 0, inputs, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].schedule, report.violations[0].shrunk_schedule);
  EXPECT_EQ(report.shrink_replays, 0u);
}

}  // namespace
}  // namespace lbsa::modelcheck
