// Serial-vs-parallel equivalence: the parallel engine must produce a
// canonical ConfigGraph that is bit-identical to the serial reference —
// same node ids, configurations, flags, depths, edge lists, parents (via
// path_to) and transition counts — for every thread count. This is the
// contract that lets every downstream consumer (valence, task_check,
// critical, step_complexity, export) stay oblivious to how the graph was
// built.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "modelcheck/explorer.h"
#include "protocols/dac_from_pac.h"
#include "protocols/one_shot.h"
#include "protocols/straw_dac.h"

namespace lbsa::modelcheck {
namespace {

using protocols::DacFromPacProtocol;
using protocols::make_consensus_via_n_consensus;
using protocols::make_ksa_via_two_sa;

void expect_identical(const ConfigGraph& serial, const ConfigGraph& parallel,
                      const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(serial.nodes().size(), parallel.nodes().size());
  EXPECT_EQ(serial.transition_count(), parallel.transition_count());
  EXPECT_EQ(serial.truncated(), parallel.truncated());
  for (std::uint32_t id = 0; id < serial.nodes().size(); ++id) {
    const Node& a = serial.nodes()[id];
    const Node& b = parallel.nodes()[id];
    ASSERT_TRUE(a.config == b.config) << "config mismatch at node " << id;
    EXPECT_EQ(a.flag, b.flag) << "flag mismatch at node " << id;
    EXPECT_EQ(a.depth, b.depth) << "depth mismatch at node " << id;
    ASSERT_EQ(serial.edges()[id], parallel.edges()[id])
        << "edge list mismatch at node " << id;
    EXPECT_EQ(serial.path_to(id), parallel.path_to(id))
        << "parent chain mismatch at node " << id;
  }
}

void expect_all_thread_counts_match(
    std::shared_ptr<const sim::Protocol> protocol,
    Explorer::FlagFn flag_fn = nullptr) {
  Explorer explorer(std::move(protocol));
  const auto serial =
      explorer.explore({.engine = ExploreEngine::kSerial}, flag_fn);
  ASSERT_TRUE(serial.is_ok()) << serial.status().to_string();
  for (int threads : {1, 2, 8}) {
    const auto parallel = explorer.explore(
        {.threads = threads, .engine = ExploreEngine::kParallel}, flag_fn);
    ASSERT_TRUE(parallel.is_ok()) << parallel.status().to_string();
    expect_identical(serial.value(), parallel.value(),
                     ("threads=" + std::to_string(threads)).c_str());
  }
}

TEST(ParallelExplorer, SingleProcessLine) {
  expect_all_thread_counts_match(make_consensus_via_n_consensus({10}));
}

TEST(ParallelExplorer, TwoProcessConsensus) {
  expect_all_thread_counts_match(make_consensus_via_n_consensus({10, 20}));
}

TEST(ParallelExplorer, NondeterministicTwoSaBranching) {
  expect_all_thread_counts_match(make_ksa_via_two_sa({10, 20}));
}

TEST(ParallelExplorer, DacWithCycles) {
  expect_all_thread_counts_match(
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20}));
}

TEST(ParallelExplorer, ThreeProcessDac) {
  expect_all_thread_counts_match(
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30}));
}

TEST(ParallelExplorer, StrawDacFallback) {
  expect_all_thread_counts_match(
      std::make_shared<protocols::StrawDacFallbackProtocol>(
          std::vector<Value>{10, 20, 30}));
}

TEST(ParallelExplorer, FlagAugmentedGraph) {
  expect_all_thread_counts_match(
      make_consensus_via_n_consensus({10, 20}),
      [](std::int64_t flag, const sim::Step& step) -> std::int64_t {
        return step.pid == 1 ? 1 : flag;
      });
}

TEST(ParallelExplorer, AutoEngineDefaultsMatchSerial) {
  // Whatever kAuto resolves to on this machine, the output is canonical.
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30});
  Explorer explorer(protocol);
  const auto serial = explorer.explore({.engine = ExploreEngine::kSerial});
  const auto auto_graph = explorer.explore();
  ASSERT_TRUE(serial.is_ok());
  ASSERT_TRUE(auto_graph.is_ok());
  expect_identical(serial.value(), auto_graph.value(), "auto engine");
}

TEST(ParallelExplorer, NodeBudgetErrorWithoutTruncation) {
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30});
  Explorer explorer(protocol);
  const auto graph = explorer.explore(
      {.max_nodes = 5, .threads = 4, .engine = ExploreEngine::kParallel});
  ASSERT_FALSE(graph.is_ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParallelExplorer, TruncatedGraphIsConsistent) {
  // Truncated parallel prefixes are schedule-dependent (not bit-identical
  // to serial), but must still be internally consistent: truncated() set,
  // every edge in range, every node beyond the budget kept but unexpanded,
  // and every node replayable from the root.
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30});
  Explorer explorer(protocol);
  for (int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    const auto partial_or = explorer.explore({.max_nodes = 50,
                                              .allow_truncation = true,
                                              .threads = threads,
                                              .engine = ExploreEngine::kParallel});
    ASSERT_TRUE(partial_or.is_ok());
    const ConfigGraph& graph = partial_or.value();
    EXPECT_TRUE(graph.truncated());
    EXPECT_GT(graph.nodes().size(), 50u);  // kept nodes overshoot the budget
    for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
      for (const Edge& e : graph.edges()[id]) {
        ASSERT_LT(e.to, graph.nodes().size());
      }
      sim::Config config = sim::initial_config(*protocol);
      for (const sim::Step& step : graph.path_to(id)) {
        sim::apply_step(*protocol, &config, step.pid, step.outcome_choice);
      }
      EXPECT_EQ(config, graph.nodes()[id].config);
    }
  }
}

}  // namespace
}  // namespace lbsa::modelcheck
