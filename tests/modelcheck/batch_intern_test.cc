#include "modelcheck/batch_intern.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "base/arena.h"
#include "modelcheck/interning.h"

namespace lbsa::modelcheck {
namespace {

std::vector<std::int64_t> key_for(std::int64_t i) {
  // Multi-word keys with shared prefixes, to exercise full-key verification.
  return {i % 7, i % 13, i, i * 2654435761LL};
}

using Table = BatchInternTable<std::int64_t>;

TEST(BatchInternTable, AssignsDistinctIdsAndDetectsDuplicates) {
  auto table = std::make_unique<Table>();
  WordArena arena;
  Table::Tally tally;
  std::map<std::int64_t, std::uint32_t> ids;
  for (std::int64_t i = 0; i < 1000; ++i) {
    const auto key = key_for(i);
    const auto res = table->intern(key, i, &arena, &tally);
    EXPECT_TRUE(res.inserted);
    ids[i] = res.id;
  }
  EXPECT_EQ(table->size(), 1000u);
  EXPECT_EQ(tally.inserts, 1000u);
  for (std::int64_t i = 0; i < 1000; ++i) {
    const auto key = key_for(i);
    const auto res = table->intern(key, -1, &arena, &tally);
    EXPECT_FALSE(res.inserted);
    EXPECT_EQ(res.id, ids[i]);
    // The duplicate's payload (-1) was not moved in.
    EXPECT_EQ(table->payload(res.id), i);
    // Interned key words round-trip.
    const auto stored = table->key(res.id);
    EXPECT_TRUE(std::equal(key.begin(), key.end(), stored.begin(),
                           stored.end()));
  }
  EXPECT_EQ(table->size(), 1000u);
  EXPECT_EQ(tally.inserts, 1000u);
  std::set<std::uint32_t> distinct;
  for (const auto& [_, id] : ids) {
    EXPECT_LT(id, table->id_bound());
    distinct.insert(id);
  }
  EXPECT_EQ(distinct.size(), 1000u);
}

TEST(BatchInternTable, BatchedProbesMatchSingleKeyPath) {
  auto table = std::make_unique<Table>();
  WordArena arena;
  Table::Tally tally;
  // Two batches with an overlap: the second batch's overlapping candidates
  // must come back !inserted with the first batch's ids.
  auto run_batch = [&](std::int64_t begin, std::int64_t end) {
    std::vector<Table::Candidate> cands(static_cast<std::size_t>(end - begin));
    std::vector<std::vector<std::int64_t>> keys;
    for (std::int64_t i = begin; i < end; ++i) {
      keys.push_back(key_for(i));
      auto& c = cands[static_cast<std::size_t>(i - begin)];
      c.key = keys.back();
      c.hash = hash_words_128(c.key);
      c.payload = i;
    }
    std::vector<std::vector<Table::Candidate*>> buckets(Table::kShardCount);
    for (auto& c : cands) buckets[Table::shard_of(c.hash)].push_back(&c);
    for (std::uint32_t s = 0; s < Table::kShardCount; ++s) {
      if (!buckets[s].empty()) {
        table->intern_batch(s, buckets[s], &arena, &tally);
      }
    }
    std::map<std::int64_t, std::pair<std::uint32_t, bool>> out;
    for (std::size_t j = 0; j < cands.size(); ++j) {
      out[begin + static_cast<std::int64_t>(j)] = {cands[j].id,
                                                   cands[j].inserted};
    }
    return out;
  };
  const auto first = run_batch(0, 300);
  const auto second = run_batch(200, 500);
  for (const auto& [i, res] : first) EXPECT_TRUE(res.second) << i;
  for (const auto& [i, res] : second) {
    EXPECT_EQ(res.second, i >= 300) << i;
    if (i < 300) {
      EXPECT_EQ(res.first, first.at(i).first) << i;
    }
  }
  EXPECT_EQ(table->size(), 500u);
}

TEST(BatchInternTable, SeqNumbersInsertionsFromOne) {
  auto table = std::make_unique<Table>();
  WordArena arena;
  Table::Tally tally;
  std::set<std::uint64_t> seqs;
  for (std::int64_t i = 0; i < 100; ++i) {
    Table::Candidate c;
    const auto key = key_for(i);
    c.key = key;
    c.hash = hash_words_128(c.key);
    c.payload = i;
    Table::Candidate* p = &c;
    table->intern_batch(Table::shard_of(c.hash), {&p, 1}, &arena, &tally);
    ASSERT_TRUE(c.inserted);
    seqs.insert(c.seq);
  }
  // 1-based, dense, unique.
  EXPECT_EQ(seqs.size(), 100u);
  EXPECT_EQ(*seqs.begin(), 1u);
  EXPECT_EQ(*seqs.rbegin(), 100u);
}

// The high-contention hammer, and the growth-correctness gate: a tiny
// initial shard size forces several growth cycles mid-flight, and the final
// id SET must equal the mutex table's for the same key universe (both
// tables use the identical shard/probe-start/fingerprint routing, and ids
// are (local << 6) | shard with per-shard dense locals — schedule-dependent
// per key, equal as a set). Run under TSan (-DLBSA_SANITIZE=thread) this is
// the data-race gate for the batched table.
class BatchInternHammer : public ::testing::TestWithParam<int> {};

TEST_P(BatchInternHammer, ConcurrentBatchesMatchMutexTable) {
  const int threads = GetParam();
  constexpr std::int64_t kUniverse = 6000;
  constexpr std::size_t kBatch = 32;
  // 8 initial slots/shard: ~6000/64 ≈ 94 entries per shard means four-plus
  // doublings (8 -> 16 -> 32 -> 64 -> 128 -> 256) under load.
  auto table = std::make_unique<Table>(/*initial_slots_per_shard=*/8);

  std::vector<std::vector<std::pair<std::int64_t, std::uint32_t>>> seen(
      static_cast<std::size_t>(threads));
  // Per-worker arenas (as the explorer uses them), hoisted out of the
  // worker lambdas: interned keys live in the winning worker's arena, so
  // the arenas must outlive the table's last key() read below.
  std::vector<std::unique_ptr<WordArena>> arenas;
  for (int t = 0; t < threads; ++t) {
    arenas.push_back(std::make_unique<WordArena>());
  }
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      WordArena& arena = *arenas[static_cast<std::size_t>(t)];
      Table::Tally tally;
      auto& observations = seen[static_cast<std::size_t>(t)];
      std::vector<std::vector<std::int64_t>> keys(kBatch);
      std::vector<Table::Candidate> cands(kBatch);
      std::vector<std::vector<Table::Candidate*>> buckets(Table::kShardCount);
      // Each thread covers 3/4 of the universe, offset by its index, in
      // batches — most keys are contended by several threads. A single
      // thread covers everything itself (no peer fills the gap).
      const std::int64_t span = threads == 1 ? kUniverse : kUniverse * 3 / 4;
      for (std::int64_t step = 0; step < span; step += kBatch) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::int64_t>(kBatch, span - step));
        for (std::size_t j = 0; j < n; ++j) {
          const std::int64_t i =
              (step + static_cast<std::int64_t>(j) +
               t * kUniverse / threads) % kUniverse;
          keys[j] = key_for(i);
          cands[j] = Table::Candidate{};
          cands[j].key = keys[j];
          cands[j].hash = hash_words_128(cands[j].key);
          cands[j].payload = i;
        }
        for (auto& b : buckets) b.clear();
        for (std::size_t j = 0; j < n; ++j) {
          buckets[Table::shard_of(cands[j].hash)].push_back(&cands[j]);
        }
        for (std::uint32_t s = 0; s < Table::kShardCount; ++s) {
          if (!buckets[s].empty()) {
            table->intern_batch(s, buckets[s], &arena, &tally);
          }
        }
        // Record (key, id) observations only; payload()/key() reads wait
        // for quiescence (they are advertised quiescent-only).
        for (std::size_t j = 0; j < n; ++j) {
          observations.emplace_back(keys[j][2], cands[j].id);
        }
      }
    });
  }
  for (auto& t : pool) t.join();

  EXPECT_EQ(table->size(), static_cast<std::uint64_t>(kUniverse));
  EXPECT_GE(table->stats().growths, 4u * Table::kShardCount / 2);

  // Every observation of a key agrees on its id, across all threads.
  std::map<std::int64_t, std::uint32_t> winner;
  for (const auto& observations : seen) {
    for (const auto& [i, id] : observations) {
      const auto it = winner.emplace(i, id).first;
      EXPECT_EQ(it->second, id) << "key " << i << " saw two ids";
    }
  }
  EXPECT_EQ(winner.size(), static_cast<std::size_t>(kUniverse));

  // Payloads and keys landed intact.
  std::set<std::uint32_t> batched_ids;
  for (const auto& [i, id] : winner) {
    EXPECT_EQ(table->payload(id), i);
    const auto key = key_for(i);
    const auto stored = table->key(id);
    EXPECT_TRUE(
        std::equal(key.begin(), key.end(), stored.begin(), stored.end()));
    batched_ids.insert(id);
  }

  // Reference: the mutex table over the same universe assigns the same id
  // set (identical routing, per-shard dense locals).
  ShardedInternTable<std::int64_t> reference;
  std::set<std::uint32_t> reference_ids;
  for (std::int64_t i = 0; i < kUniverse; ++i) {
    reference_ids.insert(
        reference.intern(key_for(i), [&] { return i; }).id);
  }
  EXPECT_EQ(batched_ids, reference_ids);
}

INSTANTIATE_TEST_SUITE_P(Threads, BatchInternHammer,
                         ::testing::Values(1, 2, 8),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace lbsa::modelcheck
