// Shrinker tests: the central invariant is that a shrunk schedule still
// violates the SAME property as the raw finding under strict replay, and is
// substantially smaller (<= 10% of the raw length, or already tiny).
#include "modelcheck/shrink.h"

#include <gtest/gtest.h>

#include "modelcheck/corpus.h"
#include "modelcheck/fuzz.h"
#include "sim/trace.h"

namespace lbsa::modelcheck {
namespace {

// Replays `text` strictly and returns the property the final configuration
// violates under the task's judge ("" if clean).
std::string strict_replay_property(const NamedTask& task,
                                   const std::string& text) {
  auto schedule = sim::parse_schedule(text);
  EXPECT_TRUE(schedule.is_ok()) << schedule.status().to_string();
  if (!schedule.is_ok()) return "<parse error>";
  auto replayed = sim::replay_schedule(task.protocol, schedule.value());
  EXPECT_TRUE(replayed.is_ok()) << replayed.status().to_string();
  if (!replayed.is_ok()) return "<replay error>";
  return task.judge(replayed.value().config()).first;
}

TEST(Shrink, LenientRunRecordsStrictEffectiveSchedule) {
  auto task = make_named_task("dac3");
  ASSERT_TRUE(task.is_ok());
  // A deliberately messy schedule: out-of-range pid, a crash of an already
  // crashed process, an entry for the crashed process, bogus outcomes.
  std::vector<sim::ScriptedAdversary::Choice> messy = {
      {7, 0, false},         // dropped: no such process
      {0, 99, false},        // outcome clamped to 0 where invalid
      {1, 0, true},          // crash p1
      {1, 0, true},          // dropped: already crashed
      {1, 0, false}, {1, 0, false},  // dropped: p1 is crashed
      {2, 0, false}, {0, 0, false}, {2, 0, false},
  };
  const ReplayOutcome outcome =
      run_schedule_lenient(task.value().protocol, messy, task.value().judge);
  EXPECT_FALSE(outcome.violated());
  ASSERT_FALSE(outcome.effective.empty());
  // The effective schedule must replay strictly, step for step.
  auto replayed =
      sim::replay_schedule(task.value().protocol, outcome.effective);
  ASSERT_TRUE(replayed.is_ok()) << replayed.status().to_string();
  std::size_t steps = 0;
  for (const auto& choice : outcome.effective) {
    if (!choice.crash) ++steps;
  }
  EXPECT_EQ(replayed.value().history().size(), steps);
}

TEST(Shrink, LenientRunStopsAtFirstViolation) {
  auto task = make_named_task("strawdac3");
  ASSERT_TRUE(task.is_ok());
  // Find a violating run, then append junk: the lenient executor must stop
  // at the violation, so the junk never shows up in the effective schedule.
  FuzzOptions options;
  options.runs = 2000;
  options.max_violations = 1;
  options.shrink_violations = false;
  const FuzzReport report = fuzz_named_task(task.value(), options);
  ASSERT_FALSE(report.violations.empty());
  auto schedule = sim::parse_schedule(report.violations[0].schedule);
  ASSERT_TRUE(schedule.is_ok());

  auto padded = schedule.value();
  for (int i = 0; i < 50; ++i) padded.push_back({0, 0, false});
  const ReplayOutcome outcome = run_schedule_lenient(
      task.value().protocol, padded, task.value().judge);
  ASSERT_TRUE(outcome.violated());
  EXPECT_EQ(outcome.property, report.violations[0].property);
  EXPECT_LE(outcome.effective.size(), schedule.value().size());
}

TEST(Shrink, ShrunkScheduleViolatesSamePropertyAndIsSmall) {
  // The acceptance invariant, over every bundled broken task: shrink the
  // first raw finding and confirm (a) the same property under strict
  // replay, (b) shrunk <= 10% of raw or <= 32 steps.
  for (const std::string& name : named_task_names()) {
    auto task = make_named_task(name);
    ASSERT_TRUE(task.is_ok());
    if (!task.value().expect_violation) continue;
    SCOPED_TRACE(name);

    FuzzOptions options;
    options.runs = 5000;
    options.max_violations = 1;
    const FuzzReport report = fuzz_named_task(task.value(), options);
    ASSERT_FALSE(report.violations.empty()) << "fuzz found nothing";
    const FuzzViolation& v = report.violations[0];

    EXPECT_EQ(strict_replay_property(task.value(), v.schedule), v.property);
    EXPECT_EQ(strict_replay_property(task.value(), v.shrunk_schedule),
              v.property);
    EXPECT_LE(v.shrunk_steps, v.raw_steps);
    EXPECT_TRUE(v.shrunk_steps * 10 <= v.raw_steps || v.shrunk_steps <= 32)
        << "raw " << v.raw_steps << " -> shrunk " << v.shrunk_steps;
    EXPECT_GT(report.shrink_replays, 0u);
  }
}

TEST(Shrink, LongViolationShrinksDramatically) {
  // Start from a deliberately bloated violating schedule (a short finding
  // padded with hundreds of irrelevant interleaved steps) and require the
  // shrinker to strip essentially all of the padding.
  auto task = make_named_task("strawdac4");
  ASSERT_TRUE(task.is_ok());
  FuzzOptions options;
  options.runs = 5000;
  options.max_violations = 1;
  options.shrink_violations = false;
  const FuzzReport report = fuzz_named_task(task.value(), options);
  ASSERT_FALSE(report.violations.empty());
  auto core = sim::parse_schedule(report.violations[0].schedule);
  ASSERT_TRUE(core.is_ok());

  // Pad the front with steps the violation does not need (they are skipped
  // or harmless), plus crash entries of nonexistent processes.
  std::vector<sim::ScriptedAdversary::Choice> bloated;
  for (int i = 0; i < 400; ++i) bloated.push_back({9 + (i % 3), 0, true});
  for (const auto& choice : core.value()) bloated.push_back(choice);
  const ReplayOutcome raw = run_schedule_lenient(
      task.value().protocol, bloated, task.value().judge);
  ASSERT_TRUE(raw.violated());

  ShrinkStats stats;
  const auto shrunk =
      shrink_schedule(task.value().protocol, bloated, task.value().judge,
                      raw.property, {}, &stats);
  EXPECT_LT(shrunk.size(), core.value().size() + 1);
  EXPECT_LE(shrunk.size() * 2, bloated.size());
  EXPECT_GT(stats.replays, 0u);
  const ReplayOutcome check = run_schedule_lenient(
      task.value().protocol, shrunk, task.value().judge);
  EXPECT_EQ(check.property, raw.property);
  EXPECT_EQ(check.effective, shrunk);  // shrinker output is its own
                                       // effective schedule (strict-valid)
}

TEST(Shrink, DeterministicForEqualInputs) {
  auto task = make_named_task("strawdac3");
  ASSERT_TRUE(task.is_ok());
  FuzzOptions options;
  options.runs = 2000;
  options.max_violations = 1;
  options.shrink_violations = false;
  const FuzzReport report = fuzz_named_task(task.value(), options);
  ASSERT_FALSE(report.violations.empty());
  auto schedule = sim::parse_schedule(report.violations[0].schedule);
  ASSERT_TRUE(schedule.is_ok());
  const std::string property = report.violations[0].property;

  const auto a = shrink_schedule(task.value().protocol, schedule.value(),
                                 task.value().judge, property);
  const auto b = shrink_schedule(task.value().protocol, schedule.value(),
                                 task.value().judge, property);
  EXPECT_EQ(a, b);
}

TEST(Shrink, NonReproducingScheduleReturnedUnchanged) {
  auto task = make_named_task("dac3");
  ASSERT_TRUE(task.is_ok());
  const std::vector<sim::ScriptedAdversary::Choice> clean = {
      {0, 0, false}, {1, 0, false}, {2, 0, false}};
  // dac3 never violates agreement, so shrinking against "agreement" cannot
  // reproduce; the input must come back unchanged.
  const auto shrunk = shrink_schedule(task.value().protocol, clean,
                                      task.value().judge, "agreement");
  EXPECT_EQ(shrunk, clean);
}

TEST(Shrink, StatsObjectCanBeReusedAcrossCalls) {
  // Regression: shrink_schedule must reset a caller-provided ShrinkStats —
  // stale `rounds` from a previous call used to stop all later shrinking.
  auto task = make_named_task("strawdac3");
  ASSERT_TRUE(task.is_ok());
  FuzzOptions options;
  options.runs = 2000;
  options.max_violations = 1;
  options.shrink_violations = false;
  const FuzzReport report = fuzz_named_task(task.value(), options);
  ASSERT_FALSE(report.violations.empty());
  auto schedule = sim::parse_schedule(report.violations[0].schedule);
  ASSERT_TRUE(schedule.is_ok());
  const std::string property = report.violations[0].property;

  ShrinkStats stats;
  const auto first =
      shrink_schedule(task.value().protocol, schedule.value(),
                      task.value().judge, property, {}, &stats);
  const std::uint64_t first_replays = stats.replays;
  const auto second =
      shrink_schedule(task.value().protocol, schedule.value(),
                      task.value().judge, property, {}, &stats);
  EXPECT_EQ(first, second);
  EXPECT_EQ(stats.replays, first_replays);
}

TEST(Shrink, ReplayBudgetIsRespected) {
  auto task = make_named_task("strawdac5");
  ASSERT_TRUE(task.is_ok());
  FuzzOptions options;
  options.runs = 5000;
  options.max_violations = 1;
  options.shrink_violations = false;
  const FuzzReport report = fuzz_named_task(task.value(), options);
  ASSERT_FALSE(report.violations.empty());
  auto schedule = sim::parse_schedule(report.violations[0].schedule);
  ASSERT_TRUE(schedule.is_ok());

  ShrinkOptions tight;
  tight.max_replays = 10;
  ShrinkStats stats;
  shrink_schedule(task.value().protocol, schedule.value(), task.value().judge,
                  report.violations[0].property, tight, &stats);
  EXPECT_LE(stats.replays, 10u);
}

}  // namespace
}  // namespace lbsa::modelcheck
