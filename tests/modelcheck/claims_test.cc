// The numbered claims inside the proof of Theorem 4.2, mechanized on
// Algorithm 2 (a *correct* DAC solution — the claims' content is about the
// task, so any correct solution must exhibit them) with the proof's initial
// configuration: p has input 1, everyone else input 0.
#include <gtest/gtest.h>

#include "modelcheck/explorer.h"
#include "modelcheck/valence.h"
#include "protocols/dac_from_pac.h"

namespace lbsa::modelcheck {
namespace {

using protocols::DacFromPacProtocol;

struct Analyzed {
  std::shared_ptr<const sim::Protocol> protocol;
  ConfigGraph graph;
  std::unique_ptr<ValenceAnalyzer> analyzer;
};

Analyzed analyze_theorem_42_instance(int n_plus_1) {
  // Input vector of the Theorem 4.2 proof: p = process 0 has 1, rest 0.
  std::vector<Value> inputs(static_cast<size_t>(n_plus_1), 0);
  inputs[0] = 1;
  auto protocol = std::make_shared<DacFromPacProtocol>(inputs);
  Explorer explorer(protocol);
  auto graph = std::move(explorer.explore()).value();
  auto analyzer = std::make_unique<ValenceAnalyzer>(graph);
  return {protocol, std::move(graph), std::move(analyzer)};
}

// Maps a decision value to its valence bit.
std::uint64_t bit_of(const ValenceAnalyzer& analyzer, Value v) {
  for (size_t i = 0; i < analyzer.universe().size(); ++i) {
    if (analyzer.universe()[i] == v) return 1ULL << i;
  }
  return 0;
}

TEST(TheoremFourTwoClaims, Claim421_NoConfigIsBothZeroAndOneValent) {
  const Analyzed a = analyze_theorem_42_instance(3);
  for (std::uint32_t id = 0; id < a.graph.nodes().size(); ++id) {
    // "v-valent" = only v reachable; no configuration can be both — here:
    // the reachable-decision set is a single well-defined mask, and
    // univalence is its popcount being 1, so the claim is that the
    // *decisions actually made* in any config agree with the mask.
    for (const sim::ProcessState& ps : a.graph.nodes()[id].config.procs) {
      if (ps.decided()) {
        EXPECT_TRUE(a.analyzer->reachable_mask(id) &
                    bit_of(*a.analyzer, ps.decision));
      }
    }
  }
}

TEST(TheoremFourTwoClaims, Claim422_ConfigsWherePAbortedAreZeroValent) {
  // Claim 4.2.2: if p aborts in C, then C is 0-valent (p was the only
  // process with input 1; a decision of 1 would violate Validity).
  for (int n_plus_1 : {2, 3, 4}) {
    const Analyzed a = analyze_theorem_42_instance(n_plus_1);
    const std::uint64_t one_bit = bit_of(*a.analyzer, 1);
    int aborted_configs = 0;
    for (std::uint32_t id = 0; id < a.graph.nodes().size(); ++id) {
      if (!a.graph.nodes()[id].config.procs[0].aborted()) continue;
      ++aborted_configs;
      EXPECT_EQ(a.analyzer->reachable_mask(id) & one_bit, 0u)
          << "config " << id << " (p aborted) can still reach decision 1";
    }
    EXPECT_GT(aborted_configs, 0) << "n+1=" << n_plus_1;
  }
}

TEST(TheoremFourTwoClaims, Claim423_TerminalPConfigsAreUnivalent) {
  // Observation 4.2.3: once p has aborted or decided, the configuration is
  // univalent.
  const Analyzed a = analyze_theorem_42_instance(3);
  for (std::uint32_t id = 0; id < a.graph.nodes().size(); ++id) {
    const auto& p_state = a.graph.nodes()[id].config.procs[0];
    if (p_state.aborted() || p_state.decided()) {
      EXPECT_LE(a.analyzer->reachable_count(id), 1) << "config " << id;
    }
  }
}

TEST(TheoremFourTwoClaims, Claim424_InitialConfigIsBivalent) {
  // Claim 4.2.4: I is bivalent — p running solo decides its own input 1,
  // any q running solo decides 0.
  for (int n_plus_1 : {2, 3, 4}) {
    const Analyzed a = analyze_theorem_42_instance(n_plus_1);
    EXPECT_TRUE(a.analyzer->is_multivalent(a.graph.root()))
        << "n+1=" << n_plus_1;
    ASSERT_EQ(a.analyzer->universe().size(), 2u);
  }
}

TEST(TheoremFourTwoClaims, ValenceFlipsOnlyThroughTheSharedObject) {
  // The engine behind Claims 4.2.7-4.2.10: whenever two successor
  // configurations of one node have OPPOSITE (univalent) valences, the two
  // steps that produced them touched the same shared object. Scan every
  // such sibling pair in the full graph.
  const Analyzed a = analyze_theorem_42_instance(3);
  int sibling_pairs = 0;
  for (std::uint32_t id = 0; id < a.graph.nodes().size(); ++id) {
    const auto& edges = a.graph.edges()[id];
    for (size_t i = 0; i < edges.size(); ++i) {
      for (size_t j = i + 1; j < edges.size(); ++j) {
        if (!a.analyzer->is_univalent(edges[i].to) ||
            !a.analyzer->is_univalent(edges[j].to)) {
          continue;
        }
        if (a.analyzer->univalent_value(edges[i].to) ==
            a.analyzer->univalent_value(edges[j].to)) {
          continue;
        }
        ++sibling_pairs;
        // Both steps must be invokes (decide/abort steps cannot flip the
        // valence of the *other* branch)...
        EXPECT_EQ(edges[i].kind, sim::Action::Kind::kInvoke);
        EXPECT_EQ(edges[j].kind, sim::Action::Kind::kInvoke);
        // ...and on the same object. Algorithm 2 has a single object, so
        // this holds trivially here; the assertion is the generic shape.
        const auto& config = a.graph.nodes()[id].config;
        const auto action_i = a.protocol->next_action(
            edges[i].pid, config.procs[static_cast<size_t>(edges[i].pid)]);
        const auto action_j = a.protocol->next_action(
            edges[j].pid, config.procs[static_cast<size_t>(edges[j].pid)]);
        EXPECT_EQ(action_i.object_index, action_j.object_index);
      }
    }
  }
  EXPECT_GT(sibling_pairs, 0);
}

}  // namespace
}  // namespace lbsa::modelcheck
