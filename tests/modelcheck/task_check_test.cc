// Task-checker tests, covering both directions:
//   * positive (E2, E4, E5): Algorithm 2 solves n-DAC for all schedules;
//     one-shot consensus via n-consensus / (n,m)-PAC passes all properties;
//   * negative (E3): the straw-man DAC candidates built from n-consensus +
//     registers + 2-SA fail exactly as Theorem 4.2 predicts, and the FLP
//     race fails termination.
#include "modelcheck/task_check.h"

#include <gtest/gtest.h>

#include "protocols/dac_from_pac.h"
#include "protocols/flp_race.h"
#include "protocols/group_ksa.h"
#include "protocols/one_shot.h"
#include "protocols/straw_dac.h"
#include "protocols/straw_dac_oprime.h"
#include "protocols/straw_nm_consensus.h"
#include "spec/ksa_type.h"

namespace lbsa::modelcheck {
namespace {

using protocols::DacFromPacProtocol;
using protocols::FlpRaceProtocol;
using protocols::GroupKsaProtocol;
using protocols::StrawDacAnnounceProtocol;
using protocols::StrawDacFallbackProtocol;
using protocols::make_consensus_via_n_consensus;
using protocols::make_consensus_via_nm_pac;
using protocols::make_ksa_via_oprime;
using protocols::make_ksa_via_two_sa;

std::vector<Value> iota_inputs(int n) {
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
  return inputs;
}

// ----------------------------- positive checks -----------------------------

TEST(TaskCheck, ConsensusViaNConsensusPasses) {
  for (int n = 1; n <= 4; ++n) {
    auto report_or =
        check_consensus_task(make_consensus_via_n_consensus(iota_inputs(n)),
                             iota_inputs(n));
    ASSERT_TRUE(report_or.is_ok());
    EXPECT_TRUE(report_or.value().ok())
        << "n=" << n << "\n"
        << report_or.value().to_string();
  }
}

TEST(TaskCheck, ConsensusViaNmPacPasses) {
  // Observation 5.1(c) / positive half of Theorem 5.3: (n,m)-PAC solves
  // m-consensus.
  for (const auto& [n, m] : {std::pair{3, 2}, std::pair{4, 3},
                             std::pair{2, 2}}) {
    auto report_or = check_consensus_task(
        make_consensus_via_nm_pac(n, m, iota_inputs(m)), iota_inputs(m));
    ASSERT_TRUE(report_or.is_ok());
    EXPECT_TRUE(report_or.value().ok())
        << "(n,m)=(" << n << "," << m << ")\n"
        << report_or.value().to_string();
  }
}

TEST(TaskCheck, KsaViaTwoSaPasses) {
  // 2-SA solves 2-set agreement among any number of processes (here 2..4,
  // exhaustively over all schedules and all nondeterministic responses).
  for (int n = 2; n <= 4; ++n) {
    auto report_or = check_k_agreement_task(
        make_ksa_via_two_sa(iota_inputs(n)), 2, iota_inputs(n));
    ASSERT_TRUE(report_or.is_ok());
    EXPECT_TRUE(report_or.value().ok())
        << "n=" << n << "\n"
        << report_or.value().to_string();
  }
}

TEST(TaskCheck, TwoSaDoesNotSolveConsensusAmongTwo) {
  // The same protocol checked against k=1 fails agreement: the 2-SA object
  // may return different members to the two proposers.
  auto report_or = check_k_agreement_task(make_ksa_via_two_sa(iota_inputs(2)),
                                          1, iota_inputs(2));
  ASSERT_TRUE(report_or.is_ok());
  EXPECT_FALSE(report_or.value().ok());
  EXPECT_TRUE(report_or.value().violates("agreement"));
}

TEST(TaskCheck, GroupKsaPasses) {
  // k-set agreement among k*m processes from k m-consensus objects
  // (Chaudhuri-Reiners partition protocol) — the lower-bound construction
  // behind every set-agreement-power entry.
  for (const auto& [k, m] : {std::pair{2, 2}, std::pair{3, 1},
                             std::pair{2, 1}}) {
    const auto inputs = iota_inputs(k * m);
    auto protocol = std::make_shared<GroupKsaProtocol>(k, m, inputs);
    auto report_or = check_k_agreement_task(protocol, k, inputs);
    ASSERT_TRUE(report_or.is_ok());
    EXPECT_TRUE(report_or.value().ok())
        << "(k,m)=(" << k << "," << m << ")\n"
        << report_or.value().to_string();
  }
}

TEST(TaskCheck, GroupKsaIsTightAtKMinusOne) {
  // The same protocol does NOT solve (k-1)-set agreement: groups decide
  // independent values.
  const auto inputs = iota_inputs(4);
  auto protocol = std::make_shared<GroupKsaProtocol>(2, 2, inputs);
  auto report_or = check_k_agreement_task(protocol, 1, inputs);
  ASSERT_TRUE(report_or.is_ok());
  EXPECT_TRUE(report_or.value().violates("agreement"));
}

TEST(TaskCheck, KsaViaOPrimePasses) {
  // O' bundle: level k solves k-set agreement among n_k processes. Here
  // n = (2, ∞): level 1 = 2-consensus, level 2 = 2-SA.
  auto report_or = check_k_agreement_task(
      make_ksa_via_oprime({2, spec::kUnboundedPorts}, 2, iota_inputs(3)), 2,
      iota_inputs(3));
  ASSERT_TRUE(report_or.is_ok());
  EXPECT_TRUE(report_or.value().ok()) << report_or.value().to_string();

  auto report1_or = check_consensus_task(
      make_ksa_via_oprime({2, spec::kUnboundedPorts}, 1, iota_inputs(2)),
      iota_inputs(2));
  ASSERT_TRUE(report1_or.is_ok());
  EXPECT_TRUE(report1_or.value().ok()) << report1_or.value().to_string();
}

class DacExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(DacExhaustive, AlgorithmTwoSolvesNDac) {
  // Theorem 4.1, machine-checked over all schedules: Algorithm 2 on one
  // n-PAC object satisfies every n-DAC property.
  const int n = GetParam();
  const auto inputs = iota_inputs(n);
  auto protocol = std::make_shared<DacFromPacProtocol>(inputs);
  auto report_or = check_dac_task(protocol, /*distinguished_pid=*/0, inputs);
  ASSERT_TRUE(report_or.is_ok());
  EXPECT_TRUE(report_or.value().ok()) << report_or.value().to_string();
}

INSTANTIATE_TEST_SUITE_P(Sizes, DacExhaustive, ::testing::Values(2, 3, 4));

TEST(TaskCheck, AlgorithmTwoWithOtherDistinguishedPid) {
  // The distinguished process need not be pid 0.
  const auto inputs = iota_inputs(3);
  auto protocol =
      std::make_shared<DacFromPacProtocol>(inputs, /*distinguished_pid=*/2);
  auto report_or = check_dac_task(protocol, 2, inputs);
  ASSERT_TRUE(report_or.is_ok());
  EXPECT_TRUE(report_or.value().ok()) << report_or.value().to_string();
}

TEST(TaskCheck, BinaryInputsDac) {
  // The paper states n-DAC with *binary* inputs; check 0/1 inputs including
  // the Theorem 4.2 initial configuration (p has 1, everyone else 0).
  const std::vector<Value> inputs{1, 0, 0};
  auto protocol = std::make_shared<DacFromPacProtocol>(inputs);
  auto report_or = check_dac_task(protocol, 0, inputs);
  ASSERT_TRUE(report_or.is_ok());
  EXPECT_TRUE(report_or.value().ok()) << report_or.value().to_string();
}

// ----------------------------- negative checks -----------------------------

TEST(TaskCheck, StrawDacFallbackViolatesAgreement) {
  const auto inputs = iota_inputs(3);  // n = 2, n+1 = 3 processes
  auto protocol = std::make_shared<StrawDacFallbackProtocol>(inputs);
  auto report_or = check_dac_task(protocol, 0, inputs);
  ASSERT_TRUE(report_or.is_ok());
  EXPECT_FALSE(report_or.value().ok());
  EXPECT_TRUE(report_or.value().violates("agreement"))
      << report_or.value().to_string();
}

TEST(TaskCheck, StrawDacAnnounceViolatesTermination) {
  const auto inputs = iota_inputs(3);
  auto protocol = std::make_shared<StrawDacAnnounceProtocol>(inputs);
  auto report_or = check_dac_task(protocol, 0, inputs);
  ASSERT_TRUE(report_or.is_ok());
  EXPECT_FALSE(report_or.value().ok());
  // The ⊥-receiver spinning on the announce register violates solo
  // termination — for p it is Termination(a), for q Termination(b).
  EXPECT_TRUE(report_or.value().violates("termination(a)") ||
              report_or.value().violates("termination(b)"))
      << report_or.value().to_string();
}

TEST(TaskCheck, StrawDacViaOPrimeViolatesAgreement) {
  // Theorem 6.5's predicted failure mode: driving (n+1)-DAC through an
  // actual O'_n object breaks agreement when the overflow proposer falls
  // back to the level-2 set-agreement member.
  const auto inputs = iota_inputs(3);  // n = 2
  auto protocol =
      std::make_shared<protocols::StrawDacOPrimeProtocol>(inputs);
  auto report_or = check_dac_task(protocol, 0, inputs);
  ASSERT_TRUE(report_or.is_ok());
  EXPECT_FALSE(report_or.value().ok());
  EXPECT_TRUE(report_or.value().violates("agreement"))
      << report_or.value().to_string();
}

TEST(TaskCheck, StrawNmConsensusViolatesAgreement) {
  // Theorem 5.2's predicted failure mode on the natural (m+1)-consensus
  // candidate over one (n,m)-PAC: the ⊥-receiver's PAC fallback decides its
  // own value against the PROPOSEC winner.
  const auto inputs = iota_inputs(3);  // m = 2, m+1 = 3 processes
  auto protocol =
      std::make_shared<protocols::StrawNmConsensusProtocol>(inputs, 3);
  auto report_or = check_consensus_task(protocol, inputs);
  ASSERT_TRUE(report_or.is_ok());
  EXPECT_FALSE(report_or.value().ok());
  EXPECT_TRUE(report_or.value().violates("agreement"))
      << report_or.value().to_string();
}

TEST(TaskCheck, FlpRaceViolatesTermination) {
  auto protocol = std::make_shared<FlpRaceProtocol>(5, 3);
  auto report_or = check_consensus_task(protocol, {5, 3});
  ASSERT_TRUE(report_or.is_ok());
  EXPECT_FALSE(report_or.value().ok());
  EXPECT_TRUE(report_or.value().violates("termination"))
      << report_or.value().to_string();
}

TEST(TaskCheck, ViolationReportCarriesTrace) {
  auto protocol = std::make_shared<StrawDacFallbackProtocol>(iota_inputs(3));
  auto report_or = check_dac_task(protocol, 0, iota_inputs(3));
  ASSERT_TRUE(report_or.is_ok());
  ASSERT_FALSE(report_or.value().ok());
  const auto& violation = report_or.value().violations.front();
  EXPECT_FALSE(violation.trace.empty());
  EXPECT_NE(report_or.value().to_string().find("VIOLATION"),
            std::string::npos);
}

TEST(TaskCheck, BudgetExhaustionSurfacesAsStatus) {
  auto protocol = std::make_shared<DacFromPacProtocol>(iota_inputs(3));
  TaskCheckOptions options;
  options.explore.max_nodes = 3;
  auto report_or = check_dac_task(protocol, 0, iota_inputs(3), options);
  EXPECT_FALSE(report_or.is_ok());
  EXPECT_EQ(report_or.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace lbsa::modelcheck
