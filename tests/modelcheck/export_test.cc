#include "modelcheck/export.h"

#include <gtest/gtest.h>

#include "protocols/one_shot.h"

namespace lbsa::modelcheck {
namespace {

using protocols::make_consensus_via_n_consensus;

struct Prepared {
  std::shared_ptr<const sim::Protocol> protocol;
  ConfigGraph graph;
};

Prepared prepare() {
  auto protocol = make_consensus_via_n_consensus({0, 1});
  Explorer explorer(protocol);
  auto graph = std::move(explorer.explore()).value();
  return {protocol, std::move(graph)};
}

TEST(DotExport, ContainsAllNodesAndEdges) {
  Prepared p = prepare();
  const std::string dot = to_dot(*p.protocol, p.graph, nullptr);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (std::uint32_t id = 0; id < p.graph.nodes().size(); ++id) {
    EXPECT_NE(dot.find("n" + std::to_string(id) + " ["), std::string::npos);
  }
  // Edge count matches.
  std::size_t arrows = 0, pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++arrows;
    pos += 4;
  }
  EXPECT_EQ(arrows, p.graph.transition_count());
}

TEST(DotExport, ValenceColoringMarksRootAndCritical) {
  Prepared p = prepare();
  ValenceAnalyzer analyzer(p.graph);
  const std::string dot = to_dot(*p.protocol, p.graph, &analyzer);
  // Root is the bivalent critical config: double circle + amber + bold.
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("#f28e2b"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=3"), std::string::npos);
}

TEST(DotExport, ElidesOversizedGraphs) {
  Prepared p = prepare();
  DotOptions options;
  options.max_nodes = 3;
  const std::string dot = to_dot(*p.protocol, p.graph, nullptr, options);
  EXPECT_NE(dot.find("more configurations"), std::string::npos);
  EXPECT_EQ(dot.find("n5 ["), std::string::npos);
}

TEST(DotExport, EscapesQuotesInNames) {
  Prepared p = prepare();
  const std::string dot = to_dot(*p.protocol, p.graph, nullptr);
  // The digraph line must be well-formed (name quoted once).
  EXPECT_EQ(dot.find("digraph \""), 0u);
}

}  // namespace
}  // namespace lbsa::modelcheck
