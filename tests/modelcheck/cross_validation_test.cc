// Cross-validation between the two execution engines: every configuration a
// seeded adversarial Simulation visits must appear in the Explorer's
// exhaustive graph, and replaying any explored path through the Simulation
// reproduces the graph's node. Catching a divergence here would mean the
// two implementations of the step semantics disagree — the strongest
// internal consistency check the library has.
#include <gtest/gtest.h>

#include <set>

#include "modelcheck/explorer.h"
#include "protocols/dac_from_pac.h"
#include "protocols/one_shot.h"
#include "sim/simulation.h"

namespace lbsa::modelcheck {
namespace {

using protocols::DacFromPacProtocol;
using protocols::make_ksa_via_two_sa;

TEST(CrossValidation, SimulatedRunsStayInsideExploredGraph) {
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30});
  Explorer explorer(protocol);
  auto graph = std::move(explorer.explore()).value();

  std::set<std::vector<std::int64_t>> known;
  for (const Node& node : graph.nodes()) {
    known.insert(node.config.encode());
  }

  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    sim::Simulation simulation(protocol);
    sim::RandomAdversary adversary(seed);
    ASSERT_TRUE(known.contains(simulation.config().encode()));
    for (int step = 0; step < 200 && !simulation.config().halted(); ++step) {
      const int pid =
          adversary.pick_process(simulation.config(), static_cast<std::uint64_t>(step));
      if (pid == sim::Adversary::kStop) break;
      const int outcomes =
          sim::outcome_count(*protocol, simulation.config(), pid);
      simulation.step(pid, adversary.pick_outcome(outcomes, 0));
      ASSERT_TRUE(known.contains(simulation.config().encode()))
          << "seed " << seed << " step " << step;
    }
  }
}

TEST(CrossValidation, NondeterministicObjectRunsStayInsideGraph) {
  auto protocol = make_ksa_via_two_sa({10, 20, 30});
  Explorer explorer(protocol);
  auto graph = std::move(explorer.explore()).value();
  std::set<std::vector<std::int64_t>> known;
  for (const Node& node : graph.nodes()) {
    known.insert(node.config.encode());
  }
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    sim::Simulation simulation(protocol);
    sim::RandomAdversary adversary(seed);
    simulation.run(&adversary, {.max_steps = 100});
    ASSERT_TRUE(known.contains(simulation.config().encode())) << seed;
  }
}

TEST(CrossValidation, EveryGraphPathReplaysInSimulation) {
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20});
  Explorer explorer(protocol);
  auto graph = std::move(explorer.explore()).value();
  for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
    sim::Simulation simulation(protocol);
    for (const sim::Step& step : graph.path_to(id)) {
      simulation.step(step.pid, step.outcome_choice);
    }
    ASSERT_EQ(simulation.config(), graph.nodes()[id].config) << "node " << id;
  }
}

TEST(CrossValidation, GraphEdgeCountsMatchOutcomeCounts) {
  auto protocol = make_ksa_via_two_sa({10, 20});
  Explorer explorer(protocol);
  auto graph = std::move(explorer.explore()).value();
  for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
    const sim::Config& config = graph.nodes()[id].config;
    std::size_t expected = 0;
    for (int pid = 0; pid < protocol->process_count(); ++pid) {
      if (config.enabled(pid)) {
        expected += static_cast<std::size_t>(
            sim::outcome_count(*protocol, config, pid));
      }
    }
    EXPECT_EQ(graph.edges()[id].size(), expected) << "node " << id;
  }
}

}  // namespace
}  // namespace lbsa::modelcheck
