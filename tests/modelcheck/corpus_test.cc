// Corpus replay: every checked-in fuzz finding under tests/corpus/ must
// keep violating its recorded property under strict replay, forever. A
// failure here means a protocol or simulator change silently altered the
// semantics a past counterexample depended on.
//
// LBSA_CORPUS_DIR is injected by tests/modelcheck/CMakeLists.txt and points
// at the source tree's tests/corpus directory.
#include "modelcheck/corpus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "modelcheck/fuzz.h"
#include "sim/trace.h"

namespace lbsa::modelcheck {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(LBSA_CORPUS_DIR)) {
    if (entry.path().extension() == ".corpus") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Corpus, HasAtLeastFiveCases) {
  EXPECT_GE(corpus_files().size(), 5u)
      << "regression corpus shrank below the documented minimum "
         "(tests/corpus/, see docs/checking.md)";
}

TEST(Corpus, EveryCaseParsesReplaysAndViolates) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    auto parsed = parse_corpus_case(slurp(path));
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
    EXPECT_FALSE(parsed.value().detail.empty())
        << "corpus files should record provenance in '# detail:'";
    const Status replayed = replay_corpus_case(parsed.value());
    EXPECT_TRUE(replayed.is_ok()) << replayed.to_string();
  }
}

TEST(Corpus, CasesAreShrunk) {
  // Checked-in schedules are minimized findings; keep them small enough to
  // eyeball (the shrinker invariant allows <= 32 steps in the worst case).
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    auto parsed = parse_corpus_case(slurp(path));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_LE(parsed.value().schedule.size(), 32u);
  }
}

TEST(Corpus, SerializationRoundTrips) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    auto parsed = parse_corpus_case(slurp(path));
    ASSERT_TRUE(parsed.is_ok());
    auto reparsed = parse_corpus_case(corpus_case_to_string(parsed.value()));
    ASSERT_TRUE(reparsed.is_ok()) << reparsed.status().to_string();
    EXPECT_EQ(reparsed.value().task, parsed.value().task);
    EXPECT_EQ(reparsed.value().property, parsed.value().property);
    EXPECT_EQ(reparsed.value().schedule, parsed.value().schedule);
  }
}

TEST(Corpus, ParserRejectsHeaderlessAndEmptyCases) {
  EXPECT_FALSE(parse_corpus_case("0\n1\n").is_ok());  // no headers
  EXPECT_FALSE(
      parse_corpus_case("# task: strawdac3\n0\n").is_ok());  // no property
  EXPECT_FALSE(
      parse_corpus_case("# task: strawdac3\n# property: agreement\n")
          .is_ok());  // no schedule
}

TEST(Corpus, ReplayRejectsWrongProperty) {
  // A schedule that replays cleanly must not satisfy a violation claim.
  CorpusCase c;
  c.task = "dac3";
  c.property = "agreement";
  c.schedule = {{0, 0, false}, {1, 0, false}};
  const Status status = replay_corpus_case(c);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(Corpus, ReplayRejectsUnknownTask) {
  CorpusCase c;
  c.task = "no-such-task";
  c.property = "agreement";
  c.schedule = {{0, 0, false}};
  EXPECT_EQ(replay_corpus_case(c).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace lbsa::modelcheck
