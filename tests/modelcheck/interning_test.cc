#include "modelcheck/interning.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <vector>

namespace lbsa::modelcheck {
namespace {

std::vector<std::int64_t> key_for(std::int64_t i) {
  // Multi-word keys with shared prefixes, to exercise full-key verification.
  return {i % 7, i % 13, i, i * 2654435761LL};
}

TEST(ShardedInternTable, AssignsDistinctIdsAndDetectsDuplicates) {
  ShardedInternTable<std::int64_t> table;
  std::map<std::int64_t, std::uint32_t> ids;
  for (std::int64_t i = 0; i < 1000; ++i) {
    const auto key = key_for(i);
    const auto res = table.intern(key, [&] { return i; });
    EXPECT_TRUE(res.inserted);
    ids[i] = res.id;
  }
  EXPECT_EQ(table.size(), 1000u);
  // Re-interning returns the original id, does not insert, and never calls
  // the payload factory.
  for (std::int64_t i = 0; i < 1000; ++i) {
    const auto key = key_for(i);
    const auto res = table.intern(key, [&]() -> std::int64_t {
      ADD_FAILURE() << "payload factory called for existing key " << i;
      return -1;
    });
    EXPECT_FALSE(res.inserted);
    EXPECT_EQ(res.id, ids[i]);
    EXPECT_EQ(table.payload(res.id), i);
  }
  EXPECT_EQ(table.size(), 1000u);
  // Ids are unique and below id_bound().
  std::set<std::uint32_t> distinct;
  for (const auto& [_, id] : ids) {
    EXPECT_LT(id, table.id_bound());
    distinct.insert(id);
  }
  EXPECT_EQ(distinct.size(), 1000u);
}

TEST(ShardedInternTable, EmptyAndSingleWordKeys) {
  ShardedInternTable<int> table;
  const std::vector<std::int64_t> empty;
  const std::vector<std::int64_t> zero{0};
  const auto a = table.intern(empty, [] { return 1; });
  const auto b = table.intern(zero, [] { return 2; });
  EXPECT_TRUE(a.inserted);
  EXPECT_TRUE(b.inserted);
  EXPECT_NE(a.id, b.id);  // length is part of the key
  EXPECT_FALSE(table.intern(empty, [] { return 3; }).inserted);
  EXPECT_EQ(table.payload(a.id), 1);
  EXPECT_EQ(table.payload(b.id), 2);
}

TEST(ShardedInternTable, ConcurrentInterningIsLinearizable) {
  // T threads intern overlapping slices of one key universe; exactly one
  // insert must win per key, every thread must observe the winner's id,
  // and the final table must hold each key exactly once. Run under TSan
  // (-DLBSA_SANITIZE=thread) this is the data-race gate for the table.
  constexpr int kThreads = 8;
  constexpr std::int64_t kUniverse = 4000;
  ShardedInternTable<std::int64_t> table;
  std::vector<std::vector<std::pair<std::int64_t, std::uint32_t>>> seen(
      kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      // Each thread covers 3/4 of the universe, offset by its index, so
      // most keys are contended by several threads.
      for (std::int64_t step = 0; step < kUniverse * 3 / 4; ++step) {
        const std::int64_t i = (step + t * kUniverse / kThreads) % kUniverse;
        const auto key = key_for(i);
        const auto res = table.intern(key, [&] { return i; });
        seen[static_cast<std::size_t>(t)].emplace_back(i, res.id);
      }
    });
  }
  for (auto& t : pool) t.join();

  EXPECT_EQ(table.size(), static_cast<std::uint64_t>(kUniverse));
  // Every observation of a key agrees on its id, across all threads.
  std::map<std::int64_t, std::uint32_t> winner;
  for (const auto& observations : seen) {
    for (const auto& [i, id] : observations) {
      const auto it = winner.emplace(i, id).first;
      EXPECT_EQ(it->second, id) << "key " << i << " saw two ids";
    }
  }
  EXPECT_EQ(winner.size(), static_cast<std::size_t>(kUniverse));
  // Payloads landed intact and ids are mutually distinct.
  std::set<std::uint32_t> distinct;
  for (const auto& [i, id] : winner) {
    EXPECT_EQ(table.payload(id), i);
    distinct.insert(id);
  }
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kUniverse));
}

}  // namespace
}  // namespace lbsa::modelcheck
