// Certified quotient equivalence for the state-space reduction layer
// (ExploreOptions::reduction): on every small-enough corpus task and every
// reduction mode,
//   * complete reduced graphs are bit-identical across engines and thread
//     counts (the canonical-graph contract survives reduction),
//   * under pure symmetry the orbit sizes divide the full graph out exactly
//     (sum of orbit sizes == full node count, node for node),
//   * valence verdicts (decision universe, root reachable set) match the
//     full graph, and symmetry-weighted multivalent/critical counts recover
//     the full-graph counts,
//   * task verdicts (the SET of violated properties) are identical for all
//     four modes, serial and parallel,
//   * counterexample paths lift to concrete replayable executions of the
//     unreduced protocol (path_to composes discovery permutations), and
//     mutants stay flagged under every mode.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "modelcheck/corpus.h"
#include "modelcheck/explorer.h"
#include "modelcheck/task_check.h"
#include "modelcheck/valence.h"
#include "sim/config.h"
#include "sim/symmetry.h"

namespace lbsa::modelcheck {
namespace {

constexpr Reduction kAllModes[] = {Reduction::kNone, Reduction::kSymmetry,
                                   Reduction::kPor, Reduction::kBoth};

// Tasks small enough to explore exhaustively many times in a test.
const char* kGraphTasks[] = {"dac3-sym", "dac4-sym", "consensus4-sym",
                             "mutant-dac-no-adopt3-sym", "strawdac3"};

NamedTask get_task(const std::string& name) {
  auto task = make_named_task(name);
  EXPECT_TRUE(task.is_ok()) << task.status().to_string();
  return task.value();
}

ConfigGraph explore_or_die(const NamedTask& task, Reduction reduction,
                           ExploreEngine engine = ExploreEngine::kSerial,
                           int threads = 1) {
  Explorer explorer(task.protocol);
  auto graph = explorer.explore({.threads = threads,
                                 .engine = engine,
                                 .reduction = reduction});
  EXPECT_TRUE(graph.is_ok()) << graph.status().to_string();
  return std::move(graph).value();
}

void expect_identical(const ConfigGraph& a, const ConfigGraph& b) {
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  EXPECT_EQ(a.transition_count(), b.transition_count());
  for (std::uint32_t id = 0; id < a.nodes().size(); ++id) {
    ASSERT_TRUE(a.nodes()[id].config == b.nodes()[id].config)
        << "config mismatch at node " << id;
    EXPECT_EQ(a.nodes()[id].flag, b.nodes()[id].flag);
    EXPECT_EQ(a.nodes()[id].depth, b.nodes()[id].depth);
    ASSERT_EQ(a.edges()[id], b.edges()[id]) << "edges mismatch at " << id;
    EXPECT_EQ(a.path_to(id), b.path_to(id)) << "path mismatch at " << id;
  }
}

TEST(Reduction, ParseAndNames) {
  for (Reduction r : kAllModes) {
    const auto parsed = parse_reduction(reduction_name(r));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), r);
  }
  EXPECT_EQ(parse_reduction("sym").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Reduction, ReducedGraphsBitIdenticalAcrossEnginesAndThreads) {
  for (const char* name : kGraphTasks) {
    SCOPED_TRACE(name);
    const NamedTask task = get_task(name);
    for (Reduction reduction : kAllModes) {
      SCOPED_TRACE(reduction_name(reduction));
      const ConfigGraph serial = explore_or_die(task, reduction);
      EXPECT_EQ(serial.reduction(), reduction);
      for (int threads : {1, 2, 8}) {
        SCOPED_TRACE(threads);
        const ConfigGraph parallel = explore_or_die(
            task, reduction, ExploreEngine::kParallel, threads);
        expect_identical(serial, parallel);
      }
    }
  }
}

TEST(Reduction, SymmetryOrbitSumsRecoverFullNodeCount) {
  for (const char* name : kGraphTasks) {
    SCOPED_TRACE(name);
    const NamedTask task = get_task(name);
    const ConfigGraph full = explore_or_die(task, Reduction::kNone);
    const ConfigGraph reduced = explore_or_die(task, Reduction::kSymmetry);
    EXPECT_LE(reduced.nodes().size(), full.nodes().size());
    // Node for node, the representatives' orbits partition the full graph.
    EXPECT_EQ(reduced.full_node_estimate(), full.nodes().size());
    if (const auto& canon = reduced.canonicalizer(); canon != nullptr) {
      std::uint64_t sum = 0;
      for (const Node& node : reduced.nodes()) {
        sum += canon->orbit_size(node.config);
      }
      EXPECT_EQ(sum, full.nodes().size());
      EXPECT_GT(canon->group_size(), 1u);
    } else {
      // Trivial declared symmetry: the "reduction" is the identity.
      EXPECT_EQ(reduced.nodes().size(), full.nodes().size());
    }
  }
}

std::set<Value> mask_to_values(std::uint64_t mask,
                               const std::vector<Value>& universe) {
  std::set<Value> values;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    if (mask & (1ULL << i)) values.insert(universe[i]);
  }
  return values;
}

TEST(Reduction, ValenceUniverseAndRootReachableSetPreserved) {
  for (const char* name : kGraphTasks) {
    SCOPED_TRACE(name);
    const NamedTask task = get_task(name);
    const ConfigGraph full = explore_or_die(task, Reduction::kNone);
    const ValenceAnalyzer base(full);
    const std::set<Value> base_universe(base.universe().begin(),
                                        base.universe().end());
    const std::set<Value> base_root =
        mask_to_values(base.reachable_mask(full.root()), base.universe());
    for (Reduction reduction :
         {Reduction::kSymmetry, Reduction::kPor, Reduction::kBoth}) {
      SCOPED_TRACE(reduction_name(reduction));
      const ConfigGraph reduced = explore_or_die(task, reduction);
      const ValenceAnalyzer analyzer(reduced);
      EXPECT_EQ(std::set<Value>(analyzer.universe().begin(),
                                analyzer.universe().end()),
                base_universe);
      EXPECT_EQ(mask_to_values(analyzer.reachable_mask(reduced.root()),
                               analyzer.universe()),
                base_root);
    }
    // Pure symmetry additionally preserves weighted node counts: each
    // multivalent representative stands for orbit_size-many multivalent
    // concrete configurations (valence is renaming-invariant).
    const ConfigGraph reduced = explore_or_die(task, Reduction::kSymmetry);
    if (const auto& canon = reduced.canonicalizer(); canon != nullptr) {
      const ValenceAnalyzer analyzer(reduced);
      std::uint64_t weighted = 0;
      for (std::uint32_t id : analyzer.multivalent_nodes()) {
        weighted += canon->orbit_size(reduced.nodes()[id].config);
      }
      EXPECT_EQ(weighted, base.multivalent_nodes().size());
    }
  }
}

StatusOr<TaskReport> run_check(const NamedTask& task, Reduction reduction,
                               int threads = 1) {
  TaskCheckOptions options;
  options.explore.max_nodes = 60'000;  // skip tasks beyond this budget
  options.explore.threads = threads;
  options.explore.engine =
      threads > 1 ? ExploreEngine::kParallel : ExploreEngine::kSerial;
  options.explore.reduction = reduction;
  if (task.distinguished_pid >= 0) {
    return check_dac_task(task.protocol, task.distinguished_pid, task.inputs,
                          options);
  }
  return check_k_agreement_task(task.protocol, task.k, task.inputs, options);
}

std::set<std::string> violated_properties(const TaskReport& report) {
  std::set<std::string> properties;
  for (const PropertyViolation& v : report.violations) {
    properties.insert(v.property);
  }
  return properties;
}

TEST(Reduction, TaskVerdictsIdenticalAcrossAllModesOnEveryCorpusTask) {
  // The headline cross-validation: for every registry task the exhaustive
  // checker reaches, all four reduction modes (and serial vs parallel)
  // agree on ok() and on exactly which properties are violated. Violation
  // counts legitimately differ (a reduced graph has fewer nodes), so only
  // the property sets are compared.
  for (const std::string& name : named_task_names()) {
    SCOPED_TRACE(name);
    const NamedTask task = get_task(name);
    const auto base = run_check(task, Reduction::kNone);
    if (!base.is_ok()) {
      ASSERT_EQ(base.status().code(), StatusCode::kResourceExhausted)
          << base.status().to_string();
      continue;  // beyond the test budget at reduction=none; skip
    }
    ASSERT_EQ(base.value().ok(), !task.expect_violation);
    const std::set<std::string> expected = violated_properties(base.value());
    for (Reduction reduction :
         {Reduction::kSymmetry, Reduction::kPor, Reduction::kBoth}) {
      SCOPED_TRACE(reduction_name(reduction));
      for (int threads : {1, 2}) {
        SCOPED_TRACE(threads);
        const auto report = run_check(task, reduction, threads);
        ASSERT_TRUE(report.is_ok()) << report.status().to_string();
        EXPECT_EQ(report.value().ok(), base.value().ok());
        EXPECT_EQ(violated_properties(report.value()), expected);
        if (task.expect_violation) {
          ASSERT_FALSE(report.value().violations.empty());
          EXPECT_FALSE(report.value().violations.front().trace.empty());
        }
      }
    }
  }
}

TEST(Reduction, LiftedPathsReplayToConcreteExecutions) {
  // path_to on a reduced graph must return a schedule of the UNREDUCED
  // protocol: replaying it step by step from the initial configuration
  // lands on a configuration in the stored representative's orbit.
  for (const char* name : kGraphTasks) {
    SCOPED_TRACE(name);
    const NamedTask task = get_task(name);
    for (Reduction reduction : {Reduction::kSymmetry, Reduction::kBoth}) {
      SCOPED_TRACE(reduction_name(reduction));
      const ConfigGraph graph = explore_or_die(task, reduction);
      for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
        sim::Config config = sim::initial_config(*task.protocol);
        for (const sim::Step& step : graph.path_to(id)) {
          sim::apply_step(*task.protocol, &config, step.pid,
                          step.outcome_choice);
        }
        if (const auto& canon = graph.canonicalizer(); canon != nullptr) {
          canon->canonicalize(&config);
        }
        ASSERT_TRUE(config == graph.nodes()[id].config)
            << "lifted path for node " << id
            << " does not replay into the representative's orbit";
      }
    }
  }
}

TEST(Reduction, MutantCounterexamplesLiftAndReplayUnderEveryMode) {
  // Regression per mutant: under every reduction mode the judge still
  // convicts some reachable representative, and the lifted schedule
  // replays to a concrete execution of the unreduced protocol that the
  // judge convicts of the same property.
  for (const std::string& name : named_task_names()) {
    const NamedTask task = get_task(name);
    if (!task.expect_violation) continue;
    SCOPED_TRACE(name);
    {
      // Budget probe at reduction=none; tasks beyond it are skipped whole
      // (the reduced graphs are only smaller).
      Explorer explorer(task.protocol);
      const auto probe = explorer.explore({.max_nodes = 60'000});
      if (!probe.is_ok()) {
        ASSERT_EQ(probe.status().code(), StatusCode::kResourceExhausted)
            << probe.status().to_string();
        continue;
      }
    }
    for (Reduction reduction : kAllModes) {
      SCOPED_TRACE(reduction_name(reduction));
      const ConfigGraph graph = explore_or_die(task, reduction);
      bool convicted = false;
      for (std::uint32_t id = 0; id < graph.nodes().size() && !convicted;
           ++id) {
        const auto [property, detail] = task.judge(graph.nodes()[id].config);
        if (property.empty()) continue;
        convicted = true;
        sim::Config concrete = sim::initial_config(*task.protocol);
        for (const sim::Step& step : graph.path_to(id)) {
          sim::apply_step(*task.protocol, &concrete, step.pid,
                          step.outcome_choice);
        }
        const auto [lifted_property, lifted_detail] = task.judge(concrete);
        EXPECT_EQ(lifted_property, property)
            << "lifted schedule does not reproduce the violation";
      }
      EXPECT_TRUE(convicted) << "mutant not flagged under this mode";
    }
  }
}

TEST(Reduction, FlagFnWithSymmetryRequiresDeclaredInvariance) {
  const NamedTask task = get_task("dac3-sym");
  Explorer explorer(task.protocol);
  // Any-step flag function: invariant under pid renaming, but the explorer
  // cannot know that without the caller's declaration.
  const Explorer::FlagFn any_step =
      [](std::int64_t flag, const sim::Step& step) -> std::int64_t {
    (void)step;
    return flag == 0 ? 1 : flag;
  };
  const auto rejected = explorer.explore(
      {.reduction = Reduction::kSymmetry}, any_step, 0);
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  const auto accepted = explorer.explore(
      {.reduction = Reduction::kSymmetry, .flag_fn_symmetric = true},
      any_step, 0);
  ASSERT_TRUE(accepted.is_ok()) << accepted.status().to_string();
  // POR alone never needs the declaration.
  const auto por = explorer.explore({.reduction = Reduction::kPor}, any_step,
                                    0);
  EXPECT_TRUE(por.is_ok()) << por.status().to_string();
}

// A protocol whose declared group moves every pid — including whatever pid
// a DAC check would distinguish. Every process immediately decides its
// (equal) input; no shared objects.
class FullySymmetricDecideProtocol final : public sim::ProtocolBase {
 public:
  explicit FullySymmetricDecideProtocol(int n)
      : ProtocolBase("fully-symmetric-decide", n, {}) {}

  std::vector<std::int64_t> initial_locals(int) const override {
    return {kInput};
  }
  sim::Action next_action(int, const sim::ProcessState& state) const override {
    return sim::Action::decide(state.locals[0]);
  }
  void on_response(int, sim::ProcessState*, Value) const override {}
  sim::SymmetrySpec symmetry() const override {
    return sim::SymmetrySpec::full(process_count());
  }

  static constexpr Value kInput = 5;
};

TEST(Reduction, DacCheckRejectsGroupMovingTheDistinguishedProcess) {
  auto protocol = std::make_shared<FullySymmetricDecideProtocol>(3);
  const std::vector<Value> inputs(3, FullySymmetricDecideProtocol::kInput);
  TaskCheckOptions options;
  options.explore.reduction = Reduction::kSymmetry;
  const auto report = check_dac_task(protocol, 0, inputs, options);
  ASSERT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  // Without symmetry the same check runs fine.
  options.explore.reduction = Reduction::kPor;
  const auto por = check_dac_task(protocol, 0, inputs, options);
  ASSERT_TRUE(por.is_ok()) << por.status().to_string();
}

}  // namespace
}  // namespace lbsa::modelcheck
