// Checkpoint/resume contract (modelcheck/checkpoint.h, docs/checking.md
// "Long runs"): on every small-enough corpus task,
//   * an exploration interrupted at a level boundary and resumed — under
//     either engine, any thread count, and every reduction mode — finishes
//     with a graph bit-identical to the uninterrupted run (including across
//     multiple interrupt/resume hops),
//   * a coverage-guided fuzz campaign interrupted at a run boundary and
//     resumed produces a byte-identical final report,
//   * stale checkpoints (wrong task, reduction, budget, seed) are rejected
//     with FAILED_PRECONDITION naming the mismatch, and corrupt files (bad
//     magic, bit rot, truncation, future schema) with INVALID_ARGUMENT —
//     never a silently wrong graph,
//   * cancellation and deadlines interrupt cleanly: the partial graph is the
//     exact prefix of the uninterrupted exploration.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "modelcheck/cancel.h"
#include "modelcheck/checkpoint.h"
#include "modelcheck/corpus.h"
#include "modelcheck/explorer.h"
#include "modelcheck/fuzz.h"
#include "obs/heartbeat.h"

namespace lbsa::modelcheck {
namespace {

constexpr Reduction kAllModes[] = {Reduction::kNone, Reduction::kSymmetry,
                                   Reduction::kPor, Reduction::kBoth};

// Tasks small enough to explore exhaustively many times in a test.
const char* kGraphTasks[] = {"dac3-sym", "dac4-sym", "consensus4-sym",
                             "mutant-dac-no-adopt3-sym", "strawdac3"};

NamedTask get_task(const std::string& name) {
  auto task = make_named_task(name);
  EXPECT_TRUE(task.is_ok()) << task.status().to_string();
  return task.value();
}

ConfigGraph explore_or_die(const NamedTask& task, const ExploreOptions& opts) {
  Explorer explorer(task.protocol);
  auto graph = explorer.explore(opts);
  EXPECT_TRUE(graph.is_ok()) << graph.status().to_string();
  return std::move(graph).value();
}

void expect_identical(const ConfigGraph& a, const ConfigGraph& b) {
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  EXPECT_EQ(a.transition_count(), b.transition_count());
  EXPECT_EQ(a.truncated(), b.truncated());
  for (std::uint32_t id = 0; id < a.nodes().size(); ++id) {
    ASSERT_TRUE(a.nodes()[id].config == b.nodes()[id].config)
        << "config mismatch at node " << id;
    EXPECT_EQ(a.nodes()[id].flag, b.nodes()[id].flag);
    EXPECT_EQ(a.nodes()[id].depth, b.nodes()[id].depth);
    ASSERT_EQ(a.edges()[id], b.edges()[id]) << "edges mismatch at " << id;
    EXPECT_EQ(a.path_to(id), b.path_to(id)) << "path mismatch at " << id;
  }
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Interrupts `task` after `levels` BFS levels (serial engine, checkpoint to
// disk), then reads the checkpoint back. The interrupted graph must be a
// valid prefix: every array sized consistently, frontier nonempty unless
// exploration happened to finish.
ExploreCheckpoint interrupt_and_read(const NamedTask& task, Reduction red,
                                     std::uint32_t levels,
                                     const std::string& path) {
  ExploreOptions opts;
  opts.reduction = red;
  opts.max_levels = levels;
  opts.checkpoint_path = path;
  opts.checkpoint_label = task.name;
  const ConfigGraph partial = explore_or_die(task, opts);
  EXPECT_TRUE(partial.interrupted());
  EXPECT_EQ(partial.levels_completed(), levels);
  EXPECT_FALSE(partial.pending_frontier().empty());
  auto cp = read_explore_checkpoint(path);
  EXPECT_TRUE(cp.is_ok()) << cp.status().to_string();
  EXPECT_EQ(cp.value().levels_completed, levels);
  EXPECT_EQ(cp.value().frontier, partial.pending_frontier());
  return std::move(cp).value();
}

TEST(Checkpoint, ResumeBitIdenticalAcrossEnginesThreadsAndReductions) {
  for (const char* name : kGraphTasks) {
    SCOPED_TRACE(name);
    const NamedTask task = get_task(name);
    for (Reduction reduction : kAllModes) {
      SCOPED_TRACE(reduction_name(reduction));
      ExploreOptions base;
      base.reduction = reduction;
      const ConfigGraph uninterrupted = explore_or_die(task, base);

      const std::string path = temp_path("resume.ckpt");
      const ExploreCheckpoint cp =
          interrupt_and_read(task, reduction, 2, path);

      // Serial resume.
      {
        ExploreOptions opts;
        opts.reduction = reduction;
        opts.resume = &cp;
        const ConfigGraph resumed = explore_or_die(task, opts);
        EXPECT_FALSE(resumed.interrupted());
        expect_identical(uninterrupted, resumed);
      }
      // Parallel resume at several thread counts.
      for (int threads : {1, 2, 8}) {
        SCOPED_TRACE(threads);
        ExploreOptions opts;
        opts.reduction = reduction;
        opts.engine = ExploreEngine::kParallel;
        opts.threads = threads;
        opts.resume = &cp;
        const ConfigGraph resumed = explore_or_die(task, opts);
        EXPECT_FALSE(resumed.interrupted());
        expect_identical(uninterrupted, resumed);
      }
    }
  }
}

TEST(Checkpoint, MultiHopResumeBitIdentical) {
  const NamedTask task = get_task("dac4-sym");
  const ConfigGraph uninterrupted = explore_or_die(task, {});

  // Hop 1: explore 1 level, checkpoint. Hop 2: resume, 2 more levels,
  // checkpoint again. Hop 3: resume to completion.
  const std::string path = temp_path("multihop.ckpt");
  const ExploreCheckpoint hop1 =
      interrupt_and_read(task, Reduction::kNone, 1, path);

  ExploreOptions mid;
  mid.resume = &hop1;
  mid.max_levels = 2;
  mid.checkpoint_path = path;
  const ConfigGraph partial = explore_or_die(task, mid);
  ASSERT_TRUE(partial.interrupted());
  EXPECT_EQ(partial.levels_completed(), 3u);  // 1 from hop1 + 2 this session

  auto hop2 = read_explore_checkpoint(path);
  ASSERT_TRUE(hop2.is_ok()) << hop2.status().to_string();
  EXPECT_EQ(hop2.value().levels_completed, 3u);

  ExploreOptions fin;
  fin.resume = &hop2.value();
  const ConfigGraph resumed = explore_or_die(task, fin);
  EXPECT_FALSE(resumed.interrupted());
  expect_identical(uninterrupted, resumed);
}

TEST(Checkpoint, PeriodicCheckpointFromParallelEngineResumes) {
  const NamedTask task = get_task("dac3-sym");
  const ConfigGraph uninterrupted = explore_or_die(task, {});

  // Run the parallel engine to completion with periodic checkpoints: the
  // last periodic snapshot left on disk must itself be resumable.
  const std::string path = temp_path("periodic.ckpt");
  ExploreOptions opts;
  opts.engine = ExploreEngine::kParallel;
  opts.threads = 4;
  opts.checkpoint_path = path;
  opts.checkpoint_every_levels = 2;
  const ConfigGraph full = explore_or_die(task, opts);
  EXPECT_FALSE(full.interrupted());
  expect_identical(uninterrupted, full);

  auto cp = read_explore_checkpoint(path);
  ASSERT_TRUE(cp.is_ok()) << cp.status().to_string();
  ExploreOptions res;
  res.resume = &cp.value();
  const ConfigGraph resumed = explore_or_die(task, res);
  expect_identical(uninterrupted, resumed);
}

TEST(Checkpoint, TruncatedExplorationResumes) {
  const NamedTask task = get_task("dac3-sym");
  ExploreOptions base;
  base.max_nodes = 60;
  base.allow_truncation = true;
  const ConfigGraph truncated = explore_or_die(task, base);
  ASSERT_TRUE(truncated.truncated());

  ExploreOptions part = base;
  part.max_levels = 2;
  part.checkpoint_path = temp_path("trunc.ckpt");
  const ConfigGraph partial = explore_or_die(task, part);
  ASSERT_TRUE(partial.interrupted());

  auto cp = read_explore_checkpoint(part.checkpoint_path);
  ASSERT_TRUE(cp.is_ok()) << cp.status().to_string();
  ExploreOptions res = base;
  res.resume = &cp.value();
  const ConfigGraph resumed = explore_or_die(task, res);
  expect_identical(truncated, resumed);
}

TEST(Checkpoint, StaleCheckpointRejectedWithNamedMismatch) {
  const NamedTask task = get_task("dac3-sym");
  const std::string path = temp_path("stale.ckpt");
  const ExploreCheckpoint cp =
      interrupt_and_read(task, Reduction::kSymmetry, 1, path);

  // Wrong task entirely.
  {
    const NamedTask other = get_task("strawdac3");
    Explorer explorer(other.protocol);
    ExploreOptions opts;
    opts.reduction = Reduction::kSymmetry;
    opts.resume = &cp;
    auto graph = explorer.explore(opts);
    ASSERT_FALSE(graph.is_ok());
    EXPECT_EQ(graph.status().code(), StatusCode::kFailedPrecondition);
  }
  // Same task, wrong reduction: the error names the knob and both values.
  {
    Explorer explorer(task.protocol);
    ExploreOptions opts;
    opts.reduction = Reduction::kBoth;
    opts.resume = &cp;
    auto graph = explorer.explore(opts);
    ASSERT_FALSE(graph.is_ok());
    EXPECT_EQ(graph.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(graph.status().message().find("reduction"), std::string::npos)
        << graph.status().to_string();
  }
  // Same task, different node budget.
  {
    Explorer explorer(task.protocol);
    ExploreOptions opts;
    opts.reduction = Reduction::kSymmetry;
    opts.max_nodes = 123;
    opts.allow_truncation = true;
    opts.resume = &cp;
    auto graph = explorer.explore(opts);
    ASSERT_FALSE(graph.is_ok());
    EXPECT_EQ(graph.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(graph.status().message().find("node budget"), std::string::npos)
        << graph.status().to_string();
  }
}

TEST(Checkpoint, CorruptFilesRejected) {
  const NamedTask task = get_task("dac3-sym");
  const std::string path = temp_path("corrupt.ckpt");
  (void)interrupt_and_read(task, Reduction::kNone, 1, path);

  auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  auto spit = [](const std::string& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  const std::string good = slurp(path);
  ASSERT_GT(good.size(), 64u);

  // Missing file.
  EXPECT_EQ(read_explore_checkpoint(temp_path("nope.ckpt")).status().code(),
            StatusCode::kNotFound);

  // Truncated file.
  spit(path, good.substr(0, good.size() / 2));
  EXPECT_EQ(read_explore_checkpoint(path).status().code(),
            StatusCode::kInvalidArgument);

  // Flipped payload bit -> checksum mismatch.
  {
    std::string bad = good;
    bad[bad.size() - 3] ^= 0x40;
    spit(path, bad);
    EXPECT_EQ(read_explore_checkpoint(path).status().code(),
              StatusCode::kInvalidArgument);
  }
  // Bad magic (also: an explore checkpoint is not a fuzz checkpoint).
  {
    std::string bad = good;
    bad[0] ^= 0xFF;
    spit(path, bad);
    EXPECT_EQ(read_explore_checkpoint(path).status().code(),
              StatusCode::kInvalidArgument);
    spit(path, good);
    EXPECT_EQ(read_fuzz_checkpoint(path).status().code(),
              StatusCode::kInvalidArgument);
  }
  // Future schema version: the error names it so the user knows to upgrade.
  {
    std::string bad = good;
    bad[8] = static_cast<char>(kCheckpointSchemaVersion + 1);
    spit(path, bad);
    const auto status = read_explore_checkpoint(path).status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("version"), std::string::npos)
        << status.to_string();
  }
}

TEST(Checkpoint, CancelAndDeadlineInterruptBothEngines) {
  const NamedTask task = get_task("dac4-sym");
  const ConfigGraph uninterrupted = explore_or_die(task, {});

  for (const auto engine :
       {ExploreEngine::kSerial, ExploreEngine::kParallel}) {
    SCOPED_TRACE(engine == ExploreEngine::kSerial ? "serial" : "parallel");
    // A pre-tripped token stops at the first level boundary.
    CancelToken cancel;
    cancel.cancel();
    ExploreOptions opts;
    opts.engine = engine;
    opts.threads = engine == ExploreEngine::kParallel ? 4 : 1;
    opts.cancel = &cancel;
    const ConfigGraph partial = explore_or_die(task, opts);
    ASSERT_TRUE(partial.interrupted());
    ASSERT_LT(partial.nodes().size(), uninterrupted.nodes().size());
    // The partial graph is the exact prefix of the uninterrupted one.
    for (std::uint32_t id = 0; id < partial.nodes().size(); ++id) {
      ASSERT_TRUE(partial.nodes()[id].config ==
                  uninterrupted.nodes()[id].config)
          << "prefix mismatch at node " << id;
    }

    // An already-expired deadline behaves the same.
    ExploreOptions late;
    late.engine = opts.engine;
    late.threads = opts.threads;
    late.deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);
    const ConfigGraph timed_out = explore_or_die(task, late);
    EXPECT_TRUE(timed_out.interrupted());
  }
}

TEST(FuzzCheckpoint, ResumedCampaignReportByteIdentical) {
  // strawdac3 is broken (violations arrive throughout the campaign), so
  // this checks that violations found before AND after the interrupt, the
  // coverage pool, and the RNG stream all survive the round trip.
  for (const char* name : {"strawdac3", "dac3"}) {
    SCOPED_TRACE(name);
    const NamedTask task = get_task(name);
    FuzzOptions base;
    base.coverage_guided = true;
    base.runs = 300;
    base.seed = 11;
    base.max_violations = 6;
    const FuzzReport full = fuzz_named_task(task, base);

    FuzzOptions part = base;
    part.stop_after_runs = 2;
    part.checkpoint_path = temp_path("fuzz.ckpt");
    part.checkpoint_label = name;
    const FuzzReport partial = fuzz_named_task(task, part);
    if (!partial.interrupted) {
      // The campaign hit max_violations before the stop point; nothing to
      // resume (no checkpoint guaranteed). Still a valid complete report.
      EXPECT_EQ(partial.violations.size(),
                static_cast<std::size_t>(base.max_violations));
      continue;
    }
    EXPECT_TRUE(partial.checkpoint_error.empty())
        << partial.checkpoint_error;

    auto cp = read_fuzz_checkpoint(part.checkpoint_path);
    ASSERT_TRUE(cp.is_ok()) << cp.status().to_string();
    FuzzOptions res = base;
    res.resume = &cp.value();
    ASSERT_TRUE(
        validate_fuzz_resume(*task.protocol, res, cp.value()).is_ok());
    const FuzzReport resumed = fuzz_named_task(task, res);

    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.runs_executed, full.runs_executed);
    EXPECT_EQ(resumed.runs_terminated, full.runs_terminated);
    EXPECT_EQ(resumed.distinct_fingerprints, full.distinct_fingerprints);
    EXPECT_EQ(resumed.interesting_runs, full.interesting_runs);
    EXPECT_EQ(resumed.mutated_runs, full.mutated_runs);
    ASSERT_EQ(resumed.violations.size(), full.violations.size());
    for (std::size_t i = 0; i < full.violations.size(); ++i) {
      EXPECT_EQ(resumed.violations[i].property, full.violations[i].property);
      EXPECT_EQ(resumed.violations[i].detail, full.violations[i].detail);
      EXPECT_EQ(resumed.violations[i].run_seed, full.violations[i].run_seed);
      EXPECT_EQ(resumed.violations[i].schedule, full.violations[i].schedule);
      EXPECT_EQ(resumed.violations[i].shrunk_schedule,
                full.violations[i].shrunk_schedule);
    }
  }
}

TEST(FuzzCheckpoint, StaleFuzzCheckpointRejected) {
  const NamedTask task = get_task("dac3");
  FuzzOptions opts;
  opts.coverage_guided = true;
  opts.runs = 100;
  opts.seed = 5;
  opts.stop_after_runs = 10;
  opts.checkpoint_path = temp_path("stale-fuzz.ckpt");
  const FuzzReport partial = fuzz_named_task(task, opts);
  ASSERT_TRUE(partial.interrupted);

  auto cp = read_fuzz_checkpoint(opts.checkpoint_path);
  ASSERT_TRUE(cp.is_ok()) << cp.status().to_string();

  // Different seed -> different campaign.
  FuzzOptions wrong_seed = opts;
  wrong_seed.stop_after_runs = 0;
  wrong_seed.checkpoint_path.clear();
  wrong_seed.seed = 6;
  EXPECT_EQ(
      validate_fuzz_resume(*task.protocol, wrong_seed, cp.value()).code(),
      StatusCode::kFailedPrecondition);

  // Blind engine cannot resume at all.
  FuzzOptions blind = opts;
  blind.stop_after_runs = 0;
  blind.checkpoint_path.clear();
  blind.coverage_guided = false;
  EXPECT_EQ(validate_fuzz_resume(*task.protocol, blind, cp.value()).code(),
            StatusCode::kFailedPrecondition);

  // Checkpoint claiming more runs than the budget.
  FuzzOptions small = opts;
  small.stop_after_runs = 0;
  small.checkpoint_path.clear();
  small.runs = 5;
  EXPECT_EQ(validate_fuzz_resume(*task.protocol, small, cp.value()).code(),
            StatusCode::kFailedPrecondition);
}

// Regression (serving PR): the BFS engines must poll cancellation and
// deadlines INSIDE per-worker expansion chunks, not just at level
// boundaries. Before the fix, a cancel landing mid-level ran to the end of
// the level — on a wide level, thousands of expansions after the request.
// The watcher trips the token from live Progress (not wall clock), so the
// test is schedule-robust: it cancels once exploration is provably inside
// the widest level, then asserts the engine stopped well before finishing
// it, AND that the rolled-back result is bit-identical to a fresh run
// stopped at the same level boundary.
TEST(Lifecycle, MidLevelCancelBoundsWorkAndRollsBackCleanly) {
  const NamedTask task = get_task("dac5");
  const ConfigGraph full = explore_or_die(task, {});

  // Cumulative node count by depth; pick the depth whose EXPANSION yields
  // the most new nodes — the widest window for a mid-level cancel.
  std::vector<std::uint64_t> count;
  for (const Node& node : full.nodes()) {
    if (node.depth >= count.size()) count.resize(node.depth + 1, 0);
    ++count[node.depth];
  }
  std::size_t widest = 0;  // expanding level `widest` interns count[widest+1]
  for (std::size_t d = 0; d + 1 < count.size(); ++d) {
    if (count[d + 1] > count[widest + 1]) widest = d;
  }
  std::uint64_t before = 0;  // nodes interned when level `widest` opens
  for (std::size_t d = 0; d <= widest; ++d) before += count[d];
  const std::uint64_t yield = count[widest + 1];
  ASSERT_GT(yield, 4000u) << "task too small to expose mid-level latency";
  // Cancel once exploration is provably inside the widest level.
  const std::uint64_t threshold = before + 500;
  // Work tolerated AFTER the cancel store is visible: per-worker chunk
  // granularity plus the engines' publication lag (serial publishes every
  // 512 pops, the parallel engines every 64-item chunk per worker). The
  // pre-fix engines ran to the end of the level — `yield` more nodes, an
  // order of magnitude past this. Measured against the progress counter AT
  // the cancel, the bound is independent of how promptly the watcher
  // thread got scheduled.
  const std::uint64_t kPostCancelSlack = 2500;
  ASSERT_GT(yield, kPostCancelSlack + 1500u);

  for (const auto engine :
       {ExploreEngine::kSerial, ExploreEngine::kParallel,
        ExploreEngine::kWorkStealing}) {
    SCOPED_TRACE(static_cast<int>(engine));
    obs::Progress& progress = obs::Progress::global();
    progress.reset();
    obs::set_heartbeat_enabled(true);  // engines publish live Progress

    CancelToken cancel;
    ExploreOptions opts;
    opts.engine = engine;
    opts.threads = engine == ExploreEngine::kSerial ? 1 : 4;
    opts.cancel = &cancel;
    StatusOr<ConfigGraph> partial_or = internal_error("run never finished");
    std::thread runner([&] {
      Explorer explorer(task.protocol);
      partial_or = explorer.explore(opts);
    });
    // Spin until the engine is provably mid-level, then cancel. Terminates
    // even without the fix: nodes_total is monotone and reaches the full
    // graph size, which exceeds the threshold.
    while (progress.nodes_total.load(std::memory_order_relaxed) < threshold) {
      std::this_thread::yield();
    }
    cancel.cancel();
    const std::uint64_t at_cancel =
        progress.nodes_total.load(std::memory_order_relaxed);
    runner.join();
    const std::uint64_t interned =
        progress.nodes_total.load(std::memory_order_relaxed);
    obs::set_heartbeat_enabled(false);

    ASSERT_TRUE(partial_or.is_ok()) << partial_or.status().to_string();
    const ConfigGraph& partial = partial_or.value();
    ASSERT_TRUE(partial.interrupted());
    // The regression bite: a level-boundary-only poll keeps interning until
    // the level is done — `yield`-ish nodes past the cancel. The fixed
    // engines stop within a chunk per worker.
    EXPECT_LE(interned - at_cancel, kPostCancelSlack)
        << "engine kept expanding a wide level after cancellation"
        << " (at_cancel=" << at_cancel << " final=" << interned << ")";

    // Rollback correctness: the interrupted graph is the exact result of
    // stopping at the same level boundary on purpose.
    ExploreOptions replay;
    replay.max_levels = partial.levels_completed();
    const ConfigGraph expected = explore_or_die(task, replay);
    ASSERT_TRUE(expected.interrupted());
    EXPECT_EQ(expected.levels_completed(), partial.levels_completed());
    expect_identical(partial, expected);
    EXPECT_EQ(partial.pending_frontier(), expected.pending_frontier());
  }
}

// Regression (serving PR): checkpoint staging used a PREDICTABLE temp name
// (path + ".tmp"), so two writers targeting the same path could truncate
// each other's staging file or lose the rename race — a torn or missing
// checkpoint. Staging now carries a per-process + per-write unique suffix:
// every concurrent write must succeed and the surviving file must read
// back as one writer's complete checkpoint.
TEST(Checkpoint, ConcurrentWritersNeverTearTheFile) {
  const NamedTask task = get_task("dac3-sym");
  const std::string seed_path = temp_path("concurrent-seed.ckpt");
  ExploreCheckpoint cp =
      interrupt_and_read(task, Reduction::kNone, 2, seed_path);

  const std::string path = temp_path("concurrent-writers.ckpt");
  constexpr int kWriters = 8;
  constexpr int kWritesEach = 25;
  std::vector<Status> failures(kWriters, Status::ok());
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Distinct payloads per writer so a torn interleaving cannot pass as
      // a valid file by accident (the format is checksummed end to end).
      ExploreCheckpoint mine = cp;
      mine.task_label = "writer-" + std::to_string(w);
      for (int i = 0; i < kWritesEach; ++i) {
        const Status s = write_explore_checkpoint(mine, path);
        if (!s.is_ok()) {
          failures[w] = s;
          return;
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_TRUE(failures[w].is_ok())
        << "writer " << w << ": " << failures[w].to_string();
  }
  // The surviving file is some writer's complete, checksum-valid write.
  auto survivor = read_explore_checkpoint(path);
  ASSERT_TRUE(survivor.is_ok()) << survivor.status().to_string();
  EXPECT_EQ(survivor.value().task_label.rfind("writer-", 0), 0u);
  EXPECT_EQ(survivor.value().fingerprint, cp.fingerprint);
  EXPECT_EQ(survivor.value().frontier, cp.frontier);
}

TEST(FuzzCheckpoint, CancelInterruptsBlindAndCoverage) {
  const NamedTask task = get_task("dac3");
  for (const bool coverage : {false, true}) {
    SCOPED_TRACE(coverage ? "coverage" : "blind");
    CancelToken cancel;
    cancel.cancel();
    FuzzOptions opts;
    opts.coverage_guided = coverage;
    opts.runs = 1000;
    opts.threads = coverage ? 1 : 4;
    opts.cancel = &cancel;
    const FuzzReport report = fuzz_named_task(task, opts);
    EXPECT_TRUE(report.interrupted);
    EXPECT_LT(report.runs_executed, opts.runs);
  }
}

}  // namespace
}  // namespace lbsa::modelcheck
