// Exact step-complexity results for the library's protocols: one-shot
// consensus costs exactly 2 own-steps; Algorithm 2's retry loop is bounded
// because interference is bounded; the FLP race and the straw-men are
// unbounded exactly where the wait-freedom checker says so.
#include "modelcheck/step_complexity.h"

#include <gtest/gtest.h>

#include "protocols/dac_from_pac.h"
#include "protocols/flp_race.h"
#include "protocols/one_shot.h"
#include "protocols/straw_dac.h"

namespace lbsa::modelcheck {
namespace {

using protocols::DacFromPacProtocol;
using protocols::FlpRaceProtocol;
using protocols::StrawDacAnnounceProtocol;
using protocols::make_consensus_via_n_consensus;
using protocols::make_ksa_via_two_sa;

ConfigGraph explore(std::shared_ptr<const sim::Protocol> protocol) {
  Explorer explorer(std::move(protocol));
  return std::move(explorer.explore()).value();
}

TEST(StepComplexity, OneShotConsensusIsTwoSteps) {
  const ConfigGraph graph =
      explore(make_consensus_via_n_consensus({10, 20, 30}));
  for (int pid = 0; pid < 3; ++pid) {
    const auto steps = worst_case_own_steps(graph, pid);
    ASSERT_TRUE(steps.has_value());
    EXPECT_EQ(*steps, 2u) << "pid " << pid;  // propose + local decide
  }
}

TEST(StepComplexity, TwoSaOneShotIsTwoSteps) {
  const ConfigGraph graph = explore(make_ksa_via_two_sa({10, 20}));
  for (int pid = 0; pid < 2; ++pid) {
    EXPECT_EQ(worst_case_own_steps(graph, pid), 2u);
  }
}

TEST(StepComplexity, AlgorithmTwoIsBoundedAndInterferenceLimited) {
  // Every process of Algorithm 2 is wait-free with a small exact bound:
  // each ⊥ retry consumes one interfering operation by someone else, and
  // interference is finite.
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20});
  const ConfigGraph graph = explore(protocol);
  const auto all = worst_case_own_steps_all(graph, 2);
  ASSERT_TRUE(all[0].has_value());
  ASSERT_TRUE(all[1].has_value());
  // p: propose, decide, terminal step.
  EXPECT_EQ(*all[0], 3u);
  // q may be forced through retries by p's two operations, but no further.
  EXPECT_GE(*all[1], 3u);
  EXPECT_LE(*all[1], 9u);
}

TEST(StepComplexity, AlgorithmTwoWithThreeProcesses) {
  auto protocol =
      std::make_shared<DacFromPacProtocol>(std::vector<Value>{10, 20, 30});
  const ConfigGraph graph = explore(protocol);
  // Two non-distinguished processes can interfere with EACH OTHER forever
  // (the lockstep livelock the simulation test documents): their own-step
  // counts are unbounded, while p's stays bounded.
  const auto all = worst_case_own_steps_all(graph, 3);
  ASSERT_TRUE(all[0].has_value());
  EXPECT_EQ(*all[0], 3u);
  EXPECT_FALSE(all[1].has_value());
  EXPECT_FALSE(all[2].has_value());
}

TEST(StepComplexity, FlpRaceLoserIsUnbounded) {
  const ConfigGraph graph =
      explore(std::make_shared<FlpRaceProtocol>(5, 3));
  // The process holding the larger value can decide early; the other can
  // spin forever against it.
  const auto p0 = worst_case_own_steps(graph, 0);
  const auto p1 = worst_case_own_steps(graph, 1);
  EXPECT_FALSE(p1.has_value());  // p1 holds the smaller value (3)
  EXPECT_TRUE(!p0.has_value() || *p0 >= 3u);
}

TEST(StepComplexity, StrawAnnounceSpinnerIsUnbounded) {
  const ConfigGraph graph = explore(
      std::make_shared<StrawDacAnnounceProtocol>(std::vector<Value>{10, 20,
                                                                    30}));
  bool some_unbounded = false;
  for (int pid = 0; pid < 3; ++pid) {
    if (!worst_case_own_steps(graph, pid).has_value()) some_unbounded = true;
  }
  EXPECT_TRUE(some_unbounded);
}

}  // namespace
}  // namespace lbsa::modelcheck
