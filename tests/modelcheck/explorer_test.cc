#include "modelcheck/explorer.h"

#include <gtest/gtest.h>

#include "protocols/dac_from_pac.h"
#include "protocols/one_shot.h"
#include "protocols/straw_dac.h"
#include "modelcheck/task_check.h"

namespace lbsa::modelcheck {
namespace {

using protocols::DacFromPacProtocol;
using protocols::make_consensus_via_n_consensus;
using protocols::make_ksa_via_two_sa;

TEST(Explorer, SingleProcessGraphIsALine) {
  auto protocol = make_consensus_via_n_consensus({10});
  Explorer explorer(protocol);
  const auto graph_or = explorer.explore();
  ASSERT_TRUE(graph_or.is_ok());
  const ConfigGraph& graph = graph_or.value();
  // init -> proposed -> decided: 3 nodes, 2 transitions.
  EXPECT_EQ(graph.nodes().size(), 3u);
  EXPECT_EQ(graph.transition_count(), 2u);
}

TEST(Explorer, TwoProcessConsensusGraphIsComplete) {
  auto protocol = make_consensus_via_n_consensus({10, 20});
  Explorer explorer(protocol);
  const auto graph_or = explorer.explore();
  ASSERT_TRUE(graph_or.is_ok());
  const ConfigGraph& graph = graph_or.value();
  EXPECT_GT(graph.nodes().size(), 4u);
  // Every node has one outgoing edge per enabled process (object is
  // deterministic here).
  for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
    EXPECT_EQ(graph.edges()[id].size(),
              static_cast<size_t>(graph.nodes()[id].config.enabled_count()));
  }
  // Terminal nodes exist; in each, all processes agree on the first
  // proposer's value (which of the two it is depends on the schedule).
  int terminal = 0;
  for (const Node& node : graph.nodes()) {
    if (!node.config.halted()) continue;
    ++terminal;
    const Value winner = node.config.procs[0].decision;
    EXPECT_TRUE(winner == 10 || winner == 20);
    for (const sim::ProcessState& ps : node.config.procs) {
      EXPECT_TRUE(ps.decided());
      EXPECT_EQ(ps.decision, winner);
    }
  }
  EXPECT_GE(terminal, 2);  // both winners occur across schedules
}

TEST(Explorer, NondeterministicOutcomesBranch) {
  auto protocol = make_ksa_via_two_sa({10, 20});
  Explorer explorer(protocol);
  const auto graph_or = explorer.explore();
  ASSERT_TRUE(graph_or.is_ok());
  const ConfigGraph& graph = graph_or.value();
  // Some node must have more edges than enabled processes (the 2-SA branch).
  bool saw_branching = false;
  for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
    if (graph.edges()[id].size() >
        static_cast<size_t>(graph.nodes()[id].config.enabled_count())) {
      saw_branching = true;
    }
  }
  EXPECT_TRUE(saw_branching);
}

TEST(Explorer, NodeBudgetIsEnforced) {
  auto protocol = std::make_shared<DacFromPacProtocol>(
      std::vector<Value>{10, 20, 30});
  Explorer explorer(protocol);
  const auto graph_or = explorer.explore({.max_nodes = 5});
  ASSERT_FALSE(graph_or.is_ok());
  EXPECT_EQ(graph_or.status().code(), StatusCode::kResourceExhausted);
}

TEST(Explorer, TruncationReturnsConsistentPartialGraph) {
  auto protocol = std::make_shared<DacFromPacProtocol>(
      std::vector<Value>{10, 20, 30});
  Explorer explorer(protocol);
  const auto full = explorer.explore();
  ASSERT_TRUE(full.is_ok());
  EXPECT_FALSE(full.value().truncated());

  const auto partial =
      explorer.explore({.max_nodes = 50, .allow_truncation = true});
  ASSERT_TRUE(partial.is_ok());
  const ConfigGraph& graph = partial.value();
  EXPECT_TRUE(graph.truncated());
  EXPECT_LT(graph.nodes().size(), full.value().nodes().size());
  // All edges stay inside the partial node set, and every node replays.
  for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
    for (const Edge& e : graph.edges()[id]) {
      EXPECT_LT(e.to, graph.nodes().size());
    }
    sim::Config config = sim::initial_config(*protocol);
    for (const sim::Step& step : graph.path_to(id)) {
      sim::apply_step(*protocol, &config, step.pid, step.outcome_choice);
    }
    EXPECT_EQ(config, graph.nodes()[id].config);
  }
}

TEST(Explorer, TruncatedNodesAreKeptButNeverExpanded) {
  // Regression for the truncation bookkeeping contract: when the node
  // budget trips, the over-budget node is still pushed into the graph (so
  // the edge that discovered it has a valid target and its parent chain
  // replays), but it is never expanded.
  auto protocol = std::make_shared<DacFromPacProtocol>(
      std::vector<Value>{10, 20, 30});
  Explorer explorer(protocol);
  constexpr std::uint64_t kBudget = 50;
  const auto partial =
      explorer.explore({.max_nodes = kBudget, .allow_truncation = true});
  ASSERT_TRUE(partial.is_ok());
  const ConfigGraph& graph = partial.value();
  ASSERT_TRUE(graph.truncated());
  // Kept-but-unexpanded nodes overshoot the budget.
  EXPECT_GT(graph.nodes().size(), kBudget);
  // Unexpanded non-terminal nodes exist (empty edge list despite enabled
  // processes) — and expanded nodes always carry their complete edge list,
  // so edge lists are all-or-nothing.
  int unexpanded = 0;
  for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
    const Node& node = graph.nodes()[id];
    if (graph.edges()[id].empty() && node.config.enabled_count() > 0) {
      ++unexpanded;
    } else if (!graph.edges()[id].empty()) {
      // A partial expansion would break the per-node edge invariant used
      // by cross-validation (edge count == sum of outcome counts).
      std::size_t expected = 0;
      for (int pid = 0; pid < static_cast<int>(node.config.procs.size());
           ++pid) {
        if (!node.config.enabled(pid)) continue;
        expected += static_cast<std::size_t>(
            sim::outcome_count(*protocol, node.config, pid));
      }
      EXPECT_EQ(graph.edges()[id].size(), expected) << "node " << id;
    }
  }
  EXPECT_GT(unexpanded, 0);
}

TEST(Explorer, TruncatedSafetyCheckStillFindsRealViolations) {
  // A straw protocol whose agreement violation appears early: even a
  // heavily truncated exploration must surface it (violations on partial
  // graphs are sound).
  auto protocol = std::make_shared<protocols::StrawDacFallbackProtocol>(
      std::vector<Value>{10, 20, 30});
  TaskCheckOptions options;
  options.explore.max_nodes = 80;
  options.explore.allow_truncation = true;
  auto report = check_dac_task(protocol, 0, {10, 20, 30}, options);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().partial);
  EXPECT_TRUE(report.value().violates("agreement"))
      << report.value().to_string();
  EXPECT_NE(report.value().to_string().find("PARTIAL"), std::string::npos);
}

TEST(Explorer, PathToReconstructsShortestHistory) {
  auto protocol = make_consensus_via_n_consensus({10, 20});
  Explorer explorer(protocol);
  const auto graph_or = explorer.explore();
  ASSERT_TRUE(graph_or.is_ok());
  const ConfigGraph& graph = graph_or.value();
  for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
    const auto path = graph.path_to(id);
    EXPECT_EQ(path.size(), graph.nodes()[id].depth);
    // Replaying the path from the initial config lands on the node.
    sim::Config config = sim::initial_config(*protocol);
    for (const sim::Step& step : path) {
      sim::apply_step(*protocol, &config, step.pid, step.outcome_choice);
    }
    EXPECT_EQ(config, graph.nodes()[id].config);
  }
}

TEST(Explorer, FlagAugmentationSplitsNodes) {
  // With a flag tracking "p1 has stepped", the same configuration reached
  // with and without p1 steps becomes two nodes.
  auto protocol = make_consensus_via_n_consensus({10, 20});
  Explorer explorer(protocol);
  const auto plain = explorer.explore();
  ASSERT_TRUE(plain.is_ok());
  const auto flagged = explorer.explore(
      {}, [](std::int64_t flag, const sim::Step& step) -> std::int64_t {
        return step.pid == 1 ? 1 : flag;
      });
  ASSERT_TRUE(flagged.is_ok());
  EXPECT_GE(flagged.value().nodes().size(), plain.value().nodes().size());
  bool saw_flag = false;
  for (const Node& node : flagged.value().nodes()) {
    if (node.flag == 1) saw_flag = true;
  }
  EXPECT_TRUE(saw_flag);
}

TEST(Explorer, DacGraphIsExactAndFinite) {
  // Algorithm 2 has a retry loop, so the graph has cycles; exploration must
  // still terminate with a finite graph.
  auto protocol = std::make_shared<DacFromPacProtocol>(
      std::vector<Value>{10, 20});
  Explorer explorer(protocol);
  const auto graph_or = explorer.explore();
  ASSERT_TRUE(graph_or.is_ok());
  EXPECT_GT(graph_or.value().nodes().size(), 10u);
  EXPECT_LT(graph_or.value().nodes().size(), 10'000u);
}

}  // namespace
}  // namespace lbsa::modelcheck
