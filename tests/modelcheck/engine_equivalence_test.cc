// Cross-engine equivalence: the work-stealing engine joins the contract the
// level-synchronous engine already honors — on complete explorations every
// engine, at every thread count, under every reduction mode, produces the
// ConfigGraph bit-identical to the serial reference. Interruption differs
// by design: work-stealing has no level barriers, so max_levels acts as an
// expansion-depth bound and an interrupted/bounded run is trimmed back to
// the deepest fully-expanded level — which must again be the exact serial
// prefix, and resumable by any engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "modelcheck/checkpoint.h"
#include "modelcheck/corpus.h"
#include "modelcheck/explorer.h"
#include "sim/symmetry.h"

namespace lbsa::modelcheck {
namespace {

constexpr Reduction kAllModes[] = {Reduction::kNone, Reduction::kSymmetry,
                                   Reduction::kPor, Reduction::kBoth};

// Small corpus tasks with distinct shapes: symmetric DACs (non-trivial
// orbit), a consensus tree, a violation generator with cycles.
const char* kTasks[] = {"dac3-sym", "dac4-sym", "consensus4-sym",
                        "strawdac3"};

NamedTask get_task(const std::string& name) {
  auto task = make_named_task(name);
  EXPECT_TRUE(task.is_ok()) << task.status().to_string();
  return task.value();
}

ConfigGraph explore_or_die(const NamedTask& task, const ExploreOptions& opts) {
  Explorer explorer(task.protocol);
  auto graph = explorer.explore(opts);
  EXPECT_TRUE(graph.is_ok()) << graph.status().to_string();
  return std::move(graph).value();
}

void expect_identical(const ConfigGraph& a, const ConfigGraph& b) {
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  EXPECT_EQ(a.transition_count(), b.transition_count());
  EXPECT_EQ(a.truncated(), b.truncated());
  EXPECT_EQ(a.interrupted(), b.interrupted());
  EXPECT_EQ(a.levels_completed(), b.levels_completed());
  EXPECT_EQ(a.pending_frontier(), b.pending_frontier());
  for (std::uint32_t id = 0; id < a.nodes().size(); ++id) {
    ASSERT_TRUE(a.nodes()[id].config == b.nodes()[id].config)
        << "config mismatch at node " << id;
    EXPECT_EQ(a.nodes()[id].flag, b.nodes()[id].flag);
    EXPECT_EQ(a.nodes()[id].depth, b.nodes()[id].depth);
    ASSERT_EQ(a.edges()[id], b.edges()[id]) << "edges mismatch at " << id;
    EXPECT_EQ(a.path_to(id), b.path_to(id)) << "path mismatch at " << id;
  }
}

TEST(EngineEquivalence, AllEnginesBitIdenticalAcrossReductionsAndThreads) {
  // The orbit cache is declared a pure accelerator: the cache-off column is
  // the reference and every cache-on run must reproduce it bit for bit.
  // Cache-on runs pass an explicit pool — explore() only auto-creates one
  // for groups of 64+, and these corpus tasks are all smaller, so relying
  // on canon_cache_bytes alone would quietly test nothing.
  auto fresh_pool = [] {
    return std::make_shared<sim::CanonCachePool>(
        ExploreOptions{}.canon_cache_bytes);
  };
  const bool kCacheModes[] = {false, true};
  for (const char* name : kTasks) {
    SCOPED_TRACE(name);
    const NamedTask task = get_task(name);
    for (Reduction reduction : kAllModes) {
      SCOPED_TRACE(reduction_name(reduction));
      ExploreOptions base;
      base.reduction = reduction;
      base.engine = ExploreEngine::kSerial;
      base.canon_cache_bytes = 0;  // uncached serial reference
      const ConfigGraph serial = explore_or_die(task, base);
      EXPECT_EQ(serial.engine_used(), ExploreEngine::kSerial);
      ExploreOptions cached = base;
      cached.canon_cache_bytes = ExploreOptions{}.canon_cache_bytes;
      cached.canon_cache_pool = fresh_pool();
      expect_identical(serial, explore_or_die(task, cached));
      for (ExploreEngine engine :
           {ExploreEngine::kParallel, ExploreEngine::kWorkStealing}) {
        for (int threads : {1, 2, 8}) {
          for (bool use_cache : kCacheModes) {
            SCOPED_TRACE(std::string(engine_name(engine)) + " t" +
                         std::to_string(threads) +
                         (use_cache ? " cache" : " nocache"));
            ExploreOptions opts;
            opts.reduction = reduction;
            opts.engine = engine;
            opts.threads = threads;
            if (use_cache) opts.canon_cache_pool = fresh_pool();
            const ConfigGraph graph = explore_or_die(task, opts);
            EXPECT_EQ(graph.engine_used(), engine);
            EXPECT_FALSE(graph.auto_switched());
            expect_identical(serial, graph);
          }
        }
      }
    }
  }
}

TEST(EngineEquivalence, SharedWarmCachePoolKeepsGraphsIdentical) {
  // The hierarchy-sweep pattern: one pool reused across runs, so later
  // runs answer mostly from a warm cache — and must still reproduce the
  // uncached reference exactly, serial and parallel alike.
  const NamedTask task = get_task("dac4-sym");
  ExploreOptions base;
  base.reduction = Reduction::kSymmetry;
  base.engine = ExploreEngine::kSerial;
  base.canon_cache_bytes = 0;
  const ConfigGraph reference = explore_or_die(task, base);
  auto pool = std::make_shared<sim::CanonCachePool>(std::size_t{1} << 20);
  for (int run = 0; run < 3; ++run) {
    SCOPED_TRACE(run);
    ExploreOptions opts;
    opts.reduction = Reduction::kSymmetry;
    opts.engine = run == 2 ? ExploreEngine::kParallel : ExploreEngine::kSerial;
    opts.threads = run == 2 ? 4 : 1;
    opts.canon_cache_pool = pool;
    expect_identical(reference, explore_or_die(task, opts));
  }
}

TEST(EngineEquivalence, WorkStealingMaxLevelsTrimsToSerialPrefix) {
  // A depth-bounded work-stealing run must land on the same graph as the
  // serial engine interrupted at the same boundary: same prefix, same
  // pending frontier, levels_completed == the bound.
  const NamedTask task = get_task("dac3-sym");
  for (Reduction reduction : kAllModes) {
    SCOPED_TRACE(reduction_name(reduction));
    for (std::uint32_t levels : {1u, 2u, 4u}) {
      SCOPED_TRACE(levels);
      ExploreOptions serial_opts;
      serial_opts.reduction = reduction;
      serial_opts.engine = ExploreEngine::kSerial;
      serial_opts.max_levels = levels;
      const ConfigGraph serial = explore_or_die(task, serial_opts);
      ASSERT_TRUE(serial.interrupted());
      for (int threads : {1, 2, 8}) {
        SCOPED_TRACE(threads);
        ExploreOptions opts;
        opts.reduction = reduction;
        opts.engine = ExploreEngine::kWorkStealing;
        opts.threads = threads;
        opts.max_levels = levels;
        const ConfigGraph ws = explore_or_die(task, opts);
        EXPECT_TRUE(ws.interrupted());
        EXPECT_EQ(ws.levels_completed(), levels);
        expect_identical(serial, ws);
      }
    }
  }
}

TEST(EngineEquivalence, ResumeHopsAcrossAllThreeEngines) {
  // serial (2 levels) -> work-stealing (2 more) -> parallel (to completion):
  // every hop checkpoints, every hop resumes the previous engine's file, and
  // the final graph is bit-identical to one uninterrupted serial run.
  const NamedTask task = get_task("dac4-sym");
  for (Reduction reduction : {Reduction::kNone, Reduction::kBoth}) {
    SCOPED_TRACE(reduction_name(reduction));
    ExploreOptions base;
    base.reduction = reduction;
    base.engine = ExploreEngine::kSerial;
    const ConfigGraph uninterrupted = explore_or_die(task, base);

    const std::string path1 = testing::TempDir() + "/hop1.ckpt";
    const std::string path2 = testing::TempDir() + "/hop2.ckpt";

    ExploreOptions hop1;
    hop1.reduction = reduction;
    hop1.engine = ExploreEngine::kSerial;
    hop1.max_levels = 2;
    hop1.checkpoint_path = path1;
    hop1.checkpoint_label = task.name;
    const ConfigGraph partial1 = explore_or_die(task, hop1);
    ASSERT_TRUE(partial1.interrupted());
    auto cp1 = read_explore_checkpoint(path1);
    ASSERT_TRUE(cp1.is_ok()) << cp1.status().to_string();

    ExploreOptions hop2;
    hop2.reduction = reduction;
    hop2.engine = ExploreEngine::kWorkStealing;
    hop2.threads = 4;
    hop2.max_levels = 2;
    hop2.checkpoint_path = path2;
    hop2.checkpoint_label = task.name;
    hop2.resume = &cp1.value();
    const ConfigGraph partial2 = explore_or_die(task, hop2);
    ASSERT_TRUE(partial2.interrupted());
    EXPECT_EQ(partial2.levels_completed(), 4u);
    auto cp2 = read_explore_checkpoint(path2);
    ASSERT_TRUE(cp2.is_ok()) << cp2.status().to_string();

    ExploreOptions hop3;
    hop3.reduction = reduction;
    hop3.engine = ExploreEngine::kParallel;
    hop3.threads = 4;
    hop3.resume = &cp2.value();
    const ConfigGraph final_graph = explore_or_die(task, hop3);
    EXPECT_FALSE(final_graph.interrupted());
    expect_identical(uninterrupted, final_graph);
  }
}

TEST(EngineEquivalence, WorkStealingRejectsPeriodicCheckpoints) {
  const NamedTask task = get_task("dac3-sym");
  Explorer explorer(task.protocol);
  ExploreOptions opts;
  opts.engine = ExploreEngine::kWorkStealing;
  opts.checkpoint_path = testing::TempDir() + "/never.ckpt";
  opts.checkpoint_every_levels = 2;
  const auto graph = explorer.explore(opts);
  ASSERT_FALSE(graph.is_ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineEquivalence, ParseAndNames) {
  EXPECT_STREQ(engine_name(ExploreEngine::kAuto), "auto");
  EXPECT_STREQ(engine_name(ExploreEngine::kSerial), "serial");
  EXPECT_STREQ(engine_name(ExploreEngine::kParallel), "parallel");
  EXPECT_STREQ(engine_name(ExploreEngine::kWorkStealing), "workstealing");
  for (const char* name : {"auto", "serial", "parallel", "workstealing"}) {
    const auto parsed = parse_engine(name);
    ASSERT_TRUE(parsed.is_ok()) << name;
    EXPECT_STREQ(engine_name(parsed.value()), name);
  }
  EXPECT_EQ(parse_engine("stealing").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineEquivalence, WorkStealingTruncatedGraphIsConsistent) {
  // Truncated prefixes are schedule-dependent for every engine; what the
  // work-stealing engine still owes is internal consistency and replayable
  // parent chains.
  const NamedTask task = get_task("strawdac3");
  for (int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    ExploreOptions opts;
    opts.max_nodes = 50;
    opts.allow_truncation = true;
    opts.engine = ExploreEngine::kWorkStealing;
    opts.threads = threads;
    const ConfigGraph graph = explore_or_die(task, opts);
    EXPECT_TRUE(graph.truncated());
    for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
      for (const Edge& e : graph.edges()[id]) {
        ASSERT_LT(e.to, graph.nodes().size());
      }
      sim::Config config = sim::initial_config(*task.protocol);
      for (const sim::Step& step : graph.path_to(id)) {
        sim::apply_step(*task.protocol, &config, step.pid,
                        step.outcome_choice);
      }
      EXPECT_EQ(config, graph.nodes()[id].config);
    }
  }
}

}  // namespace
}  // namespace lbsa::modelcheck
