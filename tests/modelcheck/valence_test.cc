// Valence analysis tests: the mechanized form of the bivalency vocabulary
// used by Theorems 4.2 and 5.2 (initial bivalence, univalent successors,
// critical configurations).
#include "modelcheck/valence.h"

#include <gtest/gtest.h>

#include "protocols/flp_race.h"
#include "protocols/one_shot.h"

namespace lbsa::modelcheck {
namespace {

using protocols::FlpRaceProtocol;
using protocols::make_consensus_via_n_consensus;
using protocols::make_ksa_via_two_sa;

ConfigGraph explore(std::shared_ptr<const sim::Protocol> protocol) {
  Explorer explorer(std::move(protocol));
  auto graph_or = explorer.explore();
  EXPECT_TRUE(graph_or.is_ok());
  return std::move(graph_or).value();
}

TEST(ValenceAnalyzer, ConsensusViaObjectInitialConfigIsBivalent) {
  // With a real consensus object, the *initial* configuration is bivalent
  // (either process can win) and every configuration after the first
  // propose is univalent.
  const ConfigGraph graph = explore(make_consensus_via_n_consensus({0, 1}));
  ValenceAnalyzer analyzer(graph);
  EXPECT_TRUE(analyzer.is_multivalent(graph.root()));
  // Both decision values are observed.
  ASSERT_EQ(analyzer.universe().size(), 2u);
  // Every successor of the root is univalent: the first propose decides.
  for (const Edge& e : graph.edges()[graph.root()]) {
    EXPECT_TRUE(analyzer.is_univalent(e.to));
  }
  // So the root is a critical configuration.
  const auto critical = analyzer.critical_nodes();
  ASSERT_EQ(critical.size(), 1u);
  EXPECT_EQ(critical[0], graph.root());
}

TEST(ValenceAnalyzer, UnivalentValueMatchesWinner) {
  const ConfigGraph graph = explore(make_consensus_via_n_consensus({0, 1}));
  ValenceAnalyzer analyzer(graph);
  for (const Edge& e : graph.edges()[graph.root()]) {
    const std::uint32_t succ = e.to;
    ASSERT_TRUE(analyzer.is_univalent(succ));
    // The winner is the pid that proposed first (pid == its input here).
    EXPECT_EQ(analyzer.univalent_value(succ), static_cast<Value>(e.pid));
  }
}

TEST(ValenceAnalyzer, FlpRaceHasBivalentInitialConfig) {
  // Claim 5.2.1's shape on a register-only candidate: the initial
  // configuration is bivalent.
  const ConfigGraph graph =
      explore(std::make_shared<FlpRaceProtocol>(5, 3));
  ValenceAnalyzer analyzer(graph);
  EXPECT_TRUE(analyzer.is_multivalent(graph.root()));
}

TEST(ValenceAnalyzer, FlpRaceLivelockCycleIsUnivalent) {
  // The FLP race fails termination through a livelock in which the loser
  // spins against an already-decided peer. The spinning region is
  // *univalent* (the peer's decision is fixed); mechanically: the
  // configuration graph contains a cycle, and every node on some cycle is
  // univalent with a non-halted process.
  const ConfigGraph graph = explore(std::make_shared<FlpRaceProtocol>(5, 3));
  ValenceAnalyzer analyzer(graph);

  // Iterative DFS cycle detection (colors: 0 = white, 1 = on stack,
  // 2 = done).
  const size_t n = graph.nodes().size();
  std::vector<char> color(n, 0);
  std::uint32_t cycle_node = static_cast<std::uint32_t>(n);
  std::vector<std::pair<std::uint32_t, size_t>> stack{{graph.root(), 0}};
  color[graph.root()] = 1;
  while (!stack.empty() && cycle_node == n) {
    auto& [v, pos] = stack.back();
    if (pos < graph.edges()[v].size()) {
      const std::uint32_t to = graph.edges()[v][pos++].to;
      if (color[to] == 0) {
        color[to] = 1;
        stack.push_back({to, 0});
      } else if (color[to] == 1) {
        cycle_node = to;
      }
    } else {
      color[v] = 2;
      stack.pop_back();
    }
  }
  ASSERT_LT(cycle_node, n) << "expected a livelock cycle";
  EXPECT_TRUE(analyzer.is_univalent(cycle_node));
  EXPECT_FALSE(graph.nodes()[cycle_node].config.halted());
}

TEST(ValenceAnalyzer, KsaGraphObservesBothValues) {
  const ConfigGraph graph = explore(make_ksa_via_two_sa({7, 9}));
  ValenceAnalyzer analyzer(graph);
  EXPECT_EQ(analyzer.universe().size(), 2u);
  // 2 processes / 2-SA: both may decide their own values; the root can reach
  // both decisions.
  EXPECT_TRUE(analyzer.is_multivalent(graph.root()));
}

TEST(ValenceAnalyzer, TerminalNodesAreUnivalentOrDecisionFree) {
  const ConfigGraph graph = explore(make_consensus_via_n_consensus({0, 1}));
  ValenceAnalyzer analyzer(graph);
  for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
    if (graph.nodes()[id].config.halted()) {
      EXPECT_LE(analyzer.reachable_count(id), 1);
    }
  }
}

TEST(ValenceAnalyzer, MultivalentNodesListMatchesPredicate) {
  const ConfigGraph graph = explore(make_consensus_via_n_consensus({0, 1}));
  ValenceAnalyzer analyzer(graph);
  const auto nodes = analyzer.multivalent_nodes();
  for (std::uint32_t id : nodes) EXPECT_TRUE(analyzer.is_multivalent(id));
  size_t count = 0;
  for (std::uint32_t id = 0; id < graph.nodes().size(); ++id) {
    if (analyzer.is_multivalent(id)) ++count;
  }
  EXPECT_EQ(nodes.size(), count);
}

}  // namespace
}  // namespace lbsa::modelcheck
