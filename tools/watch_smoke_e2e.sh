#!/usr/bin/env bash
# watch_smoke_e2e.sh — the live-telemetry loop end to end through the real
# binaries (docs/observability.md, "Watching a run"): explorer_cli streams
# --heartbeat-out while lbsa_watch tails the file *concurrently*, exits on
# the final heartbeat, and writes a --summary-json digest. `report_check
# heartbeat` then validates both artifacts, and the digest's totals are
# cross-checked against the stream's last line.
#
# Usage: tools/watch_smoke_e2e.sh [build-dir]
#   WATCH_TASK   task to run (default dac5 — long enough for the watcher to
#                genuinely tail a live file, still sub-second on CI)
set -euo pipefail

BUILD_DIR="${1:-build}"
EXPLORER="$BUILD_DIR/tools/explorer_cli"
WATCH="$BUILD_DIR/tools/lbsa_watch"
CHECK="$BUILD_DIR/tools/report_check"
WATCH_TASK="${WATCH_TASK:-dac5}"

for bin in "$EXPLORER" "$WATCH" "$CHECK"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found or not executable; build first" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
EXPLORER_PID=""
cleanup() {
  [[ -n "$EXPLORER_PID" ]] && kill "$EXPLORER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

HB="$TMP/heartbeat.jsonl"
SUMMARY="$TMP/summary.json"

# Start the watcher BEFORE the producer: it must cope with the stream file
# not existing yet, then pick it up and follow.
"$WATCH" "$HB" --summary-json "$SUMMARY" --timeout-s 120 --quiet &
WATCH_PID=$!

# A fast heartbeat interval so even a sub-second exploration yields a
# multi-line stream for the watcher to chew through.
"$EXPLORER" "$WATCH_TASK" --threads 2 \
    --heartbeat-out "$HB" --heartbeat-every 0.02 \
    --metrics-json "$TMP/run.json" > "$TMP/explorer.out" &
EXPLORER_PID=$!

wait "$EXPLORER_PID"
EXPLORER_PID=""
if ! wait "$WATCH_PID"; then
  echo "error: lbsa_watch did not exit 0 on the final heartbeat" >&2
  exit 1
fi

echo "--- artifacts"
"$CHECK" heartbeat "$HB" "$SUMMARY"
"$CHECK" run-report "$TMP/run.json"

# The digest must agree with the stream it summarizes.
last_line="$(tail -n 1 "$HB")"
for field in run_id nodes_total transitions_total; do
  stream_value="$(sed -nE "s/.*\"$field\":\"?([a-z0-9]+)\"?[,}].*/\1/p" \
                  <<<"$last_line")"
  digest_value="$(sed -nE "s/.*\"$field\":\"?([a-z0-9]+)\"?[,}].*/\1/p" \
                  < "$SUMMARY")"
  if [[ -z "$stream_value" || "$stream_value" != "$digest_value" ]]; then
    echo "error: digest $field=$digest_value != stream $field=$stream_value" \
         >&2
    exit 1
  fi
done
grep -q '"final_seen":true' "$SUMMARY" || {
  echo "error: digest does not record the final heartbeat" >&2
  exit 1
}

# At least two lines: the watcher really followed a stream, not a one-shot.
lines="$(wc -l < "$HB")"
if (( lines < 2 )); then
  echo "error: expected a multi-line stream, got $lines line(s)" >&2
  exit 1
fi
echo "ok: watched $lines heartbeats live; stream + digest validate"
