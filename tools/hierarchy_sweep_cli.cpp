// hierarchy_sweep_cli — machine-check the (n,m)-PAC consensus-power table
// (core/hierarchy_sweep.h): for every (n, m) in the requested range, verify
// under all schedules that the object's consensus port solves m-consensus
// for every p <= m, that its PAC ports solve n-DAC, and that the verdict
// matches the hierarchy_catalog declaration (Theorems 5.2/5.3,
// Observation 5.1(b)).
//
//   ./hierarchy_sweep_cli [--n-min N] [--n-max N] [--only N,M]
//                         [--engine auto|serial|parallel|workstealing]
//                         [--threads N] [--max-nodes N]
//                         [--check-reduction none|por|both]
//                         [--rows-json PATH] [--out PATH] [--markdown]
//                         [--metrics-json PATH] [--trace-out PATH]
//                         [--heartbeat-out PATH] [--heartbeat-every S]
//
// --rows-json writes the deterministic rows document (byte-identical across
// engines, thread counts, and --check-reduction modes); --out writes the
// full HIERARCHY.json artifact (rows + provenance), schema-checked by
// `report_check hierarchy`. --markdown prints the consensus-power table.
// --only N,M checks a single cell and prints its row document. The obs
// flags match the other tools (shared ObsCli): --heartbeat-out streams live
// telemetry across the whole sweep — the cumulative node/transition totals
// accumulate over cells, so `lbsa_watch` shows sweep-wide progress.
//
// Exit codes:
//   0  every requested row verified and matches the catalog
//   1  error (exploration failure, cross-check verdict disagreement, I/O)
//   2  usage error
//   3  sweep completed but some row failed verification
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/hierarchy_sweep.h"
#include "modelcheck/explorer.h"
#include "obs/cli.h"
#include "obs/json.h"
#include "obs/report.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: hierarchy_sweep_cli [--n-min N] [--n-max N] [--only N,M]\n"
      "                           [--engine auto|serial|parallel|"
      "workstealing]\n"
      "                           [--threads N] [--max-nodes N]\n"
      "                           [--check-reduction none|por|both]\n"
      "                           [--rows-json PATH] [--out PATH] "
      "[--markdown]\n"
      "                           [--metrics-json PATH] [--trace-out PATH]\n"
      "                           [--heartbeat-out PATH] "
      "[--heartbeat-every S]\n");
  return 2;
}

void print_row(const lbsa::core::SweepRow& row) {
  std::printf(
      "(%d,%d)-PAC: level %lld  consensus[p<=%d] %s (%llu nodes, %.2fx)  "
      "dac[%d] %s (%llu nodes, %.2fx)  catalog %s\n",
      row.n, row.m, static_cast<long long>(row.declared_level), row.m,
      row.consensus_ok_all_p ? "ok" : "FAIL",
      static_cast<unsigned long long>(row.consensus.nodes),
      row.consensus.reduction_ratio, row.dac.processes,
      row.dac.ok ? "ok" : "FAIL",
      static_cast<unsigned long long>(row.dac.nodes),
      row.dac.reduction_ratio, row.matches_catalog ? "match" : "MISMATCH");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsa;

  core::SweepOptions options;
  options.threads = 1;
  bool only = false;
  int only_n = 0;
  int only_m = 0;
  std::string rows_json_path;
  std::string out_path;
  bool markdown = false;

  obs::ObsCli obs_cli("hierarchy_sweep_cli");
  for (int i = 1; i < argc; ++i) {
    auto next_arg = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (obs_cli.consume(argc, argv, &i)) {
      continue;
    } else if (!std::strcmp(argv[i], "--n-min")) {
      options.n_min =
          static_cast<int>(std::strtol(next_arg("--n-min"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--n-max")) {
      options.n_max =
          static_cast<int>(std::strtol(next_arg("--n-max"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--only")) {
      only = true;
      if (std::sscanf(next_arg("--only"), "%d,%d", &only_n, &only_m) != 2) {
        std::fprintf(stderr, "--only needs N,M\n");
        return usage();
      }
    } else if (!std::strcmp(argv[i], "--engine")) {
      auto engine = modelcheck::parse_engine(next_arg("--engine"));
      if (!engine.is_ok()) {
        std::fprintf(stderr, "%s\n", engine.status().to_string().c_str());
        return usage();
      }
      options.engine = engine.value();
    } else if (!std::strcmp(argv[i], "--threads")) {
      options.threads =
          static_cast<int>(std::strtol(next_arg("--threads"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--max-nodes")) {
      options.max_nodes = std::strtoull(next_arg("--max-nodes"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--check-reduction")) {
      auto reduction = modelcheck::parse_reduction(
          next_arg("--check-reduction"));
      if (!reduction.is_ok()) {
        std::fprintf(stderr, "%s\n", reduction.status().to_string().c_str());
        return usage();
      }
      options.cross_check = reduction.value();
    } else if (!std::strcmp(argv[i], "--rows-json")) {
      rows_json_path = next_arg("--rows-json");
    } else if (!std::strcmp(argv[i], "--out")) {
      out_path = next_arg("--out");
    } else if (!std::strcmp(argv[i], "--markdown")) {
      markdown = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  if (options.n_min < 2 || options.n_max < options.n_min) {
    std::fprintf(stderr, "need 2 <= --n-min <= --n-max\n");
    return usage();
  }

  if (only) {
    if (only_n < 2 || only_m < 1 || only_m > only_n) {
      std::fprintf(stderr, "--only needs N >= 2 and 1 <= M <= N\n");
      return usage();
    }
    if (!rows_json_path.empty() || !out_path.empty()) {
      std::fprintf(stderr, "--only cannot be combined with --rows-json/--out "
                           "(artifacts must cover the full grid)\n");
      return usage();
    }
    if (const Status s = obs_cli.start_heartbeat(
            "hierarchy",
            obs::derive_run_id(
                "hierarchy_sweep_cli", "hierarchy",
                std::to_string(only_n) + "," + std::to_string(only_m),
                options.max_nodes));
        !s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
    auto row_or = core::run_hierarchy_row(only_n, only_m, options);
    if (!row_or.is_ok()) {
      std::fprintf(stderr, "%s\n", row_or.status().to_string().c_str());
      return 1;
    }
    print_row(row_or.value());
    obs::RunReport run_report;
    run_report.task = "hierarchy";
    run_report.params = {
        {"n", std::to_string(only_n)},
        {"m", std::to_string(only_m)},
        {"threads", std::to_string(options.threads)},
        {"engine",
         "\"" + std::string(modelcheck::engine_name(options.engine)) + "\""},
        {"max_nodes", std::to_string(options.max_nodes)},
    };
    {
      obs::JsonWriter w;
      w.begin_object();
      w.key("rows");
      w.value_uint(1);
      w.key("all_ok");
      w.value_bool(row_or.value().ok());
      w.end_object();
      run_report.sections.emplace_back("hierarchy", std::move(w).str());
    }
    if (const Status s = obs_cli.finish(&run_report); !s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
    return row_or.value().ok() ? 0 : 3;
  }

  if (const Status s = obs_cli.start_heartbeat(
          "hierarchy",
          obs::derive_run_id("hierarchy_sweep_cli", "hierarchy",
                             std::to_string(options.n_min) + ".." +
                                 std::to_string(options.n_max),
                             options.max_nodes));
      !s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }

  auto result_or = core::run_hierarchy_sweep(options);
  if (!result_or.is_ok()) {
    std::fprintf(stderr, "%s\n", result_or.status().to_string().c_str());
    return 1;
  }
  const core::SweepResult& result = result_or.value();
  for (const core::SweepRow& row : result.rows) print_row(row);

  if (markdown) {
    std::printf("\n%s", core::hierarchy_table_markdown(result).c_str());
  }

  if (!rows_json_path.empty()) {
    const Status s = obs::write_text_file(rows_json_path,
                                          core::hierarchy_rows_json(result));
    if (!s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
  }
  if (!out_path.empty()) {
    core::SweepProvenance provenance;
    provenance.engine = modelcheck::engine_name(options.engine);
    provenance.threads = options.threads;
    provenance.threads_available =
        static_cast<int>(std::thread::hardware_concurrency());
    if (provenance.threads_available < 1) provenance.threads_available = 1;
    const std::string artifact =
        core::hierarchy_artifact_json(result, provenance);
    // Self-check before writing: this binary never leaves an artifact behind
    // that `report_check hierarchy` would reject. (A sweep with failing rows
    // is still written for postmortems — the schema validator rejecting it
    // downstream is the point.)
    if (result.all_ok()) {
      if (const Status s = obs::validate_hierarchy_artifact_json(artifact);
          !s.is_ok()) {
        std::fprintf(stderr, "internal: emitted artifact fails schema: %s\n",
                     s.to_string().c_str());
        return 1;
      }
    }
    if (const Status s = obs::write_text_file(out_path, artifact);
        !s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
  }

  obs::RunReport run_report;
  run_report.task = "hierarchy";
  run_report.params = {
      {"n_min", std::to_string(options.n_min)},
      {"n_max", std::to_string(options.n_max)},
      {"threads", std::to_string(options.threads)},
      {"threads_available",
       std::to_string(std::thread::hardware_concurrency())},
      {"engine",
       "\"" + std::string(modelcheck::engine_name(options.engine)) + "\""},
      {"max_nodes", std::to_string(options.max_nodes)},
  };
  {
    obs::JsonWriter w;
    w.begin_object();
    w.key("rows");
    w.value_uint(result.rows.size());
    w.key("all_ok");
    w.value_bool(result.all_ok());
    w.end_object();
    run_report.sections.emplace_back("hierarchy", std::move(w).str());
  }
  if (const Status s = obs_cli.finish(&run_report); !s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }

  if (!result.all_ok()) {
    std::fprintf(stderr, "hierarchy sweep: some row failed verification\n");
    return 3;
  }
  return 0;
}
