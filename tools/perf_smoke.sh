#!/usr/bin/env bash
# perf_smoke.sh — coarse parallel-vs-serial throughput gate for CI.
#
# Runs explorer_cli on dac5 (the smallest task big enough that exploration
# time dominates engine setup) with the serial engine and with the parallel
# engines at 4 threads, best-of-3 after a warmup, and fails if the faster
# parallel engine's nodes/sec falls below MIN_RATIO x serial. This is a
# 1.0x regression gate on the parallel hot path, not a microbenchmark —
# scheduler noise on shared CI runners makes tighter ratios flaky.
#
# On a single-core host the gate is skipped (exit 0 with a warning): with
# every thread timesharing one core, parallel throughput measures per-node
# overhead rather than speedup, and a ">= serial" gate would fail for
# reasons no code change can fix. The measured ratio is still printed so
# the log records what the host saw.
#
# A second gate bounds observability overhead: the same task explored with
# a 1s heartbeat sampler attached must stay within MAX_OBS_OVERHEAD_PCT of
# the LBSA_OBS_DISABLED baseline (docs/observability.md, "Overhead"). The
# sampler reads relaxed atomics the engines publish at quiescence points,
# so the expected cost is well under a percent; 2% leaves room for noise.
#
# Usage: tools/perf_smoke.sh [build-dir]
#   MIN_RATIO             parallel gate threshold (default 1.0)
#   PERF_TASK             task to run (default dac5)
#   MAX_OBS_OVERHEAD_PCT  heartbeat overhead gate (default 2)
set -euo pipefail

BUILD_DIR="${1:-build}"
EXPLORER="$BUILD_DIR/tools/explorer_cli"
MIN_RATIO="${MIN_RATIO:-1.0}"
PERF_TASK="${PERF_TASK:-dac5}"

if [[ ! -x "$EXPLORER" ]]; then
  echo "error: $EXPLORER not found or not executable; build first" >&2
  exit 1
fi

CORES="$(nproc 2>/dev/null || echo 1)"

# best_rate ENGINE THREADS -> best nodes/sec of 3 timed runs (1 warmup).
best_rate() {
  local engine="$1" threads="$2" best=0 rate
  "$EXPLORER" "$PERF_TASK" --engine "$engine" --threads "$threads" \
      > /dev/null
  for _ in 1 2 3; do
    rate="$("$EXPLORER" "$PERF_TASK" --engine "$engine" \
                --threads "$threads" \
            | sed -nE 's/^ *elapsed [0-9.]+ s, ([0-9]+) nodes\/s$/\1/p')"
    if (( rate > best )); then best="$rate"; fi
  done
  echo "$best"
}

SERIAL="$(best_rate serial 1)"
PARALLEL="$(best_rate parallel 4)"
WORKSTEALING="$(best_rate workstealing 4)"
BEST_PAR=$(( PARALLEL > WORKSTEALING ? PARALLEL : WORKSTEALING ))

RATIO="$(awk -v p="$BEST_PAR" -v s="$SERIAL" \
             'BEGIN { printf("%.2f", (s > 0) ? p / s : 0) }')"
echo "perf smoke ($PERF_TASK, $CORES cores):" \
     "serial=$SERIAL parallel(t4)=$PARALLEL workstealing(t4)=$WORKSTEALING" \
     "best-parallel/serial=${RATIO}x"

if (( CORES < 2 )); then
  # The overhead gate below still runs: it compares like against like, so a
  # timeshared core cancels out of the ratio.
  echo "warn: single-core host; parallel-vs-serial gate skipped" >&2
elif awk -v r="$RATIO" -v m="$MIN_RATIO" 'BEGIN { exit !(r < m) }'; then
  echo "error: best parallel engine is ${RATIO}x serial (< ${MIN_RATIO}x)" >&2
  exit 1
else
  echo "ok: parallel >= ${MIN_RATIO}x serial"
fi

# --- heartbeat-overhead gate ------------------------------------------------
MAX_OBS_OVERHEAD_PCT="${MAX_OBS_OVERHEAD_PCT:-2}"
HB_TMP="$(mktemp -d)"
trap 'rm -rf "$HB_TMP"' EXIT INT TERM

# best_rate_obs MODE -> best nodes/sec of 3 timed runs (1 warmup), with the
# heartbeat sampler attached (mode=heartbeat, fresh stream per run) or the
# runtime kill switch set (mode=disabled).
best_rate_obs() {
  local mode="$1" best=0 rate run
  for run in 0 1 2 3; do
    if [[ "$mode" == heartbeat ]]; then
      rate="$("$EXPLORER" "$PERF_TASK" --threads 4 \
                  --heartbeat-out "$HB_TMP/$mode-$run.jsonl" \
                  --heartbeat-every 1 \
              | sed -nE 's/^ *elapsed [0-9.]+ s, ([0-9]+) nodes\/s$/\1/p')"
    else
      rate="$(LBSA_OBS_DISABLED=1 "$EXPLORER" "$PERF_TASK" --threads 4 \
              | sed -nE 's/^ *elapsed [0-9.]+ s, ([0-9]+) nodes\/s$/\1/p')"
    fi
    if [[ $run -gt 0 ]] && (( rate > best )); then best="$rate"; fi
  done
  echo "$best"
}

HB_RATE="$(best_rate_obs heartbeat)"
OFF_RATE="$(best_rate_obs disabled)"
OVERHEAD="$(awk -v h="$HB_RATE" -v o="$OFF_RATE" \
                'BEGIN { printf("%.2f", (o > 0) ? (o - h) * 100.0 / o : 0) }')"
echo "obs overhead ($PERF_TASK): heartbeat=$HB_RATE disabled=$OFF_RATE" \
     "overhead=${OVERHEAD}%"
if awk -v x="$OVERHEAD" -v m="$MAX_OBS_OVERHEAD_PCT" \
       'BEGIN { exit !(x > m) }'; then
  echo "error: heartbeat sampling costs ${OVERHEAD}% nodes/sec" \
       "(> ${MAX_OBS_OVERHEAD_PCT}%)" >&2
  exit 1
fi
echo "ok: heartbeat overhead <= ${MAX_OBS_OVERHEAD_PCT}%"
