#!/usr/bin/env bash
# perf_smoke.sh — coarse parallel-vs-serial throughput gate for CI.
#
# Runs explorer_cli on dac5 (the smallest task big enough that exploration
# time dominates engine setup) with the serial engine and with the parallel
# engines at 4 threads, best-of-3 after a warmup, and fails if the faster
# parallel engine's nodes/sec falls below MIN_RATIO x serial. This is a
# 1.0x regression gate on the parallel hot path, not a microbenchmark —
# scheduler noise on shared CI runners makes tighter ratios flaky.
#
# On a single-core host the gate is skipped (exit 0 with a warning): with
# every thread timesharing one core, parallel throughput measures per-node
# overhead rather than speedup, and a ">= serial" gate would fail for
# reasons no code change can fix. The measured ratio is still printed so
# the log records what the host saw.
#
# A second gate bounds observability overhead: the same task explored with
# a 1s heartbeat sampler attached must stay within MAX_OBS_OVERHEAD_PCT of
# the LBSA_OBS_DISABLED baseline (docs/observability.md, "Overhead"). The
# sampler reads relaxed atomics the engines publish at quiescence points,
# so the expected cost is well under a percent; 2% leaves room for noise.
#
# A third gate asserts that symmetry reduction pays at wall-clock: the same
# task explored serially with --reduction symmetry must finish strictly
# faster than with --reduction none (docs/checking.md, "State-space
# reduction"). Serial and single-threaded on both sides, so this gate runs
# on single-core hosts too. It protects the pruned canonical search and
# orbit cache from regressing back to "reduction costs more than it saves".
#
# Usage: tools/perf_smoke.sh [build-dir]
#   MIN_RATIO             parallel gate threshold (default 1.0)
#   PERF_TASK             task to run (default dac5)
#   MAX_OBS_OVERHEAD_PCT  heartbeat overhead gate (default 2)
#   SYM_TASK              symmetry-pays gate task (default dac5-sym; must
#                         have a nontrivial symmetry group — plain dac5 has
#                         distinct inputs, so its group is trivial and
#                         reduction=symmetry is pure overhead there)
set -euo pipefail

BUILD_DIR="${1:-build}"
EXPLORER="$BUILD_DIR/tools/explorer_cli"
MIN_RATIO="${MIN_RATIO:-1.0}"
PERF_TASK="${PERF_TASK:-dac5}"

if [[ ! -x "$EXPLORER" ]]; then
  echo "error: $EXPLORER not found or not executable; build first" >&2
  exit 1
fi

CORES="$(nproc 2>/dev/null || echo 1)"

# best_rate ENGINE THREADS -> best nodes/sec of 3 timed runs (1 warmup).
best_rate() {
  local engine="$1" threads="$2" best=0 rate
  "$EXPLORER" "$PERF_TASK" --engine "$engine" --threads "$threads" \
      > /dev/null
  for _ in 1 2 3; do
    rate="$("$EXPLORER" "$PERF_TASK" --engine "$engine" \
                --threads "$threads" \
            | sed -nE 's/^ *elapsed [0-9.]+ s, ([0-9]+) nodes\/s$/\1/p')"
    if (( rate > best )); then best="$rate"; fi
  done
  echo "$best"
}

SERIAL="$(best_rate serial 1)"
PARALLEL="$(best_rate parallel 4)"
WORKSTEALING="$(best_rate workstealing 4)"
BEST_PAR=$(( PARALLEL > WORKSTEALING ? PARALLEL : WORKSTEALING ))

RATIO="$(awk -v p="$BEST_PAR" -v s="$SERIAL" \
             'BEGIN { printf("%.2f", (s > 0) ? p / s : 0) }')"
echo "perf smoke ($PERF_TASK, $CORES cores):" \
     "serial=$SERIAL parallel(t4)=$PARALLEL workstealing(t4)=$WORKSTEALING" \
     "best-parallel/serial=${RATIO}x"

if (( CORES < 2 )); then
  # The overhead gate below still runs: it compares like against like, so a
  # timeshared core cancels out of the ratio.
  echo "warn: single-core host; parallel-vs-serial gate skipped" >&2
elif awk -v r="$RATIO" -v m="$MIN_RATIO" 'BEGIN { exit !(r < m) }'; then
  echo "error: best parallel engine is ${RATIO}x serial (< ${MIN_RATIO}x)" >&2
  exit 1
else
  echo "ok: parallel >= ${MIN_RATIO}x serial"
fi

# --- heartbeat-overhead gate ------------------------------------------------
MAX_OBS_OVERHEAD_PCT="${MAX_OBS_OVERHEAD_PCT:-2}"
HB_TMP="$(mktemp -d)"
trap 'rm -rf "$HB_TMP"' EXIT INT TERM

# rate_obs MODE RUN -> nodes/sec of one run, with the heartbeat sampler
# attached (mode=heartbeat, fresh stream per run) or the runtime kill
# switch set (mode=disabled).
rate_obs() {
  local mode="$1" run="$2"
  if [[ "$mode" == heartbeat ]]; then
    "$EXPLORER" "$PERF_TASK" --threads 4 \
        --heartbeat-out "$HB_TMP/$mode-$run.jsonl" \
        --heartbeat-every 1 \
      | sed -nE 's/^ *elapsed [0-9.]+ s, ([0-9]+) nodes\/s$/\1/p'
  else
    LBSA_OBS_DISABLED=1 "$EXPLORER" "$PERF_TASK" --threads 4 \
      | sed -nE 's/^ *elapsed [0-9.]+ s, ([0-9]+) nodes\/s$/\1/p'
  fi
}

# Best-of-3 per mode after one warmup each, with the two modes interleaved
# within each round: loaded CI hosts drift through fast and slow windows
# lasting longer than a whole batch, so back-to-back batches of one mode
# each can land in different windows and report phantom overhead. Pairing
# the modes per round keeps both sides in the same window.
rate_obs heartbeat 0 > /dev/null
rate_obs disabled 0 > /dev/null
HB_RATE=0
OFF_RATE=0
for run in 1 2 3; do
  r="$(rate_obs heartbeat "$run")"
  if (( r > HB_RATE )); then HB_RATE="$r"; fi
  r="$(rate_obs disabled "$run")"
  if (( r > OFF_RATE )); then OFF_RATE="$r"; fi
done
OVERHEAD="$(awk -v h="$HB_RATE" -v o="$OFF_RATE" \
                'BEGIN { printf("%.2f", (o > 0) ? (o - h) * 100.0 / o : 0) }')"
echo "obs overhead ($PERF_TASK): heartbeat=$HB_RATE disabled=$OFF_RATE" \
     "overhead=${OVERHEAD}%"
if awk -v x="$OVERHEAD" -v m="$MAX_OBS_OVERHEAD_PCT" \
       'BEGIN { exit !(x > m) }'; then
  echo "error: heartbeat sampling costs ${OVERHEAD}% nodes/sec" \
       "(> ${MAX_OBS_OVERHEAD_PCT}%)" >&2
  exit 1
fi
echo "ok: heartbeat overhead <= ${MAX_OBS_OVERHEAD_PCT}%"

# --- symmetry-pays gate -----------------------------------------------------
SYM_TASK="${SYM_TASK:-dac5-sym}"

# best_elapsed REDUCTION -> smallest elapsed seconds of 3 timed runs
# (1 warmup), serial engine, one thread. The gate is on wall-clock, not
# nodes/sec: the two reductions explore different numbers of nodes, so only
# elapsed time compares them fairly.
best_elapsed() {
  local reduction="$1" best="" t
  "$EXPLORER" "$SYM_TASK" --engine serial --threads 1 \
      --reduction "$reduction" > /dev/null
  for _ in 1 2 3; do
    t="$("$EXPLORER" "$SYM_TASK" --engine serial --threads 1 \
             --reduction "$reduction" \
         | sed -nE 's/^ *elapsed ([0-9.]+) s, [0-9]+ nodes\/s$/\1/p')"
    if [[ -z "$best" ]] || awk -v t="$t" -v b="$best" \
           'BEGIN { exit !(t < b) }'; then
      best="$t"
    fi
  done
  echo "$best"
}

NONE_S="$(best_elapsed none)"
SYM_S="$(best_elapsed symmetry)"
echo "sym cost ($SYM_TASK, serial t1): none=${NONE_S}s symmetry=${SYM_S}s"
if awk -v s="$SYM_S" -v n="$NONE_S" 'BEGIN { exit !(s >= n) }'; then
  echo "error: reduction=symmetry (${SYM_S}s) is not faster than" \
       "reduction=none (${NONE_S}s)" >&2
  exit 1
fi
echo "ok: symmetry reduction beats reduction=none on wall-clock"
