#!/usr/bin/env bash
# hierarchy_report.sh — produce the machine-checked consensus-power table
# HIERARCHY.json (core/hierarchy_sweep.h): one row per (n, m), 2 <= n <=
# n_max, 1 <= m <= n, each certifying under ALL schedules that the
# (n,m)-PAC's consensus port solves m-consensus (for every p <= m), that its
# PAC ports solve n-DAC, and that the verdict matches the hierarchy catalog
# (Theorems 5.2/5.3, Observation 5.1(b)).
#
# Determinism matrix: before emitting the artifact, the deterministic rows
# document is re-produced on a reduced range (HIERARCHY_MATRIX_N_MAX,
# default 4) across engines x thread counts x cross-check reduction modes
# and byte-compared — the canonical-graph guarantee, proven at the artifact
# level. Then one canonical full-range run (serial, 1 thread) writes the
# artifact, which must pass `report_check hierarchy` before it is published
# atomically (same-directory staged rename; see run_report.sh for the
# discipline this mirrors).
#
# Usage: tools/hierarchy_report.sh [build-dir] [output.json]
# Env:   HIERARCHY_N_MAX (default 6)         full-range upper bound
#        HIERARCHY_MATRIX_N_MAX (default 4)  determinism-matrix upper bound
#        ROW_TIMEOUT (default 120)           per-invocation budget, seconds
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-HIERARCHY.json}"

SWEEP="$BUILD_DIR/tools/hierarchy_sweep_cli"
CHECK="$BUILD_DIR/tools/report_check"
for bin in "$SWEEP" "$CHECK"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found or not executable; build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
done

N_MAX="${HIERARCHY_N_MAX:-6}"
MATRIX_N_MAX="${HIERARCHY_MATRIX_N_MAX:-4}"

TMP="$(mktemp -d)"
# Staged in $OUT's own directory (a cross-filesystem mv from $TMP would not
# be atomic) and renamed into place only after it validates; the trap keeps
# every exit path (including ^C) from leaving a torn or stale artifact.
STAGED="$OUT.tmp.$$"
trap 'rm -rf "$TMP" "$STAGED"' EXIT INT TERM

# Per-invocation wall-clock budget. The full n <= 6 sweep finishes in
# seconds; an invocation that hits this is a stall, not a slow run.
ROW_TIMEOUT="${ROW_TIMEOUT:-120}"

# run_sweep ROWS_OUT EXTRA_ARGS...
# One sweep invocation under `timeout` with one retry — a transient stall
# (overloaded CI machine) gets a second chance, a repeat failure aborts the
# script (the EXIT trap discards the partial artifact). Any nonzero exit is
# a failure: exit 3 means a row refuted the declared level, which must never
# publish.
run_sweep() {
  local rows_out="$1" rc attempt
  shift
  for attempt in 1 2; do
    rc=0
    timeout "$ROW_TIMEOUT" "$SWEEP" --rows-json "$rows_out" "$@" \
        > /dev/null || rc=$?
    [[ $rc -eq 0 ]] && return 0
    echo "warn: hierarchy_sweep_cli $* exited $rc (attempt $attempt)" >&2
    if [[ $attempt -eq 2 ]]; then
      echo "error: sweep failed twice; no artifact written" >&2
      exit 1
    fi
  done
}

# Determinism matrix on the reduced range: every engine x thread count x
# cross-check mode must reproduce the rows document byte-identically.
run_sweep "$TMP/rows-base.json" --n-max "$MATRIX_N_MAX" \
    --engine serial --threads 1
MATRIX=("parallel 2" "parallel 8" "workstealing 2" "workstealing 8" "auto 1")
for row in "${MATRIX[@]}"; do
  read -r engine t <<<"$row"
  run_sweep "$TMP/rows-$engine-t$t.json" --n-max "$MATRIX_N_MAX" \
      --engine "$engine" --threads "$t"
  cmp "$TMP/rows-base.json" "$TMP/rows-$engine-t$t.json" || {
    echo "error: rows document differs for engine=$engine threads=$t" >&2
    exit 1
  }
done
for red in none por both; do
  run_sweep "$TMP/rows-xcheck-$red.json" --n-max "$MATRIX_N_MAX" \
      --engine serial --threads 1 --check-reduction "$red"
  cmp "$TMP/rows-base.json" "$TMP/rows-xcheck-$red.json" || {
    echo "error: rows document differs under --check-reduction $red" >&2
    exit 1
  }
done
echo "determinism matrix ok (n <= $MATRIX_N_MAX):" \
     "$(( ${#MATRIX[@]} + 4 )) sweeps byte-identical" >&2

# Canonical full-range run -> the published artifact (cross-checked against
# the unreduced exploration so the artifact never rests on symmetry alone).
for attempt in 1 2; do
  rc=0
  timeout "$ROW_TIMEOUT" "$SWEEP" --n-max "$N_MAX" \
      --engine serial --threads 1 --check-reduction none \
      --out "$STAGED" > "$TMP/full.txt" || rc=$?
  [[ $rc -eq 0 ]] && break
  echo "warn: full-range sweep exited $rc (attempt $attempt)" >&2
  if [[ $attempt -eq 2 ]]; then
    echo "error: full-range sweep failed twice; no artifact written" >&2
    exit 1
  fi
done

# Validate the staged artifact, then publish it atomically (same-directory
# rename): readers — and a rerun after ^C — either see the previous
# complete artifact or this one, never a torn write.
"$CHECK" hierarchy "$STAGED" >&2
mv -f "$STAGED" "$OUT"
echo "wrote $OUT ($(( N_MAX * (N_MAX + 1) / 2 - 1 )) rows, n <= $N_MAX)" >&2
