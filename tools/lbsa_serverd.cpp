// lbsa_serverd — agreement checking as a local service: accepts concurrent
// newline-delimited JSON requests (docs/serving.md) over an AF_UNIX socket
// and runs check / explore / fuzz workloads against the registered named
// tasks on a shared worker pool. Each request gets its own Deadline and
// CancelToken (the `cancel` op trips it mid-flight), an optional heartbeat
// stream, and a final schema-valid RunReport; repeated identical requests
// are answered byte-identically from the fingerprint-keyed result cache.
//
//   ./lbsa_serverd --socket PATH [--workers N] [--cache-capacity N]
//
// Prints "listening on PATH" once ready (scripts wait for that line).
// SIGINT/SIGTERM drain in-flight requests and exit 0.
//
// Exit codes: 0 clean shutdown, 1 startup error, 2 usage error.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/server.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lbsa_serverd --socket PATH [--workers N]\n"
               "                    [--cache-capacity N]\n");
  return 2;
}

std::atomic<bool> g_stop{false};

extern "C" void on_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsa;

  serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    auto next_arg = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--socket")) {
      options.socket_path = next_arg("--socket");
    } else if (!std::strcmp(argv[i], "--workers")) {
      options.service.workers =
          static_cast<int>(std::strtol(next_arg("--workers"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--cache-capacity")) {
      options.service.cache_capacity = static_cast<std::size_t>(
          std::strtoull(next_arg("--cache-capacity"), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  if (options.socket_path.empty()) return usage();

  const std::string socket_path = options.socket_path;
  serve::Server server(std::move(options));
  if (const Status s = server.start(); !s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::printf("lbsa_serverd: listening on %s\n", socket_path.c_str());
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  std::printf("lbsa_serverd: drained, final stats %s\n",
              server.service().stats_json().c_str());
  return 0;
}
