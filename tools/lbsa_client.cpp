// lbsa_client — load generator and correctness probe for lbsa_serverd
// (docs/serving.md). Opens --concurrency connections, issues --requests
// identical workload requests with distinct request ids, and verifies every
// answer: responses parse, the RunReport payload passes the schema check,
// and every report for the identical request shape is byte-identical to the
// first one seen (cached answers must replay fresh bytes exactly).
//
//   ./lbsa_client --socket PATH --task NAME [--op check|explore|fuzz]
//                 [--requests N] [--concurrency C]
//                 [--threads N] [--engine E] [--reduction R] [--max-nodes N]
//                 [--runs N] [--seed N] [--coverage]
//                 [--deadline-ms N] [--heartbeat-ms N]
//                 [--summary-json PATH] [--no-verify]
//   ./lbsa_client --socket PATH --status
//
// The summary reports client-measured end-to-end latency quantiles from the
// obs log2-bucket histogram (upper-bound semantics, obs/metrics.h) plus
// throughput — the numbers run_report.sh lifts into BENCH_modelcheck.json.
//
// Exit codes: 0 all requests answered and verified, 1 any failure or
// byte mismatch, 2 usage error.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "serve/protocol.h"

namespace {

using namespace lbsa;

int usage() {
  std::fprintf(
      stderr,
      "usage: lbsa_client --socket PATH --task NAME [--op check|explore|fuzz]\n"
      "                   [--requests N] [--concurrency C]\n"
      "                   [--threads N] [--engine E] [--reduction R]\n"
      "                   [--max-nodes N] [--runs N] [--seed N] [--coverage]\n"
      "                   [--deadline-ms N] [--heartbeat-ms N]\n"
      "                   [--summary-json PATH] [--no-verify]\n"
      "       lbsa_client --socket PATH --status\n");
  return 2;
}

int connect_to(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Buffered newline-delimited reader over a socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}
  // False on EOF/error before a complete line.
  bool next(std::string* line) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

struct ClientConfig {
  std::string socket_path;
  std::string task;
  std::string op = "check";
  std::uint64_t requests = 100;
  int concurrency = 4;
  int threads = 1;
  std::string engine = "auto";
  std::string reduction = "none";
  std::uint64_t max_nodes = 0;
  std::uint64_t runs = 200;
  std::uint64_t seed = 1;
  bool coverage = false;
  std::uint64_t deadline_ms = 0;
  std::uint64_t heartbeat_ms = 0;
  std::string summary_json;
  bool verify = true;
  bool status_only = false;
};

std::string request_line(const ClientConfig& cfg, const std::string& id) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("serve_version");
  w.value_uint(serve::kServeSchemaVersion);
  w.key("op");
  w.value_string(cfg.op);
  w.key("id");
  w.value_string(id);
  w.key("task");
  w.value_string(cfg.task);
  if (cfg.deadline_ms > 0) {
    w.key("deadline_ms");
    w.value_uint(cfg.deadline_ms);
  }
  if (cfg.heartbeat_ms > 0) {
    w.key("heartbeat_ms");
    w.value_uint(cfg.heartbeat_ms);
  }
  if (cfg.op == "fuzz") {
    w.key("runs");
    w.value_uint(cfg.runs);
    w.key("seed");
    w.value_uint(cfg.seed);
    w.key("coverage");
    w.value_bool(cfg.coverage);
  } else {
    w.key("threads");
    w.value_int(cfg.threads);
    w.key("engine");
    w.value_string(cfg.engine);
    w.key("reduction");
    w.value_string(cfg.reduction);
    if (cfg.max_nodes > 0) {
      w.key("max_nodes");
      w.value_uint(cfg.max_nodes);
    }
  }
  w.end_object();
  std::string line = std::move(w).str();
  line += '\n';
  return line;
}

struct SharedState {
  std::atomic<std::uint64_t> next_request{0};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> cached{0};
  std::atomic<std::uint64_t> heartbeats{0};
  std::mutex mu;
  // First report's (human, report bytes) — the golden answer every other
  // response must match byte for byte.
  bool have_golden = false;
  std::string golden_human;
  std::string golden_report;
  int golden_exit = 0;
  std::vector<std::uint64_t> latency_buckets =
      std::vector<std::uint64_t>(obs::kHistogramBuckets, 0);
  std::uint64_t latency_count = 0;
};

void fail(SharedState* state, const char* fmt, const std::string& detail) {
  state->failures.fetch_add(1);
  std::fprintf(stderr, fmt, detail.c_str());
}

void worker_main(const ClientConfig& cfg, int worker_index,
                 SharedState* state) {
  const int fd = connect_to(cfg.socket_path);
  if (fd < 0) {
    fail(state, "lbsa_client: connect failed: %s\n", cfg.socket_path);
    return;
  }
  LineReader reader(fd);
  std::string line;
  for (;;) {
    const std::uint64_t n = state->next_request.fetch_add(1);
    if (n >= cfg.requests) break;
    const std::string id =
        "c" + std::to_string(worker_index) + "-" + std::to_string(n);
    const auto t0 = std::chrono::steady_clock::now();
    if (!send_all(fd, request_line(cfg, id))) {
      fail(state, "lbsa_client: send failed for request %s\n", id);
      break;
    }
    // Consume this request's stream: heartbeats until the report/error.
    bool answered = false;
    while (!answered) {
      if (!reader.next(&line)) {
        fail(state, "lbsa_client: connection closed awaiting %s\n", id);
        ::close(fd);
        return;
      }
      auto resp_or = serve::parse_response(line);
      if (!resp_or.is_ok()) {
        fail(state, "lbsa_client: bad response line: %s\n",
             resp_or.status().to_string());
        continue;
      }
      const serve::ServeResponse& resp = resp_or.value();
      if (resp.request_id != id) {
        fail(state, "lbsa_client: response for unexpected id %s\n",
             resp.request_id);
        continue;
      }
      if (resp.type == "heartbeat") {
        state->heartbeats.fetch_add(1);
        continue;
      }
      answered = true;
      if (resp.type == "error") {
        fail(state, "lbsa_client: server error: %s\n",
             resp.status_code + ": " + resp.message);
        break;
      }
      if (resp.type != "report") {
        fail(state, "lbsa_client: unexpected response type %s\n", resp.type);
        break;
      }
      if (resp.cached) state->cached.fetch_add(1);
      if (cfg.verify) {
        if (const Status s = obs::validate_run_report_json(resp.data);
            !s.is_ok()) {
          fail(state, "lbsa_client: invalid RunReport: %s\n", s.to_string());
          break;
        }
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->have_golden) {
          state->have_golden = true;
          state->golden_human = resp.human;
          state->golden_report = resp.data;
          state->golden_exit = resp.exit_code;
        } else if (resp.human != state->golden_human ||
                   resp.data != state->golden_report ||
                   resp.exit_code != state->golden_exit) {
          fail(state,
               "lbsa_client: response bytes diverge from first answer "
               "(request %s)\n",
               id);
          break;
        }
      }
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      const std::uint64_t v = us > 0 ? static_cast<std::uint64_t>(us) : 0;
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->latency_buckets[v == 0 ? 0 : std::bit_width(v)];
      ++state->latency_count;
    }
  }
  ::close(fd);
}

int run_status(const ClientConfig& cfg) {
  const int fd = connect_to(cfg.socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "lbsa_client: connect failed: %s\n",
                 cfg.socket_path.c_str());
    return 1;
  }
  std::string line = "{\"serve_version\":1,\"op\":\"status\",\"id\":\"s\"}\n";
  if (!send_all(fd, line)) {
    std::fprintf(stderr, "lbsa_client: send failed\n");
    ::close(fd);
    return 1;
  }
  LineReader reader(fd);
  if (!reader.next(&line)) {
    std::fprintf(stderr, "lbsa_client: no response\n");
    ::close(fd);
    return 1;
  }
  ::close(fd);
  auto resp_or = serve::parse_response(line);
  if (!resp_or.is_ok() || resp_or.value().type != "status") {
    std::fprintf(stderr, "lbsa_client: bad status response: %s\n",
                 line.c_str());
    return 1;
  }
  std::printf("%s\n", resp_or.value().data.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ClientConfig cfg;
  for (int i = 1; i < argc; ++i) {
    auto next_arg = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--socket")) {
      cfg.socket_path = next_arg("--socket");
    } else if (!std::strcmp(argv[i], "--task")) {
      cfg.task = next_arg("--task");
    } else if (!std::strcmp(argv[i], "--op")) {
      cfg.op = next_arg("--op");
    } else if (!std::strcmp(argv[i], "--requests")) {
      cfg.requests = std::strtoull(next_arg("--requests"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--concurrency")) {
      cfg.concurrency = static_cast<int>(
          std::strtol(next_arg("--concurrency"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--threads")) {
      cfg.threads =
          static_cast<int>(std::strtol(next_arg("--threads"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--engine")) {
      cfg.engine = next_arg("--engine");
    } else if (!std::strcmp(argv[i], "--reduction")) {
      cfg.reduction = next_arg("--reduction");
    } else if (!std::strcmp(argv[i], "--max-nodes")) {
      cfg.max_nodes = std::strtoull(next_arg("--max-nodes"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--runs")) {
      cfg.runs = std::strtoull(next_arg("--runs"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed")) {
      cfg.seed = std::strtoull(next_arg("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--coverage")) {
      cfg.coverage = true;
    } else if (!std::strcmp(argv[i], "--deadline-ms")) {
      cfg.deadline_ms = std::strtoull(next_arg("--deadline-ms"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--heartbeat-ms")) {
      cfg.heartbeat_ms =
          std::strtoull(next_arg("--heartbeat-ms"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--summary-json")) {
      cfg.summary_json = next_arg("--summary-json");
    } else if (!std::strcmp(argv[i], "--no-verify")) {
      cfg.verify = false;
    } else if (!std::strcmp(argv[i], "--status")) {
      cfg.status_only = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  if (cfg.socket_path.empty()) return usage();
  if (cfg.status_only) return run_status(cfg);
  if (cfg.task.empty()) return usage();
  if (cfg.op != "check" && cfg.op != "explore" && cfg.op != "fuzz") {
    std::fprintf(stderr, "--op must be check|explore|fuzz\n");
    return usage();
  }
  if (cfg.concurrency < 1) cfg.concurrency = 1;

  SharedState state;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(cfg.concurrency));
  for (int i = 0; i < cfg.concurrency; ++i) {
    workers.emplace_back(
        [&cfg, i, &state] { worker_main(cfg, i, &state); });
  }
  for (std::thread& t : workers) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const std::uint64_t failures = state.failures.load();
  const std::uint64_t answered = state.latency_count;
  const obs::HistogramQuantiles q =
      obs::quantiles_from_buckets(state.latency_buckets, state.latency_count);
  const double rps = wall > 0.0 ? static_cast<double>(answered) / wall : 0.0;
  std::printf(
      "lbsa_client: %s %s: %llu answered, %llu failures, %llu cached, "
      "%llu heartbeats, %d conns, %.1f req/s\n",
      cfg.op.c_str(), cfg.task.c_str(),
      static_cast<unsigned long long>(answered),
      static_cast<unsigned long long>(failures),
      static_cast<unsigned long long>(state.cached.load()),
      static_cast<unsigned long long>(state.heartbeats.load()),
      cfg.concurrency, rps);
  std::printf(
      "  latency_us: p50<=%llu p90<=%llu p99<=%llu max<=%llu\n",
      static_cast<unsigned long long>(q.p50),
      static_cast<unsigned long long>(q.p90),
      static_cast<unsigned long long>(q.p99),
      static_cast<unsigned long long>(q.max));

  if (!cfg.summary_json.empty()) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("client_summary_version");
    w.value_uint(1);
    w.key("task");
    w.value_string(cfg.task);
    w.key("op");
    w.value_string(cfg.op);
    w.key("requests");
    w.value_uint(cfg.requests);
    w.key("concurrency");
    w.value_int(cfg.concurrency);
    w.key("answered");
    w.value_uint(answered);
    w.key("failures");
    w.value_uint(failures);
    w.key("cached");
    w.value_uint(state.cached.load());
    w.key("throughput_rps");
    w.value_double(rps);
    w.key("latency_us");
    w.begin_object();
    w.key("count");
    w.value_uint(state.latency_count);
    w.key("p50");
    w.value_uint(q.p50);
    w.key("p90");
    w.value_uint(q.p90);
    w.key("p99");
    w.value_uint(q.p99);
    w.key("max");
    w.value_uint(q.max);
    w.end_object();
    w.end_object();
    if (const lbsa::Status s =
            obs::write_text_file(cfg.summary_json, std::move(w).str());
        !s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
  }
  return (failures == 0 && answered == cfg.requests) ? 0 : 1;
}
