// experiment_report — runs every experiment in DESIGN.md's index (E1-E12)
// and prints EXPERIMENTS.md to stdout. Everything here is deterministic
// (exhaustive checks and seeded runs only), so the generated document is
// reproducible byte for byte:
//
//   ./build/tools/experiment_report > EXPERIMENTS.md
//
// --metrics-json / --trace-out write observability artifacts (to separate
// files, so stdout stays the reproducible document).
//
// Timing-sensitive results (throughput, scaling) intentionally live in the
// bench binaries instead; see bench_output.txt.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/implementations.h"
#include "core/knowledge.h"
#include "core/power.h"
#include "core/solvability.h"
#include "implcheck/checker.h"
#include "modelcheck/critical.h"
#include "modelcheck/fuzz.h"
#include "modelcheck/step_complexity.h"
#include "modelcheck/task_check.h"
#include "obs/cli.h"
#include "obs/json.h"
#include "protocols/ben_or.h"
#include "protocols/classic_consensus.h"
#include "protocols/dac_from_nm_pac.h"
#include "protocols/dac_from_pac.h"
#include "protocols/flp_race.h"
#include "protocols/one_shot.h"
#include "protocols/straw_dac.h"
#include "protocols/straw_dac_oprime.h"
#include "protocols/straw_nm_consensus.h"
#include "sim/simulation.h"
#include "spec/counter_type.h"
#include "spec/pac_type.h"
#include "universal/universal_object.h"
#include "universal/wait_free_universal.h"

namespace {

using lbsa::Value;

int g_failures = 0;

std::vector<Value> iota_inputs(int n) {
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
  return inputs;
}

const char* mark(bool ok) {
  if (!ok) ++g_failures;
  return ok ? "pass" : "**FAIL**";
}

// Expectation helpers: "holds" = the positive claim verified; "refuted as
// predicted" = the checker found the violation the paper's proof predicts.
std::string dac_cell(std::shared_ptr<const lbsa::sim::Protocol> protocol,
                     const std::vector<Value>& inputs, bool expect_ok,
                     const std::string& expect_property = "") {
  auto report = lbsa::modelcheck::check_dac_task(protocol, 0, inputs);
  if (!report.is_ok()) {
    ++g_failures;
    return "checker error";
  }
  const auto& r = report.value();
  if (expect_ok) {
    return std::string(mark(r.ok())) + " (" + std::to_string(r.node_count) +
           " configs)";
  }
  const bool found = !expect_property.empty()
                         ? r.violates(expect_property)
                         : !r.ok();
  return std::string(mark(found)) + " — violates `" +
         (r.violations.empty() ? "?" : r.violations.front().property) + "`";
}

std::string consensus_cell(
    std::shared_ptr<const lbsa::sim::Protocol> protocol,
    const std::vector<Value>& inputs, bool expect_ok,
    const std::string& expect_property = "") {
  auto report = lbsa::modelcheck::check_consensus_task(protocol, inputs);
  if (!report.is_ok()) {
    ++g_failures;
    return "checker error";
  }
  const auto& r = report.value();
  if (expect_ok) {
    return std::string(mark(r.ok())) + " (" + std::to_string(r.node_count) +
           " configs)";
  }
  const bool found = !expect_property.empty() ? r.violates(expect_property)
                                              : !r.ok();
  return std::string(mark(found)) + " — violates `" +
         (r.violations.empty() ? "?" : r.violations.front().property) + "`";
}

std::string witness_cell(lbsa::core::ObjectFamily family, int param, int k,
                         int n) {
  auto report = lbsa::core::witness_k_agreement(family, param, k, n);
  if (!report.is_ok()) {
    ++g_failures;
    return "error: " + report.status().to_string();
  }
  return std::string(mark(report.value().ok())) + " (" +
         std::to_string(report.value().node_count) + " configs)";
}

std::string impl_cell(const lbsa::implcheck::ObjectImplementation& impl,
                      const std::vector<std::vector<lbsa::spec::Operation>>&
                          work,
                      bool expect_ok) {
  auto result = lbsa::implcheck::check_implementation(impl, work);
  if (!result.is_ok()) {
    ++g_failures;
    return "error";
  }
  const bool as_expected = result.value().ok == expect_ok;
  return std::string(mark(as_expected)) + " (" +
         std::to_string(result.value().executions_checked) + " schedules" +
         (expect_ok ? "" : ", counterexample found") + ")";
}

// ---------------------------------------------------------------------------

void e1_pac_spec() {
  std::printf("## E1 — Algorithm 1: the n-PAC object (Lemmas 3.2–3.4, "
              "Theorem 3.5)\n\n");
  std::printf("Exhaustive sweep over *every* operation history up to the "
              "stated length, checking legality ⇔ upset (Lemma 3.2), the "
              "V/L state lemmas (3.3, 3.4), and Agreement / Validity / "
              "Nontriviality (Theorem 3.5). Mirrors "
              "`tests/spec/pac_type_test.cc`.\n\n");
  std::printf("| n | values | length | histories | result |\n");
  std::printf("|---|--------|--------|-----------|--------|\n");
  struct Case {
    int n, vals, len;
  };
  for (const Case c : {Case{1, 2, 7}, Case{2, 2, 6}, Case{3, 2, 4}}) {
    // Compact re-run of the sweep: count histories and verify Lemma 3.2
    // plus Theorem 3.5(a) (agreement) — the full lemma battery runs in the
    // test suite.
    lbsa::spec::PacType pac(c.n);
    std::vector<lbsa::spec::Operation> alphabet;
    for (int i = 1; i <= c.n; ++i) {
      for (int v = 0; v < c.vals; ++v) {
        alphabet.push_back(lbsa::spec::make_propose_labeled(1000 + v, i));
      }
      alphabet.push_back(lbsa::spec::make_decide_labeled(i));
    }
    long histories = 0;
    bool ok = true;
    // Iterative DFS with explicit stack of (state, first decided value).
    struct Frame {
      std::vector<std::int64_t> state;
      Value agreed;
      int depth;
    };
    std::vector<Frame> stack{{pac.initial_state(), lbsa::kNil, 0}};
    while (!stack.empty()) {
      Frame frame = std::move(stack.back());
      stack.pop_back();
      if (frame.depth == c.len) continue;
      for (const auto& op : alphabet) {
        auto outcome = pac.apply_unique(frame.state, op);
        ++histories;
        Value agreed = frame.agreed;
        if (op.code == lbsa::spec::OpCode::kDecideLabeled &&
            outcome.response != lbsa::kBottom) {
          if (agreed == lbsa::kNil) {
            agreed = outcome.response;
          } else if (agreed != outcome.response) {
            ok = false;  // agreement violation
          }
        }
        stack.push_back({outcome.next_state, agreed, frame.depth + 1});
      }
    }
    std::printf("| %d | %d | %d | %ld | %s |\n", c.n, c.vals, c.len,
                histories, mark(ok));
  }
  std::printf("\n");
}

void e2_dac() {
  std::printf("## E2 — Algorithm 2 / Theorem 4.1: n-DAC from one n-PAC\n\n");
  std::printf("All five n-DAC properties (Agreement, Validity, "
              "Termination (a)/(b), Nontriviality) verified over **all** "
              "schedules.\n\n");
  std::printf("| instance | result |\n|---|---|\n");
  for (int n = 2; n <= 4; ++n) {
    const auto inputs = iota_inputs(n);
    std::printf("| %d-DAC, inputs 100..%d | %s |\n", n, 99 + n,
                dac_cell(std::make_shared<lbsa::protocols::DacFromPacProtocol>(
                             inputs),
                         inputs, true)
                    .c_str());
  }
  const std::vector<Value> binary{1, 0, 0};
  std::printf("| 3-DAC, binary inputs (p=1, rest 0 — the Thm 4.2 initial "
              "config) | %s |\n\n",
              dac_cell(std::make_shared<lbsa::protocols::DacFromPacProtocol>(
                           binary),
                       binary, true)
                  .c_str());
}

void e3_straw() {
  std::printf("## E3 — Theorem 4.2 / 5.2 failure modes on natural "
              "candidates\n\n");
  std::printf("Impossibility theorems cannot be verified by running code; "
              "these runs show the model checker exhibiting **exactly the "
              "failure the proofs predict** on natural algorithms built "
              "from the ruled-out object families.\n\n");
  std::printf("| candidate | base objects | predicted failure | result |\n");
  std::printf("|---|---|---|---|\n");
  const auto in3 = iota_inputs(3);
  std::printf("| 3-DAC via consensus + 2-SA fallback | 2-consensus, 2-SA | "
              "agreement | %s |\n",
              dac_cell(std::make_shared<
                           lbsa::protocols::StrawDacFallbackProtocol>(in3),
                       in3, false, "agreement")
                  .c_str());
  std::printf("| 3-DAC via consensus + announce register | 2-consensus, "
              "register | solo termination | %s |\n",
              dac_cell(std::make_shared<
                           lbsa::protocols::StrawDacAnnounceProtocol>(in3),
                       in3, false)
                  .c_str());
  std::printf("| 3-consensus via one (3,2)-PAC | (3,2)-PAC | agreement "
              "(Thm 5.2) | %s |\n",
              consensus_cell(
                  std::make_shared<lbsa::protocols::StrawNmConsensusProtocol>(
                      in3, 3),
                  in3, false, "agreement")
                  .c_str());
  const std::vector<Value> flp_inputs{5, 3};
  std::printf("| 2-consensus from registers only (FLP race) | registers | "
              "termination | %s |\n\n",
              consensus_cell(
                  std::make_shared<lbsa::protocols::FlpRaceProtocol>(5, 3),
                  flp_inputs, false, "termination")
                  .c_str());
}

void e4_consensus() {
  std::printf("## E4 — footnote 6: the n-consensus object\n\n");
  std::printf("| instance | result |\n|---|---|\n");
  for (int n = 2; n <= 5; ++n) {
    const auto inputs = iota_inputs(n);
    std::printf("| consensus among %d via one %d-consensus object | %s |\n",
                n, n,
                consensus_cell(
                    lbsa::protocols::make_consensus_via_n_consensus(inputs),
                    inputs, true)
                    .c_str());
  }
  std::printf("\n");
}

void e5_nmpac() {
  std::printf("## E5 — Section 5: the (n,m)-PAC object (Theorem 5.3 "
              "positive half, Observation 5.1, Theorem 7.1 constructive "
              "step)\n\n");
  std::printf("| claim | instance | result |\n|---|---|---|\n");
  for (const auto& [n, m] : {std::pair{3, 2}, std::pair{4, 3}}) {
    const auto inputs = iota_inputs(m);
    std::printf("| (n,m)-PAC solves m-consensus (Obs 5.1(c)) | (%d,%d)-PAC "
                "| %s |\n",
                n, m,
                consensus_cell(lbsa::protocols::make_consensus_via_nm_pac(
                                   n, m, inputs),
                               inputs, true)
                    .c_str());
  }
  for (const auto& [n, m] : {std::pair{3, 2}, std::pair{4, 2}}) {
    const auto inputs = iota_inputs(n);
    std::printf("| (n,m)-PAC solves n-DAC (Obs 5.1(b) / Thm 7.1) | "
                "(%d,%d)-PAC | %s |\n",
                n, m,
                dac_cell(std::make_shared<
                             lbsa::protocols::DacFromNmPacProtocol>(inputs, m),
                         inputs, true)
                    .c_str());
  }
  std::printf("\n");
}

void e6_implementations() {
  std::printf("## E6 — Lemma 6.4 and Observation 5.1 as verified "
              "implementations\n\n");
  std::printf("The implementation checker interleaves the per-operation "
              "programs over all schedules and validates every induced "
              "history against the target specification (Wing–Gong). "
              "Control rows show the checker refuting wrong "
              "implementations.\n\n");
  std::printf("| implementation | claim | result |\n|---|---|---|\n");
  {
    auto impl = lbsa::core::make_nm_pac_from_components(3, 2);
    std::printf("| (3,2)-PAC from 3-PAC + 2-consensus | Obs 5.1(a) | %s |\n",
                impl_cell(*impl,
                          {{lbsa::spec::make_propose_c(10)},
                           {lbsa::spec::make_propose_c(20)},
                           {lbsa::spec::make_propose_p(30, 1),
                            lbsa::spec::make_decide_p(1)}},
                          true)
                    .c_str());
  }
  {
    auto impl = lbsa::core::make_pac_from_nm_pac(2, 2);
    std::printf("| 2-PAC from (2,2)-PAC | Obs 5.1(b) | %s |\n",
                impl_cell(*impl,
                          {{lbsa::spec::make_propose_labeled(10, 1),
                            lbsa::spec::make_decide_labeled(1)},
                           {lbsa::spec::make_propose_labeled(20, 2),
                            lbsa::spec::make_decide_labeled(2)}},
                          true)
                    .c_str());
  }
  {
    auto impl = lbsa::core::make_consensus_from_nm_pac(3, 2);
    std::printf("| 2-consensus from (3,2)-PAC | Obs 5.1(c) | %s |\n",
                impl_cell(*impl,
                          {{lbsa::spec::make_propose(10)},
                           {lbsa::spec::make_propose(20)},
                           {lbsa::spec::make_propose(30)}},
                          true)
                    .c_str());
  }
  {
    auto impl = lbsa::core::make_o_prime_from_base_impl(2, 2);
    std::printf("| O'_2 bundle from 2-consensus + 2-SA | Lemma 6.4 | %s |\n",
                impl_cell(*impl,
                          {{lbsa::spec::make_propose_k(10, 1),
                            lbsa::spec::make_propose_k(11, 2)},
                           {lbsa::spec::make_propose_k(20, 1),
                            lbsa::spec::make_propose_k(21, 2)},
                           {lbsa::spec::make_propose_k(30, 2)}},
                          true)
                    .c_str());
  }
  {
    auto impl = lbsa::core::make_broken_o_prime_impl(2, 2);
    std::printf("| *control*: O'_2 with level 1 on a 2-SA | must be refuted "
                "| %s |\n",
                impl_cell(*impl,
                          {{lbsa::spec::make_propose_k(10, 1)},
                           {lbsa::spec::make_propose_k(20, 1)}},
                          false)
                    .c_str());
  }
  {
    auto impl = lbsa::core::make_racy_counter_impl();
    std::printf("| *control*: racy read-modify-write counter | must be "
                "refuted | %s |\n\n",
                impl_cell(*impl,
                          {{lbsa::spec::make_propose(1)},
                           {lbsa::spec::make_propose(1)}},
                          false)
                    .c_str());
  }
}

void e7_separation() {
  std::printf("## E7 — Section 6: the separation pair O_n / O'_n "
              "(Corollary 6.6)\n\n");
  const auto p_on = lbsa::core::power_of_o_n(2, 4);
  const auto p_op = lbsa::core::power_of_o_prime_n(2, 4);
  std::printf("Power sequences: `%s` vs `%s` — values equal: %s.\n\n",
              p_on.to_string().c_str(), p_op.to_string().c_str(),
              mark(p_on.values_equal(p_op)));
  std::printf("| task | via O_n | via O'_n |\n|---|---|---|\n");
  std::printf("| consensus among 2 (k=1) | %s | %s |\n",
              witness_cell(lbsa::core::ObjectFamily::kOn, 2, 1, 2).c_str(),
              witness_cell(lbsa::core::ObjectFamily::kOPrime, 2, 1, 2)
                  .c_str());
  std::printf("| 2-set agreement among 4 (k=2) | %s | %s |\n",
              witness_cell(lbsa::core::ObjectFamily::kOn, 2, 2, 4).c_str(),
              witness_cell(lbsa::core::ObjectFamily::kOPrime, 2, 2, 4)
                  .c_str());
  std::printf("| consensus among 3 (n=3 instance) | %s | %s |\n\n",
              witness_cell(lbsa::core::ObjectFamily::kOn, 3, 1, 3).c_str(),
              witness_cell(lbsa::core::ObjectFamily::kOPrime, 3, 1, 3)
                  .c_str());
  const auto in3 = iota_inputs(3);
  std::printf("| *control*: 3-DAC driven through an O'_2 object | %s | — |\n\n",
              dac_cell(std::make_shared<
                           lbsa::protocols::StrawDacOPrimeProtocol>(in3),
                       in3, false, "agreement")
                  .c_str());
  std::printf("Behavioural difference: O_2's PAC part solves 3-DAC — %s. "
              "The converse implementability is ruled out by %s; the "
              "knowledge base carries the verdict: **%s**.\n\n",
              dac_cell(std::make_shared<lbsa::protocols::DacFromPacProtocol>(
                           in3),
                       in3, true)
                  .c_str(),
              "Theorem 6.5",
              lbsa::core::lookup_fact(2, lbsa::core::name_o_n(2),
                                      lbsa::core::name_o_prime_n(2))
                  ->source.c_str());
}

void e8_twosa() {
  std::printf("## E8 — Algorithm 3: the strong 2-SA object\n\n");
  std::printf("| task | result |\n|---|---|\n");
  for (int n = 2; n <= 5; ++n) {
    std::printf("| 2-set agreement among %d via one 2-SA | %s |\n", n,
                witness_cell(lbsa::core::ObjectFamily::kTwoSa, 0, 2, n)
                    .c_str());
  }
  const auto in2 = iota_inputs(2);
  std::printf("| *control*: consensus among 2 via one 2-SA | %s |\n\n",
              consensus_cell(lbsa::protocols::make_ksa_via_two_sa(in2), in2,
                             false, "agreement")
                  .c_str());
}

void e9_universal() {
  std::printf("## E9 — universality substrate (Herlihy [10])\n\n");
  bool counter_ok = true;
  {
    lbsa::universal::UniversalObject counter(
        std::make_shared<lbsa::spec::CounterType>(), 1, 256);
    for (int i = 0; i < 100; ++i) {
      counter.apply_as(0, lbsa::spec::make_propose(1));
    }
    counter_ok =
        counter.apply_as(0, lbsa::spec::make_read()) == 100;
  }
  std::printf("- counter from 1-thread consensus chain, 100 fetch-adds: "
              "%s\n", mark(counter_ok));
  bool pac_ok = true;
  {
    lbsa::universal::UniversalObject pac(
        std::make_shared<lbsa::spec::PacType>(2), 2, 64);
    pac_ok &= pac.apply_as(0, lbsa::spec::make_propose_labeled(10, 1)) ==
              lbsa::kDone;
    pac_ok &= pac.apply_as(0, lbsa::spec::make_decide_labeled(1)) == 10;
    pac_ok &= pac.apply_as(1, lbsa::spec::make_propose_labeled(20, 2)) ==
              lbsa::kDone;
    pac_ok &= pac.apply_as(1, lbsa::spec::make_decide_labeled(2)) == 10;
  }
  std::printf("- a 2-PAC replicated through consensus cells behaves per "
              "Algorithm 1 (agreement across labels): %s\n",
              mark(pac_ok));
  bool wait_free_ok = true;
  std::size_t delay = 0;
  {
    lbsa::universal::WaitFreeUniversalObject counter(
        std::make_shared<lbsa::spec::CounterType>(), 2, 128);
    for (int i = 0; i < 100; ++i) {
      counter.apply_as(0, lbsa::spec::make_propose(1));
    }
    wait_free_ok = counter.apply_as(1, lbsa::spec::make_read()) == 100;
    delay = counter.max_decide_delay();
  }
  std::printf("- wait-free (helping) variant: 100 sequential fetch-adds "
              "exact, observed decide delay %zu (bound 3·n = 6): %s\n",
              delay, mark(wait_free_ok && delay <= 6));
  std::printf("- multithreaded totals and linearizability: covered by "
              "`tests/universal/` (8 threads × 400 ops exact-sum, helping "
              "bound asserted, recorded histories Wing–Gong-checked); "
              "throughput in `bench_universal`.\n\n");
}

void e10_meta() {
  std::printf("## E10 — proof-machinery footprint (meta-experiment)\n\n");
  std::printf("State-space sizes the exhaustive tools handle at the paper's "
              "scales (full graphs, all interleavings, all adversarial "
              "object responses):\n\n");
  std::printf("| protocol | configurations | transitions | critical "
              "configs | worst own-steps per process |\n"
              "|---|---|---|---|---|\n");
  struct Row {
    const char* label;
    std::shared_ptr<const lbsa::sim::Protocol> protocol;
  };
  const std::vector<Row> rows = {
      {"one-shot 2-consensus",
       lbsa::protocols::make_consensus_via_n_consensus(iota_inputs(2))},
      {"Algorithm 2, 3-DAC",
       std::make_shared<lbsa::protocols::DacFromPacProtocol>(iota_inputs(3))},
      {"Algorithm 2, 4-DAC",
       std::make_shared<lbsa::protocols::DacFromPacProtocol>(iota_inputs(4))},
      {"FLP race",
       std::make_shared<lbsa::protocols::FlpRaceProtocol>(5, 3)},
  };
  for (const Row& row : rows) {
    lbsa::modelcheck::Explorer explorer(row.protocol);
    auto graph = explorer.explore({.max_nodes = 10'000'000});
    if (!graph.is_ok()) {
      std::printf("| %s | error | | |\n", row.label);
      ++g_failures;
      continue;
    }
    lbsa::modelcheck::ValenceAnalyzer analyzer(graph.value());
    std::string steps;
    for (int pid = 0; pid < row.protocol->process_count(); ++pid) {
      if (pid > 0) steps += ", ";
      const auto bound =
          lbsa::modelcheck::worst_case_own_steps(graph.value(), pid);
      steps += bound.has_value() ? std::to_string(*bound) : "∞";
    }
    std::printf("| %s | %zu | %llu | %zu | %s |\n", row.label,
                graph.value().nodes().size(),
                static_cast<unsigned long long>(
                    graph.value().transition_count()),
                analyzer.critical_nodes().size(), steps.c_str());
  }
  {
    // The exploration engine itself is under test here: the parallel
    // explorer must reproduce the serial reference graph bit for bit
    // (canonical ids, edges, depths, parents) — this is what makes every
    // number in this report independent of the machine's core count.
    auto protocol =
        std::make_shared<lbsa::protocols::DacFromPacProtocol>(iota_inputs(4));
    lbsa::modelcheck::Explorer explorer(protocol);
    const auto serial = explorer.explore(
        {.engine = lbsa::modelcheck::ExploreEngine::kSerial});
    const auto parallel = explorer.explore(
        {.threads = 4, .engine = lbsa::modelcheck::ExploreEngine::kParallel});
    bool identical = serial.is_ok() && parallel.is_ok();
    if (identical) {
      const auto& a = serial.value();
      const auto& b = parallel.value();
      identical = a.nodes().size() == b.nodes().size() &&
                  a.transition_count() == b.transition_count();
      for (std::uint32_t id = 0; identical && id < a.nodes().size(); ++id) {
        identical = a.nodes()[id].config == b.nodes()[id].config &&
                    a.nodes()[id].depth == b.nodes()[id].depth &&
                    a.edges()[id] == b.edges()[id] &&
                    a.path_to(id) == b.path_to(id);
      }
    }
    std::printf("\nParallel exploration (4 workers) reproduces the serial "
                "4-DAC graph bit for bit (ids, edges, depths, parents): "
                "%s.\n",
                mark(identical));
  }
  std::printf("\nBeyond exhaustive reach, the seeded schedule fuzzer takes "
              "over (findings replay deterministically):\n\n");
  std::printf("| fuzzed instance | runs | result |\n|---|---|---|\n");
  {
    const auto inputs = iota_inputs(8);
    auto protocol =
        std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
    lbsa::modelcheck::FuzzOptions options;
    options.runs = 200;
    const auto fuzz = lbsa::modelcheck::fuzz_dac(protocol, 0, inputs,
                                                 options);
    std::printf("| Algorithm 2, 8-DAC (safety only) | %llu | %s |\n",
                static_cast<unsigned long long>(fuzz.runs_executed),
                mark(fuzz.ok()));
  }
  {
    const auto inputs = iota_inputs(5);
    auto protocol =
        std::make_shared<lbsa::protocols::StrawDacFallbackProtocol>(inputs);
    lbsa::modelcheck::FuzzOptions options;
    options.runs = 5000;
    const auto fuzz = lbsa::modelcheck::fuzz_dac(protocol, 0, inputs,
                                                 options);
    std::printf("| straw-man 5-DAC: fuzzer finds the agreement violation | "
                "%llu | %s |\n",
                static_cast<unsigned long long>(fuzz.runs_executed),
                mark(fuzz.violates("agreement")));
  }
  std::printf("\nChecker timing series live in `bench_modelcheck` and "
              "`bench_lincheck` (see bench_output.txt).\n\n");
}

void e11_hierarchy() {
  std::printf("## E11 — the hierarchy landscape (extension)\n\n");
  std::printf("| object | protocol | expected | result |\n|---|---|---|---|\n");
  const auto in2 = iota_inputs(2);
  const auto in3 = iota_inputs(3);
  std::printf("| test&set | 2-process consensus | solvable | %s |\n",
              consensus_cell(
                  std::make_shared<lbsa::protocols::TasConsensusProtocol>(in2),
                  in2, true)
                  .c_str());
  std::printf("| test&set | 3-process candidate | breaks (level 2) | %s |\n",
              consensus_cell(
                  std::make_shared<lbsa::protocols::TasConsensusProtocol>(in3),
                  in3, false)
                  .c_str());
  std::printf("| queue | 2-process consensus | solvable | %s |\n",
              consensus_cell(
                  std::make_shared<lbsa::protocols::QueueConsensusProtocol>(
                      in2),
                  in2, true)
                  .c_str());
  std::printf("| compare&swap | 4-process consensus | solvable (level ∞) | "
              "%s |\n\n",
              consensus_cell(
                  std::make_shared<lbsa::protocols::CasConsensusProtocol>(
                      iota_inputs(4)),
                  iota_inputs(4), true)
                  .c_str());
}

void e12_critical() {
  std::printf("## E12 — mechanized critical-configuration structure "
              "(Claims 4.2.7 / 5.2.3)\n\n");
  std::printf("At every critical configuration of a working consensus "
              "protocol, all pending steps must target one common object, "
              "and never a register:\n\n");
  std::printf("| protocol | critical configs | all on one object | object "
              "|\n|---|---|---|---|\n");
  struct Row {
    const char* label;
    std::shared_ptr<const lbsa::sim::Protocol> protocol;
  };
  const std::vector<Row> rows = {
      {"2-consensus via 2-consensus object",
       lbsa::protocols::make_consensus_via_n_consensus(iota_inputs(2))},
      {"2-consensus via (3,2)-PAC",
       lbsa::protocols::make_consensus_via_nm_pac(3, 2, iota_inputs(2))},
      {"2-consensus via test&set",
       std::make_shared<lbsa::protocols::TasConsensusProtocol>(
           iota_inputs(2))},
  };
  for (const Row& row : rows) {
    lbsa::modelcheck::Explorer explorer(row.protocol);
    auto graph = std::move(explorer.explore()).value();
    lbsa::modelcheck::ValenceAnalyzer analyzer(graph);
    const auto infos = lbsa::modelcheck::analyze_critical_configurations(
        *row.protocol, graph, analyzer);
    bool all_same = !infos.empty();
    std::string object = infos.empty() ? "—" : infos.front().common_object_type;
    for (const auto& info : infos) {
      all_same &= info.all_on_same_object;
      all_same &= info.common_object_type != "register";
    }
    std::printf("| %s | %zu | %s | %s |\n", row.label, infos.size(),
                mark(all_same), object.c_str());
  }
  std::printf("\n");
}

void e13_ben_or() {
  std::printf("## E13 — randomization at the FLP boundary (extension)\n\n");
  std::printf("The impossibility engine behind Theorems 4.2/5.2 only rules "
              "out deterministic termination. A Ben-Or-style protocol over "
              "registers + a coin shows the exact boundary:\n\n");
  std::printf("| claim | result |\n|---|---|\n");
  {
    const std::vector<Value> inputs{0, 0};
    auto protocol = std::make_shared<lbsa::protocols::BenOrProtocol>(
        inputs, 2);
    std::printf("| unanimous inputs: full consensus check passes (no coin "
                "needed) | %s |\n",
                consensus_cell(protocol, inputs, true).c_str());
  }
  {
    const std::vector<Value> inputs{0, 1};
    auto protocol = std::make_shared<lbsa::protocols::BenOrProtocol>(
        inputs, 2);
    auto report = lbsa::modelcheck::check_consensus_task(protocol, inputs);
    bool safety_ok = false, adversary_wins = false;
    std::uint64_t nodes = 0;
    if (report.is_ok()) {
      safety_ok = !report.value().violates("agreement") &&
                  !report.value().violates("validity");
      adversary_wins = report.value().violates("termination");
      nodes = report.value().node_count;
    }
    std::printf("| mixed inputs: Agreement+Validity under ALL schedules "
                "and ALL coin outcomes | %s (%llu configs) |\n",
                mark(safety_ok), static_cast<unsigned long long>(nodes));
    std::printf("| mixed inputs: adversarial coin prevents termination "
                "(FLP-consistent) | %s |\n",
                mark(adversary_wins));
  }
  {
    int decided = 0;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
      auto protocol = std::make_shared<lbsa::protocols::BenOrProtocol>(
          std::vector<Value>{0, 1, 1}, 30);
      lbsa::sim::Simulation simulation(protocol);
      lbsa::sim::RandomAdversary adversary(seed);
      const auto result = simulation.run(&adversary, {.max_steps = 100'000});
      if (result.all_terminated &&
          simulation.distinct_decisions().size() == 1) {
        ++decided;
      }
    }
    std::printf("| fair coin: 100/100 seeded 3-process runs decide | %s "
                "(%d/100) |\n\n",
                mark(decided == 100), decided);
  }
}

}  // namespace

int main(int argc, char** argv) {
  lbsa::obs::ObsCli obs_cli("experiment_report");
  for (int i = 1; i < argc; ++i) {
    if (obs_cli.consume(argc, argv, &i)) continue;
    std::fprintf(stderr,
                 "usage: experiment_report [--metrics-json PATH] "
                 "[--trace-out PATH]\n");
    return 2;
  }

  std::printf(
      "# EXPERIMENTS — paper claims vs. measured behaviour\n\n"
      "Generated by `./build/tools/experiment_report` (deterministic: "
      "exhaustive checks and fixed seeds only; regenerate with\n"
      "`./build/tools/experiment_report > EXPERIMENTS.md`). The paper has "
      "no tables or figures — it is a theory paper — so the reproducible "
      "units are its theorems, algorithms, and object specifications; the "
      "experiment ids below follow DESIGN.md §3. Timing/throughput series "
      "are produced by the `bench_*` binaries (captured in "
      "`bench_output.txt`).\n\n"
      "Legend: *pass* = the paper's claim verified mechanically; for "
      "impossibility results (which quantify over all algorithms and are "
      "not machine-checkable), *pass* on a control row means the checker "
      "exhibited the predicted failure on a natural candidate.\n\n");

  e1_pac_spec();
  e2_dac();
  e3_straw();
  e4_consensus();
  e5_nmpac();
  e6_implementations();
  e7_separation();
  e8_twosa();
  e9_universal();
  e10_meta();
  e11_hierarchy();
  e12_critical();
  e13_ben_or();

  std::printf("---\n\n**Summary:** %s\n",
              g_failures == 0
                  ? "every experiment matches the paper's claims."
                  : (std::to_string(g_failures) + " row(s) FAILED — "
                                                  "investigate before "
                                                  "trusting this build.")
                        .c_str());

  lbsa::obs::RunReport run_report;
  run_report.task = "experiments";
  {
    lbsa::obs::JsonWriter w;
    w.begin_object();
    w.key("failures");
    w.value_int(g_failures);
    w.end_object();
    run_report.sections.emplace_back("experiments", std::move(w).str());
  }
  if (const lbsa::Status s = obs_cli.finish(&run_report); !s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }
  return g_failures == 0 ? 0 : 1;
}
