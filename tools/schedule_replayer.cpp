// schedule_replayer — replay a saved schedule against a named protocol and
// dump the resulting run (final states, decisions, full step log). The
// debugging companion of sim/trace.h: model-checker counterexamples and
// interesting adversarial runs are plain text files that replay exactly.
//
//   ./schedule_replayer <protocol> <schedule-file> [--record <out-file>]
//                       [--metrics-json PATH] [--trace-out PATH]
//                       [--heartbeat-out PATH] [--heartbeat-every S]
//   ./schedule_replayer <protocol> --random <seed> [--record <out-file>]
//                       [--metrics-json PATH] [--trace-out PATH]
//                       [--heartbeat-out PATH] [--heartbeat-every S]
//
// Protocol names resolve through the modelcheck/corpus.h registry (the same
// keys tools/fuzz_shrink_cli uses — run `fuzz_shrink_cli --list`); a few
// legacy aliases from before the registry existed are kept below.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>

#include "modelcheck/corpus.h"
#include "obs/cli.h"
#include "obs/json.h"
#include "protocols/ben_or.h"
#include "protocols/dac_from_pac.h"
#include "protocols/one_shot.h"
#include "protocols/straw_dac.h"
#include "sim/trace.h"

namespace {

std::shared_ptr<const lbsa::sim::Protocol> pick(const char* name) {
  using namespace lbsa;
  if (auto task = modelcheck::make_named_task(name); task.is_ok()) {
    return task.value().protocol;
  }
  // Legacy aliases predating the registry.
  if (!std::strcmp(name, "dac4")) {
    return std::make_shared<protocols::DacFromPacProtocol>(
        std::vector<Value>{100, 101, 102, 103});
  }
  if (!std::strcmp(name, "consensus3")) {
    return protocols::make_consensus_via_n_consensus({100, 101, 102});
  }
  if (!std::strcmp(name, "twosa3")) {
    return protocols::make_ksa_via_two_sa({100, 101, 102});
  }
  if (!std::strcmp(name, "benor2")) {
    return std::make_shared<protocols::BenOrProtocol>(
        std::vector<Value>{0, 1}, 8);
  }
  if (!std::strcmp(name, "strawdac")) {
    return std::make_shared<protocols::StrawDacFallbackProtocol>(
        std::vector<Value>{100, 101, 102});
  }
  return nullptr;
}

int usage() {
  std::string names;
  for (const std::string& name : lbsa::modelcheck::named_task_names()) {
    names += " " + name;
  }
  std::fprintf(stderr,
               "usage: schedule_replayer <protocol> <schedule-file>\n"
               "       schedule_replayer <protocol> --random <seed>\n"
               "protocols:%s\n"
               "legacy aliases: dac4 consensus3 twosa3 benor2 strawdac\n",
               names.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  auto protocol = pick(argv[1]);
  if (!protocol) return usage();

  const char* record_path = nullptr;
  lbsa::obs::ObsCli obs_cli("schedule_replayer");
  for (int i = 3; i < argc; ++i) {
    if (obs_cli.consume(argc, argv, &i)) continue;
    if (!std::strcmp(argv[i], "--record") && i + 1 < argc) {
      record_path = argv[++i];
    }
  }

  const bool random_mode = !std::strcmp(argv[2], "--random");
  if (const lbsa::Status s = obs_cli.start_heartbeat(
          protocol->name(),
          lbsa::obs::derive_run_id("schedule_replayer", protocol->name(),
                                   random_mode ? "random" : "replay", 0));
      !s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }

  lbsa::sim::Simulation* run = nullptr;
  std::optional<lbsa::sim::Simulation> random_run;
  lbsa::StatusOr<lbsa::sim::Simulation> replayed =
      lbsa::invalid_argument("unset");

  if (random_mode) {
    if (argc < 4) return usage();
    const std::uint64_t seed = std::strtoull(argv[3], nullptr, 10);
    random_run.emplace(protocol);
    lbsa::sim::RandomAdversary adversary(seed);
    random_run->run(&adversary, {.max_steps = 100'000});
    run = &*random_run;
  } else {
    std::ifstream in(argv[2]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto schedule = lbsa::sim::parse_schedule(buffer.str());
    if (!schedule.is_ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   schedule.status().to_string().c_str());
      return 1;
    }
    replayed = lbsa::sim::replay_schedule(protocol, schedule.value());
    if (!replayed.is_ok()) {
      std::fprintf(stderr, "replay error: %s\n",
                   replayed.status().to_string().c_str());
      return 1;
    }
    run = &replayed.value();
  }

  std::printf("%s — %zu steps\n", protocol->name().c_str(),
              run->history().size());
  for (const auto& step : run->history()) {
    std::printf("  %s\n", step.to_string(*protocol).c_str());
  }
  std::printf("final states:\n");
  for (size_t pid = 0; pid < run->config().procs.size(); ++pid) {
    std::printf("  p%zu %s\n", pid,
                run->config().procs[pid].to_string().c_str());
  }
  const auto decisions = run->distinct_decisions();
  std::printf("distinct decisions: %zu\n", decisions.size());

  if (record_path != nullptr) {
    std::ofstream out(record_path);
    out << lbsa::sim::schedule_to_string(*protocol, run->history());
    std::printf("schedule written to %s\n", record_path);
  }

  lbsa::obs::RunReport run_report;
  run_report.task = protocol->name();
  run_report.params = {
      {"protocol", "\"" + lbsa::obs::json_escape(argv[1]) + "\""},
      {"mode", random_mode ? "\"random\"" : "\"replay\""},
  };
  {
    lbsa::obs::JsonWriter w;
    w.begin_object();
    w.key("steps");
    w.value_uint(run->history().size());
    w.key("distinct_decisions");
    w.value_uint(decisions.size());
    w.end_object();
    run_report.sections.emplace_back("replay", std::move(w).str());
  }
  if (const lbsa::Status s = obs_cli.finish(&run_report); !s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }
  return 0;
}
