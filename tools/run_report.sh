#!/usr/bin/env bash
# run_report.sh — produce the per-commit observability artifact
# BENCH_modelcheck.json (grown from the old bench_modelcheck_json.sh): a
# sweep of explorer_cli run reports over small exhaustively-explorable
# tasks at several thread counts, merged under the versioned bench schema
#
#   {"lbsa_bench_schema": 1,
#    "benchmarks":  [{"task": "dac3", "threads": 1, "nodes": N,
#                     "nodes_per_sec": R}, ...,
#                    {"task": "dac4-sym", "threads": 1, "reduction": "both",
#                     "nodes": N, "nodes_per_sec": R,
#                     "reduction_ratio": X}, ...],
#    "run_reports": {"explorer_cli:dac3:t1": <RunReport>, ...}}
#
# The second row shape is the state-space-reduction sweep (docs/checking.md,
# "State-space reduction"): symmetric corpus tasks explored at every
# --reduction mode; reduction_ratio is full-graph-nodes / reduced-nodes.
#
# and validated with `report_check bench` before the script exits 0. CI
# archives the artifact per commit; the stable metric sections inside each
# RunReport are byte-identical across thread counts, so diffs across
# commits are meaningful.
#
# Usage: tools/run_report.sh [build-dir] [output.json] [--with-bench]
#
# --with-bench additionally runs the Google-Benchmark exploration suite
# (bench/bench_modelcheck, the old behaviour of bench_modelcheck_json.sh)
# and embeds its raw JSON under a "gbench" key.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_modelcheck.json}"
WITH_BENCH=0
for arg in "$@"; do
  [[ "$arg" == "--with-bench" ]] && WITH_BENCH=1
done

EXPLORER="$BUILD_DIR/tools/explorer_cli"
CHECK="$BUILD_DIR/tools/report_check"
for bin in "$EXPLORER" "$CHECK"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found or not executable; build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
done

# Small tasks an exhaustive exploration finishes in well under a second.
TASKS=(dac3 strawdac3 mutant-dac-no-adopt3)
THREADS=(1 2 8)
# Symmetric tasks for the reduction sweep (declared non-trivial symmetry).
SYM_TASKS=(dac3-sym dac4-sym)
REDUCTIONS=(none symmetry por both)

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# run_explorer TASK THREADS REDUCTION REPORT_PATH
# Parses explorer_cli's human output:
#   "dac3: 441 nodes, 1234 transitions, depth 12"
#   "  reduction=both: >=441 full-graph nodes, ratio 3.21x"   (reduction only)
#   "  elapsed 0.012345 s, 35773 nodes/s"
# and sets $NODES, $NODES_PER_SEC, $RATIO.
run_explorer() {
  local task="$1" t="$2" reduction="$3" report="$4" out
  out="$("$EXPLORER" "$task" --threads "$t" --reduction "$reduction" \
         --metrics-json "$report")"
  NODES="$(sed -nE '1s/^[^:]+: ([0-9]+) nodes.*/\1/p' <<<"$out")"
  NODES_PER_SEC="$(sed -nE \
      's/^ *elapsed [0-9.]+ s, ([0-9]+) nodes\/s$/\1/p' <<<"$out")"
  RATIO="$(sed -nE 's/^ *reduction=.*ratio ([0-9.]+)x$/\1/p' <<<"$out")"
  [[ -n "$RATIO" ]] || RATIO=1.00
}

{
  printf '{"lbsa_bench_schema":1,"benchmarks":['
  first=1
  for task in "${TASKS[@]}"; do
    for t in "${THREADS[@]}"; do
      run_explorer "$task" "$t" none "$TMP/$task-t$t.json"
      [[ $first == 1 ]] || printf ','
      first=0
      printf '{"task":"%s","threads":%d,"nodes":%s,"nodes_per_sec":%s}' \
          "$task" "$t" "$NODES" "$NODES_PER_SEC"
    done
  done
  for task in "${SYM_TASKS[@]}"; do
    for t in "${THREADS[@]}"; do
      for red in "${REDUCTIONS[@]}"; do
        run_explorer "$task" "$t" "$red" "$TMP/$task-t$t-$red.json"
        printf ',{"task":"%s","threads":%d,"reduction":"%s","nodes":%s' \
            "$task" "$t" "$red" "$NODES"
        printf ',"nodes_per_sec":%s,"reduction_ratio":%s}' \
            "$NODES_PER_SEC" "$RATIO"
      done
    done
  done
  printf '],"run_reports":{'
  first=1
  for task in "${TASKS[@]}"; do
    for t in "${THREADS[@]}"; do
      [[ $first == 1 ]] || printf ','
      first=0
      printf '"explorer_cli:%s:t%d":' "$task" "$t"
      # write_run_report emits exactly one line of JSON.
      tr -d '\n' < "$TMP/$task-t$t.json"
    done
  done
  for task in "${SYM_TASKS[@]}"; do
    for t in "${THREADS[@]}"; do
      for red in "${REDUCTIONS[@]}"; do
        printf ',"explorer_cli:%s:t%d:%s":' "$task" "$t" "$red"
        tr -d '\n' < "$TMP/$task-t$t-$red.json"
      done
    done
  done
  printf '}'
  if [[ $WITH_BENCH == 1 ]]; then
    BIN="$BUILD_DIR/bench/bench_modelcheck"
    if [[ ! -x "$BIN" ]]; then
      echo "error: --with-bench needs $BIN" >&2
      exit 1
    fi
    "$BIN" \
      --benchmark_filter='ModelCheck_Explore' \
      --benchmark_out="$TMP/gbench.json" \
      --benchmark_out_format=json \
      --benchmark_counters_tabular=true >&2
    printf ',"gbench":'
    cat "$TMP/gbench.json"
  fi
  printf '}\n'
} > "$OUT"

"$CHECK" bench "$OUT" >&2
echo "wrote $OUT" >&2
