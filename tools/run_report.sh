#!/usr/bin/env bash
# run_report.sh — produce the per-commit observability artifact
# BENCH_modelcheck.json (grown from the old bench_modelcheck_json.sh): a
# sweep of explorer_cli run reports over small exhaustively-explorable
# tasks at several thread counts, merged under the versioned bench schema
#
#   {"lbsa_bench_schema": 1,
#    "benchmarks":  [{"task": "dac3", "threads": 1, "nodes": N,
#                     "nodes_per_sec": R}, ...,
#                    {"task": "dac4-sym", "threads": 1, "reduction": "both",
#                     "nodes": N, "nodes_per_sec": R,
#                     "reduction_ratio": X}, ...,
#                    {"task": "dac5", "engine": "workstealing", "threads": 4,
#                     "threads_available": C, "reduction": "none",
#                     "nodes": N, "nodes_per_sec": R}, ...],
#    "run_reports": {"explorer_cli:dac3:t1": <RunReport>, ...}}
#
# The second row shape is the state-space-reduction sweep (docs/checking.md,
# "State-space reduction"): symmetric corpus tasks explored at every
# --reduction mode; reduction_ratio is full-graph-nodes / reduced-nodes.
# The third is the engine sweep (docs/checking.md, "Engine selection"):
# bench-sized tasks explored by every engine; threads_available records how
# many cores the host really had, since a parallel-vs-serial comparison from
# a 1-core CI box measures per-node overhead, not speedup. A fourth row
# shape, {"task": "dac5", "obs": "heartbeat"|"disabled", ...}, is the
# observability-overhead pair (docs/observability.md): the same exploration
# once with a 1s heartbeat sampler attached and once under the
# LBSA_OBS_DISABLED kill switch, so commits can diff what live telemetry
# costs (tools/perf_smoke.sh gates the same pair at < 2%).
#
# Noise control: every row is run once as a cache/allocator warmup and then
# three times, keeping the best nodes_per_sec — wall-clock rates from a
# single cold run on a shared CI machine swing by 2x and made cross-commit
# diffs of the rate columns meaningless. Node counts are deterministic and
# identical across the runs; the stable RunReport sections don't depend on
# timing at all.
#
# and validated with `report_check bench` before the script exits 0. CI
# archives the artifact per commit; the stable metric sections inside each
# RunReport are byte-identical across thread counts, so diffs across
# commits are meaningful.
#
# Usage: tools/run_report.sh [build-dir] [output.json] [--with-bench]
#
# --with-bench additionally runs the Google-Benchmark exploration suite
# (bench/bench_modelcheck, the old behaviour of bench_modelcheck_json.sh)
# and embeds its raw JSON under a "gbench" key.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_modelcheck.json}"
WITH_BENCH=0
for arg in "$@"; do
  [[ "$arg" == "--with-bench" ]] && WITH_BENCH=1
done

EXPLORER="$BUILD_DIR/tools/explorer_cli"
CHECK="$BUILD_DIR/tools/report_check"
for bin in "$EXPLORER" "$CHECK"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found or not executable; build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
done

# Small tasks an exhaustive exploration finishes in well under a second.
TASKS=(dac3 strawdac3 mutant-dac-no-adopt3)
THREADS=(1 2 8)
# Symmetric tasks for the reduction sweep (declared non-trivial symmetry).
SYM_TASKS=(dac3-sym dac4-sym dac5-sym)
REDUCTIONS=(none symmetry por both)
# Engine sweep: tasks big enough for parallel exploration to amortize its
# setup, on the engines x reductions the speedup claims are made for.
PERF_TASKS=(dac5 consensus5)
PERF_REDUCTIONS=(none symmetry)
PERF_ENGINES=("serial 1" "parallel 4" "workstealing 4" "auto 4")
THREADS_AVAILABLE="$(nproc 2>/dev/null || echo 1)"

TMP="$(mktemp -d)"
# The artifact is staged in $OUT's own directory (a cross-filesystem mv from
# $TMP would not be atomic) and renamed into place only after it validates.
# The trap cleans both on every exit path (including ^C), so $OUT is never
# left truncated or stale.
STAGED="$OUT.tmp.$$"
SERVER_PID=""
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$TMP" "$STAGED"' \
    EXIT INT TERM

# Per-row wall-clock budget. Every task in the sweep finishes in well under
# a second; a row that hits this is a stall, not a slow run.
ROW_TIMEOUT="${ROW_TIMEOUT:-120}"

# run_explorer_once TASK THREADS REDUCTION ENGINE REPORT_PATH
# Runs one exploration under `timeout` with one retry — a transient stall
# (overloaded CI machine) gets a second chance, a repeat failure aborts the
# script (the EXIT trap discards the partial artifact). Any nonzero exit is
# a failure here: the sweep uses no node budget, so truncated(3) or
# interrupted(4) exits mean the row's report is incomplete.
# Parses explorer_cli's human output:
#   "dac3: 441 nodes, 1234 transitions, depth 12"
#   "  reduction=both: >=441 full-graph nodes, ratio 3.21x"   (reduction only)
#   "  elapsed 0.012345 s, 35773 nodes/s"
# and sets $NODES, $NODES_PER_SEC, $RATIO.
run_explorer_once() {
  local task="$1" t="$2" reduction="$3" engine="$4" report="$5" out rc attempt
  for attempt in 1 2; do
    rc=0
    out="$(timeout "$ROW_TIMEOUT" \
           "$EXPLORER" "$task" --threads "$t" --reduction "$reduction" \
           --engine "$engine" --metrics-json "$report")" || rc=$?
    [[ $rc -eq 0 ]] && break
    echo "warn: $task threads=$t reduction=$reduction engine=$engine" \
         "exited $rc (attempt $attempt)" >&2
    if [[ $attempt -eq 2 ]]; then
      echo "error: sweep row failed twice; no artifact written" >&2
      exit 1
    fi
  done
  NODES="$(sed -nE '1s/^[^:]+: ([0-9]+) nodes.*/\1/p' <<<"$out")"
  NODES_PER_SEC="$(sed -nE \
      's/^ *elapsed [0-9.]+ s, ([0-9]+) nodes\/s$/\1/p' <<<"$out")"
  RATIO="$(sed -nE 's/^ *reduction=.*ratio ([0-9.]+)x$/\1/p' <<<"$out")"
  [[ -n "$RATIO" ]] || RATIO=1.00
}

# run_explorer TASK THREADS REDUCTION ENGINE REPORT_PATH
# One bench row: warmup run (discarded), then best-of-3 on nodes_per_sec.
# The report written is the last run's — its stable sections are identical
# across all four runs.
run_explorer() {
  local task="$1" t="$2" reduction="$3" engine="$4" report="$5"
  local best=0
  run_explorer_once "$task" "$t" "$reduction" "$engine" "$report"  # warmup
  for _ in 1 2 3; do
    run_explorer_once "$task" "$t" "$reduction" "$engine" "$report"
    if (( NODES_PER_SEC > best )); then best="$NODES_PER_SEC"; fi
  done
  NODES_PER_SEC="$best"
}

{
  printf '{"lbsa_bench_schema":1,"benchmarks":['
  first=1
  for task in "${TASKS[@]}"; do
    for t in "${THREADS[@]}"; do
      run_explorer "$task" "$t" none auto "$TMP/$task-t$t.json"
      [[ $first == 1 ]] || printf ','
      first=0
      printf '{"task":"%s","threads":%d,"nodes":%s,"nodes_per_sec":%s}' \
          "$task" "$t" "$NODES" "$NODES_PER_SEC"
    done
  done
  for task in "${SYM_TASKS[@]}"; do
    for t in "${THREADS[@]}"; do
      for red in "${REDUCTIONS[@]}"; do
        run_explorer "$task" "$t" "$red" auto "$TMP/$task-t$t-$red.json"
        printf ',{"task":"%s","threads":%d,"reduction":"%s","nodes":%s' \
            "$task" "$t" "$red" "$NODES"
        printf ',"nodes_per_sec":%s,"reduction_ratio":%s}' \
            "$NODES_PER_SEC" "$RATIO"
      done
    done
  done
  for task in "${PERF_TASKS[@]}"; do
    for red in "${PERF_REDUCTIONS[@]}"; do
      for row in "${PERF_ENGINES[@]}"; do
        read -r engine t <<<"$row"
        run_explorer "$task" "$t" "$red" "$engine" \
            "$TMP/$task-$engine-t$t-$red.json"
        printf ',{"task":"%s","engine":"%s","threads":%d' \
            "$task" "$engine" "$t"
        printf ',"threads_available":%d,"reduction":"%s"' \
            "$THREADS_AVAILABLE" "$red"
        printf ',"nodes":%s,"nodes_per_sec":%s}' "$NODES" "$NODES_PER_SEC"
      done
    done
  done
  # Symmetry-cost pair (tools/perf_smoke.sh gates the same comparison): the
  # bench-sized symmetric task explored serially with reduction off and on —
  # same host, same engine, one thread. The honest wall-clock question for
  # the reduction: does canonicalization pay for the nodes it removes?
  # Wall-clock per row is nodes / nodes_per_sec, so the pair also records
  # whether symmetry finished strictly faster.
  SYM_COST_TASK="${SYM_COST_TASK:-dac5-sym}"
  for red in none symmetry; do
    run_explorer "$SYM_COST_TASK" 1 "$red" serial "$TMP/symcost-$red.json"
    printf ',{"task":"%s","sym_cost":"%s","threads":1' "$SYM_COST_TASK" "$red"
    printf ',"nodes":%s,"nodes_per_sec":%s}' "$NODES" "$NODES_PER_SEC"
  done
  # Obs-overhead pair: dac5 with a live 1s heartbeat vs the kill switch.
  # Each timed run streams to a fresh file (appending across runs would mix
  # unrelated sessions); the last stream is schema-checked so the row also
  # proves the sampler emits a valid stream under load.
  OBS_TASK="${OBS_TASK:-dac5}"
  for mode in heartbeat disabled; do
    best=0
    for run in 0 1 2 3; do   # run 0 is the warmup
      rc=0
      if [[ "$mode" == heartbeat ]]; then
        out="$(timeout "$ROW_TIMEOUT" \
               "$EXPLORER" "$OBS_TASK" --threads 4 \
               --heartbeat-out "$TMP/obs-hb-$run.jsonl" \
               --heartbeat-every 1)" || rc=$?
      else
        out="$(LBSA_OBS_DISABLED=1 timeout "$ROW_TIMEOUT" \
               "$EXPLORER" "$OBS_TASK" --threads 4)" || rc=$?
      fi
      if [[ $rc -ne 0 ]]; then
        echo "error: obs-overhead row ($mode) exited $rc" >&2
        exit 1
      fi
      NODES="$(sed -nE '1s/^[^:]+: ([0-9]+) nodes.*/\1/p' <<<"$out")"
      rate="$(sed -nE \
          's/^ *elapsed [0-9.]+ s, ([0-9]+) nodes\/s$/\1/p' <<<"$out")"
      if [[ $run -gt 0 ]] && (( rate > best )); then best="$rate"; fi
    done
    if [[ "$mode" == heartbeat ]]; then
      "$CHECK" heartbeat "$TMP/obs-hb-3.jsonl" >&2
    fi
    printf ',{"task":"%s","obs":"%s","threads":4,"threads_available":%d' \
        "$OBS_TASK" "$mode" "$THREADS_AVAILABLE"
    printf ',"nodes":%s,"nodes_per_sec":%s}' "$NODES" "$best"
  done
  # Serve rows (docs/serving.md): lbsa_client load runs against a live
  # lbsa_serverd, one row per op, recording client-measured throughput and
  # end-to-end latency quantiles. The client exits nonzero on any failed or
  # byte-divergent response, so a row here also certifies the determinism
  # contract under concurrency. The second check leg repeats the first's
  # request shape and measures the cache-hit path.
  SERVERD="$BUILD_DIR/tools/lbsa_serverd"
  CLIENT="$BUILD_DIR/tools/lbsa_client"
  SERVE_REQUESTS="${SERVE_REQUESTS:-200}"
  SERVE_SOCK="$TMP/serve.sock"
  "$SERVERD" --socket "$SERVE_SOCK" > "$TMP/serverd.out" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 200); do
    grep -q "listening on" "$TMP/serverd.out" 2>/dev/null && break
    sleep 0.05
  done
  # serve_client_row LABEL ROW_JSON_PREFIX -- CLIENT_ARGS...
  serve_client_row() {
    local label="$1"; shift
    local prefix="$1"; shift; shift  # drop the "--" separator
    if ! "$CLIENT" --socket "$SERVE_SOCK" "$@" \
         --summary-json "$TMP/serve-$label.json" >&2; then
      echo "error: serve row $label failed (see lbsa_client output)" >&2
      kill -INT "$SERVER_PID" 2>/dev/null || true
      exit 1
    fi
    local summary p50 p90 p99 rps
    summary="$(cat "$TMP/serve-$label.json")"
    rps="$(sed -nE 's/.*"throughput_rps":([0-9.]+).*/\1/p' <<<"$summary")"
    p50="$(sed -nE 's/.*"p50":([0-9]+).*/\1/p' <<<"$summary")"
    p90="$(sed -nE 's/.*"p90":([0-9]+).*/\1/p' <<<"$summary")"
    p99="$(sed -nE 's/.*"p99":([0-9]+).*/\1/p' <<<"$summary")"
    printf ',%s' "$prefix"
    printf '"requests":%s,"concurrency":8,"throughput_rps":%s' \
        "$(sed -nE 's/.*"requests":([0-9]+).*/\1/p' <<<"$summary")" "$rps"
    printf ',"latency_us_p50":%s,"latency_us_p90":%s,"latency_us_p99":%s}' \
        "$p50" "$p90" "$p99"
  }
  serve_client_row check-cold \
      '{"task":"dac4-sym","serve":"check","serve_cache":"cold",' -- \
      --task dac4-sym --op check --requests "$SERVE_REQUESTS" --concurrency 8
  serve_client_row check-warm \
      '{"task":"dac4-sym","serve":"check","serve_cache":"warm",' -- \
      --task dac4-sym --op check --requests "$SERVE_REQUESTS" --concurrency 8
  serve_client_row fuzz \
      '{"task":"dac3","serve":"fuzz",' -- \
      --task dac3 --op fuzz --coverage --runs 200 \
      --requests "$SERVE_REQUESTS" --concurrency 8
  kill -INT "$SERVER_PID"
  wait "$SERVER_PID" || {
    echo "error: lbsa_serverd did not drain cleanly" >&2
    exit 1
  }
  SERVER_PID=""
  printf '],"run_reports":{'
  first=1
  for task in "${TASKS[@]}"; do
    for t in "${THREADS[@]}"; do
      [[ $first == 1 ]] || printf ','
      first=0
      printf '"explorer_cli:%s:t%d":' "$task" "$t"
      # write_run_report emits exactly one line of JSON.
      tr -d '\n' < "$TMP/$task-t$t.json"
    done
  done
  for task in "${SYM_TASKS[@]}"; do
    for t in "${THREADS[@]}"; do
      for red in "${REDUCTIONS[@]}"; do
        printf ',"explorer_cli:%s:t%d:%s":' "$task" "$t" "$red"
        tr -d '\n' < "$TMP/$task-t$t-$red.json"
      done
    done
  done
  for task in "${PERF_TASKS[@]}"; do
    for red in "${PERF_REDUCTIONS[@]}"; do
      for row in "${PERF_ENGINES[@]}"; do
        read -r engine t <<<"$row"
        printf ',"explorer_cli:%s:%s:t%d:%s":' "$task" "$engine" "$t" "$red"
        tr -d '\n' < "$TMP/$task-$engine-t$t-$red.json"
      done
    done
  done
  for red in none symmetry; do
    printf ',"explorer_cli:%s:symcost:%s":' "$SYM_COST_TASK" "$red"
    tr -d '\n' < "$TMP/symcost-$red.json"
  done
  printf '}'
  if [[ $WITH_BENCH == 1 ]]; then
    BIN="$BUILD_DIR/bench/bench_modelcheck"
    if [[ ! -x "$BIN" ]]; then
      echo "error: --with-bench needs $BIN" >&2
      exit 1
    fi
    "$BIN" \
      --benchmark_filter='ModelCheck_Explore' \
      --benchmark_out="$TMP/gbench.json" \
      --benchmark_out_format=json \
      --benchmark_counters_tabular=true >&2
    printf ',"gbench":'
    cat "$TMP/gbench.json"
  fi
  printf '}\n'
} > "$STAGED"

# Validate the staged artifact, then publish it atomically (same-directory
# rename): readers — and a rerun after ^C — either see the previous complete
# artifact or this one, never a torn write.
"$CHECK" bench "$STAGED" >&2
mv -f "$STAGED" "$OUT"
echo "wrote $OUT" >&2
