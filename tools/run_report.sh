#!/usr/bin/env bash
# run_report.sh — produce the per-commit observability artifact
# BENCH_modelcheck.json (grown from the old bench_modelcheck_json.sh): a
# sweep of explorer_cli run reports over small exhaustively-explorable
# tasks at several thread counts, merged under the versioned bench schema
#
#   {"lbsa_bench_schema": 1,
#    "benchmarks":  [{"task": "dac3", "threads": 1, "nodes": N}, ...],
#    "run_reports": {"explorer_cli:dac3:t1": <RunReport>, ...}}
#
# and validated with `report_check bench` before the script exits 0. CI
# archives the artifact per commit; the stable metric sections inside each
# RunReport are byte-identical across thread counts, so diffs across
# commits are meaningful.
#
# Usage: tools/run_report.sh [build-dir] [output.json] [--with-bench]
#
# --with-bench additionally runs the Google-Benchmark exploration suite
# (bench/bench_modelcheck, the old behaviour of bench_modelcheck_json.sh)
# and embeds its raw JSON under a "gbench" key.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_modelcheck.json}"
WITH_BENCH=0
for arg in "$@"; do
  [[ "$arg" == "--with-bench" ]] && WITH_BENCH=1
done

EXPLORER="$BUILD_DIR/tools/explorer_cli"
CHECK="$BUILD_DIR/tools/report_check"
for bin in "$EXPLORER" "$CHECK"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found or not executable; build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
done

# Small tasks an exhaustive exploration finishes in well under a second.
TASKS=(dac3 strawdac3 mutant-dac-no-adopt3)
THREADS=(1 2 8)

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

{
  printf '{"lbsa_bench_schema":1,"benchmarks":['
  first=1
  for task in "${TASKS[@]}"; do
    for t in "${THREADS[@]}"; do
      report="$TMP/$task-t$t.json"
      line="$("$EXPLORER" "$task" --threads "$t" --metrics-json "$report")"
      # "dac3: 441 nodes, 1234 transitions, depth 12"
      nodes="$(sed -E 's/^[^:]+: ([0-9]+) nodes.*/\1/' <<<"$line")"
      [[ $first == 1 ]] || printf ','
      first=0
      printf '{"task":"%s","threads":%d,"nodes":%s}' "$task" "$t" "$nodes"
    done
  done
  printf '],"run_reports":{'
  first=1
  for task in "${TASKS[@]}"; do
    for t in "${THREADS[@]}"; do
      [[ $first == 1 ]] || printf ','
      first=0
      printf '"explorer_cli:%s:t%d":' "$task" "$t"
      # write_run_report emits exactly one line of JSON.
      tr -d '\n' < "$TMP/$task-t$t.json"
    done
  done
  printf '}'
  if [[ $WITH_BENCH == 1 ]]; then
    BIN="$BUILD_DIR/bench/bench_modelcheck"
    if [[ ! -x "$BIN" ]]; then
      echo "error: --with-bench needs $BIN" >&2
      exit 1
    fi
    "$BIN" \
      --benchmark_filter='ModelCheck_Explore' \
      --benchmark_out="$TMP/gbench.json" \
      --benchmark_out_format=json \
      --benchmark_counters_tabular=true >&2
    printf ',"gbench":'
    cat "$TMP/gbench.json"
  fi
  printf '}\n'
} > "$OUT"

"$CHECK" bench "$OUT" >&2
echo "wrote $OUT" >&2
