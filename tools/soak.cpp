// soak — long-running randomized stress harness: continuously hammers the
// concurrent objects from real threads, validating every recorded window
// with the linearizability checker, and interleaves schedule-fuzzing rounds
// over the protocol suite. Exit code 0 = no violation found in the budget.
//
//   ./soak [seconds] [--metrics-json PATH] [--trace-out PATH]   (default 5s)
//
// Intended uses: a pre-release burn-in (`./soak 300`), a quick sanity pass
// in CI (`./soak 2`), and a TSan/ASan target.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "concurrent/atomic_register.h"
#include "concurrent/atomic_two_sa.h"
#include "concurrent/cas_consensus.h"
#include "concurrent/classic_objects.h"
#include "concurrent/recording.h"
#include "concurrent/spec_backed.h"
#include "core/separation.h"
#include "lincheck/checker.h"
#include "modelcheck/fuzz.h"
#include "obs/cli.h"
#include "obs/json.h"
#include "protocols/ben_or.h"
#include "protocols/dac_from_pac.h"
#include "spec/pac_type.h"
#include "universal/wait_free_universal.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Tally {
  std::uint64_t lincheck_rounds = 0;
  std::uint64_t fuzz_runs = 0;
  std::uint64_t violations = 0;
};

// One lincheck round: 4 threads, 3 ops each, against `object`'s own spec.
template <typename MakeObject, typename MakeOp>
void lincheck_round(const char* label, MakeObject make_object, MakeOp make_op,
                    std::uint64_t round, Tally* tally) {
  auto object = make_object();
  lbsa::lincheck::HistoryLog log;
  lbsa::concurrent::RecordingObject recorder(object.get(), &log);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&recorder, &make_op, t, round] {
      for (int i = 0; i < 3; ++i) {
        recorder.apply_as(t, make_op(t, i, round));
      }
    });
  }
  for (auto& w : workers) w.join();
  auto result =
      lbsa::lincheck::check_linearizable(object->type(), log.snapshot());
  ++tally->lincheck_rounds;
  if (!result.is_ok() || !result.value().linearizable) {
    ++tally->violations;
    std::fprintf(stderr, "VIOLATION [%s] round %llu: %s\n", label,
                 static_cast<unsigned long long>(round),
                 result.is_ok() ? result.value().detail.c_str()
                                : result.status().to_string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  int seconds = 5;
  lbsa::obs::ObsCli obs_cli("soak");
  for (int i = 1; i < argc; ++i) {
    if (obs_cli.consume(argc, argv, &i)) continue;
    seconds = std::atoi(argv[i]);
  }
  const auto deadline = Clock::now() + std::chrono::seconds(seconds);
  Tally tally;
  std::uint64_t round = 0;

  std::printf("soak: %d second(s) of lincheck stress + schedule fuzzing\n",
              seconds);

  while (Clock::now() < deadline) {
    ++round;

    lincheck_round(
        "cas-consensus",
        [] { return std::make_unique<lbsa::concurrent::CasConsensus>(8); },
        [](int t, int i, std::uint64_t) {
          return lbsa::spec::make_propose(10 * (t + 1) + i);
        },
        round, &tally);

    lincheck_round(
        "2-SA",
        [] { return std::make_unique<lbsa::concurrent::AtomicTwoSa>(); },
        [](int t, int i, std::uint64_t) {
          return lbsa::spec::make_propose(10 * (t + 1) + i);
        },
        round, &tally);

    lincheck_round(
        "spinlock-4-PAC",
        [] {
          return std::make_unique<lbsa::concurrent::SpinlockSpecObject>(
              std::make_shared<lbsa::spec::PacType>(4));
        },
        [](int t, int i, std::uint64_t r) {
          const std::int64_t label = ((t + static_cast<int>(r)) % 4) + 1;
          return (i % 2 == 0)
                     ? lbsa::spec::make_propose_labeled(100 + t, label)
                     : lbsa::spec::make_decide_labeled(label);
        },
        round, &tally);

    lincheck_round(
        "O'-from-base",
        [] {
          return std::make_unique<lbsa::core::OPrimeFromBaseObject>(4, 3);
        },
        [](int t, int i, std::uint64_t) {
          return lbsa::spec::make_propose_k(100 + t,
                                            1 + (t + i) % 3);
        },
        round, &tally);

    lincheck_round(
        "test&set",
        [] { return std::make_unique<lbsa::concurrent::AtomicTestAndSet>(); },
        [](int, int, std::uint64_t) { return lbsa::spec::make_test_and_set(); },
        round, &tally);

    // A fuzzing slice over the protocol suite.
    {
      std::vector<lbsa::Value> inputs{100, 101, 102, 103, 104, 105};
      auto protocol =
          std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
      lbsa::modelcheck::FuzzOptions options;
      options.runs = 20;
      options.seed = round;
      const auto report =
          lbsa::modelcheck::fuzz_dac(protocol, 0, inputs, options);
      tally.fuzz_runs += report.runs_executed;
      if (!report.ok()) {
        ++tally.violations;
        std::fprintf(stderr, "VIOLATION [fuzz dac6] %s\n",
                     report.violations.front().property.c_str());
      }
    }
    {
      std::vector<lbsa::Value> inputs{0, 1, 1, 0};
      auto protocol =
          std::make_shared<lbsa::protocols::BenOrProtocol>(inputs, 40);
      lbsa::modelcheck::FuzzOptions options;
      options.runs = 10;
      options.seed = round * 77;
      const auto report = lbsa::modelcheck::fuzz_k_agreement(
          protocol, 1, inputs, options);
      tally.fuzz_runs += report.runs_executed;
      if (!report.ok()) {
        ++tally.violations;
        std::fprintf(stderr, "VIOLATION [fuzz ben-or] %s\n",
                     report.violations.front().property.c_str());
      }
    }
  }

  std::printf("soak done: %llu lincheck rounds, %llu fuzz runs, "
              "%llu violation(s)\n",
              static_cast<unsigned long long>(tally.lincheck_rounds),
              static_cast<unsigned long long>(tally.fuzz_runs),
              static_cast<unsigned long long>(tally.violations));

  lbsa::obs::RunReport run_report;
  run_report.task = "soak";
  run_report.params = {{"seconds", std::to_string(seconds)}};
  {
    lbsa::obs::JsonWriter w;
    w.begin_object();
    w.key("rounds");
    w.value_uint(round);
    w.key("lincheck_rounds");
    w.value_uint(tally.lincheck_rounds);
    w.key("fuzz_runs");
    w.value_uint(tally.fuzz_runs);
    w.key("violations");
    w.value_uint(tally.violations);
    w.end_object();
    run_report.sections.emplace_back("soak", std::move(w).str());
  }
  if (const lbsa::Status s = obs_cli.finish(&run_report); !s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }
  return tally.violations == 0 ? 0 : 1;
}
