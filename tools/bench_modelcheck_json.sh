#!/usr/bin/env bash
# Thin compatibility wrapper: this script grew into tools/run_report.sh,
# which emits the schema-checked BENCH_modelcheck.json artifact (explorer
# run-report sweep; pass --with-bench for the raw Google-Benchmark rows the
# old script produced, embedded under "gbench").
#
# Usage: tools/bench_modelcheck_json.sh [build-dir] [output.json]
set -euo pipefail
exec "$(dirname "$0")/run_report.sh" "${1:-build}" \
    "${2:-BENCH_modelcheck.json}" --with-bench
