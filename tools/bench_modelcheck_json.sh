#!/usr/bin/env bash
# Dumps the model-checker exploration benchmarks (including the per-row
# nodes/sec counters and the threads sweep) to a JSON artifact, so CI can
# archive BENCH_modelcheck.json per commit and the speedup curve
# (ModelCheck_ExploreDac/n:4/threads:1..8) is tracked across PRs.
#
# Usage: tools/bench_modelcheck_json.sh [build-dir] [output.json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_modelcheck.json}"
BIN="$BUILD_DIR/bench/bench_modelcheck"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found or not executable; build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter='ModelCheck_Explore' \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo "wrote $OUT" >&2

# Convenience: print the nodes/sec table (name -> rate) if python3 exists.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
rows = [b for b in data.get("benchmarks", []) if "nodes_per_sec" in b]
if rows:
    width = max(len(b["name"]) for b in rows)
    print(f"{'benchmark'.ljust(width)}  nodes/sec", file=sys.stderr)
    for b in rows:
        print(f"{b['name'].ljust(width)}  {b['nodes_per_sec']:,.0f}",
              file=sys.stderr)
EOF
fi
