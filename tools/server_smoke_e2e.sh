#!/usr/bin/env bash
# server_smoke_e2e.sh — agreement-as-a-service end to end through the real
# binaries (docs/serving.md): lbsa_serverd on an AF_UNIX socket, lbsa_client
# hammering it with concurrent check / explore / fuzz requests. The client
# exits nonzero unless every request is answered with a schema-valid
# RunReport AND all responses for one request shape are byte-identical (the
# determinism + cache contract), so this script mostly orchestrates:
#   * ~100 requests (REQUESTS env overrides) across the three ops,
#   * heartbeat streaming on the explore leg,
#   * a status op afterwards — cache hits and latency quantiles must be
#     there and sane,
#   * SIGINT drain: the server must answer everything in flight and exit 0.
#
# Usage: tools/server_smoke_e2e.sh [build-dir]
#   REQUESTS      total requests on the main check leg (default 60)
#   CONCURRENCY   concurrent client connections (default 8)
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVERD="$BUILD_DIR/tools/lbsa_serverd"
CLIENT="$BUILD_DIR/tools/lbsa_client"
REQUESTS="${REQUESTS:-60}"
CONCURRENCY="${CONCURRENCY:-8}"

for bin in "$SERVERD" "$CLIENT"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found or not executable; build first" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
SOCK="$TMP/serve.sock"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

"$SERVERD" --socket "$SOCK" > "$TMP/serverd.out" 2>&1 &
SERVER_PID=$!

# The daemon prints "listening on PATH" once the socket accepts.
for _ in $(seq 1 200); do
  grep -q "listening on" "$TMP/serverd.out" 2>/dev/null && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "error: lbsa_serverd died during startup" >&2
    cat "$TMP/serverd.out" >&2
    exit 1
  }
  sleep 0.05
done
grep -q "listening on" "$TMP/serverd.out" || {
  echo "error: lbsa_serverd never reported readiness" >&2
  exit 1
}

echo "--- check leg: $REQUESTS requests x $CONCURRENCY connections"
"$CLIENT" --socket "$SOCK" --task dac3-sym --op check \
    --requests "$REQUESTS" --concurrency "$CONCURRENCY" \
    --summary-json "$TMP/check_summary.json"

echo "--- explore leg: heartbeat streaming"
"$CLIENT" --socket "$SOCK" --task dac4-sym --op explore \
    --requests 20 --concurrency 4 --heartbeat-ms 5 \
    --summary-json "$TMP/explore_summary.json"

echo "--- fuzz leg: coverage-guided, seed-deterministic"
"$CLIENT" --socket "$SOCK" --task dac3 --op fuzz --coverage \
    --runs 100 --requests 20 --concurrency 4 \
    --summary-json "$TMP/fuzz_summary.json"

echo "--- status"
"$CLIENT" --socket "$SOCK" --task dac3 --status | tee "$TMP/status.json"

# The cache must have absorbed the repeats: every leg repeated one request
# shape, so hits dominate. Be conservative — just require SOME hits and
# that every latency quantile is populated.
grep -q '"hits":0,' "$TMP/status.json" && {
  echo "error: result cache saw no hits across repeated identical requests" >&2
  exit 1
}
grep -Eq '"p99":[1-9][0-9]*' "$TMP/status.json" || {
  echo "error: latency quantiles missing from server stats" >&2
  exit 1
}

echo "--- drain"
kill -INT "$SERVER_PID"
for _ in $(seq 1 200); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.05
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "error: lbsa_serverd did not drain within 10s of SIGINT" >&2
  exit 1
fi
wait "$SERVER_PID" && SERVER_EXIT=0 || SERVER_EXIT=$?
SERVER_PID=""
if [[ "$SERVER_EXIT" != 0 ]]; then
  echo "error: lbsa_serverd exited $SERVER_EXIT" >&2
  cat "$TMP/serverd.out" >&2
  exit 1
fi
grep -q "drained, final stats" "$TMP/serverd.out" || {
  echo "error: missing final stats line after drain" >&2
  exit 1
}

total=$((REQUESTS + 40))
echo "ok: $total requests answered byte-identically across 3 ops;" \
     "cache hit, heartbeats streamed, clean SIGINT drain"
