// explorer_cli — exhaustively explore a named protocol task's configuration
// graph and report its shape, with optional observability artifacts.
//
//   ./explorer_cli --list
//   ./explorer_cli <task> [--threads N]
//                  [--engine auto|serial|parallel|workstealing]
//                  [--max-nodes N] [--allow-truncation]
//                  [--reduction none|symmetry|por|both]
//                  [--canon-cache-bytes N]
//                  [--deadline-s S] [--max-levels N]
//                  [--checkpoint PATH] [--checkpoint-every N]
//                  [--resume PATH]
//                  [--metrics-json PATH] [--trace-out PATH]
//                  [--heartbeat-out PATH] [--heartbeat-every S]
//
// --metrics-json writes a versioned RunReport (docs/observability.md);
// --trace-out writes a chrome://tracing timeline with one lane per worker.
// --heartbeat-out streams one JSON heartbeat line per --heartbeat-every
// seconds (default 1) while the run is in flight; `lbsa_watch` tails it.
// Exploration is deterministic for every thread count / engine, so the
// RunReport's stable metrics compare byte-identical across configurations —
// the obs determinism test drives this binary at threads=1/2/8 and diffs
// exactly that.
//
// Long runs (docs/checking.md, "Long runs"): SIGINT (or --deadline-s /
// --max-levels) stops the exploration at the next BFS level boundary; with
// --checkpoint the partial graph is flushed to a resumable checkpoint and
// --resume continues it to a bit-identical final graph. A second SIGINT
// kills the process immediately.
//
// Exit codes:
//   0  exploration complete
//   1  error (bad checkpoint, I/O failure, exploration error)
//   2  usage error
//   3  complete but truncated at --max-nodes (absence verdicts unsound)
//   4  interrupted at a level boundary; resumable if --checkpoint was given
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "modelcheck/cancel.h"
#include "modelcheck/checkpoint.h"
#include "modelcheck/corpus.h"
#include "modelcheck/explorer.h"
#include "modelcheck/run_task.h"
#include "obs/cli.h"
#include "obs/json.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: explorer_cli --list\n"
      "       explorer_cli <task> [--threads N]\n"
      "                    [--engine auto|serial|parallel|workstealing]\n"
      "                    [--max-nodes N] [--allow-truncation]\n"
      "                    [--reduction none|symmetry|por|both]\n"
      "                    [--canon-cache-bytes N]\n"
      "                    [--deadline-s S] [--max-levels N]\n"
      "                    [--checkpoint PATH] [--checkpoint-every N]\n"
      "                    [--resume PATH] [--run-nonce NONCE]\n"
      "                    [--metrics-json PATH] [--trace-out PATH]\n"
      "                    [--heartbeat-out PATH] [--heartbeat-every S]\n");
  return 2;
}

lbsa::modelcheck::CancelToken g_cancel;

// First ^C: trip the token; the engine stops at the next level boundary and
// flushes a checkpoint + partial report. Second ^C: default disposition
// (kill). CancelToken::cancel is a lock-free atomic store, so this is
// async-signal-safe.
extern "C" void on_sigint(int) {
  g_cancel.cancel();
  std::signal(SIGINT, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsa;
  if (argc < 2) return usage();

  if (!std::strcmp(argv[1], "--list")) {
    for (const std::string& name : modelcheck::named_task_names()) {
      const auto task = modelcheck::make_named_task(name);
      std::printf("%-28s %s\n", name.c_str(),
                  task.value().description.c_str());
    }
    return 0;
  }

  auto task_or = modelcheck::make_named_task(argv[1]);
  if (!task_or.is_ok()) {
    std::fprintf(stderr, "%s\n", task_or.status().to_string().c_str());
    return usage();
  }
  const modelcheck::NamedTask& task = task_or.value();

  modelcheck::ExploreOptions options;
  options.threads = 1;
  std::string resume_path;
  std::string run_nonce;
  obs::ObsCli obs_cli("explorer_cli");
  for (int i = 2; i < argc; ++i) {
    auto next_arg = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (obs_cli.consume(argc, argv, &i)) {
      continue;
    } else if (!std::strcmp(argv[i], "--threads")) {
      options.threads =
          static_cast<int>(std::strtol(next_arg("--threads"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--max-nodes")) {
      options.max_nodes = std::strtoull(next_arg("--max-nodes"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--allow-truncation")) {
      options.allow_truncation = true;
    } else if (!std::strcmp(argv[i], "--reduction")) {
      auto reduction =
          modelcheck::parse_reduction(next_arg("--reduction"));
      if (!reduction.is_ok()) {
        std::fprintf(stderr, "%s\n", reduction.status().to_string().c_str());
        return usage();
      }
      options.reduction = reduction.value();
    } else if (!std::strcmp(argv[i], "--engine")) {
      auto engine = modelcheck::parse_engine(next_arg("--engine"));
      if (!engine.is_ok()) {
        std::fprintf(stderr, "%s\n", engine.status().to_string().c_str());
        return usage();
      }
      options.engine = engine.value();
    } else if (!std::strcmp(argv[i], "--deadline-s")) {
      const double seconds = std::strtod(next_arg("--deadline-s"), nullptr);
      if (!(seconds > 0.0)) {
        std::fprintf(stderr, "--deadline-s needs a positive number\n");
        return usage();
      }
      options.deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(seconds));
    } else if (!std::strcmp(argv[i], "--max-levels")) {
      options.max_levels = static_cast<std::uint32_t>(
          std::strtoul(next_arg("--max-levels"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--canon-cache-bytes")) {
      options.canon_cache_bytes =
          std::strtoull(next_arg("--canon-cache-bytes"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--checkpoint")) {
      options.checkpoint_path = next_arg("--checkpoint");
    } else if (!std::strcmp(argv[i], "--checkpoint-every")) {
      options.checkpoint_every_levels = static_cast<std::uint32_t>(
          std::strtoul(next_arg("--checkpoint-every"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--resume")) {
      resume_path = next_arg("--resume");
    } else if (!std::strcmp(argv[i], "--run-nonce")) {
      run_nonce = next_arg("--run-nonce");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  options.checkpoint_label = task.name;

  modelcheck::ExploreCheckpoint checkpoint;
  if (!resume_path.empty()) {
    auto cp = modelcheck::read_explore_checkpoint(resume_path);
    if (!cp.is_ok()) {
      std::fprintf(stderr, "--resume %s: %s\n", resume_path.c_str(),
                   cp.status().to_string().c_str());
      return 1;
    }
    checkpoint = std::move(cp).value();
    options.resume = &checkpoint;
  }

  std::signal(SIGINT, on_sigint);
  options.cancel = &g_cancel;

  if (obs_cli.heartbeat_requested()) {
    if (options.resume != nullptr) {
      // Seed the cumulative counters with the checkpoint's totals so the
      // resumed stream continues monotonically from where the interrupted
      // session's heartbeats left off.
      obs::Progress& progress = obs::Progress::global();
      progress.nodes_total.store(checkpoint.node_words.size(),
                                 std::memory_order_relaxed);
      progress.transitions_total.store(checkpoint.transition_count,
                                       std::memory_order_relaxed);
      progress.levels_completed.store(checkpoint.levels_completed,
                                      std::memory_order_relaxed);
      progress.frontier_size.store(checkpoint.frontier.size(),
                                   std::memory_order_relaxed);
    }
    // Stable across engines/threads AND across resume (same task + budget),
    // so the appended stream validates as a continuation. --run-nonce
    // disambiguates otherwise-identical concurrent runs sharing a stream
    // namespace; pass the same nonce when resuming such a run.
    const std::string run_id = obs::derive_run_id(
        "explorer_cli", task.name,
        modelcheck::reduction_name(options.reduction), options.max_nodes,
        run_nonce);
    if (const Status s = obs_cli.start_heartbeat(task.name, run_id);
        !s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
  }

  // run_explore_task owns the exploration and the deterministic outputs
  // (summary text, RunReport skeleton); the CLI keeps the transport bits:
  // wall-clock timing, obs finalization, stderr, exit code.
  modelcheck::ExploreTaskSpec spec;
  spec.options = std::move(options);
  spec.resumed_from = resume_path;
  const auto t0 = std::chrono::steady_clock::now();
  modelcheck::TaskRunResult result = modelcheck::run_explore_task(task, spec);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!result.report_valid) {
    std::fprintf(stderr, "%s\n", result.error.c_str());
    return result.exit_code;
  }
  std::fputs(result.human.c_str(), stdout);
  // Wall-clock rate, stdout only: the RunReport's stable sections must stay
  // byte-identical across runs, so timing never lands in --metrics-json
  // (beyond the existing volatile wall_seconds field).
  std::printf("  elapsed %.6f s, %.0f nodes/s\n", elapsed,
              elapsed > 0.0
                  ? static_cast<double>(result.work_items) / elapsed
                  : 0.0);

  if (const Status s = obs_cli.finish(&result.report); !s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }
  if (!result.error.empty()) {
    std::fprintf(stderr, "%s\n", result.error.c_str());
  }
  return result.exit_code;
}
