// fuzz_shrink_cli — fuzz a named protocol task, shrink every finding, and
// emit the findings as corpus files (modelcheck/corpus.h format). The
// produced files are meant to be checked in under tests/corpus/, where the
// corpus replay test re-executes them on every ctest run.
//
//   ./fuzz_shrink_cli --list
//   ./fuzz_shrink_cli <task> [--runs N] [--seed S] [--threads T]
//                     [--coverage] [--max-violations V] [--out DIR]
//                     [--deadline-s S] [--stop-after-runs N]
//                     [--checkpoint PATH] [--checkpoint-every N]
//                     [--resume PATH]
//                     [--metrics-json PATH] [--trace-out PATH]
//                     [--heartbeat-out PATH] [--heartbeat-every S]
//
// Without --out, found schedules are printed to stdout. --metrics-json
// writes a versioned RunReport (docs/observability.md); --trace-out writes
// a chrome://tracing timeline. --heartbeat-out streams one JSON heartbeat
// line per --heartbeat-every seconds (default 1); `lbsa_watch` tails it.
//
// Long campaigns (docs/checking.md, "Long runs"): SIGINT (or --deadline-s /
// --stop-after-runs) stops the campaign at the next run boundary; with
// --checkpoint (coverage engine only) the RNG position, coverage pool, and
// raw violations are flushed to a resumable checkpoint, and --resume
// continues to a byte-identical final report. A second SIGINT kills the
// process immediately.
//
// Exit codes:
//   0  campaign complete, outcome matches the task's expectation
//      (violations for broken tasks, a clean report for correct ones)
//   1  error, or outcome does not match the expectation
//   2  usage error
//   4  interrupted at a run boundary (outcome not judged — the campaign is
//      incomplete); resumable if --checkpoint was given
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "modelcheck/cancel.h"
#include "modelcheck/checkpoint.h"
#include "modelcheck/corpus.h"
#include "modelcheck/run_task.h"
#include "obs/cli.h"
#include "obs/json.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: fuzz_shrink_cli --list\n"
      "       fuzz_shrink_cli <task> [--runs N] [--seed S] [--threads T]\n"
      "                       [--coverage] [--max-violations V] [--out DIR]\n"
      "                       [--deadline-s S] [--stop-after-runs N]\n"
      "                       [--checkpoint PATH] [--checkpoint-every N]\n"
      "                       [--resume PATH] [--run-nonce NONCE]\n"
      "                       [--metrics-json PATH] [--trace-out PATH]\n"
      "                       [--heartbeat-out PATH] [--heartbeat-every S]\n");
  return 2;
}

lbsa::modelcheck::CancelToken g_cancel;

// First ^C: trip the token; the campaign stops at the next run boundary and
// flushes a checkpoint + partial report. Second ^C: default disposition
// (kill). CancelToken::cancel is a lock-free atomic store, so this is
// async-signal-safe.
extern "C" void on_sigint(int) {
  g_cancel.cancel();
  std::signal(SIGINT, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsa;
  if (argc < 2) return usage();

  if (!std::strcmp(argv[1], "--list")) {
    for (const std::string& name : modelcheck::named_task_names()) {
      const auto task = modelcheck::make_named_task(name);
      std::printf("%-28s %s%s\n", name.c_str(),
                  task.value().description.c_str(),
                  task.value().expect_violation ? "  [broken]" : "");
    }
    return 0;
  }

  auto task_or = modelcheck::make_named_task(argv[1]);
  if (!task_or.is_ok()) {
    std::fprintf(stderr, "%s\n", task_or.status().to_string().c_str());
    return usage();
  }
  const modelcheck::NamedTask& task = task_or.value();

  modelcheck::FuzzOptions options;
  options.runs = 2000;
  const char* out_dir = nullptr;
  std::string resume_path;
  std::string run_nonce;
  obs::ObsCli obs_cli("fuzz_shrink_cli");
  for (int i = 2; i < argc; ++i) {
    auto next_arg = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (obs_cli.consume(argc, argv, &i)) {
      continue;
    } else if (!std::strcmp(argv[i], "--runs")) {
      options.runs = std::strtoull(next_arg("--runs"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed")) {
      options.seed = std::strtoull(next_arg("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--threads")) {
      options.threads =
          static_cast<int>(std::strtol(next_arg("--threads"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--max-violations")) {
      options.max_violations = static_cast<int>(
          std::strtol(next_arg("--max-violations"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--coverage")) {
      options.coverage_guided = true;
    } else if (!std::strcmp(argv[i], "--out")) {
      out_dir = next_arg("--out");
    } else if (!std::strcmp(argv[i], "--deadline-s")) {
      const double seconds = std::strtod(next_arg("--deadline-s"), nullptr);
      if (!(seconds > 0.0)) {
        std::fprintf(stderr, "--deadline-s needs a positive number\n");
        return usage();
      }
      options.deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(seconds));
    } else if (!std::strcmp(argv[i], "--stop-after-runs")) {
      options.stop_after_runs =
          std::strtoull(next_arg("--stop-after-runs"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--checkpoint")) {
      options.checkpoint_path = next_arg("--checkpoint");
    } else if (!std::strcmp(argv[i], "--checkpoint-every")) {
      options.checkpoint_every_runs =
          std::strtoull(next_arg("--checkpoint-every"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--resume")) {
      resume_path = next_arg("--resume");
    } else if (!std::strcmp(argv[i], "--run-nonce")) {
      run_nonce = next_arg("--run-nonce");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  if (!options.coverage_guided &&
      (!options.checkpoint_path.empty() || !resume_path.empty() ||
       options.stop_after_runs != 0)) {
    std::fprintf(stderr,
                 "--checkpoint/--resume/--stop-after-runs need --coverage "
                 "(the blind engine's run order is thread-scheduling "
                 "dependent, so it cannot checkpoint deterministically)\n");
    return usage();
  }
  options.checkpoint_label = task.name;

  modelcheck::FuzzCheckpoint checkpoint;
  if (!resume_path.empty()) {
    auto cp = modelcheck::read_fuzz_checkpoint(resume_path);
    if (!cp.is_ok()) {
      std::fprintf(stderr, "--resume %s: %s\n", resume_path.c_str(),
                   cp.status().to_string().c_str());
      return 1;
    }
    checkpoint = std::move(cp).value();
    if (const Status s = modelcheck::validate_fuzz_resume(
            *task.protocol, options, checkpoint);
        !s.is_ok()) {
      std::fprintf(stderr, "--resume %s: %s\n", resume_path.c_str(),
                   s.to_string().c_str());
      return 1;
    }
    options.resume = &checkpoint;
  }

  std::signal(SIGINT, on_sigint);
  options.cancel = &g_cancel;

  if (obs_cli.heartbeat_requested()) {
    // Stable across threads and resume: a resumed campaign (same task,
    // engine, and budget) appends to the same stream as a continuation.
    // --run-nonce disambiguates otherwise-identical concurrent campaigns;
    // pass the same nonce when resuming such a campaign.
    const std::string run_id = obs::derive_run_id(
        "fuzz_shrink_cli", task.name,
        options.coverage_guided ? "coverage" : "blind", options.runs,
        run_nonce);
    if (const Status s = obs_cli.start_heartbeat(task.name, run_id);
        !s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
  }

  // run_fuzz_task owns the campaign and the deterministic outputs (summary
  // text, RunReport skeleton); the CLI keeps the transport bits: obs
  // finalization, stderr, corpus emission, exit code.
  modelcheck::FuzzTaskSpec spec;
  spec.options = std::move(options);
  spec.resumed_from = resume_path;
  modelcheck::FuzzTaskRunResult result = modelcheck::run_fuzz_task(task, spec);
  if (!result.report_valid) {
    std::fprintf(stderr, "%s\n", result.error.c_str());
    return result.exit_code;
  }
  const modelcheck::FuzzReport& report = result.fuzz;
  std::fputs(result.human.c_str(), stdout);

  // An interrupted campaign is an incomplete sample: don't judge the task
  // expectation on it (exit 4 below instead).
  const bool expected =
      report.interrupted || (report.ok() != task.expect_violation);
  if (!expected) {
    std::fprintf(stderr, "%s: unexpected outcome (%s task, %zu violations)\n",
                 task.name.c_str(),
                 task.expect_violation ? "broken" : "correct",
                 report.violations.size());
  }

  // Finalize obs artifacts BEFORE corpus emission: the emission loop has
  // internal-error exits, and an interrupted/failed campaign must still
  // leave complete, valid --metrics-json/--trace-out files behind.
  if (const Status s = obs_cli.finish(&result.report); !s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }

  // Violations found before an interruption are still real findings — emit
  // them either way.
  int file_index = 0;
  for (const modelcheck::FuzzViolation& v : report.violations) {
    std::printf("  %s: %s — %llu raw steps -> %llu shrunk\n",
                v.property.c_str(), v.detail.c_str(),
                static_cast<unsigned long long>(v.raw_steps),
                static_cast<unsigned long long>(v.shrunk_steps));
    modelcheck::CorpusCase c;
    c.task = task.name;
    c.property = v.property;
    c.detail = v.detail + " (run_seed " + std::to_string(v.run_seed) +
               ", raw " + std::to_string(v.raw_steps) + " steps)";
    c.seed = report.seed;
    c.engine = report.engine;
    auto schedule = sim::parse_schedule(v.shrunk_schedule);
    if (!schedule.is_ok()) {
      std::fprintf(stderr, "internal error: shrunk schedule unparsable: %s\n",
                   schedule.status().to_string().c_str());
      return 1;
    }
    c.schedule = schedule.value();
    const Status replay = modelcheck::replay_corpus_case(c);
    if (!replay.is_ok()) {
      std::fprintf(stderr, "internal error: corpus case fails replay: %s\n",
                   replay.to_string().c_str());
      return 1;
    }
    const std::string text = modelcheck::corpus_case_to_string(c);
    if (out_dir != nullptr) {
      const std::string path = std::string(out_dir) + "/" + task.name + "-" +
                               v.property + "-" +
                               std::to_string(file_index++) + ".corpus";
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      out << text;
      std::printf("  wrote %s\n", path.c_str());
    } else {
      std::printf("%s", text.c_str());
    }
  }

  if (!report.checkpoint_error.empty()) {
    std::fprintf(stderr, "%s: checkpoint write failed: %s\n",
                 task.name.c_str(), report.checkpoint_error.c_str());
    return 1;
  }
  if (report.interrupted) return 4;
  return expected ? 0 : 1;
}
