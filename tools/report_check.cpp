// report_check — schema validator for the observability artifacts this
// repository's tools emit (docs/observability.md):
//
//   ./report_check run-report FILE...   # --metrics-json RunReport JSON
//   ./report_check bench FILE...        # tools/run_report.sh BENCH artifact
//   ./report_check hierarchy FILE...    # tools/hierarchy_report.sh HIERARCHY
//   ./report_check trace FILE...        # --trace-out chrome://tracing JSON
//   ./report_check heartbeat FILE...    # --heartbeat-out JSONL stream, or
//                                       # an lbsa_watch --summary-json digest
//
// Exits 0 iff every file validates; prints one line per file. Used by
// tools/run_report.sh to gate its merged artifact and handy for checking
// artifacts by hand.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/heartbeat.h"
#include "obs/json.h"
#include "obs/report.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: report_check run-report FILE...\n"
               "       report_check bench FILE...\n"
               "       report_check hierarchy FILE...\n"
               "       report_check trace FILE...\n"
               "       report_check heartbeat FILE...\n");
  return 2;
}

// Minimal structural check of a Chrome trace-event file: a top-level object
// with a traceEvents array whose entries are objects carrying name/ph/pid.
lbsa::Status validate_trace_json(std::string_view json) {
  using lbsa::obs::JsonValue;
  auto parsed = lbsa::obs::parse_json(json);
  if (!parsed.is_ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return lbsa::invalid_argument("trace: document not an object");
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return lbsa::invalid_argument("trace: traceEvents missing or not an array");
  }
  for (const JsonValue& event : events->array) {
    if (!event.is_object()) {
      return lbsa::invalid_argument("trace: event not an object");
    }
    for (const char* key : {"name", "ph"}) {
      const JsonValue* field = event.find(key);
      if (field == nullptr || !field->is_string()) {
        return lbsa::invalid_argument(std::string("trace: event missing ") +
                                      key);
      }
    }
    if (const JsonValue* pid = event.find("pid");
        pid == nullptr || !pid->is_number()) {
      return lbsa::invalid_argument("trace: event missing pid");
    }
  }
  return lbsa::Status::ok();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsa;
  if (argc < 3) return usage();
  const char* mode = argv[1];
  if (std::strcmp(mode, "run-report") != 0 && std::strcmp(mode, "bench") != 0 &&
      std::strcmp(mode, "hierarchy") != 0 && std::strcmp(mode, "trace") != 0 &&
      std::strcmp(mode, "heartbeat") != 0) {
    return usage();
  }

  bool all_ok = true;
  for (int i = 2; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      all_ok = false;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    Status s;
    if (!std::strcmp(mode, "run-report")) {
      s = obs::validate_run_report_json(text);
    } else if (!std::strcmp(mode, "bench")) {
      s = obs::validate_bench_artifact_json(text);
    } else if (!std::strcmp(mode, "hierarchy")) {
      s = obs::validate_hierarchy_artifact_json(text);
    } else if (!std::strcmp(mode, "heartbeat")) {
      s = obs::validate_heartbeat_file(text);
    } else {
      s = validate_trace_json(text);
    }
    if (s.is_ok()) {
      std::printf("%s: OK\n", argv[i]);
    } else {
      std::fprintf(stderr, "%s: %s\n", argv[i], s.to_string().c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
