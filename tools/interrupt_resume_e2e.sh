#!/usr/bin/env bash
# interrupt_resume_e2e.sh — end-to-end check of the long-run lifecycle
# (docs/checking.md, "Long runs") through the real CLI binaries:
#
#   1. explorer: deterministic interrupt (--max-levels) with a checkpoint,
#      exit 4, then --resume to a final graph identical to an uninterrupted
#      run — serial and parallel, with and without reduction.
#   2. fuzzer: coverage campaign interrupted at a run boundary
#      (--stop-after-runs), exit 4, then --resume to a byte-identical
#      final report.
#   3. SIGINT smoke: a real ^C against a running explorer produces either a
#      clean finish (0) or a resumable interrupt (4) — never a crash — and
#      an interrupt leaves a loadable checkpoint behind.
#   4. Stale/corrupt checkpoints exit 1 with a diagnostic, not a wrong graph.
#
# Every interrupted run also carries the full observability flag set
# (--metrics-json --trace-out --heartbeat-out): an exit-4 run must finalize
# and atomically write ALL of its artifacts, and a resumed run appending to
# the same heartbeat stream must validate as one continuous stream
# (docs/observability.md, "Resume continuity").
#
# Usage: tools/interrupt_resume_e2e.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
EXPLORER="$BUILD_DIR/tools/explorer_cli"
FUZZER="$BUILD_DIR/tools/fuzz_shrink_cli"
CHECK="$BUILD_DIR/tools/report_check"
for bin in "$EXPLORER" "$FUZZER" "$CHECK"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found or not executable; build first" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM
fail() { echo "FAIL: $*" >&2; exit 1; }

# Graph shape line ("task: N nodes, M transitions, depth D...") from a run's
# stdout — the cross-run comparison key. Resumed runs must reproduce the
# uninterrupted graph exactly; metrics counters intentionally differ (they
# count per-session work), so the comparison uses the shape, not the report.
shape() { sed -n '1p' "$1"; }

echo "== explorer interrupt/resume =="
for engine_args in "--engine serial" "--engine parallel --threads 4"; do
  for red in none both; do
    # shellcheck disable=SC2086  # engine_args is intentionally word-split
    "$EXPLORER" dac4-sym $engine_args --reduction "$red" \
        > "$TMP/base.txt" || fail "baseline run failed ($engine_args $red)"
    rc=0
    HB="$TMP/hb-${engine_args//[^a-z0-9]/}-$red.jsonl"
    # shellcheck disable=SC2086
    "$EXPLORER" dac4-sym $engine_args --reduction "$red" --max-levels 2 \
        --checkpoint "$TMP/e.ckpt" --metrics-json "$TMP/partial.json" \
        --trace-out "$TMP/partial.trace.json" \
        --heartbeat-out "$HB" --heartbeat-every 0.02 \
        > "$TMP/part.txt" || rc=$?
    [[ $rc -eq 4 ]] || fail "interrupt expected exit 4, got $rc"
    grep -q '(interrupted)' "$TMP/part.txt" || fail "no interrupted marker"
    # Satellite contract: an exit-4 run finalizes every artifact it was
    # asked for — a valid run report, a valid trace, a valid heartbeat
    # stream — not torn or missing files.
    "$CHECK" run-report "$TMP/partial.json" > /dev/null \
        || fail "partial RunReport invalid"
    "$CHECK" trace "$TMP/partial.trace.json" > /dev/null \
        || fail "partial trace invalid"
    "$CHECK" heartbeat "$HB" > /dev/null \
        || fail "partial heartbeat stream invalid"
    # shellcheck disable=SC2086
    "$EXPLORER" dac4-sym $engine_args --reduction "$red" \
        --resume "$TMP/e.ckpt" --metrics-json "$TMP/resumed.json" \
        --heartbeat-out "$HB" --heartbeat-every 0.02 \
        > "$TMP/res.txt" || fail "resume failed ($engine_args $red)"
    [[ "$(shape "$TMP/base.txt")" == "$(shape "$TMP/res.txt")" ]] \
        || fail "resumed graph differs ($engine_args $red):
  base:    $(shape "$TMP/base.txt")
  resumed: $(shape "$TMP/res.txt")"
    "$CHECK" run-report "$TMP/resumed.json" > /dev/null \
        || fail "resumed RunReport invalid"
    # The resumed run appended to the interrupted run's stream: same run_id,
    # continued sequence numbers, cumulative counters still monotone.
    "$CHECK" heartbeat "$HB" > /dev/null \
        || fail "heartbeat splice across resume invalid"
    runs_ids="$(grep -o '"run_id":"[a-f0-9]*"' "$HB" | sort -u | wc -l)"
    [[ "$runs_ids" == 1 ]] || fail "run_id changed across resume"
    finals="$(grep -c '"final":true' "$HB")"
    [[ "$finals" == 2 ]] \
        || fail "expected 2 final lines (interrupt + resume), got $finals"
  done
done
echo "ok: resumed graphs identical (2 engines x 2 reductions);" \
     "exit-4 artifacts + heartbeat splices all validate"

echo "== fuzzer interrupt/resume =="
FUZZ_ARGS=(dac3 --coverage --runs 300 --seed 9)
"$FUZZER" "${FUZZ_ARGS[@]}" > "$TMP/fbase.txt" || fail "baseline fuzz failed"
rc=0
"$FUZZER" "${FUZZ_ARGS[@]}" --stop-after-runs 100 \
    --checkpoint "$TMP/f.ckpt" > "$TMP/fpart.txt" || rc=$?
[[ $rc -eq 4 ]] || fail "fuzz interrupt expected exit 4, got $rc"
"$FUZZER" "${FUZZ_ARGS[@]}" --resume "$TMP/f.ckpt" > "$TMP/fres.txt" \
    || fail "fuzz resume failed"
diff "$TMP/fbase.txt" "$TMP/fres.txt" > /dev/null \
    || fail "resumed fuzz report differs from uninterrupted run"
echo "ok: resumed fuzz report byte-identical"

echo "== SIGINT smoke =="
# dac6 (~250k nodes, a second or two) runs long enough that a ^C shortly
# after launch lands mid-exploration on any machine fast or slow. Both
# outcomes are legal — finished before the signal (0) or interrupted at a
# level boundary (4); anything else is a bug.
rc=0
"$EXPLORER" dac6 --checkpoint "$TMP/s.ckpt" \
    --metrics-json "$TMP/sig.run.json" --trace-out "$TMP/sig.trace.json" \
    --heartbeat-out "$TMP/sig.hb.jsonl" --heartbeat-every 0.05 \
    > "$TMP/sig.txt" &
pid=$!
sleep 0.2
kill -INT "$pid" 2>/dev/null || true
wait "$pid" || rc=$?
# Whether the run finished (0) or was interrupted (4), every requested
# artifact must exist and validate — a ^C must never leave torn JSON.
"$CHECK" run-report "$TMP/sig.run.json" > /dev/null \
    || fail "RunReport after SIGINT invalid"
"$CHECK" trace "$TMP/sig.trace.json" > /dev/null \
    || fail "trace after SIGINT invalid"
"$CHECK" heartbeat "$TMP/sig.hb.jsonl" > /dev/null \
    || fail "heartbeat stream after SIGINT invalid"
if [[ $rc -eq 4 ]]; then
  [[ -f "$TMP/s.ckpt" ]] || fail "interrupted without a checkpoint on disk"
  "$EXPLORER" dac6 --resume "$TMP/s.ckpt" > "$TMP/sigres.txt" \
      || fail "resume after SIGINT failed"
  "$EXPLORER" dac6 > "$TMP/sigbase.txt" || fail "baseline run failed"
  [[ "$(shape "$TMP/sigbase.txt")" == "$(shape "$TMP/sigres.txt")" ]] \
      || fail "graph after SIGINT+resume differs from uninterrupted run"
  echo "ok: SIGINT -> exit 4, checkpoint resumes to identical graph"
elif [[ $rc -eq 0 ]]; then
  echo "ok: run finished before the signal landed (exit 0)"
else
  fail "SIGINT produced exit $rc (want 0 or 4)"
fi

echo "== stale/corrupt checkpoints rejected =="
rc=0
"$EXPLORER" dac4-sym --max-levels 1 --checkpoint "$TMP/stale.ckpt" \
    > /dev/null || rc=$?
[[ $rc -eq 4 ]] || fail "checkpoint setup expected exit 4, got $rc"
rc=0
"$EXPLORER" dac3-sym --resume "$TMP/stale.ckpt" > /dev/null \
    2> "$TMP/stale.err" || rc=$?
[[ $rc -eq 1 ]] || fail "wrong-task resume expected exit 1, got $rc"
grep -qi "precondition\|mismatch\|does not match" "$TMP/stale.err" \
    || fail "wrong-task resume error lacks a diagnostic"
head -c 100 "$TMP/stale.ckpt" > "$TMP/trunc.ckpt"
rc=0
"$EXPLORER" dac4-sym --resume "$TMP/trunc.ckpt" > /dev/null 2>&1 || rc=$?
[[ $rc -eq 1 ]] || fail "corrupt resume expected exit 1, got $rc"
echo "ok: stale and corrupt checkpoints rejected with exit 1"

echo "PASS: interrupt/resume e2e"
