// lbsa_watch — tail a --heartbeat-out JSONL stream from a concurrently
// running explorer_cli / fuzz_shrink_cli / hierarchy_sweep_cli and render a
// live status line per heartbeat, plus an optional machine-readable digest.
//
//   ./lbsa_watch FILE [--summary-json PATH] [--timeout-s S] [--quiet]
//
// The watcher polls FILE (which may not exist yet — the producer creates
// it), consumes complete lines as they are appended, validates each against
// the heartbeat schema, and prints a refreshing status table:
//
//   seq    uptime      nodes     nodes/s   frontier  lvl   eta  workers
//
// It exits 0 when a line with "final":true arrives (the producer's stop()
// signal), or 1 if --timeout-s elapses first / the stream is invalid.
// --summary-json writes a final digest (validated by
// `report_check heartbeat`, schema in docs/observability.md) summarizing
// the whole observed stream; --quiet suppresses the per-tick lines (CI
// mode: just follow, digest, exit).
//
// Exit codes:
//   0  final heartbeat observed
//   1  timeout, I/O failure, or invalid stream
//   2  usage error
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "obs/heartbeat.h"
#include "obs/json.h"
#include "obs/report.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lbsa_watch FILE [--summary-json PATH] [--timeout-s S] "
               "[--quiet]\n");
  return 2;
}

// Rolling digest of every heartbeat line seen.
struct WatchState {
  bool any = false;
  std::string run_id;
  std::string tool;
  std::string task;
  std::uint64_t ticks = 0;
  std::int64_t first_seq = 0;
  std::int64_t last_seq = 0;
  std::uint64_t nodes_total = 0;
  std::uint64_t transitions_total = 0;
  std::uint64_t levels_completed = 0;
  double max_nodes_per_sec = 0.0;
  bool final_seen = false;
};

std::string format_uptime(std::uint64_t ms) {
  char buf[32];
  const std::uint64_t s = ms / 1000;
  if (s >= 3600) {
    std::snprintf(buf, sizeof buf, "%lluh%02llum",
                  static_cast<unsigned long long>(s / 3600),
                  static_cast<unsigned long long>((s % 3600) / 60));
  } else if (s >= 60) {
    std::snprintf(buf, sizeof buf, "%llum%02llus",
                  static_cast<unsigned long long>(s / 60),
                  static_cast<unsigned long long>(s % 60));
  } else {
    std::snprintf(buf, sizeof buf, "%llu.%llus",
                  static_cast<unsigned long long>(s),
                  static_cast<unsigned long long>((ms % 1000) / 100));
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsa;
  if (argc < 2) return usage();
  const char* path = argv[1];
  if (path[0] == '-') return usage();
  std::string summary_path;
  double timeout_s = 0.0;  // 0 = wait forever
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    auto next_arg = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--summary-json")) {
      summary_path = next_arg("--summary-json");
    } else if (!std::strcmp(argv[i], "--timeout-s")) {
      timeout_s = std::strtod(next_arg("--timeout-s"), nullptr);
      if (!(timeout_s > 0.0)) {
        std::fprintf(stderr, "--timeout-s needs a positive number\n");
        return usage();
      }
    } else if (!std::strcmp(argv[i], "--quiet")) {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return usage();
    }
  }

  const auto start = std::chrono::steady_clock::now();
  auto timed_out = [&] {
    if (timeout_s <= 0.0) return false;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() > timeout_s;
  };

  WatchState state;
  std::string carry;        // incomplete trailing line between reads
  std::size_t offset = 0;   // bytes of FILE consumed so far
  bool header_printed = false;

  while (true) {
    // Tail-follow: re-open and seek past what we've consumed. Reopening per
    // poll (4 Hz) is cheap and handles the producer creating the file late.
    std::ifstream in(path, std::ios::binary);
    if (in) {
      in.seekg(static_cast<std::streamoff>(offset));
      std::string chunk((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      offset += chunk.size();
      carry += chunk;
      std::size_t nl;
      while ((nl = carry.find('\n')) != std::string::npos) {
        const std::string line = carry.substr(0, nl);
        carry.erase(0, nl + 1);
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        auto parsed = obs::parse_json(line);
        if (!parsed.is_ok() || !parsed.value().is_object()) {
          std::fprintf(stderr, "lbsa_watch: %s: bad heartbeat line: %s\n",
                       path,
                       parsed.is_ok() ? "not an object"
                                      : parsed.status().message().c_str());
          return 1;
        }
        const obs::JsonValue& hb = parsed.value();
        // Validate the single line by running the stream validator over it;
        // cross-line invariants (seq, monotonicity) are checked against the
        // running state below.
        if (const Status s = obs::validate_heartbeat_stream(line);
            !s.is_ok()) {
          std::fprintf(stderr, "lbsa_watch: %s: %s\n", path,
                       s.to_string().c_str());
          return 1;
        }
        const std::string run_id = hb.find("run_id")->string_value;
        const std::int64_t seq = hb.find("seq")->int_value;
        const std::uint64_t nodes =
            static_cast<std::uint64_t>(hb.find("nodes_total")->int_value);
        const std::uint64_t transitions = static_cast<std::uint64_t>(
            hb.find("transitions_total")->int_value);
        if (!state.any) {
          state.any = true;
          state.run_id = run_id;
          state.tool = hb.find("tool")->string_value;
          state.task = hb.find("task")->string_value;
          state.first_seq = seq;
        } else {
          if (run_id != state.run_id) {
            std::fprintf(stderr, "lbsa_watch: %s: run_id changed mid-stream\n",
                         path);
            return 1;
          }
          if (seq != state.last_seq + 1) {
            std::fprintf(stderr,
                         "lbsa_watch: %s: seq %lld out of order (expected "
                         "%lld)\n",
                         path, static_cast<long long>(seq),
                         static_cast<long long>(state.last_seq + 1));
            return 1;
          }
          if (nodes < state.nodes_total ||
              transitions < state.transitions_total) {
            std::fprintf(stderr,
                         "lbsa_watch: %s: cumulative counter decreased\n",
                         path);
            return 1;
          }
        }
        state.last_seq = seq;
        state.nodes_total = nodes;
        state.transitions_total = transitions;
        state.levels_completed =
            static_cast<std::uint64_t>(hb.find("levels_completed")->int_value);
        const double rate = hb.find("nodes_per_sec")->number_value;
        if (rate > state.max_nodes_per_sec) state.max_nodes_per_sec = rate;
        ++state.ticks;
        const bool final_line =
            hb.find("final")->kind == obs::JsonValue::Kind::kBool &&
            hb.find("final")->bool_value;
        if (final_line) state.final_seen = true;

        if (!quiet) {
          if (!header_printed) {
            header_printed = true;
            std::printf("watching %s: %s/%s run %s\n", path,
                        state.tool.c_str(), state.task.c_str(),
                        state.run_id.c_str());
            std::printf("%6s %9s %12s %12s %10s %6s %8s %6s\n", "seq",
                        "uptime", "nodes", "nodes/s", "frontier", "levels",
                        "eta", "busy");
          }
          const obs::JsonValue* eta = hb.find("eta_s");
          char eta_buf[32];
          if (eta->is_number()) {
            std::snprintf(eta_buf, sizeof eta_buf, "%.0fs",
                          eta->number_value);
          } else {
            std::snprintf(eta_buf, sizeof eta_buf, "-");
          }
          std::size_t busy = 0;
          const obs::JsonValue* workers = hb.find("workers");
          for (const obs::JsonValue& slot : workers->array) {
            if (slot.find("busy")->int_value != 0) ++busy;
          }
          std::printf("%6lld %9s %12llu %12.0f %10llu %6llu %8s %3zu/%-2zu%s\n",
                      static_cast<long long>(seq),
                      format_uptime(static_cast<std::uint64_t>(
                                        hb.find("uptime_ms")->int_value))
                          .c_str(),
                      static_cast<unsigned long long>(nodes),
                      hb.find("nodes_per_sec")->number_value,
                      static_cast<unsigned long long>(
                          hb.find("frontier_size")->int_value),
                      static_cast<unsigned long long>(state.levels_completed),
                      eta_buf, busy, workers->array.size(),
                      final_line ? "  [final]" : "");
          std::fflush(stdout);
        }
      }
    }
    if (state.final_seen) break;
    if (timed_out()) {
      std::fprintf(stderr,
                   "lbsa_watch: %s: timed out after %.1fs (%llu heartbeats, "
                   "no final line)\n",
                   path, timeout_s,
                   static_cast<unsigned long long>(state.ticks));
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }

  if (!summary_path.empty()) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("heartbeat_summary_version");
    w.value_int(obs::kHeartbeatSummarySchemaVersion);
    w.key("run_id");
    w.value_string(state.run_id);
    w.key("tool");
    w.value_string(state.tool);
    w.key("task");
    w.value_string(state.task);
    w.key("ticks");
    w.value_uint(state.ticks);
    w.key("first_seq");
    w.value_int(state.first_seq);
    w.key("last_seq");
    w.value_int(state.last_seq);
    w.key("nodes_total");
    w.value_uint(state.nodes_total);
    w.key("transitions_total");
    w.value_uint(state.transitions_total);
    w.key("levels_completed");
    w.value_uint(state.levels_completed);
    w.key("max_nodes_per_sec");
    w.value_double(state.max_nodes_per_sec);
    w.key("final_seen");
    w.value_bool(state.final_seen);
    w.end_object();
    std::string json = std::move(w).str();
    // Self-check before writing: this binary never leaves a digest behind
    // that `report_check heartbeat` would reject.
    if (const Status s = obs::validate_heartbeat_summary_json(json);
        !s.is_ok()) {
      std::fprintf(stderr, "internal: emitted digest fails schema: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    json += '\n';
    if (const Status s = obs::write_text_file(summary_path, json);
        !s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
  }
  return 0;
}
