// E9 — the universal construction (Herlihy's theorem as a substrate).
//
// Series reported:
//   * Universal_Counter/t:     one iteration = t threads pushing 2048
//                              fetch-and-adds each through the consensus
//                              chain (items/s is the end-to-end op rate; the
//                              chain serializes, so scaling flattens by
//                              design);
//   * Universal_DirectCounter: baseline — plain atomic fetch-and-add (what
//                              the generality costs);
//   * Universal_PacReplica:    a 4-PAC as the replicated object — the
//                              paper-relevant case: a proof-device object
//                              implemented from consensus + registers.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>

#include "spec/counter_type.h"
#include "spec/pac_type.h"
#include "universal/universal_object.h"
#include "universal/wait_free_universal.h"

namespace {

constexpr std::size_t kOpsPerThread = 2048;

void Universal_Counter(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    lbsa::universal::UniversalObject counter(
        std::make_shared<lbsa::spec::CounterType>(), threads,
        static_cast<std::size_t>(threads) * kOpsPerThread + 8);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&counter, t] {
        for (std::size_t i = 0; i < kOpsPerThread; ++i) {
          benchmark::DoNotOptimize(
              counter.apply_as(t, lbsa::spec::make_propose(1)));
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kOpsPerThread) *
                          state.range(0));
}
BENCHMARK(Universal_Counter)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void Universal_DirectCounter(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::atomic<std::int64_t> counter{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&counter] {
        for (std::size_t i = 0; i < kOpsPerThread; ++i) {
          benchmark::DoNotOptimize(
              counter.fetch_add(1, std::memory_order_acq_rel));
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kOpsPerThread) *
                          state.range(0));
}
BENCHMARK(Universal_DirectCounter)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void Universal_WaitFreeCounter(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    lbsa::universal::WaitFreeUniversalObject counter(
        std::make_shared<lbsa::spec::CounterType>(), threads,
        kOpsPerThread + 1);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&counter, t] {
        for (std::size_t i = 0; i < kOpsPerThread; ++i) {
          benchmark::DoNotOptimize(
              counter.apply_as(t, lbsa::spec::make_propose(1)));
        }
      });
    }
    for (auto& w : workers) w.join();
    state.counters["max_decide_delay"] =
        static_cast<double>(counter.max_decide_delay());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kOpsPerThread) *
                          state.range(0));
}
BENCHMARK(Universal_WaitFreeCounter)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void Universal_PacReplica(benchmark::State& state) {
  for (auto _ : state) {
    lbsa::universal::UniversalObject pac(
        std::make_shared<lbsa::spec::PacType>(4), 1, 2 * kOpsPerThread + 8);
    std::int64_t label = 1;
    for (std::size_t i = 0; i < kOpsPerThread; ++i) {
      benchmark::DoNotOptimize(
          pac.apply_as(0, lbsa::spec::make_propose_labeled(7, label)));
      benchmark::DoNotOptimize(
          pac.apply_as(0, lbsa::spec::make_decide_labeled(label)));
      label = (label % 4) + 1;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * kOpsPerThread));
}
BENCHMARK(Universal_PacReplica)->Unit(benchmark::kMillisecond);

}  // namespace
