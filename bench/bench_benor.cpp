// E13 — randomized consensus cost under a fair adversary.
//
// Series reported:
//   * BenOr_FairRun/n: one seeded random-adversary run to decision for n
//                      processes (counter: mean steps); randomness makes
//                      the per-iteration work variable, so read the
//                      items/sec as an order of magnitude;
//   * BenOr_SafetyCheck/rounds: exhaustive safety verification cost as the
//                      round budget (and hence the coin-branching state
//                      space) grows.

#include <benchmark/benchmark.h>

#include <memory>

#include "modelcheck/task_check.h"
#include "protocols/ben_or.h"
#include "sim/simulation.h"

namespace {

void BenOr_FairRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<lbsa::Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i % 2);
  std::uint64_t seed = 1;
  std::uint64_t total_steps = 0, runs = 0;
  for (auto _ : state) {
    auto protocol =
        std::make_shared<lbsa::protocols::BenOrProtocol>(inputs, 64);
    lbsa::sim::Simulation simulation(protocol);
    lbsa::sim::RandomAdversary adversary(seed++);
    const auto result = simulation.run(
        &adversary, {.max_steps = 1'000'000, .record_history = false});
    if (!result.all_terminated) {
      state.SkipWithError("fair run failed to decide within budget");
      return;
    }
    total_steps += result.steps;
    ++runs;
  }
  state.counters["mean_steps"] =
      runs ? static_cast<double>(total_steps) / static_cast<double>(runs)
           : 0.0;
}
BENCHMARK(BenOr_FairRun)->Arg(2)->Arg(3)->Arg(4)->Arg(6);

void BenOr_SafetyCheck(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  const std::vector<lbsa::Value> inputs{0, 1};
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    auto protocol =
        std::make_shared<lbsa::protocols::BenOrProtocol>(inputs, rounds);
    lbsa::modelcheck::TaskCheckOptions options;
    options.max_violations = 16;
    auto report = lbsa::modelcheck::check_k_agreement_task(protocol, 1,
                                                           inputs, options);
    if (!report.is_ok() || report.value().violates("agreement") ||
        report.value().violates("validity")) {
      state.SkipWithError("safety check failed");
      return;
    }
    nodes = report.value().node_count;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BenOr_SafetyCheck)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
