// E3 — the bivalency machinery on both sides of Theorem 4.2.
//
// Series reported:
//   * Bivalency_StrawFallback:  explore + valence-analyze the straw-man
//                               (n+1)-DAC that fails agreement;
//   * Bivalency_StrawAnnounce:  same for the candidate that fails
//                               termination;
//   * Bivalency_AlgorithmTwo:   same analysis on the correct Algorithm 2;
//   * Bivalency_FlpRace:        the 2-process register race.
// Counters: nodes (reachable configs), multivalent, critical.

#include <benchmark/benchmark.h>

#include <memory>

#include "modelcheck/explorer.h"
#include "modelcheck/valence.h"
#include "protocols/dac_from_pac.h"
#include "protocols/flp_race.h"
#include "protocols/straw_dac.h"

namespace {

void analyze(benchmark::State& state,
             std::shared_ptr<const lbsa::sim::Protocol> protocol) {
  std::uint64_t nodes = 0, multivalent = 0, critical = 0;
  for (auto _ : state) {
    lbsa::modelcheck::Explorer explorer(protocol);
    auto graph_or = explorer.explore({.max_nodes = 2'000'000});
    if (!graph_or.is_ok()) {
      state.SkipWithError("exploration failed");
      return;
    }
    lbsa::modelcheck::ValenceAnalyzer analyzer(graph_or.value());
    nodes = graph_or.value().nodes().size();
    multivalent = analyzer.multivalent_nodes().size();
    critical = analyzer.critical_nodes().size();
    benchmark::DoNotOptimize(critical);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["multivalent"] = static_cast<double>(multivalent);
  state.counters["critical"] = static_cast<double>(critical);
}

void Bivalency_StrawFallback(benchmark::State& state) {
  analyze(state, std::make_shared<lbsa::protocols::StrawDacFallbackProtocol>(
                     std::vector<lbsa::Value>{0, 1, 2}));
}
BENCHMARK(Bivalency_StrawFallback)->Unit(benchmark::kMillisecond);

void Bivalency_StrawAnnounce(benchmark::State& state) {
  analyze(state, std::make_shared<lbsa::protocols::StrawDacAnnounceProtocol>(
                     std::vector<lbsa::Value>{0, 1, 2}));
}
BENCHMARK(Bivalency_StrawAnnounce)->Unit(benchmark::kMillisecond);

void Bivalency_AlgorithmTwo(benchmark::State& state) {
  analyze(state, std::make_shared<lbsa::protocols::DacFromPacProtocol>(
                     std::vector<lbsa::Value>{0, 1, 2}));
}
BENCHMARK(Bivalency_AlgorithmTwo)->Unit(benchmark::kMillisecond);

void Bivalency_FlpRace(benchmark::State& state) {
  analyze(state, std::make_shared<lbsa::protocols::FlpRaceProtocol>(5, 3));
}
BENCHMARK(Bivalency_FlpRace)->Unit(benchmark::kMillisecond);

}  // namespace
