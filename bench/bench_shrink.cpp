// Fuzzing and shrinking cost: how expensive is it to find a violation, to
// minimize it, and to replay the regression corpus. These are the budgets
// behind the "fuzz" ctest label's smoke limits and behind choosing
// ShrinkOptions::max_replays defaults.
//
// Series reported:
//   * Shrink_Minimize/n:        shrink one raw strawdac finding at n
//                               processes (counters: raw/shrunk steps,
//                               replays spent);
//   * Shrink_LenientReplayRate: lenient executor step throughput;
//   * Fuzz_BlindThreads/t:      blind fuzz scaling across worker threads;
//   * Fuzz_CoverageVsBlind:     fingerprint yield per mode at a fixed
//                               budget (counter: distinct fingerprints).

#include <benchmark/benchmark.h>

#include <memory>

#include "modelcheck/corpus.h"
#include "modelcheck/fuzz.h"
#include "modelcheck/shrink.h"
#include "protocols/dac_from_pac.h"
#include "protocols/straw_dac.h"
#include "sim/trace.h"

namespace {

using lbsa::modelcheck::FuzzOptions;
using lbsa::modelcheck::FuzzReport;

std::vector<lbsa::Value> iota_inputs(int n) {
  std::vector<lbsa::Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + 100 * i);
  return inputs;
}

// One raw (unshrunk) violating schedule for the n-process straw-man DAC.
std::vector<lbsa::sim::ScriptedAdversary::Choice> raw_violation(
    const std::shared_ptr<const lbsa::sim::Protocol>& protocol,
    const lbsa::modelcheck::SafetyPredicate& judge) {
  FuzzOptions options;
  options.runs = 20'000;
  options.max_violations = 1;
  options.shrink_violations = false;
  const FuzzReport report =
      lbsa::modelcheck::fuzz_safety(protocol, judge, options);
  if (report.ok()) return {};
  auto schedule = lbsa::sim::parse_schedule(report.violations[0].schedule);
  return schedule.is_ok() ? schedule.value()
                          : std::vector<lbsa::sim::ScriptedAdversary::Choice>{};
}

void Shrink_Minimize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto inputs = iota_inputs(n);
  auto protocol =
      std::make_shared<lbsa::protocols::StrawDacFallbackProtocol>(inputs);
  const auto judge = lbsa::modelcheck::dac_safety(0, inputs);
  const auto raw = raw_violation(protocol, judge);
  if (raw.empty()) {
    state.SkipWithError("no violation found");
    return;
  }
  const std::string property = "agreement";
  lbsa::modelcheck::ShrinkStats stats;
  for (auto _ : state) {
    const auto shrunk = lbsa::modelcheck::shrink_schedule(
        protocol, raw, judge, property, {}, &stats);
    benchmark::DoNotOptimize(shrunk.size());
  }
  state.counters["raw_steps"] = static_cast<double>(stats.raw_steps);
  state.counters["shrunk_steps"] = static_cast<double>(stats.shrunk_steps);
  state.counters["replays"] = static_cast<double>(stats.replays);
}
BENCHMARK(Shrink_Minimize)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

void Shrink_LenientReplayRate(benchmark::State& state) {
  // Steps-per-second of the lenient executor, the inner loop of both the
  // shrinker and coverage-guided mutation replays.
  const auto inputs = iota_inputs(4);
  auto protocol =
      std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
  const auto judge = lbsa::modelcheck::dac_safety(0, inputs);
  // A long clean schedule: round-robin until termination.
  std::vector<lbsa::sim::ScriptedAdversary::Choice> schedule;
  for (int round = 0; round < 200; ++round) {
    for (int pid = 0; pid < 4; ++pid) schedule.push_back({pid, 0, false});
  }
  std::size_t steps = 0;
  for (auto _ : state) {
    const auto outcome =
        lbsa::modelcheck::run_schedule_lenient(protocol, schedule, judge);
    steps = outcome.effective.size();
    benchmark::DoNotOptimize(steps);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(steps));
}
BENCHMARK(Shrink_LenientReplayRate)->Unit(benchmark::kMillisecond);

void Fuzz_BlindThreads(benchmark::State& state) {
  // Blind fuzz wall-clock across worker threads (reports are identical for
  // every thread count, so the rows measure the same work).
  const int threads = static_cast<int>(state.range(0));
  const auto inputs = iota_inputs(6);
  auto protocol =
      std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
  for (auto _ : state) {
    FuzzOptions options;
    options.runs = 200;
    options.threads = threads;
    const FuzzReport report =
        lbsa::modelcheck::fuzz_dac(protocol, 0, inputs, options);
    if (!report.ok()) {
      state.SkipWithError("unexpected violation");
      return;
    }
    benchmark::DoNotOptimize(report.distinct_fingerprints);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(Fuzz_BlindThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void Fuzz_CoverageVsBlind(benchmark::State& state) {
  // Fingerprint yield at a fixed budget; coverage==1 breeds from the pool.
  const bool coverage = state.range(0) != 0;
  const auto inputs = iota_inputs(3);
  auto protocol =
      std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
  std::uint64_t fingerprints = 0;
  for (auto _ : state) {
    FuzzOptions options;
    options.runs = 300;
    options.seed = 17;
    options.coverage_guided = coverage;
    const FuzzReport report =
        lbsa::modelcheck::fuzz_dac(protocol, 0, inputs, options);
    fingerprints = report.distinct_fingerprints;
    benchmark::DoNotOptimize(fingerprints);
  }
  state.counters["distinct_fingerprints"] =
      static_cast<double>(fingerprints);
}
BENCHMARK(Fuzz_CoverageVsBlind)->ArgName("coverage")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
