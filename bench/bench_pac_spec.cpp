// E1 — the n-PAC specification (Algorithm 1).
//
// Series reported:
//   * PacSpec_MatchedPair/n:   cost of one PROPOSE+DECIDE matched pair on an
//                              n-PAC state (the object's hot path);
//   * PacSpec_UpsetDecide/n:   cost of a decide on an upset object (the
//                              early-return path the proofs lean on);
//   * PacSpec_HistorySweep/len: exhaustive enumeration of all 2-PAC histories
//                              of the given length (the E1 test workload).

#include <benchmark/benchmark.h>

#include "spec/pac_type.h"

namespace {

using lbsa::spec::Operation;
using lbsa::spec::Outcome;
using lbsa::spec::PacType;

void PacSpec_MatchedPair(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PacType pac(n);
  std::vector<std::int64_t> s = pac.initial_state();
  std::int64_t label = 1;
  for (auto _ : state) {
    Outcome p = pac.apply_unique(s, lbsa::spec::make_propose_labeled(7, label));
    Outcome d = pac.apply_unique(p.next_state,
                                 lbsa::spec::make_decide_labeled(label));
    benchmark::DoNotOptimize(d.response);
    s = std::move(d.next_state);
    label = (label % n) + 1;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(PacSpec_MatchedPair)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(32)->Arg(128);

void PacSpec_UpsetDecide(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PacType pac(n);
  // Upset the object with a bare decide.
  std::vector<std::int64_t> s =
      pac.apply_unique(pac.initial_state(), lbsa::spec::make_decide_labeled(1))
          .next_state;
  for (auto _ : state) {
    Outcome d = pac.apply_unique(s, lbsa::spec::make_decide_labeled(1));
    benchmark::DoNotOptimize(d.response);
    s = std::move(d.next_state);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(PacSpec_UpsetDecide)->Arg(2)->Arg(8)->Arg(128);

// Exhaustive history enumeration (the E1 sweep shape): all histories of
// length `len` over the 2-PAC alphabet with one value per label.
void PacSpec_HistorySweep(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  PacType pac(2);
  const std::vector<Operation> alphabet = {
      lbsa::spec::make_propose_labeled(7, 1),
      lbsa::spec::make_propose_labeled(7, 2),
      lbsa::spec::make_decide_labeled(1),
      lbsa::spec::make_decide_labeled(2),
  };
  std::uint64_t histories = 0;
  for (auto _ : state) {
    histories = 0;
    // Iterative odometer over alphabet^len.
    std::vector<int> digits(static_cast<size_t>(len), 0);
    bool done = false;
    while (!done) {
      std::vector<std::int64_t> s = pac.initial_state();
      for (int d : digits) {
        s = pac.apply_unique(s, alphabet[static_cast<size_t>(d)]).next_state;
      }
      ++histories;
      int pos = len - 1;
      while (pos >= 0 && ++digits[static_cast<size_t>(pos)] ==
                             static_cast<int>(alphabet.size())) {
        digits[static_cast<size_t>(pos)] = 0;
        --pos;
      }
      done = pos < 0;
    }
    benchmark::DoNotOptimize(histories);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(histories));
  state.counters["histories"] = static_cast<double>(histories);
}
BENCHMARK(PacSpec_HistorySweep)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
