// E6 — the O'_n bundle and the Lemma 6.4 construction.
//
// Series reported:
//   * OPrime_SpecApply/k:         spec bundle apply at level k (outcome
//                                 enumeration grows with |STATE|);
//   * OPrime_FromBaseApply/k:     the from-base construction on the same op
//                                 mix (comparable shape expected);
//   * OPrime_ConcurrentPropose/t: the lock-free concurrent Lemma 6.4 object
//                                 under t threads;
//   * OPrime_LincheckRound:       record a 4-thread round on the concurrent
//                                 construction and verify linearizability
//                                 against the O' spec.

#include <benchmark/benchmark.h>

#include <memory>
#include <thread>

#include "concurrent/recording.h"
#include "core/separation.h"
#include "lincheck/checker.h"

namespace {

void OPrime_SpecApply(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  auto type = lbsa::core::make_o_prime_n(2, 3);
  auto s = type->initial_state();
  std::vector<lbsa::spec::Outcome> outcomes;
  lbsa::Value v = 100;
  // Stay within the level's port bound by resetting periodically.
  const int bound = level * 2;
  int used = 0;
  for (auto _ : state) {
    if (++used > bound) {
      s = type->initial_state();
      used = 1;
    }
    outcomes.clear();
    type->apply(s, lbsa::spec::make_propose_k(v++, level), &outcomes);
    benchmark::DoNotOptimize(outcomes.size());
    s = outcomes[0].next_state;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(OPrime_SpecApply)->Arg(1)->Arg(2)->Arg(3);

void OPrime_FromBaseApply(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  auto type = lbsa::core::make_o_prime_from_base(2, 3);
  auto s = type->initial_state();
  std::vector<lbsa::spec::Outcome> outcomes;
  lbsa::Value v = 100;
  const int bound = level * 2;
  int used = 0;
  for (auto _ : state) {
    if (++used > bound) {
      s = type->initial_state();
      used = 1;
    }
    outcomes.clear();
    type->apply(s, lbsa::spec::make_propose_k(v++, level), &outcomes);
    benchmark::DoNotOptimize(outcomes.size());
    s = outcomes[0].next_state;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(OPrime_FromBaseApply)->Arg(1)->Arg(2)->Arg(3);

// Level-2 proposes on the concurrent construction under contention. The
// (2k,k)-SA members are port-bounded, so use a wide bundle (n = 512) to keep
// the object live across the measurement.
std::unique_ptr<lbsa::core::OPrimeFromBaseObject> g_oprime;

void OPrime_ConcurrentPropose(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_oprime = std::make_unique<lbsa::core::OPrimeFromBaseObject>(512, 2);
  }
  std::uint64_t used = 0;
  for (auto _ : state) {
    // 2-SA port bound at level 2 is 2*512 = 1024 per bundle; threads share
    // it, so most steady-state proposes hit the ⊥ fast path — like the
    // consensus bench, that IS the long-run cost profile of these one-shot
    // proof objects.
    benchmark::DoNotOptimize(g_oprime->apply(
        lbsa::spec::make_propose_k(100 + static_cast<lbsa::Value>(used++), 2)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(OPrime_ConcurrentPropose)->Threads(1)->Threads(4)->UseRealTime();

void OPrime_LincheckRound(benchmark::State& state) {
  std::uint64_t states_explored = 0;
  for (auto _ : state) {
    lbsa::core::OPrimeFromBaseObject impl(2, 3);
    lbsa::lincheck::HistoryLog log;
    lbsa::concurrent::RecordingObject recorder(&impl, &log);
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&recorder, t] {
        if (t < 2) recorder.apply_as(t, lbsa::spec::make_propose_k(10 + t, 1));
        recorder.apply_as(t, lbsa::spec::make_propose_k(20 + t, 2));
        recorder.apply_as(t, lbsa::spec::make_propose_k(30 + t, 3));
      });
    }
    for (auto& w : workers) w.join();
    auto result = lbsa::lincheck::check_linearizable(impl.type(),
                                                     log.snapshot());
    if (!result.is_ok() || !result.value().linearizable) {
      state.SkipWithError("from-base history did not linearize");
      return;
    }
    states_explored = result.value().states_explored;
  }
  state.counters["lincheck_states"] = static_cast<double>(states_explored);
}
BENCHMARK(OPrime_LincheckRound)->Unit(benchmark::kMicrosecond);

}  // namespace
