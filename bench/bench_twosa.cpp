// E8 — the strong 2-SA object (Algorithm 3).
//
// Series reported:
//   * TwoSa_SpecApply/<phase>: outcome enumeration cost as STATE fills
//                              (empty -> 1 value -> 2 values);
//   * TwoSa_Atomic/threads:    128-bit-CAS object under contention;
//   * TwoSa_KsaCheck/n:        exhaustive 2-set-agreement verification among
//                              n processes through one 2-SA object.

#include <benchmark/benchmark.h>

#include <memory>

#include "concurrent/atomic_two_sa.h"
#include "core/solvability.h"
#include "spec/ksa_type.h"

namespace {

void TwoSa_SpecApplyEmpty(benchmark::State& state) {
  lbsa::spec::KsaType type = lbsa::spec::make_two_sa_type();
  const auto initial = type.initial_state();
  std::vector<lbsa::spec::Outcome> outcomes;
  for (auto _ : state) {
    outcomes.clear();
    type.apply(initial, lbsa::spec::make_propose(10), &outcomes);
    benchmark::DoNotOptimize(outcomes.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(TwoSa_SpecApplyEmpty);

void TwoSa_SpecApplyFull(benchmark::State& state) {
  lbsa::spec::KsaType type = lbsa::spec::make_two_sa_type();
  auto s = type.initial_state();
  s = type.apply_unique(s, lbsa::spec::make_propose(10)).next_state;
  std::vector<lbsa::spec::Outcome> outcomes;
  type.apply(s, lbsa::spec::make_propose(20), &outcomes);
  s = outcomes[0].next_state;  // STATE = {10, 20}
  for (auto _ : state) {
    outcomes.clear();
    type.apply(s, lbsa::spec::make_propose(30), &outcomes);
    benchmark::DoNotOptimize(outcomes.size());  // two outcomes
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(TwoSa_SpecApplyFull);

std::unique_ptr<lbsa::concurrent::AtomicTwoSa> g_two_sa;

void TwoSa_Atomic(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_two_sa = std::make_unique<lbsa::concurrent::AtomicTwoSa>();
  }
  lbsa::Value v = 100 + state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_two_sa->propose(v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(TwoSa_Atomic)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

void TwoSa_KsaCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    auto report = lbsa::core::witness_k_agreement(
        lbsa::core::ObjectFamily::kTwoSa, 0, 2, n);
    if (!report.is_ok() || !report.value().ok()) {
      state.SkipWithError("2-SA check failed");
      return;
    }
    nodes = report.value().node_count;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(TwoSa_KsaCheck)->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

}  // namespace
