// E10b — linearizability-checker cost vs history size and overlap.
//
// Series reported:
//   * Lincheck_Sequential/len:   fully sequential register histories (the
//                                cheap case: one eligible op per step);
//   * Lincheck_Concurrent/width: histories of `width` fully-overlapping
//                                consensus proposes (the expensive case:
//                                width! interleavings, tamed by memoization);
//   * Lincheck_PacPairs/pairs:   PAC propose/decide pairs with pairwise
//                                overlap — the Algorithm 2 access shape.

#include <benchmark/benchmark.h>

#include "lincheck/checker.h"
#include "spec/consensus_type.h"
#include "spec/pac_type.h"
#include "spec/register_type.h"

namespace {

using lbsa::lincheck::OpRecord;

OpRecord op(int id, int thread, lbsa::spec::Operation operation,
            lbsa::Value response, std::uint64_t invoke_ts,
            std::uint64_t response_ts) {
  OpRecord r;
  r.op_id = id;
  r.thread = thread;
  r.op = operation;
  r.response = response;
  r.invoke_ts = invoke_ts;
  r.response_ts = response_ts;
  return r;
}

void Lincheck_Sequential(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  lbsa::spec::RegisterType reg;
  std::vector<OpRecord> history;
  lbsa::Value last = lbsa::kNil;
  for (int i = 0; i < len; ++i) {
    if (i % 2 == 0) {
      history.push_back(op(i, 0, lbsa::spec::make_write(i), lbsa::kDone,
                           2 * i + 1, 2 * i + 2));
      last = i;
    } else {
      history.push_back(
          op(i, 0, lbsa::spec::make_read(), last, 2 * i + 1, 2 * i + 2));
    }
  }
  for (auto _ : state) {
    auto result = lbsa::lincheck::check_linearizable(reg, history);
    if (!result.is_ok() || !result.value().linearizable) {
      state.SkipWithError("unexpected verdict");
      return;
    }
    benchmark::DoNotOptimize(result.value().states_explored);
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(Lincheck_Sequential)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void Lincheck_Concurrent(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  lbsa::spec::NConsensusType cons(width);
  // All proposes overlap; all report the same winner (the first value).
  std::vector<OpRecord> history;
  for (int i = 0; i < width; ++i) {
    history.push_back(op(i, i, lbsa::spec::make_propose(100 + i), 100,
                         /*invoke=*/1 + i, /*response=*/1000 + i));
  }
  // Winner consistency: value 100 must linearize first; the checker has to
  // discover that among width! candidate orders.
  std::uint64_t states = 0;
  for (auto _ : state) {
    auto result = lbsa::lincheck::check_linearizable(cons, history);
    if (!result.is_ok() || !result.value().linearizable) {
      state.SkipWithError("unexpected verdict");
      return;
    }
    states = result.value().states_explored;
  }
  state.counters["search_states"] = static_cast<double>(states);
}
BENCHMARK(Lincheck_Concurrent)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void Lincheck_PacPairs(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  lbsa::spec::PacType pac(pairs);
  std::vector<OpRecord> history;
  std::uint64_t ts = 1;
  // Pair i overlaps pair i+1 (a sliding window of concurrency).
  for (int i = 0; i < pairs; ++i) {
    const std::int64_t label = i + 1;
    const lbsa::Value decided = (i == 0) ? 100 : lbsa::kBottom;
    history.push_back(op(2 * i, i,
                         lbsa::spec::make_propose_labeled(100 + i, label),
                         lbsa::kDone, ts, ts + 3));
    history.push_back(op(2 * i + 1, i, lbsa::spec::make_decide_labeled(label),
                         decided, ts + 4, ts + 7));
    ts += 5;  // next pair's propose overlaps this pair's decide
  }
  std::uint64_t states = 0;
  for (auto _ : state) {
    auto result = lbsa::lincheck::check_linearizable(pac, history);
    if (!result.is_ok()) {
      state.SkipWithError("checker error");
      return;
    }
    states = result.value().states_explored;
    benchmark::DoNotOptimize(result.value().linearizable);
  }
  state.counters["search_states"] = static_cast<double>(states);
}
BENCHMARK(Lincheck_PacPairs)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
