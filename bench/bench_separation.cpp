// E7 — the separation experiments: both sides of the pair driving the same
// set-agreement tasks, plus the behavioural difference (DAC).
//
// Series reported (each iteration is one full exhaustive verification;
// `nodes` counts reachable configurations):
//   * Separation_Witness/<family>/{k,n}: k-set agreement witnesses through
//     n-consensus, O_n, O'_n, and the from-base construction — paper claim:
//     identical verdicts for O_n and O'_n on every entry;
//   * Separation_DacSide: the 3-DAC check only O_n's side can pass.

#include <benchmark/benchmark.h>

#include "core/solvability.h"
#include "modelcheck/task_check.h"
#include "protocols/dac_from_pac.h"

namespace {

using lbsa::core::ObjectFamily;

void run_witness(benchmark::State& state, ObjectFamily family, int param,
                 int k, int n) {
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    auto report = lbsa::core::witness_k_agreement(family, param, k, n);
    if (!report.is_ok() || !report.value().ok()) {
      state.SkipWithError("witness failed");
      return;
    }
    nodes = report.value().node_count;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}

void Separation_Witness_NConsensus_k1(benchmark::State& state) {
  run_witness(state, ObjectFamily::kNConsensus, 2, 1, 2);
}
BENCHMARK(Separation_Witness_NConsensus_k1);

void Separation_Witness_On_k1(benchmark::State& state) {
  run_witness(state, ObjectFamily::kOn, 2, 1, 2);
}
BENCHMARK(Separation_Witness_On_k1);

void Separation_Witness_OPrime_k1(benchmark::State& state) {
  run_witness(state, ObjectFamily::kOPrime, 2, 1, 2);
}
BENCHMARK(Separation_Witness_OPrime_k1);

void Separation_Witness_On_k2(benchmark::State& state) {
  run_witness(state, ObjectFamily::kOn, 2, 2, 4);
}
BENCHMARK(Separation_Witness_On_k2)->Unit(benchmark::kMillisecond);

void Separation_Witness_OPrime_k2(benchmark::State& state) {
  run_witness(state, ObjectFamily::kOPrime, 2, 2, 4);
}
BENCHMARK(Separation_Witness_OPrime_k2)->Unit(benchmark::kMillisecond);

void Separation_Witness_FromBase_k2(benchmark::State& state) {
  run_witness(state, ObjectFamily::kOPrimeFromBase, 2, 2, 4);
}
BENCHMARK(Separation_Witness_FromBase_k2)->Unit(benchmark::kMillisecond);

void Separation_DacSide(benchmark::State& state) {
  const std::vector<lbsa::Value> inputs{100, 101, 102};
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    auto protocol =
        std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
    auto report = lbsa::modelcheck::check_dac_task(protocol, 0, inputs);
    if (!report.is_ok() || !report.value().ok()) {
      state.SkipWithError("DAC side failed");
      return;
    }
    nodes = report.value().node_count;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(Separation_DacSide)->Unit(benchmark::kMillisecond);

}  // namespace
