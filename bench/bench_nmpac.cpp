// E5 — the (n,m)-PAC combination object (Section 5) and the positive half
// of Theorem 5.3.
//
// Series reported:
//   * NmPac_Route/<port>:        routing overhead of the combined object vs
//                                its components (PROPOSEC vs PROPOSEP+DECIDEP);
//   * NmPac_ConsensusCheck/m:    exhaustive verification that (m+1,m)-PAC
//                                solves m-consensus (Observation 5.1(c));
//   * NmPac_UpsetIsolation:      throughput of the consensus port while the
//                                PAC part is upset (component independence).

#include <benchmark/benchmark.h>

#include <memory>

#include "modelcheck/task_check.h"
#include "protocols/one_shot.h"
#include "spec/nm_pac_type.h"

namespace {

using lbsa::spec::NmPacType;

void NmPac_RouteProposeC(benchmark::State& state) {
  NmPacType type(5, 4);
  auto s = type.initial_state();
  lbsa::Value v = 100;
  for (auto _ : state) {
    auto outcome = type.apply_unique(s, lbsa::spec::make_propose_c(v++));
    benchmark::DoNotOptimize(outcome.response);
    s = std::move(outcome.next_state);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(NmPac_RouteProposeC);

void NmPac_RoutePacPair(benchmark::State& state) {
  NmPacType type(5, 4);
  auto s = type.initial_state();
  std::int64_t label = 1;
  for (auto _ : state) {
    auto p = type.apply_unique(s, lbsa::spec::make_propose_p(7, label));
    auto d = type.apply_unique(p.next_state,
                               lbsa::spec::make_decide_p(label));
    benchmark::DoNotOptimize(d.response);
    s = std::move(d.next_state);
    label = (label % 5) + 1;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(NmPac_RoutePacPair);

void NmPac_ConsensusCheck(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  std::vector<lbsa::Value> inputs;
  for (int i = 0; i < m; ++i) inputs.push_back(100 + i);
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    auto report = lbsa::modelcheck::check_consensus_task(
        lbsa::protocols::make_consensus_via_nm_pac(m + 1, m, inputs), inputs);
    if (!report.is_ok() || !report.value().ok()) {
      state.SkipWithError("(n,m)-PAC consensus check failed");
      return;
    }
    nodes = report.value().node_count;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(NmPac_ConsensusCheck)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void NmPac_UpsetIsolation(benchmark::State& state) {
  // Upset the PAC component, then hammer DECIDEP (the ⊥ fast path); the
  // proofs of Claims 5.2.6-5.2.8 rely on this path conveying nothing.
  NmPacType type(3, 2);
  auto s = type.apply_unique(type.initial_state(),
                             lbsa::spec::make_decide_p(1))
               .next_state;  // upset
  for (auto _ : state) {
    auto outcome = type.apply_unique(s, lbsa::spec::make_decide_p(2));
    benchmark::DoNotOptimize(outcome.response);
    s = std::move(outcome.next_state);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(NmPac_UpsetIsolation);

}  // namespace
