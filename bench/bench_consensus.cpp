// E4 — the n-consensus object (footnote 6).
//
// Series reported:
//   * Consensus_SpecApply/n:       sequential-spec apply cost;
//   * Consensus_CasPropose/threads: lock-free CAS object under contention
//                                  (fresh object per round, every thread
//                                  proposes once — the paper's usage shape);
//   * Consensus_ModelCheck/n:      exhaustive verification of the one-shot
//                                  consensus protocol.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

#include "concurrent/cas_consensus.h"
#include "modelcheck/task_check.h"
#include "protocols/one_shot.h"
#include "spec/consensus_type.h"

namespace {

void Consensus_SpecApply(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  lbsa::spec::NConsensusType type(n);
  auto s = type.initial_state();
  std::vector<lbsa::spec::Outcome> outcomes;
  lbsa::Value v = 100;
  for (auto _ : state) {
    outcomes.clear();
    type.apply(s, lbsa::spec::make_propose(v++), &outcomes);
    benchmark::DoNotOptimize(outcomes[0].response);
    s = std::move(outcomes[0].next_state);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Consensus_SpecApply)->Arg(2)->Arg(64);

// Winning-path CAS cost: replace the object every 4096 proposes so the CAS
// always lands on an unexhausted object (amortized PauseTiming overhead
// < 0.03%).
void Consensus_CasProposeWinning(benchmark::State& state) {
  auto object = std::make_unique<lbsa::concurrent::CasConsensus>(4096);
  int used = 0;
  for (auto _ : state) {
    if (++used > 4096) {
      state.PauseTiming();
      object = std::make_unique<lbsa::concurrent::CasConsensus>(4096);
      used = 1;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(object->propose(100));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Consensus_CasProposeWinning);

// Contended steady state: all threads share one object. An n-consensus
// object is one-shot by nature, so after the first 65535 proposes the
// measured path is the exhausted check — a contended shared-cache-line
// load, the long-run cost of leaving such objects in a hot structure.
std::unique_ptr<lbsa::concurrent::CasConsensus> g_consensus;

void Consensus_CasProposeContended(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_consensus =
        std::make_unique<lbsa::concurrent::CasConsensus>((1 << 16) - 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g_consensus->propose(state.thread_index() + 100));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Consensus_CasProposeContended)->Threads(1)->Threads(2)->Threads(4)
    ->Threads(8)->UseRealTime();

void Consensus_ModelCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<lbsa::Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    auto report = lbsa::modelcheck::check_consensus_task(
        lbsa::protocols::make_consensus_via_n_consensus(inputs), inputs);
    if (!report.is_ok() || !report.value().ok()) {
      state.SkipWithError("consensus check failed");
      return;
    }
    nodes = report.value().node_count;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(Consensus_ModelCheck)->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

}  // namespace
