// Canonicalization microbenchmark — the per-successor cost symmetry
// reduction pays at every intern, isolated from the explorer. Three series
// over the same sampled reachable configurations of the symmetric DAC
// instance (equal inputs, so the non-distinguished processes form one
// orbit of size n-1, group order (n-1)!):
//
//   * Canon_BruteForce/n: the retained reference — every group element
//                         applied to a copy, full encodings compared;
//   * Canon_Pruned/n:     branch-and-bound canonical search, no cache;
//   * Canon_Cached/n:     branch-and-bound + orbit cache, steady state
//                         (the corpus fits, so every query after the first
//                         lap is a hit).
//
// The Pruned/BruteForce gap is what made reduction=symmetry beat
// reduction=none on wall-clock (see tools/perf_smoke.sh's sym gate); the
// Cached/Pruned gap is what repeated sweeps over one universe buy.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "base/rng.h"
#include "protocols/dac_from_pac.h"
#include "sim/config.h"
#include "sim/protocol.h"
#include "sim/simulation.h"
#include "sim/symmetry.h"

namespace {

using lbsa::sim::CanonCache;
using lbsa::sim::CanonScratch;
using lbsa::sim::Canonicalizer;
using lbsa::sim::Config;
using lbsa::sim::Protocol;

std::shared_ptr<const Protocol> symmetric_dac(int n) {
  return std::make_shared<lbsa::protocols::DacFromPacProtocol>(
      std::vector<lbsa::Value>(static_cast<std::size_t>(n), 100));
}

// Random walks from the initial configuration — the same distribution the
// explorer's intern sites see, minus duplicates the cache would trivially
// absorb in series that should measure the search.
std::vector<Config> sample_configs(const Protocol& protocol, int count,
                                   int steps, std::uint64_t seed) {
  lbsa::Xoshiro256 rng(seed);
  std::vector<Config> configs;
  configs.reserve(static_cast<std::size_t>(count));
  for (int c = 0; c < count; ++c) {
    Config config = lbsa::sim::initial_config(protocol);
    for (int i = 0; i < steps && !config.halted(); ++i) {
      std::vector<int> enabled;
      for (int pid = 0; pid < protocol.process_count(); ++pid) {
        if (config.enabled(pid)) enabled.push_back(pid);
      }
      const int pid =
          enabled[static_cast<std::size_t>(rng.next_below(enabled.size()))];
      const int choices = lbsa::sim::outcome_count(protocol, config, pid);
      lbsa::sim::apply_step(protocol, &config, pid,
                            static_cast<int>(rng.next_below(
                                static_cast<std::uint64_t>(choices))));
    }
    configs.push_back(std::move(config));
  }
  return configs;
}

constexpr int kCorpus = 256;

void Canon_BruteForce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto protocol = symmetric_dac(n);
  const Canonicalizer canon(protocol, protocol->symmetry());
  const auto configs = sample_configs(*protocol, kCorpus, 4 * n, 42);
  std::vector<std::int64_t> key;
  for (auto _ : state) {
    for (const Config& config : configs) {
      canon.brute_force_canonical_encode_into(config, &key);
      benchmark::DoNotOptimize(key);
    }
  }
  state.counters["group"] = static_cast<double>(canon.group_size());
  state.counters["configs_per_sec"] = benchmark::Counter(
      static_cast<double>(configs.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(Canon_BruteForce)
    ->ArgName("n")
    ->DenseRange(3, 6)
    ->Unit(benchmark::kMicrosecond);

void Canon_Pruned(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto protocol = symmetric_dac(n);
  const Canonicalizer canon(protocol, protocol->symmetry());
  const auto configs = sample_configs(*protocol, kCorpus, 4 * n, 42);
  CanonScratch scratch;  // scratch reuse, no cache attached
  std::vector<std::int64_t> key;
  for (auto _ : state) {
    for (const Config& config : configs) {
      canon.canonical_encode_into(config, &key, nullptr, &scratch);
      benchmark::DoNotOptimize(key);
    }
  }
  state.counters["group"] = static_cast<double>(canon.group_size());
  state.counters["prunes"] = static_cast<double>(scratch.prunes);
  state.counters["fast_path"] = static_cast<double>(scratch.fast_path);
  state.counters["configs_per_sec"] = benchmark::Counter(
      static_cast<double>(configs.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(Canon_Pruned)
    ->ArgName("n")
    ->DenseRange(3, 6)
    ->Unit(benchmark::kMicrosecond);

void Canon_Cached(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto protocol = symmetric_dac(n);
  const Canonicalizer canon(protocol, protocol->symmetry());
  const auto configs = sample_configs(*protocol, kCorpus, 4 * n, 42);
  CanonScratch scratch;
  scratch.attach_cache(std::make_shared<CanonCache>(std::size_t{4} << 20));
  scratch.cache()->ensure_universe(canon.universe_salt());
  std::vector<std::int64_t> key;
  std::vector<std::uint8_t> perm;
  for (auto _ : state) {
    for (const Config& config : configs) {
      canon.canonical_encode_into(config, &key, &perm, &scratch);
      benchmark::DoNotOptimize(key);
    }
  }
  state.counters["group"] = static_cast<double>(canon.group_size());
  state.counters["hit_rate"] =
      scratch.cache_hits + scratch.cache_misses == 0
          ? 0.0
          : static_cast<double>(scratch.cache_hits) /
                static_cast<double>(scratch.cache_hits +
                                    scratch.cache_misses);
  state.counters["configs_per_sec"] = benchmark::Counter(
      static_cast<double>(configs.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(Canon_Cached)
    ->ArgName("n")
    ->DenseRange(3, 6)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
