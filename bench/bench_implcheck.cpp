// E12 (extension) — implementation-checker cost: how expensive is it to
// verify "X implements Y" exhaustively, as workload width (threads) and
// program length grow.
//
// Series reported (counter `executions` = complete schedules examined):
//   * ImplCheck_Lemma64/threads:  the Lemma 6.4 bundle under t one-op
//                                 threads;
//   * ImplCheck_Routing:          Observation 5.1(a) routing workload;
//   * ImplCheck_MultiStep:        the double-read register (2 base steps per
//                                 read: schedules grow combinatorially);
//   * ImplCheck_RefuteRacy:       time to FIND the racy-counter violation.

#include <benchmark/benchmark.h>

#include "core/implementations.h"
#include "implcheck/checker.h"

namespace {

using lbsa::implcheck::check_implementation;

void ImplCheck_Lemma64(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto impl = lbsa::core::make_o_prime_from_base_impl(4, 2);
  std::vector<std::vector<lbsa::spec::Operation>> work;
  for (int t = 0; t < threads; ++t) {
    work.push_back({lbsa::spec::make_propose_k(100 + t, 2)});
  }
  std::uint64_t executions = 0;
  for (auto _ : state) {
    auto result = check_implementation(*impl, work);
    if (!result.is_ok() || !result.value().ok) {
      state.SkipWithError("verification failed");
      return;
    }
    executions = result.value().executions_checked;
  }
  state.counters["executions"] = static_cast<double>(executions);
}
BENCHMARK(ImplCheck_Lemma64)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void ImplCheck_Routing(benchmark::State& state) {
  auto impl = lbsa::core::make_nm_pac_from_components(3, 2);
  const std::vector<std::vector<lbsa::spec::Operation>> work = {
      {lbsa::spec::make_propose_c(10)},
      {lbsa::spec::make_propose_c(20)},
      {lbsa::spec::make_propose_p(30, 1), lbsa::spec::make_decide_p(1)},
  };
  std::uint64_t executions = 0;
  for (auto _ : state) {
    auto result = check_implementation(*impl, work);
    if (!result.is_ok() || !result.value().ok) {
      state.SkipWithError("verification failed");
      return;
    }
    executions = result.value().executions_checked;
  }
  state.counters["executions"] = static_cast<double>(executions);
}
BENCHMARK(ImplCheck_Routing)->Unit(benchmark::kMicrosecond);

void ImplCheck_MultiStep(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto impl = lbsa::core::make_double_read_register_impl();
  std::vector<std::vector<lbsa::spec::Operation>> work;
  for (int t = 0; t < threads; ++t) {
    work.push_back({t % 2 == 0 ? lbsa::spec::make_write(100 + t)
                               : lbsa::spec::make_read(),
                    lbsa::spec::make_read()});
  }
  std::uint64_t executions = 0;
  for (auto _ : state) {
    auto result = check_implementation(*impl, work);
    if (!result.is_ok() || !result.value().ok) {
      state.SkipWithError("verification failed");
      return;
    }
    executions = result.value().executions_checked;
  }
  state.counters["executions"] = static_cast<double>(executions);
}
BENCHMARK(ImplCheck_MultiStep)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void ImplCheck_RefuteRacy(benchmark::State& state) {
  auto impl = lbsa::core::make_racy_counter_impl();
  const std::vector<std::vector<lbsa::spec::Operation>> work = {
      {lbsa::spec::make_propose(1)},
      {lbsa::spec::make_propose(1)},
  };
  for (auto _ : state) {
    auto result = check_implementation(*impl, work);
    if (!result.is_ok() || result.value().ok) {
      state.SkipWithError("expected refutation");
      return;
    }
    benchmark::DoNotOptimize(result.value().failing_schedule.size());
  }
}
BENCHMARK(ImplCheck_RefuteRacy)->Unit(benchmark::kMicrosecond);

}  // namespace
