// E2 — Algorithm 2 (n-DAC from one n-PAC).
//
// Series reported:
//   * Dac_ModelCheck/n:   full exhaustive verification of all n-DAC
//                         properties (nodes counter = reachable configs);
//   * Dac_SimRandom/n:    one seeded adversarial simulation run to
//                         completion;
//   * Dac_Threaded/n:     n OS threads on a linearizable n-PAC.

#include <benchmark/benchmark.h>

#include <memory>

#include "concurrent/spec_backed.h"
#include "concurrent/threaded_runner.h"
#include "modelcheck/task_check.h"
#include "protocols/dac_from_pac.h"
#include "sim/simulation.h"
#include "spec/pac_type.h"

namespace {

std::vector<lbsa::Value> iota_inputs(int n) {
  std::vector<lbsa::Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
  return inputs;
}

void Dac_ModelCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto inputs = iota_inputs(n);
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    auto protocol =
        std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
    auto report = lbsa::modelcheck::check_dac_task(protocol, 0, inputs);
    if (!report.is_ok() || !report.value().ok()) {
      state.SkipWithError("DAC check failed");
      return;
    }
    nodes = report.value().node_count;
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(Dac_ModelCheck)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void Dac_SimRandom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto inputs = iota_inputs(n);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto protocol =
        std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
    lbsa::sim::Simulation simulation(protocol);
    lbsa::sim::RandomAdversary adversary(seed++);
    const auto result =
        simulation.run(&adversary, {.max_steps = 1'000'000,
                                    .record_history = false});
    benchmark::DoNotOptimize(result.steps);
  }
}
BENCHMARK(Dac_SimRandom)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void Dac_Threaded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto inputs = iota_inputs(n);
  for (auto _ : state) {
    auto protocol =
        std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
    lbsa::concurrent::SpinlockSpecObject pac(
        std::make_shared<lbsa::spec::PacType>(n));
    const auto result = lbsa::concurrent::run_threaded(
        *protocol, {&pac}, {.max_steps_per_process = 1'000'000});
    benchmark::DoNotOptimize(result.total_steps);
  }
}
BENCHMARK(Dac_Threaded)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
