// E10a — cost of the proof machinery itself: state-space growth and
// analysis cost as the instance scales. This is the library's analogue of a
// "simulator performance" section: it tells a user how far the exhaustive
// tools reach.
//
// Series reported:
//   * ModelCheck_Explore/<protocol>/n: reachable-graph construction
//                                      (counter: nodes, transitions);
//   * ModelCheck_Valence/n:            valence fixpoint on the DAC graph;
//   * ModelCheck_SoloOracle/n:         the solo-termination oracle across
//                                      every reachable configuration (the
//                                      dominant cost of check_dac_task).

#include <benchmark/benchmark.h>

#include <memory>

#include "modelcheck/explorer.h"
#include "modelcheck/task_check.h"
#include "modelcheck/fuzz.h"
#include "modelcheck/valence.h"
#include "protocols/dac_from_pac.h"
#include "protocols/one_shot.h"

namespace {

std::vector<lbsa::Value> iota_inputs(int n) {
  std::vector<lbsa::Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
  return inputs;
}

// Exploration benchmarks take (n, threads). threads=1 runs the serial
// reference engine (the baseline every speedup claim is against); threads>1
// runs the parallel engine, whose canonical output is bit-identical, so the
// rows measure the same work. The threads sweep at the headline size is the
// speedup curve tracked across PRs (see tools/bench_modelcheck_json.sh).
void ModelCheck_ExploreDac(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto protocol =
      std::make_shared<lbsa::protocols::DacFromPacProtocol>(iota_inputs(n));
  std::uint64_t nodes = 0, transitions = 0;
  for (auto _ : state) {
    lbsa::modelcheck::Explorer explorer(protocol);
    auto graph = explorer.explore({.max_nodes = 10'000'000,
                                   .threads = threads});
    if (!graph.is_ok()) {
      state.SkipWithError("budget exceeded");
      return;
    }
    nodes = graph.value().nodes().size();
    transitions = graph.value().transition_count();
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["transitions"] = static_cast<double>(transitions);
  state.counters["nodes_per_sec"] = benchmark::Counter(
      static_cast<double>(nodes) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(ModelCheck_ExploreDac)
    ->ArgNames({"n", "threads"})
    ->ArgsProduct({{2, 3, 4, 5}, {1}})            // serial size sweep
    ->ArgsProduct({{4}, {2, 3, 4, 5, 6, 7, 8}})   // speedup curve at n=4
    ->UseRealTime()  // workers run off the main thread; wall time is the truth
    ->Unit(benchmark::kMillisecond);

// State-space reduction sweep (docs/checking.md, "State-space reduction"):
// the symmetric DAC instance (equal inputs, so the q's form one orbit)
// explored at every Reduction mode. reduction_ratio is
// full-graph-nodes / reduced-nodes; the kBoth row at the headline size is
// the ISSUE's >=3x reduction claim, and time-per-iteration vs the kNone row
// is the corresponding wall-clock speedup.
void ModelCheck_ExploreDacReduced(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const auto reduction =
      static_cast<lbsa::modelcheck::Reduction>(state.range(2));
  const std::vector<lbsa::Value> inputs(n, 100);  // equal => orbit {q1..}
  auto protocol =
      std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
  std::uint64_t nodes = 0, full = 0;
  for (auto _ : state) {
    lbsa::modelcheck::Explorer explorer(protocol);
    auto graph = explorer.explore({.max_nodes = 10'000'000,
                                   .threads = threads,
                                   .reduction = reduction});
    if (!graph.is_ok()) {
      state.SkipWithError("budget exceeded");
      return;
    }
    nodes = graph.value().nodes().size();
    full = graph.value().full_node_estimate();
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["nodes_per_sec"] = benchmark::Counter(
      static_cast<double>(nodes) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["reduction_ratio"] =
      nodes == 0 ? 1.0
                 : static_cast<double>(full) / static_cast<double>(nodes);
}
BENCHMARK(ModelCheck_ExploreDacReduced)
    ->ArgNames({"n", "threads", "reduction"})
    ->ArgsProduct({{3, 4}, {1}, {0, 1, 2, 3}})  // serial, all modes
    ->ArgsProduct({{4}, {8}, {0, 3}})           // parallel, none vs both
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void ModelCheck_ExploreConsensus(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto protocol = lbsa::protocols::make_consensus_via_n_consensus(
      iota_inputs(n));
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    lbsa::modelcheck::Explorer explorer(protocol);
    auto graph = explorer.explore({.max_nodes = 10'000'000,
                                   .threads = threads});
    if (!graph.is_ok()) {
      state.SkipWithError("budget exceeded");
      return;
    }
    nodes = graph.value().nodes().size();
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["nodes_per_sec"] = benchmark::Counter(
      static_cast<double>(nodes) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(ModelCheck_ExploreConsensus)
    ->ArgNames({"n", "threads"})
    ->ArgsProduct({{2, 4, 6, 8}, {1}})            // serial size sweep
    ->ArgsProduct({{6}, {2, 3, 4, 5, 6, 7, 8}})   // speedup curve at n=6
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void ModelCheck_Valence(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto protocol =
      std::make_shared<lbsa::protocols::DacFromPacProtocol>(iota_inputs(n));
  lbsa::modelcheck::Explorer explorer(protocol);
  auto graph = explorer.explore({.max_nodes = 10'000'000});
  if (!graph.is_ok()) {
    state.SkipWithError("budget exceeded");
    return;
  }
  for (auto _ : state) {
    lbsa::modelcheck::ValenceAnalyzer analyzer(graph.value());
    benchmark::DoNotOptimize(analyzer.multivalent_nodes().size());
  }
  state.counters["nodes"] =
      static_cast<double>(graph.value().nodes().size());
}
BENCHMARK(ModelCheck_Valence)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void ModelCheck_FuzzThroughput(benchmark::State& state) {
  // Schedule-fuzzer run rate on the 8-process DAC (the beyond-exhaustive
  // workload); items = complete adversarial runs.
  const auto inputs = iota_inputs(8);
  auto protocol =
      std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    lbsa::modelcheck::FuzzOptions options;
    options.runs = 20;
    options.max_steps_per_run = 20'000;
    options.seed = seed++;
    const auto report =
        lbsa::modelcheck::fuzz_dac(protocol, 0, inputs, options);
    if (!report.ok()) {
      state.SkipWithError("unexpected violation");
      return;
    }
    benchmark::DoNotOptimize(report.runs_terminated);
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(ModelCheck_FuzzThroughput)->Unit(benchmark::kMillisecond);

void ModelCheck_FullDacCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto inputs = iota_inputs(n);
  for (auto _ : state) {
    auto protocol =
        std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
    auto report = lbsa::modelcheck::check_dac_task(protocol, 0, inputs);
    if (!report.is_ok() || !report.value().ok()) {
      state.SkipWithError("check failed");
      return;
    }
    benchmark::DoNotOptimize(report.value().node_count);
  }
}
BENCHMARK(ModelCheck_FullDacCheck)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
