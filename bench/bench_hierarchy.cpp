// E11 (extension) — the consensus-hierarchy landscape around the paper's
// objects: the classic level-2 objects (test&set, queue), the level-∞
// object (compare&swap), and how the model-checking cost of their canonical
// consensus protocols compares with the paper's (n,m)-PAC route.
//
// Series reported:
//   * Hierarchy_TasOps / Hierarchy_CasOps: lock-free object op cost under
//     contention;
//   * Hierarchy_ConsensusCheck/<family>: exhaustive verification of each
//     family's canonical consensus protocol (nodes counter shows the state-
//     space footprint each object family induces).

#include <benchmark/benchmark.h>

#include <memory>

#include "concurrent/classic_objects.h"
#include "modelcheck/task_check.h"
#include "protocols/classic_consensus.h"
#include "protocols/one_shot.h"

namespace {

std::vector<lbsa::Value> iota_inputs(int n) {
  std::vector<lbsa::Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
  return inputs;
}

std::unique_ptr<lbsa::concurrent::AtomicTestAndSet> g_tas;

void Hierarchy_TasOps(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_tas = std::make_unique<lbsa::concurrent::AtomicTestAndSet>();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_tas->test_and_set());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Hierarchy_TasOps)->Threads(1)->Threads(4)->UseRealTime();

std::unique_ptr<lbsa::concurrent::AtomicCompareAndSwap> g_cas;

void Hierarchy_CasOps(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_cas = std::make_unique<lbsa::concurrent::AtomicCompareAndSwap>();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g_cas->compare_and_swap(lbsa::kNil, state.thread_index()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Hierarchy_CasOps)->Threads(1)->Threads(4)->UseRealTime();

template <typename Protocol>
void check_consensus(benchmark::State& state, int n) {
  const auto inputs = iota_inputs(n);
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    auto protocol = std::make_shared<Protocol>(inputs);
    auto report = lbsa::modelcheck::check_consensus_task(protocol, inputs);
    if (!report.is_ok() || !report.value().ok()) {
      state.SkipWithError("consensus check failed");
      return;
    }
    nodes = report.value().node_count;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}

void Hierarchy_ConsensusCheck_Tas(benchmark::State& state) {
  check_consensus<lbsa::protocols::TasConsensusProtocol>(state, 2);
}
BENCHMARK(Hierarchy_ConsensusCheck_Tas)->Unit(benchmark::kMicrosecond);

void Hierarchy_ConsensusCheck_Queue(benchmark::State& state) {
  check_consensus<lbsa::protocols::QueueConsensusProtocol>(state, 2);
}
BENCHMARK(Hierarchy_ConsensusCheck_Queue)->Unit(benchmark::kMicrosecond);

void Hierarchy_ConsensusCheck_Cas(benchmark::State& state) {
  check_consensus<lbsa::protocols::CasConsensusProtocol>(
      state, static_cast<int>(state.range(0)));
}
BENCHMARK(Hierarchy_ConsensusCheck_Cas)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void Hierarchy_ConsensusCheck_NmPac(benchmark::State& state) {
  const auto inputs = iota_inputs(2);
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    auto report = lbsa::modelcheck::check_consensus_task(
        lbsa::protocols::make_consensus_via_nm_pac(3, 2, inputs), inputs);
    if (!report.is_ok() || !report.value().ok()) {
      state.SkipWithError("consensus check failed");
      return;
    }
    nodes = report.value().node_count;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(Hierarchy_ConsensusCheck_NmPac)->Unit(benchmark::kMicrosecond);

}  // namespace
