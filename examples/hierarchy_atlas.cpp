// Hierarchy atlas: the consensus hierarchy with the paper's objects placed
// in it, every claim on the page backed by a machine check run right here.
//
//   level 1:  registers, 2-SA                (2-SA: infinite n_k for k >= 2!)
//   level 2:  test&set, queue, 2-consensus, O_2, O'_2
//   level n:  n-consensus, O_n, O'_n
//   level ∞:  compare&swap
//
//   ./hierarchy_atlas

#include <cstdio>
#include <memory>

#include "core/power.h"
#include "core/solvability.h"
#include "modelcheck/task_check.h"
#include "protocols/classic_consensus.h"
#include "protocols/one_shot.h"

namespace {

void row(const lbsa::core::SetAgreementPower& power, const char* level,
         const char* note) {
  std::printf("  %-8s %-34s %s\n", level, power.to_string().c_str(), note);
}

template <typename Protocol>
const char* checked_consensus(int n) {
  std::vector<lbsa::Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
  auto protocol = std::make_shared<Protocol>(inputs);
  auto report = lbsa::modelcheck::check_consensus_task(protocol, inputs);
  if (!report.is_ok()) return "checker error";
  return report.value().ok() ? "verified" : "REFUTED";
}

}  // namespace

int main() {
  std::printf("=== the consensus hierarchy, with machine-checked entries ===\n");
  std::printf("(sequences are set agreement powers; '+' = lower bound)\n\n");

  row(lbsa::core::power_of_register(4), "level 1", "");
  row(lbsa::core::power_of_two_sa(4), "level 1",
      "<- same consensus number as a register, yet n_k = ∞ for k >= 2");
  row(lbsa::core::power_of_test_and_set(4), "level 2", "");
  row(lbsa::core::power_of_queue(4), "level 2", "");
  row(lbsa::core::power_of_n_consensus(2, 4), "level 2", "");
  row(lbsa::core::power_of_o_n(2, 4), "level 2",
      "<- the paper's O_2 (a (3,2)-PAC)");
  row(lbsa::core::power_of_o_prime_n(2, 4), "level 2",
      "<- O'_2: same sequence, NOT equivalent (Cor. 6.6)");
  row(lbsa::core::power_of_n_consensus(3, 4), "level 3", "");
  row(lbsa::core::power_of_o_n(3, 4), "level 3", "");
  row(lbsa::core::power_of_compare_and_swap(4), "level ∞", "");

  std::printf("\nconsensus protocols, exhaustively model-checked:\n");
  std::printf("  test&set bit + registers, 2 processes ........ %s\n",
              checked_consensus<lbsa::protocols::TasConsensusProtocol>(2));
  std::printf("  test&set bit + registers, 3 processes ........ %s  "
              "(consensus number exactly 2)\n",
              checked_consensus<lbsa::protocols::TasConsensusProtocol>(3));
  std::printf("  FIFO queue + registers, 2 processes .......... %s\n",
              checked_consensus<lbsa::protocols::QueueConsensusProtocol>(2));
  std::printf("  FIFO queue + registers, 3 processes .......... %s\n",
              checked_consensus<lbsa::protocols::QueueConsensusProtocol>(3));
  std::printf("  compare&swap cell, 4 processes ................ %s\n",
              checked_consensus<lbsa::protocols::CasConsensusProtocol>(4));

  std::printf("\nset-agreement witnesses for the paper's pair at level 2:\n");
  for (auto family : {lbsa::core::ObjectFamily::kOn,
                      lbsa::core::ObjectFamily::kOPrime}) {
    auto report = lbsa::core::witness_k_agreement(family, 2, 2, 4);
    std::printf("  %-8s 2-set agreement among 4: %s\n",
                lbsa::core::object_family_name(family),
                report.is_ok() && report.value().ok() ? "verified"
                                                      : "REFUTED");
  }
  std::printf("\nSame row of the atlas, same power sequence — and still O_2 "
              "cannot be built from O'_2 (Theorem 6.5).\n");
  return 0;
}
