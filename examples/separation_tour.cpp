// Separation tour: a guided walk through the paper's main result
// (Corollary 6.6) at level n of the consensus hierarchy.
//
//   1. O_n and O'_n have the same set agreement power (printed, and the
//      shared entries witnessed by exhaustive model checks);
//   2. O'_n is implementable from n-consensus + 2-SA (Lemma 6.4 — the
//      construction is instantiated and driven);
//   3. yet O_n solves the (n+1)-DAC problem, which Theorem 4.2 proves that
//      base (hence O'_n) cannot — so the two objects are NOT equivalent.
//
//   ./separation_tour [n]    (default n = 2; n <= 3 keeps checks fast)

#include <cstdio>
#include <cstdlib>

#include "core/knowledge.h"
#include "core/power.h"
#include "core/separation.h"
#include "core/solvability.h"
#include "modelcheck/task_check.h"
#include "protocols/dac_from_pac.h"
#include "spec/object_type.h"

namespace {

bool witness(lbsa::core::ObjectFamily family, int param, int k, int n) {
  auto report = lbsa::core::witness_k_agreement(family, param, k, n);
  const bool ok = report.is_ok() && report.value().ok();
  std::printf("    %-16s k=%d among %d processes: %s",
              lbsa::core::object_family_name(family), k, n,
              ok ? "verified over all schedules" : "FAILED");
  if (report.is_ok()) {
    std::printf(" (%llu configurations)",
                static_cast<unsigned long long>(report.value().node_count));
  }
  std::printf("\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 2;
  if (n < 2 || n > 4) {
    std::fprintf(stderr, "usage: separation_tour [n in 2..4]\n");
    return 2;
  }

  std::printf("=== Corollary 6.6 at level n = %d ===\n\n", n);

  // --- Act 1: same set agreement power -----------------------------------
  const auto power_on = lbsa::core::power_of_o_n(n, 4);
  const auto power_op = lbsa::core::power_of_o_prime_n(n, 4);
  std::printf("[1] set agreement power (a trailing '+' marks entries the "
              "paper leaves as lower bounds):\n");
  std::printf("    %s\n    %s\n    values equal: %s\n\n",
              power_on.to_string().c_str(), power_op.to_string().c_str(),
              power_on.values_equal(power_op) ? "yes" : "NO");

  std::printf("    witnessed entries (exhaustive model checks):\n");
  bool ok = true;
  ok &= witness(lbsa::core::ObjectFamily::kOn, n, 1, n);
  ok &= witness(lbsa::core::ObjectFamily::kOPrime, n, 1, n);
  if (n == 2) {
    ok &= witness(lbsa::core::ObjectFamily::kOn, n, 2, 2 * n);
    ok &= witness(lbsa::core::ObjectFamily::kOPrime, n, 2, 2 * n);
  }

  // --- Act 2: Lemma 6.4 ---------------------------------------------------
  std::printf("\n[2] Lemma 6.4: O'_%d from %d-consensus + 2-SA objects\n", n,
              n);
  auto impl = lbsa::core::make_o_prime_from_base(n, 3);
  std::printf("    construction: %s\n", impl->name().c_str());
  ok &= witness(lbsa::core::ObjectFamily::kOPrimeFromBase, n, 1, n);
  if (n == 2) {
    ok &= witness(lbsa::core::ObjectFamily::kOPrimeFromBase, n, 2, 2 * n);
  }

  // --- Act 3: the behavioural difference ---------------------------------
  std::printf("\n[3] what O_%d can do that its power sequence cannot "
              "express: solve the %d-DAC problem\n", n, n + 1);
  std::vector<lbsa::Value> inputs;
  for (int i = 0; i <= n; ++i) inputs.push_back(100 + i);
  auto dac = std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
  auto report = lbsa::modelcheck::check_dac_task(dac, 0, inputs);
  if (report.is_ok() && report.value().ok()) {
    std::printf("    Algorithm 2 on the (n+1)-PAC part: all %d-DAC "
                "properties verified (%llu configurations)\n",
                n + 1,
                static_cast<unsigned long long>(report.value().node_count));
  } else {
    std::printf("    UNEXPECTED: DAC check failed\n");
    ok = false;
  }

  const auto fact = lbsa::core::lookup_fact(
      n, lbsa::core::name_o_n(n), lbsa::core::name_o_prime_n(n));
  std::printf("\n[4] and the other direction is impossible: %s cannot be "
              "implemented from %s + registers (%s).\n",
              lbsa::core::name_o_n(n).c_str(),
              lbsa::core::name_o_prime_n(n).c_str(),
              fact ? fact->source.c_str() : "??");
  std::printf("\nConclusion: same set agreement power, not equivalent — the "
              "power sequence does not determine an object's strength.\n");
  return ok ? 0 : 1;
}
