// Power probe: print the set agreement power sequences of the library's
// object families and mechanically witness every feasible entry at small
// scale with the exhaustive solvability harness.
//
//   ./power_probe [k_max]   (default 3)

#include <cstdio>
#include <cstdlib>

#include "core/power.h"
#include "core/solvability.h"

namespace {

using lbsa::core::ObjectFamily;
using lbsa::core::SetAgreementPower;

// Witness budgets: keep exhaustive checks comfortably under a second each.
constexpr int kMaxProcsToCheck = 5;

void probe(const SetAgreementPower& power, ObjectFamily family, int param) {
  std::printf("%s\n", power.to_string().c_str());
  for (int k = 1; k <= power.k_max(); ++k) {
    const auto& entry = power.entry(k);
    const long long bound =
        entry.infinite() ? kMaxProcsToCheck : entry.value;
    const int n = static_cast<int>(std::min<long long>(bound,
                                                       kMaxProcsToCheck));
    if (family == ObjectFamily::kTwoSa && k == 1) {
      std::printf("    k=%d: n_1 = 1 (trivial; nothing to witness)\n", k);
      continue;
    }
    auto report = lbsa::core::witness_k_agreement(family, param, k, n);
    if (report.is_ok() && report.value().ok()) {
      std::printf("    k=%d: witnessed among %d processes "
                  "(%llu configurations, all schedules)\n",
                  k, n,
                  static_cast<unsigned long long>(report.value().node_count));
    } else if (report.is_ok()) {
      std::printf("    k=%d: VIOLATION\n%s\n", k,
                  report.value().to_string().c_str());
    } else {
      std::printf("    k=%d: skipped (%s)\n", k,
                  report.status().to_string().c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int k_max = argc > 1 ? std::atoi(argv[1]) : 3;
  if (k_max < 1 || k_max > 6) {
    std::fprintf(stderr, "usage: power_probe [k_max in 1..6]\n");
    return 2;
  }

  std::printf("=== set agreement power sequences ===\n");
  std::printf("(entry k is n_k, the max processes for k-set agreement; '+' "
              "marks lower bounds; witnesses are exhaustive model checks "
              "capped at %d processes)\n\n", kMaxProcsToCheck);

  probe(lbsa::core::power_of_n_consensus(2, k_max),
        ObjectFamily::kNConsensus, 2);
  probe(lbsa::core::power_of_two_sa(k_max), ObjectFamily::kTwoSa, 0);
  probe(lbsa::core::power_of_o_n(2, k_max), ObjectFamily::kOn, 2);
  probe(lbsa::core::power_of_o_prime_n(2, k_max), ObjectFamily::kOPrime, 2);

  std::printf("note: O_2 and O'_2 print identical sequences — that is the "
              "premise of Corollary 6.6; run separation_tour for why they "
              "are nevertheless not equivalent.\n");
  return 0;
}
