// Model explorer: dump the configuration graph, valence structure, and
// critical configurations of a chosen protocol — the bivalency machinery of
// Theorems 4.2/5.2 made tangible.
//
//   ./model_explorer <protocol> [--dot]
//     consensus   one-shot 2-consensus between 2 processes
//     flp         register-only consensus attempt (FLP race)
//     dac         3-DAC via one 3-PAC (Algorithm 2)
//     straw       straw-man 3-DAC from 2-consensus + 2-SA
//   --dot prints the valence-colored configuration graph as Graphviz DOT
//   (pipe through `dot -Tsvg` to render) instead of the analysis summary.

#include <cstdio>
#include <cstring>
#include <memory>

#include "modelcheck/explorer.h"
#include "modelcheck/export.h"
#include "modelcheck/step_complexity.h"
#include "modelcheck/task_check.h"
#include "modelcheck/valence.h"
#include "protocols/dac_from_pac.h"
#include "protocols/flp_race.h"
#include "protocols/one_shot.h"
#include "protocols/straw_dac.h"

namespace {

using lbsa::modelcheck::ConfigGraph;
using lbsa::modelcheck::Explorer;
using lbsa::modelcheck::ValenceAnalyzer;

std::shared_ptr<const lbsa::sim::Protocol> pick(const char* name) {
  if (std::strcmp(name, "consensus") == 0) {
    return lbsa::protocols::make_consensus_via_n_consensus({0, 1});
  }
  if (std::strcmp(name, "flp") == 0) {
    return std::make_shared<lbsa::protocols::FlpRaceProtocol>(5, 3);
  }
  if (std::strcmp(name, "dac") == 0) {
    return std::make_shared<lbsa::protocols::DacFromPacProtocol>(
        std::vector<lbsa::Value>{0, 1, 2});
  }
  if (std::strcmp(name, "straw") == 0) {
    return std::make_shared<lbsa::protocols::StrawDacFallbackProtocol>(
        std::vector<lbsa::Value>{0, 1, 2});
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "consensus";
  auto protocol = pick(name);
  if (!protocol) {
    std::fprintf(stderr,
                 "usage: model_explorer [consensus|flp|dac|straw]\n");
    return 2;
  }

  const bool want_dot =
      argc > 2 && std::strcmp(argv[2], "--dot") == 0;

  if (!want_dot) {
    std::printf("=== exploring %s ===\n", protocol->name().c_str());
  }
  Explorer explorer(protocol);
  auto graph_or = explorer.explore({.max_nodes = 2'000'000});
  if (!graph_or.is_ok()) {
    std::fprintf(stderr, "exploration failed: %s\n",
                 graph_or.status().to_string().c_str());
    return 1;
  }
  const ConfigGraph& graph = graph_or.value();

  if (want_dot) {
    ValenceAnalyzer analyzer(graph);
    std::fputs(to_dot(*protocol, graph, &analyzer).c_str(), stdout);
    return 0;
  }
  std::printf("reachable configurations: %zu\ntransitions:              %llu\n",
              graph.nodes().size(),
              static_cast<unsigned long long>(graph.transition_count()));

  ValenceAnalyzer analyzer(graph);
  std::printf("decision universe:         {");
  for (size_t i = 0; i < analyzer.universe().size(); ++i) {
    std::printf("%s%lld", i ? ", " : "",
                static_cast<long long>(analyzer.universe()[i]));
  }
  std::printf("}\n");

  const auto multivalent = analyzer.multivalent_nodes();
  std::printf("multivalent configurations: %zu (initial config is %s)\n",
              multivalent.size(),
              analyzer.is_multivalent(graph.root())
                  ? "BIVALENT — Claim 4.2.4 / 5.2.1 shape"
                  : "univalent");

  const auto critical = analyzer.critical_nodes();
  std::printf("critical configurations:    %zu\n", critical.size());
  if (!critical.empty()) {
    const auto id = critical.front();
    std::printf("\nfirst critical configuration (every successor univalent), "
                "reached by:\n");
    for (const auto& step : graph.path_to(id)) {
      std::printf("  %s\n", step.to_string(*protocol).c_str());
    }
    std::printf("successor valences:\n");
    for (const auto& edge : graph.edges()[id]) {
      std::printf("  after p%d step -> %lld-valent\n", edge.pid,
                  static_cast<long long>(analyzer.univalent_value(edge.to)));
    }
  }

  std::printf("worst-case own steps:      ");
  for (int pid = 0; pid < protocol->process_count(); ++pid) {
    const auto bound = lbsa::modelcheck::worst_case_own_steps(graph, pid);
    std::printf("%sp%d=%s", pid ? ", " : "", pid,
                bound.has_value() ? std::to_string(*bound).c_str() : "∞");
  }
  std::printf("\n");

  // For decision tasks, also run the property checker and show verdicts.
  std::printf("\ntask checker verdict:\n");
  std::vector<lbsa::Value> inputs;
  for (int pid = 0; pid < protocol->process_count(); ++pid) {
    // The demo protocols embed inputs in locals[0] at pc 0.
    inputs.push_back(protocol->initial_locals(pid)[0]);
  }
  auto report =
      std::strncmp(name, "dac", 3) == 0 || std::strcmp(name, "straw") == 0
          ? lbsa::modelcheck::check_dac_task(protocol, 0, inputs)
          : lbsa::modelcheck::check_consensus_task(protocol, inputs);
  if (report.is_ok()) {
    std::printf("%s\n", report.value().to_string().c_str());
  } else {
    std::printf("checker error: %s\n", report.status().to_string().c_str());
  }
  return 0;
}
