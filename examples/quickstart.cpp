// Quickstart: the n-PAC object and Algorithm 2 in five minutes.
//
// Builds a 4-process DAC instance on a single 4-PAC object, runs it three
// ways — a solo run, a seeded adversarial run, and real threads — and then
// model-checks the same protocol exhaustively.
//
//   ./quickstart [seed]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "concurrent/spec_backed.h"
#include "concurrent/threaded_runner.h"
#include "modelcheck/task_check.h"
#include "protocols/dac_from_pac.h"
#include "sim/simulation.h"
#include "spec/pac_type.h"

namespace {

void print_outcome(const char* label,
                   const std::vector<lbsa::sim::ProcessState>& states) {
  std::printf("%s:\n", label);
  for (size_t pid = 0; pid < states.size(); ++pid) {
    std::printf("  p%zu %s\n", pid, states[pid].to_string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const std::vector<lbsa::Value> inputs{10, 20, 30, 40};

  std::printf("=== Life Beyond Set Agreement: quickstart ===\n");
  std::printf("task: 4-DAC (inputs 10,20,30,40; p = process 0), solved with "
              "one 4-PAC object (Algorithm 2)\n\n");

  // 1. Solo run: p alone must decide its own input (Nontriviality forbids
  //    an abort without interference).
  {
    auto protocol =
        std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
    lbsa::sim::Simulation simulation(protocol);
    lbsa::sim::SoloAdversary solo(0);
    simulation.run(&solo, {.max_steps = 100});
    print_outcome("[1] distinguished process running solo",
                  simulation.config().procs);
  }

  // 2. Seeded random adversary: any interleaving; safety always holds.
  {
    auto protocol =
        std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
    lbsa::sim::Simulation simulation(protocol);
    lbsa::sim::RandomAdversary adversary(seed);
    const auto result = simulation.run(&adversary, {.max_steps = 100'000});
    std::printf("\n[2] random adversary (seed %llu), %llu steps\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(result.steps));
    print_outcome("    final states", simulation.config().procs);
  }

  // 3. Real threads on a linearizable 4-PAC.
  {
    auto protocol =
        std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
    lbsa::concurrent::SpinlockSpecObject pac(
        std::make_shared<lbsa::spec::PacType>(4));
    const auto result = lbsa::concurrent::run_threaded(*protocol, {&pac});
    std::printf("\n[3] four OS threads, %llu object operations total\n",
                static_cast<unsigned long long>(result.total_steps));
    print_outcome("    final states", result.final_states);
  }

  // 4. Exhaustive model check: every schedule, every property of the n-DAC
  //    problem (Theorem 4.1, machine-checked for this instance).
  {
    auto protocol =
        std::make_shared<lbsa::protocols::DacFromPacProtocol>(inputs);
    auto report =
        lbsa::modelcheck::check_dac_task(protocol, /*distinguished_pid=*/0,
                                         inputs);
    if (!report.is_ok()) {
      std::printf("\n[4] model check failed to run: %s\n",
                  report.status().to_string().c_str());
      return 1;
    }
    std::printf("\n[4] exhaustive model check: %s\n",
                report.value().to_string().c_str());
    if (!report.value().ok()) return 1;
  }

  std::printf("\nAll four runs consistent with Theorem 4.1.\n");
  return 0;
}
