// Implementation clinic: watch the implementation checker verify the
// paper's constructions and refute broken ones — with the concrete failing
// schedule printed when it finds a bug.
//
//   ./implementation_clinic

#include <cstdio>
#include <memory>

#include "core/implementations.h"
#include "implcheck/checker.h"

namespace {

void examine(const lbsa::implcheck::ObjectImplementation& impl,
             const std::vector<std::vector<lbsa::spec::Operation>>& workload,
             const char* claim) {
  std::printf("--- %s\n    claim: %s\n", impl.name().c_str(), claim);
  auto result = lbsa::implcheck::check_implementation(impl, workload);
  if (!result.is_ok()) {
    std::printf("    checker error: %s\n\n",
                result.status().to_string().c_str());
    return;
  }
  if (result.value().ok) {
    std::printf("    VERIFIED over %llu complete schedules.\n\n",
                static_cast<unsigned long long>(
                    result.value().executions_checked));
    return;
  }
  std::printf("    REFUTED — failing schedule:\n");
  for (const std::string& line : result.value().failing_schedule) {
    std::printf("      %s\n", line.c_str());
  }
  std::printf("    (%s)\n\n", result.value().detail.c_str());
}

}  // namespace

int main() {
  std::printf("=== implementation clinic ===\n"
              "Every 'X implements Y' claim is checked by exhausting all\n"
              "interleavings of the implementation programs and validating\n"
              "each induced history against Y's sequential spec.\n\n");

  examine(*lbsa::core::make_o_prime_from_base_impl(2, 2),
          {
              {lbsa::spec::make_propose_k(10, 1),
               lbsa::spec::make_propose_k(11, 2)},
              {lbsa::spec::make_propose_k(20, 1),
               lbsa::spec::make_propose_k(21, 2)},
          },
          "Lemma 6.4 — O'_2 from 2-consensus + 2-SA");

  examine(*lbsa::core::make_nm_pac_from_components(3, 2),
          {
              {lbsa::spec::make_propose_c(10)},
              {lbsa::spec::make_propose_c(20)},
              {lbsa::spec::make_propose_p(30, 1),
               lbsa::spec::make_decide_p(1)},
          },
          "Observation 5.1(a) — (3,2)-PAC from 3-PAC + 2-consensus");

  examine(*lbsa::core::make_broken_o_prime_impl(2, 2),
          {
              {lbsa::spec::make_propose_k(10, 1)},
              {lbsa::spec::make_propose_k(20, 1)},
          },
          "control — O'_2 with its consensus level wrongly backed by a "
          "2-SA (must be refuted)");

  examine(*lbsa::core::make_racy_counter_impl(),
          {
              {lbsa::spec::make_propose(1)},
              {lbsa::spec::make_propose(1)},
          },
          "control — fetch&add as unsynchronized read-then-write (the "
          "classic lost update; must be refuted)");

  std::printf("The refuted rows are why the paper needs Theorem 4.2's "
              "machinery: plausible constructions break in exactly one "
              "adversarial schedule, and only exhaustive checking (or a "
              "proof) finds it.\n");
  return 0;
}
