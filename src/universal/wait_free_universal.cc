#include "universal/wait_free_universal.h"

#include "base/check.h"

namespace lbsa::universal {

WaitFreeUniversalObject::WaitFreeUniversalObject(
    std::shared_ptr<const spec::ObjectType> replica_type, int num_threads,
    std::size_t max_ops_per_thread)
    : replica_type_(std::move(replica_type)),
      num_threads_(num_threads),
      lanes_(static_cast<std::size_t>(num_threads)),
      replicas_(static_cast<std::size_t>(num_threads)) {
  LBSA_CHECK(replica_type_ != nullptr);
  LBSA_CHECK_MSG(replica_type_->deterministic(),
                 "universal construction requires a deterministic replica");
  LBSA_CHECK(num_threads >= 1 && num_threads < (1 << 15));
  LBSA_CHECK(max_ops_per_thread >= 1 &&
             max_ops_per_thread < static_cast<std::size_t>(kTicketSpan));

  const std::size_t total_ops =
      static_cast<std::size_t>(num_threads) * max_ops_per_thread;
  for (Lane& lane : lanes_) {
    lane.log.resize(max_ops_per_thread);
  }
  for (Replica& replica : replicas_) {
    replica.state = replica_type_->initial_state();
    replica.applied.assign(static_cast<std::size_t>(num_threads), 0);
  }
  cells_.reserve(total_ops);
  for (std::size_t i = 0; i < total_ops; ++i) {
    cells_.push_back(std::make_unique<concurrent::CasConsensus>(num_threads));
  }
}

Value WaitFreeUniversalObject::apply_as(int thread, const spec::Operation& op) {
  LBSA_CHECK(thread >= 0 && thread < num_threads_);
  LBSA_CHECK(replica_type_->validate(op).is_ok());
  Replica& replica = replicas_[static_cast<std::size_t>(thread)];
  Lane& lane = lanes_[static_cast<std::size_t>(thread)];

  // Announce: write-once slot, then publish the ticket.
  const std::int64_t my_ticket = replica.own_ticket;
  LBSA_CHECK_MSG(static_cast<std::size_t>(my_ticket) < lane.log.size(),
                 "WaitFreeUniversalObject per-thread op budget exceeded");
  lane.log[static_cast<std::size_t>(my_ticket)] = op;
  lane.published.store(my_ticket, std::memory_order_release);
  const std::int64_t frontier_at_publish =
      decided_frontier_.load(std::memory_order_acquire);

  Value my_response = kNil;
  bool applied_mine = false;
  std::size_t cells_this_op = 0;
  while (!applied_mine) {
    LBSA_CHECK_MSG(replica.next_cell < cells_.size(),
                   "WaitFreeUniversalObject cell budget exceeded");
    const std::size_t j = replica.next_cell;
    ++cells_this_op;

    // Helping: prefer the designated thread's pending operation.
    const int help = static_cast<int>(j) % num_threads_;
    Value proposal = encode_pair(thread, my_ticket);
    const std::int64_t help_published =
        lanes_[static_cast<std::size_t>(help)].published.load(
            std::memory_order_acquire);
    const std::int64_t help_applied =
        replica.applied[static_cast<std::size_t>(help)];
    if (help_published >= help_applied) {
      proposal = encode_pair(help, help_applied);
    }

    const Value winner = cells_[j]->propose(proposal);
    LBSA_CHECK(winner != kBottom);  // each thread proposes once per cell
    const int wt = pair_thread(winner);
    const std::int64_t wtk = pair_ticket(winner);
    // The winner's descriptor was published before any proposal naming it;
    // the cell's CAS gives the happens-before edge that makes it visible.
    const spec::Operation& winner_op =
        lanes_[static_cast<std::size_t>(wt)].log[static_cast<std::size_t>(wtk)];

    const spec::Outcome outcome =
        replica_type_->apply_unique(replica.state, winner_op);
    replica.state = outcome.next_state;
    ++replica.applied[static_cast<std::size_t>(wt)];
    ++replica.next_cell;

    // Advance the decided-frontier hint (CAS-max).
    std::int64_t hint = decided_frontier_.load(std::memory_order_relaxed);
    const auto processed = static_cast<std::int64_t>(replica.next_cell);
    while (hint < processed &&
           !decided_frontier_.compare_exchange_weak(
               hint, processed, std::memory_order_acq_rel,
               std::memory_order_relaxed)) {
    }

    if (wt == thread && wtk == my_ticket) {
      my_response = outcome.response;
      applied_mine = true;
      const std::int64_t delay =
          static_cast<std::int64_t>(j) - frontier_at_publish;
      replica.max_decide_delay = std::max(
          replica.max_decide_delay,
          static_cast<std::size_t>(std::max<std::int64_t>(delay, 0)));
    }
  }

  replica.max_cells_per_op =
      std::max(replica.max_cells_per_op, cells_this_op);
  ++replica.own_ticket;
  return my_response;
}

std::size_t WaitFreeUniversalObject::max_decide_delay() const {
  std::size_t max_delay = 0;
  for (const Replica& replica : replicas_) {
    max_delay = std::max(max_delay, replica.max_decide_delay);
  }
  return max_delay;
}

std::size_t WaitFreeUniversalObject::max_cells_per_op() const {
  std::size_t max_cells = 0;
  for (const Replica& replica : replicas_) {
    max_cells = std::max(max_cells, replica.max_cells_per_op);
  }
  return max_cells;
}

}  // namespace lbsa::universal
