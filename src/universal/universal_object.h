// Universal construction: a linearizable implementation of ANY deterministic
// sequential object from consensus objects and registers — the machinery
// behind Herlihy's theorem [10] that the paper's Section 1 recalls
// ("instances of any object with consensus number n, together with
// registers, can implement any object that can be shared by up to n
// processes").
//
// Construction (consensus-chain variant):
//   * an announce board: a slot array where each invoking thread publishes
//     its operation descriptor (a register write);
//   * a chain of n-consensus cells; cell j decides which announced operation
//     is the j-th applied to the object;
//   * each thread keeps a private replica of the sequential object, replayed
//     through the decided prefix. To perform op: publish it, then keep
//     proposing its slot to successive cells (applying each cell's winner to
//     the replica) until a cell decides its own slot; the replica's response
//     at that point is the operation's response.
//
// Every thread proposes to a cell at most once, so an n-thread instance
// needs exactly n-consensus cells — the object family the paper studies, not
// unbounded CAS. The construction is lock-free (a thread's proposal loses
// only when another operation wins, i.e. the system makes progress); the
// wait-free variant adds Herlihy's helping, which is noted in DESIGN.md as
// out of scope.
//
// Restriction: the replica type must be deterministic (all replicas must
// transition identically). Checked at construction.
#ifndef LBSA_UNIVERSAL_UNIVERSAL_OBJECT_H_
#define LBSA_UNIVERSAL_UNIVERSAL_OBJECT_H_

#include <atomic>
#include <memory>
#include <vector>

#include "concurrent/cas_consensus.h"
#include "concurrent/concurrent_object.h"

namespace lbsa::universal {

class UniversalObject final : public concurrent::ConcurrentObject {
 public:
  // num_threads: maximum number of concurrently invoking threads (thread ids
  // in [0, num_threads)); max_ops: total operation budget (sizes the
  // announce board and the consensus chain).
  UniversalObject(std::shared_ptr<const spec::ObjectType> replica_type,
                  int num_threads, std::size_t max_ops);

  const spec::ObjectType& type() const override { return *replica_type_; }

  // Generic entry point; runs as thread id 0 (single-threaded callers).
  // Concurrent callers must use apply_as with distinct thread ids.
  Value apply(const spec::Operation& op) override { return apply_as(0, op); }

  // Performs op on behalf of `thread`; linearizable across threads.
  Value apply_as(int thread, const spec::Operation& op) override;

  // Number of operations applied to the shared sequence so far (monotonic;
  // for tests and benches).
  std::size_t applied_count() const;

 private:
  struct Replica {
    std::vector<std::int64_t> state;
    std::size_t next_cell = 0;
    // Pad to a cache line: replicas are strictly thread-local, and false
    // sharing here would serialize the whole construction.
    char padding[64];
  };

  struct Slot {
    spec::Operation op;
    std::atomic<bool> published{false};
  };

  std::shared_ptr<const spec::ObjectType> replica_type_;
  int num_threads_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> slot_cursor_{0};
  std::vector<std::unique_ptr<concurrent::CasConsensus>> cells_;
  std::vector<Replica> replicas_;
};

}  // namespace lbsa::universal

#endif  // LBSA_UNIVERSAL_UNIVERSAL_OBJECT_H_
