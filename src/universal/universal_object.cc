#include "universal/universal_object.h"

#include "base/check.h"

namespace lbsa::universal {

UniversalObject::UniversalObject(
    std::shared_ptr<const spec::ObjectType> replica_type, int num_threads,
    std::size_t max_ops)
    : replica_type_(std::move(replica_type)),
      num_threads_(num_threads),
      slots_(max_ops),
      replicas_(static_cast<std::size_t>(num_threads)) {
  LBSA_CHECK(replica_type_ != nullptr);
  LBSA_CHECK_MSG(replica_type_->deterministic(),
                 "universal construction requires a deterministic replica");
  LBSA_CHECK(num_threads >= 1);
  LBSA_CHECK(max_ops >= 1);
  cells_.reserve(max_ops);
  for (std::size_t i = 0; i < max_ops; ++i) {
    cells_.push_back(
        std::make_unique<concurrent::CasConsensus>(num_threads));
  }
  for (Replica& replica : replicas_) {
    replica.state = replica_type_->initial_state();
  }
}

Value UniversalObject::apply_as(int thread, const spec::Operation& op) {
  LBSA_CHECK(thread >= 0 && thread < num_threads_);
  LBSA_CHECK(replica_type_->validate(op).is_ok());

  // Announce: claim a slot, write the descriptor, publish.
  const std::uint64_t my_slot =
      slot_cursor_.fetch_add(1, std::memory_order_acq_rel);
  LBSA_CHECK_MSG(my_slot < slots_.size(),
                 "UniversalObject operation budget exceeded");
  slots_[my_slot].op = op;
  slots_[my_slot].published.store(true, std::memory_order_release);

  // Thread the consensus chain until a cell decides our slot.
  Replica& replica = replicas_[static_cast<std::size_t>(thread)];
  while (true) {
    LBSA_CHECK_MSG(replica.next_cell < cells_.size(),
                   "UniversalObject cell budget exceeded");
    const Value winner =
        cells_[replica.next_cell]->propose(static_cast<Value>(my_slot));
    // Each thread proposes at most once per cell, so the n-consensus cell
    // can never be exhausted here.
    LBSA_CHECK(winner != kBottom);
    const auto winner_slot = static_cast<std::size_t>(winner);
    while (!slots_[winner_slot].published.load(std::memory_order_acquire)) {
      // The winner's descriptor is published before its propose; this spin
      // is unreachable in practice and exists as a memory-order backstop.
    }
    const spec::Outcome outcome =
        replica_type_->apply_unique(replica.state, slots_[winner_slot].op);
    replica.state = outcome.next_state;
    ++replica.next_cell;
    if (winner_slot == my_slot) return outcome.response;
  }
}

std::size_t UniversalObject::applied_count() const {
  // The shared sequence length is the highest cell index any replica has
  // consumed; replicas only advance past decided cells.
  std::size_t max_applied = 0;
  for (const Replica& replica : replicas_) {
    max_applied = std::max(max_applied, replica.next_cell);
  }
  return max_applied;
}

}  // namespace lbsa::universal
