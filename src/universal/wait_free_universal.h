// Wait-free universal construction with Herlihy-style helping [10].
//
// UniversalObject (universal_object.h) is lock-free: a thread's proposal can
// keep losing cells while others make progress. Herlihy's theorem, which
// the paper's Section 1 builds on, promises a WAIT-FREE implementation; the
// missing ingredient is helping, added here:
//
//   * every thread t publishes its pending operation in a write-once
//     per-thread log (lanes[t].log[ticket]) before competing, and exposes
//     the highest published ticket;
//   * when competing for consensus cell j, a thread first checks whether
//     thread h = j mod n has a published-but-unapplied operation; if so it
//     proposes h's pair (h, ticket) instead of its own.
//
// Consequence: once thread t publishes ticket k, every thread reaching the
// first t-slot cell past the announce-time frontier sees (t, k) pending and
// proposes it — so the pair is decided within ~2n cells of that frontier.
// (The C++ memory model permits a helper's published-ticket load to race
// the announce; the load is adjacent to the cell propose, so the window is
// a few instructions, and the instrumented tests assert the observed delay
// stays <= 3n, the extra n covering frontier-publication lag.) A thread's
// own traversal additionally replays whatever backlog of decided cells its
// replica is behind by — amortized one visit per cell per thread, which is
// the standard cost of replica-replay universality.
//
// Identity of decided pairs: a pair (h, k) is proposed at cell j only by
// threads whose replica has applied exactly k operations of h in the
// decided prefix of j; since all replicas replay the same decided sequence,
// a pair decided at cell j is never proposed at any later cell, so no
// operation is applied twice.
//
// Same restrictions as the lock-free version: deterministic replica type,
// preallocated operation budget, thread ids in [0, num_threads).
#ifndef LBSA_UNIVERSAL_WAIT_FREE_UNIVERSAL_H_
#define LBSA_UNIVERSAL_WAIT_FREE_UNIVERSAL_H_

#include <atomic>
#include <memory>
#include <vector>

#include "concurrent/cas_consensus.h"
#include "concurrent/concurrent_object.h"

namespace lbsa::universal {

class WaitFreeUniversalObject final : public concurrent::ConcurrentObject {
 public:
  WaitFreeUniversalObject(std::shared_ptr<const spec::ObjectType> replica_type,
                          int num_threads, std::size_t max_ops_per_thread);

  const spec::ObjectType& type() const override { return *replica_type_; }

  Value apply(const spec::Operation& op) override { return apply_as(0, op); }
  Value apply_as(int thread, const spec::Operation& op) override;

  // Instrumentation (call at quiescence).
  //
  // max_cells_per_op: highest number of cells one operation's replica
  // traversal covered. This includes catching up on cells other threads
  // decided in the meantime, so it is bounded only by the total operation
  // count (amortized, each thread replays each cell exactly once).
  std::size_t max_cells_per_op() const;

  // max_decide_delay: the helping guarantee itself — the largest observed
  // distance between the decided frontier at an operation's announce time
  // and the cell where that operation was decided. The helping argument
  // bounds it by ~2 * threads (plus at most `threads` frontier-publication
  // lag), which the tests assert as <= 3 * threads.
  std::size_t max_decide_delay() const;

 private:
  struct alignas(64) Lane {
    std::vector<spec::Operation> log;     // write-once slots, one per ticket
    std::atomic<std::int64_t> published{-1};  // highest published ticket
  };

  struct alignas(64) Replica {
    std::vector<std::int64_t> state;
    std::vector<std::int64_t> applied;  // per thread: #ops applied
    std::size_t next_cell = 0;
    std::int64_t own_ticket = 0;        // #own ops completed
    std::size_t max_cells_per_op = 0;
    std::size_t max_decide_delay = 0;
  };

  static constexpr std::int64_t kTicketSpan = 1LL << 31;

  static Value encode_pair(int thread, std::int64_t ticket) {
    return static_cast<Value>(thread) * kTicketSpan + ticket;
  }
  static int pair_thread(Value v) { return static_cast<int>(v / kTicketSpan); }
  static std::int64_t pair_ticket(Value v) { return v % kTicketSpan; }

  std::shared_ptr<const spec::ObjectType> replica_type_;
  int num_threads_;
  std::vector<Lane> lanes_;
  std::vector<Replica> replicas_;
  std::vector<std::unique_ptr<concurrent::CasConsensus>> cells_;
  // Monotone hint: every cell below this index is decided (each thread
  // CAS-maxes it after applying a cell). Lags true decisions by at most one
  // in-flight cell per thread.
  std::atomic<std::int64_t> decided_frontier_{0};
};

}  // namespace lbsa::universal

#endif  // LBSA_UNIVERSAL_WAIT_FREE_UNIVERSAL_H_
