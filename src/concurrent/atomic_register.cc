#include "concurrent/atomic_register.h"

#include "base/check.h"

namespace lbsa::concurrent {

Value AtomicRegister::apply(const spec::Operation& op) {
  LBSA_CHECK(type_.validate(op).is_ok());
  if (op.code == spec::OpCode::kRead) return read();
  write(op.arg0);
  return kDone;
}

}  // namespace lbsa::concurrent
