#include "concurrent/atomic_two_sa.h"

#include "base/check.h"
#include "base/hashing.h"

namespace lbsa::concurrent {
namespace {

constexpr std::uint64_t kBias = 1ULL << 31;

struct Unpacked {
  std::uint32_t count;
  std::uint32_t size;
  Value v0;
  Value v1;
};

__uint128_t pack(const Unpacked& u) {
  const std::uint64_t hi =
      (static_cast<std::uint64_t>(u.count) << 32) | u.size;
  const std::uint64_t lo =
      ((static_cast<std::uint64_t>(u.v1) + kBias) << 32) |
      ((static_cast<std::uint64_t>(u.v0) + kBias) & 0xffffffffULL);
  return (static_cast<__uint128_t>(hi) << 64) | lo;
}

Unpacked unpack(__uint128_t word) {
  const auto hi = static_cast<std::uint64_t>(word >> 64);
  const auto lo = static_cast<std::uint64_t>(word);
  Unpacked u;
  u.count = static_cast<std::uint32_t>(hi >> 32);
  u.size = static_cast<std::uint32_t>(hi & 0xffffffffULL);
  u.v1 = static_cast<Value>((lo >> 32) - kBias);
  u.v0 = static_cast<Value>((lo & 0xffffffffULL) - kBias);
  return u;
}

}  // namespace

AtomicTwoSa::AtomicTwoSa(int port_bound, TwoSaSelection selection)
    : type_(port_bound, 2),
      selection_(selection),
      word_(pack(Unpacked{0, 0, 0, 0})) {}

Value AtomicTwoSa::propose(Value v) {
  LBSA_CHECK_MSG(v >= kMinValue && v <= kMaxValue,
                 "value outside AtomicTwoSa packed range");
  __uint128_t observed = word_.load(std::memory_order_acquire);
  while (true) {
    Unpacked u = unpack(observed);
    if (!type_.unbounded() &&
        u.count >= static_cast<std::uint32_t>(type_.port_bound())) {
      return kBottom;
    }
    ++u.count;
    // STATE <- STATE ∪ {v} if |STATE| < 2 (set semantics).
    if (u.size == 0) {
      u.v0 = v;
      u.size = 1;
    } else if (u.size == 1 && u.v0 != v) {
      u.v1 = v;
      u.size = 2;
    }
    if (word_.compare_exchange_weak(observed, pack(u),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      // Return an arbitrarily selected member of STATE, per the policy.
      if (u.size == 1) return u.v0;
      switch (selection_) {
        case TwoSaSelection::kFirst:
          return u.v0;
        case TwoSaSelection::kSecond:
          return u.v1;
        case TwoSaSelection::kMixed: {
          const std::uint64_t tick =
              selection_clock_.fetch_add(1, std::memory_order_relaxed);
          return (mix64(tick) & 1) ? u.v1 : u.v0;
        }
      }
      return u.v0;
    }
  }
}

Value AtomicTwoSa::apply(const spec::Operation& op) {
  LBSA_CHECK(type_.validate(op).is_ok());
  return propose(op.arg0);
}

}  // namespace lbsa::concurrent
