// ThreadedRunner: executes a sim::Protocol on real OS threads against
// concurrent objects — the same automata that the simulator and model
// checker drive, now scheduled by the operating system instead of an
// explicit adversary. This closes the loop of experiment E2: Algorithm 2
// model-checked under all schedules for small n, then run on hardware for
// larger n.
#ifndef LBSA_CONCURRENT_THREADED_RUNNER_H_
#define LBSA_CONCURRENT_THREADED_RUNNER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "concurrent/concurrent_object.h"
#include "sim/protocol.h"

namespace lbsa::concurrent {

struct ThreadedRunOptions {
  // Per-process cap on invoke steps; a process exceeding it is marked
  // crashed (guards against genuinely non-terminating protocols).
  std::uint64_t max_steps_per_process = 1'000'000;
};

struct ThreadedRunResult {
  std::vector<sim::ProcessState> final_states;
  std::uint64_t total_steps = 0;

  bool all_terminated() const;
  // Distinct decided values, sorted.
  std::vector<Value> distinct_decisions() const;
};

// objects[i] realizes protocol.objects()[i] and must implement a spec with
// the same operation interface. Runs one thread per process, joins them all.
ThreadedRunResult run_threaded(const sim::Protocol& protocol,
                               const std::vector<ConcurrentObject*>& objects,
                               const ThreadedRunOptions& options = {});

}  // namespace lbsa::concurrent

#endif  // LBSA_CONCURRENT_THREADED_RUNNER_H_
