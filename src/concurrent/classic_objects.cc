#include "concurrent/classic_objects.h"

#include "base/check.h"

namespace lbsa::concurrent {

Value AtomicTestAndSet::apply(const spec::Operation& op) {
  LBSA_CHECK(type_.validate(op).is_ok());
  return test_and_set();
}

Value AtomicCompareAndSwap::compare_and_swap(Value expected, Value desired) {
  Value observed = cell_.load(std::memory_order_acquire);
  while (observed == expected) {
    if (cell_.compare_exchange_weak(observed, desired,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      return expected;  // the pre-operation value
    }
    // observed refreshed; loop re-tests the expected match.
  }
  return observed;
}

Value AtomicCompareAndSwap::apply(const spec::Operation& op) {
  LBSA_CHECK(type_.validate(op).is_ok());
  if (op.code == spec::OpCode::kRead) return read();
  return compare_and_swap(op.arg0, op.arg1);
}

}  // namespace lbsa::concurrent
