// Lock-free n-consensus object (footnote 6 semantics) built on a single
// 64-bit CAS word.
//
// Layout: the word packs [proposal_count : 16][winner+bias : 48]. The count
// and the winner must move together atomically or a reader could observe an
// incremented count with a stale winner, which breaks linearizability; that
// is why both live in one word. Consequence: concurrent consensus values
// must fit in 47 bits (checked). n is capped at 2^16 - 1.
#ifndef LBSA_CONCURRENT_CAS_CONSENSUS_H_
#define LBSA_CONCURRENT_CAS_CONSENSUS_H_

#include <atomic>
#include <cstdint>

#include "concurrent/concurrent_object.h"
#include "spec/consensus_type.h"

namespace lbsa::concurrent {

class CasConsensus final : public ConcurrentObject {
 public:
  // Inclusive range of proposable values in the packed representation.
  static constexpr Value kMinValue = -(1LL << 46);
  static constexpr Value kMaxValue = (1LL << 46) - 1;

  explicit CasConsensus(int n);

  const spec::ObjectType& type() const override { return type_; }
  Value apply(const spec::Operation& op) override;

  // Typed fast path: proposes v, returns the winner or kBottom.
  Value propose(Value v);

 private:
  static std::uint64_t pack(std::uint32_t count, Value winner);
  static std::uint32_t unpack_count(std::uint64_t word);
  static Value unpack_winner(std::uint64_t word);

  spec::NConsensusType type_;
  std::atomic<std::uint64_t> word_;
};

}  // namespace lbsa::concurrent

#endif  // LBSA_CONCURRENT_CAS_CONSENSUS_H_
