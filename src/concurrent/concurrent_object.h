// The concurrent realm: linearizable shared objects usable from real
// threads, each tied to the sequential specification (src/spec) it
// implements. The linearizability checker (src/lincheck) validates recorded
// histories of these objects against their specs — that is the bridge
// between the runnable library and the paper's proof devices.
#ifndef LBSA_CONCURRENT_CONCURRENT_OBJECT_H_
#define LBSA_CONCURRENT_CONCURRENT_OBJECT_H_

#include <memory>

#include "base/values.h"
#include "spec/object_type.h"

namespace lbsa::concurrent {

class ConcurrentObject {
 public:
  virtual ~ConcurrentObject() = default;

  // The sequential specification this object implements.
  virtual const spec::ObjectType& type() const = 0;

  // Applies op atomically and returns the response. Thread-safe; op must
  // validate against type(). The call linearizes at some point between its
  // invocation and its return.
  virtual Value apply(const spec::Operation& op) = 0;

  // Applies op on behalf of a specific thread id. Most objects are
  // caller-agnostic and ignore the id; objects with per-thread structure
  // (the universal construction's replicas) override this.
  virtual Value apply_as(int /*thread*/, const spec::Operation& op) {
    return apply(op);
  }
};

}  // namespace lbsa::concurrent

#endif  // LBSA_CONCURRENT_CONCURRENT_OBJECT_H_
