#include "concurrent/spec_backed.h"

#include "base/check.h"

namespace lbsa::concurrent {

SpinlockSpecObject::SpinlockSpecObject(
    std::shared_ptr<const spec::ObjectType> type, OutcomePolicy policy,
    std::uint64_t seed)
    : type_(std::move(type)), policy_(policy), rng_(seed) {
  LBSA_CHECK(type_ != nullptr);
  state_ = type_->initial_state();
}

void SpinlockSpecObject::lock() {
  while (lock_.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

void SpinlockSpecObject::unlock() {
  lock_.clear(std::memory_order_release);
}

Value SpinlockSpecObject::apply(const spec::Operation& op) {
  LBSA_CHECK(type_->validate(op).is_ok());
  std::vector<spec::Outcome> outcomes;
  lock();
  type_->apply(state_, op, &outcomes);
  LBSA_CHECK(!outcomes.empty());
  const std::size_t choice =
      (policy_ == OutcomePolicy::kFirst || outcomes.size() == 1)
          ? 0
          : static_cast<std::size_t>(rng_.next_below(outcomes.size()));
  state_ = std::move(outcomes[choice].next_state);
  const Value response = outcomes[choice].response;
  unlock();
  return response;
}

std::vector<std::int64_t> SpinlockSpecObject::state_snapshot() {
  lock();
  std::vector<std::int64_t> snapshot = state_;
  unlock();
  return snapshot;
}

}  // namespace lbsa::concurrent
