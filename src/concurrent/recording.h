// RecordingObject: wraps any ConcurrentObject and logs every operation's
// invocation/response interval into a lincheck::HistoryLog, so real-thread
// runs can be validated against the sequential specification afterwards.
#ifndef LBSA_CONCURRENT_RECORDING_H_
#define LBSA_CONCURRENT_RECORDING_H_

#include "concurrent/concurrent_object.h"
#include "lincheck/history_log.h"

namespace lbsa::concurrent {

class RecordingObject final : public ConcurrentObject {
 public:
  // Does not own inner or log; both must outlive this wrapper.
  RecordingObject(ConcurrentObject* inner, lincheck::HistoryLog* log)
      : inner_(inner), log_(log) {}

  const spec::ObjectType& type() const override { return inner_->type(); }

  Value apply(const spec::Operation& op) override {
    return apply_as(/*thread=*/-1, op);
  }

  // Same as apply but tags the record with the calling thread's id and
  // forwards it to the inner object (per-thread objects need it).
  Value apply_as(int thread, const spec::Operation& op) override {
    const int op_id = log_->begin_op(thread, op);
    const Value response = inner_->apply_as(thread, op);
    log_->end_op(op_id, response);
    return response;
  }

 private:
  ConcurrentObject* inner_;
  lincheck::HistoryLog* log_;
};

}  // namespace lbsa::concurrent

#endif  // LBSA_CONCURRENT_RECORDING_H_
