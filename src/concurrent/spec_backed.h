// SpinlockSpecObject: a linearizable concurrent object for ANY sequential
// specification, implemented by serializing operations through a spinlock.
//
// This is the concurrent realization of the paper's proof-device objects —
// the n-PAC family, (n,m)-PAC, O'_n bundles — whose state does not fit a
// CAS word. Substitution note (DESIGN.md): linearizability is obtained by
// mutual exclusion, so the implementation is blocking rather than wait-free;
// the paper's objects are *assumed* atomic primitives, and a blocking
// realization is behaviourally indistinguishable to the algorithms running
// on top (every history it produces is linearizable w.r.t. the spec, which
// the lincheck tests verify).
//
// Nondeterministic specs take an OutcomePolicy that plays the adversary:
// always-first, or seeded-pseudorandom among the legal outcomes.
#ifndef LBSA_CONCURRENT_SPEC_BACKED_H_
#define LBSA_CONCURRENT_SPEC_BACKED_H_

#include <atomic>
#include <memory>

#include "base/rng.h"
#include "concurrent/concurrent_object.h"

namespace lbsa::concurrent {

enum class OutcomePolicy { kFirst, kSeededRandom };

class SpinlockSpecObject final : public ConcurrentObject {
 public:
  explicit SpinlockSpecObject(std::shared_ptr<const spec::ObjectType> type,
                              OutcomePolicy policy = OutcomePolicy::kFirst,
                              std::uint64_t seed = 0);

  const spec::ObjectType& type() const override { return *type_; }
  Value apply(const spec::Operation& op) override;

  // Snapshot of the current state (linearizes like a no-op; for tests).
  std::vector<std::int64_t> state_snapshot();

 private:
  void lock();
  void unlock();

  std::shared_ptr<const spec::ObjectType> type_;
  OutcomePolicy policy_;
  Xoshiro256 rng_;  // guarded by lock_
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::vector<std::int64_t> state_;  // guarded by lock_
};

}  // namespace lbsa::concurrent

#endif  // LBSA_CONCURRENT_SPEC_BACKED_H_
