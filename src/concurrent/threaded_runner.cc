#include "concurrent/threaded_runner.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "base/check.h"

namespace lbsa::concurrent {

bool ThreadedRunResult::all_terminated() const {
  return std::all_of(final_states.begin(), final_states.end(),
                     [](const sim::ProcessState& ps) { return !ps.running(); });
}

std::vector<Value> ThreadedRunResult::distinct_decisions() const {
  std::vector<Value> out;
  for (const sim::ProcessState& ps : final_states) {
    if (ps.decided()) out.push_back(ps.decision);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

ThreadedRunResult run_threaded(const sim::Protocol& protocol,
                               const std::vector<ConcurrentObject*>& objects,
                               const ThreadedRunOptions& options) {
  const int n = protocol.process_count();
  LBSA_CHECK(objects.size() == protocol.objects().size());

  ThreadedRunResult result;
  result.final_states.resize(static_cast<size_t>(n));
  std::atomic<std::uint64_t> total_steps{0};

  auto worker = [&](int pid) {
    sim::ProcessState state;
    state.locals = protocol.initial_locals(pid);
    std::uint64_t steps = 0;
    while (state.running()) {
      if (steps >= options.max_steps_per_process) {
        state.status = sim::ProcStatus::kCrashed;
        break;
      }
      const sim::Action action = protocol.next_action(pid, state);
      ++steps;
      switch (action.kind) {
        case sim::Action::Kind::kDecide:
          state.status = sim::ProcStatus::kDecided;
          state.decision = action.decision;
          break;
        case sim::Action::Kind::kAbort:
          state.status = sim::ProcStatus::kAborted;
          break;
        case sim::Action::Kind::kInvoke: {
          ConcurrentObject* object =
              objects[static_cast<size_t>(action.object_index)];
          const Value response = object->apply_as(pid, action.op);
          protocol.on_response(pid, &state, response);
          break;
        }
      }
    }
    total_steps.fetch_add(steps, std::memory_order_relaxed);
    result.final_states[static_cast<size_t>(pid)] = std::move(state);
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));
  for (int pid = 0; pid < n; ++pid) threads.emplace_back(worker, pid);
  for (std::thread& t : threads) t.join();
  result.total_steps = total_steps.load(std::memory_order_relaxed);
  return result;
}

}  // namespace lbsa::concurrent
