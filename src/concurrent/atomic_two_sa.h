// Lock-free strong 2-SA / (n,2)-SA object on a single 128-bit CAS.
//
// Layout (one __uint128_t): [count : 32][size : 32][v1+bias : 32][v0+bias : 32].
// STATE (at most two 31-bit values), its size, and the propose count must
// move together atomically; on x86-64 the compare_exchange compiles to
// cmpxchg16b (and falls back to a libatomic lock elsewhere — still
// linearizable, just slower).
//
// Nondeterminism: Algorithm 3 returns an "arbitrarily selected" member of
// STATE. The selection policy is explicit so tests can pin the adversary:
// kFirst / kSecond pick a fixed slot, kMixed varies the choice per call
// (deterministically, from a mixed call counter) — the concurrent stand-in
// for the paper's adversarial object.
#ifndef LBSA_CONCURRENT_ATOMIC_TWO_SA_H_
#define LBSA_CONCURRENT_ATOMIC_TWO_SA_H_

#include <atomic>
#include <cstdint>

#include "concurrent/concurrent_object.h"
#include "spec/ksa_type.h"

namespace lbsa::concurrent {

enum class TwoSaSelection { kFirst, kSecond, kMixed };

class AtomicTwoSa final : public ConcurrentObject {
 public:
  // Inclusive range of proposable values in the packed representation.
  static constexpr Value kMinValue = -(1LL << 30);
  static constexpr Value kMaxValue = (1LL << 30) - 1;

  explicit AtomicTwoSa(int port_bound = spec::kUnboundedPorts,
                       TwoSaSelection selection = TwoSaSelection::kMixed);

  const spec::ObjectType& type() const override { return type_; }
  Value apply(const spec::Operation& op) override;

  // Typed fast path.
  Value propose(Value v);

 private:
  spec::KsaType type_;
  TwoSaSelection selection_;
  std::atomic<__uint128_t> word_;
  std::atomic<std::uint64_t> selection_clock_{0};
};

}  // namespace lbsa::concurrent

#endif  // LBSA_CONCURRENT_ATOMIC_TWO_SA_H_
