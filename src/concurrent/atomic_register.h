// Lock-free atomic register: the free base object of the paper's model,
// realized directly on std::atomic<Value>.
#ifndef LBSA_CONCURRENT_ATOMIC_REGISTER_H_
#define LBSA_CONCURRENT_ATOMIC_REGISTER_H_

#include <atomic>

#include "concurrent/concurrent_object.h"
#include "spec/register_type.h"

namespace lbsa::concurrent {

class AtomicRegister final : public ConcurrentObject {
 public:
  explicit AtomicRegister(Value initial_value = kNil)
      : type_(initial_value), value_(initial_value) {}

  const spec::ObjectType& type() const override { return type_; }

  Value apply(const spec::Operation& op) override;

  // Direct typed accessors for non-generic callers.
  Value read() const { return value_.load(std::memory_order_acquire); }
  void write(Value v) { value_.store(v, std::memory_order_release); }

 private:
  spec::RegisterType type_;
  std::atomic<Value> value_;
};

}  // namespace lbsa::concurrent

#endif  // LBSA_CONCURRENT_ATOMIC_REGISTER_H_
