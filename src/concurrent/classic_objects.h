// Lock-free realizations of the classic hierarchy objects: test&set on
// atomic exchange and compare&swap on the hardware primitive itself.
// (The FIFO queue's concurrent realization goes through SpinlockSpecObject
// or the universal construction — which is itself the point Herlihy makes
// about queues.)
#ifndef LBSA_CONCURRENT_CLASSIC_OBJECTS_H_
#define LBSA_CONCURRENT_CLASSIC_OBJECTS_H_

#include <atomic>

#include "concurrent/concurrent_object.h"
#include "spec/classic_types.h"

namespace lbsa::concurrent {

class AtomicTestAndSet final : public ConcurrentObject {
 public:
  AtomicTestAndSet() = default;

  const spec::ObjectType& type() const override { return type_; }
  Value apply(const spec::Operation& op) override;

  // Typed fast path: 0 iff this call set the bit.
  Value test_and_set() {
    return bit_.exchange(1, std::memory_order_acq_rel);
  }

 private:
  spec::TestAndSetType type_;
  std::atomic<std::int64_t> bit_{0};
};

class AtomicCompareAndSwap final : public ConcurrentObject {
 public:
  explicit AtomicCompareAndSwap(Value initial_value = kNil)
      : type_(initial_value), cell_(initial_value) {}

  const spec::ObjectType& type() const override { return type_; }
  Value apply(const spec::Operation& op) override;

  // Typed fast path: returns the pre-operation value.
  Value compare_and_swap(Value expected, Value desired);
  Value read() const { return cell_.load(std::memory_order_acquire); }

 private:
  spec::CompareAndSwapType type_;
  std::atomic<Value> cell_;
};

}  // namespace lbsa::concurrent

#endif  // LBSA_CONCURRENT_CLASSIC_OBJECTS_H_
