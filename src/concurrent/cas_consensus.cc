#include "concurrent/cas_consensus.h"

#include "base/check.h"

namespace lbsa::concurrent {

namespace {
constexpr std::uint64_t kValueMask = (1ULL << 48) - 1;
// Bias shifts the signed 47-bit value range into [0, 2^48).
constexpr std::uint64_t kBias = 1ULL << 47;
}  // namespace

CasConsensus::CasConsensus(int n) : type_(n), word_(pack(0, 0)) {
  LBSA_CHECK(n >= 1 && n < (1 << 16));
}

std::uint64_t CasConsensus::pack(std::uint32_t count, Value winner) {
  const std::uint64_t biased =
      static_cast<std::uint64_t>(winner) + kBias;  // wraps into [0, 2^48)
  return (static_cast<std::uint64_t>(count) << 48) | (biased & kValueMask);
}

std::uint32_t CasConsensus::unpack_count(std::uint64_t word) {
  return static_cast<std::uint32_t>(word >> 48);
}

Value CasConsensus::unpack_winner(std::uint64_t word) {
  return static_cast<Value>((word & kValueMask) - kBias);
}

Value CasConsensus::propose(Value v) {
  LBSA_CHECK_MSG(v >= kMinValue && v <= kMaxValue,
                 "value outside CasConsensus packed range");
  std::uint64_t observed = word_.load(std::memory_order_acquire);
  while (true) {
    const std::uint32_t count = unpack_count(observed);
    if (count >= static_cast<std::uint32_t>(type_.n())) return kBottom;
    const Value winner = (count == 0) ? v : unpack_winner(observed);
    const std::uint64_t desired = pack(count + 1, winner);
    if (word_.compare_exchange_weak(observed, desired,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      return winner;
    }
    // observed refreshed by the failed CAS; retry. Bounded retries: each
    // failure means another proposer advanced the count, which can happen
    // at most n times, so the loop is wait-free in the paper's sense.
  }
}

Value CasConsensus::apply(const spec::Operation& op) {
  LBSA_CHECK(type_.validate(op).is_ok());
  return propose(op.arg0);
}

}  // namespace lbsa::concurrent
