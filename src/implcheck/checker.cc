#include "implcheck/checker.h"

#include <optional>

#include "base/check.h"
#include "obs/obs.h"

namespace lbsa::implcheck {
namespace {

// Per-thread execution cursor.
struct ThreadCursor {
  size_t next_op = 0;               // index into its op sequence
  std::optional<OpExecState> exec;  // in-flight program state
  int current_record = -1;          // index into the history being built

  bool done(const std::vector<spec::Operation>& ops) const {
    return !exec.has_value() && next_op >= ops.size();
  }
};

// The branching search passes its whole state by value: executions are tiny
// (<= 64 operations, each a handful of base steps), so copying is cheap and
// makes backtracking trivially correct.
struct SearchState {
  std::vector<std::vector<std::int64_t>> base_states;
  std::vector<ThreadCursor> cursors;
  std::vector<lincheck::OpRecord> history;
  std::uint64_t clock = 0;
};

class Search {
 public:
  Search(const ObjectImplementation& impl,
         const std::vector<std::vector<spec::Operation>>& workload,
         const ImplCheckOptions& options)
      : impl_(impl), workload_(workload), options_(options) {}

  StatusOr<ImplCheckResult> run() {
    SearchState state;
    for (const auto& type : impl_.base_objects()) {
      state.base_states.push_back(type->initial_state());
    }
    state.cursors.resize(workload_.size());
    Status status = dfs(std::move(state));
    if (!status.is_ok()) return status;
    ImplCheckResult result;
    result.ok = !failed_;
    result.executions_checked = executions_;
    result.failing_schedule = failing_schedule_;
    result.detail = detail_;
    return result;
  }

 private:
  // Completes thread t's current operation with `response`.
  static void complete_op(SearchState* state, size_t t, Value response) {
    ThreadCursor& cursor = state->cursors[t];
    lincheck::OpRecord& record =
        state->history[static_cast<size_t>(cursor.current_record)];
    record.response = response;
    record.response_ts = ++state->clock;
    cursor.exec.reset();
    cursor.current_record = -1;
    ++cursor.next_op;
  }

  // Non-OK only on resource exhaustion; verification failures set failed_.
  Status dfs(SearchState state) {
    if (failed_) return Status::ok();

    bool any_runnable = false;
    for (size_t t = 0; t < state.cursors.size(); ++t) {
      if (state.cursors[t].done(workload_[t])) continue;
      any_runnable = true;

      // Branch state: begin the op lazily if needed.
      SearchState begun = state;
      ThreadCursor& cursor = begun.cursors[t];
      if (!cursor.exec.has_value()) {
        const spec::Operation& op = workload_[t][cursor.next_op];
        cursor.exec = impl_.begin(op);
        lincheck::OpRecord record;
        record.op_id = static_cast<int>(begun.history.size());
        record.thread = static_cast<int>(t);
        record.op = op;
        record.invoke_ts = ++begun.clock;
        begun.history.push_back(record);
        cursor.current_record = record.op_id;
      }

      const spec::Operation& op = workload_[t][cursor.next_op];
      const ImplAction action = impl_.next_action(op, *cursor.exec);

      if (action.kind == ImplAction::Kind::kReturn) {
        // A program returning without touching a base object.
        SearchState next = begun;
        complete_op(&next, t, action.response);
        schedule_.push_back("t" + std::to_string(t) + ": return " +
                            value_to_string(action.response));
        Status s = dfs(std::move(next));
        schedule_.pop_back();
        if (!s.is_ok()) return s;
        continue;
      }

      // One base step; branch over nondeterministic outcomes.
      const auto& base_type =
          *impl_.base_objects()[static_cast<size_t>(action.object_index)];
      const Status valid = base_type.validate(action.base_op);
      LBSA_CHECK_MSG(valid.is_ok(), valid.to_string().c_str());
      std::vector<spec::Outcome> outcomes;
      base_type.apply(
          begun.base_states[static_cast<size_t>(action.object_index)],
          action.base_op, &outcomes);

      for (const spec::Outcome& outcome : outcomes) {
        SearchState next = begun;
        next.base_states[static_cast<size_t>(action.object_index)] =
            outcome.next_state;
        impl_.on_response(op, &*next.cursors[t].exec, outcome.response);

        schedule_.push_back(
            "t" + std::to_string(t) + ": " + base_type.name() + "#" +
            std::to_string(action.object_index) + "." +
            base_type.operation_to_string(action.base_op) + " -> " +
            value_to_string(outcome.response));

        // Returns are local steps: fold a trailing kReturn into this step.
        const ImplAction after = impl_.next_action(op, *next.cursors[t].exec);
        if (after.kind == ImplAction::Kind::kReturn) {
          complete_op(&next, t, after.response);
        }

        Status s = dfs(std::move(next));
        schedule_.pop_back();
        if (!s.is_ok()) return s;
        if (failed_) return Status::ok();
      }
    }

    if (!any_runnable) {
      // Complete execution: validate the induced target-level history.
      if (++executions_ > options_.max_executions) {
        return resource_exhausted("implcheck: execution budget exceeded");
      }
      auto result = lincheck::check_linearizable(
          impl_.target_type(), state.history, options_.lincheck);
      if (!result.is_ok()) return result.status();
      if (!result.value().linearizable) {
        failed_ = true;
        failing_schedule_ = schedule_;
        detail_ = result.value().detail;
      }
    }
    return Status::ok();
  }

  const ObjectImplementation& impl_;
  const std::vector<std::vector<spec::Operation>>& workload_;
  const ImplCheckOptions& options_;
  std::vector<std::string> schedule_;
  std::uint64_t executions_ = 0;
  bool failed_ = false;
  std::vector<std::string> failing_schedule_;
  std::string detail_;
};

}  // namespace

StatusOr<ImplCheckResult> check_implementation(
    const ObjectImplementation& impl,
    const std::vector<std::vector<spec::Operation>>& per_thread_ops,
    const ImplCheckOptions& options) {
  if (per_thread_ops.empty()) {
    return invalid_argument("implcheck: empty workload");
  }
  size_t total_ops = 0;
  for (const auto& ops : per_thread_ops) {
    total_ops += ops.size();
    for (const spec::Operation& op : ops) {
      const Status s = impl.target_type().validate(op);
      if (!s.is_ok()) return s;
    }
  }
  if (total_ops > 64) {
    return invalid_argument("implcheck: at most 64 operations per workload");
  }
  // One task span per workload check (the per-execution lincheck calls
  // underneath record counters only).
  LBSA_OBS_SPAN(span, "implcheck.check", obs::kCatTask, /*lane=*/0);
  LBSA_OBS_COUNTER_ADD("implcheck.checks", 1);
  Search search(impl, per_thread_ops, options);
  StatusOr<ImplCheckResult> result = search.run();
  if (result.is_ok()) {
    LBSA_OBS_COUNTER_ADD("implcheck.executions",
                         result.value().executions_checked);
    span.arg("executions",
             static_cast<std::int64_t>(result.value().executions_checked));
  }
  return result;
}

}  // namespace lbsa::implcheck
