// Exhaustive implementation checker.
//
// Given an ObjectImplementation and a workload (per-thread sequences of
// target operations), explores EVERY schedule — all interleavings of the
// programs' base-object steps and all nondeterministic base-object outcomes
// — and, for each complete execution, validates the induced target-level
// history against the target specification with the Wing-Gong checker.
//
// Timestamps follow the standard reduction: a target operation's
// linearization interval spans from just before its first base step to just
// after its last, so real-time order between non-overlapping operations is
// preserved exactly.
#ifndef LBSA_IMPLCHECK_CHECKER_H_
#define LBSA_IMPLCHECK_CHECKER_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "implcheck/implementation.h"
#include "lincheck/checker.h"

namespace lbsa::implcheck {

struct ImplCheckOptions {
  // Budget on complete executions (maximal schedules) examined.
  std::uint64_t max_executions = 1'000'000;
  lbsa::lincheck::LincheckOptions lincheck;
};

struct ImplCheckResult {
  bool ok = false;
  std::uint64_t executions_checked = 0;
  // On failure: the schedule (formatted steps) and checker detail.
  std::vector<std::string> failing_schedule;
  std::string detail;
};

// per_thread_ops[t] is the sequence of target operations thread t invokes,
// in order. Every operation must validate against the target type.
StatusOr<ImplCheckResult> check_implementation(
    const ObjectImplementation& impl,
    const std::vector<std::vector<spec::Operation>>& per_thread_ops,
    const ImplCheckOptions& options = {});

}  // namespace lbsa::implcheck

#endif  // LBSA_IMPLCHECK_CHECKER_H_
