// Wait-free object implementations, as checkable artifacts.
//
// The paper's statements of the form "object T can be implemented from
// objects B1, B2, ... and registers" (Observations 5.1(a)-(c), Lemma 6.4)
// are about *implementations*: per-operation programs over base objects such
// that every concurrent execution of the programs is linearizable with
// respect to T's sequential specification [Herlihy & Wing, 11].
//
// An ObjectImplementation describes those programs as deterministic step
// machines (mirroring sim::Protocol, but per-operation rather than
// per-process). implcheck/checker.h then explores EVERY interleaving of the
// programs' base-object steps — including all nondeterministic base-object
// responses — and validates each induced target-level history with the
// linearizability checker. A pass is a machine-checked proof of the
// implementation claim for that workload; a failure yields the schedule.
#ifndef LBSA_IMPLCHECK_IMPLEMENTATION_H_
#define LBSA_IMPLCHECK_IMPLEMENTATION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "spec/object_type.h"

namespace lbsa::implcheck {

// One step of an operation's program.
struct ImplAction {
  enum class Kind { kBaseOp, kReturn };
  Kind kind = Kind::kReturn;
  int object_index = -1;     // kBaseOp: which base object
  spec::Operation base_op;   // kBaseOp: the operation to apply
  Value response = kNil;     // kReturn: the target-level response

  static ImplAction base(int object_index, spec::Operation op) {
    ImplAction a;
    a.kind = Kind::kBaseOp;
    a.object_index = object_index;
    a.base_op = op;
    return a;
  }
  static ImplAction ret(Value response) {
    ImplAction a;
    a.kind = Kind::kReturn;
    a.response = response;
    return a;
  }
};

// Execution state of one in-flight target operation.
struct OpExecState {
  std::int64_t pc = 0;
  std::vector<std::int64_t> locals;
};

class ObjectImplementation {
 public:
  virtual ~ObjectImplementation() = default;

  virtual std::string name() const = 0;

  // The specification this implementation claims to realize.
  virtual const spec::ObjectType& target_type() const = 0;

  // The base objects the programs operate on (instantiated fresh by the
  // checker from each type's initial_state()).
  virtual const std::vector<std::shared_ptr<const spec::ObjectType>>&
  base_objects() const = 0;

  // Fresh execution state for an invocation of `op`.
  virtual OpExecState begin(const spec::Operation& op) const = 0;

  // The next step of `op`'s program — a pure function of (op, state).
  virtual ImplAction next_action(const spec::Operation& op,
                                 const OpExecState& state) const = 0;

  // Folds a base-object response into the program state.
  virtual void on_response(const spec::Operation& op, OpExecState* state,
                           Value response) const = 0;
};

// The common special case: each target operation maps to exactly ONE base
// operation whose response is returned verbatim (all of the paper's
// compositions — (n,m)-PAC routing, O' bundling, Lemma 6.4 — have this
// shape; their linearizability is inherited from the base object's, which
// is exactly what the checker confirms).
class DirectRoutingImplementation final : public ObjectImplementation {
 public:
  // Maps a target operation to (base object index, base operation).
  using Router =
      std::function<std::pair<int, spec::Operation>(const spec::Operation&)>;

  DirectRoutingImplementation(
      std::string name, std::shared_ptr<const spec::ObjectType> target,
      std::vector<std::shared_ptr<const spec::ObjectType>> bases,
      Router router);

  std::string name() const override { return name_; }
  const spec::ObjectType& target_type() const override { return *target_; }
  const std::vector<std::shared_ptr<const spec::ObjectType>>& base_objects()
      const override {
    return bases_;
  }
  OpExecState begin(const spec::Operation& op) const override;
  ImplAction next_action(const spec::Operation& op,
                         const OpExecState& state) const override;
  void on_response(const spec::Operation& op, OpExecState* state,
                   Value response) const override;

 private:
  std::string name_;
  std::shared_ptr<const spec::ObjectType> target_;
  std::vector<std::shared_ptr<const spec::ObjectType>> bases_;
  Router router_;
};

}  // namespace lbsa::implcheck

#endif  // LBSA_IMPLCHECK_IMPLEMENTATION_H_
