#include "implcheck/implementation.h"

#include "base/check.h"

namespace lbsa::implcheck {

DirectRoutingImplementation::DirectRoutingImplementation(
    std::string name, std::shared_ptr<const spec::ObjectType> target,
    std::vector<std::shared_ptr<const spec::ObjectType>> bases, Router router)
    : name_(std::move(name)),
      target_(std::move(target)),
      bases_(std::move(bases)),
      router_(std::move(router)) {
  LBSA_CHECK(target_ != nullptr);
  LBSA_CHECK(!bases_.empty());
  LBSA_CHECK(router_ != nullptr);
}

OpExecState DirectRoutingImplementation::begin(
    const spec::Operation& /*op*/) const {
  return OpExecState{0, {kNil}};
}

ImplAction DirectRoutingImplementation::next_action(
    const spec::Operation& op, const OpExecState& state) const {
  if (state.pc == 0) {
    auto [object_index, base_op] = router_(op);
    LBSA_CHECK(object_index >= 0 &&
               static_cast<size_t>(object_index) < bases_.size());
    return ImplAction::base(object_index, base_op);
  }
  LBSA_CHECK(state.pc == 1);
  return ImplAction::ret(state.locals[0]);
}

void DirectRoutingImplementation::on_response(const spec::Operation& /*op*/,
                                              OpExecState* state,
                                              Value response) const {
  LBSA_CHECK(state->pc == 0);
  state->locals[0] = response;
  state->pc = 1;
}

}  // namespace lbsa::implcheck
