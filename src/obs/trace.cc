#include "obs/trace.h"

#include <chrono>

#include "obs/json.h"

namespace lbsa::obs {

std::uint64_t trace_now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch)
          .count());
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // leaked: process lifetime
  return *tracer;
}

void Tracer::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::set_lane_name(int lane, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  lane_names_[lane] = std::move(name);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t Tracer::event_count(std::string_view cat) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (const TraceEvent& event : events_) {
    if (event.cat == cat) ++count;
  }
  return count;
}

std::string Tracer::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& [lane, name] : lane_names_) {
    w.begin_object();
    w.key("name");
    w.value_string("thread_name");
    w.key("ph");
    w.value_string("M");
    w.key("pid");
    w.value_uint(1);
    w.key("tid");
    w.value_int(lane);
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value_string(name);
    w.end_object();
    w.end_object();
  }
  for (const TraceEvent& event : events_) {
    w.begin_object();
    w.key("name");
    w.value_string(event.name);
    w.key("cat");
    w.value_string(event.cat);
    w.key("ph");
    w.value_string("X");
    w.key("pid");
    w.value_uint(1);
    w.key("tid");
    w.value_int(event.lane);
    w.key("ts");
    w.value_uint(event.ts_us);
    w.key("dur");
    w.value_uint(event.dur_us);
    if (!event.args.empty()) {
      w.key("args");
      w.begin_object();
      for (const auto& [key, value] : event.args) {
        w.key(key);
        w.value_int(value);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value_string("ms");
  w.end_object();
  return std::move(w).str();
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  lane_names_.clear();
}

}  // namespace lbsa::obs
