// Machine-readable run reports: every CLI that accepts --metrics-json
// writes one of these. The format is versioned and schema-checked (see
// validate_run_report_json and docs/observability.md):
//
//   {
//     "run_report_version": 2,
//     "tool": "explorer_cli",
//     "task": "dac3",                      // "" when not task-scoped
//     "params": { "threads": 8, ... },     // tool inputs, for reproduction
//     "wall_seconds": 0.042,
//     "metrics": {
//       "counters":   { "explore.nodes": 441, ... },      // stable
//       "gauges":     { "explore.max_depth": 12, ... },
//       "histograms": { "explore.frontier_size":
//                         {"count":13,"sum":441,"buckets":[0,3,...],
//                          "quantiles":{"p50":7,"p90":63,"p99":63,
//                                       "max":255}} },
//       "volatile":   { "counters": {...}, "gauges": {...},
//                       "histograms": {...} }              // schedule-dep.
//     },
//     "sections": {
//       "explorer": { "nodes": 441, ... },                 // tool-specific
//       "timeseries": {                    // only when --heartbeat-out ran
//         "run_id": "a1b2...", "interval_ms": 1000, "ticks": 3,
//         "uptime_ms": [...], "nodes_total": [...],
//         "frontier_size": [...], "nodes_per_sec": [...]
//       }
//     }
//   }
//
// v2 (heartbeat PR) added the per-histogram "quantiles" object (upper-bound
// log2-bucket quantiles, see HistogramQuantiles in obs/metrics.h) and the
// optional "timeseries" section mirroring the run's heartbeat stream.
//
// "params" and "sections" values are raw JSON supplied by the tool (built
// with obs::JsonWriter). The stable metrics sections are byte-identical
// across thread counts for deterministic workloads; "volatile" and
// "wall_seconds" are not — comparisons must use
// MetricsSnapshot::stable_json() / the stable sections only.
#ifndef LBSA_OBS_REPORT_H_
#define LBSA_OBS_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "obs/metrics.h"

namespace lbsa::obs {

struct RunReport {
  static constexpr int kSchemaVersion = 2;

  std::string tool;  // required, non-empty
  std::string task;  // optional workload key ("" if none)
  // name -> raw JSON value (numbers, strings with quotes, objects ...).
  std::vector<std::pair<std::string, std::string>> params;
  std::vector<std::pair<std::string, std::string>> sections;
  double wall_seconds = 0.0;
  MetricsSnapshot metrics;

  std::string to_json() const;
};

// Schema check for a serialized RunReport; INVALID_ARGUMENT pinpoints the
// first violation. Used by the schema tests and by the CLIs right after
// writing (a CLI never leaves an invalid artifact behind).
Status validate_run_report_json(std::string_view json);

// Schema check for the BENCH_modelcheck.json artifact emitted by
// tools/run_report.sh: {"lbsa_bench_schema":1,"benchmarks":[...],
// "run_reports":{name: <RunReport>, ...}}.
Status validate_bench_artifact_json(std::string_view json);

// Schema check for the HIERARCHY.json artifact emitted by
// tools/hierarchy_sweep_cli (core/hierarchy_sweep.h):
// {"lbsa_hierarchy_schema":1,"n_min":..,"n_max":..,"rows":[...],
// "provenance":{...}}. Strict: rows must cover exactly every (n, m) with
// n_min <= n <= n_max, 1 <= m <= n, in lexicographic order; every row must
// report ok verdicts on both constructive checks, declared_level == m, and
// matches_catalog == true — an artifact recording a refuted theorem does
// not validate.
Status validate_hierarchy_artifact_json(std::string_view json);

// Writes `text` to `path` atomically: the bytes land in a same-directory
// temp file which is then renamed over `path`, so readers (and the file
// itself, if the process dies mid-write — the interrupted-run exit paths)
// never observe a torn artifact. INTERNAL on I/O failure.
Status write_text_file(const std::string& path, std::string_view text);

// Serializes, schema-checks, and writes the report.
Status write_run_report(const RunReport& report, const std::string& path);

}  // namespace lbsa::obs

#endif  // LBSA_OBS_REPORT_H_
