#include "obs/report.h"

#include <cstdio>

#include "obs/json.h"

namespace lbsa::obs {

std::string RunReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("run_report_version");
  w.value_int(kSchemaVersion);
  w.key("tool");
  w.value_string(tool);
  w.key("task");
  w.value_string(task);
  w.key("params");
  w.begin_object();
  for (const auto& [name, raw] : params) {
    w.key(name);
    w.value_raw(raw);
  }
  w.end_object();
  w.key("wall_seconds");
  w.value_double(wall_seconds);
  w.key("metrics");
  w.value_raw(metrics.to_json());
  w.key("sections");
  w.begin_object();
  for (const auto& [name, raw] : sections) {
    w.key(name);
    w.value_raw(raw);
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

namespace {

Status schema_error(const std::string& what) {
  return invalid_argument("run report schema: " + what);
}

// "counters"/"gauges" must map names to integers; "histograms" maps names to
// {count, sum, buckets[], quantiles{p50,p90,p99,max}} objects.
Status check_metric_group(const JsonValue& group, const std::string& where) {
  const JsonValue* counters = group.find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return schema_error(where + ".counters missing or not an object");
  }
  for (const auto& [name, value] : counters->members) {
    if (!value.is_number() || !value.number_is_integer) {
      return schema_error(where + ".counters." + name + " not an integer");
    }
  }
  const JsonValue* gauges = group.find("gauges");
  if (gauges == nullptr || !gauges->is_object()) {
    return schema_error(where + ".gauges missing or not an object");
  }
  for (const auto& [name, value] : gauges->members) {
    if (!value.is_number() || !value.number_is_integer) {
      return schema_error(where + ".gauges." + name + " not an integer");
    }
  }
  const JsonValue* histograms = group.find("histograms");
  if (histograms == nullptr || !histograms->is_object()) {
    return schema_error(where + ".histograms missing or not an object");
  }
  for (const auto& [name, value] : histograms->members) {
    const std::string path = where + ".histograms." + name;
    if (!value.is_object()) return schema_error(path + " not an object");
    const JsonValue* count = value.find("count");
    if (count == nullptr || !count->is_number() || !count->number_is_integer) {
      return schema_error(path + ".count missing or not an integer");
    }
    const JsonValue* sum = value.find("sum");
    if (sum == nullptr || !sum->is_number() || !sum->number_is_integer) {
      return schema_error(path + ".sum missing or not an integer");
    }
    const JsonValue* buckets = value.find("buckets");
    if (buckets == nullptr || !buckets->is_array()) {
      return schema_error(path + ".buckets missing or not an array");
    }
    for (const JsonValue& bucket : buckets->array) {
      if (!bucket.is_number() || !bucket.number_is_integer) {
        return schema_error(path + ".buckets element not an integer");
      }
    }
    const JsonValue* quantiles = value.find("quantiles");
    if (quantiles == nullptr || !quantiles->is_object()) {
      return schema_error(path + ".quantiles missing or not an object");
    }
    std::int64_t prev = 0;
    const char* prev_name = nullptr;
    for (const char* q : {"p50", "p90", "p99", "max"}) {
      const JsonValue* v = quantiles->find(q);
      if (v == nullptr || !v->is_number() || !v->number_is_integer) {
        return schema_error(path + ".quantiles." + q +
                            " missing or not an integer");
      }
      // Upper-bound quantiles from one bucket array are necessarily ordered
      // (int_value wraps for the top bucket's UINT64_MAX, so compare only
      // non-negative values — a wrapped max is by construction the largest).
      if (prev_name != nullptr && v->int_value >= 0 && prev >= 0 &&
          v->int_value < prev) {
        return schema_error(path + ".quantiles." + q + " < " + prev_name);
      }
      prev = v->int_value;
      prev_name = q;
    }
  }
  return Status::ok();
}

// The optional sections.timeseries object mirroring a heartbeat stream:
// run_id + interval + parallel arrays, one entry per captured tick.
Status check_timeseries_section(const JsonValue& ts) {
  if (!ts.is_object()) {
    return schema_error("sections.timeseries not an object");
  }
  const JsonValue* run_id = ts.find("run_id");
  if (run_id == nullptr || !run_id->is_string() ||
      run_id->string_value.empty()) {
    return schema_error("sections.timeseries.run_id missing or empty");
  }
  const JsonValue* interval = ts.find("interval_ms");
  if (interval == nullptr || !interval->is_number() ||
      !interval->number_is_integer || interval->int_value < 1) {
    return schema_error(
        "sections.timeseries.interval_ms missing or not a positive integer");
  }
  const JsonValue* ticks = ts.find("ticks");
  if (ticks == nullptr || !ticks->is_number() || !ticks->number_is_integer ||
      ticks->int_value < 0) {
    return schema_error(
        "sections.timeseries.ticks missing or not a non-negative integer");
  }
  for (const char* field :
       {"uptime_ms", "nodes_total", "frontier_size", "nodes_per_sec"}) {
    const JsonValue* arr = ts.find(field);
    if (arr == nullptr || !arr->is_array()) {
      return schema_error(std::string("sections.timeseries.") + field +
                          " missing or not an array");
    }
    if (arr->array.size() != static_cast<std::size_t>(ticks->int_value)) {
      return schema_error(std::string("sections.timeseries.") + field +
                          " length != ticks");
    }
    for (const JsonValue& v : arr->array) {
      if (!v.is_number()) {
        return schema_error(std::string("sections.timeseries.") + field +
                            " element not a number");
      }
    }
  }
  return Status::ok();
}

Status check_run_report_value(const JsonValue& root) {
  if (!root.is_object()) return schema_error("document not an object");
  const JsonValue* version = root.find("run_report_version");
  if (version == nullptr || !version->is_number() ||
      !version->number_is_integer) {
    return schema_error("run_report_version missing or not an integer");
  }
  if (version->int_value != RunReport::kSchemaVersion) {
    return schema_error("unsupported run_report_version " +
                        std::to_string(version->int_value));
  }
  const JsonValue* tool = root.find("tool");
  if (tool == nullptr || !tool->is_string() || tool->string_value.empty()) {
    return schema_error("tool missing or empty");
  }
  const JsonValue* task = root.find("task");
  if (task == nullptr || !task->is_string()) {
    return schema_error("task missing or not a string");
  }
  const JsonValue* params = root.find("params");
  if (params == nullptr || !params->is_object()) {
    return schema_error("params missing or not an object");
  }
  const JsonValue* wall = root.find("wall_seconds");
  if (wall == nullptr || !wall->is_number()) {
    return schema_error("wall_seconds missing or not a number");
  }
  const JsonValue* metrics = root.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return schema_error("metrics missing or not an object");
  }
  Status s = check_metric_group(*metrics, "metrics");
  if (!s.is_ok()) return s;
  const JsonValue* volatiles = metrics->find("volatile");
  if (volatiles == nullptr || !volatiles->is_object()) {
    return schema_error("metrics.volatile missing or not an object");
  }
  s = check_metric_group(*volatiles, "metrics.volatile");
  if (!s.is_ok()) return s;
  const JsonValue* sections = root.find("sections");
  if (sections == nullptr || !sections->is_object()) {
    return schema_error("sections missing or not an object");
  }
  if (const JsonValue* ts = sections->find("timeseries"); ts != nullptr) {
    if (Status status = check_timeseries_section(*ts); !status.is_ok()) {
      return status;
    }
  }
  // The explorer section's full-graph estimate (and the reduction ratio
  // derived from it) only counts visited orbits, so on a truncated or
  // interrupted graph it silently understates the state space. Writers omit
  // both fields on incomplete graphs; a report carrying them anyway is a
  // producer bug, not a presentation choice — reject it.
  if (const JsonValue* explorer = sections->find("explorer");
      explorer != nullptr && explorer->is_object()) {
    bool incomplete = false;
    for (const char* flag : {"truncated", "interrupted"}) {
      if (const JsonValue* v = explorer->find(flag);
          v != nullptr && v->kind == JsonValue::Kind::kBool && v->bool_value) {
        incomplete = true;
      }
    }
    if (incomplete) {
      for (const char* field : {"nodes_full_estimate", "reduction_ratio"}) {
        if (explorer->find(field) != nullptr) {
          return schema_error(
              std::string("sections.explorer.") + field +
              " present on an incomplete (truncated/interrupted) graph");
        }
      }
    }
  }
  return Status::ok();
}

}  // namespace

Status validate_run_report_json(std::string_view json) {
  StatusOr<JsonValue> parsed = parse_json(json);
  if (!parsed.is_ok()) return parsed.status();
  return check_run_report_value(parsed.value());
}

Status validate_bench_artifact_json(std::string_view json) {
  StatusOr<JsonValue> parsed = parse_json(json);
  if (!parsed.is_ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return invalid_argument("bench schema: document not an object");
  }
  const JsonValue* version = root.find("lbsa_bench_schema");
  if (version == nullptr || !version->is_number() ||
      !version->number_is_integer || version->int_value != 1) {
    return invalid_argument("bench schema: lbsa_bench_schema != 1");
  }
  const JsonValue* benchmarks = root.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    return invalid_argument("bench schema: benchmarks missing or not an array");
  }
  for (const JsonValue& row : benchmarks->array) {
    if (!row.is_object()) {
      return invalid_argument("bench schema: benchmarks element not an object");
    }
    const JsonValue* task = row.find("task");
    if (task == nullptr || !task->is_string() || task->string_value.empty()) {
      return invalid_argument("bench schema: benchmark task missing or empty");
    }
    // Reduction-sweep rows: "reduction" (when present) must be a known mode
    // and the associated measurements must be numbers.
    if (const JsonValue* reduction = row.find("reduction");
        reduction != nullptr) {
      if (!reduction->is_string() ||
          (reduction->string_value != "none" &&
           reduction->string_value != "symmetry" &&
           reduction->string_value != "por" &&
           reduction->string_value != "both")) {
        return invalid_argument(
            "bench schema: benchmark reduction not one of "
            "none/symmetry/por/both");
      }
    }
    // Engine-sweep rows: "engine" (when present) must be a known engine.
    if (const JsonValue* engine = row.find("engine"); engine != nullptr) {
      if (!engine->is_string() || (engine->string_value != "serial" &&
                                   engine->string_value != "parallel" &&
                                   engine->string_value != "workstealing" &&
                                   engine->string_value != "auto")) {
        return invalid_argument(
            "bench schema: benchmark engine not one of "
            "serial/parallel/workstealing/auto");
      }
    }
    // Obs-overhead rows: "obs" (when present) names which telemetry state
    // the row was measured under.
    if (const JsonValue* obs = row.find("obs"); obs != nullptr) {
      if (!obs->is_string() || (obs->string_value != "heartbeat" &&
                                obs->string_value != "disabled")) {
        return invalid_argument(
            "bench schema: benchmark obs not one of heartbeat/disabled");
      }
    }
    // Symmetry-cost rows: "sym_cost" (when present) names which side of the
    // reduction-off/on wall-clock pair the row is.
    if (const JsonValue* sym_cost = row.find("sym_cost");
        sym_cost != nullptr) {
      if (!sym_cost->is_string() || (sym_cost->string_value != "none" &&
                                     sym_cost->string_value != "symmetry")) {
        return invalid_argument(
            "bench schema: benchmark sym_cost not one of none/symmetry");
      }
    }
    // Serve-throughput rows: "serve" (when present) names the op an
    // lbsa_client load run drove against lbsa_serverd (docs/serving.md).
    if (const JsonValue* serve = row.find("serve"); serve != nullptr) {
      if (!serve->is_string() || (serve->string_value != "check" &&
                                  serve->string_value != "explore" &&
                                  serve->string_value != "fuzz")) {
        return invalid_argument(
            "bench schema: benchmark serve not one of check/explore/fuzz");
      }
    }
    for (const char* field : {"nodes", "nodes_per_sec", "reduction_ratio",
                              "threads", "threads_available", "requests",
                              "concurrency", "throughput_rps",
                              "latency_us_p50", "latency_us_p90",
                              "latency_us_p99"}) {
      if (const JsonValue* v = row.find(field); v != nullptr) {
        if (!v->is_number()) {
          return invalid_argument(std::string("bench schema: benchmark ") +
                                  field + " not a number");
        }
      }
    }
  }
  const JsonValue* reports = root.find("run_reports");
  if (reports == nullptr || !reports->is_object()) {
    return invalid_argument(
        "bench schema: run_reports missing or not an object");
  }
  for (const auto& [name, value] : reports->members) {
    Status s = check_run_report_value(value);
    if (!s.is_ok()) {
      return invalid_argument("bench schema: run_reports." + name + ": " +
                              s.message());
    }
  }
  return Status::ok();
}

namespace {

Status hierarchy_error(const std::string& what) {
  return invalid_argument("hierarchy schema: " + what);
}

// A required integer field with a lower bound; `where` names the row.
Status check_hierarchy_int(const JsonValue& obj, const char* field,
                           std::int64_t min, const std::string& where,
                           std::int64_t* out = nullptr) {
  const JsonValue* v = obj.find(field);
  if (v == nullptr || !v->is_number() || !v->number_is_integer) {
    return hierarchy_error(where + "." + field + " missing or not an integer");
  }
  if (v->int_value < min) {
    return hierarchy_error(where + "." + field + " < " +
                           std::to_string(min));
  }
  if (out != nullptr) *out = v->int_value;
  return Status::ok();
}

Status check_hierarchy_true(const JsonValue& obj, const char* field,
                            const std::string& where) {
  const JsonValue* v = obj.find(field);
  if (v == nullptr || v->kind != JsonValue::Kind::kBool) {
    return hierarchy_error(where + "." + field + " missing or not a bool");
  }
  if (!v->bool_value) {
    return hierarchy_error(where + "." + field + " is false");
  }
  return Status::ok();
}

// One "consensus"/"dac" check object: ok verdict plus sane graph counts.
Status check_hierarchy_check(const JsonValue& row, const char* field,
                             std::int64_t expected_processes,
                             const std::string& where) {
  const JsonValue* check = row.find(field);
  const std::string path = where + "." + field;
  if (check == nullptr || !check->is_object()) {
    return hierarchy_error(path + " missing or not an object");
  }
  if (Status s = check_hierarchy_true(*check, "ok", path); !s.is_ok()) {
    return s;
  }
  std::int64_t processes = 0;
  if (Status s = check_hierarchy_int(*check, "processes", 1, path, &processes);
      !s.is_ok()) {
    return s;
  }
  if (processes != expected_processes) {
    return hierarchy_error(path + ".processes != " +
                           std::to_string(expected_processes));
  }
  std::int64_t nodes = 0;
  std::int64_t nodes_full = 0;
  if (Status s = check_hierarchy_int(*check, "nodes", 1, path, &nodes);
      !s.is_ok()) {
    return s;
  }
  if (Status s = check_hierarchy_int(*check, "transitions", 1, path);
      !s.is_ok()) {
    return s;
  }
  if (Status s =
          check_hierarchy_int(*check, "nodes_full", 1, path, &nodes_full);
      !s.is_ok()) {
    return s;
  }
  if (nodes_full < nodes) {
    return hierarchy_error(path + ".nodes_full < nodes");
  }
  const JsonValue* ratio = check->find("reduction_ratio");
  if (ratio == nullptr || !ratio->is_number()) {
    return hierarchy_error(path + ".reduction_ratio missing or not a number");
  }
  if (ratio->number_value < 1.0) {
    return hierarchy_error(path + ".reduction_ratio < 1.0");
  }
  return Status::ok();
}

}  // namespace

Status validate_hierarchy_artifact_json(std::string_view json) {
  StatusOr<JsonValue> parsed = parse_json(json);
  if (!parsed.is_ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return hierarchy_error("document not an object");
  }
  const JsonValue* version = root.find("lbsa_hierarchy_schema");
  if (version == nullptr || !version->is_number() ||
      !version->number_is_integer || version->int_value != 1) {
    return hierarchy_error("lbsa_hierarchy_schema != 1");
  }
  std::int64_t n_min = 0;
  std::int64_t n_max = 0;
  if (Status s = check_hierarchy_int(root, "n_min", 2, "root", &n_min);
      !s.is_ok()) {
    return s;
  }
  if (Status s = check_hierarchy_int(root, "n_max", 2, "root", &n_max);
      !s.is_ok()) {
    return s;
  }
  if (n_max < n_min) return hierarchy_error("n_max < n_min");

  const JsonValue* rows = root.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return hierarchy_error("rows missing or not an array");
  }
  // Exact lexicographic coverage of [n_min, n_max] x [1, n].
  std::size_t index = 0;
  for (std::int64_t n = n_min; n <= n_max; ++n) {
    for (std::int64_t m = 1; m <= n; ++m, ++index) {
      const std::string where =
          "rows[" + std::to_string(index) + "] (n=" + std::to_string(n) +
          ",m=" + std::to_string(m) + ")";
      if (index >= rows->array.size()) {
        return hierarchy_error(where + " missing: sweep does not cover the "
                                       "full (n, m) grid");
      }
      const JsonValue& row = rows->array[index];
      if (!row.is_object()) return hierarchy_error(where + " not an object");
      std::int64_t row_n = 0;
      std::int64_t row_m = 0;
      if (Status s = check_hierarchy_int(row, "n", 2, where, &row_n);
          !s.is_ok()) {
        return s;
      }
      if (Status s = check_hierarchy_int(row, "m", 1, where, &row_m);
          !s.is_ok()) {
        return s;
      }
      if (row_n != n || row_m != m) {
        return hierarchy_error(where + " out of lexicographic order");
      }
      const JsonValue* object = row.find("object");
      if (object == nullptr || !object->is_string() ||
          object->string_value.empty()) {
        return hierarchy_error(where + ".object missing or empty");
      }
      std::int64_t level = 0;
      if (Status s =
              check_hierarchy_int(row, "declared_level", 1, where, &level);
          !s.is_ok()) {
        return s;
      }
      if (level != m) {
        return hierarchy_error(where + ".declared_level != m (Theorem 5.3)");
      }
      const JsonValue* source = row.find("level_source");
      if (source == nullptr || !source->is_string() ||
          source->string_value.empty()) {
        return hierarchy_error(where + ".level_source missing or empty");
      }
      if (Status s = check_hierarchy_check(row, "consensus", m, where);
          !s.is_ok()) {
        return s;
      }
      if (Status s = check_hierarchy_true(row, "consensus_ok_all_p", where);
          !s.is_ok()) {
        return s;
      }
      if (Status s = check_hierarchy_check(row, "dac", n, where);
          !s.is_ok()) {
        return s;
      }
      if (Status s = check_hierarchy_true(row, "matches_catalog", where);
          !s.is_ok()) {
        return s;
      }
    }
  }
  if (index != rows->array.size()) {
    return hierarchy_error("rows has " + std::to_string(rows->array.size()) +
                           " entries, expected " + std::to_string(index));
  }

  const JsonValue* provenance = root.find("provenance");
  if (provenance == nullptr || !provenance->is_object()) {
    return hierarchy_error("provenance missing or not an object");
  }
  const JsonValue* tool = provenance->find("tool");
  if (tool == nullptr || !tool->is_string() ||
      tool->string_value != "hierarchy_sweep_cli") {
    return hierarchy_error("provenance.tool != hierarchy_sweep_cli");
  }
  const JsonValue* engine = provenance->find("engine");
  if (engine == nullptr || !engine->is_string() ||
      (engine->string_value != "serial" &&
       engine->string_value != "parallel" &&
       engine->string_value != "workstealing" &&
       engine->string_value != "auto")) {
    return hierarchy_error(
        "provenance.engine not one of serial/parallel/workstealing/auto");
  }
  if (Status s =
          check_hierarchy_int(*provenance, "threads", 0, "provenance");
      !s.is_ok()) {
    return s;
  }
  if (Status s = check_hierarchy_int(*provenance, "threads_available", 1,
                                     "provenance");
      !s.is_ok()) {
    return s;
  }
  const JsonValue* reduction = provenance->find("reduction");
  if (reduction == nullptr || !reduction->is_string() ||
      reduction->string_value != "symmetry") {
    return hierarchy_error(
        "provenance.reduction != symmetry (sweep rows are pinned)");
  }
  return Status::ok();
}

Status write_text_file(const std::string& path, std::string_view text) {
  // Stage in a same-directory temp file, then rename: POSIX rename is
  // atomic, so a reader (or a second interrupt) never sees a torn artifact.
  const std::string staging = path + ".tmp";
  std::FILE* f = std::fopen(staging.c_str(), "wb");
  if (f == nullptr) {
    return internal_error("obs: cannot open '" + staging + "' for writing");
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flush_ok = std::fflush(f) == 0;
  const bool close_ok = std::fclose(f) == 0;
  if (written != text.size() || !flush_ok || !close_ok) {
    std::remove(staging.c_str());
    return internal_error("obs: short write to '" + staging + "'");
  }
  if (std::rename(staging.c_str(), path.c_str()) != 0) {
    std::remove(staging.c_str());
    return internal_error("obs: cannot rename '" + staging + "' to '" + path +
                          "'");
  }
  return Status::ok();
}

Status write_run_report(const RunReport& report, const std::string& path) {
  std::string json = report.to_json();
  Status s = validate_run_report_json(json);
  if (!s.is_ok()) return s;
  json += '\n';
  return write_text_file(path, json);
}

}  // namespace lbsa::obs
