// Instrumentation entry points. Hot paths use these macros rather than the
// Registry/Tracer APIs directly, for two reasons:
//
//   * Handle caching. The enabled expansion declares a function-local static
//     metric pointer, so name lookup happens once per site, not per call.
//   * Compile-time erasure. Defining LBSA_OBS_DISABLED for a translation
//     unit replaces every macro with a no-op that still type-checks its
//     arguments (so the disabled build can't rot). Only call sites change —
//     class definitions are identical in both modes, so mixing instrumented
//     and erased TUs in one binary is ODR-safe.
//
// Runtime cost when enabled-at-compile-time but switched off (the default):
// one relaxed atomic load per call — see obs/metrics.h.
//
//   LBSA_OBS_COUNTER_ADD("explore.nodes", 1);
//   LBSA_OBS_COUNTER_ADD_V("explore.intern.probes", n);   // volatile metric
//   LBSA_OBS_GAUGE_SET("explore.max_depth", depth);
//   LBSA_OBS_GAUGE_MAX("fuzz.pool.peak", pool.size());
//   LBSA_OBS_HISTOGRAM_OBSERVE("explore.frontier_size", frontier.size());
//   LBSA_OBS_SPAN(span, "explore.level", lbsa::obs::kCatPhase, /*lane=*/0);
//   span.arg("level", depth);
#ifndef LBSA_OBS_OBS_H_
#define LBSA_OBS_OBS_H_

#include "obs/metrics.h"
#include "obs/trace.h"

#if !defined(LBSA_OBS_DISABLED)

#define LBSA_OBS_COUNTER_ADD(name, delta)                              \
  do {                                                                 \
    static ::lbsa::obs::Counter* const lbsa_obs_counter_ =             \
        ::lbsa::obs::Registry::global().counter(                       \
            (name), ::lbsa::obs::Stability::kStable);                  \
    lbsa_obs_counter_->add(static_cast<std::uint64_t>(delta));         \
  } while (0)

#define LBSA_OBS_COUNTER_ADD_V(name, delta)                            \
  do {                                                                 \
    static ::lbsa::obs::Counter* const lbsa_obs_counter_ =             \
        ::lbsa::obs::Registry::global().counter(                       \
            (name), ::lbsa::obs::Stability::kVolatile);                \
    lbsa_obs_counter_->add(static_cast<std::uint64_t>(delta));         \
  } while (0)

#define LBSA_OBS_GAUGE_SET(name, value)                                \
  do {                                                                 \
    static ::lbsa::obs::Gauge* const lbsa_obs_gauge_ =                 \
        ::lbsa::obs::Registry::global().gauge(                         \
            (name), ::lbsa::obs::Stability::kStable);                  \
    lbsa_obs_gauge_->set(static_cast<std::int64_t>(value));            \
  } while (0)

#define LBSA_OBS_GAUGE_SET_V(name, value)                              \
  do {                                                                 \
    static ::lbsa::obs::Gauge* const lbsa_obs_gauge_ =                 \
        ::lbsa::obs::Registry::global().gauge(                         \
            (name), ::lbsa::obs::Stability::kVolatile);                \
    lbsa_obs_gauge_->set(static_cast<std::int64_t>(value));            \
  } while (0)

#define LBSA_OBS_GAUGE_MAX(name, value)                                \
  do {                                                                 \
    static ::lbsa::obs::Gauge* const lbsa_obs_gauge_ =                 \
        ::lbsa::obs::Registry::global().gauge(                         \
            (name), ::lbsa::obs::Stability::kStable);                  \
    lbsa_obs_gauge_->observe_max(static_cast<std::int64_t>(value));    \
  } while (0)

#define LBSA_OBS_HISTOGRAM_OBSERVE(name, value)                        \
  do {                                                                 \
    static ::lbsa::obs::Histogram* const lbsa_obs_histogram_ =         \
        ::lbsa::obs::Registry::global().histogram(                     \
            (name), ::lbsa::obs::Stability::kStable);                  \
    lbsa_obs_histogram_->observe(static_cast<std::uint64_t>(value));   \
  } while (0)

#define LBSA_OBS_HISTOGRAM_OBSERVE_V(name, value)                      \
  do {                                                                 \
    static ::lbsa::obs::Histogram* const lbsa_obs_histogram_ =         \
        ::lbsa::obs::Registry::global().histogram(                     \
            (name), ::lbsa::obs::Stability::kVolatile);                \
    lbsa_obs_histogram_->observe(static_cast<std::uint64_t>(value));   \
  } while (0)

// Declares a local ::lbsa::obs::Span named `var`.
#define LBSA_OBS_SPAN(var, name, cat, lane) \
  ::lbsa::obs::Span var((name), (cat), (lane))

#else  // LBSA_OBS_DISABLED

namespace lbsa::obs::internal {
// Sinks that type-check macro arguments in the erased build, then vanish.
constexpr void obs_sink_name(const char*) {}
constexpr void obs_sink_u64(std::uint64_t) {}
constexpr void obs_sink_i64(std::int64_t) {}
}  // namespace lbsa::obs::internal

#define LBSA_OBS_COUNTER_ADD(name, delta)                                \
  do {                                                                   \
    ::lbsa::obs::internal::obs_sink_name(name);                          \
    ::lbsa::obs::internal::obs_sink_u64(                                 \
        static_cast<std::uint64_t>(delta));                              \
  } while (0)
#define LBSA_OBS_COUNTER_ADD_V(name, delta) LBSA_OBS_COUNTER_ADD(name, delta)
#define LBSA_OBS_GAUGE_SET(name, value)                                  \
  do {                                                                   \
    ::lbsa::obs::internal::obs_sink_name(name);                          \
    ::lbsa::obs::internal::obs_sink_i64(static_cast<std::int64_t>(value)); \
  } while (0)
#define LBSA_OBS_GAUGE_SET_V(name, value) LBSA_OBS_GAUGE_SET(name, value)
#define LBSA_OBS_GAUGE_MAX(name, value) LBSA_OBS_GAUGE_SET(name, value)
#define LBSA_OBS_HISTOGRAM_OBSERVE(name, value)                          \
  LBSA_OBS_COUNTER_ADD(name, value)
#define LBSA_OBS_HISTOGRAM_OBSERVE_V(name, value)                        \
  LBSA_OBS_COUNTER_ADD(name, value)

#define LBSA_OBS_SPAN(var, name, cat, lane)          \
  ::lbsa::obs::NoopSpan var;                         \
  ::lbsa::obs::internal::obs_sink_name(name);        \
  ::lbsa::obs::internal::obs_sink_name(cat);         \
  ::lbsa::obs::internal::obs_sink_i64(static_cast<std::int64_t>(lane))

#endif  // LBSA_OBS_DISABLED

#endif  // LBSA_OBS_OBS_H_
