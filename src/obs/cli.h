// Shared command-line plumbing for observability flags. Every tool that
// supports --metrics-json / --trace-out / --heartbeat-out routes its
// argument loop through an ObsCli:
//
//   obs::ObsCli obs_cli("my_tool");
//   for (int i = 1; i < argc; ++i) {
//     if (obs_cli.consume(argc, argv, &i)) continue;
//     ... tool-specific flags ...
//   }
//   obs_cli.start_heartbeat(task, obs::derive_run_id(...));
//   ... run the workload, filling an obs::RunReport skeleton ...
//   if (Status s = obs_cli.finish(&report); !s.is_ok()) { ... }
//
// consume() recognizes (in `--flag=VALUE` and `--flag VALUE` forms)
// `--metrics-json PATH`, `--trace-out PATH`, `--heartbeat-out PATH`, and
// `--heartbeat-every SECONDS`, and flips the corresponding global sink on,
// so instrumentation in the libraries starts recording. `--heartbeat-out`
// arms only the engines' Progress publishing (heartbeat_enabled()), not the
// metrics registry — the sampler snapshots whatever the registry holds, so
// combine with --metrics-json to get registry rows inside heartbeat lines;
// alone it keeps sampling overhead under the perf gate's 2%. finish() stops the
// heartbeat sampler (appending its "final":true line), stamps wall time and
// the metrics snapshot into the report plus a "timeseries" section built
// from the captured ticks, then writes the RunReport (schema-validated) and
// the Chrome trace JSON to the requested paths. With no obs flag given,
// both calls are no-ops and the sinks stay off — the near-zero-cost
// default.
//
// The LBSA_OBS_DISABLED environment variable (set and not "0") is a runtime
// kill switch: obs flags are still accepted (with a one-time stderr note)
// but no sink turns on and no artifact is written — the overhead-comparison
// lever used by perf_smoke.sh and the bench's obs-overhead rows.
#ifndef LBSA_OBS_CLI_H_
#define LBSA_OBS_CLI_H_

#include <chrono>
#include <memory>
#include <string>

#include "base/status.h"
#include "obs/heartbeat.h"
#include "obs/report.h"

namespace lbsa::obs {

class ObsCli {
 public:
  explicit ObsCli(std::string tool);
  ~ObsCli();

  // Returns true if argv[*i] was an observability flag (and advances *i past
  // a separate value argument if one was consumed). Exits with a usage error
  // on a flag missing its value.
  bool consume(int argc, char** argv, int* i);

  bool metrics_requested() const { return !metrics_path_.empty(); }
  bool trace_requested() const { return !trace_path_.empty(); }
  bool heartbeat_requested() const { return !heartbeat_path_.empty(); }
  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& trace_path() const { return trace_path_; }
  const std::string& heartbeat_path() const { return heartbeat_path_; }
  std::uint64_t heartbeat_interval_ms() const {
    return heartbeat_interval_ms_;
  }

  // Opens the heartbeat stream and starts the background sampler. No-op
  // (ok) unless --heartbeat-out was given. The run_id should come from
  // derive_run_id over the tool's stable inputs so a resumed run appends to
  // the same stream as a verifiable continuation.
  Status start_heartbeat(const std::string& task, const std::string& run_id);

  // Completes `report` (tool name, wall_seconds, metrics snapshot, and a
  // "timeseries" section when a heartbeat sampler ran; the caller has
  // already filled task/params/sections) and writes the requested
  // artifacts. Safe to call on every exit path — including interrupt/
  // deadline exits — and artifacts are written atomically. No-op when no
  // obs flag was given.
  Status finish(RunReport* report);

 private:
  std::string tool_;
  std::string metrics_path_;
  std::string trace_path_;
  std::string heartbeat_path_;
  std::uint64_t heartbeat_interval_ms_ = 1000;
  bool disabled_ = false;        // LBSA_OBS_DISABLED kill switch
  bool disabled_warned_ = false;
  std::unique_ptr<HeartbeatSampler> heartbeat_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lbsa::obs

#endif  // LBSA_OBS_CLI_H_
