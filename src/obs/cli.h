// Shared command-line plumbing for observability flags. Every tool that
// supports --metrics-json / --trace-out routes its argument loop through an
// ObsCli:
//
//   obs::ObsCli obs_cli("my_tool");
//   for (int i = 1; i < argc; ++i) {
//     if (obs_cli.consume(argc, argv, &i)) continue;
//     ... tool-specific flags ...
//   }
//   ... run the workload, filling an obs::RunReport skeleton ...
//   if (Status s = obs_cli.finish(&report); !s.is_ok()) { ... }
//
// consume() recognizes `--metrics-json=PATH`, `--metrics-json PATH`,
// `--trace-out=PATH`, `--trace-out PATH` and flips the corresponding global
// sink on, so instrumentation in the libraries starts recording. finish()
// stamps wall time and the metrics snapshot into the report, then writes the
// RunReport (schema-validated) and the Chrome trace JSON to the requested
// paths. With neither flag given, both calls are no-ops and the sinks stay
// off — the near-zero-cost default.
#ifndef LBSA_OBS_CLI_H_
#define LBSA_OBS_CLI_H_

#include <chrono>
#include <string>

#include "base/status.h"
#include "obs/report.h"

namespace lbsa::obs {

class ObsCli {
 public:
  explicit ObsCli(std::string tool);

  // Returns true if argv[*i] was an observability flag (and advances *i past
  // a separate value argument if one was consumed). Exits with a usage error
  // on a flag missing its value.
  bool consume(int argc, char** argv, int* i);

  bool metrics_requested() const { return !metrics_path_.empty(); }
  bool trace_requested() const { return !trace_path_.empty(); }
  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& trace_path() const { return trace_path_; }

  // Completes `report` (tool name, wall_seconds, metrics snapshot; the caller
  // has already filled task/params/sections) and writes the requested
  // artifacts. No-op when neither flag was given.
  Status finish(RunReport* report) const;

 private:
  std::string tool_;
  std::string metrics_path_;
  std::string trace_path_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lbsa::obs

#endif  // LBSA_OBS_CLI_H_
