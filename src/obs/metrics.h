// Low-overhead process-wide metrics: named counters, gauges, and log2-bucket
// histograms behind one global Registry.
//
// Design goals, in order:
//   1. Near-zero cost when no sink is attached. Every mutation starts with a
//      single relaxed atomic load of the global enabled flag; when metrics
//      are off (the default) that branch is the whole cost. Sites that want
//      literal zero cost compile against the LBSA_OBS_DISABLED macro layer
//      in obs/obs.h, which erases the calls entirely.
//   2. Scalable accumulation. Counters and histograms shard their cells by a
//      thread-local stripe index (each thread owns a cache line), so worker
//      pools — the parallel explorer, the blind fuzzer — never contend on a
//      hot counter.
//   3. Deterministic snapshots. A snapshot merges the stripes by summation
//      and sorts rows by metric name, so any quantity whose *total* is
//      schedule-independent reports byte-identically for every thread
//      count. Metrics whose totals are inherently schedule-dependent (probe
//      counts of a concurrent table, live execution tallies that overrun a
//      deterministic cutoff) are registered as Stability::kVolatile and are
//      excluded from MetricsSnapshot::stable_json(), the string the
//      determinism tests compare.
//
// Handles returned by the Registry are valid for the process lifetime;
// instrumentation sites cache them in function-local statics (see the
// LBSA_OBS_* macros in obs/obs.h).
#ifndef LBSA_OBS_METRICS_H_
#define LBSA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lbsa::obs {

// Stripe count for sharded accumulation (counters, histograms). A modest
// power of two: enough that every hardware thread of a typical worker pool
// lands on its own cache line, small enough that snapshot merges stay cheap.
inline constexpr int kMetricStripes = 16;

// Log2 bucketing: bucket 0 holds value 0, bucket 1+floor(log2(v)) holds
// v >= 1; 65 buckets cover the whole uint64 range.
inline constexpr int kHistogramBuckets = 65;

// Whether totals are schedule-independent (byte-identical across thread
// counts and engines) or may legitimately vary run to run.
enum class Stability { kStable, kVolatile };

// Process-wide metrics switch. Off by default; CLIs flip it on when a
// --metrics-json sink is attached, tests flip it around measured regions.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

namespace internal {
// Stable per-thread stripe index in [0, kMetricStripes).
int this_thread_stripe();
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace internal

inline bool metrics_enabled() {
  return internal::enabled_flag().load(std::memory_order_relaxed);
}

// A monotone sum. add() is wait-free: one relaxed fetch_add on the calling
// thread's stripe.
class Counter {
 public:
  Counter(std::string name, Stability stability)
      : name_(std::move(name)), stability_(stability) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) {
    if (!metrics_enabled()) return;
    cells_[internal::this_thread_stripe()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const Cell& cell : cells_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() {
    for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }
  Stability stability() const { return stability_; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::string name_;
  Stability stability_;
  Cell cells_[kMetricStripes];
};

// A point-in-time level. set() is last-write-wins and therefore only
// deterministic when called from serial sections (a coordinator thread, an
// end-of-run summary); observe_max() folds a running maximum and is
// deterministic whenever the *set* of observed values is.
class Gauge {
 public:
  Gauge(std::string name, Stability stability)
      : name_(std::move(name)), stability_(stability) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t value) {
    if (!metrics_enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }

  void observe_max(std::int64_t value) {
    if (!metrics_enabled()) return;
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < value && !value_.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  Stability stability() const { return stability_; }

 private:
  std::string name_;
  Stability stability_;
  std::atomic<std::int64_t> value_{0};
};

// A log2-bucket distribution: count, sum, and 65 buckets, all striped like
// Counter so concurrent observers touch only their own cache lines.
class Histogram {
 public:
  Histogram(std::string name, Stability stability)
      : name_(std::move(name)), stability_(stability) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static int bucket_of(std::uint64_t value) {
    if (value == 0) return 0;
    int bucket = 1;
    while (value >>= 1) ++bucket;
    return bucket;  // 1 + floor(log2(v)), in [1, 64]
  }

  void observe(std::uint64_t value) {
    if (!metrics_enabled()) return;
    Stripe& stripe = stripes_[internal::this_thread_stripe()];
    stripe.count.fetch_add(1, std::memory_order_relaxed);
    stripe.sum.fetch_add(value, std::memory_order_relaxed);
    stripe.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    std::uint64_t sum = 0;
    for (const Stripe& s : stripes_) {
      sum += s.count.load(std::memory_order_relaxed);
    }
    return sum;
  }
  std::uint64_t sum() const {
    std::uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.sum.load(std::memory_order_relaxed);
    }
    return total;
  }
  // Merged buckets, trailing zeros trimmed.
  std::vector<std::uint64_t> buckets() const;

  void reset();

  const std::string& name() const { return name_; }
  Stability stability() const { return stability_; }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> buckets[kHistogramBuckets] = {};
  };
  std::string name_;
  Stability stability_;
  Stripe stripes_[kMetricStripes];
};

// Quantiles extracted from a log2-bucket histogram. Each reported value is
// the inclusive UPPER bound of the bucket holding the rank-ceil(q*count)
// sample: bucket 0 reports 0, bucket b in [1, 64) reports 2^b - 1, and the
// top bucket (64) reports UINT64_MAX (overflow bucket — its upper bound is
// the domain's). Error bound: a sample in bucket b >= 1 lies in
// [2^(b-1), 2^b - 1], so exact_q <= reported_q < 2 * exact_q — the reported
// quantile never understates and overstates by strictly less than 2x. An
// empty histogram reports all zeros.
struct HistogramQuantiles {
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t max = 0;
};

// Inclusive upper bound of log2 bucket `bucket` (see HistogramQuantiles).
std::uint64_t histogram_bucket_upper_bound(int bucket);

// Quantiles from merged buckets (trailing zeros may be trimmed); `count`
// must equal the bucket sum (Histogram::count() vs buckets()).
HistogramQuantiles quantiles_from_buckets(
    const std::vector<std::uint64_t>& buckets, std::uint64_t count);

// One merged, name-sorted view of every registered metric.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    Stability stability;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    Stability stability;
    std::int64_t value = 0;
  };
  struct HistogramRow {
    std::string name;
    Stability stability;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buckets;  // trailing zeros trimmed
    HistogramQuantiles quantiles;        // derived from buckets at snapshot
  };

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  // JSON object:
  //   {"counters":{...},"gauges":{...},"histograms":{...}
  //    [,"volatile":{"counters":{...},...}]}
  // Rows are name-sorted, so equal snapshots serialize byte-identically.
  std::string to_json(bool include_volatile = true) const;
  // Only the schedule-independent metrics — the string the determinism
  // tests compare across thread counts.
  std::string stable_json() const { return to_json(false); }
};

// The process-wide registry. Metric handles are unique per name: a second
// registration of the same name returns the existing handle (and aborts if
// the kind or stability disagrees — one name, one meaning).
class Registry {
 public:
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(std::string_view name,
                   Stability stability = Stability::kStable);
  Gauge* gauge(std::string_view name,
               Stability stability = Stability::kStable);
  Histogram* histogram(std::string_view name,
                       Stability stability = Stability::kStable);

  MetricsSnapshot snapshot() const;

  // Zeroes every registered metric (handles stay valid). Establish
  // quiescence first: concurrent mutators make the result meaningless.
  void reset_values();

 private:
  mutable std::mutex mu_;
  // deques: stable addresses across registration.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

inline void set_metrics_enabled(bool enabled) {
  internal::enabled_flag().store(enabled, std::memory_order_relaxed);
}

}  // namespace lbsa::obs

#endif  // LBSA_OBS_METRICS_H_
