#include "obs/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lbsa::obs {

namespace {

// Matches `--flag=VALUE` or `--flag VALUE`; fills *value and returns true.
bool match_flag(const char* flag, int argc, char** argv, int* i,
                std::string* value) {
  const char* arg = argv[*i];
  const std::size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) != 0) return false;
  if (arg[flag_len] == '=') {
    *value = arg + flag_len + 1;
    return true;
  }
  if (arg[flag_len] != '\0') return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "error: %s requires a path argument\n", flag);
    std::exit(2);
  }
  *value = argv[++*i];
  return true;
}

}  // namespace

ObsCli::ObsCli(std::string tool)
    : tool_(std::move(tool)), start_(std::chrono::steady_clock::now()) {}

bool ObsCli::consume(int argc, char** argv, int* i) {
  if (match_flag("--metrics-json", argc, argv, i, &metrics_path_)) {
    set_metrics_enabled(true);
    return true;
  }
  if (match_flag("--trace-out", argc, argv, i, &trace_path_)) {
    set_tracing_enabled(true);
    return true;
  }
  return false;
}

Status ObsCli::finish(RunReport* report) const {
  if (!metrics_requested() && !trace_requested()) return Status::ok();
  report->tool = tool_;
  report->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  report->metrics = Registry::global().snapshot();
  if (metrics_requested()) {
    Status s = write_run_report(*report, metrics_path_);
    if (!s.is_ok()) return s;
  }
  if (trace_requested()) {
    std::string json = Tracer::global().to_chrome_json();
    json += '\n';
    Status s = write_text_file(trace_path_, json);
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

}  // namespace lbsa::obs
