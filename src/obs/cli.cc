#include "obs/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lbsa::obs {

namespace {

// Matches `--flag=VALUE` or `--flag VALUE`; fills *value and returns true.
bool match_flag(const char* flag, int argc, char** argv, int* i,
                std::string* value) {
  const char* arg = argv[*i];
  const std::size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) != 0) return false;
  if (arg[flag_len] == '=') {
    *value = arg + flag_len + 1;
    return true;
  }
  if (arg[flag_len] != '\0') return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "error: %s requires a value argument\n", flag);
    std::exit(2);
  }
  *value = argv[++*i];
  return true;
}

bool obs_disabled_by_env() {
  const char* value = std::getenv("LBSA_OBS_DISABLED");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

}  // namespace

ObsCli::ObsCli(std::string tool)
    : tool_(std::move(tool)),
      disabled_(obs_disabled_by_env()),
      start_(std::chrono::steady_clock::now()) {}

ObsCli::~ObsCli() = default;

bool ObsCli::consume(int argc, char** argv, int* i) {
  std::string value;
  bool matched = false;
  if (match_flag("--metrics-json", argc, argv, i, &value)) {
    metrics_path_ = value;
    matched = true;
  } else if (match_flag("--trace-out", argc, argv, i, &value)) {
    trace_path_ = value;
    matched = true;
  } else if (match_flag("--heartbeat-out", argc, argv, i, &value)) {
    heartbeat_path_ = value;
    matched = true;
  } else if (match_flag("--heartbeat-every", argc, argv, i, &value)) {
    char* end = nullptr;
    const double seconds = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || !(seconds > 0.0)) {
      std::fprintf(stderr,
                   "error: --heartbeat-every requires a positive number of "
                   "seconds, got '%s'\n",
                   value.c_str());
      std::exit(2);
    }
    heartbeat_interval_ms_ = static_cast<std::uint64_t>(seconds * 1000.0);
    if (heartbeat_interval_ms_ == 0) heartbeat_interval_ms_ = 1;
    return true;
  }
  if (!matched) return false;
  if (disabled_) {
    if (!disabled_warned_) {
      std::fprintf(stderr,
                   "%s: LBSA_OBS_DISABLED is set; observability flags are "
                   "accepted but no artifacts will be written\n",
                   tool_.c_str());
      disabled_warned_ = true;
    }
    metrics_path_.clear();
    trace_path_.clear();
    heartbeat_path_.clear();
    return true;
  }
  // --heartbeat-out deliberately does NOT flip the metrics switch: the
  // sampler snapshots whatever the registry holds, and forcing per-node
  // counter accounting on would make heartbeats cost what --metrics-json
  // costs instead of the <2% the perf gate holds them to. Pass both flags
  // to get registry rows inside the heartbeat lines.
  if (!metrics_path_.empty()) set_metrics_enabled(true);
  if (!trace_path_.empty()) set_tracing_enabled(true);
  return true;
}

Status ObsCli::start_heartbeat(const std::string& task,
                               const std::string& run_id) {
  if (!heartbeat_requested()) return Status::ok();
  HeartbeatOptions options;
  options.path = heartbeat_path_;
  options.tool = tool_;
  options.task = task;
  options.run_id = run_id;
  options.interval_ms = heartbeat_interval_ms_;
  heartbeat_ = std::make_unique<HeartbeatSampler>(std::move(options));
  return heartbeat_->start();
}

Status ObsCli::finish(RunReport* report) {
  if (heartbeat_ != nullptr) {
    if (Status s = heartbeat_->stop(); !s.is_ok()) return s;
  }
  if (!metrics_requested() && !trace_requested()) return Status::ok();
  report->tool = tool_;
  report->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  report->metrics = Registry::global().snapshot();
  if (heartbeat_ != nullptr) {
    const auto& ticks = heartbeat_->ticks();
    JsonWriter w;
    w.begin_object();
    w.key("run_id");
    w.value_string(heartbeat_->run_id());
    w.key("interval_ms");
    w.value_uint(heartbeat_->interval_ms());
    w.key("ticks");
    w.value_uint(ticks.size());
    w.key("uptime_ms");
    w.begin_array();
    for (const auto& t : ticks) w.value_uint(t.uptime_ms);
    w.end_array();
    w.key("nodes_total");
    w.begin_array();
    for (const auto& t : ticks) w.value_uint(t.nodes_total);
    w.end_array();
    w.key("frontier_size");
    w.begin_array();
    for (const auto& t : ticks) w.value_uint(t.frontier_size);
    w.end_array();
    w.key("nodes_per_sec");
    w.begin_array();
    for (const auto& t : ticks) w.value_double(t.nodes_per_sec);
    w.end_array();
    w.end_object();
    report->sections.emplace_back("timeseries", std::move(w).str());
  }
  if (metrics_requested()) {
    Status s = write_run_report(*report, metrics_path_);
    if (!s.is_ok()) return s;
  }
  if (trace_requested()) {
    std::string json = Tracer::global().to_chrome_json();
    json += '\n';
    Status s = write_text_file(trace_path_, json);
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

}  // namespace lbsa::obs
