// Live run telemetry (docs/observability.md, "Heartbeats"): a sampler that
// appends one strict-JSON line per tick to a JSONL stream while a run is in
// flight, plus the process-wide Progress state the exploration engines
// publish into.
//
// The heartbeat stream is the push counterpart of the pull-style RunReport:
// a RunReport describes a finished run, a heartbeat stream describes a run
// *while it happens* — levels completed, frontier size, rolling nodes/sec,
// an ETA once the frontier is draining, checkpoint writes, and per-worker
// utilization (busy flag, nodes expanded, steals, intern CAS retries).
// `tools/lbsa_watch` tails the stream; `report_check heartbeat` validates
// it (strict JSON per line, contiguous sequence numbers, non-decreasing
// cumulative counters, constant run_id).
//
// Continuity across checkpoint/resume: the run_id is derived from the
// stable run inputs (derive_run_id), so a resumed run appending to the same
// stream produces a verifiable continuation — the sampler picks up the
// sequence numbering after the last line, and the engines seed cumulative
// counters from the checkpoint so nodes_total/transitions_total stay
// monotone across the splice. uptime_ms and checkpoint_writes are
// per-session and intentionally excluded from the monotonicity checks.
#ifndef LBSA_OBS_HEARTBEAT_H_
#define LBSA_OBS_HEARTBEAT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"

namespace lbsa::obs {

inline constexpr int kHeartbeatSchemaVersion = 1;
inline constexpr int kHeartbeatSummarySchemaVersion = 1;

// Per-worker utilization slots published by the parallel engines. A fixed
// cap keeps the slots allocation-free and index-stable for samplers.
inline constexpr int kProgressMaxWorkers = 64;

// Process-wide heartbeat switch, mirroring metrics_enabled(): engines
// publish live Progress only while some sampler is active, so the fast
// path of an un-observed run is a single relaxed load.
namespace internal_heartbeat {
inline std::atomic<bool>& heartbeat_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace internal_heartbeat

inline bool heartbeat_enabled() {
  return internal_heartbeat::heartbeat_flag().load(std::memory_order_relaxed);
}
inline void set_heartbeat_enabled(bool enabled) {
  internal_heartbeat::heartbeat_flag().store(enabled,
                                             std::memory_order_relaxed);
}

// Live run-lifecycle state, written by the exploration engines at their
// natural quiescence points (level boundaries, work-chunk boundaries) and
// read by the heartbeat sampler thread. nodes_total and transitions_total
// are CUMULATIVE for the process (a hierarchy sweep's cells accumulate;
// resumed runs are seeded with the checkpoint's totals), so sampled values
// are non-decreasing — the invariant `report_check heartbeat` enforces.
// levels_completed and frontier_size are gauges of the current exploration.
class Progress {
 public:
  static Progress& global();

  struct WorkerSlot {
    std::atomic<std::uint64_t> busy{0};      // 1 while expanding a chunk
    std::atomic<std::uint64_t> expanded{0};  // nodes expanded (this engine)
    std::atomic<std::uint64_t> steals{0};    // work-stealing only
    std::atomic<std::uint64_t> cas_retries{0};  // intern CAS retries
  };

  std::atomic<std::uint64_t> nodes_total{0};
  std::atomic<std::uint64_t> transitions_total{0};
  std::atomic<std::uint64_t> levels_completed{0};
  std::atomic<std::uint64_t> frontier_size{0};
  std::atomic<std::uint64_t> checkpoint_writes{0};

  // Publishes the pool size for the sampler's workers array and clears the
  // busy flags; cumulative per-slot counters are left alone (they are
  // per-worker gauges, not monotone-checked).
  void configure_workers(int n);
  int worker_count() const {
    return static_cast<int>(worker_count_.load(std::memory_order_acquire));
  }
  // nullptr when i is outside [0, min(worker_count, kProgressMaxWorkers)).
  WorkerSlot* worker(int i);

  // Monotone store: raises `cell` to at least `value` (CAS loop). The
  // work-stealing engine's workers race absolute republications through
  // this so a stale smaller value can never un-publish a larger one.
  static void raise(std::atomic<std::uint64_t>& cell, std::uint64_t value);

  // Zeroes everything (tests / fresh sessions). Establish quiescence first.
  void reset();

 private:
  std::atomic<std::uint32_t> worker_count_{0};
  WorkerSlot slots_[kProgressMaxWorkers];
};

// Deterministic run identity from the stable run inputs (16 hex chars).
// Engine and thread count are deliberately excluded — the same task
// explored by any engine is the same run — and a resume passes the same
// inputs (enforced by the checkpoint fingerprint for the explorer), so the
// id survives checkpoint/resume.
//
// `nonce` disambiguates otherwise-identical runs sharing one stream
// namespace: two concurrent server requests for the same (task, budget)
// would collide without it and validate_heartbeat_stream would conflate
// their streams. The caller keeps the nonce stable across checkpoint/
// resume of the same logical request so continuation still works. An
// empty nonce is not hashed, so ids from pre-nonce callers are unchanged.
std::string derive_run_id(std::string_view tool, std::string_view task,
                          std::string_view mode, std::uint64_t budget,
                          std::string_view nonce = {});

struct HeartbeatOptions {
  std::string path;  // JSONL stream, opened in append mode
  std::string tool;
  std::string task;
  std::string run_id;                 // derive_run_id(...)
  std::uint64_t interval_ms = 1000;   // background-thread tick interval
  // Injectable monotonic clock (milliseconds); tests pin this to a fake so
  // tick contents are deterministic. Defaults to steady_clock.
  std::function<std::uint64_t()> clock_ms;
  // When set, each heartbeat line (strict JSON, no trailing newline) goes
  // to this callback instead of a file and `path` is ignored — the server
  // frames lines onto client sockets this way. The sink is invoked under
  // the sampler's tick lock, so it must not re-enter the sampler; there is
  // no continuation check (the caller owns the transport's history).
  std::function<void(std::string_view)> sink;
};

// Appends one strict-JSON heartbeat line per tick. Two driving modes:
// manual tick() for deterministic tests, or start()/stop() for a real
// background sampling thread. stop() always appends a final line with
// "final":true — the signal lbsa_watch exits on.
class HeartbeatSampler {
 public:
  explicit HeartbeatSampler(HeartbeatOptions options);
  ~HeartbeatSampler();

  // Opens the stream. If the file already holds heartbeat lines, the last
  // line must carry the same run_id (FAILED_PRECONDITION otherwise) and
  // sequence numbering continues after it — the checkpoint/resume splice.
  Status open();
  // Samples Progress + the metrics Registry and appends one line.
  void tick() { write_tick(false); }
  // open() + a background thread ticking every interval_ms.
  Status start();
  // Joins the thread (if any), appends the final line, closes the stream.
  // Idempotent. Flips heartbeat_enabled off when the last sampler stops.
  Status stop();

  // Captured timeseries, for the RunReport v2 "timeseries" section.
  struct Tick {
    std::uint64_t uptime_ms = 0;
    std::uint64_t nodes_total = 0;
    std::uint64_t frontier_size = 0;
    double nodes_per_sec = 0.0;
  };
  const std::vector<Tick>& ticks() const { return ticks_; }
  const std::string& run_id() const { return options_.run_id; }
  std::uint64_t interval_ms() const { return options_.interval_ms; }
  bool opened() const { return file_ != nullptr || sink_open_; }

 private:
  void write_tick(bool final);
  void thread_main();

  HeartbeatOptions options_;
  std::FILE* file_ = nullptr;
  bool sink_open_ = false;     // sink-mode stream is live
  bool enabled_held_ = false;  // this sampler holds a heartbeat_enabled ref
  std::uint64_t next_seq_ = 0;
  std::uint64_t start_ms_ = 0;
  std::vector<Tick> ticks_;  // manual + timed ticks, excludes the final line
  // Rolling window for nodes/sec and the frontier-trend ETA.
  struct Sample {
    std::uint64_t t_ms = 0;
    std::uint64_t nodes = 0;
    std::uint64_t frontier = 0;
  };
  std::vector<Sample> window_;  // last <= 8 samples
  std::mutex mu_;               // serializes tick()/stop() vs the thread
  std::thread thread_;
  bool running_ = false;
  bool stopped_ = false;
  std::condition_variable cv_;
  bool quit_ = false;
};

// Validates a heartbeat JSONL stream: every line strict JSON with the
// required field set, heartbeat_version == 1, constant run_id/tool/task,
// sequence numbers contiguous (+1 per line; the first line may start
// anywhere — a tail is a valid stream), and cumulative counters
// (nodes_total, transitions_total) non-decreasing. "final":true lines may
// appear mid-stream: a resumed run appends after its predecessor's final
// line.
Status validate_heartbeat_stream(std::string_view text);

// Validates an lbsa_watch --summary-json digest.
Status validate_heartbeat_summary_json(std::string_view json);

// Dispatch for `report_check heartbeat FILE`: a single JSON object with
// heartbeat_summary_version is checked as a digest, anything else as a
// JSONL stream.
Status validate_heartbeat_file(std::string_view text);

}  // namespace lbsa::obs

#endif  // LBSA_OBS_HEARTBEAT_H_
