#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/check.h"

namespace lbsa::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::value_double(double value) {
  comma();
  // JSON has no inf/nan. Silently clamping would launder a wrong number
  // into every downstream consumer; a non-finite value here is always an
  // upstream arithmetic bug (e.g. an unguarded division), so refuse.
  LBSA_CHECK_MSG(std::isfinite(value),
                 "value_double: non-finite value (JSON cannot represent "
                 "inf/nan; fix the producer)");
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out_ += buf;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> parse() {
    JsonValue value;
    Status s = parse_value(&value, 0);
    if (!s.is_ok()) return s;
    skip_ws();
    if (pos_ != text_.size()) {
      return invalid_argument("json: trailing characters at offset " +
                              std::to_string(pos_));
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status fail(const std::string& what) {
    return invalid_argument("json: " + what + " at offset " +
                            std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return parse_string(&out->string_value);
    }
    if (c == 't' || c == 'f') return parse_literal(out);
    if (c == 'n') return parse_literal(out);
    return parse_number(out);
  }

  Status parse_literal(JsonValue* out) {
    auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Status::ok();
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Status::ok();
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::ok();
    }
    return fail("invalid literal");
  }

  Status parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("invalid number");
    // strtod is laxer than JSON: it returns ±HUGE_VAL for overflowing
    // literals like 1e999 (and accepts inf/nan spellings, though the
    // tokenizer above never forwards those). A strict parser must not
    // materialize values JSON itself cannot round-trip.
    if (!std::isfinite(out->number_value)) {
      return fail("number out of range (non-finite)");
    }
    if (token.find('.') == std::string::npos &&
        token.find('e') == std::string::npos &&
        token.find('E') == std::string::npos) {
      errno = 0;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out->number_is_integer = true;
        out->int_value = static_cast<std::int64_t>(v);
      }
    }
    return Status::ok();
  }

  Status parse_string(std::string* out) {
    if (!consume('"')) return fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as-is; trace/report content is ASCII in practice).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  Status parse_array(JsonValue* out, int depth) {
    consume('[');
    out->kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return Status::ok();
    while (true) {
      JsonValue element;
      Status s = parse_value(&element, depth + 1);
      if (!s.is_ok()) return s;
      out->array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) return Status::ok();
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  Status parse_object(JsonValue* out, int depth) {
    consume('{');
    out->kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return Status::ok();
    while (true) {
      skip_ws();
      std::string key;
      Status s = parse_string(&key);
      if (!s.is_ok()) return s;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      s = parse_value(&value, depth + 1);
      if (!s.is_ok()) return s;
      out->members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return Status::ok();
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> parse_json(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace lbsa::obs
