// Scoped-span timeline tracing with Chrome trace-event JSON export.
//
// A Span is an RAII scope: construction stamps the start time, destruction
// records one complete ("ph":"X") event into the global Tracer. Lanes map to
// Chrome's tid axis, so per-worker activity (BFS level expansions, fuzz
// iterations, shrink rounds) renders as parallel swimlanes in
// chrome://tracing or https://ui.perfetto.dev.
//
// Categories carry the determinism contract:
//   * "phase" / "task" — events whose *count* is schedule-independent (one
//     per BFS level, per fuzz report, per shrink round ...). The
//     determinism tests compare these counts across thread counts.
//   * "worker" — per-worker-thread events; their count scales with the
//     worker pool by construction and is excluded from those comparisons.
//
// Like the metrics registry, tracing is off by default: a disabled Span
// costs one relaxed atomic load. Recording takes a mutex — spans are
// deliberately coarse (levels, rounds, runs), not per-step.
#ifndef LBSA_OBS_TRACE_H_
#define LBSA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace lbsa::obs {

// Event categories (free-form strings are allowed; these are the
// conventions the instrumentation uses).
inline constexpr const char* kCatPhase = "phase";
inline constexpr const char* kCatTask = "task";
inline constexpr const char* kCatWorker = "worker";

bool tracing_enabled();
void set_tracing_enabled(bool enabled);

namespace internal {
inline std::atomic<bool>& tracing_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace internal

inline bool tracing_enabled() {
  return internal::tracing_flag().load(std::memory_order_relaxed);
}

inline void set_tracing_enabled(bool enabled) {
  internal::tracing_flag().store(enabled, std::memory_order_relaxed);
}

// Microseconds since the process's trace epoch (first use).
std::uint64_t trace_now_us();

struct TraceEvent {
  std::string name;
  std::string cat;
  int lane = 0;  // rendered as tid
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::vector<std::pair<std::string, std::int64_t>> args;
};

class Tracer {
 public:
  static Tracer& global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void record(TraceEvent event);
  // Names a lane ("coordinator", "worker 3", ...); emitted as Chrome
  // thread_name metadata.
  void set_lane_name(int lane, std::string name);

  std::vector<TraceEvent> snapshot() const;
  std::size_t event_count() const;
  // Events whose category equals `cat`.
  std::size_t event_count(std::string_view cat) const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} — loads in chrome://tracing
  // and Perfetto.
  std::string to_chrome_json() const;

  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<int, std::string> lane_names_;
};

// RAII span recording one complete event on destruction. No-op (one relaxed
// load) when tracing is disabled at construction time.
class Span {
 public:
  Span(std::string_view name, std::string_view cat, int lane) {
    if (!tracing_enabled()) return;
    active_ = true;
    event_.name = name;
    event_.cat = cat;
    event_.lane = lane;
    event_.ts_us = trace_now_us();
  }
  ~Span() {
    if (!active_) return;
    const std::uint64_t end = trace_now_us();
    event_.dur_us = end >= event_.ts_us ? end - event_.ts_us : 0;
    Tracer::global().record(std::move(event_));
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(std::string_view key, std::int64_t value) {
    if (active_) event_.args.emplace_back(std::string(key), value);
  }
  bool active() const { return active_; }

 private:
  bool active_ = false;
  TraceEvent event_;
};

// Zero-cost stand-ins used by the LBSA_OBS_DISABLED macro layer (obs/obs.h).
struct NoopSpan {
  constexpr void arg(std::string_view, std::int64_t) const {}
  static constexpr bool active() { return false; }
};

}  // namespace lbsa::obs

#endif  // LBSA_OBS_TRACE_H_
