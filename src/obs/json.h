// Minimal JSON support for the observability layer: a streaming writer
// (comma/nesting management, correct string escaping) and a strict
// recursive-descent parser. The parser exists so that run reports and trace
// files can be validated in-process — by the schema tests and by the CLIs
// themselves right after writing — without external dependencies.
#ifndef LBSA_OBS_JSON_H_
#define LBSA_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace lbsa::obs {

// Escapes `text` for inclusion inside a JSON string literal (no quotes
// added).
std::string json_escape(std::string_view text);

// Streaming JSON writer. Usage:
//   JsonWriter w;
//   w.begin_object(); w.key("n"); w.value_uint(3); w.end_object();
//   std::string out = std::move(w).str();
// The writer trusts its caller to produce well-formed nesting; it only
// manages commas and escaping.
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(std::string_view name) {
    comma();
    out_ += '"';
    out_ += json_escape(name);
    out_ += "\":";
    after_key_ = true;
  }

  void value_string(std::string_view value) {
    comma();
    out_ += '"';
    out_ += json_escape(value);
    out_ += '"';
  }
  void value_uint(std::uint64_t value) {
    comma();
    out_ += std::to_string(value);
  }
  void value_int(std::int64_t value) {
    comma();
    out_ += std::to_string(value);
  }
  void value_double(double value);
  void value_bool(bool value) {
    comma();
    out_ += value ? "true" : "false";
  }
  // Splices pre-rendered JSON (caller guarantees validity).
  void value_raw(std::string_view raw) {
    comma();
    out_ += raw;
  }

  std::string str() && { return std::move(out_); }

 private:
  void comma() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (need_comma_) out_ += ',';
    need_comma_ = true;
  }
  void open(char c) {
    comma();
    out_ += c;
    need_comma_ = false;
  }
  void close(char c) {
    out_ += c;
    need_comma_ = true;
  }

  std::string out_;
  bool need_comma_ = false;
  bool after_key_ = false;
};

// A parsed JSON value. Numbers keep both a double and (when exact) an
// int64 view; object member order is preserved.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  bool number_is_integer = false;
  std::int64_t int_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> members;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // Object member lookup; nullptr if absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

// Strict parse of a complete JSON document (trailing garbage rejected).
StatusOr<JsonValue> parse_json(std::string_view text);

}  // namespace lbsa::obs

#endif  // LBSA_OBS_JSON_H_
