#include "obs/heartbeat.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "base/hashing.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace lbsa::obs {

// ---------------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------------

Progress& Progress::global() {
  static Progress* progress = new Progress();  // leaked: process lifetime
  return *progress;
}

void Progress::configure_workers(int n) {
  if (n < 0) n = 0;
  if (n > kProgressMaxWorkers) n = kProgressMaxWorkers;
  for (int i = 0; i < n; ++i) {
    slots_[i].busy.store(0, std::memory_order_relaxed);
  }
  worker_count_.store(static_cast<std::uint32_t>(n),
                      std::memory_order_release);
}

Progress::WorkerSlot* Progress::worker(int i) {
  if (i < 0 || i >= worker_count() || i >= kProgressMaxWorkers) return nullptr;
  return &slots_[i];
}

void Progress::raise(std::atomic<std::uint64_t>& cell, std::uint64_t value) {
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (cur < value &&
         !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void Progress::reset() {
  nodes_total.store(0, std::memory_order_relaxed);
  transitions_total.store(0, std::memory_order_relaxed);
  levels_completed.store(0, std::memory_order_relaxed);
  frontier_size.store(0, std::memory_order_relaxed);
  checkpoint_writes.store(0, std::memory_order_relaxed);
  worker_count_.store(0, std::memory_order_relaxed);
  for (WorkerSlot& slot : slots_) {
    slot.busy.store(0, std::memory_order_relaxed);
    slot.expanded.store(0, std::memory_order_relaxed);
    slot.steals.store(0, std::memory_order_relaxed);
    slot.cas_retries.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// run_id
// ---------------------------------------------------------------------------

namespace {

std::uint64_t hash_string(std::uint64_t h, std::string_view s) {
  h = hash_combine(h, s.size());
  for (char c : s) {
    h = hash_combine(h, static_cast<std::uint64_t>(
                            static_cast<unsigned char>(c)));
  }
  return h;
}

}  // namespace

std::string derive_run_id(std::string_view tool, std::string_view task,
                          std::string_view mode, std::uint64_t budget,
                          std::string_view nonce) {
  std::uint64_t h = 0x1b5a0b5eULL;  // arbitrary fixed seed
  h = hash_string(h, tool);
  h = hash_string(h, task);
  h = hash_string(h, mode);
  h = hash_combine(h, budget);
  // Empty nonce folds in nothing: ids minted before the nonce existed (and
  // checkpoints carrying them) keep resolving to the same stream.
  if (!nonce.empty()) h = hash_string(h, nonce);
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016" PRIx64, h);
  return std::string(hex);
}

// ---------------------------------------------------------------------------
// HeartbeatSampler
// ---------------------------------------------------------------------------

namespace {

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Last non-empty line of `text` (without the trailing newline).
std::string_view last_line(std::string_view text) {
  std::size_t end = text.size();
  while (end > 0 && (text[end - 1] == '\n' || text[end - 1] == '\r')) --end;
  if (end == 0) return {};
  std::size_t begin = text.rfind('\n', end - 1);
  begin = begin == std::string_view::npos ? 0 : begin + 1;
  return text.substr(begin, end - begin);
}

// heartbeat_enabled is process-global, but a server process runs many
// samplers concurrently (one per request). Refcount the holders so one
// request finishing does not turn off engine publishing for its neighbors:
// the flag flips off only when the last sampler stops.
std::atomic<int> g_enabled_holders{0};

void acquire_heartbeat_enabled() {
  g_enabled_holders.fetch_add(1, std::memory_order_relaxed);
  set_heartbeat_enabled(true);
}

void release_heartbeat_enabled() {
  if (g_enabled_holders.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    set_heartbeat_enabled(false);
  }
}

}  // namespace

HeartbeatSampler::HeartbeatSampler(HeartbeatOptions options)
    : options_(std::move(options)) {
  if (!options_.clock_ms) options_.clock_ms = steady_now_ms;
  if (options_.interval_ms == 0) options_.interval_ms = 1000;
}

HeartbeatSampler::~HeartbeatSampler() { (void)stop(); }

Status HeartbeatSampler::open() {
  if (options_.sink) {
    // Sink mode: lines go to the callback, no file, no continuation check
    // (the caller owns the transport and its history).
    if (sink_open_) return Status::ok();
    sink_open_ = true;
    start_ms_ = options_.clock_ms();
    acquire_heartbeat_enabled();
    enabled_held_ = true;
    return Status::ok();
  }
  if (options_.path.empty()) {
    return invalid_argument("heartbeat: empty output path");
  }
  if (file_ != nullptr) return Status::ok();
  // Continuation check: an existing stream must belong to the same run.
  {
    std::ifstream in(options_.path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string existing = buffer.str();
      const std::string_view tail = last_line(existing);
      if (!tail.empty()) {
        auto parsed = parse_json(tail);
        if (!parsed.is_ok() || !parsed.value().is_object()) {
          return failed_precondition(
              "heartbeat: '" + options_.path +
              "' exists but its last line is not a heartbeat (refusing to "
              "append a new stream onto it)");
        }
        const JsonValue* run_id = parsed.value().find("run_id");
        const JsonValue* seq = parsed.value().find("seq");
        if (run_id == nullptr || !run_id->is_string() || seq == nullptr ||
            !seq->is_number() || !seq->number_is_integer) {
          return failed_precondition(
              "heartbeat: '" + options_.path +
              "' last line lacks run_id/seq (not a heartbeat stream)");
        }
        if (run_id->string_value != options_.run_id) {
          return failed_precondition(
              "heartbeat: '" + options_.path + "' belongs to run " +
              run_id->string_value + ", not " + options_.run_id +
              " (a stream is appendable only by the same resumed run)");
        }
        next_seq_ = static_cast<std::uint64_t>(seq->int_value) + 1;
      }
    }
  }
  file_ = std::fopen(options_.path.c_str(), "ab");
  if (file_ == nullptr) {
    return internal_error("heartbeat: cannot open '" + options_.path +
                          "' for append");
  }
  start_ms_ = options_.clock_ms();
  acquire_heartbeat_enabled();
  enabled_held_ = true;
  return Status::ok();
}

void HeartbeatSampler::write_tick(bool final) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr && !sink_open_) return;
  const std::uint64_t now = options_.clock_ms();
  const std::uint64_t uptime = now >= start_ms_ ? now - start_ms_ : 0;

  Progress& progress = Progress::global();
  const std::uint64_t nodes =
      progress.nodes_total.load(std::memory_order_relaxed);
  const std::uint64_t transitions =
      progress.transitions_total.load(std::memory_order_relaxed);
  const std::uint64_t levels =
      progress.levels_completed.load(std::memory_order_relaxed);
  const std::uint64_t frontier =
      progress.frontier_size.load(std::memory_order_relaxed);
  const std::uint64_t checkpoints =
      progress.checkpoint_writes.load(std::memory_order_relaxed);

  // Rolling nodes/sec against the oldest sample in the window; the
  // frontier-trend ETA is defined only while the frontier is draining.
  double nodes_per_sec = 0.0;
  bool have_eta = false;
  double eta_s = 0.0;
  if (!window_.empty()) {
    const Sample& oldest = window_.front();
    if (now > oldest.t_ms) {
      const double dt_s = static_cast<double>(now - oldest.t_ms) / 1000.0;
      if (nodes >= oldest.nodes) {
        nodes_per_sec = static_cast<double>(nodes - oldest.nodes) / dt_s;
      }
      if (oldest.frontier > frontier) {
        const double drain_per_s =
            static_cast<double>(oldest.frontier - frontier) / dt_s;
        have_eta = true;
        eta_s = static_cast<double>(frontier) / drain_per_s;
      }
    }
  }
  window_.push_back(Sample{now, nodes, frontier});
  if (window_.size() > 8) window_.erase(window_.begin());

  JsonWriter w;
  w.begin_object();
  w.key("heartbeat_version");
  w.value_int(kHeartbeatSchemaVersion);
  w.key("run_id");
  w.value_string(options_.run_id);
  w.key("tool");
  w.value_string(options_.tool);
  w.key("task");
  w.value_string(options_.task);
  w.key("seq");
  w.value_uint(next_seq_);
  w.key("uptime_ms");
  w.value_uint(uptime);
  w.key("interval_ms");
  w.value_uint(options_.interval_ms);
  w.key("nodes_total");
  w.value_uint(nodes);
  w.key("transitions_total");
  w.value_uint(transitions);
  w.key("levels_completed");
  w.value_uint(levels);
  w.key("frontier_size");
  w.value_uint(frontier);
  w.key("checkpoint_writes");
  w.value_uint(checkpoints);
  w.key("nodes_per_sec");
  w.value_double(nodes_per_sec);
  w.key("eta_s");
  if (have_eta) {
    w.value_double(eta_s);
  } else {
    w.value_raw("null");
  }
  w.key("workers");
  w.begin_array();
  const int workers = progress.worker_count();
  for (int i = 0; i < workers; ++i) {
    Progress::WorkerSlot* slot = progress.worker(i);
    if (slot == nullptr) break;
    w.begin_object();
    w.key("busy");
    w.value_uint(slot->busy.load(std::memory_order_relaxed));
    w.key("expanded");
    w.value_uint(slot->expanded.load(std::memory_order_relaxed));
    w.key("steals");
    w.value_uint(slot->steals.load(std::memory_order_relaxed));
    w.key("cas_retries");
    w.value_uint(slot->cas_retries.load(std::memory_order_relaxed));
    w.end_object();
  }
  w.end_array();
  // The stable registry rows (schedule-independent names and, at
  // quiescence, values); histograms are compressed to their quantiles —
  // the full bucket arrays stay in the RunReport.
  const MetricsSnapshot snap = Registry::global().snapshot();
  w.key("metrics");
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& row : snap.counters) {
    if (row.stability != Stability::kStable) continue;
    w.key(row.name);
    w.value_uint(row.value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& row : snap.gauges) {
    if (row.stability != Stability::kStable) continue;
    w.key(row.name);
    w.value_int(row.value);
  }
  w.end_object();
  w.key("quantiles");
  w.begin_object();
  for (const auto& row : snap.histograms) {
    if (row.stability != Stability::kStable) continue;
    w.key(row.name);
    w.begin_object();
    w.key("p50");
    w.value_uint(row.quantiles.p50);
    w.key("p90");
    w.value_uint(row.quantiles.p90);
    w.key("p99");
    w.value_uint(row.quantiles.p99);
    w.key("max");
    w.value_uint(row.quantiles.max);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  w.key("final");
  w.value_bool(final);
  w.end_object();

  const std::string line = std::move(w).str();
  if (sink_open_) {
    options_.sink(line);
  } else {
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
  }

  if (!final) {
    ticks_.push_back(Tick{uptime, nodes, frontier, nodes_per_sec});
  }
  ++next_seq_;
}

void HeartbeatSampler::thread_main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!quit_) {
    const auto wake = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(options_.interval_ms);
    cv_.wait_until(lock, wake, [&] { return quit_; });
    if (quit_) return;
    lock.unlock();
    write_tick(false);
    lock.lock();
  }
}

Status HeartbeatSampler::start() {
  if (const Status s = open(); !s.is_ok()) return s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return Status::ok();
    running_ = true;
    quit_ = false;
  }
  thread_ = std::thread([this] { thread_main(); });
  return Status::ok();
}

Status HeartbeatSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::ok();
    quit_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (file_ != nullptr || sink_open_) {
    write_tick(true);
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ != nullptr) std::fclose(file_);
    file_ = nullptr;
    sink_open_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    running_ = false;
  }
  if (enabled_held_) {
    enabled_held_ = false;
    release_heartbeat_enabled();
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Validators
// ---------------------------------------------------------------------------

namespace {

Status heartbeat_error(std::size_t line_no, const std::string& what) {
  return invalid_argument("heartbeat stream: line " +
                          std::to_string(line_no) + ": " + what);
}

const JsonValue* require_int(const JsonValue& obj, const char* field) {
  const JsonValue* v = obj.find(field);
  if (v == nullptr || !v->is_number() || !v->number_is_integer) return nullptr;
  return v;
}

}  // namespace

Status validate_heartbeat_stream(std::string_view text) {
  bool first = true;
  std::string run_id;
  std::string tool;
  std::string task;
  std::uint64_t prev_seq = 0;
  std::uint64_t prev_nodes = 0;
  std::uint64_t prev_transitions = 0;
  std::size_t line_no = 0;
  std::size_t count = 0;

  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line.empty() ||
        line.find_first_not_of(" \t\r") == std::string_view::npos) {
      if (pos > text.size()) break;
      continue;
    }
    auto parsed = parse_json(line);
    if (!parsed.is_ok()) {
      return heartbeat_error(line_no,
                             "not strict JSON: " + parsed.status().message());
    }
    const JsonValue& root = parsed.value();
    if (!root.is_object()) return heartbeat_error(line_no, "not an object");

    const JsonValue* version = require_int(root, "heartbeat_version");
    if (version == nullptr ||
        version->int_value != kHeartbeatSchemaVersion) {
      return heartbeat_error(line_no, "heartbeat_version != 1");
    }
    for (const char* field : {"run_id", "tool", "task"}) {
      const JsonValue* v = root.find(field);
      if (v == nullptr || !v->is_string()) {
        return heartbeat_error(line_no,
                               std::string(field) + " missing or not a string");
      }
    }
    if (root.find("run_id")->string_value.empty()) {
      return heartbeat_error(line_no, "run_id empty");
    }
    const JsonValue* seq = require_int(root, "seq");
    if (seq == nullptr || seq->int_value < 0) {
      return heartbeat_error(line_no, "seq missing or not a non-negative "
                                      "integer");
    }
    for (const char* field :
         {"uptime_ms", "interval_ms", "nodes_total", "transitions_total",
          "levels_completed", "frontier_size", "checkpoint_writes"}) {
      if (require_int(root, field) == nullptr) {
        return heartbeat_error(
            line_no, std::string(field) + " missing or not an integer");
      }
    }
    if (const JsonValue* rate = root.find("nodes_per_sec");
        rate == nullptr || !rate->is_number()) {
      return heartbeat_error(line_no, "nodes_per_sec missing or not a number");
    }
    if (const JsonValue* eta = root.find("eta_s");
        eta == nullptr ||
        (eta->kind != JsonValue::Kind::kNull && !eta->is_number())) {
      return heartbeat_error(line_no, "eta_s missing or not number/null");
    }
    const JsonValue* workers = root.find("workers");
    if (workers == nullptr || !workers->is_array()) {
      return heartbeat_error(line_no, "workers missing or not an array");
    }
    for (const JsonValue& slot : workers->array) {
      if (!slot.is_object()) {
        return heartbeat_error(line_no, "workers element not an object");
      }
      for (const char* field : {"busy", "expanded", "steals", "cas_retries"}) {
        if (require_int(slot, field) == nullptr) {
          return heartbeat_error(line_no, std::string("workers.") + field +
                                              " missing or not an integer");
        }
      }
    }
    const JsonValue* metrics = root.find("metrics");
    if (metrics == nullptr || !metrics->is_object()) {
      return heartbeat_error(line_no, "metrics missing or not an object");
    }
    const JsonValue* final_flag = root.find("final");
    if (final_flag == nullptr ||
        final_flag->kind != JsonValue::Kind::kBool) {
      return heartbeat_error(line_no, "final missing or not a bool");
    }

    const std::uint64_t this_seq =
        static_cast<std::uint64_t>(seq->int_value);
    const std::uint64_t nodes =
        static_cast<std::uint64_t>(root.find("nodes_total")->int_value);
    const std::uint64_t transitions =
        static_cast<std::uint64_t>(root.find("transitions_total")->int_value);
    if (first) {
      run_id = root.find("run_id")->string_value;
      tool = root.find("tool")->string_value;
      task = root.find("task")->string_value;
      first = false;
    } else {
      if (root.find("run_id")->string_value != run_id) {
        return heartbeat_error(line_no, "run_id changed mid-stream");
      }
      if (root.find("tool")->string_value != tool) {
        return heartbeat_error(line_no, "tool changed mid-stream");
      }
      if (root.find("task")->string_value != task) {
        return heartbeat_error(line_no, "task changed mid-stream");
      }
      if (this_seq != prev_seq + 1) {
        return heartbeat_error(
            line_no, "seq " + std::to_string(this_seq) +
                         " out of order (expected " +
                         std::to_string(prev_seq + 1) + ")");
      }
      if (nodes < prev_nodes) {
        return heartbeat_error(line_no,
                               "nodes_total decreased (cumulative counters "
                               "must be non-decreasing)");
      }
      if (transitions < prev_transitions) {
        return heartbeat_error(line_no,
                               "transitions_total decreased (cumulative "
                               "counters must be non-decreasing)");
      }
    }
    prev_seq = this_seq;
    prev_nodes = nodes;
    prev_transitions = transitions;
    ++count;
    if (pos > text.size()) break;
  }
  if (count == 0) {
    return invalid_argument("heartbeat stream: no heartbeat lines");
  }
  return Status::ok();
}

Status validate_heartbeat_summary_json(std::string_view json) {
  auto parsed = parse_json(json);
  if (!parsed.is_ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return invalid_argument("heartbeat summary: document not an object");
  }
  const JsonValue* version = require_int(root, "heartbeat_summary_version");
  if (version == nullptr ||
      version->int_value != kHeartbeatSummarySchemaVersion) {
    return invalid_argument("heartbeat summary: heartbeat_summary_version "
                            "!= 1");
  }
  const JsonValue* run_id = root.find("run_id");
  if (run_id == nullptr || !run_id->is_string() ||
      run_id->string_value.empty()) {
    return invalid_argument("heartbeat summary: run_id missing or empty");
  }
  for (const char* field : {"tool", "task"}) {
    const JsonValue* v = root.find(field);
    if (v == nullptr || !v->is_string()) {
      return invalid_argument(std::string("heartbeat summary: ") + field +
                              " missing or not a string");
    }
  }
  for (const char* field : {"ticks", "first_seq", "last_seq", "nodes_total",
                            "transitions_total", "levels_completed"}) {
    if (require_int(root, field) == nullptr) {
      return invalid_argument(std::string("heartbeat summary: ") + field +
                              " missing or not an integer");
    }
  }
  if (root.find("ticks")->int_value < 1) {
    return invalid_argument("heartbeat summary: ticks < 1");
  }
  if (root.find("last_seq")->int_value < root.find("first_seq")->int_value) {
    return invalid_argument("heartbeat summary: last_seq < first_seq");
  }
  if (const JsonValue* rate = root.find("max_nodes_per_sec");
      rate == nullptr || !rate->is_number()) {
    return invalid_argument(
        "heartbeat summary: max_nodes_per_sec missing or not a number");
  }
  if (const JsonValue* final_seen = root.find("final_seen");
      final_seen == nullptr || final_seen->kind != JsonValue::Kind::kBool) {
    return invalid_argument(
        "heartbeat summary: final_seen missing or not a bool");
  }
  return Status::ok();
}

Status validate_heartbeat_file(std::string_view text) {
  // A digest is a single JSON object carrying heartbeat_summary_version;
  // anything else must validate as a JSONL stream.
  if (auto parsed = parse_json(text); parsed.is_ok() &&
      parsed.value().is_object() &&
      parsed.value().find("heartbeat_summary_version") != nullptr) {
    return validate_heartbeat_summary_json(text);
  }
  return validate_heartbeat_stream(text);
}

}  // namespace lbsa::obs
