#include "obs/metrics.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "base/check.h"
#include "obs/json.h"

namespace lbsa::obs {

namespace internal {

int this_thread_stripe() {
  static std::atomic<unsigned> next{0};
  thread_local const int stripe = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(kMetricStripes));
  return stripe;
}

}  // namespace internal

std::vector<std::uint64_t> Histogram::buckets() const {
  std::vector<std::uint64_t> merged(kHistogramBuckets, 0);
  for (const Stripe& stripe : stripes_) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      merged[static_cast<std::size_t>(b)] +=
          stripe.buckets[b].load(std::memory_order_relaxed);
    }
  }
  while (!merged.empty() && merged.back() == 0) merged.pop_back();
  return merged;
}

void Histogram::reset() {
  for (Stripe& stripe : stripes_) {
    stripe.count.store(0, std::memory_order_relaxed);
    stripe.sum.store(0, std::memory_order_relaxed);
    for (int b = 0; b < kHistogramBuckets; ++b) {
      stripe.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

std::uint64_t histogram_bucket_upper_bound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= kHistogramBuckets - 1) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return (std::uint64_t{1} << bucket) - 1;
}

HistogramQuantiles quantiles_from_buckets(
    const std::vector<std::uint64_t>& buckets, std::uint64_t count) {
  HistogramQuantiles q;
  if (count == 0) return q;
  // The rank-r sample (1-based) lives in the first bucket whose cumulative
  // count reaches r; report that bucket's inclusive upper bound.
  auto value_at_rank = [&](std::uint64_t rank) -> std::uint64_t {
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      cumulative += buckets[b];
      if (cumulative >= rank) {
        return histogram_bucket_upper_bound(static_cast<int>(b));
      }
    }
    return histogram_bucket_upper_bound(static_cast<int>(buckets.size()) - 1);
  };
  // ceil(q * count), clamped to [1, count].
  auto rank_of = [&](std::uint64_t num, std::uint64_t den) {
    const std::uint64_t rank = (count * num + den - 1) / den;
    return rank == 0 ? 1 : rank;
  };
  q.p50 = value_at_rank(rank_of(50, 100));
  q.p90 = value_at_rank(rank_of(90, 100));
  q.p99 = value_at_rank(rank_of(99, 100));
  q.max = value_at_rank(count);
  return q;
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // leaked: process lifetime
  return *registry;
}

Counter* Registry::counter(std::string_view name, Stability stability) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& c : counters_) {
    if (c.name() == name) {
      LBSA_CHECK_MSG(c.stability() == stability,
                     "obs: counter re-registered with different stability");
      return &c;
    }
  }
  return &counters_.emplace_back(std::string(name), stability);
}

Gauge* Registry::gauge(std::string_view name, Stability stability) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Gauge& g : gauges_) {
    if (g.name() == name) {
      LBSA_CHECK_MSG(g.stability() == stability,
                     "obs: gauge re-registered with different stability");
      return &g;
    }
  }
  return &gauges_.emplace_back(std::string(name), stability);
}

Histogram* Registry::histogram(std::string_view name, Stability stability) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Histogram& h : histograms_) {
    if (h.name() == name) {
      LBSA_CHECK_MSG(h.stability() == stability,
                     "obs: histogram re-registered with different stability");
      return &h;
    }
  }
  return &histograms_.emplace_back(std::string(name), stability);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Counter& c : counters_) {
      snap.counters.push_back({c.name(), c.stability(), c.total()});
    }
    for (const Gauge& g : gauges_) {
      snap.gauges.push_back({g.name(), g.stability(), g.value()});
    }
    for (const Histogram& h : histograms_) {
      MetricsSnapshot::HistogramRow row{h.name(), h.stability(), h.count(),
                                        h.sum(), h.buckets(), {}};
      row.quantiles = quantiles_from_buckets(row.buckets, row.count);
      snap.histograms.push_back(std::move(row));
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& c : counters_) c.reset();
  for (Gauge& g : gauges_) g.reset();
  for (Histogram& h : histograms_) h.reset();
}

namespace {

template <typename Row, typename EmitValue>
void write_rows(JsonWriter* w, const std::vector<Row>& rows, bool want_stable,
                EmitValue emit_value) {
  w->begin_object();
  for (const Row& row : rows) {
    if ((row.stability == Stability::kStable) != want_stable) continue;
    w->key(row.name);
    emit_value(row);
  }
  w->end_object();
}

void write_sections(JsonWriter* w, const MetricsSnapshot& snap,
                    bool want_stable) {
  w->key("counters");
  write_rows(w, snap.counters, want_stable,
             [&](const MetricsSnapshot::CounterRow& row) {
               w->value_uint(row.value);
             });
  w->key("gauges");
  write_rows(w, snap.gauges, want_stable,
             [&](const MetricsSnapshot::GaugeRow& row) {
               w->value_int(row.value);
             });
  w->key("histograms");
  write_rows(w, snap.histograms, want_stable,
             [&](const MetricsSnapshot::HistogramRow& row) {
               w->begin_object();
               w->key("count");
               w->value_uint(row.count);
               w->key("sum");
               w->value_uint(row.sum);
               w->key("buckets");
               w->begin_array();
               for (std::uint64_t b : row.buckets) w->value_uint(b);
               w->end_array();
               w->key("quantiles");
               w->begin_object();
               w->key("p50");
               w->value_uint(row.quantiles.p50);
               w->key("p90");
               w->value_uint(row.quantiles.p90);
               w->key("p99");
               w->value_uint(row.quantiles.p99);
               w->key("max");
               w->value_uint(row.quantiles.max);
               w->end_object();
               w->end_object();
             });
}

}  // namespace

std::string MetricsSnapshot::to_json(bool include_volatile) const {
  JsonWriter w;
  w.begin_object();
  write_sections(&w, *this, /*want_stable=*/true);
  if (include_volatile) {
    w.key("volatile");
    w.begin_object();
    write_sections(&w, *this, /*want_stable=*/false);
    w.end_object();
  }
  w.end_object();
  return std::move(w).str();
}

}  // namespace lbsa::obs
