// Wing-Gong linearizability checker with Lowe-style memoized pruning.
//
// Given a recorded concurrent history over ONE object and the object's
// sequential specification, decides whether there is a linearization: a
// total order of the operations that (a) respects real-time precedence
// (op A before op B whenever A responded before B was invoked), and (b) is a
// legal sequential history of the specification in which every completed
// operation receives exactly its recorded response.
//
// Nondeterministic specifications ((n,k)-SA objects) are handled by
// accepting any spec outcome whose response matches the recorded one.
// Pending operations (invoked, never responded — crashed threads) may be
// linearized with any legal response, or dropped entirely, per the standard
// completion rule of [Herlihy & Wing].
//
// The search is exponential in the worst case; states (linearized-set,
// object-state) are memoized, and histories are capped at 64 operations per
// check (split longer runs into windows or check per-object).
#ifndef LBSA_LINCHECK_CHECKER_H_
#define LBSA_LINCHECK_CHECKER_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "lincheck/history_log.h"
#include "spec/object_type.h"

namespace lbsa::lincheck {

struct LincheckOptions {
  // Budget on distinct memoized search states.
  std::uint64_t max_states = 10'000'000;
};

struct LincheckResult {
  bool linearizable = false;
  // If linearizable: op ids in linearization order (pending ops that were
  // dropped do not appear).
  std::vector<int> witness;
  // If not: a human-readable explanation of the first blocking frontier.
  std::string detail;
  std::uint64_t states_explored = 0;
};

StatusOr<LincheckResult> check_linearizable(
    const spec::ObjectType& type, const std::vector<OpRecord>& history,
    const LincheckOptions& options = {});

}  // namespace lbsa::lincheck

#endif  // LBSA_LINCHECK_CHECKER_H_
