#include "lincheck/history_log.h"

#include "base/check.h"

namespace lbsa::lincheck {

HistoryLog::HistoryLog(std::size_t capacity) : slots_(capacity) {}

int HistoryLog::begin_op(int thread, const spec::Operation& op) {
  const std::uint64_t slot =
      cursor_.fetch_add(1, std::memory_order_acq_rel);
  LBSA_CHECK_MSG(slot < slots_.size(), "HistoryLog capacity exceeded");
  OpRecord& record = slots_[slot];
  record.op_id = static_cast<int>(slot);
  record.thread = thread;
  record.op = op;
  record.response = kNil;
  record.response_ts = kPendingTs;
  // The invocation timestamp is drawn *after* the slot is claimed so that
  // two operations' [invoke, response] intervals reflect real-time order.
  record.invoke_ts = clock_.fetch_add(1, std::memory_order_acq_rel);
  return record.op_id;
}

void HistoryLog::end_op(int op_id, Value response) {
  LBSA_CHECK(op_id >= 0 &&
             static_cast<std::size_t>(op_id) <
                 cursor_.load(std::memory_order_acquire));
  OpRecord& record = slots_[static_cast<std::size_t>(op_id)];
  record.response = response;
  record.response_ts = clock_.fetch_add(1, std::memory_order_acq_rel);
}

std::vector<OpRecord> HistoryLog::snapshot() const {
  const std::uint64_t n = cursor_.load(std::memory_order_acquire);
  return {slots_.begin(), slots_.begin() + static_cast<std::ptrdiff_t>(n)};
}

void HistoryLog::reset() {
  cursor_.store(0, std::memory_order_release);
  clock_.store(1, std::memory_order_release);
}

}  // namespace lbsa::lincheck
