#include "lincheck/checker.h"

#include <unordered_set>

#include "base/check.h"
#include "base/hashing.h"
#include "obs/obs.h"

namespace lbsa::lincheck {
namespace {

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& key) const {
    return static_cast<std::size_t>(hash_words(key));
  }
};

class Search {
 public:
  Search(const spec::ObjectType& type, const std::vector<OpRecord>& history,
         const LincheckOptions& options)
      : type_(type), history_(history), options_(options) {
    completed_mask_ = 0;
    for (std::size_t i = 0; i < history_.size(); ++i) {
      if (history_[i].completed()) completed_mask_ |= 1ULL << i;
    }
  }

  StatusOr<LincheckResult> run() {
    LincheckResult result;
    const bool found = dfs(0, type_.initial_state());
    if (budget_exceeded_) {
      return resource_exhausted("lincheck: state budget exceeded");
    }
    result.linearizable = found;
    result.states_explored = states_;
    if (found) {
      result.witness = path_;
    } else {
      result.detail = "no linearization of " +
                      std::to_string(history_.size()) + " operations (" +
                      std::to_string(states_) + " states examined)";
    }
    return result;
  }

 private:
  // True iff op i may be linearized next given the set `taken`.
  bool eligible(std::size_t i, std::uint64_t taken) const {
    if (taken & (1ULL << i)) return false;
    for (std::size_t j = 0; j < history_.size(); ++j) {
      if (j == i || (taken & (1ULL << j))) continue;
      if (history_[j].precedes(history_[i])) return false;
    }
    return true;
  }

  bool dfs(std::uint64_t taken, const std::vector<std::int64_t>& state) {
    if ((taken & completed_mask_) == completed_mask_) return true;

    std::vector<std::int64_t> key = state;
    key.push_back(static_cast<std::int64_t>(taken));
    if (!memo_.insert(std::move(key)).second) return false;
    if (++states_ > options_.max_states) {
      budget_exceeded_ = true;
      return false;
    }

    std::vector<spec::Outcome> outcomes;
    for (std::size_t i = 0; i < history_.size(); ++i) {
      if (!eligible(i, taken)) continue;
      const OpRecord& record = history_[i];
      outcomes.clear();
      type_.apply(state, record.op, &outcomes);
      for (const spec::Outcome& outcome : outcomes) {
        // A completed op must take exactly its observed response; a pending
        // op may take any legal one (it "completed" invisibly).
        if (record.completed() && outcome.response != record.response) {
          continue;
        }
        path_.push_back(record.op_id);
        if (dfs(taken | (1ULL << i), outcome.next_state)) return true;
        if (budget_exceeded_) return false;
        path_.pop_back();
      }
    }
    return false;
  }

  const spec::ObjectType& type_;
  const std::vector<OpRecord>& history_;
  const LincheckOptions& options_;
  std::uint64_t completed_mask_ = 0;
  std::unordered_set<std::vector<std::int64_t>, KeyHash> memo_;
  std::vector<int> path_;
  std::uint64_t states_ = 0;
  bool budget_exceeded_ = false;
};

}  // namespace

StatusOr<LincheckResult> check_linearizable(const spec::ObjectType& type,
                                            const std::vector<OpRecord>& history,
                                            const LincheckOptions& options) {
  if (history.size() > 64) {
    return invalid_argument(
        "lincheck supports at most 64 operations per check; got " +
        std::to_string(history.size()));
  }
  for (const OpRecord& record : history) {
    const Status s = type.validate(record.op);
    if (!s.is_ok()) return s;
    if (record.completed() && record.response_ts <= record.invoke_ts) {
      return invalid_argument("op " + std::to_string(record.op_id) +
                              " has response_ts <= invoke_ts");
    }
  }
  Search search(type, history, options);
  StatusOr<LincheckResult> result = search.run();
  // Counters only, no spans: implcheck calls this once per explored
  // execution, far too often for per-call trace events. Search order is
  // deterministic, so states_explored totals are stable.
  LBSA_OBS_COUNTER_ADD("lincheck.histories", 1);
  if (result.is_ok()) {
    LBSA_OBS_COUNTER_ADD("lincheck.states", result.value().states_explored);
    LBSA_OBS_HISTOGRAM_OBSERVE("lincheck.witness_depth",
                               result.value().witness.size());
    LBSA_OBS_HISTOGRAM_OBSERVE("lincheck.history_length", history.size());
  }
  return result;
}

}  // namespace lbsa::lincheck
