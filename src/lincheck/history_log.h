// Concurrent operation-history recording for linearizability checking.
//
// Linearizability [Herlihy & Wing, 11] is the correctness condition every
// object in the paper is assumed to satisfy ("the n-PAC object is
// linearizable, i.e., the operations are atomic"). The concurrent realm of
// this library (src/concurrent) is validated against the sequential
// specifications of src/spec by recording real-time invocation/response
// intervals here and replaying them through the checker.
//
// The log is lock-free on the hot path: a fixed-capacity slot array with an
// atomic cursor, and one atomic logical clock stamping invocations and
// responses. Snapshots must be taken at quiescence (no in-flight recording
// threads), which is how the tests and benches use it.
#ifndef LBSA_LINCHECK_HISTORY_LOG_H_
#define LBSA_LINCHECK_HISTORY_LOG_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "base/values.h"
#include "spec/object_type.h"

namespace lbsa::lincheck {

// Timestamp meaning "the operation never returned" (crashed mid-call).
inline constexpr std::uint64_t kPendingTs =
    std::numeric_limits<std::uint64_t>::max();

struct OpRecord {
  int op_id = -1;
  int thread = -1;
  spec::Operation op;
  Value response = kNil;            // meaningful iff completed()
  std::uint64_t invoke_ts = 0;
  std::uint64_t response_ts = kPendingTs;

  bool completed() const { return response_ts != kPendingTs; }
  // Real-time precedence: *this finished before other started.
  bool precedes(const OpRecord& other) const {
    return completed() && response_ts < other.invoke_ts;
  }
};

class HistoryLog {
 public:
  explicit HistoryLog(std::size_t capacity = 1 << 16);

  HistoryLog(const HistoryLog&) = delete;
  HistoryLog& operator=(const HistoryLog&) = delete;

  // Records the invocation of `op` by `thread`; returns the op id to pass to
  // end_op. Aborts if capacity is exceeded (sizing is the caller's job).
  int begin_op(int thread, const spec::Operation& op);

  // Records the response of a previously begun operation.
  void end_op(int op_id, Value response);

  // Copies out all records, ordered by op id. Caller must ensure quiescence.
  std::vector<OpRecord> snapshot() const;

  std::size_t size() const { return cursor_.load(std::memory_order_acquire); }
  void reset();

 private:
  std::vector<OpRecord> slots_;
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::uint64_t> clock_{1};
};

}  // namespace lbsa::lincheck

#endif  // LBSA_LINCHECK_HISTORY_LOG_H_
