// The object O'_n of Section 6: a bundle that "embodies the set agreement
// power" of O_n. If (n_1, n_2, ..., n_k, ...) is the set agreement power of
// O_n, then O'_n combines the collection C_n = ∪_{k>=1} {(n_k, k)-SA}:
//
//   PROPOSE(v, k)  redirects PROPOSE(v) to the (n_k, k)-SA member and
//                  returns its response.
//
// The paper's O'_n carries one member per k >= 1; any concrete realization
// must truncate to a finite prefix, so OPrimeType takes the explicit list of
// port bounds (n_1 .. n_{k_max}), with spec::kUnboundedPorts meaning
// n_k = ∞. Levels beyond k_max are rejected by validate(). Nondeterministic
// whenever any member with k >= 2 exists.
#ifndef LBSA_SPEC_OPRIME_TYPE_H_
#define LBSA_SPEC_OPRIME_TYPE_H_

#include "spec/ksa_type.h"

namespace lbsa::spec {

class OPrimeType final : public ObjectType {
 public:
  // port_bounds[k-1] is n_k. Must be nonempty; entries are >= 1 or
  // kUnboundedPorts. Builds the paper's bundle: member k is (n_k, k)-SA.
  explicit OPrimeType(std::vector<int> port_bounds);

  // General bundle: member k is members[k-1], with arbitrary agreement
  // parameters. This is how the Lemma 6.4 *implementation* is expressed —
  // level 1 backed by an (n_1,1)-SA (= n_1-consensus) and every level k >= 2
  // backed by a port-bounded 2-SA, i.e. an (n_k,2)-SA.
  explicit OPrimeType(std::vector<KsaType> members);

  int k_max() const { return static_cast<int>(members_.size()); }
  const KsaType& member(int k) const;  // k in [1..k_max]

  std::string name() const override;
  std::vector<std::int64_t> initial_state() const override;
  Status validate(const Operation& op) const override;
  void apply(std::span<const std::int64_t> state, const Operation& op,
             std::vector<Outcome>* outcomes) const override;
  bool deterministic() const override;
  std::string state_to_string(std::span<const std::int64_t> state) const override;

  // The slice of `state` belonging to member k.
  std::span<const std::int64_t> member_state(
      std::span<const std::int64_t> state, int k) const;

 private:
  std::vector<KsaType> members_;   // members_[k-1] = (n_k, k)-SA
  std::vector<size_t> offsets_;    // offsets_[k-1] = start of member k's state
  size_t total_state_size_ = 0;
};

}  // namespace lbsa::spec

#endif  // LBSA_SPEC_OPRIME_TYPE_H_
