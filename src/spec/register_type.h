// Atomic read/write register — the free base object of the paper's model
// ("instances of O *and registers*"). Deterministic; state is one word.
#ifndef LBSA_SPEC_REGISTER_TYPE_H_
#define LBSA_SPEC_REGISTER_TYPE_H_

#include "spec/object_type.h"

namespace lbsa::spec {

class RegisterType final : public ObjectType {
 public:
  // initial_value must be an ordinary value or kNil (uninitialized).
  explicit RegisterType(Value initial_value = kNil);

  std::string name() const override;
  std::vector<std::int64_t> initial_state() const override;
  Status validate(const Operation& op) const override;
  void apply(std::span<const std::int64_t> state, const Operation& op,
             std::vector<Outcome>* outcomes) const override;
  bool deterministic() const override { return true; }

 private:
  Value initial_value_;
};

}  // namespace lbsa::spec

#endif  // LBSA_SPEC_REGISTER_TYPE_H_
