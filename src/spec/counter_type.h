// Fetch-and-add counter: not a paper object, but the canonical "arbitrary
// deterministic object" used to demonstrate the universal construction
// (Herlihy's theorem that consensus number n implements any object shared by
// n processes — the result the paper's Section 1 builds on).
#ifndef LBSA_SPEC_COUNTER_TYPE_H_
#define LBSA_SPEC_COUNTER_TYPE_H_

#include "spec/object_type.h"

namespace lbsa::spec {

// FETCH_ADD(delta) is encoded as a WRITE-coded operation? No — it gets its
// own opcode would bloat the shared enum for a demo type; instead the
// counter reuses kPropose(delta) as "fetch-and-add delta, return the old
// value" and kRead as "read current value". Documented here because the
// opcode names do not match the counter vocabulary.
class CounterType final : public ObjectType {
 public:
  explicit CounterType(Value initial_value = 0);

  std::string name() const override;
  std::vector<std::int64_t> initial_state() const override;
  Status validate(const Operation& op) const override;
  void apply(std::span<const std::int64_t> state, const Operation& op,
             std::vector<Outcome>* outcomes) const override;
  bool deterministic() const override { return true; }

 private:
  Value initial_value_;
};

}  // namespace lbsa::spec

#endif  // LBSA_SPEC_COUNTER_TYPE_H_
