#include "spec/classic_types.h"

#include "base/check.h"

namespace lbsa::spec {

// ------------------------------- test&set ---------------------------------

Status TestAndSetType::validate(const Operation& op) const {
  if (op.code != OpCode::kTestAndSet) {
    return invalid_argument("test&set accepts only TAS()");
  }
  if (op.arg0 != kNil || op.arg1 != kNil) {
    return invalid_argument("TAS takes no arguments");
  }
  return Status::ok();
}

void TestAndSetType::apply(std::span<const std::int64_t> state,
                           const Operation& op,
                           std::vector<Outcome>* outcomes) const {
  LBSA_CHECK(state.size() == 1);
  LBSA_CHECK(op.code == OpCode::kTestAndSet);
  outcomes->push_back(Outcome{state[0], {1}});
}

// ----------------------------- compare&swap -------------------------------

CompareAndSwapType::CompareAndSwapType(Value initial_value)
    : initial_value_(initial_value) {
  LBSA_CHECK(initial_value == kNil || is_ordinary(initial_value));
}

std::vector<std::int64_t> CompareAndSwapType::initial_state() const {
  return {initial_value_};
}

Status CompareAndSwapType::validate(const Operation& op) const {
  switch (op.code) {
    case OpCode::kRead:
      if (op.arg0 != kNil || op.arg1 != kNil) {
        return invalid_argument("READ takes no arguments");
      }
      return Status::ok();
    case OpCode::kCompareAndSwap:
      if (op.arg0 != kNil && !is_ordinary(op.arg0)) {
        return invalid_argument("CAS expected value must be ordinary or NIL");
      }
      if (!is_ordinary(op.arg1)) {
        return invalid_argument("CAS desired value must be ordinary");
      }
      return Status::ok();
    default:
      return invalid_argument("compare&swap accepts only READ / CAS");
  }
}

void CompareAndSwapType::apply(std::span<const std::int64_t> state,
                               const Operation& op,
                               std::vector<Outcome>* outcomes) const {
  LBSA_CHECK(state.size() == 1);
  const Value current = state[0];
  if (op.code == OpCode::kRead) {
    outcomes->push_back(Outcome{current, {current}});
    return;
  }
  LBSA_CHECK(op.code == OpCode::kCompareAndSwap);
  const Value next = (current == op.arg0) ? op.arg1 : current;
  outcomes->push_back(Outcome{current, {next}});
}

// --------------------------------- queue ----------------------------------

QueueType::QueueType(int capacity, std::vector<Value> initial_items)
    : capacity_(capacity), initial_items_(std::move(initial_items)) {
  LBSA_CHECK(capacity >= 1);
  LBSA_CHECK(static_cast<int>(initial_items_.size()) <= capacity);
  for (Value v : initial_items_) LBSA_CHECK(is_ordinary(v));
}

std::string QueueType::name() const {
  return "queue<" + std::to_string(capacity_) + ">";
}

std::vector<std::int64_t> QueueType::initial_state() const {
  std::vector<std::int64_t> state(1 + static_cast<size_t>(capacity_), kNil);
  state[0] = static_cast<std::int64_t>(initial_items_.size());
  for (size_t i = 0; i < initial_items_.size(); ++i) {
    state[1 + i] = initial_items_[i];
  }
  return state;
}

Status QueueType::validate(const Operation& op) const {
  switch (op.code) {
    case OpCode::kEnqueue:
      if (!is_ordinary(op.arg0)) {
        return invalid_argument("ENQUEUE requires an ordinary value");
      }
      if (op.arg1 != kNil) return invalid_argument("ENQUEUE takes one arg");
      return Status::ok();
    case OpCode::kDequeue:
      if (op.arg0 != kNil || op.arg1 != kNil) {
        return invalid_argument("DEQUEUE takes no arguments");
      }
      return Status::ok();
    default:
      return invalid_argument("queue accepts only ENQUEUE / DEQUEUE");
  }
}

void QueueType::apply(std::span<const std::int64_t> state,
                      const Operation& op,
                      std::vector<Outcome>* outcomes) const {
  LBSA_CHECK(state.size() == 1 + static_cast<size_t>(capacity_));
  const std::int64_t count = state[0];
  if (op.code == OpCode::kEnqueue) {
    if (count >= capacity_) {
      outcomes->push_back(
          Outcome{kBottom, {state.begin(), state.end()}});
      return;
    }
    std::vector<std::int64_t> next(state.begin(), state.end());
    next[0] = count + 1;
    next[1 + static_cast<size_t>(count)] = op.arg0;
    outcomes->push_back(Outcome{kDone, std::move(next)});
    return;
  }
  LBSA_CHECK(op.code == OpCode::kDequeue);
  if (count == 0) {
    outcomes->push_back(Outcome{kNil, {state.begin(), state.end()}});
    return;
  }
  std::vector<std::int64_t> next(state.begin(), state.end());
  const Value head = next[1];
  // Shift the remaining items toward the head; clear the tail slot.
  for (std::int64_t i = 1; i < count; ++i) {
    next[static_cast<size_t>(i)] = next[static_cast<size_t>(i) + 1];
  }
  next[static_cast<size_t>(count)] = kNil;
  next[0] = count - 1;
  outcomes->push_back(Outcome{head, std::move(next)});
}

}  // namespace lbsa::spec
