#include "spec/coin_type.h"

#include "base/check.h"

namespace lbsa::spec {

Status CoinType::validate(const Operation& op) const {
  if (op.code != OpCode::kRead || op.arg0 != kNil || op.arg1 != kNil) {
    return invalid_argument("coin accepts only FLIP()");
  }
  return Status::ok();
}

void CoinType::apply(std::span<const std::int64_t> state,
                     const Operation& op,
                     std::vector<Outcome>* outcomes) const {
  LBSA_CHECK(state.empty());
  LBSA_CHECK(op.code == OpCode::kRead);
  outcomes->push_back(Outcome{0, {}});
  outcomes->push_back(Outcome{1, {}});
}

}  // namespace lbsa::spec
