#include "spec/register_type.h"

#include "base/check.h"

namespace lbsa::spec {

RegisterType::RegisterType(Value initial_value)
    : initial_value_(initial_value) {
  LBSA_CHECK(initial_value == kNil || is_ordinary(initial_value));
}

std::string RegisterType::name() const { return "register"; }

std::vector<std::int64_t> RegisterType::initial_state() const {
  return {initial_value_};
}

Status RegisterType::validate(const Operation& op) const {
  switch (op.code) {
    case OpCode::kRead:
      if (op.arg0 != kNil || op.arg1 != kNil) {
        return invalid_argument("READ takes no arguments");
      }
      return Status::ok();
    case OpCode::kWrite:
      if (!is_ordinary(op.arg0)) {
        return invalid_argument("WRITE requires an ordinary value");
      }
      if (op.arg1 != kNil) return invalid_argument("WRITE takes one argument");
      return Status::ok();
    default:
      return invalid_argument("register accepts only READ/WRITE");
  }
}

void RegisterType::apply(std::span<const std::int64_t> state,
                         const Operation& op,
                         std::vector<Outcome>* outcomes) const {
  LBSA_CHECK(state.size() == 1);
  if (op.code == OpCode::kRead) {
    outcomes->push_back(Outcome{state[0], {state[0]}});
  } else {
    LBSA_CHECK(op.code == OpCode::kWrite);
    outcomes->push_back(Outcome{kDone, {op.arg0}});
  }
}

}  // namespace lbsa::spec
