// Classic consensus-hierarchy objects (Herlihy [10]). Not constructions of
// the paper, but the canonical inhabitants of the hierarchy the paper's
// separation result is about: test&set and FIFO queues at level 2,
// compare&swap at level ∞. The library ships them so that the paper's
// objects (O_n at level n, 2-SA at level 1) can be compared against the
// familiar landscape — in protocols, power sequences, and benches.
#ifndef LBSA_SPEC_CLASSIC_TYPES_H_
#define LBSA_SPEC_CLASSIC_TYPES_H_

#include "spec/object_type.h"

namespace lbsa::spec {

// One-shot-ish test&set bit: TAS() returns 0 to the first caller (who "wins")
// and 1 to everyone after. Consensus number 2.
class TestAndSetType final : public ObjectType {
 public:
  TestAndSetType() = default;

  std::string name() const override { return "test&set"; }
  std::vector<std::int64_t> initial_state() const override { return {0}; }
  Status validate(const Operation& op) const override;
  void apply(std::span<const std::int64_t> state, const Operation& op,
             std::vector<Outcome>* outcomes) const override;
  bool deterministic() const override { return true; }
};

// Compare&swap cell with a READ. CAS(expected, desired) installs desired iff
// the current value equals expected, and returns the value observed BEFORE
// the operation (so success is "response == expected"). Consensus number ∞.
class CompareAndSwapType final : public ObjectType {
 public:
  explicit CompareAndSwapType(Value initial_value = kNil);

  std::string name() const override { return "compare&swap"; }
  std::vector<std::int64_t> initial_state() const override;
  Status validate(const Operation& op) const override;
  void apply(std::span<const std::int64_t> state, const Operation& op,
             std::vector<Outcome>* outcomes) const override;
  bool deterministic() const override { return true; }

 private:
  Value initial_value_;
};

// Bounded FIFO queue. ENQUEUE(v) returns done (⊥ when full); DEQUEUE()
// returns the head (NIL when empty). Consensus number 2.
// State layout: [size, item_0 (head), ..., item_{capacity-1}].
class QueueType final : public ObjectType {
 public:
  explicit QueueType(int capacity, std::vector<Value> initial_items = {});

  int capacity() const { return capacity_; }

  std::string name() const override;
  std::vector<std::int64_t> initial_state() const override;
  Status validate(const Operation& op) const override;
  void apply(std::span<const std::int64_t> state, const Operation& op,
             std::vector<Outcome>* outcomes) const override;
  bool deterministic() const override { return true; }

  static std::int64_t size(std::span<const std::int64_t> state) {
    return state[0];
  }

 private:
  int capacity_;
  std::vector<Value> initial_items_;
};

}  // namespace lbsa::spec

#endif  // LBSA_SPEC_CLASSIC_TYPES_H_
