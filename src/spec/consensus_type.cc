#include "spec/consensus_type.h"

#include "base/check.h"

namespace lbsa::spec {

NConsensusType::NConsensusType(int n) : n_(n) { LBSA_CHECK(n >= 1); }

std::string NConsensusType::name() const {
  return std::to_string(n_) + "-consensus";
}

std::vector<std::int64_t> NConsensusType::initial_state() const {
  // [proposal_count, winner]
  return {0, kNil};
}

Status NConsensusType::validate(const Operation& op) const {
  if (op.code != OpCode::kPropose) {
    return invalid_argument("n-consensus accepts only PROPOSE(v)");
  }
  if (!is_ordinary(op.arg0)) {
    return invalid_argument("PROPOSE requires an ordinary value");
  }
  if (op.arg1 != kNil) return invalid_argument("PROPOSE takes one argument");
  return Status::ok();
}

void NConsensusType::apply(std::span<const std::int64_t> state,
                           const Operation& op,
                           std::vector<Outcome>* outcomes) const {
  LBSA_CHECK(state.size() == 2);
  LBSA_CHECK(op.code == OpCode::kPropose);
  const std::int64_t count = state[0];
  const Value current_winner = state[1];
  if (count >= n_) {
    // Exhausted: every subsequent propose returns ⊥ and leaves the state
    // unchanged — the object can no longer convey information.
    outcomes->push_back(Outcome{kBottom, {count, current_winner}});
    return;
  }
  const Value decided = (count == 0) ? op.arg0 : current_winner;
  outcomes->push_back(Outcome{decided, {count + 1, decided}});
}

}  // namespace lbsa::spec
