#include "spec/nm_pac_type.h"

#include "base/check.h"

namespace lbsa::spec {
namespace {

// Rewrites an (n,m)-PAC opcode into the component object's opcode.
Operation to_component_op(const Operation& op) {
  switch (op.code) {
    case OpCode::kProposeC:
      return Operation{OpCode::kPropose, op.arg0, kNil};
    case OpCode::kProposeP:
      return Operation{OpCode::kProposeLabeled, op.arg0, op.arg1};
    case OpCode::kDecideP:
      return Operation{OpCode::kDecideLabeled, op.arg0, kNil};
    default:
      LBSA_CHECK_MSG(false, "not an (n,m)-PAC opcode");
      return op;
  }
}

}  // namespace

NmPacType::NmPacType(int n, int m) : pac_(n), consensus_(m) {}

std::string NmPacType::name() const {
  return "(" + std::to_string(n()) + "," + std::to_string(m()) + ")-PAC";
}

std::vector<std::int64_t> NmPacType::initial_state() const {
  std::vector<std::int64_t> state = pac_.initial_state();
  const std::vector<std::int64_t> cons = consensus_.initial_state();
  state.insert(state.end(), cons.begin(), cons.end());
  return state;
}

Status NmPacType::validate(const Operation& op) const {
  switch (op.code) {
    case OpCode::kProposeC:
      return consensus_.validate(to_component_op(op));
    case OpCode::kProposeP:
    case OpCode::kDecideP:
      return pac_.validate(to_component_op(op));
    default:
      return invalid_argument(
          "(n,m)-PAC accepts only PROPOSEC / PROPOSEP / DECIDEP");
  }
}

void NmPacType::apply(std::span<const std::int64_t> state, const Operation& op,
                      std::vector<Outcome>* outcomes) const {
  const size_t pac_size = PacType::state_size(pac_.n());
  LBSA_CHECK(state.size() == pac_size + 2);
  const Operation component_op = to_component_op(op);

  std::vector<Outcome> sub;
  if (op.code == OpCode::kProposeC) {
    consensus_.apply(consensus_part(state), component_op, &sub);
  } else {
    pac_.apply(pac_part(state), component_op, &sub);
  }
  LBSA_CHECK(sub.size() == 1);  // both components are deterministic

  // Reassemble the composite state around the updated component.
  std::vector<std::int64_t> next(state.begin(), state.end());
  if (op.code == OpCode::kProposeC) {
    std::copy(sub[0].next_state.begin(), sub[0].next_state.end(),
              next.begin() + static_cast<std::ptrdiff_t>(pac_size));
  } else {
    std::copy(sub[0].next_state.begin(), sub[0].next_state.end(),
              next.begin());
  }
  outcomes->push_back(Outcome{sub[0].response, std::move(next)});
}

void NmPacType::rename_pids(std::span<const int> perm,
                            std::vector<std::int64_t>* state) const {
  const size_t pac_size = PacType::state_size(pac_.n());
  LBSA_CHECK(state->size() == pac_size + 2);
  LBSA_CHECK(static_cast<int>(perm.size()) <= pac_.n());
  std::vector<int> padded(perm.begin(), perm.end());
  for (int p = static_cast<int>(padded.size()); p < pac_.n(); ++p) {
    padded.push_back(p);
  }
  std::vector<std::int64_t> pac_state(
      state->begin(), state->begin() + static_cast<std::ptrdiff_t>(pac_size));
  pac_.rename_pids(padded, &pac_state);
  std::copy(pac_state.begin(), pac_state.end(), state->begin());
}

std::string NmPacType::state_to_string(
    std::span<const std::int64_t> state) const {
  return "{P=" + pac_.state_to_string(pac_part(state)) +
         ", C=" + consensus_.state_to_string(consensus_part(state)) + "}";
}

}  // namespace lbsa::spec
