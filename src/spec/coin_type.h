// A coin-flip object: FLIP() returns 0 or 1, chosen nondeterministically,
// with no state. In the simulation realm the adversary picks the outcome —
// the standard "adversarial coin" of randomized-consensus lower bounds; a
// random scheduler realizes the fair coin.
//
// This object exists for the randomized-consensus extension (the Ben-Or
// style protocol in protocols/ben_or.h): FLP-style impossibility — the
// engine of the paper's Theorems 4.2/5.2 — only rules out DETERMINISTIC
// termination, and the coin is the minimal object that shows the boundary:
// safety holds under every coin outcome, termination only with probability
// 1. A coin conveys no information between processes (responses are
// independent of everything), so it adds no consensus power of its own.
#ifndef LBSA_SPEC_COIN_TYPE_H_
#define LBSA_SPEC_COIN_TYPE_H_

#include "spec/object_type.h"

namespace lbsa::spec {

class CoinType final : public ObjectType {
 public:
  CoinType() = default;

  std::string name() const override { return "coin"; }
  std::vector<std::int64_t> initial_state() const override { return {}; }
  Status validate(const Operation& op) const override;
  void apply(std::span<const std::int64_t> state, const Operation& op,
             std::vector<Outcome>* outcomes) const override;
  bool deterministic() const override { return false; }
};

// FLIP is encoded as a READ (the coin has no arguments and no state).
inline Operation make_flip() { return make_read(); }

}  // namespace lbsa::spec

#endif  // LBSA_SPEC_COIN_TYPE_H_
