// The n-consensus object, exactly as in the paper's footnote 6 (after
// Jayanti [12] and Qadri [13]):
//
//   "for the first n propose operations, the n-consensus object returns the
//    value of the first propose operation, and it returns a special value ⊥
//    to any subsequent propose operation."
//
// This bounded behaviour is load-bearing in the proof of Claim 4.2.9 ("after
// n operations have been performed on it, X is no longer useful in
// differentiating between configurations"), so we implement it literally:
// the object counts proposes and shuts off after n. Deterministic.
#ifndef LBSA_SPEC_CONSENSUS_TYPE_H_
#define LBSA_SPEC_CONSENSUS_TYPE_H_

#include "spec/object_type.h"

namespace lbsa::spec {

class NConsensusType final : public ObjectType {
 public:
  explicit NConsensusType(int n);

  int n() const { return n_; }

  std::string name() const override;
  std::vector<std::int64_t> initial_state() const override;
  Status validate(const Operation& op) const override;
  void apply(std::span<const std::int64_t> state, const Operation& op,
             std::vector<Outcome>* outcomes) const override;
  bool deterministic() const override { return true; }

  // State layout accessors (used by tests and the concurrent realm).
  static Value proposal_count(std::span<const std::int64_t> state) {
    return state[0];
  }
  static Value winner(std::span<const std::int64_t> state) { return state[1]; }

 private:
  int n_;
};

}  // namespace lbsa::spec

#endif  // LBSA_SPEC_CONSENSUS_TYPE_H_
