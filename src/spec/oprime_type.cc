#include "spec/oprime_type.h"

#include "base/check.h"

namespace lbsa::spec {

namespace {

std::vector<KsaType> canonical_members(const std::vector<int>& port_bounds) {
  std::vector<KsaType> members;
  members.reserve(port_bounds.size());
  for (size_t idx = 0; idx < port_bounds.size(); ++idx) {
    members.emplace_back(port_bounds[idx], static_cast<int>(idx) + 1);
  }
  return members;
}

}  // namespace

OPrimeType::OPrimeType(std::vector<int> port_bounds)
    : OPrimeType(canonical_members(port_bounds)) {}

OPrimeType::OPrimeType(std::vector<KsaType> members)
    : members_(std::move(members)) {
  LBSA_CHECK_MSG(!members_.empty(), "O' needs at least one member");
  offsets_.reserve(members_.size());
  for (const KsaType& member : members_) {
    offsets_.push_back(total_state_size_);
    total_state_size_ += member.initial_state().size();
  }
}

const KsaType& OPrimeType::member(int k) const {
  LBSA_CHECK(k >= 1 && k <= k_max());
  return members_[static_cast<size_t>(k - 1)];
}

std::string OPrimeType::name() const {
  std::string out = "O'{";
  for (int k = 1; k <= k_max(); ++k) {
    if (k > 1) out += ", ";
    out += member(k).name();
  }
  out += "}";
  return out;
}

std::vector<std::int64_t> OPrimeType::initial_state() const {
  std::vector<std::int64_t> state;
  state.reserve(total_state_size_);
  for (const KsaType& m : members_) {
    const auto sub = m.initial_state();
    state.insert(state.end(), sub.begin(), sub.end());
  }
  return state;
}

Status OPrimeType::validate(const Operation& op) const {
  if (op.code != OpCode::kProposeK) {
    return invalid_argument("O' accepts only PROPOSE(v, k)");
  }
  if (!is_ordinary(op.arg0)) {
    return invalid_argument("PROPOSE requires an ordinary value");
  }
  if (op.arg1 < 1 || op.arg1 > k_max()) {
    return out_of_range("PROPOSE(v, k) level outside [1..k_max]");
  }
  return Status::ok();
}

std::span<const std::int64_t> OPrimeType::member_state(
    std::span<const std::int64_t> state, int k) const {
  LBSA_CHECK(k >= 1 && k <= k_max());
  const size_t offset = offsets_[static_cast<size_t>(k - 1)];
  const size_t size = 2 + static_cast<size_t>(member(k).k());
  return state.subspan(offset, size);
}

void OPrimeType::apply(std::span<const std::int64_t> state,
                       const Operation& op,
                       std::vector<Outcome>* outcomes) const {
  LBSA_CHECK(state.size() == total_state_size_);
  LBSA_CHECK(op.code == OpCode::kProposeK);
  const int k = static_cast<int>(op.arg1);
  const Operation member_op = make_propose(op.arg0);

  std::vector<Outcome> sub;
  member(k).apply(member_state(state, k), member_op, &sub);

  const size_t offset = offsets_[static_cast<size_t>(k - 1)];
  for (Outcome& o : sub) {
    std::vector<std::int64_t> next(state.begin(), state.end());
    std::copy(o.next_state.begin(), o.next_state.end(),
              next.begin() + static_cast<std::ptrdiff_t>(offset));
    outcomes->push_back(Outcome{o.response, std::move(next)});
  }
}

bool OPrimeType::deterministic() const {
  for (const KsaType& m : members_) {
    if (!m.deterministic()) return false;
  }
  return true;
}

std::string OPrimeType::state_to_string(
    std::span<const std::int64_t> state) const {
  std::string out = "{";
  for (int k = 1; k <= k_max(); ++k) {
    if (k > 1) out += ", ";
    out += member(k).name() + "=" +
           member(k).ObjectType::state_to_string(member_state(state, k));
  }
  out += "}";
  return out;
}

}  // namespace lbsa::spec
