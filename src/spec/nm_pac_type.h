// The (n,m)-PAC object of Section 5: the disjoint union of an n-PAC object P
// and an m-consensus object C behind one interface.
//
//   PROPOSEC(v)    -> C.PROPOSE(v)
//   PROPOSEP(v, i) -> P.PROPOSE(v, i)
//   DECIDEP(i)     -> P.DECIDE(i)
//
// Deterministic (both components are). Theorem 5.3: for m >= 2 this object
// sits at level m of the consensus hierarchy regardless of n; the paper's
// separating object O_n is the (n+1, n)-PAC object.
#ifndef LBSA_SPEC_NM_PAC_TYPE_H_
#define LBSA_SPEC_NM_PAC_TYPE_H_

#include "spec/consensus_type.h"
#include "spec/pac_type.h"

namespace lbsa::spec {

class NmPacType final : public ObjectType {
 public:
  NmPacType(int n, int m);

  int n() const { return pac_.n(); }
  int m() const { return consensus_.n(); }

  std::string name() const override;
  std::vector<std::int64_t> initial_state() const override;
  Status validate(const Operation& op) const override;
  void apply(std::span<const std::int64_t> state, const Operation& op,
             std::vector<Outcome>* outcomes) const override;
  bool deterministic() const override { return true; }
  // The P-part stores pid-derived words (the label register L and the
  // label-indexed V slots); the C-part ([count, winner]) holds only values.
  // Protocols on the consensus port may run with fewer than n processes, so
  // the permutation is padded with fixed points up to n before delegating to
  // the n-PAC renamer.
  void rename_pids(std::span<const int> perm,
                   std::vector<std::int64_t>* state) const override;
  bool renames_pids() const override { return true; }
  std::string state_to_string(std::span<const std::int64_t> state) const override;

  // State layout: P's state followed by C's state.
  std::span<const std::int64_t> pac_part(
      std::span<const std::int64_t> state) const {
    return state.subspan(0, PacType::state_size(pac_.n()));
  }
  std::span<const std::int64_t> consensus_part(
      std::span<const std::int64_t> state) const {
    return state.subspan(PacType::state_size(pac_.n()));
  }

  const PacType& pac_type() const { return pac_; }
  const NConsensusType& consensus_type() const { return consensus_; }

 private:
  PacType pac_;
  NConsensusType consensus_;
};

// O_n = (n+1, n)-PAC (Definition 6.1).
inline NmPacType make_o_n_type(int n) { return NmPacType(n + 1, n); }

}  // namespace lbsa::spec

#endif  // LBSA_SPEC_NM_PAC_TYPE_H_
