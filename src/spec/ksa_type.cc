#include "spec/ksa_type.h"

#include <algorithm>

#include "base/check.h"

namespace lbsa::spec {

KsaType::KsaType(int port_bound, int k) : port_bound_(port_bound), k_(k) {
  LBSA_CHECK(port_bound == kUnboundedPorts || port_bound >= 1);
  LBSA_CHECK(k >= 1);
}

std::string KsaType::name() const {
  if (unbounded() && k_ == 2) return "2-SA";
  const std::string ports = unbounded() ? "∞" : std::to_string(port_bound_);
  return "(" + ports + "," + std::to_string(k_) + ")-SA";
}

std::vector<std::int64_t> KsaType::initial_state() const {
  std::vector<std::int64_t> state(2 + static_cast<size_t>(k_), kNil);
  state[0] = 0;  // propose_count
  state[1] = 0;  // set_size
  return state;
}

Status KsaType::validate(const Operation& op) const {
  if (op.code != OpCode::kPropose) {
    return invalid_argument("(n,k)-SA accepts only PROPOSE(v)");
  }
  if (!is_ordinary(op.arg0)) {
    return invalid_argument("PROPOSE requires an ordinary value");
  }
  if (op.arg1 != kNil) return invalid_argument("PROPOSE takes one argument");
  return Status::ok();
}

void KsaType::apply(std::span<const std::int64_t> state, const Operation& op,
                    std::vector<Outcome>* outcomes) const {
  LBSA_CHECK(state.size() == 2 + static_cast<size_t>(k_));
  LBSA_CHECK(op.code == OpCode::kPropose);
  const std::int64_t count = state[0];
  std::int64_t size = state[1];

  if (!unbounded() && count >= port_bound_) {
    // Port budget exhausted: the object serves at most port_bound processes.
    std::vector<std::int64_t> unchanged(state.begin(), state.end());
    outcomes->push_back(Outcome{kBottom, std::move(unchanged)});
    return;
  }

  std::vector<std::int64_t> next(state.begin(), state.end());
  next[0] = count + 1;

  // STATE <- STATE ∪ {v} if |STATE| < k (set semantics: no duplicates).
  const auto slots = std::span<const std::int64_t>(state).subspan(2);
  const bool already_present =
      std::find(slots.begin(), slots.begin() + size, op.arg0) !=
      slots.begin() + size;
  if (size < k_ && !already_present) {
    next[2 + static_cast<size_t>(size)] = op.arg0;
    ++size;
    next[1] = size;
  }

  // Return an arbitrarily selected member of STATE: one outcome per member.
  // (STATE is nonempty here: either it already was, or we just inserted v.)
  LBSA_CHECK(size >= 1);
  for (std::int64_t j = 0; j < size; ++j) {
    outcomes->push_back(
        Outcome{next[2 + static_cast<size_t>(j)], next});
  }
}

}  // namespace lbsa::spec
