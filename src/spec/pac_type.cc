#include "spec/pac_type.h"

#include "base/check.h"

namespace lbsa::spec {

PacType::PacType(int n) : n_(n) { LBSA_CHECK(n >= 1); }

std::string PacType::name() const { return std::to_string(n_) + "-PAC"; }

std::vector<std::int64_t> PacType::initial_state() const {
  // upset = false, L = NIL, val = NIL, V[1..n] = NIL.
  std::vector<std::int64_t> state(state_size(n_), kNil);
  state[0] = 0;
  return state;
}

Status PacType::validate(const Operation& op) const {
  switch (op.code) {
    case OpCode::kProposeLabeled: {
      if (!is_ordinary(op.arg0)) {
        return invalid_argument("PROPOSE(v, i) requires an ordinary value");
      }
      if (op.arg1 < 1 || op.arg1 > n_) {
        return out_of_range("PROPOSE(v, i) label outside [1..n]");
      }
      return Status::ok();
    }
    case OpCode::kDecideLabeled: {
      if (op.arg0 < 1 || op.arg0 > n_) {
        return out_of_range("DECIDE(i) label outside [1..n]");
      }
      if (op.arg1 != kNil) return invalid_argument("DECIDE takes one argument");
      return Status::ok();
    }
    default:
      return invalid_argument("n-PAC accepts only PROPOSE(v, i) / DECIDE(i)");
  }
}

void PacType::apply(std::span<const std::int64_t> state, const Operation& op,
                    std::vector<Outcome>* outcomes) const {
  LBSA_CHECK(state.size() == state_size(n_));
  std::vector<std::int64_t> next(state.begin(), state.end());
  bool is_upset = next[0] != 0;

  if (op.code == OpCode::kProposeLabeled) {
    // Algorithm 1, PROPOSE(v, i):
    //   if V[i] != NIL then upset <- true
    //   if upset = false then L <- i; V[i] <- v
    //   return done
    const Value v = op.arg0;
    const std::int64_t i = op.arg1;
    const size_t vi = 2 + static_cast<size_t>(i);
    if (next[vi] != kNil) {
      is_upset = true;
      next[0] = 1;
    }
    if (!is_upset) {
      next[1] = i;   // L <- i
      next[vi] = v;  // V[i] <- v
    }
    outcomes->push_back(Outcome{kDone, std::move(next)});
    return;
  }

  LBSA_CHECK(op.code == OpCode::kDecideLabeled);
  // Algorithm 1, DECIDE(i):
  //   if V[i] = NIL then upset <- true
  //   if upset = true then return ⊥            (early return: L, V untouched)
  //   if L != i then temp <- ⊥
  //   else { if val = NIL then val <- V[i]; temp <- val }
  //   L <- NIL; V[i] <- NIL
  //   return temp
  const std::int64_t i = op.arg0;
  const size_t vi = 2 + static_cast<size_t>(i);
  if (next[vi] == kNil) {
    is_upset = true;
    next[0] = 1;
  }
  if (is_upset) {
    outcomes->push_back(Outcome{kBottom, std::move(next)});
    return;
  }
  Value temp = kBottom;
  if (next[1] == i) {  // L == i: no operation intervened since the propose
    if (next[2] == kNil) next[2] = next[vi];  // val <- V[i]
    temp = next[2];
  }
  next[1] = kNil;   // L <- NIL
  next[vi] = kNil;  // V[i] <- NIL
  outcomes->push_back(Outcome{temp, std::move(next)});
}

void PacType::rename_pids(std::span<const int> perm,
                          std::vector<std::int64_t>* state) const {
  LBSA_CHECK(state->size() == state_size(n_));
  LBSA_CHECK(static_cast<int>(perm.size()) == n_);
  std::vector<std::int64_t>& s = *state;
  // L holds a 1-based label derived from a pid (or NIL / garbage-free ⊥
  // states never reach here); rename it if it is a live label.
  if (s[1] >= 1 && s[1] <= n_) {
    s[1] = perm[static_cast<std::size_t>(s[1] - 1)] + 1;
  }
  // Permute the label-indexed V slots: new V[perm[p]+1] = old V[p+1].
  std::vector<std::int64_t> v(s.begin() + 3, s.end());
  for (int p = 0; p < n_; ++p) {
    s[3 + static_cast<std::size_t>(perm[static_cast<std::size_t>(p)])] =
        v[static_cast<std::size_t>(p)];
  }
}

std::string PacType::state_to_string(
    std::span<const std::int64_t> state) const {
  std::string out = "{upset=";
  out += state[0] != 0 ? "true" : "false";
  out += ", L=" + value_to_string(state[1]);
  out += ", val=" + value_to_string(state[2]);
  out += ", V=[";
  for (int i = 1; i <= n_; ++i) {
    if (i > 1) out += ", ";
    out += value_to_string(v_slot(state, i));
  }
  out += "]}";
  return out;
}

}  // namespace lbsa::spec
