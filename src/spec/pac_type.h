// The n-pseudo-abortable-consensus (n-PAC) object — Algorithm 1 of the
// paper, the paper's central construction. An n-PAC object is the
// deterministic, non-abortable stand-in for an n-DAC object [Hadzilacos &
// Toueg, PODC'13]: PROPOSE(v, i) / DECIDE(i) pairs with label i in [1..n]
// simulate a propose on port i of an n-DAC object.
//
// Behavioural summary (Theorem 3.5):
//   * Agreement: two decide operations that both return non-⊥ return the
//     same value.
//   * Validity:  a non-⊥ decided value was proposed (and decided) by a
//     matching propose.
//   * Nontriviality: DECIDE(i) returns ⊥ iff the object is upset, or the
//     immediately preceding operation is not PROPOSE(-, i) — i.e. the object
//     "detected concurrency" between the propose and its matching decide.
//
// The object becomes permanently *upset* exactly when its operation history
// stops being legal (Lemma 3.2): a DECIDE(i) with no pending PROPOSE(-, i),
// or two PROPOSE(-, i) with no DECIDE(i) in between. Once upset it answers ⊥
// to every decide while still acknowledging every propose with "done" — that
// asymmetry (proposes never reveal upset-ness) is what the proofs of
// Claims 5.2.6–5.2.8 exploit.
#ifndef LBSA_SPEC_PAC_TYPE_H_
#define LBSA_SPEC_PAC_TYPE_H_

#include "spec/object_type.h"

namespace lbsa::spec {

class PacType final : public ObjectType {
 public:
  explicit PacType(int n);

  int n() const { return n_; }

  std::string name() const override;
  std::vector<std::int64_t> initial_state() const override;
  Status validate(const Operation& op) const override;
  void apply(std::span<const std::int64_t> state, const Operation& op,
             std::vector<Outcome>* outcomes) const override;
  bool deterministic() const override { return true; }
  // n-PAC is the one object here whose state stores pid-derived words: the
  // label register L and the V slots are indexed by 1-based labels, which
  // protocols derive from pids (label = pid + 1 in Algorithm 2).
  void rename_pids(std::span<const int> perm,
                   std::vector<std::int64_t>* state) const override;
  bool renames_pids() const override { return true; }
  std::string state_to_string(std::span<const std::int64_t> state) const override;

  // State layout: [upset, L, val, V[1], ..., V[n]] (labels are 1-based as in
  // the paper; V[i] lives at index 2 + i).
  static bool upset(std::span<const std::int64_t> state) { return state[0] != 0; }
  static Value label_var(std::span<const std::int64_t> state) { return state[1]; }
  static Value val_var(std::span<const std::int64_t> state) { return state[2]; }
  static Value v_slot(std::span<const std::int64_t> state, std::int64_t i) {
    return state[2 + static_cast<size_t>(i)];
  }

  // The size of a PacType(n) state vector.
  static size_t state_size(int n) { return 3 + static_cast<size_t>(n); }

 private:
  int n_;
};

}  // namespace lbsa::spec

#endif  // LBSA_SPEC_PAC_TYPE_H_
