// Sequential specifications of linearizable shared objects.
//
// Every object in the paper — registers, n-consensus objects (footnote 6),
// strong 2-SA objects (Algorithm 3), (n,k)-SA objects, n-PAC objects
// (Algorithm 1), and their combinations (n,m)-PAC and O'_n — is specified
// here as a deterministic-or-nondeterministic sequential state machine:
//
//   apply : State x Operation -> set of (response, State')
//
// States are flattened std::vector<int64_t> so the simulator, the model
// checker, and the linearizability checker can snapshot, hash, and compare
// configurations without knowing anything type-specific. A deterministic
// object yields exactly one outcome per (state, operation); the only
// nondeterministic objects in the paper are the (n,k)-SA family for k >= 2,
// whose PROPOSE returns an arbitrarily selected member of the object's STATE
// set — apply enumerates every member as a separate outcome, and schedulers
// / adversaries pick among them.
#ifndef LBSA_SPEC_OBJECT_TYPE_H_
#define LBSA_SPEC_OBJECT_TYPE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/values.h"

namespace lbsa::spec {

// Operation codes across all object types. Each ObjectType documents and
// validates the subset it accepts.
enum class OpCode : std::int32_t {
  kRead = 0,        // registers:            READ()            -> value
  kWrite,           // registers:            WRITE(v)          -> done
  kPropose,         // consensus / (n,k)-SA: PROPOSE(v)        -> value | ⊥
  kProposeLabeled,  // n-PAC:                PROPOSE(v, i)     -> done
  kDecideLabeled,   // n-PAC:                DECIDE(i)         -> value | ⊥
  kProposeC,        // (n,m)-PAC:            PROPOSEC(v)       -> value | ⊥
  kProposeP,        // (n,m)-PAC:            PROPOSEP(v, i)    -> done
  kDecideP,         // (n,m)-PAC:            DECIDEP(i)        -> value | ⊥
  kProposeK,        // O'_n:                 PROPOSE(v, k)     -> value | ⊥
  // Classic consensus-hierarchy objects (Herlihy [10]) — not paper objects,
  // but the context the consensus hierarchy lives in:
  kTestAndSet,      // test&set:             TAS()             -> 0 (won) | 1
  kCompareAndSwap,  // compare&swap:         CAS(expected, new) -> old value
  kEnqueue,         // FIFO queue:           ENQUEUE(v)        -> done | ⊥ (full)
  kDequeue,         // FIFO queue:           DEQUEUE()         -> value | NIL (empty)
};

// Short mnemonic for an OpCode ("READ", "PROPOSE", ...).
const char* op_code_name(OpCode code);

// An operation instance: an opcode plus up to two arguments. The meaning of
// args is per-opcode (value, label, or level); unused slots must be kNil.
struct Operation {
  OpCode code = OpCode::kRead;
  Value arg0 = kNil;
  Value arg1 = kNil;

  friend bool operator==(const Operation&, const Operation&) = default;
};

// Convenience constructors mirroring the paper's notation.
Operation make_read();
Operation make_write(Value v);
Operation make_propose(Value v);
Operation make_propose_labeled(Value v, std::int64_t label);
Operation make_decide_labeled(std::int64_t label);
Operation make_propose_c(Value v);
Operation make_propose_p(Value v, std::int64_t label);
Operation make_decide_p(std::int64_t label);
Operation make_propose_k(Value v, std::int64_t level);
Operation make_test_and_set();
// expected may be kNil (to match an unset slot); desired must be ordinary.
Operation make_compare_and_swap(Value expected, Value desired);
Operation make_enqueue(Value v);
Operation make_dequeue();

// One possible effect of applying an operation.
struct Outcome {
  Value response = kNil;
  std::vector<std::int64_t> next_state;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

// A sequential object specification. Implementations must be stateless
// (all object state lives in the state vectors), so a single ObjectType
// instance can serve any number of object instances concurrently.
class ObjectType {
 public:
  virtual ~ObjectType() = default;

  // Human-readable type name, e.g. "3-PAC", "(4,2)-SA", "register".
  virtual std::string name() const = 0;

  // State vector of a freshly created object.
  virtual std::vector<std::int64_t> initial_state() const = 0;

  // OK iff op is well-formed for this type (accepted opcode, label/level in
  // range, ordinary proposal values). apply() must only be called with
  // validated operations.
  virtual Status validate(const Operation& op) const = 0;

  // Enumerates every legal (response, next-state) pair for op in `state`.
  // Appends at least one outcome; outcomes are distinct. `state` must have
  // been produced by this type.
  virtual void apply(std::span<const std::int64_t> state, const Operation& op,
                     std::vector<Outcome>* outcomes) const = 0;

  // True iff apply always yields exactly one outcome.
  virtual bool deterministic() const = 0;

  // Rewrites pid-valued words inside `state` under the process renaming
  // perm (perm[old_pid] = new_pid, pids 0-based). The default assumes the
  // state stores no pids — true for every value-indexed object here except
  // n-PAC, whose label words are pid-derived. Used by the model checker's
  // symmetry reduction (sim/symmetry.h); must satisfy
  // rename(apply(s, op)) == apply(rename(s), rename(op)) outcome-wise.
  virtual void rename_pids(std::span<const int> perm,
                           std::vector<std::int64_t>* state) const {
    (void)perm;
    (void)state;
  }

  // True iff rename_pids is a real rewrite (the state stores pids). Paired
  // with rename_pids: types overriding one must override the other. The
  // canonical search compares pid-free object states in place (no copy, no
  // virtual call per permutation) when this is false; the oracle
  // cross-check in tests/sim/symmetry_test.cc catches a violated pairing
  // for every tested type.
  virtual bool renames_pids() const { return false; }

  // Diagnostics.
  virtual std::string operation_to_string(const Operation& op) const;
  virtual std::string state_to_string(
      std::span<const std::int64_t> state) const;

  // Convenience: apply an operation that must be deterministic at this
  // (state, op) — i.e. produce exactly one outcome — and return it.
  Outcome apply_unique(std::span<const std::int64_t> state,
                       const Operation& op) const;
};

}  // namespace lbsa::spec

#endif  // LBSA_SPEC_OBJECT_TYPE_H_
