#include "spec/object_type.h"

#include "base/check.h"

namespace lbsa::spec {

const char* op_code_name(OpCode code) {
  switch (code) {
    case OpCode::kRead:
      return "READ";
    case OpCode::kWrite:
      return "WRITE";
    case OpCode::kPropose:
      return "PROPOSE";
    case OpCode::kProposeLabeled:
      return "PROPOSE_L";
    case OpCode::kDecideLabeled:
      return "DECIDE_L";
    case OpCode::kProposeC:
      return "PROPOSEC";
    case OpCode::kProposeP:
      return "PROPOSEP";
    case OpCode::kDecideP:
      return "DECIDEP";
    case OpCode::kProposeK:
      return "PROPOSE_K";
    case OpCode::kTestAndSet:
      return "TAS";
    case OpCode::kCompareAndSwap:
      return "CAS";
    case OpCode::kEnqueue:
      return "ENQUEUE";
    case OpCode::kDequeue:
      return "DEQUEUE";
  }
  return "UNKNOWN";
}

Operation make_read() { return Operation{OpCode::kRead, kNil, kNil}; }
Operation make_write(Value v) { return Operation{OpCode::kWrite, v, kNil}; }
Operation make_propose(Value v) { return Operation{OpCode::kPropose, v, kNil}; }
Operation make_propose_labeled(Value v, std::int64_t label) {
  return Operation{OpCode::kProposeLabeled, v, label};
}
Operation make_decide_labeled(std::int64_t label) {
  return Operation{OpCode::kDecideLabeled, label, kNil};
}
Operation make_propose_c(Value v) { return Operation{OpCode::kProposeC, v, kNil}; }
Operation make_propose_p(Value v, std::int64_t label) {
  return Operation{OpCode::kProposeP, v, label};
}
Operation make_decide_p(std::int64_t label) {
  return Operation{OpCode::kDecideP, label, kNil};
}
Operation make_propose_k(Value v, std::int64_t level) {
  return Operation{OpCode::kProposeK, v, level};
}
Operation make_test_and_set() {
  return Operation{OpCode::kTestAndSet, kNil, kNil};
}
Operation make_compare_and_swap(Value expected, Value desired) {
  return Operation{OpCode::kCompareAndSwap, expected, desired};
}
Operation make_enqueue(Value v) { return Operation{OpCode::kEnqueue, v, kNil}; }
Operation make_dequeue() { return Operation{OpCode::kDequeue, kNil, kNil}; }

std::string ObjectType::operation_to_string(const Operation& op) const {
  std::string out = op_code_name(op.code);
  out += "(";
  if (op.arg0 != kNil) out += value_to_string(op.arg0);
  if (op.arg1 != kNil) {
    out += ", ";
    out += value_to_string(op.arg1);
  }
  out += ")";
  return out;
}

std::string ObjectType::state_to_string(
    std::span<const std::int64_t> state) const {
  std::string out = "[";
  for (size_t i = 0; i < state.size(); ++i) {
    if (i > 0) out += ", ";
    out += value_to_string(state[i]);
  }
  out += "]";
  return out;
}

Outcome ObjectType::apply_unique(std::span<const std::int64_t> state,
                                 const Operation& op) const {
  std::vector<Outcome> outcomes;
  apply(state, op, &outcomes);
  LBSA_CHECK_MSG(outcomes.size() == 1,
                 "apply_unique on a nondeterministic (state, op)");
  return std::move(outcomes.front());
}

}  // namespace lbsa::spec
