#include "spec/counter_type.h"

#include "base/check.h"

namespace lbsa::spec {

CounterType::CounterType(Value initial_value)
    : initial_value_(initial_value) {
  LBSA_CHECK(is_ordinary(initial_value));
}

std::string CounterType::name() const { return "counter"; }

std::vector<std::int64_t> CounterType::initial_state() const {
  return {initial_value_};
}

Status CounterType::validate(const Operation& op) const {
  switch (op.code) {
    case OpCode::kRead:
      return Status::ok();
    case OpCode::kPropose:  // fetch-and-add(delta)
      if (!is_ordinary(op.arg0)) {
        return invalid_argument("fetch-and-add delta must be ordinary");
      }
      return Status::ok();
    default:
      return invalid_argument("counter accepts only READ / PROPOSE(delta)");
  }
}

void CounterType::apply(std::span<const std::int64_t> state,
                        const Operation& op,
                        std::vector<Outcome>* outcomes) const {
  LBSA_CHECK(state.size() == 1);
  if (op.code == OpCode::kRead) {
    outcomes->push_back(Outcome{state[0], {state[0]}});
    return;
  }
  LBSA_CHECK(op.code == OpCode::kPropose);
  outcomes->push_back(Outcome{state[0], {state[0] + op.arg0}});
}

}  // namespace lbsa::spec
