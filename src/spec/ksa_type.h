// The (n,k)-SA family of set-agreement objects.
//
// Two of the paper's objects live here:
//
//  * The strong 2-set-agreement object 2-SA (Algorithm 3): STATE is a set,
//    initially empty; PROPOSE(v) adds v if |STATE| < 2 and returns an
//    *arbitrarily selected* member of STATE. It serves any finite number of
//    processes. In our encoding: KsaType(kUnboundedPorts, 2).
//
//  * The (n,k)-SA objects of Section 6 (after Borowsky-Gafni [2] and
//    Chaudhuri-Reiners [6]), which let up to n processes solve k-set
//    agreement. We give them the same strong semantics, generalized: STATE
//    keeps the first k distinct proposals; the first n PROPOSE operations
//    return an arbitrary member of STATE, and — because the object only
//    "allows up to n processes" — every operation after the n-th returns ⊥.
//    With k = 1 this degenerates to exactly the n-consensus object of
//    footnote 6, which is the identity Lemma 6.4 uses ((n_1,1)-SA is
//    implemented by an n-consensus object).
//
// Nondeterminism: for k >= 2 a propose may return any current member of
// STATE; apply() enumerates each distinct member as a separate Outcome.
#ifndef LBSA_SPEC_KSA_TYPE_H_
#define LBSA_SPEC_KSA_TYPE_H_

#include "spec/object_type.h"

namespace lbsa::spec {

// Port bound meaning "any finite number of processes".
inline constexpr int kUnboundedPorts = -1;

class KsaType final : public ObjectType {
 public:
  // port_bound: max number of PROPOSE operations served before the object
  // shuts off (kUnboundedPorts for no limit). k: agreement parameter, >= 1.
  KsaType(int port_bound, int k);

  int port_bound() const { return port_bound_; }
  int k() const { return k_; }
  bool unbounded() const { return port_bound_ == kUnboundedPorts; }

  std::string name() const override;
  std::vector<std::int64_t> initial_state() const override;
  Status validate(const Operation& op) const override;
  void apply(std::span<const std::int64_t> state, const Operation& op,
             std::vector<Outcome>* outcomes) const override;
  bool deterministic() const override { return k_ == 1; }

  // State layout: [propose_count, set_size, slot_0, ..., slot_{k-1}].
  static std::int64_t propose_count(std::span<const std::int64_t> state) {
    return state[0];
  }
  static std::int64_t set_size(std::span<const std::int64_t> state) {
    return state[1];
  }
  static Value slot(std::span<const std::int64_t> state, int j) {
    return state[2 + static_cast<size_t>(j)];
  }

 private:
  int port_bound_;
  int k_;
};

// Convenience factory for the paper's strong 2-SA object.
inline KsaType make_two_sa_type() { return KsaType(kUnboundedPorts, 2); }

}  // namespace lbsa::spec

#endif  // LBSA_SPEC_KSA_TYPE_H_
