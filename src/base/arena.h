// Bump-pointer arenas with stable addresses, for the explorer hot path.
//
// WordArena hands out contiguous runs of int64 words from geometrically
// growing blocks. Unlike a std::vector, a block never moves once allocated,
// so pointers into the arena stay valid for the arena's lifetime — the
// batched intern table (modelcheck/batch_intern.h) stores key spans that
// point straight into per-worker arenas instead of copying every key into a
// shard-owned pool under a lock.
//
// Two usage patterns, both single-threaded per arena instance:
//   * persistent key arena: alloc() only; freed wholesale at destruction.
//   * scratch arena: alloc() during a batch, then reset() — the bump
//     cursor rewinds to the first block but the blocks are retained, so a
//     warmed-up scratch arena allocates nothing on subsequent batches.
#ifndef LBSA_BASE_ARENA_H_
#define LBSA_BASE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace lbsa {

class WordArena {
 public:
  explicit WordArena(std::size_t first_block_words = 4096)
      : first_block_words_(first_block_words == 0 ? 1 : first_block_words) {}
  WordArena(const WordArena&) = delete;
  WordArena& operator=(const WordArena&) = delete;
  WordArena(WordArena&&) = default;
  WordArena& operator=(WordArena&&) = default;

  // A run of n words (uninitialized). Stable for the arena's lifetime
  // (reset() notwithstanding). n == 0 returns a unique non-null cursor.
  std::int64_t* alloc(std::size_t n) {
    if (block_ >= blocks_.size() || used_ + n > blocks_[block_].words) {
      next_block(n);
    }
    std::int64_t* out = blocks_[block_].data.get() + used_;
    used_ += n;
    allocated_ += n;
    return out;
  }

  // Rewinds the bump cursor to the start, retaining every block. Previously
  // returned pointers become dangling: only for scratch arenas whose
  // contents have been fully consumed.
  void reset() {
    block_ = 0;
    used_ = 0;
    allocated_ = 0;
  }

  // Total words handed out since construction / the last reset().
  std::uint64_t allocated_words() const { return allocated_; }
  // Total words of block capacity currently held.
  std::uint64_t capacity_words() const {
    std::uint64_t total = 0;
    for (const Block& b : blocks_) total += b.words;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::int64_t[]> data;
    std::size_t words = 0;
  };

  void next_block(std::size_t min_words) {
    // Advance into an already-retained block when it fits (post-reset path).
    while (block_ + 1 < blocks_.size()) {
      ++block_;
      used_ = 0;
      if (min_words <= blocks_[block_].words) return;
    }
    std::size_t words = blocks_.empty() ? first_block_words_
                                        : blocks_.back().words * 2;
    if (words < min_words) words = min_words;
    blocks_.push_back(
        Block{std::make_unique<std::int64_t[]>(words), words});
    block_ = blocks_.size() - 1;
    used_ = 0;
  }

  std::size_t first_block_words_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;  // index of the block being bumped
  std::size_t used_ = 0;   // words used within blocks_[block_]
  std::uint64_t allocated_ = 0;
};

}  // namespace lbsa

#endif  // LBSA_BASE_ARENA_H_
