// Deterministic, seedable pseudo-random generators.
//
// Every randomized component in the library (random adversary schedulers,
// history generators, stress tests) takes an explicit seed so that any
// failure reported by the test suite or an experiment is replayable bit for
// bit. Engines: splitmix64 (seeding / cheap streams) and xoshiro256**
// (general purpose). Both are tiny, fast, and have well-understood quality;
// <random> engines are avoided because their streams differ across standard
// library implementations.
#ifndef LBSA_BASE_RNG_H_
#define LBSA_BASE_RNG_H_

#include <array>
#include <cstdint>

namespace lbsa {

// splitmix64: one multiply-xorshift pipeline per output. Used to expand a
// single user seed into independent streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: the library's general-purpose engine.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  // Uniform draw from [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift rejection method (no modulo bias).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform int in [lo, hi] inclusive.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double next_double();

  // True with probability p (clamped to [0,1]).
  bool next_bool(double p);

  // UniformRandomBitGenerator interface, so std::shuffle works.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  // Stream-position capture, for checkpoint/resume of long randomized
  // campaigns: state() snapshots the engine mid-stream and set_state()
  // restores it, after which the two engines produce identical outputs.
  // An all-zero state is a fixed point of xoshiro256** and is rejected.
  std::array<std::uint64_t, 4> state() const { return s_; }
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace lbsa

#endif  // LBSA_BASE_RNG_H_
