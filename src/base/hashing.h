// Hashing utilities for configuration interning in the model checker and
// the linearizability checker. All hashing here is for in-memory hash
// tables only (never persisted), so we use a fast mix rather than a
// cryptographic hash.
#ifndef LBSA_BASE_HASHING_H_
#define LBSA_BASE_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace lbsa {

// Post-mix from splitmix64; good avalanche for word-sized inputs.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Boost-style combine with a 64-bit golden-ratio constant.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

// Hash of a span of words (state vectors, configuration snapshots).
inline std::uint64_t hash_words(std::span<const std::int64_t> words,
                                std::uint64_t seed = 0x243f6a8885a308d3ULL) {
  std::uint64_t h = hash_combine(seed, static_cast<std::uint64_t>(words.size()));
  for (std::int64_t w : words) h = hash_combine(h, static_cast<std::uint64_t>(w));
  return h;
}

// A 2-word (128-bit) hash for interning tables that store a fingerprint
// instead of rehashing the key on every probe: `lo` routes (shard/bucket
// selection), `hi` is the stored fingerprint. Both lanes are full
// independent hashes (distinct seeds), computed in one pass; equality of
// both lanes is still only probabilistic, so tables must verify the full
// key on a fingerprint match.
struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  friend bool operator==(const Hash128&, const Hash128&) = default;
};

inline Hash128 hash_words_128(std::span<const std::int64_t> words) {
  constexpr std::uint64_t kSeedLo = 0x243f6a8885a308d3ULL;  // pi
  constexpr std::uint64_t kSeedHi = 0xb7e151628aed2a6bULL;  // e
  std::uint64_t lo = hash_combine(kSeedLo, static_cast<std::uint64_t>(words.size()));
  std::uint64_t hi = hash_combine(kSeedHi, static_cast<std::uint64_t>(words.size()));
  for (std::int64_t w : words) {
    const auto u = static_cast<std::uint64_t>(w);
    lo = hash_combine(lo, u);
    hi = hash_combine(hi, u);
  }
  return Hash128{lo, hi};
}

}  // namespace lbsa

#endif  // LBSA_BASE_HASHING_H_
