#include "base/rng.h"

#include "base/check.h"

namespace lbsa {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // An all-zero state would be a fixed point; splitmix64 cannot produce four
  // consecutive zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

void Xoshiro256::set_state(const std::array<std::uint64_t, 4>& state) {
  LBSA_CHECK_MSG((state[0] | state[1] | state[2] | state[3]) != 0,
                 "all-zero xoshiro256** state");
  s_ = state;
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  LBSA_CHECK(bound > 0);
  // Lemire's method: multiply-shift with a rejection zone of size
  // (2^64 mod bound) at the low end.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::next_in_range(std::int64_t lo, std::int64_t hi) {
  LBSA_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 2^64 range (lo == INT64_MIN, hi == INT64_MAX).
  const std::uint64_t draw = (span == 0) ? next() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Xoshiro256::next_double() {
  // 53 top bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace lbsa
