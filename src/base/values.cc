#include "base/values.h"

namespace lbsa {

std::string value_to_string(Value v) {
  switch (v) {
    case kNil:
      return "NIL";
    case kBottom:
      return "⊥";
    case kDone:
      return "done";
    case kAbortSentinel:
      return "<abort>";
    case kCrashSentinel:
      return "<crash>";
    default:
      return std::to_string(v);
  }
}

}  // namespace lbsa
