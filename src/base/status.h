// Minimal status / status-or types used at module boundaries.
//
// Policy: expected, recoverable failures (malformed operation for an object
// type, exceeding a model-checking budget, a non-linearizable history) are
// reported through Status / StatusOr; exceptions are reserved for contract
// violations, which LBSA_CHECK turns into aborts.
#ifndef LBSA_BASE_STATUS_H_
#define LBSA_BASE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "base/check.h"

namespace lbsa {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,  // model-checking / search budget exceeded
  kNotFound,
  kInternal,
};

// Human-readable name of a StatusCode ("OK", "INVALID_ARGUMENT", ...).
const char* status_code_name(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status invalid_argument(std::string message);
Status failed_precondition(std::string message);
Status out_of_range(std::string message);
Status resource_exhausted(std::string message);
Status not_found(std::string message);
Status internal_error(std::string message);

// A value or the status explaining its absence.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    LBSA_CHECK_MSG(!std::get<Status>(rep_).is_ok(),
                   "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool is_ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk = Status::ok();
    return is_ok() ? kOk : std::get<Status>(rep_);
  }

  const T& value() const& {
    LBSA_CHECK_MSG(is_ok(), status().to_string().c_str());
    return std::get<T>(rep_);
  }
  T& value() & {
    LBSA_CHECK_MSG(is_ok(), status().to_string().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    LBSA_CHECK_MSG(is_ok(), status().to_string().c_str());
    return std::get<T>(std::move(rep_));
  }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace lbsa

#endif  // LBSA_BASE_STATUS_H_
