// Assertion macros for programmer errors (precondition violations).
//
// Library policy (DESIGN.md §5): expected failures travel through Status /
// optional returns; LBSA_CHECK guards contract violations and aborts with a
// location message. It is always on — the objects here are specification
// devices and silent state corruption would invalidate every experiment
// downstream.
#ifndef LBSA_BASE_CHECK_H_
#define LBSA_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define LBSA_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "LBSA_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define LBSA_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "LBSA_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // LBSA_BASE_CHECK_H_
