// Value domain shared by every object specification in the library.
//
// The paper's objects exchange opaque "values" plus a handful of reserved
// responses: NIL (unset state variables in Algorithm 1), the special value
// "bottom" returned by upset PAC objects and exhausted n-consensus objects
// (footnote 6), and the "done" acknowledgement returned by every PAC propose
// operation. We model the whole domain as int64_t with reserved sentinels at
// the very bottom of the range; user proposals must be "ordinary" values
// (see is_ordinary), matching the paper's footnote 4 assumption that
// processes never propose NIL or bottom.
#ifndef LBSA_BASE_VALUES_H_
#define LBSA_BASE_VALUES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace lbsa {

// A proposal, response, or state component.
using Value = std::int64_t;

// Reserved sentinels. Kept clustered so is_ordinary is a single compare.
inline constexpr Value kNil = std::numeric_limits<Value>::min();       // unset
inline constexpr Value kBottom = std::numeric_limits<Value>::min() + 1;  // "⊥"
inline constexpr Value kDone = std::numeric_limits<Value>::min() + 2;    // PAC propose ack
inline constexpr Value kAbortSentinel = std::numeric_limits<Value>::min() + 3;
inline constexpr Value kCrashSentinel = std::numeric_limits<Value>::min() + 4;

// Smallest value a process may legally propose / an object may store as data.
inline constexpr Value kMinOrdinary = std::numeric_limits<Value>::min() + 16;

// True iff v is a plain data value (not one of the reserved sentinels).
constexpr bool is_ordinary(Value v) { return v >= kMinOrdinary; }

// Human-readable rendering ("⊥", "NIL", "done", or the number itself).
std::string value_to_string(Value v);

}  // namespace lbsa

#endif  // LBSA_BASE_VALUES_H_
