#include "base/status.h"

namespace lbsa {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status invalid_argument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status failed_precondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status out_of_range(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status resource_exhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status not_found(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status internal_error(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace lbsa
