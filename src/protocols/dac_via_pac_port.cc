#include "protocols/dac_via_pac_port.h"

#include "base/check.h"

namespace lbsa::protocols {

PacPortDacProtocol::PacPortDacProtocol(
    std::string name, std::vector<Value> inputs, int distinguished_pid,
    std::shared_ptr<const spec::ObjectType> object)
    : ProtocolBase(std::move(name), static_cast<int>(inputs.size()),
                   {std::move(object)}),
      inputs_(std::move(inputs)),
      distinguished_pid_(distinguished_pid) {
  LBSA_CHECK(inputs_.size() >= 2);
  LBSA_CHECK(distinguished_pid_ >= 0 &&
             distinguished_pid_ < static_cast<int>(inputs_.size()));
  for (Value v : inputs_) LBSA_CHECK(is_ordinary(v));
}

std::vector<std::int64_t> PacPortDacProtocol::initial_locals(int pid) const {
  return {inputs_[static_cast<size_t>(pid)], kNil};
}

sim::SymmetrySpec PacPortDacProtocol::symmetry() const {
  return sim::SymmetrySpec::by_value(inputs_, {distinguished_pid_});
}

sim::Action PacPortDacProtocol::next_action(
    int pid, const sim::ProcessState& state) const {
  const std::int64_t label = pid + 1;  // PAC labels are 1-based
  switch (state.pc) {
    case 0:
      return sim::Action::invoke(0, propose_op(state.locals[kInput], label));
    case 1:
      return sim::Action::invoke(0, decide_op(label));
    case 2: {
      const Value temp = state.locals[kTemp];
      if (temp != kBottom) return sim::Action::decide(temp);
      // Only the distinguished process reaches pc 2 with temp == ⊥ (other
      // processes loop back to pc 0 instead).
      LBSA_CHECK(pid == distinguished_pid_);
      return sim::Action::abort();
    }
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void PacPortDacProtocol::on_response(int pid, sim::ProcessState* state,
                                     Value response) const {
  switch (state->pc) {
    case 0:
      // PROPOSE acknowledged with "done".
      LBSA_CHECK(response == kDone);
      state->pc = 1;
      return;
    case 1:
      state->locals[kTemp] = response;
      if (response != kBottom || pid == distinguished_pid_) {
        state->pc = 2;  // decide (or abort, for p)
      } else {
        state->pc = 0;  // q != p retries the propose/decide pair
      }
      return;
    default:
      LBSA_CHECK_MSG(false, "response delivered at a local step");
  }
}

}  // namespace lbsa::protocols
