// Randomized binary consensus from registers and a coin — the "life beyond
// FLP" extension. The paper's impossibility engine (the bivalency argument
// of Theorems 4.2/5.2, inherited from FLP [8]) only forbids DETERMINISTIC
// wait-free consensus; this Ben-Or-style protocol shows the exact boundary:
//
//   round r (adopt-commit + coin):
//     phase 1: write my value to A[r][me]; read every A[r][j];
//              prop <- my value if no different value seen, else CONFLICT
//     phase 2: write prop to B[r][me]; read every B[r][j];
//       * prop != CONFLICT and every non-NIL B value == prop  -> DECIDE prop
//       * prop != CONFLICT                                    -> keep prop
//       * some non-NIL, non-CONFLICT B value w seen           -> adopt w
//       * otherwise                                           -> value <- coin
//
// Safety (Agreement, Validity) holds under EVERY schedule and EVERY coin
// outcome — the model checker verifies this exhaustively. Termination holds
// only with probability 1 under a fair coin: an adversary controlling coin
// outcomes and scheduling forces conflicts forever, and the checker
// mechanically exhibits that non-terminating run. Rounds are preallocated;
// a process that exhausts them spins (the honest rendering of "the
// adversary wins" — it can only happen with adversarial coins).
#ifndef LBSA_PROTOCOLS_BEN_OR_H_
#define LBSA_PROTOCOLS_BEN_OR_H_

#include <memory>
#include <vector>

#include "sim/protocol.h"

namespace lbsa::protocols {

class BenOrProtocol final : public sim::ProtocolBase {
 public:
  // inputs must be binary (0/1). max_rounds bounds the preallocated
  // register arrays (and hence the reachable state space).
  BenOrProtocol(std::vector<Value> inputs, int max_rounds);

  int max_rounds() const { return max_rounds_; }

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;

 private:
  // Object indices: A[r][i] at r*2n + i, B[r][i] at r*2n + n + i, the coin
  // last.
  int a_index(std::int64_t round, int pid) const;
  int b_index(std::int64_t round, int pid) const;
  int coin_index() const;

  // locals layout.
  static constexpr std::int64_t kV = 0;          // current value
  static constexpr std::int64_t kRound = 1;
  static constexpr std::int64_t kPeer = 2;       // peer cursor during reads
  static constexpr std::int64_t kProp = 3;       // phase-2 proposal
  static constexpr std::int64_t kCommitOk = 4;   // all B reads == prop so far
  static constexpr std::int64_t kAdopt = 5;      // non-conflict B value seen

  // The phase-1 conflict marker (distinct from binary values).
  static constexpr Value kConflict = 777;

  std::vector<Value> inputs_;
  int max_rounds_;
};

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_BEN_OR_H_
