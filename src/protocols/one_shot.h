// One-shot propose protocols: every process applies a single prepared
// operation to a single shared object and decides the response.
//
// This tiny shape covers a surprising amount of the paper:
//   * consensus among n processes via one n-consensus object (footnote 6);
//   * m-consensus via the PROPOSEC port of an (n,m)-PAC object
//     (Observation 5.1(c), the positive half of Theorem 5.3);
//   * k-set agreement among n_k processes via O'_n's PROPOSE(v, k)
//     (Section 6, "O'_n has the same set agreement power as O_n");
//   * k-set agreement among any number of processes via one 2-SA object.
#ifndef LBSA_PROTOCOLS_ONE_SHOT_H_
#define LBSA_PROTOCOLS_ONE_SHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.h"

namespace lbsa::protocols {

class OneShotProposeProtocol final : public sim::ProtocolBase {
 public:
  // per_pid_ops[pid] is the operation process pid applies to `object`.
  OneShotProposeProtocol(std::string name,
                         std::shared_ptr<const spec::ObjectType> object,
                         std::vector<spec::Operation> per_pid_ops);

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;
  // Processes with identical prepared operations are interchangeable: locals
  // never store pids, and every backing object type here is value-indexed.
  sim::SymmetrySpec symmetry() const override;

 private:
  std::vector<spec::Operation> ops_;
};

// Consensus among n processes through one n-consensus object.
std::shared_ptr<OneShotProposeProtocol> make_consensus_via_n_consensus(
    const std::vector<Value>& inputs);

// Consensus among m processes through the PROPOSEC port of an (n,m)-PAC.
std::shared_ptr<OneShotProposeProtocol> make_consensus_via_nm_pac(
    int n, int m, const std::vector<Value>& inputs);

// k-set agreement among inputs.size() processes through one strong 2-SA
// object (k >= 2 always satisfied; the object never returns more than two
// distinct values).
std::shared_ptr<OneShotProposeProtocol> make_ksa_via_two_sa(
    const std::vector<Value>& inputs);

// k-set agreement among inputs.size() <= n_k processes through an O' bundle
// (PROPOSE(v, level)). port_bounds parameterizes the bundle (see
// spec::OPrimeType).
std::shared_ptr<OneShotProposeProtocol> make_ksa_via_oprime(
    std::vector<int> port_bounds, int level, const std::vector<Value>& inputs);

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_ONE_SHOT_H_
