#include "protocols/mutants.h"

#include <string>

#include "base/check.h"
#include "protocols/one_shot.h"
#include "spec/consensus_type.h"
#include "spec/nm_pac_type.h"

namespace lbsa::protocols {
namespace {

// locals layout shared with PacPortDacProtocol: [input, temp].
constexpr std::int64_t kInput = 0;
constexpr std::int64_t kTemp = 1;

const char* bug_name(MutantDacProtocol::Bug bug) {
  return bug == MutantDacProtocol::Bug::kNoAdopt ? "no-adopt" : "wrong-abort";
}

std::string mutant_dac_name(MutantDacProtocol::Bug bug, size_t n, int m) {
  std::string name = "mutant-DAC-" + std::string(bug_name(bug)) + "-";
  if (m >= 1) {
    name += "(" + std::to_string(n) + "," + std::to_string(m) + ")-PAC";
  } else {
    name += std::to_string(n);
  }
  return name;
}

std::shared_ptr<const spec::ObjectType> mutant_dac_object(size_t n, int m) {
  if (m >= 1) {
    return std::make_shared<spec::NmPacType>(static_cast<int>(n), m);
  }
  return std::make_shared<spec::PacType>(static_cast<int>(n));
}

}  // namespace

MutantDacProtocol::MutantDacProtocol(std::vector<Value> inputs, Bug bug,
                                     int distinguished_pid)
    : MutantDacProtocol(std::move(inputs), 0, bug, distinguished_pid) {}

MutantDacProtocol::MutantDacProtocol(std::vector<Value> inputs, int m, Bug bug,
                                     int distinguished_pid)
    : ProtocolBase(mutant_dac_name(bug, inputs.size(), m),
                   static_cast<int>(inputs.size()),
                   {mutant_dac_object(inputs.size(), m)}),
      inputs_(std::move(inputs)),
      bug_(bug),
      distinguished_pid_(distinguished_pid),
      m_(m) {
  LBSA_CHECK(inputs_.size() >= 2);
  LBSA_CHECK(m_ >= 0);
  LBSA_CHECK(distinguished_pid_ >= 0 &&
             distinguished_pid_ < static_cast<int>(inputs_.size()));
  for (Value v : inputs_) LBSA_CHECK(is_ordinary(v));
}

std::vector<std::int64_t> MutantDacProtocol::initial_locals(int pid) const {
  return {inputs_[static_cast<size_t>(pid)], kNil};
}

sim::SymmetrySpec MutantDacProtocol::symmetry() const {
  return sim::SymmetrySpec::by_value(inputs_, {distinguished_pid_});
}

sim::Action MutantDacProtocol::next_action(
    int pid, const sim::ProcessState& state) const {
  const std::int64_t label = pid + 1;
  switch (state.pc) {
    case 0:
      return sim::Action::invoke(
          0, m_ >= 1
                 ? spec::make_propose_p(state.locals[kInput], label)
                 : spec::make_propose_labeled(state.locals[kInput], label));
    case 1:
      return sim::Action::invoke(0, m_ >= 1 ? spec::make_decide_p(label)
                                            : spec::make_decide_labeled(label));
    case 2: {
      const Value temp = state.locals[kTemp];
      if (temp != kBottom) return sim::Action::decide(temp);
      if (pid == distinguished_pid_) return sim::Action::abort();
      // The injected bugs: a correct q would loop back and adopt.
      if (bug_ == Bug::kNoAdopt) {
        return sim::Action::decide(state.locals[kInput]);
      }
      return sim::Action::abort();
    }
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void MutantDacProtocol::on_response(int /*pid*/, sim::ProcessState* state,
                                    Value response) const {
  switch (state->pc) {
    case 0:
      LBSA_CHECK(response == kDone);
      state->pc = 1;
      return;
    case 1:
      state->locals[kTemp] = response;
      state->pc = 2;  // unconditionally terminal — no adopt retry loop
      return;
    default:
      LBSA_CHECK_MSG(false, "response delivered at a local step");
  }
}

namespace {

// Consensus via one n-consensus object, deciding response + 1.
class OffByOneConsensusProtocol final : public sim::ProtocolBase {
 public:
  explicit OffByOneConsensusProtocol(std::vector<Value> inputs)
      : ProtocolBase("mutant-consensus-off-by-one-" +
                         std::to_string(inputs.size()),
                     static_cast<int>(inputs.size()),
                     {std::make_shared<spec::NConsensusType>(
                         static_cast<int>(inputs.size()))}),
        inputs_(std::move(inputs)) {
    LBSA_CHECK(inputs_.size() >= 1);
    for (Value v : inputs_) {
      LBSA_CHECK(is_ordinary(v));
      // The bug decides winner + 1; keep inputs spaced so the decided value
      // is genuinely never-proposed (otherwise validity could pass).
      for (Value w : inputs_) LBSA_CHECK(v + 1 != w);
    }
  }

  std::vector<std::int64_t> initial_locals(int pid) const override {
    return {inputs_[static_cast<size_t>(pid)], kNil};
  }

  sim::Action next_action(int /*pid*/,
                          const sim::ProcessState& state) const override {
    if (state.pc == 0) {
      return sim::Action::invoke(0, spec::make_propose(state.locals[0]));
    }
    return sim::Action::decide(state.locals[1]);
  }

  void on_response(int /*pid*/, sim::ProcessState* state,
                   Value response) const override {
    LBSA_CHECK(state->pc == 0);
    state->locals[1] = response + 1;  // the injected validity bug
    state->pc = 1;
  }

  sim::SymmetrySpec symmetry() const override {
    return sim::SymmetrySpec::by_value(inputs_);
  }

 private:
  std::vector<Value> inputs_;
};

// One-shot propose over a k=3 SA object masquerading as 2-SA.
class OverclaimedTwoSaProtocol final : public sim::ProtocolBase {
 public:
  explicit OverclaimedTwoSaProtocol(std::vector<Value> inputs)
      : ProtocolBase("mutant-2sa-admits-3-" + std::to_string(inputs.size()),
                     static_cast<int>(inputs.size()),
                     {std::make_shared<spec::KsaType>(spec::kUnboundedPorts,
                                                      3)}),
        inputs_(std::move(inputs)) {
    LBSA_CHECK(inputs_.size() >= 3);
    for (Value v : inputs_) LBSA_CHECK(is_ordinary(v));
  }

  std::vector<std::int64_t> initial_locals(int pid) const override {
    return {inputs_[static_cast<size_t>(pid)], kNil};
  }

  sim::Action next_action(int /*pid*/,
                          const sim::ProcessState& state) const override {
    if (state.pc == 0) {
      return sim::Action::invoke(0, spec::make_propose(state.locals[0]));
    }
    return sim::Action::decide(state.locals[1]);
  }

  void on_response(int /*pid*/, sim::ProcessState* state,
                   Value response) const override {
    LBSA_CHECK(state->pc == 0);
    state->locals[1] = response;
    state->pc = 1;
  }

  sim::SymmetrySpec symmetry() const override {
    return sim::SymmetrySpec::by_value(inputs_);
  }

 private:
  std::vector<Value> inputs_;
};

}  // namespace

OverclaimedNmPacType::OverclaimedNmPacType(int n, int m)
    : pac_(n), ksa_(spec::kUnboundedPorts, m + 1), m_(m) {
  LBSA_CHECK(m >= 1);
}

std::string OverclaimedNmPacType::name() const {
  return "overclaimed-(" + std::to_string(n()) + "," + std::to_string(m_) +
         ")-PAC";
}

std::vector<std::int64_t> OverclaimedNmPacType::initial_state() const {
  std::vector<std::int64_t> state = pac_.initial_state();
  const std::vector<std::int64_t> ksa = ksa_.initial_state();
  state.insert(state.end(), ksa.begin(), ksa.end());
  return state;
}

Status OverclaimedNmPacType::validate(const spec::Operation& op) const {
  switch (op.code) {
    case spec::OpCode::kProposeC:
      return ksa_.validate(spec::make_propose(op.arg0));
    case spec::OpCode::kProposeP:
      return pac_.validate(spec::make_propose_labeled(op.arg0, op.arg1));
    case spec::OpCode::kDecideP:
      return pac_.validate(spec::make_decide_labeled(op.arg0));
    default:
      return invalid_argument(
          "(n,m)-PAC accepts only PROPOSEC / PROPOSEP / DECIDEP");
  }
}

void OverclaimedNmPacType::apply(std::span<const std::int64_t> state,
                                 const spec::Operation& op,
                                 std::vector<spec::Outcome>* outcomes) const {
  const size_t pac_size = spec::PacType::state_size(pac_.n());
  LBSA_CHECK(state.size() == pac_size + ksa_.initial_state().size());

  std::vector<spec::Outcome> sub;
  if (op.code == spec::OpCode::kProposeC) {
    // The bug: the C port answers from an (m+1)-SA set, so sub may hold
    // several outcomes (one per distinct member) instead of one winner.
    ksa_.apply(state.subspan(pac_size), spec::make_propose(op.arg0), &sub);
  } else if (op.code == spec::OpCode::kProposeP) {
    pac_.apply(state.subspan(0, pac_size),
               spec::make_propose_labeled(op.arg0, op.arg1), &sub);
  } else {
    LBSA_CHECK(op.code == spec::OpCode::kDecideP);
    pac_.apply(state.subspan(0, pac_size),
               spec::make_decide_labeled(op.arg0), &sub);
  }

  for (spec::Outcome& o : sub) {
    std::vector<std::int64_t> next(state.begin(), state.end());
    if (op.code == spec::OpCode::kProposeC) {
      std::copy(o.next_state.begin(), o.next_state.end(),
                next.begin() + static_cast<std::ptrdiff_t>(pac_size));
    } else {
      std::copy(o.next_state.begin(), o.next_state.end(), next.begin());
    }
    outcomes->push_back(spec::Outcome{o.response, std::move(next)});
  }
}

void OverclaimedNmPacType::rename_pids(std::span<const int> perm,
                                       std::vector<std::int64_t>* state) const {
  const size_t pac_size = spec::PacType::state_size(pac_.n());
  LBSA_CHECK(state->size() >= pac_size);
  LBSA_CHECK(static_cast<int>(perm.size()) <= pac_.n());
  std::vector<int> padded(perm.begin(), perm.end());
  for (int p = static_cast<int>(padded.size()); p < pac_.n(); ++p) {
    padded.push_back(p);
  }
  std::vector<std::int64_t> pac_state(
      state->begin(), state->begin() + static_cast<std::ptrdiff_t>(pac_size));
  pac_.rename_pids(padded, &pac_state);
  std::copy(pac_state.begin(), pac_state.end(), state->begin());
}

std::string OverclaimedNmPacType::state_to_string(
    std::span<const std::int64_t> state) const {
  const size_t pac_size = spec::PacType::state_size(pac_.n());
  return "{P=" + pac_.state_to_string(state.subspan(0, pac_size)) +
         ", C=" + ksa_.state_to_string(state.subspan(pac_size)) + "}";
}

std::shared_ptr<const sim::Protocol> make_overclaimed_consensus_from_nm_pac(
    int n, int m, const std::vector<Value>& inputs) {
  LBSA_CHECK(static_cast<int>(inputs.size()) <= m);
  std::vector<spec::Operation> ops;
  for (Value v : inputs) ops.push_back(spec::make_propose_c(v));
  return std::make_shared<OneShotProposeProtocol>(
      "mutant-consensus-from-overclaimed-(" + std::to_string(n) + "," +
          std::to_string(m) + ")-PAC",
      std::make_shared<OverclaimedNmPacType>(n, m), std::move(ops));
}

std::shared_ptr<const sim::Protocol> make_overclaimed_two_sa(
    const std::vector<Value>& inputs) {
  return std::make_shared<OverclaimedTwoSaProtocol>(inputs);
}

std::shared_ptr<const sim::Protocol> make_off_by_one_consensus(
    const std::vector<Value>& inputs) {
  return std::make_shared<OffByOneConsensusProtocol>(inputs);
}

}  // namespace lbsa::protocols
