#include "protocols/mutants.h"

#include "base/check.h"
#include "spec/consensus_type.h"
#include "spec/ksa_type.h"
#include "spec/pac_type.h"

namespace lbsa::protocols {
namespace {

// locals layout shared with DacFromPacProtocol: [input, temp].
constexpr std::int64_t kInput = 0;
constexpr std::int64_t kTemp = 1;

const char* bug_name(MutantDacProtocol::Bug bug) {
  return bug == MutantDacProtocol::Bug::kNoAdopt ? "no-adopt" : "wrong-abort";
}

}  // namespace

MutantDacProtocol::MutantDacProtocol(std::vector<Value> inputs, Bug bug,
                                     int distinguished_pid)
    : ProtocolBase("mutant-DAC-" + std::string(bug_name(bug)) + "-" +
                       std::to_string(inputs.size()),
                   static_cast<int>(inputs.size()),
                   {std::make_shared<spec::PacType>(
                       static_cast<int>(inputs.size()))}),
      inputs_(std::move(inputs)),
      bug_(bug),
      distinguished_pid_(distinguished_pid) {
  LBSA_CHECK(inputs_.size() >= 2);
  LBSA_CHECK(distinguished_pid_ >= 0 &&
             distinguished_pid_ < static_cast<int>(inputs_.size()));
  for (Value v : inputs_) LBSA_CHECK(is_ordinary(v));
}

std::vector<std::int64_t> MutantDacProtocol::initial_locals(int pid) const {
  return {inputs_[static_cast<size_t>(pid)], kNil};
}

sim::SymmetrySpec MutantDacProtocol::symmetry() const {
  return sim::SymmetrySpec::by_value(inputs_, {distinguished_pid_});
}

sim::Action MutantDacProtocol::next_action(
    int pid, const sim::ProcessState& state) const {
  const std::int64_t label = pid + 1;
  switch (state.pc) {
    case 0:
      return sim::Action::invoke(
          0, spec::make_propose_labeled(state.locals[kInput], label));
    case 1:
      return sim::Action::invoke(0, spec::make_decide_labeled(label));
    case 2: {
      const Value temp = state.locals[kTemp];
      if (temp != kBottom) return sim::Action::decide(temp);
      if (pid == distinguished_pid_) return sim::Action::abort();
      // The injected bugs: a correct q would loop back and adopt.
      if (bug_ == Bug::kNoAdopt) {
        return sim::Action::decide(state.locals[kInput]);
      }
      return sim::Action::abort();
    }
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void MutantDacProtocol::on_response(int /*pid*/, sim::ProcessState* state,
                                    Value response) const {
  switch (state->pc) {
    case 0:
      LBSA_CHECK(response == kDone);
      state->pc = 1;
      return;
    case 1:
      state->locals[kTemp] = response;
      state->pc = 2;  // unconditionally terminal — no adopt retry loop
      return;
    default:
      LBSA_CHECK_MSG(false, "response delivered at a local step");
  }
}

namespace {

// Consensus via one n-consensus object, deciding response + 1.
class OffByOneConsensusProtocol final : public sim::ProtocolBase {
 public:
  explicit OffByOneConsensusProtocol(std::vector<Value> inputs)
      : ProtocolBase("mutant-consensus-off-by-one-" +
                         std::to_string(inputs.size()),
                     static_cast<int>(inputs.size()),
                     {std::make_shared<spec::NConsensusType>(
                         static_cast<int>(inputs.size()))}),
        inputs_(std::move(inputs)) {
    LBSA_CHECK(inputs_.size() >= 1);
    for (Value v : inputs_) {
      LBSA_CHECK(is_ordinary(v));
      // The bug decides winner + 1; keep inputs spaced so the decided value
      // is genuinely never-proposed (otherwise validity could pass).
      for (Value w : inputs_) LBSA_CHECK(v + 1 != w);
    }
  }

  std::vector<std::int64_t> initial_locals(int pid) const override {
    return {inputs_[static_cast<size_t>(pid)], kNil};
  }

  sim::Action next_action(int /*pid*/,
                          const sim::ProcessState& state) const override {
    if (state.pc == 0) {
      return sim::Action::invoke(0, spec::make_propose(state.locals[0]));
    }
    return sim::Action::decide(state.locals[1]);
  }

  void on_response(int /*pid*/, sim::ProcessState* state,
                   Value response) const override {
    LBSA_CHECK(state->pc == 0);
    state->locals[1] = response + 1;  // the injected validity bug
    state->pc = 1;
  }

  sim::SymmetrySpec symmetry() const override {
    return sim::SymmetrySpec::by_value(inputs_);
  }

 private:
  std::vector<Value> inputs_;
};

// One-shot propose over a k=3 SA object masquerading as 2-SA.
class OverclaimedTwoSaProtocol final : public sim::ProtocolBase {
 public:
  explicit OverclaimedTwoSaProtocol(std::vector<Value> inputs)
      : ProtocolBase("mutant-2sa-admits-3-" + std::to_string(inputs.size()),
                     static_cast<int>(inputs.size()),
                     {std::make_shared<spec::KsaType>(spec::kUnboundedPorts,
                                                      3)}),
        inputs_(std::move(inputs)) {
    LBSA_CHECK(inputs_.size() >= 3);
    for (Value v : inputs_) LBSA_CHECK(is_ordinary(v));
  }

  std::vector<std::int64_t> initial_locals(int pid) const override {
    return {inputs_[static_cast<size_t>(pid)], kNil};
  }

  sim::Action next_action(int /*pid*/,
                          const sim::ProcessState& state) const override {
    if (state.pc == 0) {
      return sim::Action::invoke(0, spec::make_propose(state.locals[0]));
    }
    return sim::Action::decide(state.locals[1]);
  }

  void on_response(int /*pid*/, sim::ProcessState* state,
                   Value response) const override {
    LBSA_CHECK(state->pc == 0);
    state->locals[1] = response;
    state->pc = 1;
  }

  sim::SymmetrySpec symmetry() const override {
    return sim::SymmetrySpec::by_value(inputs_);
  }

 private:
  std::vector<Value> inputs_;
};

}  // namespace

std::shared_ptr<const sim::Protocol> make_overclaimed_two_sa(
    const std::vector<Value>& inputs) {
  return std::make_shared<OverclaimedTwoSaProtocol>(inputs);
}

std::shared_ptr<const sim::Protocol> make_off_by_one_consensus(
    const std::vector<Value>& inputs) {
  return std::make_shared<OffByOneConsensusProtocol>(inputs);
}

}  // namespace lbsa::protocols
