#include "protocols/dac_from_pac.h"

#include <memory>
#include <string>

#include "spec/pac_type.h"

namespace lbsa::protocols {

DacFromPacProtocol::DacFromPacProtocol(std::vector<Value> inputs,
                                       int distinguished_pid)
    : PacPortDacProtocol(
          "DAC-from-" + std::to_string(inputs.size()) + "-PAC", inputs,
          distinguished_pid,
          std::make_shared<spec::PacType>(static_cast<int>(inputs.size()))) {}

spec::Operation DacFromPacProtocol::propose_op(Value v,
                                               std::int64_t label) const {
  return spec::make_propose_labeled(v, label);
}

spec::Operation DacFromPacProtocol::decide_op(std::int64_t label) const {
  return spec::make_decide_labeled(label);
}

}  // namespace lbsa::protocols
