#include "protocols/straw_nm_consensus.h"

#include "base/check.h"
#include "spec/nm_pac_type.h"

namespace lbsa::protocols {

StrawNmConsensusProtocol::StrawNmConsensusProtocol(std::vector<Value> inputs,
                                                   int n)
    : ProtocolBase("straw-(m+1)-consensus-from-(n,m)-PAC",
                   static_cast<int>(inputs.size()),
                   {std::make_shared<spec::NmPacType>(
                       n, static_cast<int>(inputs.size()) - 1)}),
      inputs_(std::move(inputs)) {
  LBSA_CHECK(inputs_.size() >= 3);  // m >= 2, so m + 1 >= 3
}

std::vector<std::int64_t> StrawNmConsensusProtocol::initial_locals(
    int pid) const {
  return {inputs_[static_cast<size_t>(pid)], kNil};
}

sim::Action StrawNmConsensusProtocol::next_action(
    int /*pid*/, const sim::ProcessState& state) const {
  switch (state.pc) {
    case 0:  // race the consensus port
      return sim::Action::invoke(0, spec::make_propose_c(state.locals[0]));
    case 1:  // lost the race: fall back to the PAC, label 1
      return sim::Action::invoke(0, spec::make_propose_p(state.locals[0], 1));
    case 2:
      return sim::Action::invoke(0, spec::make_decide_p(1));
    case 3:
      return sim::Action::decide(state.locals[1]);
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void StrawNmConsensusProtocol::on_response(int /*pid*/,
                                           sim::ProcessState* state,
                                           Value response) const {
  switch (state->pc) {
    case 0:
      if (response == kBottom) {
        state->pc = 1;
      } else {
        state->locals[1] = response;
        state->pc = 3;
      }
      return;
    case 1:
      LBSA_CHECK(response == kDone);
      state->pc = 2;
      return;
    case 2:
      if (response == kBottom) {
        state->pc = 1;  // retry the PAC pair
      } else {
        state->locals[1] = response;
        state->pc = 3;
      }
      return;
    default:
      LBSA_CHECK_MSG(false, "response delivered at a local step");
  }
}

}  // namespace lbsa::protocols
