#include "protocols/classic_consensus.h"

#include "base/check.h"
#include "spec/classic_types.h"
#include "spec/register_type.h"

namespace lbsa::protocols {
namespace {

// Objects for the register-announce pattern: one register per process,
// followed by the decision object at the last index.
std::vector<std::shared_ptr<const spec::ObjectType>> announce_objects(
    size_t n, std::shared_ptr<const spec::ObjectType> decider) {
  std::vector<std::shared_ptr<const spec::ObjectType>> objects;
  for (size_t i = 0; i < n; ++i) {
    objects.push_back(std::make_shared<spec::RegisterType>());
  }
  objects.push_back(std::move(decider));
  return objects;
}

constexpr std::int64_t kInput = 0;
constexpr std::int64_t kResult = 1;

}  // namespace

// ----------------------------- test&set -----------------------------------

TasConsensusProtocol::TasConsensusProtocol(std::vector<Value> inputs)
    : ProtocolBase("consensus-via-test&set",
                   static_cast<int>(inputs.size()),
                   announce_objects(inputs.size(),
                                    std::make_shared<spec::TestAndSetType>())),
      inputs_(std::move(inputs)) {
  LBSA_CHECK(inputs_.size() >= 2);
}

std::vector<std::int64_t> TasConsensusProtocol::initial_locals(int pid) const {
  return {inputs_[static_cast<size_t>(pid)], kNil};
}

sim::Action TasConsensusProtocol::next_action(
    int pid, const sim::ProcessState& state) const {
  const int tas_index = process_count();
  switch (state.pc) {
    case 0:  // announce input
      return sim::Action::invoke(pid, spec::make_write(state.locals[kInput]));
    case 1:  // race for the bit
      return sim::Action::invoke(tas_index, spec::make_test_and_set());
    case 2:  // lost: read the other process's register (2-process form:
             // "the other" is pid 1 - pid; with more processes this guess
             // is wrong, which is the point of the negative tests)
      return sim::Action::invoke((pid + 1) % process_count(),
                                 spec::make_read());
    case 3:
      return sim::Action::decide(state.locals[kResult]);
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void TasConsensusProtocol::on_response(int /*pid*/, sim::ProcessState* state,
                                       Value response) const {
  switch (state->pc) {
    case 0:
      state->pc = 1;
      return;
    case 1:
      if (response == 0) {  // won the bit: decide own input
        state->locals[kResult] = state->locals[kInput];
        state->pc = 3;
      } else {
        state->pc = 2;
      }
      return;
    case 2:
      state->locals[kResult] = response;
      state->pc = 3;
      return;
    default:
      LBSA_CHECK_MSG(false, "response delivered at a local step");
  }
}

// ------------------------------- queue ------------------------------------

QueueConsensusProtocol::QueueConsensusProtocol(std::vector<Value> inputs)
    : ProtocolBase(
          "consensus-via-queue",
          static_cast<int>(inputs.size()),
          announce_objects(inputs.size(),
                           std::make_shared<spec::QueueType>(
                               /*capacity=*/1,
                               std::vector<Value>{/*token=*/1}))),
      inputs_(std::move(inputs)) {
  LBSA_CHECK(inputs_.size() >= 2);
}

std::vector<std::int64_t> QueueConsensusProtocol::initial_locals(
    int pid) const {
  return {inputs_[static_cast<size_t>(pid)], kNil};
}

sim::Action QueueConsensusProtocol::next_action(
    int pid, const sim::ProcessState& state) const {
  const int queue_index = process_count();
  switch (state.pc) {
    case 0:
      return sim::Action::invoke(pid, spec::make_write(state.locals[kInput]));
    case 1:
      return sim::Action::invoke(queue_index, spec::make_dequeue());
    case 2:
      return sim::Action::invoke((pid + 1) % process_count(),
                                 spec::make_read());
    case 3:
      return sim::Action::decide(state.locals[kResult]);
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void QueueConsensusProtocol::on_response(int /*pid*/, sim::ProcessState* state,
                                         Value response) const {
  switch (state->pc) {
    case 0:
      state->pc = 1;
      return;
    case 1:
      if (response != kNil) {  // got the token
        state->locals[kResult] = state->locals[kInput];
        state->pc = 3;
      } else {
        state->pc = 2;
      }
      return;
    case 2:
      state->locals[kResult] = response;
      state->pc = 3;
      return;
    default:
      LBSA_CHECK_MSG(false, "response delivered at a local step");
  }
}

// ------------------------------ compare&swap ------------------------------

CasConsensusProtocol::CasConsensusProtocol(std::vector<Value> inputs)
    : ProtocolBase("consensus-via-compare&swap",
                   static_cast<int>(inputs.size()),
                   {std::make_shared<spec::CompareAndSwapType>()}),
      inputs_(std::move(inputs)) {
  LBSA_CHECK(!inputs_.empty());
}

std::vector<std::int64_t> CasConsensusProtocol::initial_locals(int pid) const {
  return {inputs_[static_cast<size_t>(pid)], kNil};
}

sim::Action CasConsensusProtocol::next_action(
    int /*pid*/, const sim::ProcessState& state) const {
  switch (state.pc) {
    case 0:
      return sim::Action::invoke(
          0, spec::make_compare_and_swap(kNil, state.locals[kInput]));
    case 1:
      return sim::Action::decide(state.locals[kResult]);
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void CasConsensusProtocol::on_response(int /*pid*/, sim::ProcessState* state,
                                       Value response) const {
  LBSA_CHECK(state->pc == 0);
  // Pre-operation value: NIL means our CAS installed our input.
  state->locals[kResult] =
      (response == kNil) ? state->locals[kInput] : response;
  state->pc = 1;
}

}  // namespace lbsa::protocols
