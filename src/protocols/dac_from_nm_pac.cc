#include "protocols/dac_from_nm_pac.h"

#include <memory>
#include <string>

#include "spec/nm_pac_type.h"

namespace lbsa::protocols {

DacFromNmPacProtocol::DacFromNmPacProtocol(std::vector<Value> inputs, int m,
                                           int distinguished_pid)
    : PacPortDacProtocol(
          "DAC-from-(" + std::to_string(inputs.size()) + "," +
              std::to_string(m) + ")-PAC",
          inputs, distinguished_pid,
          std::make_shared<spec::NmPacType>(static_cast<int>(inputs.size()),
                                            m)) {}

spec::Operation DacFromNmPacProtocol::propose_op(Value v,
                                                 std::int64_t label) const {
  return spec::make_propose_p(v, label);
}

spec::Operation DacFromNmPacProtocol::decide_op(std::int64_t label) const {
  return spec::make_decide_p(label);
}

}  // namespace lbsa::protocols
