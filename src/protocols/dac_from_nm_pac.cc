#include "protocols/dac_from_nm_pac.h"

#include "base/check.h"
#include "spec/nm_pac_type.h"

namespace lbsa::protocols {

DacFromNmPacProtocol::DacFromNmPacProtocol(std::vector<Value> inputs, int m,
                                           int distinguished_pid)
    : ProtocolBase("DAC-from-(" + std::to_string(inputs.size()) + "," +
                       std::to_string(m) + ")-PAC",
                   static_cast<int>(inputs.size()),
                   {std::make_shared<spec::NmPacType>(
                       static_cast<int>(inputs.size()), m)}),
      inputs_(std::move(inputs)),
      distinguished_pid_(distinguished_pid) {
  LBSA_CHECK(inputs_.size() >= 2);
  LBSA_CHECK(distinguished_pid >= 0 &&
             distinguished_pid < static_cast<int>(inputs_.size()));
}

std::vector<std::int64_t> DacFromNmPacProtocol::initial_locals(int pid) const {
  return {inputs_[static_cast<size_t>(pid)], kNil};
}

sim::Action DacFromNmPacProtocol::next_action(
    int pid, const sim::ProcessState& state) const {
  const std::int64_t label = pid + 1;
  switch (state.pc) {
    case 0:
      return sim::Action::invoke(
          0, spec::make_propose_p(state.locals[kInput], label));
    case 1:
      return sim::Action::invoke(0, spec::make_decide_p(label));
    case 2: {
      const Value temp = state.locals[kTemp];
      if (temp != kBottom) return sim::Action::decide(temp);
      LBSA_CHECK(pid == distinguished_pid_);
      return sim::Action::abort();
    }
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void DacFromNmPacProtocol::on_response(int pid, sim::ProcessState* state,
                                       Value response) const {
  switch (state->pc) {
    case 0:
      LBSA_CHECK(response == kDone);
      state->pc = 1;
      return;
    case 1:
      state->locals[kTemp] = response;
      if (response != kBottom || pid == distinguished_pid_) {
        state->pc = 2;
      } else {
        state->pc = 0;
      }
      return;
    default:
      LBSA_CHECK_MSG(false, "response delivered at a local step");
  }
}

}  // namespace lbsa::protocols
