#include "protocols/one_shot.h"

#include "base/check.h"
#include "spec/consensus_type.h"
#include "spec/ksa_type.h"
#include "spec/nm_pac_type.h"
#include "spec/oprime_type.h"

namespace lbsa::protocols {

OneShotProposeProtocol::OneShotProposeProtocol(
    std::string name, std::shared_ptr<const spec::ObjectType> object,
    std::vector<spec::Operation> per_pid_ops)
    : ProtocolBase(std::move(name), static_cast<int>(per_pid_ops.size()),
                   {std::move(object)}),
      ops_(std::move(per_pid_ops)) {
  LBSA_CHECK(!ops_.empty());
  for (const spec::Operation& op : ops_) {
    const Status s = objects()[0]->validate(op);
    LBSA_CHECK_MSG(s.is_ok(), s.to_string().c_str());
  }
}

std::vector<std::int64_t> OneShotProposeProtocol::initial_locals(
    int /*pid*/) const {
  return {kNil};  // [response]
}

sim::Action OneShotProposeProtocol::next_action(
    int pid, const sim::ProcessState& state) const {
  switch (state.pc) {
    case 0:
      return sim::Action::invoke(0, ops_[static_cast<size_t>(pid)]);
    case 1:
      return sim::Action::decide(state.locals[0]);
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void OneShotProposeProtocol::on_response(int /*pid*/, sim::ProcessState* state,
                                         Value response) const {
  LBSA_CHECK(state->pc == 0);
  state->locals[0] = response;
  state->pc = 1;
}

sim::SymmetrySpec OneShotProposeProtocol::symmetry() const {
  // Orbit = maximal set of pids with equal prepared operations.
  sim::SymmetrySpec spec;
  const int n = process_count();
  spec.orbit_of.assign(static_cast<std::size_t>(n), -1);
  int next_orbit = 0;
  for (int p = 0; p < n; ++p) {
    if (spec.orbit_of[static_cast<std::size_t>(p)] != -1) continue;
    spec.orbit_of[static_cast<std::size_t>(p)] = next_orbit;
    for (int q = p + 1; q < n; ++q) {
      if (spec.orbit_of[static_cast<std::size_t>(q)] == -1 &&
          ops_[static_cast<std::size_t>(q)] ==
              ops_[static_cast<std::size_t>(p)]) {
        spec.orbit_of[static_cast<std::size_t>(q)] = next_orbit;
      }
    }
    ++next_orbit;
  }
  return spec;
}

std::shared_ptr<OneShotProposeProtocol> make_consensus_via_n_consensus(
    const std::vector<Value>& inputs) {
  const int n = static_cast<int>(inputs.size());
  std::vector<spec::Operation> ops;
  for (Value v : inputs) ops.push_back(spec::make_propose(v));
  return std::make_shared<OneShotProposeProtocol>(
      "consensus-via-" + std::to_string(n) + "-consensus",
      std::make_shared<spec::NConsensusType>(n), std::move(ops));
}

std::shared_ptr<OneShotProposeProtocol> make_consensus_via_nm_pac(
    int n, int m, const std::vector<Value>& inputs) {
  LBSA_CHECK(static_cast<int>(inputs.size()) <= m);
  std::vector<spec::Operation> ops;
  for (Value v : inputs) ops.push_back(spec::make_propose_c(v));
  return std::make_shared<OneShotProposeProtocol>(
      "consensus-via-(" + std::to_string(n) + "," + std::to_string(m) +
          ")-PAC",
      std::make_shared<spec::NmPacType>(n, m), std::move(ops));
}

std::shared_ptr<OneShotProposeProtocol> make_ksa_via_two_sa(
    const std::vector<Value>& inputs) {
  std::vector<spec::Operation> ops;
  for (Value v : inputs) ops.push_back(spec::make_propose(v));
  return std::make_shared<OneShotProposeProtocol>(
      "ksa-via-2-SA",
      std::make_shared<spec::KsaType>(spec::kUnboundedPorts, 2),
      std::move(ops));
}

std::shared_ptr<OneShotProposeProtocol> make_ksa_via_oprime(
    std::vector<int> port_bounds, int level,
    const std::vector<Value>& inputs) {
  std::vector<spec::Operation> ops;
  for (Value v : inputs) ops.push_back(spec::make_propose_k(v, level));
  return std::make_shared<OneShotProposeProtocol>(
      "ksa-via-O'(level " + std::to_string(level) + ")",
      std::make_shared<spec::OPrimeType>(std::move(port_bounds)),
      std::move(ops));
}

}  // namespace lbsa::protocols
