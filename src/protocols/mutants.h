// Deliberately broken protocol variants — mutation tests for the checkers.
//
// Every checker in this library (the exhaustive task checker, the fuzzer)
// is itself code that can rot: a judge that silently stops flagging a
// property would make the repository's "all claims verified" reports
// meaningless. These mutants inject one specific, well-understood bug per
// protocol so the test suite can assert that both check_*_task and fuzz_*
// still catch each class of violation:
//
//   * MutantDacProtocol{kNoAdopt}    — Algorithm 2 with the adopt phase
//     dropped: a non-distinguished process that reads ⊥ from its PAC decide
//     decides its own input instead of re-proposing. Breaks Agreement.
//   * MutantDacProtocol{kWrongAbort} — a non-distinguished process aborts
//     on ⊥. Breaks the DAC Nontriviality rule "only p aborts".
//   * make_overclaimed_two_sa       — "2-set agreement" backed by a 3-SA
//     object (the paper's strong 2-SA object with k = 3): up to three
//     distinct values can be returned. Breaks Agreement(2).
//   * make_off_by_one_consensus     — consensus that decides response + 1:
//     everyone agrees on a value nobody proposed. Breaks Validity (and
//     only Validity — the agreement judge must stay silent).
//
// These protocols must never be used outside tests and the fuzz corpus.
#ifndef LBSA_PROTOCOLS_MUTANTS_H_
#define LBSA_PROTOCOLS_MUTANTS_H_

#include <memory>
#include <vector>

#include "sim/protocol.h"

namespace lbsa::protocols {

class MutantDacProtocol final : public sim::ProtocolBase {
 public:
  enum class Bug {
    kNoAdopt,     // q != p decides its own input on ⊥ (drops the adopt read)
    kWrongAbort,  // q != p aborts on ⊥ (only p may abort)
  };

  MutantDacProtocol(std::vector<Value> inputs, Bug bug,
                    int distinguished_pid = 0);

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;
  // Same symmetry as the correct protocol: equal-input non-distinguished
  // processes are interchangeable (the injected bug is pid-uniform too).
  // Mutation tests rely on this so reduction modes are exercised on
  // violating graphs as well.
  sim::SymmetrySpec symmetry() const override;

 private:
  std::vector<Value> inputs_;
  Bug bug_;
  int distinguished_pid_;
};

// "2-SA" one-shot protocol whose backing object actually admits three
// distinct values (k = 3). Needs inputs.size() >= 3 to be able to violate.
std::shared_ptr<const sim::Protocol> make_overclaimed_two_sa(
    const std::vector<Value>& inputs);

// Consensus via one n-consensus object, but every process decides
// response + 1 — unanimous agreement on a never-proposed value.
std::shared_ptr<const sim::Protocol> make_off_by_one_consensus(
    const std::vector<Value>& inputs);

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_MUTANTS_H_
