// Deliberately broken protocol variants — mutation tests for the checkers.
//
// Every checker in this library (the exhaustive task checker, the fuzzer)
// is itself code that can rot: a judge that silently stops flagging a
// property would make the repository's "all claims verified" reports
// meaningless. These mutants inject one specific, well-understood bug per
// protocol so the test suite can assert that both check_*_task and fuzz_*
// still catch each class of violation:
//
//   * MutantDacProtocol{kNoAdopt}    — Algorithm 2 with the adopt phase
//     dropped: a non-distinguished process that reads ⊥ from its PAC decide
//     decides its own input instead of re-proposing. Breaks Agreement.
//   * MutantDacProtocol{kWrongAbort} — a non-distinguished process aborts
//     on ⊥. Breaks the DAC Nontriviality rule "only p aborts".
//   * make_overclaimed_two_sa       — "2-set agreement" backed by a 3-SA
//     object (the paper's strong 2-SA object with k = 3): up to three
//     distinct values can be returned. Breaks Agreement(2).
//   * make_off_by_one_consensus     — consensus that decides response + 1:
//     everyone agrees on a value nobody proposed. Breaks Validity (and
//     only Validity — the agreement judge must stay silent).
//   * OverclaimedNmPacType          — an "(n,m)-PAC" whose consensus port is
//     secretly backed by an unbounded (m+1)-SA object: up to m+1 distinct
//     values can be decided on the C port. Breaks the port's Agreement; the
//     lincheck, fuzz, and exhaustive checkers must all flag it.
//
// These protocols must never be used outside tests and the fuzz corpus.
#ifndef LBSA_PROTOCOLS_MUTANTS_H_
#define LBSA_PROTOCOLS_MUTANTS_H_

#include <memory>
#include <vector>

#include "sim/protocol.h"
#include "spec/ksa_type.h"
#include "spec/pac_type.h"

namespace lbsa::protocols {

// The composite object behind the overclaimed-consensus mutants: P-part a
// faithful n-PAC, C-part an unbounded (m+1)-set-agreement object answering
// PROPOSEC — so the "m-consensus port" admits m+1 distinct decisions.
// State layout: PacType(n) state followed by KsaType(∞, m+1) state.
class OverclaimedNmPacType final : public spec::ObjectType {
 public:
  OverclaimedNmPacType(int n, int m);

  int n() const { return pac_.n(); }
  int m() const { return m_; }

  std::string name() const override;
  std::vector<std::int64_t> initial_state() const override;
  Status validate(const spec::Operation& op) const override;
  void apply(std::span<const std::int64_t> state, const spec::Operation& op,
             std::vector<spec::Outcome>* outcomes) const override;
  bool deterministic() const override { return false; }
  // Same composite-renaming rule as the faithful NmPacType: the P-part
  // stores pid-derived labels, the C-part only values.
  void rename_pids(std::span<const int> perm,
                   std::vector<std::int64_t>* state) const override;
  bool renames_pids() const override { return true; }
  std::string state_to_string(std::span<const std::int64_t> state)
      const override;

 private:
  spec::PacType pac_;
  spec::KsaType ksa_;
  int m_;
};

class MutantDacProtocol final : public sim::ProtocolBase {
 public:
  enum class Bug {
    kNoAdopt,     // q != p decides its own input on ⊥ (drops the adopt read)
    kWrongAbort,  // q != p aborts on ⊥ (only p may abort)
  };

  // Runs Algorithm 2's mutant over a bare inputs.size()-PAC object.
  MutantDacProtocol(std::vector<Value> inputs, Bug bug,
                    int distinguished_pid = 0);
  // Runs the same mutant over the PAC ports of an (inputs.size(), m)-PAC
  // object (m >= 1) — the broken counterpart of DacFromNmPacProtocol.
  MutantDacProtocol(std::vector<Value> inputs, int m, Bug bug,
                    int distinguished_pid = 0);

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;
  // Same symmetry as the correct protocol: equal-input non-distinguished
  // processes are interchangeable (the injected bug is pid-uniform too).
  // Mutation tests rely on this so reduction modes are exercised on
  // violating graphs as well.
  sim::SymmetrySpec symmetry() const override;

 private:
  std::vector<Value> inputs_;
  Bug bug_;
  int distinguished_pid_;
  int m_;  // 0 = bare n-PAC; >= 1 = PAC ports of an (n,m)-PAC
};

// "2-SA" one-shot protocol whose backing object actually admits three
// distinct values (k = 3). Needs inputs.size() >= 3 to be able to violate.
std::shared_ptr<const sim::Protocol> make_overclaimed_two_sa(
    const std::vector<Value>& inputs);

// Consensus via one n-consensus object, but every process decides
// response + 1 — unanimous agreement on a never-proposed value.
std::shared_ptr<const sim::Protocol> make_off_by_one_consensus(
    const std::vector<Value>& inputs);

// The overclaimed counterpart of ConsensusFromNmPacProtocol: a one-shot
// consensus run over the C port of an OverclaimedNmPacType(n, m). With two
// or more distinct inputs the port can return distinct values, violating
// Agreement(1). inputs.size() <= m (the port's claimed process bound).
std::shared_ptr<const sim::Protocol> make_overclaimed_consensus_from_nm_pac(
    int n, int m, const std::vector<Value>& inputs);

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_MUTANTS_H_
