// A register-only consensus attempt for two processes — the demonstration
// subject for the bivalency machinery the paper inherits from FLP [8] and
// Herlihy [10].
//
// Each process keeps a preference (initially its input) and loops:
//   write preference to its own register; read the other register;
//   if the other register is NIL          -> decide own preference;
//   if the other preference equals ours   -> decide it;
//   otherwise adopt min(ours, theirs) and retry.
//
// FLP says no such protocol can be correct; this one fails Termination (the
// process holding the smaller value can spin forever against a decided
// peer). The model checker exhibits the non-terminating cycle, and the
// valence analyzer shows the bivalent initial configuration — exactly the
// artifacts Claims 4.2.4 / 5.2.1 reason with.
#ifndef LBSA_PROTOCOLS_FLP_RACE_H_
#define LBSA_PROTOCOLS_FLP_RACE_H_

#include <memory>
#include <vector>

#include "sim/protocol.h"

namespace lbsa::protocols {

class FlpRaceProtocol final : public sim::ProtocolBase {
 public:
  FlpRaceProtocol(Value input0, Value input1);

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;

 private:
  Value inputs_[2];
};

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_FLP_RACE_H_
