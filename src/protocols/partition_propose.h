// PartitionProposeProtocol: the general "partition into groups, one shared
// object per group, decide the response" shape. Generalizes both the
// one-shot protocols (one group) and GroupKsaProtocol (k groups of
// m-consensus) to arbitrary object types and per-process operations — the
// form the core solvability harness uses to witness set-agreement-power
// lower bounds with O_n and O'_n objects themselves (experiment E7).
#ifndef LBSA_PROTOCOLS_PARTITION_PROPOSE_H_
#define LBSA_PROTOCOLS_PARTITION_PROPOSE_H_

#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.h"

namespace lbsa::protocols {

class PartitionProposeProtocol final : public sim::ProtocolBase {
 public:
  // group_of[pid] indexes into `objects`; per_pid_ops[pid] is the operation
  // pid applies to its group's object. Both sized to the process count.
  PartitionProposeProtocol(
      std::string name,
      std::vector<std::shared_ptr<const spec::ObjectType>> objects,
      std::vector<int> group_of, std::vector<spec::Operation> per_pid_ops);

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;

 private:
  std::vector<int> group_of_;
  std::vector<spec::Operation> ops_;
};

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_PARTITION_PROPOSE_H_
