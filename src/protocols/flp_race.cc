#include "protocols/flp_race.h"

#include <algorithm>

#include "base/check.h"
#include "spec/register_type.h"

namespace lbsa::protocols {

FlpRaceProtocol::FlpRaceProtocol(Value input0, Value input1)
    : ProtocolBase("flp-race", 2,
                   {std::make_shared<spec::RegisterType>(),
                    std::make_shared<spec::RegisterType>()}),
      inputs_{input0, input1} {
  LBSA_CHECK(is_ordinary(input0) && is_ordinary(input1));
}

std::vector<std::int64_t> FlpRaceProtocol::initial_locals(int pid) const {
  return {inputs_[pid]};  // [preference]
}

sim::Action FlpRaceProtocol::next_action(int pid,
                                         const sim::ProcessState& state) const {
  switch (state.pc) {
    case 0:  // publish preference
      return sim::Action::invoke(pid, spec::make_write(state.locals[0]));
    case 1:  // read the other process's register
      return sim::Action::invoke(1 - pid, spec::make_read());
    case 2:
      return sim::Action::decide(state.locals[0]);
    default:
      LBSA_CHECK_MSG(false, "invalid pc");
      return sim::Action::abort();
  }
}

void FlpRaceProtocol::on_response(int /*pid*/, sim::ProcessState* state,
                                  Value response) const {
  switch (state->pc) {
    case 0:
      LBSA_CHECK(response == kDone);
      state->pc = 1;
      return;
    case 1:
      if (response == kNil || response == state->locals[0]) {
        state->pc = 2;  // alone, or agreement observed: decide preference
      } else {
        state->locals[0] = std::min<Value>(state->locals[0], response);
        state->pc = 0;  // adopt the smaller value and retry
      }
      return;
    default:
      LBSA_CHECK_MSG(false, "response delivered at a local step");
  }
}

}  // namespace lbsa::protocols
