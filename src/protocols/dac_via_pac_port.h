// Algorithm 2 of the paper, factored over the PAC port it drives.
//
//   distinguished process p:            every process q != p:
//     D.PROPOSE(v_p, p)                   while true:
//     temp <- D.DECIDE(p)                   D.PROPOSE(v_q, q)
//     if temp != ⊥ decide temp              temp <- D.DECIDE(q)
//     else abort                            if temp != ⊥: decide temp; break
//
// The propose/decide/retry loop is identical whether D is a bare n-PAC
// object (Theorem 4.1) or the PAC ports of an (n,m)-PAC object
// (Observation 5.1(b)); only the object and the two port operations differ.
// Subclasses supply those through propose_op/decide_op.
//
// Processes are numbered 0..n-1 and use the 1-based label pid+1 as their
// private PAC label (the paper numbers processes 1..n and uses the process
// number itself).
#ifndef LBSA_PROTOCOLS_DAC_VIA_PAC_PORT_H_
#define LBSA_PROTOCOLS_DAC_VIA_PAC_PORT_H_

#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.h"

namespace lbsa::protocols {

class PacPortDacProtocol : public sim::ProtocolBase {
 public:
  int distinguished_pid() const { return distinguished_pid_; }
  const std::vector<Value>& inputs() const { return inputs_; }

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;
  // Non-distinguished processes with equal inputs are interchangeable: the
  // automaton is pid-uniform apart from the PAC label pid+1, which the
  // object's rename_pids rewrites. p itself runs a different automaton
  // (abort arm) and is always fixed.
  sim::SymmetrySpec symmetry() const override;

 protected:
  // inputs.size() == n (>= 2); distinguished_pid in [0, n); `object` is the
  // shared object whose PAC port propose_op/decide_op drive.
  PacPortDacProtocol(std::string name, std::vector<Value> inputs,
                     int distinguished_pid,
                     std::shared_ptr<const spec::ObjectType> object);

  // The port operations on the shared object for 1-based label `label`.
  virtual spec::Operation propose_op(Value v, std::int64_t label) const = 0;
  virtual spec::Operation decide_op(std::int64_t label) const = 0;

 private:
  // locals: [input, temp]; pc: 0 = about to propose, 1 = about to decide on
  // the PAC port, 2 = terminal local step (decide/abort).
  static constexpr std::int64_t kInput = 0;
  static constexpr std::int64_t kTemp = 1;

  std::vector<Value> inputs_;
  int distinguished_pid_;
};

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_DAC_VIA_PAC_PORT_H_
