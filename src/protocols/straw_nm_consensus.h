// Straw-man candidate for (m+1)-consensus from a single (n,m)-PAC object —
// the algorithm family Theorem 5.2 proves cannot exist. The natural
// attempt: everyone races the PROPOSEC port; the loser (the (m+1)-th
// proposer, who receives ⊥) falls back to the PAC ports, proposing and
// deciding on its own label.
//
// The model checker exhibits the failure the proof predicts: a solo run of
// the loser sees no interference, so its PAC decide returns its own value —
// disagreeing with the consensus winner (experiment E3's sibling for
// Section 5).
#ifndef LBSA_PROTOCOLS_STRAW_NM_CONSENSUS_H_
#define LBSA_PROTOCOLS_STRAW_NM_CONSENSUS_H_

#include <memory>
#include <vector>

#include "sim/protocol.h"

namespace lbsa::protocols {

class StrawNmConsensusProtocol final : public sim::ProtocolBase {
 public:
  // inputs.size() == m + 1 processes racing an (n, m)-PAC with n >= 1.
  StrawNmConsensusProtocol(std::vector<Value> inputs, int n);

  std::vector<std::int64_t> initial_locals(int pid) const override;
  sim::Action next_action(int pid, const sim::ProcessState& state)
      const override;
  void on_response(int pid, sim::ProcessState* state,
                   Value response) const override;

 private:
  std::vector<Value> inputs_;
};

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_STRAW_NM_CONSENSUS_H_
