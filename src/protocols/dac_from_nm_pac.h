// Algorithm 2 run through the PAC ports of an (n,m)-PAC object — the
// task-level face of Observation 5.1(b) and the first step of Theorem 7.1's
// argument ("the (n+1,m)-PAC object can solve the (n+1)-DAC problem").
// The control flow lives in PacPortDacProtocol; this subclass binds it to an
// (n,m)-PAC object via the PROPOSEP/DECIDEP port operations.
#ifndef LBSA_PROTOCOLS_DAC_FROM_NM_PAC_H_
#define LBSA_PROTOCOLS_DAC_FROM_NM_PAC_H_

#include <vector>

#include "protocols/dac_via_pac_port.h"

namespace lbsa::protocols {

class DacFromNmPacProtocol final : public PacPortDacProtocol {
 public:
  // Solves inputs.size()-DAC using one (inputs.size(), m)-PAC object.
  DacFromNmPacProtocol(std::vector<Value> inputs, int m,
                       int distinguished_pid = 0);

 protected:
  spec::Operation propose_op(Value v, std::int64_t label) const override;
  spec::Operation decide_op(std::int64_t label) const override;
};

}  // namespace lbsa::protocols

#endif  // LBSA_PROTOCOLS_DAC_FROM_NM_PAC_H_
